"""Tile-size autotuner."""

import numpy as np
import pytest

from repro.core.components import Component
from repro.core.domains import RectDomain
from repro.core.stencil import Stencil, StencilGroup
from repro.core.weights import WeightArray
from repro.schedule import ScheduleOptions
from repro.tuning import TuneResult, autotune_tile
from repro.tuning.autotune import (
    ScheduleTuneResult,
    autotune_schedule,
    default_schedule_candidates,
)

LAP = Component("u", WeightArray([[0, 1, 0], [1, -4, 1], [0, 1, 0]]))


def make_case(n=64):
    s = Stencil(LAP, "out", RectDomain((1, 1), (-1, -1)))
    rng = np.random.default_rng(0)
    arrays = {"u": rng.random((n, n)), "out": np.zeros((n, n))}
    return StencilGroup([s]), arrays


class TestAutotune:
    def test_returns_best_of_candidates(self):
        group, arrays = make_case()
        res = autotune_tile(group, arrays, candidates=(4, 16), repeats=1)
        assert res.best_tile in (4, 16)
        assert set(res.timings) == {4, 16}
        assert res.timings[res.best_tile] == min(res.timings.values())

    def test_timings_positive(self):
        group, arrays = make_case()
        res = autotune_tile(group, arrays, candidates=(8,), repeats=1)
        assert all(t > 0 for t in res.timings.values())

    def test_speedup_metric(self):
        r = TuneResult(best_tile=4, timings={4: 1.0, 8: 2.0})
        assert r.speedup_over_worst() == 2.0

    def test_openmp_backend_and_options_flow_through(self):
        group, arrays = make_case(32)
        res = autotune_tile(
            group, arrays, backend="openmp", candidates=(8,), repeats=1,
            multicolor=False,
        )
        assert res.best_tile == 8

    def test_legacy_resolved_defaults_pinned(self, monkeypatch):
        # autotune_tile's base options must stay the ScheduleOptions
        # defaults the seed-era surface always applied (the docstring
        # once claimed multicolor=False/fuse=True — they never were).
        captured = {}

        def capture(group, arrays, params=None, *, candidates, **kw):
            captured["candidates"] = candidates
            return ScheduleTuneResult(
                candidates[0], tuple((c, 1.0) for c in candidates)
            )

        import repro.tuning.autotune as mod

        monkeypatch.setattr(mod, "autotune_schedule", capture)
        group, arrays = make_case(16)
        autotune_tile(group, arrays, candidates=(4, 8), repeats=1)
        for opts in captured["candidates"]:
            assert opts.policy == "greedy"
            assert opts.fuse is False
            assert opts.multicolor is True
            assert opts.block is None
        assert [o.tile for o in captured["candidates"]] == [4, 8]


class TestScheduleTuneResult:
    def test_best_time_with_duplicated_candidates(self):
        # dict() collapse kept the *last* duplicate's time, reporting
        # 2.0 for a candidate that actually won at 1.0.
        o1, o2 = ScheduleOptions(tile=4), ScheduleOptions(tile=8)
        res = ScheduleTuneResult(
            best=o1, timings=((o1, 1.0), (o2, 3.0), (o1, 2.0))
        )
        assert res.best_time() == 1.0
        assert res.speedup_over_worst() == 3.0


class TestTimeTileCandidates:
    def test_grid_includes_time_tiles(self):
        cands = default_schedule_candidates(
            tiles=(4, 8), time_tiles=(1, 2)
        )
        assert len(cands) == 4
        assert {c.time_tile for c in cands} == {1, 2}

    def test_refused_time_tile_recorded_as_inf(self):
        from repro.hpgmg.operators import periodic_boundary_stencils

        n = 8
        group = StencilGroup(
            periodic_boundary_stencils(2, n, grid="x"), name="periodic"
        )
        rng = np.random.default_rng(0)
        arrays = {"x": rng.standard_normal((n + 2, n + 2))}
        legal = ScheduleOptions()
        refused = ScheduleOptions(time_tile=2)
        res = autotune_schedule(
            group, arrays, backend="numpy",
            candidates=[legal, refused], repeats=1,
        )
        assert res.best == legal
        assert dict(res.timings)[refused] == float("inf")
        assert res.best_time() < float("inf")
