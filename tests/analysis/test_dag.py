"""DAG construction, greedy barrier grouping, scheduling policies."""

import networkx as nx
import pytest

from repro.analysis.dag import (
    build_dag,
    greedy_phases,
    plan,
    wavefront_phases,
)
from repro.core.components import Component
from repro.core.domains import RectDomain
from repro.core.stencil import Stencil, StencilGroup
from repro.core.weights import WeightArray
from repro.hpgmg.operators import (
    boundary_stencils,
    cc_laplacian,
    smooth_group,
)

INTERIOR = RectDomain((1, 1), (-1, -1))


def chain(n):
    """s0 writes g1 from g0, s1 writes g2 from g1, ..."""
    out = []
    for i in range(n):
        out.append(
            Stencil(
                Component(f"g{i}", WeightArray([[1]])), f"g{i+1}", INTERIOR,
                name=f"s{i}",
            )
        )
    return StencilGroup(out)


def independent(n):
    return StencilGroup(
        [
            Stencil(Component("src", WeightArray([[1]])), f"dst{i}", INTERIOR)
            for i in range(n)
        ]
    )


def shapes_of(group, shape=(10, 10)):
    return {g: shape for g in group.grids()}


class TestBuildDag:
    def test_chain_edges(self):
        g = chain(4)
        dag = build_dag(g, shapes_of(g))
        assert set(dag.edges()) == {(0, 1), (1, 2), (2, 3)}
        assert nx.is_directed_acyclic_graph(dag)

    def test_edge_kinds_labelled(self):
        g = chain(2)
        dag = build_dag(g, shapes_of(g))
        assert dag.edges[0, 1]["kinds"] == frozenset({"RAW"})

    def test_independent_no_edges(self):
        g = independent(5)
        dag = build_dag(g, shapes_of(g))
        assert dag.number_of_edges() == 0


class TestGreedyPhases:
    def test_chain_gets_one_phase_each(self):
        g = chain(3)
        assert greedy_phases(g, shapes_of(g)) == [[0], [1], [2]]

    def test_independent_one_phase(self):
        g = independent(5)
        assert greedy_phases(g, shapes_of(g)) == [[0, 1, 2, 3, 4]]

    def test_smoother_phase_structure(self):
        group = smooth_group(2, cc_laplacian(2, 0.1), lam=0.1)
        phases = greedy_phases(group, shapes_of(group, (12, 12)))
        # bc x4 | red | bc x4 | black
        assert [len(p) for p in phases] == [4, 1, 4, 1]

    def test_greedy_is_in_order(self):
        g = chain(3) + independent(2)
        phases = greedy_phases(g, shapes_of(g))
        flat = [i for p in phases for i in p]
        assert flat == sorted(flat)


class TestWavefront:
    def test_levels_follow_longest_path(self):
        # s0 -> s1 -> s2, s3 independent: wavefront puts s3 in phase 0
        g = chain(3) + independent(1)
        phases = wavefront_phases(g, shapes_of(g))
        assert 3 in phases[0]
        assert phases[1] == [1] and phases[2] == [2]

    def test_wavefront_no_fewer_stencils(self):
        g = chain(2) + independent(3)
        phases = wavefront_phases(g, shapes_of(g))
        assert sum(len(p) for p in phases) == len(g)


class TestPlan:
    def test_policies(self):
        g = chain(2) + independent(2)
        shapes = shapes_of(g)
        for policy in ("greedy", "wavefront", "serial"):
            p = plan(g, shapes, policy=policy)
            assert p.stencil_count() == len(g)
        with pytest.raises(ValueError):
            plan(g, shapes, policy="magic")

    def test_serial_one_per_phase(self):
        g = independent(3)
        p = plan(g, shapes_of(g), policy="serial")
        assert p.phases == ((0,), (1,), (2,))
        assert p.n_barriers == 2

    def test_parallel_within_flags(self):
        group = smooth_group(2, cc_laplacian(2, 0.1), lam=0.1)
        p = plan(group, shapes_of(group, (12, 12)))
        assert all(p.parallel_within)  # bc faces and colored sweeps all safe

    def test_describe_mentions_phases(self):
        g = chain(2)
        p = plan(g, shapes_of(g))
        assert "phase 0" in p.describe()


class TestBarrierProvenance:
    """Satellite: every barrier names the dependence grids that forced it."""

    def smoother_plan(self):
        group = smooth_group(2, cc_laplacian(2, 0.1), lam=0.1)
        return plan(group, shapes_of(group, (12, 12)))

    def test_dependence_grids_recorded(self):
        p = self.smoother_plan()
        assert p.dependence_grids, "smoother has cross-stencil dependences"
        for detail in p.dependence_grids.values():
            for kind, grids in detail.items():
                assert kind in ("RAW", "WAR", "WAW")
                assert grids, f"{kind} edge must name its grids"

    def test_barrier_edges_name_forcing_grids(self):
        p = self.smoother_plan()
        assert p.n_barriers == 3
        for k in range(p.n_barriers):
            edges = p.barrier_edges(k)
            assert edges, f"barrier {k} must be forced by an edge"
            for (i, j), detail in edges:
                assert i < j
                grids = {g for gs in detail.values() for g in gs}
                assert grids == {"x"}, (
                    "every smoother barrier is about the smoothed grid"
                )

    def test_describe_names_grids_and_stencils(self):
        p = self.smoother_plan()
        text = p.describe()
        assert "forced by" in text
        assert "RAW on x" in text
        assert "gsrb_red" in text  # labels use stencil names

    def test_chain_raw_edge_in_describe(self):
        g = chain(2)
        text = plan(g, shapes_of(g)).describe()
        assert "0:s0->1:s1" in text
        assert "RAW on g1" in text

    def test_serial_policy_barrier_without_dependence(self):
        g = independent(3)
        p = plan(g, shapes_of(g), policy="serial")
        assert p.barrier_edges(0) == []
        assert "policy order" in p.describe()

    def test_no_barriers_no_dependence_lines(self):
        g = independent(3)
        p = plan(g, shapes_of(g))
        assert p.n_barriers == 0
        assert "forced by" not in p.describe()
