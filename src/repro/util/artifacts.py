"""Where exported artifacts land: ``SNOWFLAKE_ARTIFACT_DIR`` plumbing.

Every exporter in the repo (``BENCH_pipeline.json``,
``BENCH_kernels.json``, ``trace.json``, profiler exports) historically
wrote into the current working directory — fine for a one-shot CLI,
littering for a long-lived service.  :func:`artifact_path` is the one
policy point: explicit paths are honoured verbatim, *bare filenames*
are redirected into ``SNOWFLAKE_ARTIFACT_DIR`` when it is set (created
on demand), and the CWD remains the default when it is not.
"""

from __future__ import annotations

import os
from pathlib import Path

__all__ = ["artifact_dir", "artifact_path"]


def artifact_dir() -> Path | None:
    """The configured artifact directory, or ``None`` (use the CWD)."""
    raw = os.environ.get("SNOWFLAKE_ARTIFACT_DIR", "").strip()
    return Path(raw) if raw else None


def artifact_path(path: str | os.PathLike) -> Path:
    """Resolve where an artifact should be written.

    A path that names a directory (``out/trace.json``, an absolute
    path, an explicit ``./trace.json``) is returned unchanged — the
    caller chose.  A *bare filename* defaults into
    ``SNOWFLAKE_ARTIFACT_DIR`` when set, creating the directory; the
    filename alone otherwise (today's CWD behaviour).
    """
    p = Path(path)
    if p.parent != Path("."):
        return p
    if isinstance(path, str) and path.startswith(("./", ".\\")):
        return p  # an explicit CWD choice, not a bare name
    d = artifact_dir()
    if d is None:
        return p
    d.mkdir(parents=True, exist_ok=True)
    return d / p.name
