"""HPGMG operators expressed in the Snowflake DSL (paper SectionV).

Every operator the multigrid solver needs — constant- and variable-
coefficient 7-point (2d+1-point) Laplacians, Jacobi / GSRB smoothers,
residual, full-weighting restriction, piecewise-constant and
piecewise-linear interpolation, and Dirichlet boundary stencils — is
built from ``Component``/``WeightArray``/``RectDomain`` exactly as the
paper's Fig.4 builds its complex smoother.  No operator here is
hand-coded; the hand-coded comparators live in :mod:`repro.baselines`.

Grid convention (HPGMG-style, cell-centered): arrays carry a one-cell
ghost halo, so a level with ``n`` interior cells per dimension stores
``(n+2)**d`` values and the interior is ``[1, n+1)`` per dim.  The mesh
spacing is ``h = 1/n``.

Homogeneous Dirichlet boundaries are *linear* ghost-cell conditions:
``ghost = -interior_neighbour``, so the value on the cell face is zero
(paper SectionII-B).
"""

from __future__ import annotations

import itertools
from typing import Sequence

from ..core.components import Component
from ..core.domains import DomainUnion, RectDomain
from ..core.expr import Constant, Expr, GridRead
from ..core.stencil import OutputMap, Stencil, StencilGroup
from ..core.weights import SparseArray

__all__ = [
    "interior",
    "face_domain",
    "red_black_domains",
    "cc_laplacian",
    "vc_laplacian",
    "cc_diagonal",
    "residual_stencil",
    "jacobi_stencil",
    "gsrb_stencils",
    "boundary_stencils",
    "boundary_stencils_full",
    "periodic_boundary_stencils",
    "smooth_group",
    "residual_group",
    "restriction_stencil",
    "interpolation_pc_group",
    "interpolation_linear_group",
]


def _unit(ndim: int, d: int, sign: int = 1) -> tuple[int, ...]:
    off = [0] * ndim
    off[d] = sign
    return tuple(off)


def interior(ndim: int) -> RectDomain:
    """Interior of a one-ghost-cell grid: ``[1, -1)`` per dim."""
    return RectDomain.interior(ndim, ghost=1)


def face_domain(ndim: int, dim: int, side: int) -> RectDomain:
    """The ghost face of dimension ``dim`` (side -1 = low, +1 = high),
    spanning interior coordinates in every other dimension."""
    start = [1] * ndim
    end = [-1] * ndim
    stride = [1] * ndim
    start[dim] = 0 if side < 0 else -1
    end[dim] = 1 if side < 0 else -1  # ignored: dim is pinned
    stride[dim] = 0
    return RectDomain(tuple(start), tuple(end), tuple(stride))


def red_black_domains(ndim: int) -> tuple[DomainUnion, DomainUnion]:
    """Checkerboard (red, black) over the interior; red owns (1,..,1)."""
    return (
        RectDomain.colored(ndim, parity=0, ghost=1),
        RectDomain.colored(ndim, parity=1, ghost=1),
    )


# ---------------------------------------------------------------------------
# operator bodies (expressions)
# ---------------------------------------------------------------------------


def cc_laplacian(ndim: int, h: float, grid: str = "x") -> Expr:
    """Constant-coefficient (2d+1)-point Laplacian ``A = -∇² / h²``.

    Sign convention matches HPGMG: ``A`` is positive definite, i.e.
    ``(A x)_i = (2d x_i - sum of neighbours) / h²``.
    """
    inv_h2 = 1.0 / (h * h)
    entries: dict[tuple[int, ...], float] = {(0,) * ndim: 2.0 * ndim * inv_h2}
    for d in range(ndim):
        entries[_unit(ndim, d, +1)] = -inv_h2
        entries[_unit(ndim, d, -1)] = -inv_h2
    return Component(grid, SparseArray(entries))


def vc_laplacian(
    ndim: int,
    h: float,
    grid: str = "x",
    beta_prefix: str = "beta_",
    a: float = 0.0,
    alpha_grid: str | None = None,
    b: float = 1.0,
) -> Expr:
    """Variable-coefficient operator ``A x = a·α·x - b·∇·(β ∇x)``.

    Face-centered coefficients: ``beta_d[i]`` is the coefficient on the
    *low* face of cell ``i`` in dimension ``d``, so the flux through the
    high face of cell ``i`` uses ``beta_d[i + e_d]``.  The β reads are
    nested *inside* the weight array of the ``x`` component — the exact
    construction of the paper's Fig.4 (lines1-5).
    """
    inv_h2 = b / (h * h)
    center = (0,) * ndim
    entries: dict[tuple[int, ...], Expr] = {}
    diag_terms: list[Expr] = []
    for d in range(ndim):
        lo_face = Component(f"{beta_prefix}{d}", SparseArray({center: 1.0}))
        hi_face = Component(f"{beta_prefix}{d}", SparseArray({_unit(ndim, d): 1.0}))
        # Weight expressions are evaluated at the shifted point, so the
        # -e_d weight reads hi_face there: beta_d[(i-e_d)+e_d] = beta_d[i],
        # the low face of cell i; the +e_d weight reads lo_face there:
        # beta_d[i+e_d], the high face of cell i.
        entries[_unit(ndim, d, -1)] = Constant(-inv_h2) * hi_face
        entries[_unit(ndim, d, +1)] = Constant(-inv_h2) * lo_face
        diag_terms.append(lo_face + hi_face)
    diag: Expr = diag_terms[0]
    for t in diag_terms[1:]:
        diag = diag + t
    entries[center] = Constant(inv_h2) * diag
    Ax: Expr = Component(grid, SparseArray(entries))
    if a != 0.0:
        if alpha_grid is None:
            raise ValueError("a != 0 requires an alpha grid")
        Ax = (
            Constant(a)
            * Component(alpha_grid, SparseArray({center: 1.0}))
            * Component(grid, SparseArray({center: 1.0}))
            + Ax
        )
    return Ax


def cc_diagonal(ndim: int, h: float) -> float:
    """Diagonal entry of the constant-coefficient operator."""
    return 2.0 * ndim / (h * h)


def residual_stencil(
    ndim: int, Ax: Expr, rhs: str = "rhs", out: str = "res"
) -> Stencil:
    """``res = rhs - A x`` over the interior — the paper's ``b - Ax``."""
    b = Component(rhs, SparseArray({(0,) * ndim: 1.0}))
    return Stencil(b - Ax, out, interior(ndim), name=f"residual_{out}")


def jacobi_stencil(
    ndim: int,
    Ax: Expr,
    *,
    grid: str = "x",
    out: str = "tmp",
    rhs: str = "rhs",
    lam: "float | str" = 0.0,
    weight: float = 2.0 / 3.0,
) -> Stencil:
    """Weighted Jacobi: ``out = x + w·λ·(rhs - A x)`` (paper SectionV-A).

    ``lam`` is either the constant ``1/diag(A)`` or the name of a
    precomputed ``1/diag`` grid for variable-coefficient operators.
    Out-of-place (ping-pong) by default; pass ``out=grid`` for the
    in-place variant (the analysis will detect the hazard and backends
    will restore gather semantics with a snapshot).
    """
    center = (0,) * ndim
    x = Component(grid, SparseArray({center: 1.0}))
    b = Component(rhs, SparseArray({center: 1.0}))
    if isinstance(lam, str):
        lam_e: Expr = Component(lam, SparseArray({center: 1.0}))
    else:
        lam_e = Constant(float(lam))
    body = x + Constant(weight) * lam_e * (b - Ax)
    return Stencil(body, out, interior(ndim), name=f"jacobi_{out}")


def gsrb_stencils(
    ndim: int,
    Ax: Expr,
    *,
    grid: str = "x",
    rhs: str = "rhs",
    lam: "float | str",
) -> tuple[Stencil, Stencil]:
    """Gauss-Seidel red-black: two in-place colored half-sweeps.

    Each is ``x += λ·(rhs - A x)`` over one checkerboard color — the
    full-weight (ω = 1) update.  In-place is legal because a color only
    reads the opposite color plus its own old centre value, which the
    Diophantine analysis proves hazard-free.
    """
    center = (0,) * ndim
    x = Component(grid, SparseArray({center: 1.0}))
    b = Component(rhs, SparseArray({center: 1.0}))
    if isinstance(lam, str):
        lam_e: Expr = Component(lam, SparseArray({center: 1.0}))
    else:
        lam_e = Constant(float(lam))
    body = x + lam_e * (b - Ax)
    red, black = red_black_domains(ndim)
    return (
        Stencil(body, grid, red, name="gsrb_red"),
        Stencil(body, grid, black, name="gsrb_black"),
    )


def boundary_stencils(ndim: int, grid: str = "x") -> list[Stencil]:
    """Homogeneous Dirichlet ghost update: ``ghost = -inner`` per face.

    2·ndim stencils, each an in-place asymmetric single-point stencil
    over a pinned face domain (paper Fig.3c / SectionII-B).  Faces only:
    a (2d+1)-point operator never reads edge or corner ghosts.
    """
    out = []
    for d in range(ndim):
        for side in (-1, +1):
            read = GridRead(grid, _unit(ndim, d, -side))
            name = f"bc_{grid}_d{d}{'lo' if side < 0 else 'hi'}"
            out.append(
                Stencil(
                    Constant(-1.0) * read,
                    grid,
                    face_domain(ndim, d, side),
                    name=name,
                )
            )
    return out


def periodic_boundary_stencils(
    ndim: int, n: int, grid: str = "x"
) -> list[Stencil]:
    """Periodic ghost update for an ``n``-interior grid.

    ``ghost[0] = x[n]`` and ``ghost[n+1] = x[1]`` per dimension — the
    *large-offset* stencils the paper calls out as one of the ways
    boundary conditions appear (SectionII-A item3): the read sits a
    whole grid length away from the write, something offset-limited
    frameworks cannot express.  Shape-specific by construction (the
    wrap-around offset is the interior size).
    """
    out = []
    for d in range(ndim):
        for side in (-1, +1):
            # low ghost copies the last interior cell; high the first:
            # the wrap-around read points back *into* the grid.
            read = GridRead(grid, _unit(ndim, d, -side * n))
            name = f"pbc_{grid}_d{d}{'lo' if side < 0 else 'hi'}"
            out.append(
                Stencil(read, grid, face_domain(ndim, d, side), name=name)
            )
    return out


def boundary_stencils_full(ndim: int, grid: str = "x") -> list[Stencil]:
    """Dirichlet ghosts on faces, edges, *and* corners.

    Operators that read diagonal neighbours (compact 9/27-point,
    higher-order cross terms) consume edge/corner ghosts that the
    face-only stencils never touch.  The standard construction sets a
    ghost with ``k`` out-of-range dimensions by reflecting through a
    ghost with ``k-1`` — e.g. corner ``(0,0) = -ghost(0,1)`` — so the
    stencils for deeper ghosts *depend on* the shallower ones, an
    ordering the dependence analysis derives rather than assumes.
    """
    import itertools as _it

    out: list[Stencil] = list(boundary_stencils(ndim, grid))
    for k in range(2, ndim + 1):
        for dims in _it.combinations(range(ndim), k):
            for sides in _it.product((-1, +1), repeat=k):
                start = [1] * ndim
                end = [-1] * ndim
                stride = [1] * ndim
                for d, side in zip(dims, sides):
                    start[d] = 0 if side < 0 else -1
                    stride[d] = 0
                # reflect through the last ghosted dimension
                d_ref, s_ref = dims[-1], sides[-1]
                read = GridRead(grid, _unit(ndim, d_ref, -s_ref))
                name = (
                    f"bc_{grid}_"
                    + "".join(
                        f"d{d}{'lo' if s < 0 else 'hi'}"
                        for d, s in zip(dims, sides)
                    )
                )
                out.append(
                    Stencil(
                        Constant(-1.0) * read,
                        grid,
                        RectDomain(tuple(start), tuple(end), tuple(stride)),
                        name=name,
                    )
                )
    return out


def smooth_group(
    ndim: int,
    Ax: Expr,
    *,
    grid: str = "x",
    rhs: str = "rhs",
    lam: "float | str",
    n_smooths: int = 1,
) -> StencilGroup:
    """One (or more) full GSRB smooths with interspersed boundaries.

    The paper's sequence per smooth: boundary / red / boundary / black —
    ghost cells must be refreshed before each half-sweep because the
    previous half-sweep changed the interior values they mirror.
    """
    stencils: list[Stencil] = []
    red, black = gsrb_stencils(ndim, Ax, grid=grid, rhs=rhs, lam=lam)
    for _ in range(n_smooths):
        stencils.extend(boundary_stencils(ndim, grid))
        stencils.append(red)
        stencils.extend(boundary_stencils(ndim, grid))
        stencils.append(black)
    return StencilGroup(stencils, name=f"gsrb_smooth_x{n_smooths}")


def residual_group(ndim: int, Ax: Expr, *, grid: str = "x") -> StencilGroup:
    """Boundary refresh followed by ``res = rhs - A x``."""
    stencils = boundary_stencils(ndim, grid)
    stencils.append(residual_stencil(ndim, Ax))
    return StencilGroup(stencils, name="residual")


# ---------------------------------------------------------------------------
# inter-grid transfer operators (the multiplicative-offset stencils SDSL
# cannot express — paper SectionVI)
# ---------------------------------------------------------------------------


def restriction_stencil(
    ndim: int, fine: str = "res", coarse: str = "coarse_rhs"
) -> Stencil:
    """Full-weighting (cell-averaging) restriction.

    Iterates over the *coarse* interior; coarse cell ``i`` (interior
    index ``i-1``) averages its ``2**d`` fine children at
    ``2i - 1 + {0,1}**d`` — a scale-2 read.
    """
    w = 1.0 / (2**ndim)
    entries = {
        tuple(c - 1 for c in child): w
        for child in itertools.product((0, 1), repeat=ndim)
    }
    body = Component(fine, SparseArray(entries), scale=2)
    return Stencil(body, coarse, interior(ndim), name="restrict")


def interpolation_pc_group(
    ndim: int, coarse: str = "coarse_x", fine: str = "x", *, add: bool = True
) -> StencilGroup:
    """Piecewise-constant interpolation (+= correction when ``add``).

    One stencil per child offset ``c in {0,1}**d``: iterating over the
    coarse interior, write ``fine[2i - 1 + c] (+)= coarse[i]`` — a
    scale-2 *output map*.  The in-place diagonal read uses the same
    affine map as the write, which the analysis recognizes as safe.
    """
    stencils = []
    center = (0,) * ndim
    for child in itertools.product((0, 1), repeat=ndim):
        off = tuple(c - 1 for c in child)
        om = OutputMap((2,) * ndim, off)
        body: Expr = Component(coarse, SparseArray({center: 1.0}))
        if add:
            body = body + GridRead(fine, off, (2,) * ndim)
        stencils.append(
            Stencil(
                body,
                fine,
                interior(ndim),
                output_map=om,
                iteration_grid=coarse,
                name=f"interp_pc_{''.join(map(str, child))}",
            )
        )
    return StencilGroup(stencils, name="interp_pc")


def interpolation_linear_group(
    ndim: int, coarse: str = "coarse_x", fine: str = "x", *, add: bool = True
) -> StencilGroup:
    """Piecewise-(tri)linear cell-centered interpolation.

    Child ``c`` of coarse cell ``i`` sits a quarter-cell toward
    neighbour ``i + (2c-1)``; per dimension the weights are 3/4 on the
    parent and 1/4 on that neighbour, tensored across dimensions.
    """
    stencils = []
    for child in itertools.product((0, 1), repeat=ndim):
        off = tuple(c - 1 for c in child)
        om = OutputMap((2,) * ndim, off)
        entries: dict[tuple[int, ...], float] = {}
        for picks in itertools.product((0, 1), repeat=ndim):
            # picks[d] == 0 -> parent (3/4); 1 -> neighbour (1/4)
            offset = tuple(
                (2 * c - 1) * p for c, p in zip(child, picks)
            )
            w = 1.0
            for p in picks:
                w *= 0.25 if p else 0.75
            entries[offset] = entries.get(offset, 0.0) + w
        body: Expr = Component(coarse, SparseArray(entries))
        if add:
            body = body + GridRead(fine, off, (2,) * ndim)
        stencils.append(
            Stencil(
                body,
                fine,
                interior(ndim),
                output_map=om,
                iteration_grid=coarse,
                name=f"interp_lin_{''.join(map(str, child))}",
            )
        )
    return StencilGroup(stencils, name="interp_linear")
