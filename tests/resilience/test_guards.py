"""Runtime guards: NaN/Inf scan, invariants, halo checksums."""

import warnings

import numpy as np
import pytest

from repro import (
    Component,
    Guards,
    RectDomain,
    Stencil,
    StencilGroup,
    WeightArray,
)
from repro.dmem.executor import DistributedKernel
from repro.resilience.faults import inject
from repro.resilience.guards import GuardViolation, GuardWarning, halo_crc

pytestmark = pytest.mark.faults

LAP = Component("u", WeightArray([[0, 1, 0], [1, -4, 1], [0, 1, 0]]))
INTERIOR = RectDomain((1, 1), (-1, -1))


def nan_input(n=8):
    u = np.ones((n, n))
    u[n // 2, n // 2] = np.nan
    return u


class TestConfig:
    def test_invalid_severity_rejected(self):
        with pytest.raises(ValueError, match="severity"):
            Guards(nonfinite="loud")

    def test_from_env_blanket(self, monkeypatch):
        monkeypatch.setenv("SNOWFLAKE_GUARDS", "warn")
        g = Guards.from_env()
        assert (g.nonfinite, g.invariants, g.halo_checksum) == (
            "warn", "warn", "warn",
        )

    def test_from_env_per_check(self, monkeypatch):
        monkeypatch.setenv(
            "SNOWFLAKE_GUARDS", "nonfinite=raise, halo_checksum=warn"
        )
        g = Guards.from_env()
        assert g.nonfinite == "raise"
        assert g.invariants == "off"
        assert g.halo_checksum == "warn"

    def test_from_env_bad_spec(self, monkeypatch):
        monkeypatch.setenv("SNOWFLAKE_GUARDS", "volume=11")
        with pytest.raises(ValueError, match="unknown guard"):
            Guards.from_env()

    def test_default_is_all_off(self):
        assert not Guards().enabled()
        assert not Guards.from_env().enabled()


class TestNonfiniteScan:
    def kernel(self, guards):
        return Stencil(LAP, "out", INTERIOR).compile(
            backend="numpy", guards=guards
        )

    def test_off_by_default_nan_propagates_silently(self):
        k = self.kernel(None)
        out = np.zeros((8, 8))
        with warnings.catch_warnings():
            warnings.simplefilter("error", GuardWarning)
            k(u=nan_input(), out=out)
        assert np.isnan(out).any()

    def test_warn_names_grid_and_count(self):
        k = self.kernel(Guards(nonfinite="warn"))
        with pytest.warns(GuardWarning, match=r"'out'.*non-finite"):
            k(u=nan_input(), out=np.zeros((8, 8)))

    def test_raise_severity(self):
        k = self.kernel(Guards(nonfinite="raise"))
        with pytest.raises(GuardViolation, match="nonfinite"):
            k(u=nan_input(), out=np.zeros((8, 8)))

    def test_clean_output_passes(self, rng):
        k = self.kernel(Guards(nonfinite="raise", invariants="raise"))
        k(u=rng.random((8, 8)), out=np.zeros((8, 8)))

    def test_env_guards_attach_without_code_changes(self, monkeypatch):
        monkeypatch.setenv("SNOWFLAKE_GUARDS", "nonfinite=raise")
        k = Stencil(LAP, "out", INTERIOR).compile(backend="numpy")
        with pytest.raises(GuardViolation):
            k(u=nan_input(), out=np.zeros((8, 8)))


class TestInvariants:
    def test_report_dispatch(self):
        g = Guards(invariants="raise")
        before = {"u": (np.dtype(np.float64), (4, 4))}
        ok = {"u": np.zeros((4, 4))}
        g.check_invariants(before, ok)  # no-op on clean state
        with pytest.raises(GuardViolation, match="changed across"):
            g.check_invariants(before, {"u": np.zeros((2, 2))})
        with pytest.raises(GuardViolation, match="dtype"):
            g.check_invariants(
                before, {"u": np.zeros((4, 4), dtype=np.float32)}
            )


class TestHaloChecksum:
    def dk(self, guards=None, n=16, **kw):
        group = StencilGroup(
            [Stencil(LAP, "u", INTERIOR, name="smooth")]
        )
        return DistributedKernel(
            group, (n, n), 2, backend="numpy", guards=guards, **kw
        )

    def reference(self, u0):
        ref = np.array(u0, copy=True)
        Stencil(LAP, "u", INTERIOR).compile(backend="python")(u=ref)
        return ref

    def test_clean_exchange_verifies(self, rng):
        u = rng.random((16, 16))
        ref = self.reference(u)
        dk = self.dk(Guards(halo_checksum="raise"))
        dk(u=u)
        np.testing.assert_allclose(u, ref)

    def test_corrupted_payload_raises(self, rng):
        dk = self.dk(Guards(halo_checksum="raise"))
        dk.scatter(u=rng.random((16, 16)))
        with inject("comm.payload.corrupt", times=1):
            with pytest.raises(GuardViolation, match="corrupted in flight"):
                dk.run()

    def test_corrupted_payload_warns(self, rng):
        dk = self.dk(Guards(halo_checksum="warn"))
        dk.scatter(u=rng.random((16, 16)))
        with inject("comm.payload.corrupt", times=1):
            with pytest.warns(GuardWarning, match="halo_checksum"):
                dk.run()
        assert dk.comm_stats.corrupted == 1

    def test_guard_off_on_raw_wire_means_silent_corruption(self, rng):
        # the bare fabric (transport="raw") with guards off is the
        # worst case: corruption lands in the halo and nothing notices
        u = rng.random((16, 16))
        ref = self.reference(u)
        dk = self.dk(transport="raw")  # guards default: all off
        dk.scatter(u=u)
        with inject("comm.payload.corrupt", times=1):
            with warnings.catch_warnings():
                warnings.simplefilter("error", GuardWarning)
                dk.run()  # nothing notices...
        dk.gather(u=u)
        assert not np.allclose(u, ref)  # ...and the answer is wrong

    def test_reliable_transport_heals_even_with_guards_off(self, rng):
        # same fault, default transport: the envelope CRC catches the
        # corruption and retransmission heals it — silently, because
        # the guard severity is off
        u = rng.random((16, 16))
        ref = self.reference(u)
        dk = self.dk()  # guards default: all off
        dk.scatter(u=u)
        with inject("comm.payload.corrupt", times=1):
            with warnings.catch_warnings():
                warnings.simplefilter("error", GuardWarning)
                dk.run()
        dk.gather(u=u)
        np.testing.assert_allclose(u, ref)
        assert dk.comm_stats.crc_failures == 1

    def test_crc_is_content_addressed(self):
        a = np.arange(16.0)
        b = np.arange(16.0)
        assert halo_crc(a) == halo_crc(b)
        b[3] += 1e-12
        assert halo_crc(a) != halo_crc(b)
