"""The ``python -m repro tune`` subcommand and cross-process reload."""

import json
import os
import subprocess
import sys

SECOND_PROCESS = """
import numpy as np
from repro.bench import paper_operators
from repro.core.stencil import StencilGroup
from repro.schedule import ScheduleOptions, schedule_for
from repro.tuning.cache import load_winner

st = paper_operators({n})["cc_7pt"]
group = StencilGroup([st], name="cc_7pt")
shapes = {{g: ({n} + 2,) * st.ndim for g in st.grids()}}
doc = load_winner(group, shapes)
assert doc is not None, "winner not found in cache"
assert doc["schema"] == "snowflake-tune/1"
sched = schedule_for(group, shapes, None)
won = ScheduleOptions(**{{**doc["options"], "time_tile": 1}})
assert sched.options == won, (sched.options, won)
print("RELOADED", sched.options.describe())
"""


def run_cli(*args, env=None, timeout=300):
    full_env = dict(os.environ, PYTHONPATH="src")
    if env:
        full_env.update(env)
    return subprocess.run(
        [sys.executable, "-m", "repro", *args],
        capture_output=True, text=True, timeout=timeout, env=full_env,
    )


def test_tune_json_no_persist(tmp_path):
    proc = run_cli(
        "tune", "--backend", "numpy", "--op", "cc_7pt", "--size", "8",
        "--budget", "2", "--repeats", "1", "--json", "--no-persist",
        env={"SNOWFLAKE_CACHE_DIR": str(tmp_path)},
    )
    assert proc.returncode == 0, proc.stdout + proc.stderr
    doc = json.loads(proc.stdout)
    assert doc["schema"] == "snowflake-tune-search/1"
    assert doc["best"] is not None
    measured = [t for t in doc["trials"] if t["status"] == "measured"]
    assert 1 <= len(measured) <= 2
    assert all(t["predicted_s"] > 0 for t in measured)
    assert list(tmp_path.glob("sf_tune_*.json")) == []  # --no-persist


def test_tune_table_output(tmp_path):
    proc = run_cli(
        "tune", "--backend", "numpy", "--op", "cc_7pt", "--size", "8",
        "--budget", "2", "--repeats", "1", "--no-persist",
        env={"SNOWFLAKE_CACHE_DIR": str(tmp_path)},
    )
    assert proc.returncode == 0, proc.stdout + proc.stderr
    assert "winner:" in proc.stdout
    assert "predicted" in proc.stdout and "measured" in proc.stdout


def test_tune_writes_artifact(tmp_path):
    out = tmp_path / "TUNE_result.json"
    proc = run_cli(
        "tune", "--backend", "numpy", "--op", "cc_7pt", "--size", "8",
        "--budget", "2", "--repeats", "1", "--no-persist",
        "--out", str(out),
        env={"SNOWFLAKE_CACHE_DIR": str(tmp_path)},
    )
    assert proc.returncode == 0, proc.stdout + proc.stderr
    doc = json.loads(out.read_text())
    assert doc["schema"] == "snowflake-tune-search/1"


def test_tune_unknown_operator(tmp_path):
    proc = run_cli(
        "tune", "--op", "nonesuch",
        env={"SNOWFLAKE_CACHE_DIR": str(tmp_path)},
    )
    assert proc.returncode == 2
    assert "unknown operator" in proc.stdout


def test_tune_persists_and_second_process_reloads(tmp_path):
    """The acceptance path: tune in one process, reload in another."""
    n = 8
    env = {"SNOWFLAKE_CACHE_DIR": str(tmp_path)}
    proc = run_cli(
        "tune", "--backend", "numpy", "--op", "cc_7pt",
        "--size", str(n), "--budget", "2", "--repeats", "1",
        env=env,
    )
    assert proc.returncode == 0, proc.stdout + proc.stderr
    winners = list(tmp_path.glob("sf_tune_*.json"))
    assert len(winners) == 1
    doc = json.loads(winners[0].read_text())
    assert doc["schema"] == "snowflake-tune/1"
    assert doc["backend"] == "numpy"

    second = subprocess.run(
        [sys.executable, "-c", SECOND_PROCESS.format(n=n)],
        capture_output=True, text=True, timeout=300,
        env=dict(os.environ, PYTHONPATH="src", **env),
    )
    assert second.returncode == 0, second.stdout + second.stderr
    assert "RELOADED" in second.stdout


def test_explain_transforms_flag():
    proc = run_cli(
        "explain", "--size", "8", "--transforms", "--fuse", "--tile", "8",
    )
    assert proc.returncode == 0, proc.stdout + proc.stderr
    lines = proc.stdout.strip().splitlines()
    assert lines[0].startswith("base_schedule(")
    assert "fuse()" in lines
    assert "tile(8)" in lines


def test_explain_transforms_json():
    proc = run_cli(
        "explain", "--size", "8", "--transforms", "--json",
    )
    assert proc.returncode == 0, proc.stdout + proc.stderr
    doc = json.loads(proc.stdout)
    assert isinstance(doc, list) and doc[0].startswith("base_schedule(")
