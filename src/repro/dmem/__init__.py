"""dmem — a simulated distributed-memory backend (paper SectionVII).

The paper's future work targets distributed-memory systems via MPI.
No MPI launcher exists in this environment, so per DESIGN.md the
substrate is simulated: :class:`~repro.dmem.comm.SimComm` provides an
MPI-flavoured message-passing fabric between in-process ranks (send /
recv / barrier with byte accounting and deadlock detection), and
:class:`~repro.dmem.executor.DistributedKernel` runs any StencilGroup
over a 1-D block decomposition with automatic halo-width inference from
the canonical flat form and halo exchanges placed by the same
dependence reasoning the shared-memory backends use.

The exercised code path — decompose, exchange ghost rows, run the
per-rank kernel through any micro-compiler, gather — is exactly what an
mpi4py backend would run with ``SimComm`` swapped for ``MPI.COMM_WORLD``.

Resilience substrate (this is where distributed features get built
*against* the failures real fabrics produce):

* :class:`~repro.dmem.transport.ReliableComm` — sequence-numbered,
  acked, CRC-verified, deduplicating, reordering transport over the
  lossy wire: exactly-once halo delivery under the
  ``comm.send.drop`` / ``comm.recv.drop`` / ``comm.payload.corrupt`` /
  ``comm.msg.duplicate`` / ``comm.msg.reorder`` fault sites;
* :class:`~repro.dmem.comm.RankFailure` — the typed crash signal the
  ``comm.rank.crash`` site produces and neighbours detect;
* :mod:`~repro.dmem.recovery` — verified checkpoint/restart
  (:class:`RecoveryPolicy` on ``DistributedKernel.run``): a crashed
  sweep replays bitwise-identical to a fault-free run.
"""

from .comm import CommError, RankFailure, SimComm
from .decompose import BlockDecomposition
from .executor import DistributedKernel
from .executor2d import DistributedKernel2D
from .recovery import (
    Checkpoint,
    CheckpointError,
    RecoveryExhausted,
    RecoveryManager,
    RecoveryPolicy,
)
from .transport import ReliableComm, TransportError

__all__ = [
    "CommError",
    "RankFailure",
    "SimComm",
    "BlockDecomposition",
    "DistributedKernel",
    "DistributedKernel2D",
    "ReliableComm",
    "TransportError",
    "Checkpoint",
    "CheckpointError",
    "RecoveryExhausted",
    "RecoveryManager",
    "RecoveryPolicy",
]
