"""Shared workload builders for the evaluation figures.

The paper's three standalone operators (SectionV-A), each with the
interspersed Dirichlet boundary stencils the text calls out:

* ``cc_7pt``   — out = A x, constant-coefficient 7-point Laplacian
* ``cc_jacobi`` — tmp = x + (2/3) D⁻¹ (rhs - A x)
* ``vc_gsrb``  — one full red/black in-place smooth, variable coefficients

Every workload is a :class:`StencilGroup` over one :class:`Level`, so a
single code path measures any backend — the paper's single-source claim.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Callable

import numpy as np

from ..core.stencil import StencilGroup
from ..hpgmg.level import Level
from ..hpgmg.operators import (
    boundary_stencils,
    cc_diagonal,
    cc_laplacian,
    jacobi_stencil,
    residual_stencil,
    smooth_group,
    vc_laplacian,
)
from ..machine.model import KernelWork
from ..machine.roofline import PAPER_BYTES_PER_STENCIL

__all__ = [
    "OperatorCase",
    "OPERATORS",
    "build_case",
    "operator_work",
    "DEFAULT_SIZE",
]

DEFAULT_SIZE = 64  # paper uses 256^3; container default is laptop-scale


@dataclass
class OperatorCase:
    """A ready-to-run operator workload on one level."""

    name: str
    level: Level
    group: StencilGroup
    #: points counted as "stencils" per application (paper metric)
    points: int

    def arrays(self) -> dict[str, np.ndarray]:
        return {g: self.level.grids[g] for g in self.group.grids()}

    def compile(self, backend: str, **options) -> Callable:
        shapes = {g: self.level.shape for g in self.group.grids()}
        kernel = self.group.compile(
            backend=backend, shapes=shapes, dtype=self.level.dtype, **options
        )
        arrays = self.arrays()

        def run():
            kernel(**arrays)

        return run


def build_case(name: str, n: int, ndim: int = 3, seed: int = 7) -> OperatorCase:
    """Construct one of the paper's operator workloads at size ``n^ndim``."""
    rng = np.random.default_rng(seed)
    if name == "cc_7pt":
        level = Level(n, ndim, coefficients="constant")
        Ax = cc_laplacian(ndim, level.h)
        group = StencilGroup(
            boundary_stencils(ndim, "x")
            + [residual_stencil(ndim, Ax, out="res")],
            name="cc_7pt",
        )
    elif name == "cc_jacobi":
        level = Level(n, ndim, coefficients="constant")
        Ax = cc_laplacian(ndim, level.h)
        lam = 1.0 / cc_diagonal(ndim, level.h)
        group = StencilGroup(
            boundary_stencils(ndim, "x")
            + [jacobi_stencil(ndim, Ax, lam=lam)],
            name="cc_jacobi",
        )
    elif name == "vc_gsrb":
        level = Level(n, ndim, coefficients="variable")
        Ax = vc_laplacian(ndim, level.h)
        group = smooth_group(ndim, Ax, lam="lam", n_smooths=1)
    else:
        raise ValueError(f"unknown operator {name!r}")
    for g in ("x", "rhs"):
        level.grids[g][level.interior] = rng.random((n,) * ndim)
    return OperatorCase(name, level, group, points=n**ndim)


OPERATORS = ("cc_7pt", "cc_jacobi", "vc_gsrb")


def operator_work(name: str, n: int, ndim: int = 3) -> KernelWork:
    """The execution-model workload of one operator application.

    Traffic uses the paper's SectionV-B per-stencil constants; the
    working set covers every array the sweep touches; launch counts
    follow the stencil structure (boundary faces are separate kernels,
    GSRB has two color sweeps with re-applied boundaries).
    """
    word = 8.0
    points = n**ndim
    grid_bytes = (n + 2) ** ndim * word
    if name == "cc_7pt":
        bytes_pp = PAPER_BYTES_PER_STENCIL["cc_7pt"]
        arrays = 2  # x, out
        launches = 1 + 2 * ndim
    elif name == "cc_jacobi":
        bytes_pp = PAPER_BYTES_PER_STENCIL["cc_jacobi"]
        arrays = 3  # x, rhs, out (+ constant lambda)
        launches = 1 + 2 * ndim
    elif name == "vc_gsrb":
        bytes_pp = PAPER_BYTES_PER_STENCIL["vc_gsrb"]
        arrays = 3 + ndim + 1  # x, rhs, betas, lam
        launches = 2 * (1 + 2 * ndim)
    else:
        raise ValueError(f"unknown operator {name!r}")
    return KernelWork(
        points=points,
        bytes_per_point=bytes_pp,
        working_set=arrays * grid_bytes,
        launches=launches,
    )
