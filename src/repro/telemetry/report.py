"""Render a telemetry snapshot as fixed-width :mod:`repro.util.tables`.

The report is what ``python -m repro stats`` prints: one table per
collection family (counters, timers, kernel invocations), diff-able
and stable-sorted like every other benchmark table in the repo.
"""

from __future__ import annotations

from ..util.tables import format_table
from .registry import snapshot

__all__ = ["format_stats", "render_stats"]


def format_stats(snap: dict) -> str:
    """Fixed-width report of one :func:`~repro.telemetry.snapshot`."""
    blocks: list[str] = [f"telemetry mode: {snap.get('mode', '?')}"]

    kernels = snap.get("kernels", {})
    if kernels:
        rows = [
            [
                backend,
                k["calls"],
                k["seconds"],
                (k["points_per_s"] / 1e6 if k["points_per_s"] else "-"),
                k["points"],
            ]
            for backend, k in sorted(kernels.items())
        ]
        blocks.append(
            format_table(
                ["backend", "calls", "seconds", "Mpoint/s", "points"],
                rows,
                title="kernel invocations",
            )
        )

    timers = snap.get("timers", {})
    if timers:
        rows = [
            [name, t["count"], t["total_s"], t["mean_s"], t["max_s"]]
            for name, t in sorted(timers.items())
        ]
        blocks.append(
            format_table(
                ["timer", "count", "total_s", "mean_s", "max_s"],
                rows,
                title="timers",
            )
        )

    counters = snap.get("counters", {})
    # The distributed fabric gets its own table: transport resilience
    # (retransmits, duplicates, reordering, CRC rejects), rank crashes,
    # checkpoint restores, and barrier-audit failures would otherwise
    # drown in the generic counter list.
    dmem = {
        name[len("dmem."):]: n
        for name, n in counters.items()
        if name.startswith("dmem.")
    }
    if dmem:
        rows = [[name, n] for name, n in sorted(dmem.items())]
        blocks.append(
            format_table(
                ["event", "count"], rows, title="distributed fabric"
            )
        )
    general = {
        name: n for name, n in counters.items()
        if not name.startswith("dmem.")
    }
    if general:
        rows = [[name, n] for name, n in sorted(general.items())]
        blocks.append(format_table(["counter", "value"], rows, title="counters"))

    if len(blocks) == 1:
        blocks.append("(nothing recorded)")
    return "\n\n".join(blocks)


def render_stats() -> str:
    """One-call convenience: snapshot the live registry and format it."""
    return format_stats(snapshot())
