"""Serialization of DSL objects to plain JSON-able dictionaries.

Stencil definitions are *data* — a solver can store its operator suite
next to its checkpoints, a batch system can ship stencils to workers
(the :mod:`repro.dmem` story), and tests can diff golden definitions.
``to_dict``/``from_dict`` round-trip every core object; scalar-weight
containers and expression-weight components are both supported, since
expressions themselves serialize.

The format is versioned; loaders reject unknown versions and unknown
node kinds loudly.
"""

from __future__ import annotations

import json
from typing import Any

from .components import Component
from .domains import DomainUnion, RectDomain
from .expr import BinOp, Constant, Expr, GridRead, Neg, Param
from .stencil import OutputMap, Stencil, StencilGroup
from .weights import SparseArray

__all__ = ["to_dict", "from_dict", "dumps", "loads", "FORMAT_VERSION"]

FORMAT_VERSION = 1


class SerializationError(ValueError):
    """Unknown node kind or format version."""


# -- encoding -------------------------------------------------------------------


def to_dict(obj) -> dict[str, Any]:
    """Encode any core object as a JSON-able dict."""
    d = _encode(obj)
    d["format_version"] = FORMAT_VERSION
    return d


def _encode(obj) -> dict[str, Any]:
    if isinstance(obj, Constant):
        return {"kind": "constant", "value": obj.value}
    if isinstance(obj, Param):
        return {"kind": "param", "name": obj.name}
    if isinstance(obj, GridRead):
        return {
            "kind": "read",
            "grid": obj.grid,
            "offset": list(obj.offset),
            "scale": list(obj.scale),
        }
    if isinstance(obj, Neg):
        return {"kind": "neg", "operand": _encode(obj.operand)}
    if isinstance(obj, BinOp):
        return {
            "kind": "binop",
            "op": obj.op,
            "lhs": _encode(obj.lhs),
            "rhs": _encode(obj.rhs),
        }
    if isinstance(obj, Component):
        entries = []
        for off, w in obj.weights:
            entries.append(
                {
                    "offset": list(off),
                    "weight": _encode(w) if isinstance(w, Expr) else float(w),
                }
            )
        return {
            "kind": "component",
            "grid": obj.grid,
            "scale": list(obj.scale),
            "weights": entries,
        }
    if isinstance(obj, RectDomain):
        return {
            "kind": "rect",
            "start": list(obj.start),
            "end": list(obj.end),
            "stride": list(obj.stride),
        }
    if isinstance(obj, DomainUnion):
        return {"kind": "union", "rects": [_encode(r) for r in obj.rects]}
    if isinstance(obj, OutputMap):
        return {
            "kind": "output_map",
            "scale": list(obj.scale),
            "offset": list(obj.offset),
        }
    if isinstance(obj, Stencil):
        return {
            "kind": "stencil",
            "name": obj.name,
            "output": obj.output,
            "body": _encode(obj.body),
            "domain": _encode(obj.domain),
            "output_map": _encode(obj.output_map),
            "iteration_grid": obj.iteration_grid,
        }
    if isinstance(obj, StencilGroup):
        return {
            "kind": "group",
            "name": obj.name,
            "stencils": [_encode(s) for s in obj.stencils],
        }
    raise SerializationError(f"cannot serialize {type(obj).__name__}")


# -- decoding --------------------------------------------------------------------


def from_dict(d: dict[str, Any]):
    """Decode an object produced by :func:`to_dict`."""
    v = d.get("format_version", FORMAT_VERSION)
    if v != FORMAT_VERSION:
        raise SerializationError(f"unsupported format version {v}")
    return _decode(d)


def _decode(d: dict[str, Any]):
    kind = d.get("kind")
    if kind == "constant":
        return Constant(d["value"])
    if kind == "param":
        return Param(d["name"])
    if kind == "read":
        return GridRead(d["grid"], d["offset"], d["scale"])
    if kind == "neg":
        return Neg(_decode(d["operand"]))
    if kind == "binop":
        return BinOp(d["op"], _decode(d["lhs"]), _decode(d["rhs"]))
    if kind == "component":
        entries = {}
        for e in d["weights"]:
            w = e["weight"]
            entries[tuple(e["offset"])] = (
                _decode(w) if isinstance(w, dict) else float(w)
            )
        return Component(d["grid"], SparseArray(entries), scale=d["scale"])
    if kind == "rect":
        return RectDomain(d["start"], d["end"], d["stride"])
    if kind == "union":
        return DomainUnion([_decode(r) for r in d["rects"]])
    if kind == "output_map":
        return OutputMap(d["scale"], d["offset"])
    if kind == "stencil":
        return Stencil(
            _decode(d["body"]),
            d["output"],
            _decode(d["domain"]),
            output_map=_decode(d["output_map"]),
            iteration_grid=d.get("iteration_grid"),
            name=d.get("name"),
        )
    if kind == "group":
        return StencilGroup(
            [_decode(s) for s in d["stencils"]], name=d.get("name")
        )
    raise SerializationError(f"unknown node kind {kind!r}")


def dumps(obj, **json_kwargs) -> str:
    """JSON string form of :func:`to_dict`."""
    return json.dumps(to_dict(obj), **json_kwargs)


def loads(text: str):
    """Inverse of :func:`dumps`."""
    return from_dict(json.loads(text))
