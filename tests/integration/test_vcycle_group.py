"""One StencilGroup spanning two multigrid levels (mixed grid shapes).

Cross-grid groups are where the DSL's "multiple input and output
meshes" generality (paper SectionII) meets the analysis: a single group
holds boundary + residual on the fine grid *and* the restriction onto
the coarse grid, whose shapes differ.  Dependences, planning, and every
backend must handle the mixed-shape group as one compiled unit.
"""

import numpy as np
import pytest

from _helpers import ALL_BACKENDS, run_group
from repro.analysis import group_dependences, plan
from repro.core.stencil import StencilGroup
from repro.hpgmg.operators import (
    boundary_stencils,
    residual_group,
    residual_stencil,
    restriction_stencil,
    vc_laplacian,
)

NF, NC = 16, 8
FINE = (NF + 2, NF + 2)
COARSE = (NC + 2, NC + 2)


@pytest.fixture(scope="module")
def pipeline():
    ndim = 2
    Ax = vc_laplacian(ndim, 1.0 / NF)
    stencils = boundary_stencils(ndim, "x")
    stencils.append(residual_stencil(ndim, Ax))
    stencils.append(restriction_stencil(ndim))  # res -> coarse_rhs
    return StencilGroup(stencils, name="pre_coarsen")


def shapes_for(group):
    return {
        g: (COARSE if g.startswith("coarse") else FINE)
        for g in group.grids()
    }


def make_arrays(rng, group):
    arrays = {}
    for g in group.grids():
        shape = COARSE if g.startswith("coarse") else FINE
        arrays[g] = rng.random(shape)
    return arrays


class TestAnalysisAcrossShapes:
    def test_restriction_depends_on_residual(self, pipeline):
        deps = group_dependences(pipeline, shapes_for(pipeline))
        res_i = next(
            i for i, s in enumerate(pipeline) if s.name.startswith("residual")
        )
        restrict_i = next(
            i for i, s in enumerate(pipeline) if s.name == "restrict"
        )
        assert "RAW" in deps[(res_i, restrict_i)]

    def test_plan_orders_bc_residual_restrict(self, pipeline):
        p = plan(pipeline, shapes_for(pipeline))
        # phases: [bc x4] [residual] [restrict]
        assert [len(ph) for ph in p.phases] == [4, 1, 1]


class TestExecutionAcrossShapes:
    @pytest.mark.parametrize("backend", ALL_BACKENDS)
    def test_every_backend_runs_the_mixed_group(self, pipeline, backend, rng):
        arrays = make_arrays(rng, pipeline)
        ref = run_group(pipeline, arrays, backend="python")
        got = run_group(pipeline, arrays, backend=backend)
        for g in ref:
            np.testing.assert_allclose(
                got[g], ref[g], rtol=1e-12, atol=1e-13,
                err_msg=f"{backend}: {g}",
            )

    def test_coarse_rhs_is_average_of_fine_residual(self, pipeline, rng):
        arrays = make_arrays(rng, pipeline)
        got = run_group(pipeline, arrays, backend="c")
        res = got["res"]
        manual = 0.25 * (
            res[1:-1:2, 1:-1:2] + res[2:-1:2, 1:-1:2]
            + res[1:-1:2, 2:-1:2] + res[2:-1:2, 2:-1:2]
        )
        np.testing.assert_allclose(
            got["coarse_rhs"][1:-1, 1:-1], manual, atol=1e-13
        )

    def test_fused_option_harmless_on_mixed_shapes(self, pipeline, rng):
        arrays = make_arrays(rng, pipeline)
        a = run_group(pipeline, arrays, backend="c")
        b = run_group(pipeline, arrays, backend="c", fuse=True)
        for g in a:
            np.testing.assert_allclose(b[g], a[g], atol=1e-14)
