"""repro — a reproduction of *Snowflake: A Lightweight Portable Stencil
DSL* (Zhang et al., IPDPSW 2017).

Quick taste (the paper's Fig.4 in miniature)::

    import numpy as np
    from repro import Component, WeightArray, RectDomain, Stencil

    lap = Component("u", WeightArray([[0, 1, 0], [1, -4, 1], [0, 1, 0]]))
    st = Stencil(lap, "out", RectDomain((1, 1), (-1, -1)))
    kernel = st.compile(backend="c")
    u, out = np.random.rand(66, 66), np.zeros((66, 66))
    kernel(u=u, out=out)

Subpackages:

* :mod:`repro.core` — the DSL (weights, components, domains, stencils)
* :mod:`repro.analysis` — finite-domain Diophantine dependence analysis
* :mod:`repro.schedule` — the legality-checked schedule IR every
  backend executes (phases, fused chains, color sweeps)
* :mod:`repro.backends` — JIT micro-compilers (python/numpy/c/openmp/opencl-sim)
* :mod:`repro.clsim` — CPU simulator executing the generated OpenCL
* :mod:`repro.hpgmg` — the HPGMG-style geometric multigrid benchmark
* :mod:`repro.baselines` — hand-optimized comparator kernels
* :mod:`repro.machine` — STREAM, Roofline bounds, platform models
* :mod:`repro.tuning` — schedule autotuning (tile, fusion, policy)
* :mod:`repro.resilience` — fault injection, backend fallback chains,
  runtime guards (``python -m repro doctor`` for the self-check)
"""

from .core import (
    Component,
    DomainUnion,
    FlatStencil,
    GridRead,
    OutputMap,
    Param,
    RectDomain,
    SparseArray,
    Stencil,
    StencilGroup,
    ValidationError,
    WeightArray,
)
from .backends import available_backends, get_backend, register_backend
from .resilience import ExecutionPolicy, Guards
from .run import run
from .schedule import Schedule, ScheduleOptions, build_schedule, schedule_for

__version__ = "1.0.0"

__all__ = [
    "Component",
    "DomainUnion",
    "FlatStencil",
    "GridRead",
    "OutputMap",
    "Param",
    "RectDomain",
    "SparseArray",
    "Stencil",
    "StencilGroup",
    "ValidationError",
    "WeightArray",
    "available_backends",
    "get_backend",
    "register_backend",
    "ExecutionPolicy",
    "Guards",
    "Schedule",
    "ScheduleOptions",
    "build_schedule",
    "run",
    "schedule_for",
    "__version__",
]
