"""The narrow frontend/backend interface (paper SectionIV, Fig.5).

A micro-compiler is anything implementing :class:`Backend`: it receives a
:class:`~repro.core.stencil.StencilGroup` (whose bodies are already
lowered to canonical flat form) plus concrete shapes, and returns a
Python callable.  Everything platform-specific lives behind this
interface, so *"the compiler expert is only needed when additional
optimizations are requested or unsupported backends are needed"* — users
register their own backends with :func:`register_backend`.
"""

from __future__ import annotations

import abc
import time
from typing import Callable, Mapping, Sequence

import numpy as np

from .. import telemetry
from ..core.stencil import StencilGroup
from ..core.validate import check_arrays, check_group, iteration_shape
from ..resilience.faults import InjectedFault, fault_point
from ..resilience.guards import Guards

__all__ = [
    "Backend",
    "CompiledKernel",
    "register_backend",
    "get_backend",
    "available_backends",
]


class CompiledKernel:
    """A compiled stencil group wrapped as a Python callable.

    Calling convention: keyword arguments name the grids (numpy arrays,
    mutated in place for outputs) and the scalar params.  Lazy shape
    specialization: when built without ``shapes``, the first call binds
    them and the specialized kernel is cached per shape tuple.

    Runtime guards (:class:`~repro.resilience.guards.Guards`) attach at
    compile time (``compile(..., guards=...)``) or globally via the
    ``SNOWFLAKE_GUARDS`` environment variable; the specialize and invoke
    paths carry the ``backend.specialize`` / ``backend.invoke``
    fault-injection sites.
    """

    def __init__(
        self,
        group: StencilGroup,
        specialize: Callable[[Mapping[str, tuple[int, ...]], np.dtype], Callable],
        shapes: Mapping[str, Sequence[int]] | None,
        dtype,
        guards: Guards | None = None,
        backend_name: str | None = None,
    ) -> None:
        self.group = group
        self.backend_name = backend_name
        self.guards = guards if guards is not None else Guards.from_env()
        self._outputs = {s.output for s in group}
        self._specialize = specialize
        self._cache: dict[tuple, Callable] = {}
        self._pinned_dtype = np.dtype(dtype) if dtype is not None else None
        if shapes is not None:
            norm = {g: tuple(int(x) for x in s) for g, s in shapes.items()}
            dt = self._pinned_dtype or np.dtype(np.float64)
            self._get_impl(norm, dt)

    def _key(self, shapes: Mapping[str, tuple[int, ...]], dtype) -> tuple:
        return (tuple(sorted(shapes.items())), np.dtype(dtype).str)

    def _points(self, shapes: Mapping[str, tuple[int, ...]]) -> int:
        """Stencil applications of one call — the numerator of points/s."""
        total = 0
        for stencil in self.group:
            it_shape = iteration_shape(stencil, shapes)
            total += sum(
                r.npoints
                for r in stencil.domain.resolve(it_shape)
                if not r.is_empty()
            )
        return total

    def _get_impl(self, shapes, dtype) -> tuple[Callable, int]:
        key = self._key(shapes, dtype)
        entry = self._cache.get(key)
        if entry is None:
            check_group(self.group, shapes)
            if fault_point("backend.specialize"):
                raise InjectedFault(
                    f"injected fault: specialize "
                    f"{self.backend_name or 'backend'} for {sorted(shapes)}"
                )
            name = self.backend_name or "backend"
            t0 = time.perf_counter()
            with telemetry.tracing.span(
                f"specialize:{self.group.name}", cat="kernel",
                backend=name, shapes=len(shapes),
            ):
                impl = self._specialize(shapes, np.dtype(dtype))
            telemetry.record_time(
                f"backend.{name}.specialize", time.perf_counter() - t0
            )
            telemetry.event(
                "backend.specialize", backend=name, group=self.group.name
            )
            entry = (impl, self._points(shapes))
            self._cache[key] = entry
        return entry

    def __call__(self, **kwargs) -> None:
        grids = {}
        params = {}
        grid_names = self.group.grids()
        param_names = self.group.params()
        for k, v in kwargs.items():
            if k in grid_names:
                grids[k] = v
            elif k in param_names:
                params[k] = float(v)
            else:
                raise TypeError(
                    f"unexpected argument {k!r}; grids are "
                    f"{sorted(grid_names)}, params are {sorted(param_names)}"
                )
        check_arrays(self.group, grids, params)
        arrays = {g: np.asarray(a) for g, a in grids.items()}
        dt = next(iter(arrays.values())).dtype
        if self._pinned_dtype is not None and dt != self._pinned_dtype:
            raise TypeError(
                f"kernel compiled for dtype {self._pinned_dtype}, got {dt}"
            )
        shapes = {g: a.shape for g, a in arrays.items()}
        impl, points = self._get_impl(shapes, dt)
        if fault_point("backend.invoke"):
            raise InjectedFault(
                f"injected fault: invoke {self.backend_name or 'backend'} "
                f"kernel for {self.group.name!r}"
            )
        before = self.guards.snapshot_invariants(arrays)
        with telemetry.tracing.span(
            f"kernel:{self.group.name}", cat="kernel",
            backend=self.backend_name or "backend", points=points,
        ):
            if telemetry.enabled():
                t0 = time.perf_counter()
                impl(arrays, params)
                telemetry.kernel_call(
                    self.backend_name or "backend",
                    time.perf_counter() - t0,
                    points,
                )
            else:
                impl(arrays, params)
        self.guards.check_invariants(before, arrays)
        self.guards.scan_nonfinite(arrays, self._outputs)

    @property
    def specializations(self) -> int:
        """Number of shape/dtype specializations compiled so far."""
        return len(self._cache)


class Backend(abc.ABC):
    """A Snowflake micro-compiler."""

    #: registry name, e.g. ``"openmp"``
    name: str = "abstract"

    #: does this micro-compiler need a working system toolchain?  The
    #: fallback policy and ``python -m repro doctor`` use this to pick
    #: degradation targets and to thread compile timeouts.
    requires_toolchain: bool = False

    #: declared scheduling knobs (name -> default) drawn from the single
    #: :class:`repro.schedule.ScheduleOptions` vocabulary.  ``None``
    #: means the backend manages its own options (user-registered
    #: backends); the built-in six all declare a subset, validated in
    #: one place by :func:`repro.schedule.pop_schedule_spec`.
    _KNOBS: Mapping[str, object] | None = None

    @abc.abstractmethod
    def specializer(
        self, group: StencilGroup, **options
    ) -> Callable[[Mapping[str, tuple[int, ...]], np.dtype], Callable]:
        """Return a function that shape-specializes the group.

        The returned function is invoked once per distinct (shapes,
        dtype) combination and must return
        ``impl(arrays: dict[str, ndarray], params: dict[str, float])``.
        """

    def artifact_info(
        self,
        group: StencilGroup,
        shapes: Mapping[str, Sequence[int]],
        dtype=None,
        **options,
    ) -> dict | None:
        """Provenance of the artifact :meth:`compile` would produce.

        JIT backends return ``{"backend", "cache_key", "source_path",
        "artifact_path", "cached", "source_bytes"}`` (in-process program
        generators add ``"in_process": True`` and omit paths); pure
        interpreter backends return ``None``.  Must not compile anything
        — provenance queries (:mod:`repro.explain`) stay cheap.
        """
        return None

    def compile(
        self,
        group: StencilGroup,
        shapes: Mapping[str, Sequence[int]] | None = None,
        dtype=None,
        guards: Guards | None = None,
        **options,
    ) -> CompiledKernel:
        return CompiledKernel(
            group,
            self.specializer(group, **options),
            shapes,
            dtype,
            guards=guards,
            backend_name=self.name,
        )


_REGISTRY: dict[str, Backend] = {}


def register_backend(backend: Backend, *aliases: str) -> None:
    """Add a micro-compiler to the registry (user-extensible, Fig.5)."""
    for key in (backend.name, *aliases):
        if not key:
            raise ValueError("backend name must be non-empty")
        _REGISTRY[key] = backend


def get_backend(name: str) -> Backend:
    try:
        return _REGISTRY[name]
    except KeyError:
        raise KeyError(
            f"unknown backend {name!r}; available: {sorted(_REGISTRY)}"
        ) from None


def available_backends() -> list[str]:
    return sorted(_REGISTRY)
