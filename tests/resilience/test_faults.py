"""The fault registry itself: deterministic, site-addressed, replayable."""

import pytest

from repro.resilience import faults
from repro.resilience.faults import (
    InjectedFault,
    arm,
    disarm,
    fault_point,
    inject,
    known_sites,
)

pytestmark = pytest.mark.faults


class TestRegistry:
    def test_builtin_sites_present(self):
        sites = known_sites()
        for s in (
            "jit.spawn",
            "jit.load",
            "jit.cache.read",
            "jit.cache.write",
            "backend.specialize",
            "backend.invoke",
            "comm.send.drop",
            "comm.recv.drop",
            "comm.payload.corrupt",
            "comm.msg.duplicate",
            "comm.msg.reorder",
            "comm.rank.crash",
        ):
            assert s in sites

    def test_unknown_site_rejected_everywhere(self):
        with pytest.raises(ValueError, match="unknown fault site"):
            fault_point("no.such.site")
        with pytest.raises(ValueError, match="unknown fault site"):
            arm("no.such.site")
        with pytest.raises(ValueError, match="unknown fault site"):
            with inject("no.such.site"):
                pass

    def test_register_extension_site(self):
        name = faults.register_site("test.custom", "suite-local site")
        assert name in known_sites()
        arm(name)
        assert fault_point(name) is True


class TestArming:
    def test_unarmed_is_inert(self):
        assert fault_point("jit.spawn") is False
        assert faults.reached("jit.spawn") == 1
        assert faults.fired("jit.spawn") == 0

    def test_fires_exactly_times(self):
        arm("jit.spawn", times=2)
        assert [fault_point("jit.spawn") for _ in range(4)] == [
            True, True, False, False,
        ]
        assert faults.fired("jit.spawn") == 2
        assert faults.reached("jit.spawn") == 4

    def test_after_skips_hits(self):
        arm("jit.load", times=1, after=2)
        assert [fault_point("jit.load") for _ in range(4)] == [
            False, False, True, False,
        ]

    def test_unlimited(self):
        arm("comm.send.drop", times=None)
        assert all(fault_point("comm.send.drop") for _ in range(10))
        disarm("comm.send.drop")
        assert fault_point("comm.send.drop") is False

    def test_exception_class_and_instance(self):
        arm("jit.spawn", exc=OSError)
        with pytest.raises(OSError, match="injected fault"):
            fault_point("jit.spawn")
        arm("jit.spawn", exc=RuntimeError("custom message"))
        with pytest.raises(RuntimeError, match="custom message"):
            fault_point("jit.spawn")

    def test_bad_arguments(self):
        with pytest.raises(ValueError):
            arm("jit.spawn", times=0)
        with pytest.raises(ValueError):
            arm("jit.spawn", after=-1)

    def test_inject_restores_previous_state(self):
        arm("jit.spawn", times=5)
        with inject("jit.spawn", times=1):
            assert fault_point("jit.spawn") is True
            assert fault_point("jit.spawn") is False  # inner exhausted
        # outer arm restored with its original budget
        assert faults.active()["jit.spawn"] == (5, 0)
        disarm()
        assert faults.active() == {}

    def test_reset_clears_counters_and_arms(self):
        arm("jit.spawn")
        fault_point("jit.spawn")
        faults.reset()
        assert faults.reached("jit.spawn") == 0
        assert faults.fired("jit.spawn") == 0
        assert faults.active() == {}


class TestEnvActivation:
    def test_env_spec_arms_sites(self, monkeypatch):
        monkeypatch.setenv(
            "SNOWFLAKE_FAULTS", "jit.spawn:2, comm.send.drop, jit.load:*@1"
        )
        assert faults.active() == {
            "jit.spawn": (2, 0),
            "comm.send.drop": (1, 0),
            "jit.load": (None, 1),
        }
        assert fault_point("jit.spawn") is True
        assert fault_point("jit.spawn") is True
        assert fault_point("jit.spawn") is False

    def test_env_change_reparsed_lazily(self, monkeypatch):
        monkeypatch.setenv("SNOWFLAKE_FAULTS", "jit.spawn")
        assert fault_point("jit.spawn") is True
        monkeypatch.setenv("SNOWFLAKE_FAULTS", "jit.load")
        assert fault_point("jit.spawn") is False
        assert fault_point("jit.load") is True

    def test_manual_arm_wins_over_env(self, monkeypatch):
        arm("jit.spawn", times=7)
        monkeypatch.setenv("SNOWFLAKE_FAULTS", "jit.spawn:1")
        assert faults.active()["jit.spawn"] == (7, 0)

    def test_bad_env_site_raises(self, monkeypatch):
        monkeypatch.setenv("SNOWFLAKE_FAULTS", "definitely.not.a.site")
        with pytest.raises(ValueError, match="unknown fault site"):
            fault_point("jit.spawn")

    def test_env_drives_backend_invoke_end_to_end(self, monkeypatch, rng):
        import numpy as np

        from repro import Component, RectDomain, Stencil, WeightArray

        lap = Component(
            "u", WeightArray([[0, 1, 0], [1, -4, 1], [0, 1, 0]])
        )
        k = Stencil(lap, "out", RectDomain((1, 1), (-1, -1))).compile(
            backend="numpy"
        )
        u = rng.random((8, 8))
        monkeypatch.setenv("SNOWFLAKE_FAULTS", "backend.invoke")
        with pytest.raises(InjectedFault):
            k(u=u, out=np.zeros_like(u))
        # fault budget spent: the very next call succeeds
        k(u=u, out=np.zeros_like(u))
