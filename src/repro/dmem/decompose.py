"""1-D block decomposition of grids along the outermost dimension.

Each rank owns a contiguous slab of dim-0 rows plus a ``halo`` of ghost
rows each side (clipped at the global array ends — the *physical*
boundary ghosts belong to the edge ranks and are updated by the user's
boundary stencils, not by exchange).
"""

from __future__ import annotations

from dataclasses import dataclass

import numpy as np

__all__ = ["BlockDecomposition"]


@dataclass(frozen=True)
class RankSlab:
    """One rank's slice of the global dim-0 index space."""

    rank: int
    own_lo: int          # first owned global row
    own_hi: int          # one past last owned global row
    base: int            # first *stored* global row (own_lo - halo, clipped)
    stop: int            # one past last stored global row

    @property
    def local_own_lo(self) -> int:
        return self.own_lo - self.base

    @property
    def local_own_hi(self) -> int:
        return self.own_hi - self.base

    @property
    def rows(self) -> int:
        return self.stop - self.base

    def to_local(self, global_row: int) -> int:
        return global_row - self.base


class BlockDecomposition:
    """Split ``n_rows`` across ``size`` ranks with a ``halo`` overlap."""

    def __init__(self, n_rows: int, size: int, halo: int) -> None:
        if size < 1:
            raise ValueError("need at least one rank")
        if halo < 0:
            raise ValueError("halo must be non-negative")
        if n_rows < size:
            raise ValueError(
                f"cannot split {n_rows} rows across {size} ranks"
            )
        self.n_rows = int(n_rows)
        self.size = int(size)
        self.halo = int(halo)
        self.slabs: list[RankSlab] = []
        base_rows = n_rows // size
        extra = n_rows % size
        lo = 0
        for r in range(size):
            rows = base_rows + (1 if r < extra else 0)
            hi = lo + rows
            self.slabs.append(
                RankSlab(
                    rank=r,
                    own_lo=lo,
                    own_hi=hi,
                    base=max(lo - halo, 0),
                    stop=min(hi + halo, n_rows),
                )
            )
            lo = hi

    def local_shape(self, rank: int, global_shape: tuple[int, ...]) -> tuple[int, ...]:
        return (self.slabs[rank].rows,) + tuple(global_shape[1:])

    def scatter(self, rank: int, global_array: np.ndarray) -> np.ndarray:
        """Rank-local copy including halo rows.

        Must be a genuine copy: slabs of neighbouring ranks overlap in
        the halo region, and distributed memory means *no* aliasing —
        a view here would let one rank's writes leak into another's
        halo without a message.
        """
        s = self.slabs[rank]
        return np.array(global_array[s.base : s.stop], copy=True, order="C")

    def gather_into(
        self, rank: int, local_array: np.ndarray, global_array: np.ndarray
    ) -> None:
        """Copy a rank's *owned* rows back into the global array."""
        s = self.slabs[rank]
        global_array[s.own_lo : s.own_hi] = local_array[
            s.local_own_lo : s.local_own_hi
        ]

    def owner_of(self, global_row: int) -> int:
        for s in self.slabs:
            if s.own_lo <= global_row < s.own_hi:
                return s.rank
        raise IndexError(global_row)
