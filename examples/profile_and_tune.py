"""Measure first, then tune: the optimization workflow end to end.

Applies the discipline the numpy/HPC guides preach — no optimization
without measuring — to a Snowflake stencil pipeline:

1. profile a multigrid smoothing step per stencil (which operator is
   actually hot?),
2. let the pass manager clean the group (dead-stencil elimination +
   barrier-minimizing reorder),
3. autotune the tile size for the hot stencil's backend,
4. compare the final tuned/fused kernel against the naive compile,
5. record the whole tuned run as a span trace
   (profile_and_tune.trace.json — open it in https://ui.perfetto.dev
   to see passes, JIT compiles and kernel calls on a timeline).

Run:  python examples/profile_and_tune.py
"""

import numpy as np

from repro.core.components import Component
from repro.core.domains import RectDomain
from repro.core.stencil import Stencil, StencilGroup
from repro.core.weights import WeightArray
from repro.frontend import default_pipeline
from repro.hpgmg.operators import (
    boundary_stencils,
    cc_diagonal,
    cc_laplacian,
    residual_stencil,
    smooth_group,
)
from repro.telemetry import tracing
from repro.tuning import autotune_tile
from repro.util.profiling import format_profile, profile_group
from repro.util.timing import best_of

N = 96
SHAPE = (N + 2, N + 2)
H = 1.0 / N

# a realistic pipeline: smooth, then residual, plus a leftover debug
# stencil nobody reads (it happens).
group = smooth_group(2, cc_laplacian(2, H), lam=1 / cc_diagonal(2, H))
group = group + residual_stencil(2, cc_laplacian(2, H))
group = group + Stencil(
    Component("x", WeightArray([[1]])), "debug_copy",
    RectDomain((1, 1), (-1, -1)), name="debug_copy",
)

rng = np.random.default_rng(1)
arrays = {g: np.zeros(SHAPE) for g in group.grids()}
arrays["x"] = rng.random(SHAPE)
arrays["rhs"] = rng.random(SHAPE)

# -- 1. profile -----------------------------------------------------------------
profiles = profile_group(group, {k: v.copy() for k, v in arrays.items()},
                         backend="c", repeats=3)
print(format_profile(profiles))

# -- 2. optimize the group -------------------------------------------------------
pm = default_pipeline()
shapes = {g: SHAPE for g in group.grids()}
optimized = pm.run(group, shapes, live_grids={"x", "res"})
print("\npass pipeline:")
print(pm.report())

# -- 3. autotune the backend ------------------------------------------------------
tune = autotune_tile(
    optimized, {k: v.copy() for k, v in arrays.items() if k in optimized.grids()},
    backend="openmp", candidates=(2, 8, 32), repeats=2,
)
print(f"\nautotune: best tile {tune.best_tile} "
      f"({tune.speedup_over_worst():.2f}x over the worst candidate)")

# -- 4. final comparison ------------------------------------------------------------
def timed(g, **opts):
    kernel = g.compile(backend="openmp", **opts)
    work = {k: arrays[k].copy() for k in g.grids()}
    return best_of(lambda: kernel(**work), warmup=1, repeats=3)

naive = timed(group)
tuned = timed(optimized, tile=tune.best_tile, fuse=True)
print(f"\nnaive pipeline:      {naive * 1e3:7.3f} ms")
print(f"optimized pipeline:  {tuned * 1e3:7.3f} ms "
      f"({naive / tuned:.2f}x, having dropped "
      f"{len(group) - len(optimized)} dead stencil(s))")

# -- 5. trace the tuned pipeline -----------------------------------------------
with tracing.session():
    pipeline = default_pipeline()
    traced = pipeline.run(group, shapes, live_grids={"x", "res"})
    kernel = traced.compile(
        backend="openmp", shapes=shapes, tile=tune.best_tile, fuse=True,
    )
    work = {k: arrays[k].copy() for k in traced.grids()}
    kernel(**work)
    tracing.export_chrome_trace("profile_and_tune.trace.json")
print("\nwrote profile_and_tune.trace.json "
      "(open in https://ui.perfetto.dev)")
