"""Distributed-memory backend: rank scaling of the VC GSRB smoother.

On a single-core container the interesting measurable is not speedup
but the *cost decomposition*: per-rank kernel time stays proportional
to the slab size while communication volume grows with the number of
interfaces.  ``extra_info`` records messages and halo bytes per sweep.
"""

import numpy as np
import pytest

from repro.dmem import DistributedKernel
from repro.hpgmg.operators import smooth_group, vc_laplacian


def make(n, nranks):
    group = smooth_group(2, vc_laplacian(2, 1.0 / n), lam="lam")
    shape = (n + 2, n + 2)
    rng = np.random.default_rng(3)
    arrays = {g: rng.random(shape) for g in group.grids()}
    arrays["lam"] = 0.01 * np.ones(shape)
    dk = DistributedKernel(group, shape, nranks, backend="c")
    return dk, arrays


@pytest.mark.parametrize("nranks", [1, 2, 4])
def test_distributed_gsrb(benchmark, nranks, op_size):
    n = max(op_size, 32)
    dk, arrays = make(n, nranks)
    dk(**arrays)  # warmup (JIT per rank)
    m0, b0 = dk.comm_stats.messages, dk.comm_stats.bytes_sent

    benchmark(lambda: dk(**arrays))

    sweeps = dk.comm_stats.messages - m0
    benchmark.extra_info["ranks"] = nranks
    if benchmark.stats["rounds"]:
        per_call = sweeps / (
            benchmark.stats["rounds"] * benchmark.stats["iterations"]
        )
        benchmark.extra_info["messages_per_sweep"] = round(per_call, 1)
