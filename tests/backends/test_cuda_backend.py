"""CUDA micro-compiler: kernel source, launch plan, simulator execution."""

import numpy as np
import pytest

from repro.backends.cuda_backend import (
    DEFAULT_BLOCK,
    generate_cuda_program,
)
from repro.backends.opencl_backend import Barrier, CopyBuffer, KernelLaunch
from repro.core.components import Component
from repro.core.domains import RectDomain
from repro.core.stencil import Stencil, StencilGroup
from repro.core.weights import WeightArray
from repro.hpgmg.operators import cc_laplacian, red_black_domains

INTERIOR = RectDomain((1, 1), (-1, -1))
LAP = Component("u", WeightArray([[0, 1, 0], [1, -4, 1], [0, 1, 0]]))


def program_for(group, shapes, **kw):
    return generate_cuda_program(group, shapes, np.float64, **kw)


class TestKernelSource:
    def test_global_kernel_declared(self):
        g = StencilGroup([Stencil(LAP, "out", INTERIOR)])
        prog = program_for(g, {"u": (16, 16), "out": (16, 16)})
        assert "__global__ void sf_cuda_k0_0" in prog.source
        assert "blockIdx.x * blockDim.x + threadIdx.x" in prog.source
        assert "__restrict__" in prog.source

    def test_guard_present(self):
        g = StencilGroup([Stencil(LAP, "out", INTERIOR)])
        prog = program_for(g, {"u": (10, 10), "out": (10, 10)})
        assert "return;" in prog.source

    def test_one_kernel_per_box(self):
        red, _ = red_black_domains(2)
        g = StencilGroup([Stencil(LAP, "u", red)])
        prog = program_for(g, {"u": (16, 16)})
        assert set(prog.kernel_ranges) == {"sf_cuda_k0_0", "sf_cuda_k0_1"}

    def test_3d_rolls_leading_dim(self):
        s = Stencil(cc_laplacian(3, 0.2, grid="u"), "out",
                    RectDomain((1, 1, 1), (-1, -1, -1)))
        prog = program_for(StencilGroup([s]),
                           {"u": (8, 8, 8), "out": (8, 8, 8)})
        assert prog.kernel_ranges["sf_cuda_k0_0"] == (6, 6)
        assert "for (long i0" in prog.source

    def test_block_shape_recorded(self):
        g = StencilGroup([Stencil(LAP, "out", INTERIOR)])
        prog = program_for(g, {"u": (16, 16), "out": (16, 16)},
                           block=(16, 2))
        assert prog.block == (16, 2)


class TestHostPlan:
    def test_barrier_per_phase(self):
        s1 = Stencil(LAP, "a", INTERIOR, name="s1")
        s2 = Stencil(Component("a", WeightArray([[1]])), "b", INTERIOR, name="s2")
        g = StencilGroup([s1, s2])
        prog = program_for(g, {k: (12, 12) for k in g.grids()})
        kinds = [type(op).__name__ for op in prog.ops]
        assert kinds == ["KernelLaunch", "Barrier", "KernelLaunch", "Barrier"]

    def test_hazard_gets_device_copy(self):
        hazard = Stencil(
            Component("u", WeightArray([[0, 1, 0], [1, 0, 1], [0, 1, 0]])),
            "u", INTERIOR,
        )
        prog = program_for(StencilGroup([hazard]), {"u": (12, 12)})
        assert isinstance(prog.ops[0], CopyBuffer)


class TestSimulatorExecution:
    def test_matches_manual(self, rng):
        g = StencilGroup([Stencil(LAP, "out", INTERIOR)])
        k = g.compile(backend="cuda-sim")
        u = rng.random((20, 20))
        out = np.zeros((20, 20))
        k(u=u, out=out)
        manual = (
            u[:-2, 1:-1] + u[2:, 1:-1] + u[1:-1, :-2] + u[1:-1, 2:]
            - 4 * u[1:-1, 1:-1]
        )
        np.testing.assert_allclose(out[1:-1, 1:-1], manual)

    @pytest.mark.parametrize("block", [(1, 1), (8, 8), (32, 4), (5, 3)])
    def test_any_block_shape_same_answer(self, rng, block):
        g = StencilGroup([Stencil(LAP, "out", INTERIOR)])
        u = rng.random((13, 17))
        ref = np.zeros((13, 17))
        g.compile(backend="python")(u=u, out=ref)
        out = np.zeros((13, 17))
        g.compile(backend="cuda-sim", block=block)(u=u, out=out)
        np.testing.assert_allclose(out, ref)

    def test_verbatim_source_included(self):
        from repro.cudasim.translate import translation_unit

        g = StencilGroup([Stencil(LAP, "out", INTERIOR)])
        prog = program_for(g, {"u": (10, 10), "out": (10, 10)})
        tu = translation_unit(prog, "double")
        assert prog.source in tu
        assert "drive_sf_cuda_k0_0" in tu

    def test_1d_stencil(self, rng):
        s = Stencil(Component("u", WeightArray([1.0, -2.0, 1.0])), "out",
                    RectDomain((1,), (-1,)))
        k = StencilGroup([s]).compile(backend="cuda-sim")
        u = rng.random(40)
        out = np.zeros(40)
        k(u=u, out=out)
        np.testing.assert_allclose(out[1:-1], u[:-2] - 2 * u[1:-1] + u[2:])

    def test_unknown_option(self):
        g = StencilGroup([Stencil(LAP, "out", INTERIOR)])
        with pytest.raises(TypeError):
            g.compile(backend="cuda-sim", warps=4)

    def test_gsrb_smoother_end_to_end(self, rng):
        from repro.hpgmg.operators import smooth_group, vc_laplacian

        group = smooth_group(3, vc_laplacian(3, 1 / 6), lam="lam")
        shape = (8, 8, 8)
        base = {g: rng.random(shape) for g in group.grids()}
        base["lam"] = 0.05 + 0.01 * rng.random(shape)
        ref = {g: a.copy() for g, a in base.items()}
        group.compile(backend="python")(**ref)
        got = {g: a.copy() for g, a in base.items()}
        group.compile(backend="cuda-sim")(**got)
        np.testing.assert_allclose(got["x"], ref["x"], rtol=1e-12)
