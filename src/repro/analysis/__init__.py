"""Dependence analysis: Diophantine solvers, footprints, DAG planning."""

from .colors import (
    checkerboard,
    color_parallel_safe,
    domains_disjoint,
    is_partition,
    k_coloring,
    union_self_disjoint,
)
from .dag import ExecutionPlan, build_dag, greedy_phases, plan, wavefront_phases
from .dependence import (
    Hazard,
    cross_stencil_dependence,
    group_dependence_details,
    group_dependences,
    intra_stencil_hazards,
    is_parallel_safe,
)
from .diophantine import (
    BoxedLinearSystem,
    extended_gcd,
    lattice_range_intersect,
    lattice_ranges_intersect_nonempty,
    solve_linear_2var,
    solve_linear_nvar,
)
from .footprint import (
    Access,
    StencilAccesses,
    access_conflict_details,
    access_conflicts,
    stencil_accesses,
)
from .interval import (
    interval_cross_stencil_dependence,
    interval_group_dependences,
    interval_is_parallel_safe,
)
from .optimize import (
    FusionPair,
    eliminate_dead_stencils,
    fusion_candidates,
    reorder_for_phases,
)

__all__ = [
    "checkerboard",
    "color_parallel_safe",
    "domains_disjoint",
    "is_partition",
    "k_coloring",
    "union_self_disjoint",
    "ExecutionPlan",
    "build_dag",
    "greedy_phases",
    "plan",
    "wavefront_phases",
    "Hazard",
    "cross_stencil_dependence",
    "group_dependence_details",
    "group_dependences",
    "intra_stencil_hazards",
    "is_parallel_safe",
    "BoxedLinearSystem",
    "extended_gcd",
    "lattice_range_intersect",
    "lattice_ranges_intersect_nonempty",
    "solve_linear_2var",
    "solve_linear_nvar",
    "Access",
    "StencilAccesses",
    "access_conflict_details",
    "access_conflicts",
    "stencil_accesses",
    "interval_cross_stencil_dependence",
    "interval_group_dependences",
    "interval_is_parallel_safe",
    "FusionPair",
    "eliminate_dead_stencils",
    "fusion_candidates",
    "reorder_for_phases",
]
