"""Figure mains render complete tables (cheap sizes)."""

import pytest

from repro.figures import fig6, fig7, fig8, fig9
from repro.figures.common import DEFAULT_SIZE, OPERATORS, build_case, operator_work
from repro.machine.model import KernelWork, predict_sweep_time
from repro.machine.specs import I7_4765T


class TestMains:
    def test_fig6_main_renders(self, capsys):
        fig6.main(sizes=(2**14,), repeats=1)
        out = capsys.readouterr().out
        assert "Fig.6" in out and "GB/s" in out

    def test_fig7_main_renders(self, capsys):
        fig7.main(n=8, model_n=64, repeats=1)
        out = capsys.readouterr().out
        assert "Fig.7" in out
        for op in OPERATORS:
            assert op in out

    def test_fig8_main_renders(self, capsys):
        fig8.main(host_sizes=(8,), model_sizes=(32,), repeats=1)
        out = capsys.readouterr().out
        assert "Fig.8" in out and "32^3" in out

    def test_fig9_main_renders(self, capsys):
        fig9.main(n=8, cycles=1, model_n=32)
        out = capsys.readouterr().out
        assert "Fig.9" in out and "MDOF/s" in out


class TestWorkloadProperties:
    def test_default_size_is_laptop_scale(self):
        assert DEFAULT_SIZE <= 128

    @pytest.mark.parametrize("name", OPERATORS)
    def test_case_seeds_are_deterministic(self, name):
        a = build_case(name, 8)
        b = build_case(name, 8)
        import numpy as np

        np.testing.assert_array_equal(
            a.level.grids["x"], b.level.grids["x"]
        )

    def test_work_scales_cubically(self):
        small = operator_work("vc_gsrb", 16)
        big = operator_work("vc_gsrb", 32)
        assert big.points == 8 * small.points
        assert big.bytes_per_point == small.bytes_per_point

    def test_model_time_monotone_in_points(self):
        from repro.machine.model import IMPLEMENTATIONS

        impl = IMPLEMENTATIONS["hpgmg-openmp"]
        times = [
            predict_sweep_time(I7_4765T, impl, operator_work("vc_gsrb", n))
            for n in (16, 32, 64, 128)
        ]
        assert times == sorted(times)

    def test_vcycle_work_total_traffic_geometric(self):
        # coarse levels add ~1/(2^d - 1) of the fine level's traffic
        works64 = fig9.vcycle_work(64)
        works32 = fig9.vcycle_work(32)
        t64 = sum(w.points * w.bytes_per_point for w in works64)
        t32 = sum(w.points * w.bytes_per_point for w in works32)
        assert 6.0 < t64 / t32 < 9.0
