"""OpenMP micro-compiler: task structure, barrier placement, options."""

import numpy as np
import pytest

from repro.backends.openmp_backend import generate_openmp_source
from repro.core.components import Component
from repro.core.domains import RectDomain
from repro.core.stencil import Stencil, StencilGroup
from repro.core.weights import WeightArray
from repro.hpgmg.operators import cc_laplacian, smooth_group

INTERIOR = RectDomain((1, 1), (-1, -1))
LAP = Component("u", WeightArray([[0, 1, 0], [1, -4, 1], [0, 1, 0]]))


def src_for(group, shapes, **kw):
    return generate_openmp_source(group, shapes, np.float64, **kw)


class TestStructure:
    def test_parallel_single_tasks(self):
        g = StencilGroup([Stencil(LAP, "out", INTERIOR)])
        src = src_for(g, {"u": (32, 32), "out": (32, 32)})
        assert "#pragma omp parallel" in src
        assert "#pragma omp single" in src
        assert "#pragma omp task" in src
        assert "#pragma omp taskwait" in src

    def test_barrier_count_matches_greedy_plan(self):
        group = smooth_group(2, cc_laplacian(2, 0.1), lam=0.1)
        shapes = {g: (16, 16) for g in group.grids()}
        src = src_for(group, shapes)
        # bc x4 | red | bc x4 | black -> 4 phases -> 4 taskwaits (one per
        # phase, including the trailing one)
        assert src.count("#pragma omp taskwait") == 4

    def test_independent_stencils_share_a_phase(self):
        s1 = Stencil(LAP, "a", INTERIOR, name="s1")
        s2 = Stencil(Component("v", WeightArray([[1]])), "b", INTERIOR, name="s2")
        g = StencilGroup([s1, s2])
        src = src_for(g, {k: (16, 16) for k in g.grids()})
        assert src.count("#pragma omp taskwait") == 1

    def test_chain_gets_barrier_between(self):
        s1 = Stencil(LAP, "a", INTERIOR, name="s1")
        s2 = Stencil(Component("a", WeightArray([[1]])), "b", INTERIOR, name="s2")
        g = StencilGroup([s1, s2])
        src = src_for(g, {k: (16, 16) for k in g.grids()})
        assert src.count("#pragma omp taskwait") == 2

    def test_tiling_splits_into_tasks(self):
        g = StencilGroup([Stencil(LAP, "out", INTERIOR)])
        src = src_for(g, {"u": (64, 64), "out": (64, 64)}, tile=8)
        assert "for (int64_t t0" in src
        # the task pragma sits inside the tile loop
        assert src.index("for (int64_t t0") < src.index("#pragma omp task")

    def test_snapshot_alloc_outside_parallel_region(self):
        hazard = Stencil(
            Component("u", WeightArray([[0, 1, 0], [1, 0, 1], [0, 1, 0]])),
            "u", INTERIOR,
        )
        g = StencilGroup([hazard])
        src = src_for(g, {"u": (16, 16)})
        assert src.index("malloc") < src.index("#pragma omp parallel")
        assert "memcpy" in src and "free(snap_0);" in src

    def test_schedule_policies(self):
        g = StencilGroup([Stencil(LAP, "out", INTERIOR)])
        shapes = {"u": (16, 16), "out": (16, 16)}
        for policy in ("greedy", "wavefront", "serial"):
            assert "omp" in src_for(g, shapes, schedule=policy)


class TestExecution:
    def test_openmp_options_do_not_change_results(self, rng):
        group = smooth_group(2, cc_laplacian(2, 1 / 14), lam=0.1 * (1 / 14) ** 2)
        shape = (16, 16)
        base = None
        for opts in (
            {},
            {"tile": 4},
            {"multicolor": False},
            {"schedule": "wavefront"},
            {"schedule": "serial"},
        ):
            arrays = {g: np.asarray(rng_copy(shape)) for g in group.grids()}
            kernel = group.compile(backend="openmp", **opts)
            kernel(**arrays)
            if base is None:
                base = arrays
            else:
                for g in base:
                    np.testing.assert_allclose(arrays[g], base[g], atol=1e-13)

    def test_unknown_option(self):
        g = StencilGroup([Stencil(LAP, "out", INTERIOR)])
        with pytest.raises(TypeError):
            g.compile(backend="openmp", gpus=4)


_rng_state = {}


def rng_copy(shape):
    """Deterministic per-shape random arrays (same across option runs)."""
    key = shape
    if key not in _rng_state:
        _rng_state[key] = np.random.default_rng(5).random(shape)
    return _rng_state[key].copy()
