"""WeightArray / SparseArray: centering, normalization, queries."""

import pytest

from repro.core.expr import Constant, Param
from repro.core.weights import SparseArray, WeightArray, as_weights


class TestWeightArray1D:
    def test_centering_odd_length(self):
        w = WeightArray([1, -2, 1])
        assert w.entries == {(-1,): 1.0, (0,): -2.0, (1,): 1.0}

    def test_centering_even_length_rounds_down(self):
        # length 2: centre is index 0, so offsets are {0, +1}
        w = WeightArray([3, 4])
        assert w.entries == {(0,): 3.0, (1,): 4.0}

    def test_single_element_is_pure_center(self):
        assert WeightArray([7]).entries == {(0,): 7.0}

    def test_zeros_dropped(self):
        w = WeightArray([0, 1, 0])
        assert w.offsets() == [(0,)]

    def test_ndim(self):
        assert WeightArray([1, 2, 3]).ndim == 1


class TestWeightArray2D:
    def test_paper_3x3(self):
        w = WeightArray([[0, 1, 0], [1, -4, 1], [0, 1, 0]])
        assert w.ndim == 2
        assert w[(0, 0)] == -4.0
        assert w[(-1, 0)] == 1.0
        assert w[(0, -1)] == 1.0
        assert (1, 1) not in w

    def test_shape(self):
        assert WeightArray([[1, 2, 3]]).shape == (1, 3)

    def test_column_vector(self):
        w = WeightArray([[0], [1], [0]])
        assert w.ndim == 2
        assert w.entries == {(0, 0): 1.0}

    def test_ragged_rejected(self):
        with pytest.raises(ValueError):
            WeightArray([[1, 2], [3]])

    def test_empty_rejected(self):
        with pytest.raises(ValueError):
            WeightArray([[]])

    def test_scalar_rejected(self):
        with pytest.raises(TypeError):
            WeightArray(3.0)


class TestExpressionWeights:
    def test_expr_entries_survive(self):
        p = Param("w")
        w = WeightArray([0, p, 0])
        assert w[(0,)] is p

    def test_constant_zero_expr_dropped(self):
        w = WeightArray([Constant(0.0), 1, 2])
        assert (-1,) not in w

    def test_3d_nesting(self):
        w = WeightArray([[[1]], [[2]], [[3]]])
        assert w.ndim == 3
        assert w[(1, 0, 0)] == 3.0


class TestSparseArray:
    def test_basic(self):
        s = SparseArray({(0, 5): 2.0, (-3, 0): 1.0})
        assert s.ndim == 2
        assert s[(0, 5)] == 2.0

    def test_zero_dropped(self):
        s = SparseArray({(0,): 0.0, (1,): 1.0})
        assert (0,) not in s

    def test_requires_entries(self):
        with pytest.raises(ValueError):
            SparseArray({})

    def test_rejects_mixed_dims(self):
        with pytest.raises(ValueError):
            SparseArray({(0,): 1.0, (0, 0): 1.0})

    def test_rejects_bad_weight_type(self):
        with pytest.raises(TypeError):
            SparseArray({(0,): "x"})

    def test_large_offsets_for_boundaries(self):
        s = SparseArray({(10, 0): -1.0})
        assert s.radius() == 10


class TestQueries:
    def test_radius(self):
        assert WeightArray([[0, 1, 0], [1, -4, 1], [0, 1, 0]]).radius() == 1
        assert SparseArray({(2, 0): 1.0}).radius() == 2
        assert SparseArray({(0, 0): 1.0}).radius() == 0

    def test_symmetric(self):
        assert WeightArray([1, -2, 1]).is_symmetric()
        assert not WeightArray([1, -2, 0.5]).is_symmetric()

    def test_asymmetric_boundary_stencil(self):
        assert not SparseArray({(1,): -1.0}).is_symmetric()

    def test_equality_across_types(self):
        w = WeightArray([1, -2, 1])
        s = SparseArray({(-1,): 1.0, (0,): -2.0, (1,): 1.0})
        assert w == s
        assert hash(w) == hash(s)

    def test_len_and_iter(self):
        w = WeightArray([1, 0, 2])
        assert len(w) == 2
        assert dict(iter(w)) == {(-1,): 1.0, (1,): 2.0}

    def test_signature_stable(self):
        a = WeightArray([1, -2, 1]).signature()
        b = WeightArray([1, -2, 1]).signature()
        assert a == b


class TestAsWeights:
    def test_list(self):
        assert as_weights([1, 2, 3]).ndim == 1

    def test_dict(self):
        assert as_weights({(0, 0): 1.0}).ndim == 2

    def test_scalar_needs_ndim(self):
        with pytest.raises(ValueError):
            as_weights(1.0)
        w = as_weights(1.0, ndim=3)
        assert w.entries == {(0, 0, 0): 1.0}

    def test_passthrough(self):
        w = WeightArray([1])
        assert as_weights(w) is w

    def test_rejects_garbage(self):
        with pytest.raises(TypeError):
            as_weights(object())
