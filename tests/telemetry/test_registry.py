"""The telemetry registry itself: modes, hooks, snapshot, export."""

import json
import threading
import warnings

import pytest

from repro import telemetry


class TestModes:
    def test_default_is_counters(self):
        assert telemetry.mode() == "counters"
        assert telemetry.enabled()
        assert not telemetry.events_enabled()

    def test_env_controls_mode(self, monkeypatch):
        monkeypatch.setenv("SNOWFLAKE_TELEMETRY", "off")
        assert telemetry.mode() == "off"
        monkeypatch.setenv("SNOWFLAKE_TELEMETRY", "trace")
        assert telemetry.mode() == "trace"
        assert telemetry.events_enabled()

    def test_env_reread_lazily_without_reimport(self, monkeypatch):
        assert telemetry.mode() == "counters"
        monkeypatch.setenv("SNOWFLAKE_TELEMETRY", "off")
        assert telemetry.mode() == "off"

    def test_invalid_env_falls_back_to_counters(self, monkeypatch):
        monkeypatch.setenv("SNOWFLAKE_TELEMETRY", "verbose")
        with warnings.catch_warnings(record=True):
            warnings.simplefilter("always")
            assert telemetry.mode() == "counters"

    def test_set_mode_wins_over_env(self, monkeypatch):
        monkeypatch.setenv("SNOWFLAKE_TELEMETRY", "off")
        telemetry.set_mode("trace")
        assert telemetry.mode() == "trace"
        telemetry.set_mode(None)
        assert telemetry.mode() == "off"

    def test_set_mode_rejects_unknown(self):
        with pytest.raises(ValueError):
            telemetry.set_mode("loud")


class TestCounters:
    def test_count_accumulates(self):
        telemetry.count("x")
        telemetry.count("x", 4)
        assert telemetry.snapshot()["counters"]["x"] == 5

    def test_off_mode_records_nothing(self):
        telemetry.set_mode("off")
        telemetry.count("x")
        telemetry.record_time("t", 1.0)
        telemetry.kernel_call("c", 1.0, 100)
        telemetry.event("e")
        telemetry.set_mode("counters")
        snap = telemetry.snapshot()
        assert snap["counters"] == {}
        assert snap["timers"] == {}
        assert snap["kernels"] == {}

    def test_thread_safety(self):
        def worker():
            for _ in range(1000):
                telemetry.count("races")

        threads = [threading.Thread(target=worker) for _ in range(8)]
        for t in threads:
            t.start()
        for t in threads:
            t.join()
        assert telemetry.snapshot()["counters"]["races"] == 8000


class TestTimers:
    def test_record_time_aggregates(self):
        telemetry.record_time("t", 2.0)
        telemetry.record_time("t", 4.0)
        agg = telemetry.snapshot()["timers"]["t"]
        assert agg["count"] == 2
        assert agg["total_s"] == pytest.approx(6.0)
        assert agg["mean_s"] == pytest.approx(3.0)
        assert agg["min_s"] == pytest.approx(2.0)
        assert agg["max_s"] == pytest.approx(4.0)

    def test_timed_records_on_clean_exit(self):
        with telemetry.timed("block"):
            pass
        assert telemetry.snapshot()["timers"]["block"]["count"] == 1

    def test_timed_skips_raised_body(self):
        with pytest.raises(RuntimeError):
            with telemetry.timed("block"):
                raise RuntimeError("boom")
        assert "block" not in telemetry.snapshot()["timers"]


class TestKernels:
    def test_kernel_call_rates(self):
        telemetry.kernel_call("c", 0.5, 1000)
        telemetry.kernel_call("c", 0.5, 1000)
        k = telemetry.snapshot()["kernels"]["c"]
        assert k["calls"] == 2
        assert k["points"] == 2000
        assert k["points_per_s"] == pytest.approx(2000.0)

    def test_zero_time_yields_none_not_inf(self):
        telemetry.kernel_call("c", 0.0, 1000)
        assert telemetry.snapshot()["kernels"]["c"]["points_per_s"] is None


class TestTrace:
    def test_events_only_in_trace_mode(self):
        telemetry.event("ignored", a=1)
        telemetry.set_mode("trace")
        telemetry.event("seen", a=2)
        snap = telemetry.snapshot()
        names = [e["name"] for e in snap["trace"]]
        assert names == ["seen"]
        assert snap["trace"][0]["a"] == 2

    def test_snapshot_omits_trace_outside_trace_mode(self):
        assert "trace" not in telemetry.snapshot()

    def test_ring_buffer_bounded(self):
        telemetry.set_mode("trace")
        for i in range(telemetry.TRACE_CAPACITY + 50):
            telemetry.event("e", i=i)
        trace = telemetry.snapshot()["trace"]
        assert len(trace) == telemetry.TRACE_CAPACITY
        assert trace[-1]["i"] == telemetry.TRACE_CAPACITY + 49


class TestSnapshotSchema:
    def test_snapshot_is_tagged(self):
        snap = telemetry.snapshot()
        assert snap["schema"] == telemetry.STATS_SCHEMA == "snowflake-stats/1"

    def test_snapshot_carries_histogram_section(self):
        telemetry.record_time("t", 0.1)
        snap = telemetry.snapshot()
        assert snap["histograms"]["t"][0]["count"] == 1

    def test_snapshot_under_concurrent_key_registration(self):
        # regression companion to the shard-registration race: threads
        # minting brand-new counter/timer/kernel keys while the main
        # thread snapshots must never raise or lose an entry
        stop = threading.Event()
        started = threading.Barrier(4)

        def churn(tag):
            started.wait()
            for i in range(300):
                telemetry.count(f"c.{tag}.{i}")
                telemetry.record_time(f"t.{tag}.{i}", 0.001)
                telemetry.kernel_call(f"b{tag}", 0.001, 10)
            stop.set()

        threads = [
            threading.Thread(target=churn, args=(t,)) for t in range(3)
        ]
        for t in threads:
            t.start()
        started.wait()
        while not stop.is_set():
            snap = telemetry.snapshot()
            json.dumps(snap)  # a torn snapshot would not serialize
        for t in threads:
            t.join()
        snap = telemetry.snapshot()
        assert sum(
            1 for k in snap["counters"] if k.startswith("c.")
        ) == 3 * 300
        assert sum(
            1 for k in snap["timers"] if k.startswith("t.")
        ) == 3 * 300


class TestReset:
    def test_reset_zeroes_everything(self):
        telemetry.count("x")
        telemetry.record_time("t", 1.0)
        telemetry.kernel_call("c", 1.0, 10)
        telemetry.reset()
        snap = telemetry.snapshot()
        assert snap["counters"] == {}
        assert snap["timers"] == {}
        assert snap["kernels"] == {}


class TestExport:
    def test_bench_json_schema(self, tmp_path):
        telemetry.count("x", 3)
        telemetry.kernel_call("c", 0.5, 500)
        path = telemetry.export_bench_json(tmp_path / "BENCH_pipeline.json")
        doc = json.loads(path.read_text())
        assert doc["schema"] == telemetry.BENCH_SCHEMA
        assert isinstance(doc["version"], str)
        assert isinstance(doc["unix_time"], float)
        assert set(doc["host"]) == {"platform", "machine", "python"}
        assert doc["counters"]["x"] == 3
        assert doc["kernels"]["c"]["points_per_s"] == pytest.approx(1000.0)

    def test_bench_json_keeps_stats_schema_alongside(self, tmp_path):
        # the bench envelope owns "schema"; the embedded registry
        # snapshot's tag is preserved under "stats_schema"
        path = telemetry.export_bench_json(tmp_path / "BENCH_x.json")
        doc = json.loads(path.read_text())
        assert doc["schema"] == telemetry.BENCH_SCHEMA
        assert doc["stats_schema"] == telemetry.STATS_SCHEMA

    def test_bench_json_honours_artifact_dir(self, tmp_path, monkeypatch):
        monkeypatch.setenv("SNOWFLAKE_ARTIFACT_DIR", str(tmp_path / "art"))
        path = telemetry.export_bench_json("BENCH_env.json")
        assert path.parent == tmp_path / "art"
        assert path.exists()


class TestReport:
    def test_format_stats_renders_tables(self):
        telemetry.count("jit.cache.miss")
        telemetry.record_time("jit.cc", 0.25)
        telemetry.kernel_call("c", 0.5, 500)
        out = telemetry.render_stats()
        assert "kernel invocations" in out
        assert "jit.cc" in out
        assert "jit.cache.miss" in out

    def test_format_stats_empty_registry(self):
        out = telemetry.format_stats(telemetry.snapshot())
        assert "telemetry mode" in out

    def test_dmem_counters_get_their_own_table(self):
        telemetry.count("dmem.transport.retransmits", 3)
        telemetry.count("dmem.restores")
        telemetry.count("jit.cache.miss")
        out = telemetry.render_stats()
        assert "distributed fabric" in out
        # dmem counters appear prefix-stripped in the fabric table and
        # stay out of the generic counter list
        assert "transport.retransmits" in out
        assert "restores" in out
        counters_block = out.split("counters")[-1]
        assert "dmem." not in counters_block
