"""Block decomposition edge cases: halo clipping, tiny slabs, ownership."""

import numpy as np
import pytest

from repro.dmem.decompose import BlockDecomposition


class TestPartition:
    def test_ownership_is_an_exact_partition(self):
        d = BlockDecomposition(17, 4, halo=1)
        covered = []
        for s in d.slabs:
            covered.extend(range(s.own_lo, s.own_hi))
        assert covered == list(range(17))

    def test_uneven_split_front_loads_extra_rows(self):
        d = BlockDecomposition(10, 3, halo=0)
        assert [s.own_hi - s.own_lo for s in d.slabs] == [4, 3, 3]

    def test_too_many_ranks_rejected(self):
        with pytest.raises(ValueError):
            BlockDecomposition(3, 4, halo=0)

    def test_negative_halo_rejected(self):
        with pytest.raises(ValueError):
            BlockDecomposition(8, 2, halo=-1)


class TestHaloClipping:
    def test_halo_wider_than_smallest_slab_still_clips_to_bounds(self):
        # rank slabs own 4/3/3 rows; a halo of 5 exceeds every slab.
        # The stored window must clip to the global array, never
        # extend past it.
        d = BlockDecomposition(10, 3, halo=5)
        for s in d.slabs:
            assert s.base == max(s.own_lo - 5, 0)
            assert s.stop == min(s.own_hi + 5, 10)
            assert 0 <= s.base <= s.own_lo
            assert s.own_hi <= s.stop <= 10

    def test_edge_ranks_have_one_sided_halo(self):
        d = BlockDecomposition(12, 3, halo=2)
        first, last = d.slabs[0], d.slabs[-1]
        assert first.base == 0  # no ghost rows before the array start
        assert last.stop == 12  # none past the end
        mid = d.slabs[1]
        assert mid.base == mid.own_lo - 2
        assert mid.stop == mid.own_hi + 2

    def test_local_coordinates_consistent(self):
        d = BlockDecomposition(20, 4, halo=3)
        for s in d.slabs:
            assert s.local_own_lo == s.own_lo - s.base
            assert s.local_own_hi - s.local_own_lo == s.own_hi - s.own_lo
            assert s.rows == s.stop - s.base
            assert s.to_local(s.own_lo) == s.local_own_lo


class TestSingleRank:
    def test_single_rank_owns_everything(self):
        d = BlockDecomposition(9, 1, halo=2)
        (s,) = d.slabs
        assert (s.own_lo, s.own_hi) == (0, 9)
        assert (s.base, s.stop) == (0, 9)  # halo fully clipped away

    def test_single_rank_scatter_gather_roundtrip(self, rng):
        d = BlockDecomposition(9, 1, halo=2)
        g = rng.random((9, 4))
        local = d.scatter(0, g)
        assert local.shape == (9, 4)
        local += 1.0
        out = np.zeros_like(g)
        d.gather_into(0, local, out)
        np.testing.assert_allclose(out, g + 1.0)

    def test_scatter_is_a_copy_not_a_view(self, rng):
        d = BlockDecomposition(8, 2, halo=1)
        g = rng.random((8, 3))
        local = d.scatter(0, g)
        local[:] = -1.0
        assert not np.any(g == -1.0)


class TestOwnerOf:
    def test_boundary_rows(self):
        d = BlockDecomposition(10, 3, halo=1)  # owns [0,4), [4,7), [7,10)
        assert d.owner_of(0) == 0
        assert d.owner_of(3) == 0
        assert d.owner_of(4) == 1  # first row of the next slab
        assert d.owner_of(6) == 1
        assert d.owner_of(7) == 2
        assert d.owner_of(9) == 2

    def test_out_of_range_raises(self):
        d = BlockDecomposition(10, 3, halo=1)
        with pytest.raises(IndexError):
            d.owner_of(10)
        with pytest.raises(IndexError):
            d.owner_of(-1)

    def test_every_row_has_exactly_one_owner(self):
        d = BlockDecomposition(23, 5, halo=2)
        owners = [d.owner_of(i) for i in range(23)]
        assert owners == sorted(owners)
        assert set(owners) == set(range(5))


class TestGather:
    def test_gather_uses_owned_rows_only(self, rng):
        # Pollute the halo region of every local array: gather must
        # copy back only the owned rows.
        d = BlockDecomposition(12, 3, halo=2)
        g = rng.random((12, 2))
        locals_ = [d.scatter(r, g) for r in range(3)]
        for loc in locals_:
            loc += 100.0
        for r, loc in enumerate(locals_):
            s = d.slabs[r]
            loc[: s.local_own_lo] = -999.0
            loc[s.local_own_hi :] = -999.0
        out = np.zeros_like(g)
        for r in range(3):
            d.gather_into(r, locals_[r], out)
        np.testing.assert_allclose(out, g + 100.0)
