"""clsim translation: shim header, driver generation."""

import numpy as np
import pytest

from repro.backends.jit import compile_and_load
from repro.backends.opencl_backend import generate_opencl_program
from repro.clsim.translate import shim_header, translation_unit
from repro.core.components import Component
from repro.core.domains import RectDomain
from repro.core.stencil import Stencil, StencilGroup
from repro.core.weights import WeightArray

LAP = Component("u", WeightArray([[0, 1, 0], [1, -4, 1], [0, 1, 0]]))
INTERIOR = RectDomain((1, 1), (-1, -1))


def make_prog(shapes=None):
    g = StencilGroup([Stencil(LAP, "out", INTERIOR)])
    shapes = shapes or {"u": (10, 10), "out": (10, 10)}
    return generate_opencl_program(g, shapes, np.float64)


class TestShim:
    def test_defines_address_space_qualifiers(self):
        h = shim_header()
        for macro in ("__kernel", "__global", "__local", "__constant"):
            assert f"#define {macro}" in h

    def test_get_global_id_defined(self):
        assert "get_global_id" in shim_header()

    def test_shim_compiles_standalone(self):
        compile_and_load(shim_header() + "\nint sf_dummy(void){return 1;}\n")


class TestTranslationUnit:
    def test_kernel_source_included_verbatim(self):
        prog = make_prog()
        tu = translation_unit(prog, "double")
        assert prog.source in tu

    def test_driver_per_kernel(self):
        prog = make_prog()
        tu = translation_unit(prog, "double")
        for k in prog.kernel_ranges:
            assert f"void drive_{k}(" in tu

    def test_driver_sets_global_size(self):
        prog = make_prog()
        tu = translation_unit(prog, "double")
        assert "__sf_gsz[0] = gsize[0];" in tu

    def test_whole_unit_compiles(self):
        prog = make_prog()
        compile_and_load(translation_unit(prog, "double"))
