"""Roofline performance bounds (paper SectionV-B).

For memory-bound stencils the speed-of-light is

    stencils/s  =  bandwidth / compulsory_bytes_per_stencil

The paper quotes 24, 40 and 64 bytes per stencil for the constant-
coefficient 7-point Laplacian, the constant-coefficient Jacobi
smoother, and the variable-coefficient GSRB smoother respectively
(double precision, write-allocate caches, no cache-bypass stores, no
capacity/conflict misses).  We carry those constants *and* derive the
same quantity analytically from any :class:`FlatStencil` so arbitrary
user stencils get a bound too.
"""

from __future__ import annotations

from ..core.stencil import Stencil
from .specs import MachineSpec

__all__ = [
    "PAPER_BYTES_PER_STENCIL",
    "bytes_per_point",
    "roofline_stencils_per_s",
    "roofline_time",
]

#: SectionV-B constants (bytes of compulsory DRAM traffic per stencil).
PAPER_BYTES_PER_STENCIL = {
    "cc_7pt": 24.0,
    "cc_jacobi": 40.0,
    "vc_gsrb": 64.0,
}

_WORD = 8.0  # double precision


def bytes_per_point(stencil: Stencil, *, write_allocate: bool = True) -> float:
    """Analytic compulsory traffic per updated point.

    Delegates to the kernel-IR cost model
    (:func:`repro.kernel.kernel_cost`): each *distinct grid* read costs
    one word (perfect reuse of neighbouring loads within a sweep — the
    asymptotic assumption of SectionV-B), plus the store; a
    write-allocate cache first reads the written line unless the sweep
    already read that grid.
    """
    from ..kernel import kernel_cost  # local import: machine <- kernel

    return kernel_cost(
        stencil, write_allocate=write_allocate
    ).bytes_per_point


def roofline_stencils_per_s(
    spec: MachineSpec, bytes_per_stencil: float, working_set: float = float("inf")
) -> float:
    """Speed-of-light update rate for a stencil sweep on ``spec``."""
    return spec.effective_bw(working_set) / bytes_per_stencil


def roofline_time(
    spec: MachineSpec,
    bytes_per_stencil: float,
    points: int,
    working_set: float = float("inf"),
) -> float:
    """Lower bound on the time of one sweep over ``points`` updates."""
    return points * bytes_per_stencil / spec.effective_bw(working_set)
