"""SimComm: an in-process, MPI-shaped message-passing fabric.

Mirrors the mpi4py calling convention for the subset a halo-exchange
backend needs — ``send``/``recv`` of numpy arrays addressed by
``(source, dest, tag)``, and a barrier.  Because every rank runs in one
process under a lock-step driver, a ``recv`` with no matching message
is a *provable* deadlock and raises immediately instead of hanging;
tests use that to assert exchange protocols are complete.

Traffic accounting (`bytes_sent`, `messages`) stands in for the wire:
the distributed benchmarks report communication volume per sweep,
which is platform-independent truth even on a simulated fabric.

Fault injection (:mod:`repro.resilience.faults`) models an unreliable
wire: ``comm.send.drop`` loses a message on the send side,
``comm.recv.drop`` discards it at delivery, and
``comm.payload.corrupt`` bit-flips the in-flight copy — each
deterministic and site-addressed, so exchange protocols can be tested
against the failures real fabrics produce.  ``barrier(strict=True)``
(or ``world(..., strict_barriers=True)``) turns a barrier into a
protocol audit: any message still undelivered raises :class:`CommError`
instead of being silently counted.

Rank failure is modelled too: :meth:`kill` marks a rank dead (the
``comm.rank.crash`` fault site does this mid-sweep in the distributed
executor).  A dead rank's sends are discarded, and receiving from a
dead rank with nothing in flight raises :class:`RankFailure` — the
in-process stand-in for the recv-timeout/ack-loss detection a real
fabric would use — instead of the provable-deadlock :class:`CommError`,
so callers can distinguish "peer died" (recoverable by
:mod:`repro.dmem.recovery`) from "protocol bug" (never recoverable).
"""

from __future__ import annotations

from collections import defaultdict, deque
from dataclasses import dataclass

import numpy as np

from .. import telemetry
from ..resilience.faults import fault_point

__all__ = ["CommError", "RankFailure", "SimComm"]


class CommError(RuntimeError):
    """Protocol violation: missing message, bad rank, type mismatch."""


class RankFailure(RuntimeError):
    """A peer rank has crashed (detected via recv timeout / ack loss).

    Carries the dead rank in ``.rank``.  Unlike :class:`CommError`
    (a protocol bug that no amount of retrying fixes), a
    ``RankFailure`` is the signal the checkpoint/restart layer
    (:mod:`repro.dmem.recovery`) recovers from.
    """

    def __init__(self, rank: int, detail: str = "") -> None:
        self.rank = rank
        super().__init__(
            f"rank {rank} has failed"
            + (f": {detail}" if detail else "")
        )


@dataclass
class _Stats:
    messages: int = 0
    bytes_sent: int = 0
    barriers: int = 0
    dropped: int = 0  # messages lost to injected send/recv drops
    corrupted: int = 0  # payloads bit-flipped by injected corruption
    retransmits: int = 0  # reliable-transport re-sends of lost envelopes
    duplicates: int = 0  # duplicate envelopes discarded by dedup
    reordered: int = 0  # envelopes delivered out of sequence order
    acked: int = 0  # envelopes confirmed delivered exactly once
    crc_failures: int = 0  # envelopes rejected by transport CRC
    crashes: int = 0  # ranks killed (comm.rank.crash or kill())
    restores: int = 0  # checkpoint restores performed by recovery
    barrier_failures: int = 0  # strict-barrier audits that found pending msgs

    def as_dict(self) -> dict[str, int]:
        return {f.name: getattr(self, f.name) for f in _STATS_FIELDS}


_STATS_FIELDS = _Stats.__dataclass_fields__.values()


class _Fabric:
    """Shared mailbox store for one communicator."""

    def __init__(self, size: int, strict_barriers: bool = False) -> None:
        self.size = size
        self.strict_barriers = strict_barriers
        self.boxes: dict[tuple[int, int, int], deque] = defaultdict(deque)
        self.stats = _Stats()
        self.dead: set[int] = set()


class SimComm:
    """One rank's endpoint on a simulated communicator.

    Create the world with :meth:`world`; each element plays the role of
    ``MPI.COMM_WORLD`` on its rank.
    """

    def __init__(self, fabric: _Fabric, rank: int) -> None:
        self._fabric = fabric
        self._rank = rank

    # -- construction --------------------------------------------------------

    @staticmethod
    def world(size: int, *, strict_barriers: bool = False) -> list["SimComm"]:
        """Create all rank endpoints; ``strict_barriers=True`` makes
        every :meth:`barrier` audit for undelivered messages."""
        if size < 1:
            raise ValueError("communicator size must be >= 1")
        fabric = _Fabric(size, strict_barriers=strict_barriers)
        return [SimComm(fabric, r) for r in range(size)]

    # -- mpi4py-flavoured surface ----------------------------------------------

    def Get_rank(self) -> int:
        return self._rank

    def Get_size(self) -> int:
        return self._fabric.size

    @property
    def rank(self) -> int:
        return self._rank

    @property
    def size(self) -> int:
        return self._fabric.size

    def send(self, data: np.ndarray, dest: int, tag: int = 0) -> None:
        """Copy-out send (the wire owns its bytes, as with real MPI).

        Sends addressed to a dead rank vanish into the void, exactly as
        on a real fabric — the sender cannot tell a dead peer from a
        slow one until it waits for a reply.
        """
        self._check_rank(dest)
        if dest == self._rank:
            raise CommError("self-send is always a protocol bug here")
        if dest in self._fabric.dead:
            self._fabric.stats.dropped += 1
            telemetry.count("dmem.dropped")
            return
        arr = np.array(data, copy=True)
        if fault_point("comm.send.drop"):
            self._fabric.stats.dropped += 1
            telemetry.count("dmem.dropped")
            return
        if fault_point("comm.payload.corrupt") and arr.nbytes:
            # deterministic byte-flip on the wire copy: the high byte of
            # the middle element (for floats, the sign/exponent byte —
            # a corruption large enough to matter, not a rounding blip)
            mid = (arr.size // 2) * arr.itemsize + (arr.itemsize - 1)
            arr.view(np.uint8).flat[mid] ^= 0xFF
            self._fabric.stats.corrupted += 1
            telemetry.count("dmem.corrupted")
        self._fabric.boxes[(self._rank, dest, tag)].append(arr)
        self._fabric.stats.messages += 1
        self._fabric.stats.bytes_sent += arr.nbytes
        telemetry.count("dmem.messages")
        telemetry.count("dmem.bytes_sent", arr.nbytes)

    def recv(self, source: int, tag: int = 0) -> np.ndarray:
        """Receive the next matching message; raises on guaranteed deadlock."""
        self._check_rank(source)
        box = self._fabric.boxes.get((source, self._rank, tag))
        if box and fault_point("comm.recv.drop"):
            box.popleft()  # lost at delivery; the CommError below is
            self._fabric.stats.dropped += 1  # how the loss surfaces
            telemetry.count("dmem.dropped")
        if not box:
            if source in self._fabric.dead:
                raise RankFailure(
                    source,
                    f"rank {self._rank} recv(source={source}, tag={tag}) "
                    "timed out — peer is dead and nothing is in flight",
                )
            raise CommError(
                f"rank {self._rank} recv(source={source}, tag={tag}): "
                "no matching message — in a real run this rank would "
                "deadlock"
            )
        return box.popleft()

    def sendrecv(
        self,
        senddata: np.ndarray,
        dest: int,
        recvsource: int,
        tag: int = 0,
    ) -> np.ndarray:
        """Paired exchange (the halo-swap primitive).

        Under the lock-step driver both sides' sends are enqueued before
        any recv executes, so this decomposes safely.
        """
        self.send(senddata, dest, tag)
        return self.recv(recvsource, tag)

    def barrier(self, strict: bool | None = None) -> None:
        """Synchronization point (a counter on the lock-step fabric).

        With ``strict=True`` (or a ``strict_barriers`` world), messages
        still undelivered at the barrier are a protocol bug — an
        exchange enqueued sends that nobody received — and raise
        :class:`CommError` naming the offending mailboxes.
        """
        self._fabric.stats.barriers += 1
        telemetry.count("dmem.barriers")
        telemetry.tracing.instant(
            "barrier", cat="dmem", lane=f"rank {self._rank}",
        )
        if strict is None:
            strict = self._fabric.strict_barriers
        if strict:
            pending = {
                key: len(box)
                for key, box in self._fabric.boxes.items()
                if box
            }
            if pending:
                self._fabric.stats.barrier_failures += 1
                telemetry.count("dmem.barrier_failures")
                detail = ", ".join(
                    f"src={s}->dest={d} tag={t}: {n} msg(s)"
                    for (s, d, t), n in sorted(pending.items())
                )
                raise CommError(
                    f"strict barrier: {sum(pending.values())} message(s) "
                    f"still pending ({detail}) — incomplete exchange "
                    "protocol"
                )

    # -- rank liveness ---------------------------------------------------------

    def kill(self, rank: int) -> None:
        """Mark ``rank`` dead fabric-wide (the crash model)."""
        self._check_rank(rank)
        if rank not in self._fabric.dead:
            self._fabric.dead.add(rank)
            self._fabric.stats.crashes += 1
            telemetry.count("dmem.crashes")
            telemetry.event("dmem.rank.crash", rank=rank)
            telemetry.tracing.instant(
                "rank.crash", cat="dmem", lane=f"rank {rank}",
            )

    def revive(self, rank: int) -> None:
        """Bring a dead rank back (a restart under recovery)."""
        self._check_rank(rank)
        self._fabric.dead.discard(rank)

    def alive(self, rank: int) -> bool:
        self._check_rank(rank)
        return rank not in self._fabric.dead

    def dead_ranks(self) -> frozenset[int]:
        return frozenset(self._fabric.dead)

    # -- accounting -----------------------------------------------------------

    @property
    def stats(self) -> _Stats:
        return self._fabric.stats

    def probe(self, source: int, tag: int = 0) -> int:
        """How many messages are waiting on ``(source, self, tag)``
        (the ``MPI_Iprobe`` analogue the reliable transport drains with)."""
        self._check_rank(source)
        box = self._fabric.boxes.get((source, self._rank, tag))
        return len(box) if box else 0

    def pending_messages(self) -> int:
        return sum(len(b) for b in self._fabric.boxes.values())

    def purge(self) -> int:
        """Discard every undelivered message fabric-wide; returns the
        count.  Used by recovery: a rollback invalidates in-flight
        traffic from the abandoned timeline."""
        n = sum(len(b) for b in self._fabric.boxes.values())
        self._fabric.boxes.clear()
        return n

    # -- internals -------------------------------------------------------------

    def _check_rank(self, r: int) -> None:
        if not (0 <= r < self._fabric.size):
            raise CommError(
                f"rank {r} out of range for size-{self._fabric.size} world"
            )
