"""clsim — a CPU simulator for the generated OpenCL kernels.

The environment has no OpenCL runtime or GPU (DESIGN.md, substitutions
table), so this package stands in for one: the *verbatim* kernel text
produced by :mod:`repro.backends.opencl_backend` is compiled as C99
behind a thin shim header (``__kernel``/``__global`` become no-ops and
``get_global_id`` reads a sweep variable), and per-kernel driver
functions sweep the NDRange like an in-order command queue would.

Because the kernel source is compiled unmodified, the backend
equivalence tests exercise the actual OpenCL codegen, not a lookalike.
"""

from .driver import build_executor
from .translate import shim_header, translation_unit
from . import runtime

__all__ = ["build_executor", "shim_header", "translation_unit", "runtime"]
