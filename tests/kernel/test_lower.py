"""Lowering: FlatStencil -> raw KernelBody, bit-compatible with legacy order."""

import pytest

from repro.core.domains import RectDomain
from repro.core.expr import Constant, GridRead, Param
from repro.core.stencil import Stencil
from repro.kernel import no_optimization, optimization_enabled
from repro.kernel.ir import KAdd, KConst, KDiv, KLoad, KMul, KParam
from repro.kernel.lower import body_for, lower_flat, lower_term

DOM = RectDomain((1, 1), (-1, -1))


def test_lower_term_reproduces_legacy_order():
    # w * u[i] / w2 -> ((1.0 * w) / w2) * u : coeff, params, denoms, loads
    s = Stencil(
        Param("w") * GridRead("u", (0, 0)) / Param("w2"), "out", DOM
    )
    (term,) = s.flat.terms
    e = lower_term(term)
    assert isinstance(e, KMul)
    assert isinstance(e.rhs, KLoad) and e.rhs.grid == "u"
    assert isinstance(e.lhs, KDiv)
    assert e.lhs.rhs == KParam("w2")
    assert e.lhs.lhs == KMul(KConst(1.0), KParam("w"))


def test_lower_flat_folds_terms_left():
    s = Stencil(
        GridRead("u", (0, 0)) + GridRead("v", (0, 0)) + Constant(3.0),
        "out",
        DOM,
    )
    body = lower_flat(s.flat)
    assert body.lets == ()  # raw lowering introduces no bindings
    # fold-left sum with no leading 0.0: ((t0 + t1) + t2)
    assert isinstance(body.result, KAdd)
    assert isinstance(body.result.lhs, KAdd)
    assert not isinstance(body.result.lhs.lhs, KAdd)


def test_lower_flat_empty_body_is_zero():
    s = Stencil(Constant(0.0) * GridRead("u", (0, 0)), "out", DOM)
    if s.flat.terms:  # zero-coeff terms may survive flattening
        pytest.skip("flatten kept the zero term")
    body = lower_flat(s.flat)
    assert body.result == KConst(0.0)


def test_body_for_caches_both_variants():
    s = Stencil(GridRead("u", (0, 0)) * Param("w"), "out", DOM)
    opt1, rep1 = body_for(s, optimize=True)
    opt2, rep2 = body_for(s, optimize=True)
    raw1, raw_rep = body_for(s, optimize=False)
    assert opt1 is opt2 and rep1 is rep2
    assert raw1 is body_for(s, optimize=False)[0]
    assert raw_rep is None  # raw variant carries no report
    assert rep1 is not None


def test_body_for_follows_package_toggle():
    # w*u[1,0] + u[1,0]: distinct terms flatten can't merge, so the
    # repeated read survives to lowering and only CSE can name it
    s = Stencil(
        Param("w") * GridRead("u", (1, 0)) + GridRead("u", (1, 0)),
        "out",
        DOM,
    )
    assert optimization_enabled()
    body_on, rep_on = body_for(s)  # optimize=None -> toggle (on)
    with no_optimization():
        assert not optimization_enabled()
        body_off, rep_off = body_for(s)
    assert optimization_enabled()
    assert rep_on is not None and rep_off is None
    # CSE named the repeated read only on the optimized variant
    assert body_on.lets and not body_off.lets


def test_toggle_env_var_disables_optimization():
    import subprocess
    import sys

    code = (
        "from repro.kernel import optimization_enabled;"
        "import sys; sys.exit(0 if not optimization_enabled() else 1)"
    )
    proc = subprocess.run(
        [sys.executable, "-c", code],
        env={"SNOWFLAKE_KERNEL_OPT": "0", "PYTHONPATH": "src", "PATH": "/usr/bin:/bin"},
        cwd=__file__.rsplit("/tests/", 1)[0],
    )
    assert proc.returncode == 0
