"""Wall-clock measurement helpers for the benchmark harness.

Follows the paper's protocol (SectionV-A): an untimed warmup phase
followed by the benchmarking phase; best-of-N reporting guards against
scheduler noise on shared machines.
"""

from __future__ import annotations

import time
from typing import Callable

__all__ = ["Timer", "best_of", "time_callable"]


class Timer:
    """Context-manager stopwatch accumulating across entries.

    >>> t = Timer()
    >>> with t:
    ...     work()
    >>> t.elapsed  # seconds
    """

    def __init__(self) -> None:
        self.elapsed = 0.0
        self.count = 0
        self._t0 = 0.0

    def __enter__(self) -> "Timer":
        self._t0 = time.perf_counter()
        return self

    def __exit__(self, *exc) -> None:
        self.elapsed += time.perf_counter() - self._t0
        self.count += 1

    def reset(self) -> None:
        self.elapsed = 0.0
        self.count = 0

    @property
    def mean(self) -> float:
        return self.elapsed / self.count if self.count else 0.0


def time_callable(
    fn: Callable[[], object], warmup: int = 1, repeats: int = 3
) -> list[float]:
    """Per-repeat wall times after ``warmup`` untimed calls."""
    for _ in range(warmup):
        fn()
    times = []
    for _ in range(repeats):
        t0 = time.perf_counter()
        fn()
        times.append(time.perf_counter() - t0)
    return times


def best_of(fn: Callable[[], object], warmup: int = 1, repeats: int = 3) -> float:
    """Minimum wall time over ``repeats`` timed calls."""
    return min(time_callable(fn, warmup=warmup, repeats=repeats))
