"""Figure9 — full geometric multigrid solver throughput (DOF/s).

The paper's protocol (SectionV-A): 10 V-cycles, "two GSRB smooths
(4 stencil sweeps) for pre- and postsmoothing" (one full red/black
smooth before and one after each coarse correction), variable
coefficients; throughput = unknowns / total solve time.
Host rows race the all-Snowflake solver against the hand-written
C driver; paper-platform rows walk the same V-cycle schedule through
the execution model (every level's smooth/residual/restrict/interp
traffic and launches summed).
"""

from __future__ import annotations

import time

from ..baselines.mg_c import BaselineMultigrid3D
from ..hpgmg.level import Level
from ..hpgmg.solver import MultigridSolver
from ..machine.model import IMPLEMENTATIONS, KernelWork, predict_sweep_time
from ..machine.specs import I7_4765T, K20C
from ..util.tables import format_table

__all__ = ["run", "main", "vcycle_work", "model_gmg_time"]

WORD = 8.0


def vcycle_work(n: int, *, n_pre: int = 1, n_post: int = 1,
                min_coarse: int = 2, bottom_smooths: int = 32,
                ndim: int = 3) -> list[KernelWork]:
    """Per-kernel work items of one V-cycle on an ``n^ndim`` hierarchy."""
    works: list[KernelWork] = []
    sizes = [n]
    while sizes[-1] % 2 == 0 and sizes[-1] // 2 >= min_coarse:
        sizes.append(sizes[-1] // 2)
    for li, nl in enumerate(sizes):
        points = nl**ndim
        grid = (nl + 2) ** ndim * WORD
        smooths = (
            bottom_smooths if li == len(sizes) - 1 else (n_pre + n_post)
        )
        # GSRB smooth: full point update at 64 B/pt, 2 color launches +
        # 2*2*ndim boundary launches per smooth.
        works.append(
            KernelWork(
                points=points * smooths,
                bytes_per_point=64.0,
                working_set=7 * grid,
                launches=smooths * 2 * (1 + 2 * ndim),
            )
        )
        if li == len(sizes) - 1:
            continue
        # residual (reads x, rhs, 3 betas; writes res)
        works.append(
            KernelWork(points=points, bytes_per_point=56.0,
                       working_set=7 * grid, launches=1 + 2 * ndim)
        )
        nc = nl // 2
        cpoints = nc**ndim
        # restriction: stream fine res + write coarse rhs
        works.append(
            KernelWork(points=cpoints,
                       bytes_per_point=WORD * 2**ndim + 2 * WORD,
                       working_set=grid, launches=1)
        )
        # interpolation: read coarse x, read+write fine x
        works.append(
            KernelWork(points=cpoints,
                       bytes_per_point=WORD + 2**ndim * 2 * WORD,
                       working_set=grid, launches=2**ndim + 2 * ndim)
        )
    return works


def model_gmg_time(spec, impl, n: int, cycles: int = 10) -> float:
    works = vcycle_work(n)
    per_cycle = sum(predict_sweep_time(spec, impl, w) for w in works)
    return cycles * per_cycle


def run(n: int = 32, cycles: int = 10, model_n: int = 256):
    headers = ["platform", "size", "HPGMG (MDOF/s)", "Snowflake (MDOF/s)",
               "residual reduction", "source"]
    rows = []

    # -- host, measured ------------------------------------------------------
    # Paper SectionV-A: "two GSRB smooths (4 stencil sweeps) for pre- and
    # postsmoothing" = one full red/black smooth before and one after.
    fine = Level(n, 3, coefficients="variable")
    _seed_problem(fine)
    solver = MultigridSolver(fine, backend="openmp", n_pre=1, n_post=1)
    solver.solve(cycles=1)  # warmup (includes JIT)
    _seed_problem(fine)
    t0 = time.perf_counter()
    hist_sf = solver.solve(cycles=cycles)
    t_sf = time.perf_counter() - t0

    fine_b = Level(n, 3, coefficients="variable")
    _seed_problem(fine_b)
    bl = BaselineMultigrid3D(fine_b, n_pre=1, n_post=1)
    bl.solve(cycles=1)  # warmup
    _seed_problem(fine_b)
    t0 = time.perf_counter()
    hist_bl = bl.solve(cycles=cycles)
    t_bl = time.perf_counter() - t0

    dof = fine.dof
    rows.append(
        ["host", f"{n}^3", dof / t_bl / 1e6, dof / t_sf / 1e6,
         f"{hist_sf[0] / max(hist_sf[-1], 1e-300):.1e}", "measured"]
    )

    # -- paper platforms, modeled ---------------------------------------------
    for plat, spec, sf_impl, hand_impl in (
        ("Core i7-4765T", I7_4765T, "snowflake-openmp", "hpgmg-openmp"),
        ("K20c GPU", K20C, "snowflake-opencl", "hpgmg-cuda"),
    ):
        dof_m = model_n**3
        t_sf_m = model_gmg_time(spec, IMPLEMENTATIONS[sf_impl], model_n, cycles)
        t_h_m = model_gmg_time(spec, IMPLEMENTATIONS[hand_impl], model_n, cycles)
        rows.append(
            [plat, f"{model_n}^3", dof_m / t_h_m / 1e6,
             dof_m / t_sf_m / 1e6, "-", "model"]
        )
    return headers, rows


def _seed_problem(level: Level) -> None:
    import numpy as np

    rng = np.random.default_rng(99)
    level.zero("x", "res", "tmp")
    level.grids["rhs"][level.interior] = rng.random((level.n,) * level.ndim)


def main(n: int = 32, cycles: int = 10, model_n: int = 256) -> str:
    headers, rows = run(n, cycles, model_n)
    out = format_table(
        headers, rows,
        title=f"Fig.9 — GMG solve throughput ({cycles} V-cycles)",
    )
    print(out)
    return out


if __name__ == "__main__":  # pragma: no cover
    main()
