"""Tile-size autotuning (paper SectionIV-A).

The OpenMP micro-compiler "allows the user to specify a tiling size when
compiling the stencil, and provides a method of tuning tiling sizes" —
this module is that method: exhaustive timing over a candidate set with
warmup, returning the best tile and the full timing table so benchmark
reports can show the tuning curve.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Mapping, Sequence

import numpy as np

from ..core.stencil import StencilGroup
from ..util.timing import best_of

__all__ = ["TuneResult", "autotune_tile"]

DEFAULT_CANDIDATES = (2, 4, 8, 16, 32, 64)


@dataclass(frozen=True)
class TuneResult:
    best_tile: int
    timings: dict[int, float]  # tile -> best-of wall seconds

    def speedup_over_worst(self) -> float:
        return max(self.timings.values()) / self.timings[self.best_tile]


def autotune_tile(
    group: StencilGroup,
    arrays: Mapping[str, np.ndarray],
    params: Mapping[str, float] | None = None,
    *,
    backend: str = "c",
    candidates: Sequence[int] = DEFAULT_CANDIDATES,
    repeats: int = 3,
    **backend_options,
) -> TuneResult:
    """Time ``group`` under each candidate tile size; pick the fastest.

    ``arrays`` are working copies (the tuner mutates them — pass scratch
    grids, not live data).  Extra ``backend_options`` flow through to the
    micro-compiler so tuning composes with e.g. ``multicolor=False``.
    """
    params = dict(params or {})
    shapes = {g: a.shape for g, a in arrays.items()}
    timings: dict[int, float] = {}
    for tile in candidates:
        kernel = group.compile(
            backend=backend, shapes=shapes, tile=int(tile), **backend_options
        )
        timings[int(tile)] = best_of(
            lambda: kernel(**arrays, **params), warmup=1, repeats=repeats
        )
    best = min(timings, key=timings.get)
    return TuneResult(best, timings)
