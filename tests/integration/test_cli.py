"""The ``python -m repro`` command-line interface."""

import subprocess
import sys

import pytest


def run_cli(*args, timeout=300):
    return subprocess.run(
        [sys.executable, "-m", "repro", *args],
        capture_output=True, text=True, timeout=timeout,
    )


def test_info():
    proc = run_cli("info")
    assert proc.returncode == 0
    assert "repro-snowflake" in proc.stdout
    assert "backends:" in proc.stdout
    assert "compiler:" in proc.stdout


def test_selftest_passes():
    proc = run_cli("selftest")
    assert proc.returncode == 0
    assert "PASS" in proc.stdout
    assert "MISMATCH" not in proc.stdout


def test_requires_a_command():
    proc = run_cli()
    assert proc.returncode != 0


def test_stats_reports_telemetry(tmp_path):
    bench = tmp_path / "BENCH_pipeline.json"
    proc = run_cli(
        "stats", "--size", "32", "--calls", "2", "--json", str(bench)
    )
    assert proc.returncode == 0
    assert "kernel invocations" in proc.stdout
    assert "telemetry mode" in proc.stdout
    import json

    doc = json.loads(bench.read_text())
    assert doc["schema"] == "snowflake-telemetry/1"
    assert doc["stats_schema"] == "snowflake-stats/1"
    assert doc["kernels"], "smoke kernel calls must be recorded"
    assert doc["histograms"]["kernel.call"], "latency histogram missing"


def test_stats_respects_off_mode():
    import os

    env = dict(os.environ, SNOWFLAKE_TELEMETRY="off", PYTHONPATH="src")
    proc = subprocess.run(
        [sys.executable, "-m", "repro", "stats", "--size", "16",
         "--calls", "1", "--backend", "numpy"],
        capture_output=True, text=True, timeout=300, env=env,
    )
    assert proc.returncode == 0
    assert "telemetry is off" in proc.stdout


def test_stats_openmetrics_exposition():
    from repro.telemetry.metrics import validate_openmetrics

    proc = run_cli(
        "stats", "--size", "16", "--calls", "1", "--backend", "numpy",
        "--openmetrics",
    )
    assert proc.returncode == 0, proc.stdout + proc.stderr
    assert validate_openmetrics(proc.stdout) == []
    assert proc.stdout.endswith("# EOF\n")
    assert "snowflake_kernel_calls_total" in proc.stdout
    assert "snowflake_kernel_call_seconds_bucket" in proc.stdout


def test_serve_metrics_scrapes(tmp_path):
    import re
    import signal
    import urllib.request

    proc = subprocess.Popen(
        [sys.executable, "-m", "repro", "serve-metrics", "--port", "0",
         "--size", "16", "--calls", "1"],
        stdout=subprocess.PIPE, stderr=subprocess.PIPE, text=True,
    )
    try:
        banner = proc.stdout.readline()
        m = re.search(r"http://([\d.]+):(\d+)/metrics", banner)
        assert m, f"no endpoint in banner: {banner!r}"
        host, port = m.group(1), int(m.group(2))
        body = urllib.request.urlopen(
            f"http://{host}:{port}/metrics", timeout=30
        ).read().decode()
        from repro.telemetry.metrics import validate_openmetrics

        assert validate_openmetrics(body) == []
        assert "snowflake_kernel_calls_total" in body
        hz = urllib.request.urlopen(
            f"http://{host}:{port}/healthz", timeout=30
        )
        assert hz.read() == b"ok\n"
    finally:
        proc.send_signal(signal.SIGINT)
        assert proc.wait(timeout=60) == 0


def test_top_prints_profile_table():
    proc = run_cli(
        "top", "--backend", "numpy", "--size", "48", "--calls", "8",
        "--interval", "1.0", timeout=600,
    )
    assert proc.returncode == 0, proc.stdout + proc.stderr
    assert "sampler:" in proc.stdout
    assert "overhead" in proc.stdout
    assert "budget" in proc.stdout


def test_artifact_dir_redirects_bare_filenames(tmp_path):
    import json
    import os

    env = dict(
        os.environ,
        SNOWFLAKE_ARTIFACT_DIR=str(tmp_path / "artifacts"),
        PYTHONPATH="src",
    )
    proc = subprocess.run(
        [sys.executable, "-m", "repro", "stats", "--size", "16",
         "--calls", "1", "--backend", "numpy", "--json", "BENCH_cli.json"],
        capture_output=True, text=True, timeout=300, env=env,
    )
    assert proc.returncode == 0, proc.stdout + proc.stderr
    redirected = tmp_path / "artifacts" / "BENCH_cli.json"
    assert redirected.exists()
    assert json.loads(redirected.read_text())["schema"]


def test_figures_passthrough():
    proc = run_cli("figures", "fig6", "--repeats", "1", timeout=600)
    assert proc.returncode == 0
    assert "STREAM" in proc.stdout


def test_in_process_main():
    from repro.__main__ import main

    assert main(["selftest"]) == 0


def test_trace_smoke_covers_subsystems(tmp_path):
    import json

    out = tmp_path / "trace.json"
    proc = run_cli(
        "trace", "--smoke", "--size", "24", "--calls", "1",
        "--out", str(out), timeout=600,
    )
    assert proc.returncode == 0, proc.stdout + proc.stderr
    assert "smoke: PASS" in proc.stdout
    from repro.telemetry import tracing

    doc = json.loads(out.read_text())
    assert tracing.validate_chrome_trace(doc) == []
    cats = {e.get("cat") for e in doc["traceEvents"]}
    assert {"frontend", "jit", "kernel", "dmem"} <= cats


def test_explain_names_barrier_grids():
    proc = run_cli("explain", "--size", "12", "--backend", "numpy")
    assert proc.returncode == 0, proc.stdout + proc.stderr
    assert "forced by" in proc.stdout
    assert "RAW on x" in proc.stdout
    assert "gsrb_red" in proc.stdout


def test_explain_json_artifact(tmp_path):
    import json

    proc = run_cli("explain", "--size", "12", "--json")
    assert proc.returncode == 0, proc.stdout + proc.stderr
    doc = json.loads(proc.stdout)
    assert all(b["grids"] == ["x"] for b in doc["barriers"])
    assert doc["artifact"]["backend"] == "c"
    assert doc["artifact"]["cache_key"]


def test_bench_writes_schema_tagged_artifact(tmp_path):
    import json

    out = tmp_path / "BENCH_kernels.json"
    proc = run_cli(
        "bench", "--size", "8", "--calls", "1", "--backends", "numpy",
        "--out", str(out), timeout=600,
    )
    assert proc.returncode == 0, proc.stdout + proc.stderr
    assert "% of roofline" in proc.stdout
    doc = json.loads(out.read_text())
    assert doc["schema"] == "snowflake-bench-kernels/1"
    for rec in doc["operators"].values():
        assert rec["backends"]["numpy"]["roofline_fraction"] > 0


def test_bench_check_detects_regression(tmp_path):
    import json

    out = tmp_path / "new.json"
    proc = run_cli(
        "bench", "--size", "8", "--calls", "1", "--backends", "numpy",
        "--out", str(out), timeout=600,
    )
    assert proc.returncode == 0
    doc = json.loads(out.read_text())

    # baseline far below the fresh run: check passes
    easy = json.loads(json.dumps(doc))
    hard = json.loads(json.dumps(doc))
    for rec in easy["operators"].values():
        rec["backends"]["numpy"]["points_per_s"] *= 0.01
    for rec in hard["operators"].values():
        rec["backends"]["numpy"]["points_per_s"] *= 100.0
    (tmp_path / "easy.json").write_text(json.dumps(easy))
    (tmp_path / "hard.json").write_text(json.dumps(hard))

    ok = run_cli(
        "bench", "--size", "8", "--calls", "1", "--backends", "numpy",
        "--out", "", "--check", str(tmp_path / "easy.json"), timeout=600,
    )
    assert ok.returncode == 0
    assert "regression check" in ok.stdout and "PASS" in ok.stdout

    bad = run_cli(
        "bench", "--size", "8", "--calls", "1", "--backends", "numpy",
        "--out", "", "--check", str(tmp_path / "hard.json"), timeout=600,
    )
    assert bad.returncode == 1
    assert "REGRESSION" in bad.stdout
