"""SimComm: the simulated message-passing fabric."""

import numpy as np
import pytest

from repro.dmem.comm import CommError, SimComm


class TestWorld:
    def test_world_construction(self):
        world = SimComm.world(4)
        assert [c.Get_rank() for c in world] == [0, 1, 2, 3]
        assert all(c.Get_size() == 4 for c in world)

    def test_bad_size(self):
        with pytest.raises(ValueError):
            SimComm.world(0)


class TestSendRecv:
    def test_roundtrip_copies(self):
        w = SimComm.world(2)
        a = np.arange(4.0)
        w[0].send(a, dest=1, tag=7)
        a[0] = 99.0  # mutation after send must not leak (copy-out)
        got = w[1].recv(source=0, tag=7)
        np.testing.assert_array_equal(got, [0, 1, 2, 3])

    def test_fifo_per_channel(self):
        w = SimComm.world(2)
        w[0].send(np.array([1.0]), 1, tag=0)
        w[0].send(np.array([2.0]), 1, tag=0)
        assert w[1].recv(0, tag=0)[0] == 1.0
        assert w[1].recv(0, tag=0)[0] == 2.0

    def test_tags_are_separate_channels(self):
        w = SimComm.world(2)
        w[0].send(np.array([1.0]), 1, tag=5)
        w[0].send(np.array([2.0]), 1, tag=6)
        assert w[1].recv(0, tag=6)[0] == 2.0
        assert w[1].recv(0, tag=5)[0] == 1.0

    def test_missing_message_is_deadlock(self):
        w = SimComm.world(2)
        with pytest.raises(CommError, match="deadlock"):
            w[1].recv(source=0, tag=0)

    def test_self_send_rejected(self):
        w = SimComm.world(2)
        with pytest.raises(CommError):
            w[0].send(np.zeros(1), dest=0)

    def test_rank_range_checked(self):
        w = SimComm.world(2)
        with pytest.raises(CommError):
            w[0].send(np.zeros(1), dest=5)
        with pytest.raises(CommError):
            w[0].recv(source=-1)

    def test_sendrecv_pair(self):
        w = SimComm.world(2)
        w[1].send(np.array([10.0]), 0, tag=3)
        got = w[0].sendrecv(np.array([20.0]), dest=1, recvsource=1, tag=3)
        assert got[0] == 10.0
        assert w[1].recv(0, tag=3)[0] == 20.0


class TestAccounting:
    def test_stats(self):
        w = SimComm.world(3)
        w[0].send(np.zeros(10), 1)
        w[1].send(np.zeros(5), 2)
        assert w[2].stats.messages == 2
        assert w[0].stats.bytes_sent == 15 * 8
        w[0].barrier()
        assert w[1].stats.barriers == 1

    def test_pending_messages(self):
        w = SimComm.world(2)
        assert w[0].pending_messages() == 0
        w[0].send(np.zeros(1), 1)
        assert w[1].pending_messages() == 1
        w[1].recv(0)
        assert w[1].pending_messages() == 0


class TestStrictBarriers:
    def test_default_barrier_ignores_pending(self):
        w = SimComm.world(2)
        w[0].send(np.zeros(4), 1)
        w[1].barrier()  # permissive: just a counter
        assert w[1].stats.barriers == 1

    def test_strict_barrier_raises_on_pending(self):
        w = SimComm.world(2)
        w[0].send(np.zeros(4), 1, tag=7)
        with pytest.raises(CommError, match=r"src=0->dest=1 tag=7"):
            w[1].barrier(strict=True)

    def test_strict_world_makes_every_barrier_audit(self):
        w = SimComm.world(2, strict_barriers=True)
        w[0].barrier()  # clean fabric passes
        w[0].send(np.zeros(4), 1)
        with pytest.raises(CommError, match="still pending"):
            w[0].barrier()
        w[1].recv(0)
        w[1].barrier()  # drained: strict barrier passes again

    def test_per_call_strict_overrides_world_default(self):
        w = SimComm.world(2, strict_barriers=True)
        w[0].send(np.zeros(4), 1)
        w[0].barrier(strict=False)  # explicit opt-out wins
