"""Interval (Halide-style) analysis vs. the exact Diophantine analysis.

Two claims, both from the paper:

1. **Soundness of both**: interval analysis never misses a dependence
   the exact analysis finds (property-tested) — it is a correct but
   weaker over-approximation.
2. **Precision gap**: the cases the paper calls out — red/black color
   independence, in-place GSRB legality — are exactly where intervals
   report *false* hazards and the Diophantine analysis does not.
"""

import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.analysis.dependence import (
    cross_stencil_dependence,
    is_parallel_safe,
)
from repro.analysis.interval import (
    interval_cross_stencil_dependence,
    interval_group_dependences,
    interval_is_parallel_safe,
)
from repro.core.components import Component
from repro.core.domains import RectDomain
from repro.core.stencil import Stencil, StencilGroup
from repro.core.weights import SparseArray, WeightArray
from repro.hpgmg.operators import (
    boundary_stencils,
    cc_laplacian,
    gsrb_stencils,
    smooth_group,
)

SHAPE = (18, 18)
LAP = Component("u", WeightArray([[0, 1, 0], [1, -4, 1], [0, 1, 0]]))
INTERIOR = RectDomain((1, 1), (-1, -1))


def shapes_for(*stencils):
    out = {}
    for s in stencils:
        for g in s.grids():
            out[g] = SHAPE
    return out


class TestPrecisionGap:
    def test_gsrb_colors_safe_exactly_but_not_by_intervals(self):
        red, black = gsrb_stencils(2, cc_laplacian(2, 0.1), lam=0.1)
        shapes = shapes_for(red)
        # the exact analysis proves in-place legality...
        assert is_parallel_safe(red, shapes)
        assert is_parallel_safe(black, shapes)
        # ...intervals flag a false hazard (red box overlaps shifted box)
        assert not interval_is_parallel_safe(red, shapes)
        assert not interval_is_parallel_safe(black, shapes)

    def test_red_and_black_interfere_only_by_intervals(self):
        # two *different* output grids over red vs black lattices: zero
        # real conflict, but the interval boxes coincide.
        red_dom = RectDomain.colored(2, 0)
        black_dom = RectDomain.colored(2, 1)
        src = Component("src", WeightArray([[1]]))
        s_red = Stencil(src, "dst", red_dom, name="r")
        s_black = Stencil(src, "dst", black_dom, name="b")
        shapes = shapes_for(s_red, s_black)
        assert cross_stencil_dependence(s_red, s_black, shapes) == set()
        assert "WAW" in interval_cross_stencil_dependence(s_red, s_black, shapes)

    def test_strided_writers_disjoint_exactly_not_by_intervals(self):
        a = Stencil(LAP, "out", RectDomain((1, 1), (-1, -1), (2, 1)), name="a")
        b = Stencil(LAP, "out", RectDomain((2, 1), (-1, -1), (2, 1)), name="b")
        shapes = shapes_for(a, b)
        assert cross_stencil_dependence(a, b, shapes) == set()
        assert interval_cross_stencil_dependence(a, b, shapes) != set()

    def test_smoother_under_intervals(self):
        group = smooth_group(2, cc_laplacian(2, 0.1), lam=0.1)
        shapes = {g: SHAPE for g in group.grids()}
        from repro.analysis.dependence import group_dependences

        exact = group_dependences(group, shapes)
        interval = interval_group_dependences(group, shapes)
        # cross-stencil: intervals over-approximate pair-by-pair...
        for pair, kinds in exact.items():
            assert kinds <= interval.get(pair, set())
        # ...but the decisive loss is *intra*-stencil: under intervals
        # every colored half-sweep must run serially (or buffered),
        # doubling the smoother's memory traffic.
        colored = [s for s in group if s.name.startswith("gsrb")]
        assert colored
        for s in colored:
            assert is_parallel_safe(s, shapes)
            assert not interval_is_parallel_safe(s, shapes)

    def test_agreement_where_intervals_suffice(self):
        # far-apart dense boxes: both analyses see independence
        a = Stencil(LAP, "out", RectDomain((1, 1), (6, 6)), name="a")
        b = Stencil(LAP, "out", RectDomain((9, 9), (16, 16)), name="b")
        shapes = shapes_for(a, b)
        assert cross_stencil_dependence(a, b, shapes) == set()
        assert interval_cross_stencil_dependence(a, b, shapes) == set()

    def test_boundary_vs_deep_interior_both_clean(self):
        # the paper's boundary example: with finite boxes the interval
        # test also clears it (the *infinite-domain* failure needs
        # unbounded footprints); the stride cases above are where the
        # Diophantine machinery is irreplaceable.
        bc = boundary_stencils(2, "u")[0]
        deep = Stencil(LAP, "u", RectDomain((2, 2), (-2, -2)))
        shapes = shapes_for(bc, deep)
        assert cross_stencil_dependence(deep, bc, shapes) == set()
        assert interval_cross_stencil_dependence(deep, bc, shapes) == set()


@st.composite
def stencil_pairs(draw):
    def one(name):
        offs = draw(
            st.lists(
                st.tuples(st.integers(-2, 2), st.integers(-2, 2)),
                min_size=1, max_size=3, unique=True,
            )
        )
        start = draw(st.tuples(st.integers(2, 4), st.integers(2, 4)))
        stride = draw(st.tuples(st.integers(1, 3), st.integers(1, 3)))
        out = draw(st.sampled_from(["u", "a"]))
        body = Component("u", SparseArray({o: 1.0 for o in offs}))
        return Stencil(body, out, RectDomain(start, (-2, -2), stride), name=name)

    return one("s1"), one("s2")


class TestSoundness:
    @settings(max_examples=150, deadline=None)
    @given(pair=stencil_pairs())
    def test_intervals_overapproximate_exact_dependences(self, pair):
        s1, s2 = pair
        shapes = shapes_for(s1, s2)
        exact = cross_stencil_dependence(s1, s2, shapes)
        interval = interval_cross_stencil_dependence(s1, s2, shapes)
        assert exact <= interval  # never miss a real dependence

    @settings(max_examples=100, deadline=None)
    @given(pair=stencil_pairs())
    def test_interval_safety_implies_exact_safety(self, pair):
        s1, _ = pair
        shapes = shapes_for(s1)
        if interval_is_parallel_safe(s1, shapes):
            assert is_parallel_safe(s1, shapes)
