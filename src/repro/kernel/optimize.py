"""The kernel pass pipeline: fold → CSE → hoist → FMA, with a report.

Every pass is **bitwise semantics preserving** on IEEE doubles, which
is what lets the compiled backends keep agreeing bit-for-bit with the
reference interpreter on the optimized body:

* *constant folding* evaluates pure-constant subtrees with Python
  floats — the same IEEE-754 double operations the C compiler would
  perform at runtime — and strips exact identities (``1.0 * x``,
  ``x / 1.0``).  The unsafe algebraic folds are deliberately absent:
  ``0 * x -> 0`` would swallow NaN/Inf propagation and ``x + 0.0 -> x``
  changes ``-0.0 + 0.0``;
* *CSE* only names repeated subexpressions (most importantly repeated
  grid reads — the shared ``beta`` faces of the variable-coefficient
  operators) — every operation still executes exactly once per use
  site's value;
* *hoisting* moves load-free subexpressions to depth 0 (the scalar
  prelude outside the loop nest) — the same operations on the same
  operands, computed once per sweep instead of once per point;
* *FMA grouping* rewrites ``x + a*b`` into a structural
  :class:`~repro.kernel.ir.KFma` that every backend renders as a
  separately-rounded multiply-then-add (never a fused hardware FMA).

:func:`optimize_kernel` tallies what each pass did into an
:class:`OptReport`, surfaced by ``repro explain`` next to the schedule
evidence.
"""

from __future__ import annotations

from dataclasses import asdict, dataclass
from typing import Iterator

from .ir import (
    KAdd,
    KConst,
    KDiv,
    KExpr,
    KFma,
    KLet,
    KLoad,
    KMul,
    KRef,
    KernelBody,
    walk,
)

__all__ = ["OptReport", "optimize_kernel", "fold_constants", "group_fma"]

#: node types CSE may bind (leaves that cost nothing stay inline).
_CSE_CANDIDATES = (KLoad, KAdd, KMul, KDiv, KFma)


@dataclass(frozen=True)
class OptReport:
    """What the pass pipeline did to one kernel body."""

    nodes_before: int
    nodes_after: int
    consts_folded: int
    reads_deduped: int   # repeated-load occurrences replaced by a ref
    cse_bound: int       # let-bindings introduced by CSE
    bindings_hoisted: int  # depth-0 bindings (evaluated once per sweep)
    fma_grouped: int

    def to_dict(self) -> dict:
        return asdict(self)

    def summary(self) -> str:
        return (
            f"nodes {self.nodes_before}->{self.nodes_after}, "
            f"{self.consts_folded} folded, "
            f"{self.reads_deduped} reads deduped, "
            f"{self.cse_bound} cse-bound, "
            f"{self.bindings_hoisted} hoisted, "
            f"{self.fma_grouped} fma-grouped"
        )


def _rebuild(node: KExpr, kids: list[KExpr]) -> KExpr:
    if isinstance(node, (KAdd, KMul, KDiv)):
        return type(node)(kids[0], kids[1])
    if isinstance(node, KFma):
        return KFma(kids[0], kids[1], kids[2])
    return node  # leaves carry no children


# ---------------------------------------------------------------------------
# constant folding
# ---------------------------------------------------------------------------


def fold_constants(expr: KExpr) -> tuple[KExpr, int]:
    """Fold pure-constant subtrees and exact multiplicative identities."""
    n = [0]

    def go(e: KExpr) -> KExpr:
        e = _rebuild(e, [go(c) for c in e.children()])
        if isinstance(e, (KAdd, KMul, KDiv)) and (
            isinstance(e.lhs, KConst) and isinstance(e.rhs, KConst)
        ):
            a, b = e.lhs.value, e.rhs.value
            if isinstance(e, KAdd):
                n[0] += 1
                return KConst(a + b)
            if isinstance(e, KMul):
                n[0] += 1
                return KConst(a * b)
            if b != 0.0:  # keep a div-by-zero for runtime to raise
                n[0] += 1
                return KConst(a / b)
            return e
        if isinstance(e, KMul):
            # 1.0 * x and x * 1.0 are exact for every x (incl. NaN/±0).
            if isinstance(e.lhs, KConst) and e.lhs.value == 1.0:
                n[0] += 1
                return e.rhs
            if isinstance(e.rhs, KConst) and e.rhs.value == 1.0:
                n[0] += 1
                return e.lhs
        if isinstance(e, KDiv) and (
            isinstance(e.rhs, KConst) and e.rhs.value == 1.0
        ):
            n[0] += 1
            return e.lhs
        return e

    return go(expr), n[0]


# ---------------------------------------------------------------------------
# CSE
# ---------------------------------------------------------------------------


def _names(prefix: str, taken: set[str]) -> Iterator[str]:
    i = 0
    while True:
        name = f"{prefix}{i}"
        i += 1
        if name not in taken:
            yield name


def _cse(body: KernelBody) -> tuple[KernelBody, int, int]:
    """Bind every subexpression that occurs twice or more.

    Returns ``(body, reads_deduped, cse_bound)``.  New bindings are
    placed in first-completion (post-)order, so dependencies always
    precede their uses; a binding's depth is ``ndim`` when its value
    touches a grid load, else ``0``.
    """
    counts: dict[str, int] = {}
    load_occurrences: dict[str, int] = {}

    def tally(e: KExpr) -> None:
        for node in walk(e):
            if isinstance(node, _CSE_CANDIDATES):
                sig = node.signature()
                counts[sig] = counts.get(sig, 0) + 1
                if isinstance(node, KLoad):
                    load_occurrences[sig] = counts[sig]

    for e in body.exprs():
        tally(e)

    taken = {l.name for l in body.lets}
    fresh = _names("t", taken)
    bound: dict[str, tuple[str, bool]] = {}  # sig -> (name, has_load)
    loady_lets = {l.name for l in body.lets if l.depth > 0}
    new_lets: list[KLet] = []

    def rewrite(e: KExpr) -> tuple[KExpr, bool]:
        hit = bound.get(e.signature())
        if hit is not None:
            return KRef(hit[0]), hit[1]
        pairs = [rewrite(c) for c in e.children()]
        has_load = isinstance(e, KLoad) or any(h for _, h in pairs)
        if isinstance(e, KRef) and e.name in loady_lets:
            has_load = True
        out = _rebuild(e, [p for p, _ in pairs])
        if isinstance(e, _CSE_CANDIDATES) and counts[e.signature()] >= 2:
            name = next(fresh)
            depth = body.ndim if has_load else 0
            new_lets.append(KLet(name, out, depth))
            if has_load:
                loady_lets.add(name)
            bound[e.signature()] = (name, has_load)
            return KRef(name), has_load
        return out, has_load

    lets: list[KLet] = []
    for let in body.lets:
        expr, _ = rewrite(let.expr)
        lets.extend(new_lets)
        new_lets.clear()
        lets.append(KLet(let.name, expr, let.depth))
    result, _ = rewrite(body.result)
    lets.extend(new_lets)

    deduped = sum(c - 1 for c in load_occurrences.values() if c >= 2)
    return KernelBody(body.ndim, lets, result), deduped, len(
        [l for l in lets if l.name.startswith("t")]
    )


# ---------------------------------------------------------------------------
# loop-invariant hoisting
# ---------------------------------------------------------------------------


def _hoist(body: KernelBody) -> KernelBody:
    """Extract maximal load-free compound subtrees into depth-0 lets.

    CSE already gave depth 0 to *repeated* scalar subexpressions; this
    pass catches the single-occurrence ones — e.g. each term's
    ``coeff * params / denoms`` scalar prefix — so the innermost loop
    performs no parameter arithmetic at all.
    """
    scalar_names = {l.name for l in body.lets if l.depth == 0}
    taken = {l.name for l in body.lets}
    fresh = _names("s", taken)
    new_scalars: list[KLet] = []
    memo: dict[str, str] = {}

    def is_invariant(e: KExpr) -> bool:
        for node in walk(e):
            if isinstance(node, KLoad):
                return False
            if isinstance(node, KRef) and node.name not in scalar_names:
                return False
        return True

    def extract(e: KExpr) -> KExpr:
        if not e.children():
            return e
        if is_invariant(e):
            sig = e.signature()
            if sig not in memo:
                name = next(fresh)
                memo[sig] = name
                new_scalars.append(KLet(name, e, 0))
                scalar_names.add(name)
            return KRef(memo[sig])
        return _rebuild(e, [extract(c) for c in e.children()])

    inner = [
        KLet(l.name, extract(l.expr), l.depth)
        for l in body.lets
        if l.depth > 0
    ]
    result = extract(body.result)
    lets = (
        [l for l in body.lets if l.depth == 0] + new_scalars + inner
    )
    return KernelBody(body.ndim, lets, result)


# ---------------------------------------------------------------------------
# FMA grouping
# ---------------------------------------------------------------------------


def group_fma(expr: KExpr) -> tuple[KExpr, int]:
    """Rewrite ``x + a*b`` / ``a*b + x`` into structural FMA nodes."""
    n = [0]

    def go(e: KExpr) -> KExpr:
        e = _rebuild(e, [go(c) for c in e.children()])
        if isinstance(e, KAdd):
            if isinstance(e.rhs, KMul):
                n[0] += 1
                return KFma(e.rhs.lhs, e.rhs.rhs, e.lhs)
            if isinstance(e.lhs, KMul):
                n[0] += 1
                return KFma(e.lhs.lhs, e.lhs.rhs, e.rhs)
        return e

    return go(expr), n[0]


# ---------------------------------------------------------------------------
# the pipeline
# ---------------------------------------------------------------------------


def optimize_kernel(raw: KernelBody) -> tuple[KernelBody, OptReport]:
    """Run the full pipeline on a raw body; returns (body, report).

    The pipeline is the fixed transform sequence
    :func:`repro.transform.kernel_pipeline` (fold → CSE → hoist → FMA);
    each transform records its tally and this driver assembles the
    report.  Composing the same transforms by hand through
    :mod:`repro.transform` produces bitwise-identical bodies.
    """
    # Imported lazily: repro.transform imports this module for the
    # underlying pass functions.
    from ..transform.kernel_tx import kernel_pipeline

    nodes_before = raw.node_count()
    tallies: dict[str, int] = {}
    body = raw
    for t in kernel_pipeline():
        body = t(body)
        tallies.update(t.tally)

    report = OptReport(
        nodes_before=nodes_before,
        nodes_after=body.node_count(),
        consts_folded=tallies.get("consts_folded", 0),
        reads_deduped=tallies.get("reads_deduped", 0),
        cse_bound=tallies.get("cse_bound", 0),
        bindings_hoisted=tallies.get("bindings_hoisted", 0),
        fma_grouped=tallies.get("fma_grouped", 0),
    )
    return body, report
