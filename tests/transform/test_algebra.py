"""Transform-algebra unit suite.

Legal compositions must reproduce today's preset schedules exactly —
structurally (``to_dict``) and bitwise on every backend — while illegal
compositions must raise a typed :class:`TransformError` carrying the
refusing :class:`~repro.schedule.Evidence`.
"""

import numpy as np
import pytest

from repro.core.components import Component
from repro.core.domains import RectDomain
from repro.core.stencil import Stencil, StencilGroup
from repro.core.weights import WeightArray
from repro.kernel.lower import body_for
from repro.kernel.optimize import optimize_kernel
from repro.schedule import (
    Evidence,
    ScheduleOptions,
    base_schedule,
    build_schedule,
)
from repro.transform import (
    Pipeline,
    Transform,
    TransformError,
    cse,
    distribute,
    fuse,
    kernel_pipeline,
    preset_pipeline,
    reorder,
    split,
    tile,
    time_tile,
    unroll,
    verify_schedule,
)
from tests.schedule._cases import (
    fusable_pair_group,
    gsrb_workload,
    straddle_group,
)

PARITY_BACKENDS = ("python", "numpy", "c", "openmp")

PRESETS = [
    ScheduleOptions(),
    ScheduleOptions(fuse=True),
    ScheduleOptions(multicolor=False),
    ScheduleOptions(fuse=True, multicolor=True, tile=4),
    ScheduleOptions(tile=8, unroll=2),
    ScheduleOptions(fuse=True, time_tile=2),
]


def snapshot_group(n=10):
    """In-place symmetric read: serialized step with a gather snapshot."""
    w = WeightArray([[0, 1, 0], [1, 0, 1], [0, 1, 0]])
    s = Stencil(
        Component("u", w), "u", RectDomain((1, 1), (-1, -1)),
        name="inplace",
    )
    return StencilGroup([s], name="snap"), {"u": (n, n)}


class TestPresetEquivalence:
    """build_schedule is nothing but base_schedule + preset_pipeline."""

    @pytest.mark.parametrize("opts", PRESETS, ids=lambda o: o.describe())
    def test_preset_pipeline_reproduces_build_schedule(self, opts):
        group, shapes, _ = gsrb_workload()
        via_build = build_schedule(group, shapes, opts)
        via_chain = preset_pipeline(opts)(
            base_schedule(group, shapes, policy=opts.policy)
        )
        assert via_chain.options == opts
        assert via_chain.to_dict() == via_build.to_dict()

    @pytest.mark.parametrize("opts", PRESETS, ids=lambda o: o.describe())
    def test_preset_evidence_identical(self, opts):
        group, shapes, _ = gsrb_workload()
        via_build = build_schedule(group, shapes, opts)
        via_chain = preset_pipeline(opts)(
            base_schedule(group, shapes, policy=opts.policy)
        )
        build_ev = [
            str(e) for st in via_build.steps() for e in st.evidence
        ]
        chain_ev = [
            str(e) for st in via_chain.steps() for e in st.evidence
        ]
        assert chain_ev == build_ev

    @pytest.mark.parametrize("backend", PARITY_BACKENDS)
    def test_bitwise_backend_parity(self, backend):
        opts = ScheduleOptions(fuse=True, multicolor=True, tile=4)
        group, shapes, arrays = gsrb_workload()
        via_chain = preset_pipeline(opts)(base_schedule(group, shapes))
        via_build = build_schedule(group, shapes, opts)
        ref = {g: a.copy() for g, a in arrays.items()}
        group.compile(backend=backend, shapes=shapes, schedule=via_build)(
            **ref
        )
        got = {g: a.copy() for g, a in arrays.items()}
        group.compile(backend=backend, shapes=shapes, schedule=via_chain)(
            **got
        )
        for g in sorted(shapes):
            np.testing.assert_array_equal(
                got[g], ref[g],
                err_msg=f"transform chain diverges on {backend}/{g}",
            )


class TestComposition:
    def test_pipeline_composes_and_flattens(self):
        p = fuse() | tile(8)
        q = p | unroll(2)
        assert isinstance(q, Pipeline)
        assert len(q) == 3
        assert list(q.describe_list()) == ["fuse()", "tile(8)", "unroll(2)"]

    def test_distribute_undoes_fuse(self):
        group, shapes = fusable_pair_group()
        fused = fuse()(base_schedule(group, shapes))
        assert any(len(st.stencils) > 1 for st in fused.steps())
        back = distribute()(fused)
        assert all(len(st.stencils) == 1 for st in back.steps())
        assert back.to_dict() == base_schedule(group, shapes).to_dict()

    def test_split_equals_distribute_on_a_pair(self):
        group, shapes = fusable_pair_group()
        fused = fuse()(base_schedule(group, shapes))
        idx = next(
            i for i, st in enumerate(fused.steps())
            if len(st.stencils) == 2
        )
        via_split = split(idx, 1)(fused)
        via_dist = distribute()(fused)
        split_steps = [st.stencils for st in via_split.steps()]
        dist_steps = [st.stencils for st in via_dist.steps()]
        assert split_steps == dist_steps

    def test_reorder_permutes_a_phase_and_preserves_results(self):
        group, shapes, arrays = gsrb_workload()
        sched = base_schedule(group, shapes)
        pi = next(
            i for i, ph in enumerate(sched.phases) if len(ph.steps) >= 2
        )
        perm = tuple(reversed(range(len(sched.phases[pi].steps))))
        swapped = reorder(pi, perm)(sched)
        assert [
            st.stencils for st in swapped.phases[pi].steps
        ] == [
            sched.phases[pi].steps[j].stencils for j in perm
        ]
        ref = {g: a.copy() for g, a in arrays.items()}
        group.compile(backend="numpy", shapes=shapes, schedule=sched)(**ref)
        got = {g: a.copy() for g, a in arrays.items()}
        group.compile(backend="numpy", shapes=shapes, schedule=swapped)(
            **got
        )
        for g in sorted(shapes):
            np.testing.assert_array_equal(got[g], ref[g])

    def test_verify_schedule_accepts_every_preset(self):
        group, shapes, _ = gsrb_workload()
        for opts in PRESETS:
            sched = build_schedule(group, shapes, opts)
            assert verify_schedule(sched) == []

    def test_kernel_pipeline_matches_optimize_kernel(self):
        group, _, _ = gsrb_workload()
        for st in group:
            raw, _ = body_for(st, optimize=False)
            via_opt, report = optimize_kernel(raw)
            via_chain = kernel_pipeline()(raw)
            assert via_chain.signature() == via_opt.signature()
            assert report is not None


class TestIllegalCompositions:
    def test_fuse_across_a_barrier_is_refused(self):
        group, shapes = straddle_group()
        sched = base_schedule(group, shapes)
        with pytest.raises(TransformError) as ei:
            fuse(chains=((1, 2),))(sched)
        err = ei.value
        assert isinstance(err, ValueError)  # autotune contract
        assert isinstance(err.evidence, Evidence)
        assert err.evidence.claim == "fuse-refused"
        assert "barrier" in str(err)

    def test_fuse_dependent_pair_is_refused(self):
        group, shapes = straddle_group()
        sched = base_schedule(group, shapes, policy="serial")
        with pytest.raises(TransformError) as ei:
            fuse(chains=((0, 2),))(sched)
        assert ei.value.evidence.claim == "fuse-refused"

    def test_split_out_of_range_is_refused(self):
        group, shapes = fusable_pair_group()
        sched = base_schedule(group, shapes)
        with pytest.raises(TransformError) as ei:
            split(99, 1)(sched)
        assert ei.value.evidence.claim == "split-refused"

    def test_split_singleton_is_refused(self):
        group, shapes = fusable_pair_group()
        sched = base_schedule(group, shapes)
        with pytest.raises(TransformError) as ei:
            split(0, 1)(sched)
        assert ei.value.evidence.claim == "split-refused"

    def test_reorder_non_permutation_is_refused(self):
        group, shapes, _ = gsrb_workload()
        sched = base_schedule(group, shapes)
        pi = next(
            i for i, ph in enumerate(sched.phases) if len(ph.steps) >= 2
        )
        with pytest.raises(TransformError) as ei:
            reorder(pi, (0,) * len(sched.phases[pi].steps))(sched)
        assert ei.value.evidence.claim == "reorder-refused"

    def test_time_tile_of_snapshot_step_is_refused(self):
        group, shapes = snapshot_group()
        sched = build_schedule(
            group, shapes, ScheduleOptions(multicolor=False)
        )
        with pytest.raises(TransformError) as ei:
            time_tile(2)(sched)
        err = ei.value
        assert err.evidence.claim == "time-tile-refused"
        assert err.refusals  # the full refusal list rides along
        assert all(r.claim == "time-tile-refused" for r in err.refusals)

    def test_bad_knob_value_is_refused_with_typed_evidence(self):
        group, shapes = fusable_pair_group()
        sched = base_schedule(group, shapes)
        with pytest.raises(TransformError) as ei:
            tile(-3)(sched)
        assert ei.value.evidence.claim == "tile-refused"

    def test_schedule_transform_rejects_kernel_body(self):
        group, _, _ = gsrb_workload()
        body, _ = body_for(group[0])
        with pytest.raises(TransformError):
            tile(4)(body)

    def test_kernel_transform_rejects_schedule(self):
        group, shapes = fusable_pair_group()
        sched = base_schedule(group, shapes)
        with pytest.raises(TransformError):
            cse()(sched)

    def test_refused_chain_stops_at_the_refusing_transform(self):
        group, shapes = snapshot_group()
        chain = tile(4) | time_tile(2) | unroll(2)
        sched = build_schedule(
            group, shapes, ScheduleOptions(multicolor=False)
        )
        with pytest.raises(TransformError) as ei:
            chain(sched)
        assert ei.value.evidence.claim == "time-tile-refused"


class TestTunedSpec:
    def test_as_schedule_accepts_tuned_spec(self):
        from repro.schedule import as_schedule

        group, shapes = fusable_pair_group()
        sched = as_schedule("tuned", group, shapes)
        # no winner cached for this group: falls back to the defaults
        assert sched.options == ScheduleOptions()

    def test_transform_base_classes_exported(self):
        import repro.transform as tx

        for name in tx.__all__:
            assert getattr(tx, name) is not None
        assert issubclass(TransformError, ValueError)
        assert isinstance(fuse(), Transform)
