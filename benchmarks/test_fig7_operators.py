"""Fig.7 — stencils/s for CC 7-pt, CC Jacobi, VC GSRB (fixed size).

Three implementations per operator, mirroring the figure's bars:

* ``snowflake_openmp`` / ``snowflake_c`` — DSL-generated code
* ``snowflake_opencl`` — generated OpenCL executed on the CPU simulator
* ``baseline`` — the hand-optimized C comparator ("HPGMG" role)

Each benchmark's ``extra_info`` records stencils/s and the fraction of
the host STREAM-dot roofline achieved, the paper's figure of merit.
Paper-platform projections: ``python -m repro.figures fig7``.
"""

import pytest

from repro.figures.common import build_case
from repro.figures.fig7 import _baseline_runner
from repro.machine.roofline import PAPER_BYTES_PER_STENCIL, roofline_stencils_per_s
from repro.machine.specs import host_spec

OPERATORS = ("cc_7pt", "cc_jacobi", "vc_gsrb")


def _attach(benchmark, points, name):
    rate = points / benchmark.stats["min"]
    benchmark.extra_info["stencils_per_s"] = round(rate)
    bound = roofline_stencils_per_s(
        host_spec(), PAPER_BYTES_PER_STENCIL[name]
    )
    benchmark.extra_info["roofline_fraction"] = round(rate / bound, 3)


@pytest.mark.parametrize("name", OPERATORS)
def test_snowflake_openmp(benchmark, name, op_size):
    case = build_case(name, op_size)
    run = case.compile("openmp")
    run()  # JIT warmup outside the timed region
    benchmark(run)
    _attach(benchmark, case.points, name)


@pytest.mark.parametrize("name", OPERATORS)
def test_snowflake_c(benchmark, name, op_size):
    case = build_case(name, op_size)
    run = case.compile("c")
    run()
    benchmark(run)
    _attach(benchmark, case.points, name)


@pytest.mark.parametrize("name", OPERATORS)
def test_snowflake_opencl_sim(benchmark, name, op_size):
    case = build_case(name, op_size)
    run = case.compile("opencl-sim")
    run()
    benchmark(run)
    _attach(benchmark, case.points, name)


@pytest.mark.parametrize("name", OPERATORS)
def test_baseline_hand_optimized(benchmark, name, op_size):
    case = build_case(name, op_size)
    run = _baseline_runner(name, case)
    run()
    benchmark(run)
    _attach(benchmark, case.points, name)
