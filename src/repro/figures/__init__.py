"""Figure/table regeneration harness (paper SectionV).

One module per evaluation artifact:

* :mod:`repro.figures.fig6` — modified STREAM dot bandwidth
* :mod:`repro.figures.fig7` — stencils/s for the three operators, CPU & GPU
* :mod:`repro.figures.fig8` — VC GSRB smoother time vs problem size
* :mod:`repro.figures.fig9` — full GMG solver DOF/s

Each exposes ``run(...) -> (headers, rows)`` and a ``main`` that prints
the table; the CLI is ``python -m repro.figures <fig6|fig7|fig8|fig9>``.
Measured numbers come from this host; paper-platform numbers come from
the calibrated execution model and are labelled as such (DESIGN.md,
substitutions table).
"""

from . import common, fig6, fig7, fig8, fig9

__all__ = ["common", "fig6", "fig7", "fig8", "fig9"]
