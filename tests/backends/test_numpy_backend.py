"""Numpy backend specifics: views, snapshots, lattice slicing."""

import numpy as np
import pytest

from repro.backends.numpy_backend import _StencilExec, lattice_slices
from repro.core.components import Component
from repro.core.domains import RectDomain, ResolvedRect
from repro.core.stencil import Stencil
from repro.core.weights import WeightArray
from repro.hpgmg.operators import red_black_domains

INTERIOR = RectDomain((1, 1), (-1, -1))
LAP = Component("u", WeightArray([[0, 1, 0], [1, -4, 1], [0, 1, 0]]))


class TestLatticeSlices:
    def test_identity_map(self):
        r = ResolvedRect((1, 2), (1, 1), (4, 5))
        slc = lattice_slices(r, (1, 1), (0, 0))
        a = np.arange(100).reshape(10, 10)
        assert a[slc].shape == (4, 5)
        assert a[slc][0, 0] == a[1, 2]

    def test_offset_map(self):
        r = ResolvedRect((1,), (1,), (4,))
        slc = lattice_slices(r, (1,), (2,))
        a = np.arange(10)
        np.testing.assert_array_equal(a[slc], [3, 4, 5, 6])

    def test_strided_map(self):
        r = ResolvedRect((1,), (2,), (3,))
        slc = lattice_slices(r, (1,), (0,))
        a = np.arange(10)
        np.testing.assert_array_equal(a[slc], [1, 3, 5])

    def test_scaled_map(self):
        r = ResolvedRect((1,), (1,), (4,))
        slc = lattice_slices(r, (2,), (-1,))
        a = np.arange(12)
        np.testing.assert_array_equal(a[slc], [1, 3, 5, 7])

    def test_pinned_dim(self):
        r = ResolvedRect((3,), (0,), (1,))
        slc = lattice_slices(r, (1,), (0,))
        a = np.arange(10)
        np.testing.assert_array_equal(a[slc], [3])

    def test_slices_are_views(self):
        r = ResolvedRect((1, 1), (2, 2), (3, 3))
        a = np.zeros((10, 10))
        v = a[lattice_slices(r, (1, 1), (0, 0))]
        assert v.base is a


class TestSnapshotDecision:
    def test_safe_inplace_no_snapshot(self):
        red, _ = red_black_domains(2)
        s = Stencil(LAP, "u", red)
        ex = _StencilExec(s, {"u": (12, 12)})
        assert not ex.needs_snapshot

    def test_hazardous_inplace_snapshots(self):
        s = Stencil(LAP, "u", INTERIOR)
        ex = _StencilExec(s, {"u": (12, 12)})
        assert ex.needs_snapshot

    def test_out_of_place_no_snapshot(self):
        s = Stencil(LAP, "out", INTERIOR)
        ex = _StencilExec(s, {"u": (12, 12), "out": (12, 12)})
        assert not ex.needs_snapshot


class TestExecution:
    def test_does_not_touch_outside_domain(self, rng):
        s = Stencil(LAP, "out", RectDomain((2, 2), (5, 5)))
        u = rng.random((10, 10))
        out = np.full((10, 10), -7.0)
        s.compile(backend="numpy")(u=u, out=out)
        mask = np.full((10, 10), True)
        mask[2:5, 2:5] = False
        assert np.all(out[mask] == -7.0)

    def test_empty_domain_is_noop(self, rng):
        s = Stencil(LAP, "out", RectDomain((5, 5), (2, 2)))
        out = np.zeros((10, 10))
        s.compile(backend="numpy")(u=rng.random((10, 10)), out=out)
        assert not out.any()

    def test_no_options_accepted(self):
        s = Stencil(LAP, "out", INTERIOR)
        with pytest.raises(TypeError):
            s.compile(backend="numpy", tile=8)

    def test_python_backend_no_options(self):
        s = Stencil(LAP, "out", INTERIOR)
        with pytest.raises(TypeError):
            s.compile(backend="python", tile=8)
