"""Sequential C micro-compiler: flat form -> C99 -> gcc -> ctypes callable.

The generated function has the narrow FFI signature

    void sf_kernel(TYPE** grids, const double* params);

with grids passed in sorted-name order and shapes/strides baked into the
source (shape-specialized JIT).  Structure — execution order, fusion
chains, snapshot and multicolor decisions — comes from a
:class:`~repro.schedule.ir.Schedule` built by the shared lowering stage;
this module only emits.  An in-place stencil with a proven loop-carried
hazard reads its output grid through a snapshot (gather semantics),
matching the reference interpreter exactly.
"""

from __future__ import annotations

import ctypes
from typing import Callable, Mapping

import numpy as np

from .. import telemetry
from ..core.stencil import StencilGroup
from ..schedule import Schedule, ScheduleOptions, as_schedule, pop_schedule_spec
from ..schedule import fusion_chains as _schedule_fusion_chains
from .base import Backend, register_backend
from .codegen_c import (
    C_PREAMBLE,
    CodegenContext,
    StencilLoops,
    ctype_for,
    snapshot_decl,
)
from .jit import cache_dir, compile_and_load, source_tag

__all__ = [
    "CBackend",
    "generate_c_source",
    "make_ffi_wrapper",
    "fusion_chains",
]


def fusion_chains(
    group: StencilGroup, shapes: Mapping[str, tuple[int, ...]]
) -> list[list[int]]:
    """Maximal runs of program-adjacent stencils legal to fuse.

    Deprecated shim: the single implementation now lives in
    :func:`repro.schedule.fusion_chains` (program-order mode).  Kept so
    existing callers and tests keep working.
    """
    norm = {g: tuple(int(x) for x in shapes[g]) for g in shapes}
    return _schedule_fusion_chains(group, norm)


def generate_c_source(
    group: StencilGroup,
    shapes: Mapping[str, tuple[int, ...]],
    dtype,
    *,
    schedule: "Schedule | ScheduleOptions | str | None" = None,
    tile: int | None = None,
    multicolor: bool = True,
    fuse: bool = False,
    func_name: str = "sf_kernel",
) -> str:
    """Render the whole group as one C translation unit.

    ``schedule`` may be a prebuilt :class:`~repro.schedule.ir.Schedule`
    (the loose knobs are then ignored), a :class:`ScheduleOptions`, or a
    policy string; otherwise one is lowered from the legacy
    ``tile``/``multicolor``/``fuse`` knobs.  Steps are emitted in
    schedule order: fused chains share one loop nest, checkerboard
    unions become one parity-corrected sweep.
    """
    norm = {g: tuple(int(x) for x in shapes[g]) for g in shapes}
    sched = as_schedule(
        schedule, group, norm,
        ScheduleOptions(fuse=fuse, multicolor=multicolor, tile=tile),
    )
    ctx = CodegenContext(group, norm, ctype_for(dtype))
    lines: list[str] = [C_PREAMBLE]
    lines.append(
        f"void {func_name}({ctx.ctype}** grids, const double* params)"
    )
    lines.append("{")
    for l in ctx.prologue():
        lines.append("  " + l)
    tt = sched.time_tile
    if tt is not None and tt.kind == "wavefront":
        # Single slope-0 step: blocked wavefront nest, all k
        # applications of a block before the next block starts.
        (step,) = tuple(sched.steps())
        chain = list(step.stencils)
        names = ", ".join(group[i].name for i in chain)
        lines.append(
            f"  /* stencil(s) {chain}: {names} — wavefront time tile "
            f"k={tt.k} */"
        )
        loops = StencilLoops(
            ctx, group[chain[0]], tile=sched.options.tile,
            parity=step.sweep, snapshot_name=None,
            fused_with=[group[i] for i in chain[1:]],
            unroll=sched.options.unroll,
        )
        for l in loops.emit_wavefront(tt.k):
            lines.append("  " + l)
        lines.append("}")
        return "\n".join(lines) + "\n"
    body: list[str] = []
    for step in sched.steps():
        chain = list(step.stencils)
        si = chain[0]
        stencil = group[si]
        names = ", ".join(group[i].name for i in chain)
        body.append(f"/* stencil(s) {chain}: {names} */")
        fused = [group[i] for i in chain[1:]]
        if step.snapshot:
            snap = f"snap_{si}"
            loops = StencilLoops(
                ctx, stencil, tile=sched.options.tile, parity=step.sweep,
                snapshot_name=snap, unroll=sched.options.unroll,
            )
            body.append("{")
            for l in snapshot_decl(ctx, stencil, snap):
                body.append("  " + l)
            for l in loops.emit():
                body.append("  " + l)
            body.append(f"  free({snap});")
            body.append("}")
        else:
            loops = StencilLoops(
                ctx, stencil, tile=sched.options.tile, parity=step.sweep,
                snapshot_name=None, fused_with=fused,
                unroll=sched.options.unroll,
            )
            body.extend(loops.emit())
    if tt is not None:
        # Fused time tile: one outer time loop around the whole step
        # sequence — every application runs the full (barrier-ordered)
        # program, so the result is k sequential sweeps by construction.
        lines.append(f"  /* fused time tile k={tt.k} */")
        lines.append(f"  for (int64_t sf_tt = 0; sf_tt < {tt.k}; ++sf_tt) {{")
        lines.extend("    " + l for l in body)
        lines.append("  }")
    else:
        lines.extend("  " + l for l in body)
    lines.append("}")
    return "\n".join(lines) + "\n"


def make_ffi_wrapper(
    lib: ctypes.CDLL,
    func_name: str,
    ctx: CodegenContext,
) -> Callable:
    """Wrap a compiled kernel in the Python calling convention."""
    fn = getattr(lib, func_name)
    fn.argtypes = [
        ctypes.POINTER(ctypes.c_void_p),
        ctypes.POINTER(ctypes.c_double),
    ]
    fn.restype = None
    grid_order = list(ctx.grid_order)
    param_order = list(ctx.param_order)
    shapes = {g: tuple(ctx.shapes[g]) for g in grid_order}
    want_dtype = np.dtype(np.float64 if ctx.ctype == "double" else np.float32)

    def impl(arrays: Mapping[str, np.ndarray], params: Mapping[str, float]):
        ptrs = (ctypes.c_void_p * len(grid_order))()
        mats = []
        for i, g in enumerate(grid_order):
            a = arrays[g]
            if a.dtype != want_dtype:
                raise TypeError(
                    f"grid {g!r} has dtype {a.dtype}, kernel wants {want_dtype}"
                )
            if tuple(a.shape) != shapes[g]:
                raise ValueError(
                    f"grid {g!r} has shape {a.shape}, kernel compiled "
                    f"for {shapes[g]}"
                )
            if not a.flags["C_CONTIGUOUS"]:
                raise ValueError(
                    f"grid {g!r} must be C-contiguous for compiled backends"
                )
            mats.append(a)
            ptrs[i] = a.ctypes.data
        for i in range(len(mats)):
            for j in range(i + 1, len(mats)):
                if np.shares_memory(mats[i], mats[j]):
                    raise ValueError(
                        f"grids {grid_order[i]!r} and {grid_order[j]!r} "
                        "alias the same memory; compiled kernels assume "
                        "distinct (restrict) buffers"
                    )
        pvals = (ctypes.c_double * max(len(param_order), 1))(
            *[float(params[p]) for p in param_order]
        )
        fn(ptrs, pvals)

    return impl


class CBackend(Backend):
    """The ``c`` micro-compiler (sequential C99, SectionV-A flag set).

    Scheduling options (see :class:`repro.schedule.ScheduleOptions`):
    ``schedule`` (a prebuilt Schedule or a policy string), ``tile``,
    ``multicolor``, ``fuse``; plus ``cc_timeout`` — a hard wall-clock
    cap on the compiler subprocess.
    """

    name = "c"
    _openmp = False
    requires_toolchain = True

    #: declared scheduling knobs (name -> default); subclasses override
    #: to change the vocabulary without touching the specialize pipeline
    _KNOBS: Mapping[str, object] = {
        "schedule": "greedy", "tile": None, "multicolor": True,
        "fuse": False, "time_tile": 1, "unroll": None,
    }

    def _schedule_spec(self, options: dict):
        """Split user options into (schedule spec, cc_timeout).

        Consumes ``options``; anything left over is unknown and raises,
        so the :class:`CompiledKernel` surface stays typo-safe.
        """
        cc_timeout = options.pop("cc_timeout", None)
        spec = pop_schedule_spec(
            options, backend=self.name, knobs=self._KNOBS
        )
        return spec, cc_timeout

    def specializer(self, group: StencilGroup, **options):
        spec, cc_timeout = self._schedule_spec(options)

        def specialize(shapes, dtype) -> Callable:
            sched = as_schedule(spec, group, shapes)
            src = self.generate(group, shapes, dtype, schedule=sched)
            telemetry.count(f"codegen.{self.name}.sources")
            telemetry.count(f"codegen.{self.name}.bytes", len(src))
            lib = compile_and_load(
                src, openmp=self._openmp, timeout=cc_timeout
            )
            ctx = CodegenContext(group, shapes, ctype_for(dtype))
            return make_ffi_wrapper(lib, "sf_kernel", ctx)

        return specialize

    def generate(self, group, shapes, dtype, *, schedule=None) -> str:
        """Source-generation hook (overridden by the OpenMP backend)."""
        return generate_c_source(group, shapes, dtype, schedule=schedule)

    def artifact_info(self, group, shapes, dtype=None, **options):
        """Cache identity of the artifact this group would compile to.

        Renders the source (cheap) but never invokes the compiler:
        ``cache_key`` is the JIT tag, ``source_path``/``artifact_path``
        are where :func:`~repro.backends.jit.compile_and_load` keeps
        ``sf_<tag>.c`` / ``sf_<tag>.so``, and ``cached`` says whether
        the shared object is already on disk.
        """
        spec, _ = self._schedule_spec(dict(options))
        shapes = {g: tuple(int(x) for x in s) for g, s in shapes.items()}
        dt = np.dtype(dtype) if dtype is not None else np.dtype(np.float64)
        sched = as_schedule(spec, group, shapes)
        src = self.generate(group, shapes, dt, schedule=sched)
        tag = source_tag(src, openmp=self._openmp)
        d = cache_dir()
        so = d / f"sf_{tag}.so"
        return {
            "backend": self.name,
            "cache_key": tag,
            "source_path": str(d / f"sf_{tag}.c"),
            "artifact_path": str(so),
            "cached": so.exists(),
            "source_bytes": len(src),
        }


register_backend(CBackend(), "c99")
