"""JIT machinery: compile generated C to a shared object and load it.

The paper's micro-compilers render the stencil AST into a performance
language, hand it to a system compiler, and wrap the binary in a Python
callable via the built-in FFI, caching callables for subsequent use
(SectionIV).  This module implements exactly that pipeline with gcc +
:mod:`ctypes`:

* source is hashed (sha256) — the hash keys both an in-process cache and
  an on-disk cache directory, so identical stencils never recompile,
  even across interpreter sessions;
* compiler and flags mirror SectionV-A (``-std=c99 -O3 -fgcse -fPIC``),
  with ``-fopenmp`` / ``-lm`` added per backend request.
"""

from __future__ import annotations

import ctypes
import hashlib
import os
import subprocess
import tempfile
import threading
from pathlib import Path

__all__ = ["CompileError", "compile_and_load", "cache_dir", "clear_disk_cache"]


class CompileError(RuntimeError):
    """gcc rejected generated source — always a codegen bug; the message
    carries the compiler output and a path to the offending source."""


_DEFAULT_FLAGS = ("-std=c99", "-O3", "-fgcse", "-fPIC", "-shared")

_lock = threading.Lock()
_loaded: dict[str, ctypes.CDLL] = {}


def cache_dir() -> Path:
    """On-disk cache location (override with ``SNOWFLAKE_CACHE_DIR``)."""
    root = os.environ.get("SNOWFLAKE_CACHE_DIR")
    if root:
        p = Path(root)
    else:
        p = Path(tempfile.gettempdir()) / "snowflake-jit-cache"
    p.mkdir(parents=True, exist_ok=True)
    return p


def clear_disk_cache() -> int:
    """Delete cached artifacts; returns the number of files removed."""
    n = 0
    for f in cache_dir().glob("sf_*"):
        f.unlink(missing_ok=True)
        n += 1
    return n


def _cc() -> str:
    return os.environ.get("SNOWFLAKE_CC", "gcc")


def compile_and_load(
    source: str,
    *,
    openmp: bool = False,
    extra_flags: tuple[str, ...] = (),
) -> ctypes.CDLL:
    """Compile C ``source`` to a shared object and dlopen it (cached)."""
    tag = hashlib.sha256(
        source.encode() + repr((openmp, extra_flags, _cc())).encode()
    ).hexdigest()[:24]
    with _lock:
        lib = _loaded.get(tag)
        if lib is not None:
            return lib
        d = cache_dir()
        so_path = d / f"sf_{tag}.so"
        if not so_path.exists():
            c_path = d / f"sf_{tag}.c"
            c_path.write_text(source)
            cmd = [_cc(), *_DEFAULT_FLAGS]
            if openmp:
                cmd.append("-fopenmp")
            cmd += list(extra_flags)
            tmp_so = d / f"sf_{tag}.{os.getpid()}.tmp.so"
            cmd += [str(c_path), "-o", str(tmp_so), "-lm"]
            proc = subprocess.run(cmd, capture_output=True, text=True)
            if proc.returncode != 0:
                raise CompileError(
                    f"compiler failed ({' '.join(cmd)}):\n{proc.stderr}\n"
                    f"source kept at {c_path}"
                )
            os.replace(tmp_so, so_path)  # atomic publish for concurrent procs
        lib = ctypes.CDLL(str(so_path))
        _loaded[tag] = lib
        return lib
