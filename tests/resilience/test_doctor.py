"""``python -m repro doctor``: self-check + degradation report."""

import shutil

import pytest

from repro.__main__ import main
from repro.resilience.faults import arm

pytestmark = pytest.mark.faults

needs_gcc = pytest.mark.skipif(
    shutil.which("gcc") is None, reason="requires a C toolchain"
)


@needs_gcc
def test_healthy_toolchain_exits_zero(real_gcc, capsys):
    assert main(["doctor"]) == 0
    out = capsys.readouterr().out
    assert "no degradation" in out
    assert "[ ok ] compiler" in out
    assert "would serve: openmp" in out


def test_broken_toolchain_reports_degraded(monkeypatch, capsys):
    monkeypatch.setenv("SNOWFLAKE_CC", "/nonexistent/snowflake-cc")
    assert main(["doctor"]) == 1
    out = capsys.readouterr().out
    assert "NOT FOUND" in out
    assert "DEGRADED" in out
    assert "would serve: numpy" in out
    assert "results identical" in out  # degraded != wrong


def test_doctor_flags_armed_fault_sites(monkeypatch, capsys):
    monkeypatch.setenv("SNOWFLAKE_CC", "/nonexistent/snowflake-cc")
    arm("backend.invoke", times=None)
    main(["doctor"])
    out = capsys.readouterr().out
    assert "armed sites" in out
    assert "backend.invoke" in out


@needs_gcc
def test_doctor_sweeps_orphans_and_counts_quarantine(real_gcc, capsys):
    from repro.backends.jit import cache_dir

    d = cache_dir()
    (d / "sf_stale.424242.tmp.so").write_bytes(b"x")  # dead-pid orphan
    (d / "sf_broken.so.bad").write_bytes(b"x")
    assert main(["doctor"]) == 0  # hygiene findings never flip exit code
    out = capsys.readouterr().out
    assert "removed 1 stale" in out
    assert "1 quarantined artifact(s)" in out
    assert not (d / "sf_stale.424242.tmp.so").exists()
