"""Figure harness integration: structure and paper-shape assertions.

Timing magnitudes are machine-dependent; these tests check (a) the
harness runs end to end, (b) the tables have the right structure, and
(c) the *model-side* numbers reproduce the paper's qualitative claims
(who wins, by roughly what factor, where the crossovers are).
"""

import pytest

from repro.figures import common, fig6, fig7, fig8, fig9


class TestCommon:
    @pytest.mark.parametrize("name", common.OPERATORS)
    def test_build_case_runs_on_numpy(self, name):
        case = common.build_case(name, 8)
        case.compile("numpy")()

    def test_unknown_operator(self):
        with pytest.raises(ValueError):
            common.build_case("fft", 8)
        with pytest.raises(ValueError):
            common.operator_work("fft", 8)

    def test_operator_work_traffic(self):
        w = common.operator_work("vc_gsrb", 64)
        assert w.points == 64**3
        assert w.bytes_per_point == 64.0
        assert w.launches == 14


class TestFig6:
    def test_rows_structure(self):
        headers, rows = fig6.run(sizes=(2**16,), repeats=1)
        assert headers[0].startswith("N")
        flavors = {r[1] for r in rows}
        assert {"c", "openmp", "numpy"} <= flavors
        assert any("paper" in str(r[3]) for r in rows)


class TestFig7:
    def test_model_rows_reproduce_paper_shape(self):
        rows = fig7.model_paper_platforms(n=256)
        by = {(r["platform"], r["operator"]): r for r in rows}
        cpu_gsrb = by[("Core i7-4765T", "vc_gsrb")]
        gpu_gsrb = by[("K20c GPU", "vc_gsrb")]
        # CPU: Snowflake within ~10% of hand-optimized and below roofline
        assert cpu_gsrb["snowflake"] / cpu_gsrb["hpgmg"] > 0.85
        assert cpu_gsrb["snowflake"] <= cpu_gsrb["roofline"]
        # GPU: Snowflake OpenCL about half of CUDA (the 2x claim)
        ratio = gpu_gsrb["hpgmg"] / gpu_gsrb["snowflake"]
        assert 1.5 < ratio < 2.5
        # operator ordering: 7pt > jacobi > gsrb stencil rates (24<40<64 B)
        cpu = {k[1]: v for k, v in by.items() if k[0] == "Core i7-4765T"}
        assert cpu["cc_7pt"]["roofline"] > cpu["cc_jacobi"]["roofline"]
        assert cpu["cc_jacobi"]["roofline"] > cpu["vc_gsrb"]["roofline"]

    def test_measured_rows_run(self):
        rows = fig7.measure_host(n=8, repeats=1, backend="c")
        assert {r["operator"] for r in rows} == set(common.OPERATORS)
        assert all(r["snowflake"] > 0 for r in rows)


class TestFig8:
    def test_paper_shapes(self):
        headers, rows = fig8.run(host_sizes=(), model_sizes=(32, 64, 128, 256))
        model = [r for r in rows if r[-1] == "model"]
        cpu = {r[1]: r for r in model if r[0].startswith("Core")}
        gpu = {r[1]: r for r in model if r[0].startswith("K20c")}
        # runtime decreases with problem size (reading up the ladder)
        assert cpu["32^3"][2] < cpu["64^3"][2] < cpu["128^3"][2] < cpu["256^3"][2]
        # CPU 32^3 beats the DRAM roofline (cache residency)
        assert cpu["32^3"][2] < cpu["32^3"][4]
        # larger CPU sizes sit above (slower than) the bound
        assert cpu["256^3"][2] > cpu["256^3"][4]
        # GPU flattens at small sizes: 32^3 ~ 64^3 (launch bound)
        assert gpu["64^3"][2] / gpu["32^3"][2] < 2.0
        # but GPU wins at 256^3
        assert gpu["256^3"][2] < cpu["256^3"][2]

    def test_host_rows_run(self):
        headers, rows = fig8.run(host_sizes=(8,), model_sizes=(), repeats=1,
                                 backend="c")
        assert rows[0][0] == "host"
        assert rows[0][2] > 0


class TestFig9:
    def test_vcycle_work_covers_all_levels(self):
        works = fig9.vcycle_work(32)
        # levels 32,16,8,4,2: smooth work on each + transfer ops between
        assert len(works) == 5 + 4 * 3

    def test_model_gmg_matches_paper_magnitudes(self):
        from repro.machine.model import IMPLEMENTATIONS
        from repro.machine.specs import I7_4765T, K20C

        cycles = 10
        dof = 256**3
        t_cpu = fig9.model_gmg_time(
            I7_4765T, IMPLEMENTATIONS["hpgmg-openmp"], 256, cycles
        )
        cpu_dofs = dof / t_cpu
        # paper Fig.9: ~12-14 MDOF/s on the i7 — allow a generous band
        assert 8e6 < cpu_dofs < 20e6
        t_sf_gpu = fig9.model_gmg_time(
            K20C, IMPLEMENTATIONS["snowflake-opencl"], 256, cycles
        )
        t_cuda = fig9.model_gmg_time(
            K20C, IMPLEMENTATIONS["hpgmg-cuda"], 256, cycles
        )
        # "roughly half the performance of hand-optimized CUDA"
        assert 1.5 < t_sf_gpu / t_cuda < 2.6

    def test_run_structure_small(self):
        headers, rows = fig9.run(n=8, cycles=2, model_n=64)
        assert rows[0][0] == "host"
        assert len(rows) == 3
