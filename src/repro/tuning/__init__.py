"""Autotuning: fixed-grid timing, cost-model-guided search, and the
persistent per-machine tuning cache.

:func:`autotune_schedule` times an explicit candidate grid (the paper's
Section IV-A surface); :func:`search_schedules` replaces enumeration
with beam/annealing search guided by the analytic cost model, persisting
winners via :mod:`repro.tuning.cache` so
:func:`repro.schedule.schedule_for` transparently reloads them in later
processes.
"""

from .autotune import (
    DEFAULT_CANDIDATES,
    ScheduleTuneResult,
    TuneResult,
    autotune_schedule,
    autotune_tile,
    check_tune_model,
    default_schedule_candidates,
)
from .cache import (
    TUNE_SCHEMA,
    load_winner,
    machine_fingerprint,
    save_winner,
    tune_tag,
    tuned_options,
    winner_path,
)
from .search import (
    SearchResult,
    Trial,
    predict_schedule_time,
    search_schedules,
)

__all__ = [
    "DEFAULT_CANDIDATES",
    "ScheduleTuneResult",
    "TuneResult",
    "autotune_schedule",
    "autotune_tile",
    "check_tune_model",
    "default_schedule_candidates",
    "TUNE_SCHEMA",
    "load_winner",
    "machine_fingerprint",
    "save_winner",
    "tune_tag",
    "tuned_options",
    "winner_path",
    "SearchResult",
    "Trial",
    "predict_schedule_time",
    "search_schedules",
]
