"""Multigrid solver: convergence, smoother/interp variants, F-cycle."""

import numpy as np
import pytest

from repro.hpgmg.level import Level
from repro.hpgmg.problem import apply_operator, setup_problem, smooth_u_exact
from repro.hpgmg.solver import MultigridSolver, _chebyshev_weights


def reduction_rate(history):
    """Geometric mean per-cycle reduction, skipping the first cycle."""
    if len(history) < 3:
        raise ValueError("need at least 2 cycles")
    return (history[1] / history[-1]) ** (1.0 / (len(history) - 2))


class TestConvergence:
    @pytest.mark.parametrize("coeff", ["constant", "variable"])
    def test_2d_vcycle_converges(self, coeff):
        level, u = setup_problem(32, ndim=2, coefficients=coeff)
        solver = MultigridSolver(level, backend="numpy")
        hist = solver.solve(cycles=6)
        assert reduction_rate(hist) > 5.0
        err = np.max(np.abs(level.grids["x"][level.interior] - u[level.interior]))
        assert err < 1e-4

    def test_3d_vcycle_converges(self):
        level, u = setup_problem(16, ndim=3, coefficients="variable")
        solver = MultigridSolver(level, backend="c")
        hist = solver.solve(cycles=6)
        assert reduction_rate(hist) > 4.0

    def test_rtol_early_exit(self):
        level, _ = setup_problem(16, ndim=2)
        solver = MultigridSolver(level, backend="numpy")
        hist = solver.solve(cycles=50, rtol=1e-6)
        assert len(hist) < 30
        assert hist[-1] <= 1e-6 * hist[0]

    def test_hierarchy_sizes(self):
        solver = MultigridSolver(Level(32, 2), backend="numpy")
        assert [l.n for l in solver.levels] == [32, 16, 8, 4, 2]

    def test_min_coarse_respected(self):
        solver = MultigridSolver(Level(32, 2), backend="numpy", min_coarse=8)
        assert [l.n for l in solver.levels] == [32, 16, 8]

    def test_odd_size_stops_coarsening(self):
        solver = MultigridSolver(Level(24, 2), backend="numpy")
        assert [l.n for l in solver.levels] == [24, 12, 6, 3]


class TestSmootherVariants:
    def test_jacobi_smoother_converges(self):
        level, _ = setup_problem(16, ndim=2)
        solver = MultigridSolver(level, backend="numpy", smoother="jacobi",
                                 n_pre=3, n_post=3)
        hist = solver.solve(cycles=6)
        assert reduction_rate(hist) > 2.0

    def test_chebyshev_smoother_converges(self):
        level, _ = setup_problem(16, ndim=2)
        solver = MultigridSolver(level, backend="numpy", smoother="chebyshev")
        hist = solver.solve(cycles=6)
        assert reduction_rate(hist) > 2.0

    def test_unknown_smoother(self):
        with pytest.raises(ValueError):
            MultigridSolver(Level(8, 2), smoother="sor")

    def test_chebyshev_weights(self):
        ws = _chebyshev_weights(degree=2, lo=0.5, hi=2.0)
        assert len(ws) == 2
        assert all(w > 0 for w in ws)
        assert ws[0] != ws[1]


class TestInterpolationVariants:
    def test_linear_interpolation_converges(self):
        level, _ = setup_problem(16, ndim=2, coefficients="variable")
        solver = MultigridSolver(level, backend="numpy", interpolation="linear")
        hist = solver.solve(cycles=6)
        assert reduction_rate(hist) > 4.0

    def test_unknown_interpolation(self):
        with pytest.raises(ValueError):
            MultigridSolver(Level(8, 2), interpolation="spectral")


class TestFCycle:
    def test_fmg_first_cycle_beats_vcycle(self):
        lv, _ = setup_problem(32, ndim=2, coefficients="constant")
        sv = MultigridSolver(lv, backend="numpy", interpolation="linear")
        hv = sv.solve(cycles=1)

        lf, _ = setup_problem(32, ndim=2, coefficients="constant")
        sf = MultigridSolver(lf, backend="numpy", interpolation="linear")
        hf = sf.solve(cycles=1, cycle="f")
        assert hf[-1] < hv[-1]

    def test_f_then_v_converges(self):
        level, u = setup_problem(16, ndim=2)
        solver = MultigridSolver(level, backend="numpy", interpolation="linear")
        hist = solver.solve(cycles=5, cycle="f")
        assert hist[-1] < 1e-4 * hist[0]

    def test_unknown_cycle(self):
        level, _ = setup_problem(8, ndim=2)
        solver = MultigridSolver(level, backend="numpy")
        with pytest.raises(ValueError):
            solver.solve(cycles=1, cycle="w")


class TestProblemSetup:
    def test_u_exact_zero_on_ghosts(self):
        level = Level(8, 2)
        u = smooth_u_exact(level)
        assert not u[0, :].any() and not u[:, 0].any()

    def test_rhs_consistency(self):
        # rhs was built as A u*, so the residual at x = u* is ~0
        level, u = setup_problem(8, ndim=2)
        level.grids["x"][...] = u
        solver = MultigridSolver(level, backend="numpy")
        assert solver.residual_norm() < 1e-10

    def test_apply_operator_restores_state(self):
        level = Level(8, 2)
        level.grids["x"][level.interior] = 3.0
        level.grids["rhs"][level.interior] = 4.0
        x0 = level.grids["x"].copy()
        rhs0 = level.grids["rhs"].copy()
        apply_operator(level, smooth_u_exact(level))
        np.testing.assert_array_equal(level.grids["x"], x0)
        np.testing.assert_array_equal(level.grids["rhs"], rhs0)


class TestTimers:
    def test_timers_populated(self):
        level, _ = setup_problem(16, ndim=2)
        solver = MultigridSolver(level, backend="numpy")
        solver.solve(cycles=2)
        for op in ("smooth", "residual", "restrict", "interp", "bottom"):
            assert solver.timers[op].count > 0
            assert solver.timers[op].elapsed >= 0.0


class TestBackendOptions:
    def test_backend_options_forwarded(self):
        # compile every solver kernel with fusion + tiling enabled; the
        # solve must behave identically to the plain configuration.
        level_a, _ = setup_problem(8, ndim=2)
        plain = MultigridSolver(level_a, backend="c")
        ha = plain.solve(cycles=3)

        level_b, _ = setup_problem(8, ndim=2)
        tuned = MultigridSolver(
            level_b, backend="c",
            backend_options={"fuse": True, "tile": 4},
        )
        hb = tuned.solve(cycles=3)
        np.testing.assert_allclose(ha, hb, rtol=1e-12)

    def test_bad_backend_option_rejected_eagerly(self):
        with pytest.raises(TypeError):
            MultigridSolver(
                Level(8, 2), backend="c", backend_options={"gpu": True}
            )
