"""Micro-compiler backends and their registry.

Importing this package registers the built-in micro-compilers:
``python`` (reference interpreter), ``numpy`` (vectorized views),
``c`` (sequential C99 JIT), ``openmp`` (task-parallel C), and
``opencl-sim`` and ``cuda-sim`` (generated OpenCL-C / CUDA-C executed
on the CPU device simulators).  User backends register via :func:`register_backend`.
"""

from .base import (
    Backend,
    CompiledKernel,
    available_backends,
    get_backend,
    register_backend,
)

# Registration side effects — order matters only for documentation.
from . import python_ref as _python_ref  # noqa: F401
from . import numpy_backend as _numpy_backend  # noqa: F401

try:  # compiled backends need a working C compiler
    from . import c_backend as _c_backend  # noqa: F401
    from . import openmp_backend as _openmp_backend  # noqa: F401
    from . import opencl_backend as _opencl_backend  # noqa: F401
    from . import cuda_backend as _cuda_backend  # noqa: F401

    HAVE_COMPILED_BACKENDS = True
except Exception:  # pragma: no cover - exercised only without a toolchain
    HAVE_COMPILED_BACKENDS = False

__all__ = [
    "Backend",
    "CompiledKernel",
    "available_backends",
    "get_backend",
    "register_backend",
    "HAVE_COMPILED_BACKENDS",
]
