"""Property test: backend equivalence on the shared kernel IR.

Extends the random expression generator of
``tests/core/test_flatten_property.py``: every generated tree must
produce the same sweep through the python reference, numpy and the C
backend — with the pass pipeline on *and* off — and the C backend's
output must be bit-for-bit identical between the optimized and the raw
body (CSE, folding, hoisting and FMA grouping are IEEE-neutral).
"""

import numpy as np
from hypothesis import given, settings
from hypothesis import strategies as st

from core.test_flatten_property import GRIDS, small_exprs
from repro.core.domains import RectDomain
from repro.core.stencil import Stencil
from repro.kernel import no_optimization

PARAMS = {"w": 1.25}
SHAPE = (8, 8)


def _run(stencil, arrays, backend):
    work = {
        g: np.array(a, copy=True)
        for g, a in arrays.items()
        if g in stencil.grids()
    }
    kernel = stencil.compile(backend=backend)
    kernel(**work, **{p: PARAMS[p] for p in stencil.params()})
    return work["out"]


@settings(max_examples=20, deadline=None)
@given(expr=small_exprs(), seed=st.integers(0, 2**16))
def test_python_numpy_c_agree_with_and_without_optimization(expr, seed):
    rng = np.random.default_rng(seed)
    arrays = {g: rng.random(SHAPE) + 0.5 for g in GRIDS}
    arrays["out"] = np.zeros(SHAPE)
    stencil = Stencil(expr, "out", RectDomain((3, 3), (-3, -3)))

    opt = {b: _run(stencil, arrays, b) for b in ("python", "numpy", "c")}
    with no_optimization():
        raw = {b: _run(stencil, arrays, b) for b in ("python", "numpy", "c")}

    for variant in (opt, raw):
        # C consumes the same body as python in the same order: bitwise
        np.testing.assert_array_equal(variant["c"], variant["python"])
        # numpy vectorizes per-rect: tight allclose
        np.testing.assert_allclose(
            variant["numpy"], variant["python"], rtol=1e-12, atol=1e-12
        )
    # the pass pipeline is bitwise-neutral on the C path
    np.testing.assert_array_equal(opt["c"], raw["c"])
    # and semantics-preserving (up to association) everywhere
    np.testing.assert_allclose(
        opt["python"], raw["python"], rtol=1e-12, atol=1e-12
    )
