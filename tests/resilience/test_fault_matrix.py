"""The fault matrix: every registered injection site is exercised.

One scenario per site in :data:`repro.resilience.faults.SITES`; the
test is parametrized over the registry, so registering a new site
without adding a scenario here fails the suite.
"""

import shutil

import numpy as np
import pytest

from repro import Component, RectDomain, Stencil, StencilGroup, WeightArray
from repro.backends.jit import CompileError, cache_dir, compile_and_load
from repro.backends import jit
from repro.dmem.comm import CommError, RankFailure, SimComm
from repro.dmem.executor import DistributedKernel
from repro.dmem.transport import ReliableComm
from repro.resilience import InjectedFault, ResilienceWarning, faults
from repro.resilience.faults import SITES, inject

pytestmark = pytest.mark.faults

HAVE_GCC = shutil.which("gcc") is not None

#: Sites whose natural failure path runs the real compiler.
GCC_SITES = {"jit.load", "jit.cache.read", "jit.cache.write"}

LAP = Component("u", WeightArray([[0, 1, 0], [1, -4, 1], [0, 1, 0]]))
INTERIOR = RectDomain((1, 1), (-1, -1))


def _numpy_kernel():
    return Stencil(LAP, "out", INTERIOR).compile(backend="numpy")


def _jit_spawn():
    with inject("jit.spawn", times=1):
        with pytest.raises(CompileError, match="injected fault"):
            compile_and_load("int sf_m1(void){return 0;}\n")


def _jit_load():
    with inject("jit.load", times=1):
        with pytest.raises(OSError, match="dlopen"):
            compile_and_load("int sf_m2(void){return 0;}\n")


def _jit_cache_read():
    src_a = "int sf_m3a(void){return 0;}\n"
    src_b = "int sf_m3b(void){return 0;}\n"
    compile_and_load(src_a)
    # a cached artifact this process has never dlopened (dlopen caches
    # handles per path, so re-loads of a known path cannot fail)
    shutil.copy(
        cache_dir() / f"sf_{jit._tag(src_a)}.so",
        cache_dir() / f"sf_{jit._tag(src_b)}.so",
    )
    with inject("jit.cache.read", times=1):
        with pytest.warns(ResilienceWarning, match="recompiling"):
            compile_and_load(src_b)


def _jit_cache_write():
    with inject("jit.cache.write", times=1):
        with pytest.raises(OSError, match="cache write"):
            compile_and_load("int sf_m4(void){return 0;}\n")


def _backend_specialize():
    kernel = _numpy_kernel()
    with inject("backend.specialize", times=1):
        with pytest.raises(InjectedFault):
            kernel(u=np.ones((6, 6)), out=np.zeros((6, 6)))


def _backend_invoke():
    kernel = _numpy_kernel()
    with inject("backend.invoke", times=1):
        with pytest.raises(InjectedFault):
            kernel(u=np.ones((6, 6)), out=np.zeros((6, 6)))


def _comm_send_drop():
    a, b = SimComm.world(2)
    with inject("comm.send.drop", times=1):
        a.send(np.arange(4.0), dest=1)
    with pytest.raises(CommError, match="no matching message"):
        b.recv(source=0)
    assert a.stats.dropped == 1


def _comm_recv_drop():
    a, b = SimComm.world(2)
    a.send(np.arange(4.0), dest=1)
    with inject("comm.recv.drop", times=1):
        with pytest.raises(CommError, match="no matching message"):
            b.recv(source=0)
    assert b.stats.dropped == 1


def _comm_payload_corrupt():
    a, b = SimComm.world(2)
    data = np.ones(5)
    with inject("comm.payload.corrupt", times=1):
        a.send(data, dest=1)
    got = b.recv(source=0)
    assert not np.array_equal(got, data)
    assert np.array_equal(data, np.ones(5))  # sender's copy untouched
    assert a.stats.corrupted == 1


def _comm_msg_duplicate():
    a, b = ReliableComm.world(2)
    data = np.arange(3.0)
    with inject("comm.msg.duplicate", times=1):
        a.rsend(data, 1)
    assert np.array_equal(b.rrecv(0), data)  # delivered exactly once
    assert b.stats.duplicates == 1


def _comm_msg_reorder():
    a, b = ReliableComm.world(2)
    with inject("comm.msg.reorder", times=1):
        a.rsend(np.zeros(2), 1)  # overtaken on the wire...
        a.rsend(np.ones(2), 1)
    assert np.array_equal(b.rrecv(0), np.zeros(2))  # ...but resequenced
    assert np.array_equal(b.rrecv(0), np.ones(2))
    assert b.stats.reordered == 1


def _comm_rank_crash():
    group = StencilGroup([Stencil(LAP, "u", INTERIOR, name="s")])
    dk = DistributedKernel(group, (12, 12), 2, backend="numpy")
    dk.scatter(u=np.ones((12, 12)))
    with inject("comm.rank.crash", times=1):
        with pytest.raises(RankFailure, match="rank 0 has failed"):
            dk.run()
    assert dk.comms[0].dead_ranks() == {0}
    assert dk.comm_stats.crashes == 1


SCENARIOS = {
    "jit.spawn": _jit_spawn,
    "jit.load": _jit_load,
    "jit.cache.read": _jit_cache_read,
    "jit.cache.write": _jit_cache_write,
    "backend.specialize": _backend_specialize,
    "backend.invoke": _backend_invoke,
    "comm.send.drop": _comm_send_drop,
    "comm.recv.drop": _comm_recv_drop,
    "comm.payload.corrupt": _comm_payload_corrupt,
    "comm.msg.duplicate": _comm_msg_duplicate,
    "comm.msg.reorder": _comm_msg_reorder,
    "comm.rank.crash": _comm_rank_crash,
}


def test_matrix_covers_exactly_the_registry():
    assert set(SCENARIOS) == set(SITES)


@pytest.mark.parametrize("site", sorted(SITES))
def test_site_fires(site, monkeypatch, fresh_jit):
    if site in GCC_SITES:
        if not HAVE_GCC:
            pytest.skip("requires a C toolchain")
        monkeypatch.setenv("SNOWFLAKE_CC", "gcc")
    assert faults.fired(site) == 0
    SCENARIOS[site]()
    assert faults.fired(site) >= 1, f"site {site!r} never injected"
    assert faults.reached(site) >= 1
