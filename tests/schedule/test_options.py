"""ScheduleOptions validation and the one-place knob resolution."""

import pytest

from repro.schedule import (
    POLICIES,
    Schedule,
    ScheduleOptions,
    pop_schedule_spec,
    schedule_for,
)
from tests.schedule._cases import laplacian_pair


class TestScheduleOptions:
    def test_defaults(self):
        o = ScheduleOptions()
        assert o.policy == "greedy"
        assert o.fuse is False
        assert o.multicolor is True
        assert o.tile is None
        assert o.block is None
        assert o.time_tile == 1

    @pytest.mark.parametrize("time_tile", [0, -3, "deep"])
    def test_bad_time_tile_rejected(self, time_tile):
        with pytest.raises(ValueError):
            ScheduleOptions(time_tile=time_tile)

    def test_time_tile_in_describe_and_dict(self):
        o = ScheduleOptions(time_tile=4)
        assert "time_tile=4" in o.describe()
        assert o.to_dict()["time_tile"] == 4
        assert "time_tile" not in ScheduleOptions().describe()

    @pytest.mark.parametrize("policy", POLICIES)
    def test_valid_policies(self, policy):
        assert ScheduleOptions(policy=policy).policy == policy

    def test_bad_policy_rejected(self):
        with pytest.raises(ValueError, match="policy"):
            ScheduleOptions(policy="eager")

    @pytest.mark.parametrize("tile", [0, -4, "wide"])
    def test_bad_tile_rejected(self, tile):
        with pytest.raises(ValueError):
            ScheduleOptions(tile=tile)

    @pytest.mark.parametrize("block", [(0, 4), (32,), "32x4"])
    def test_bad_block_rejected(self, block):
        with pytest.raises(ValueError):
            ScheduleOptions(block=block)

    def test_bools_coerced_and_hashable(self):
        o = ScheduleOptions(fuse=1, multicolor=0)
        assert o.fuse is True and o.multicolor is False
        assert hash(o) == hash(ScheduleOptions(fuse=True, multicolor=False))

    def test_describe_and_to_dict(self):
        o = ScheduleOptions(fuse=True, tile=8)
        assert "fuse=on" in o.describe() and "tile=8" in o.describe()
        assert o.to_dict()["tile"] == 8


KNOBS = {"schedule": "greedy", "tile": None, "multicolor": True,
         "fuse": False}


class TestPopScheduleSpec:
    def test_unknown_knob_names_valid_set(self):
        with pytest.raises(TypeError, match="tile"):
            pop_schedule_spec(
                {"tilesize": 8}, backend="c", knobs=KNOBS
            )

    def test_builds_options_from_loose_knobs(self):
        opts = {"fuse": True, "tile": 4}
        spec = pop_schedule_spec(opts, backend="c", knobs=KNOBS)
        assert spec == ScheduleOptions(fuse=True, tile=4)
        assert opts == {}  # consumed

    def test_policy_string_accepted(self):
        spec = pop_schedule_spec(
            {"schedule": "wavefront"}, backend="c", knobs=KNOBS
        )
        assert spec.policy == "wavefront"

    def test_prebuilt_options_pass_through(self):
        o = ScheduleOptions(fuse=True)
        assert pop_schedule_spec(
            {"schedule": o}, backend="c", knobs=KNOBS
        ) is o

    def test_mixing_prebuilt_with_loose_knobs_rejected(self):
        with pytest.raises(TypeError, match="combine"):
            pop_schedule_spec(
                {"schedule": ScheduleOptions(), "tile": 8},
                backend="c", knobs=KNOBS,
            )

    def test_mixing_prebuilt_schedule_with_loose_knobs_rejected(self):
        group, shapes = laplacian_pair()
        sched = schedule_for(group, shapes)
        assert isinstance(sched, Schedule)
        with pytest.raises(TypeError, match="combine"):
            pop_schedule_spec(
                {"schedule": sched, "fuse": True},
                backend="c", knobs=KNOBS,
            )

    def test_non_string_spec_rejected(self):
        with pytest.raises(TypeError, match="policy"):
            pop_schedule_spec({"schedule": 42}, backend="c", knobs=KNOBS)

    def test_backend_surface_rejects_undeclared_knob(self):
        group, shapes = laplacian_pair()
        with pytest.raises(TypeError, match="tile"):
            group.compile(backend="numpy", shapes=shapes, tile=8)
