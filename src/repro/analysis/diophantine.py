"""Linear Diophantine solvers (public analysis-facing surface).

The implementation lives in :mod:`repro.util.diophantine` purely to keep
the package import graph acyclic (``core.domains`` needs the lattice
arithmetic, and this package's ``__init__`` imports modules that need
``core.domains``).  Conceptually the machinery belongs to the analysis
layer, so it is re-exported here under its paper name.
"""

from ..util.diophantine import (  # noqa: F401
    BoxedLinearSystem,
    SolutionLine,
    count_lattice_points,
    extended_gcd,
    first_lattice_point,
    lattice_range_intersect,
    lattice_ranges_intersect_nonempty,
    rational_line_box_hit,
    solve_linear_2var,
    solve_linear_nvar,
)

__all__ = [
    "BoxedLinearSystem",
    "SolutionLine",
    "count_lattice_points",
    "extended_gcd",
    "first_lattice_point",
    "lattice_range_intersect",
    "lattice_ranges_intersect_nonempty",
    "rational_line_box_hit",
    "solve_linear_2var",
    "solve_linear_nvar",
]
