"""The single scheduling-option vocabulary shared by every backend.

Before the schedule IR existed, each micro-compiler grew its own kwargs
(``tile``/``multicolor``/``fuse`` on the C targets, ``schedule`` strings
on OpenMP and the GPU simulators, ``block`` on CUDA) and validated them
independently.  :class:`ScheduleOptions` collapses those into one
declared, validated record; a backend only states *which* of the knobs
it honours (its ``_KNOBS`` mapping) and the shared resolution helper in
:mod:`repro.schedule.lower` does the rest.
"""

from __future__ import annotations

from dataclasses import dataclass, fields

__all__ = ["POLICIES", "ScheduleOptions"]

#: barrier-placement policies understood by :func:`repro.analysis.dag.plan`
POLICIES = ("greedy", "wavefront", "serial")


@dataclass(frozen=True)
class ScheduleOptions:
    """Every decision :func:`~repro.schedule.build_schedule` can make.

    ``policy``
        Barrier placement: ``greedy`` (the paper's in-order policy),
        ``wavefront`` (ASAP reordering), or ``serial``.
    ``fuse``
        Fuse runs of independent same-domain stencils *within a phase*
        into one loop nest / kernel.
    ``multicolor``
        Recognize checkerboard domain unions and emit one
        parity-corrected dense sweep instead of 2^(d-1) strided sweeps.
    ``tile``
        Cache-block / task-granularity size on the outermost free loop
        (CPU targets only; ``None`` disables tiling).
    ``block``
        2-D thread-block shape for the CUDA target (``None`` keeps the
        backend default).
    ``time_tile``
        Temporal blocking: fuse this many successive applications of
        the whole group into one kernel invocation (one wavefront /
        fused time tile).  ``1`` (the default) is a single sweep;
        ``k > 1`` is only legal when every step's cross-application
        footprint is a bounded halo and no step needs a gather
        snapshot — :func:`~repro.schedule.build_schedule` refuses
        otherwise, with evidence.
    ``unroll``
        Innermost-loop unroll factor hint for the C-family targets
        (emitted as ``#pragma GCC unroll N``); a pure performance hint
        — the generated arithmetic is unchanged, so results stay
        bitwise identical.  ``None`` (the default) emits no pragma.
    """

    policy: str = "greedy"
    fuse: bool = False
    multicolor: bool = True
    tile: int | None = None
    block: tuple[int, int] | None = None
    time_tile: int = 1
    unroll: int | None = None

    def __post_init__(self) -> None:
        if self.policy not in POLICIES:
            raise ValueError(
                f"unknown scheduling policy {self.policy!r}; "
                f"choose from {POLICIES}"
            )
        object.__setattr__(self, "fuse", bool(self.fuse))
        object.__setattr__(self, "multicolor", bool(self.multicolor))
        if self.tile is not None:
            t = int(self.tile)
            if t < 1:
                raise ValueError(f"tile must be a positive int, got {self.tile!r}")
            object.__setattr__(self, "tile", t)
        if self.block is not None:
            b = tuple(int(x) for x in self.block)
            if len(b) != 2 or any(x < 1 for x in b):
                raise ValueError(
                    f"block must be a pair of positive ints, got {self.block!r}"
                )
            object.__setattr__(self, "block", b)
        k = int(self.time_tile)
        if k < 1:
            raise ValueError(
                f"time_tile must be a positive int, got {self.time_tile!r}"
            )
        object.__setattr__(self, "time_tile", k)
        if self.unroll is not None:
            u = int(self.unroll)
            if u < 1:
                raise ValueError(
                    f"unroll must be a positive int, got {self.unroll!r}"
                )
            object.__setattr__(self, "unroll", u)

    def to_dict(self) -> dict:
        return {
            "policy": self.policy,
            "fuse": self.fuse,
            "multicolor": self.multicolor,
            "tile": self.tile,
            "block": list(self.block) if self.block is not None else None,
            "time_tile": self.time_tile,
            "unroll": self.unroll,
        }

    def describe(self) -> str:
        parts = [f"policy={self.policy}"]
        for f in ("fuse", "multicolor"):
            parts.append(f"{f}={'on' if getattr(self, f) else 'off'}")
        if self.tile is not None:
            parts.append(f"tile={self.tile}")
        if self.block is not None:
            parts.append(f"block={self.block[0]}x{self.block[1]}")
        if self.time_tile > 1:
            parts.append(f"time_tile={self.time_tile}")
        if self.unroll is not None:
            parts.append(f"unroll={self.unroll}")
        return " ".join(parts)


#: the knob names a backend may declare (sanity check for ``_KNOBS``)
KNOB_NAMES = frozenset(f.name for f in fields(ScheduleOptions)) | {"schedule"}
