"""Higher-order and compact operators (paper SectionII: "higher-order
operators (larger stencils)" and Fig.3b's multi-color tilings).

Two families beyond the 2nd-order star:

* the **4th-order star** Laplacian — offsets reach ±2, so it sweeps a
  two-deep interior (or needs a two-cell ghost zone);
* the **compact Mehrstellen** Laplacian (9-point in 2-D, 27-point in
  3-D) — only ±1 offsets but *diagonal* reads, which makes red-black
  coloring insufficient for in-place smoothing: a red point reads red
  diagonal neighbours.  The correct coloring is the 2^d-color tiling
  (Fig.3b), and :func:`multicolor_smooth_group` builds the smoother
  that the Diophantine analysis certifies hazard-free.
"""

from __future__ import annotations

import itertools

from ..analysis.colors import k_coloring
from ..core.components import Component
from ..core.domains import RectDomain
from ..core.expr import Constant, Expr
from ..core.stencil import Stencil, StencilGroup
from ..core.weights import SparseArray
from .operators import boundary_stencils

__all__ = [
    "cc_laplacian_4th",
    "compact_laplacian",
    "compact_diagonal",
    "multicolor_smooth_group",
]


def _unit(ndim: int, d: int, sign: int) -> tuple[int, ...]:
    off = [0] * ndim
    off[d] = sign
    return tuple(off)


def cc_laplacian_4th(ndim: int, h: float, grid: str = "x") -> Expr:
    """4th-order star: per dim ``(-1, 16, -30, 16, -1) / (12 h²)``.

    Positive-definite sign convention (matches :func:`cc_laplacian`).
    Radius 2: apply over ``RectDomain.interior(ndim, ghost=2)`` or give
    the grids a two-cell halo.
    """
    c = 1.0 / (12.0 * h * h)
    entries: dict[tuple[int, ...], float] = {
        (0,) * ndim: 30.0 * ndim * c
    }
    for d in range(ndim):
        for sign in (-1, 1):
            entries[_unit(ndim, d, sign)] = -16.0 * c
            entries[_unit(ndim, d, 2 * sign)] = 1.0 * c
    return Component(grid, SparseArray(entries))


def compact_laplacian(ndim: int, h: float, grid: str = "x") -> Expr:
    """Compact (Mehrstellen-style) Laplacian touching the full ±1 box.

    2-D: the classic 9-point operator ``(8 center - 4/6 edges - 1/6
    corners) * ...`` — we use the standard weights

        center 20/6, edge -4/6, corner -1/6   (all / h²)

    3-D: its 27-point tensor analogue with weights by neighbour class
    (center 88/26·scale is one convention; we use the common
    face -6/26·k, edge -3/26·k, corner -2/26·k, center +1 normalization
    scaled so the operator reduces to -∇² + O(h⁴) on smooth fields).
    Positive definite, zero row sum away from boundaries.
    """
    if ndim == 2:
        w = {"center": 20.0 / 6.0, 1: -4.0 / 6.0, 2: -1.0 / 6.0}
    elif ndim == 3:
        w = {
            "center": 64.0 / 15.0,
            1: -7.0 / 15.0,
            2: -1.0 / 10.0,
            3: -1.0 / 30.0,
        }
    else:
        raise ValueError("compact operators are defined for 2-D and 3-D")
    inv_h2 = 1.0 / (h * h)
    entries: dict[tuple[int, ...], float] = {}
    for off in itertools.product((-1, 0, 1), repeat=ndim):
        nz = sum(1 for o in off if o != 0)
        if nz == 0:
            entries[off] = w["center"] * inv_h2
        else:
            entries[off] = w[nz] * inv_h2
    return Component(grid, SparseArray(entries))


def compact_diagonal(ndim: int, h: float) -> float:
    """Diagonal entry of :func:`compact_laplacian`."""
    if ndim == 2:
        return (20.0 / 6.0) / (h * h)
    if ndim == 3:
        return (64.0 / 15.0) / (h * h)
    raise ValueError("compact operators are defined for 2-D and 3-D")


def multicolor_smooth_group(
    ndim: int,
    Ax: Expr,
    *,
    grid: str = "x",
    rhs: str = "rhs",
    lam: "float | str",
    k_per_dim: int = 2,
    with_boundaries: bool = True,
) -> StencilGroup:
    """Gauss-Seidel with a ``k_per_dim**ndim``-coloring (Fig.3b).

    Each color is a stride-``k_per_dim`` lattice; a point's ±1 box never
    contains another point of its own color when ``k_per_dim >= 2`` and
    the operator has radius 1 incl. diagonals — exactly the situation
    where red-black fails for compact operators.
    """
    center = (0,) * ndim
    x = Component(grid, SparseArray({center: 1.0}))
    b = Component(rhs, SparseArray({center: 1.0}))
    lam_e: Expr = (
        Component(lam, SparseArray({center: 1.0}))
        if isinstance(lam, str)
        else Constant(float(lam))
    )
    body = x + lam_e * (b - Ax)
    stencils: list[Stencil] = []
    for ci, color in enumerate(k_coloring(ndim, k_per_dim)):
        if with_boundaries:
            stencils.extend(boundary_stencils(ndim, grid))
        stencils.append(
            Stencil(body, grid, color, name=f"mc_color_{ci}")
        )
    return StencilGroup(stencils, name=f"mc{k_per_dim ** ndim}_smooth")
