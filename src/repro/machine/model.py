"""Analytic execution model for the paper's (absent) hardware platforms.

DESIGN.md substitution: the i7-4765T and K20c testbeds are modeled, not
owned.  A kernel's predicted time is

    t = launches * launch_overhead + traffic / effective_bandwidth(ws) / eff

where ``traffic`` is the compulsory byte count (SectionV-B), the
effective bandwidth switches to cache bandwidth when the working set
fits in the LLC (reproducing the 32³ above-roofline point of Fig.8),
launch overhead makes small GPU grids flatten (Fig.8's GPU tail), and
``eff`` is an implementation-efficiency factor expressing how close a
given code generator gets to the bandwidth bound.

The efficiency constants are calibrated from the paper's *reported
relative* performance (Snowflake/OpenMP ≈ hand-optimized ≈ roofline on
CPU; Snowflake/OpenCL ≈ ½ of HPGMG-CUDA on GPU) — they are inputs taken
from the paper, and EXPERIMENTS.md flags every number derived through
this model as model-based rather than measured.
"""

from __future__ import annotations

from dataclasses import dataclass

from .specs import MachineSpec

__all__ = ["Implementation", "IMPLEMENTATIONS", "predict_sweep_time", "KernelWork"]


@dataclass(frozen=True)
class Implementation:
    """A code generator / hand-written implementation quality profile."""

    name: str
    #: fraction of the bandwidth bound this implementation sustains on
    #: large (DRAM-resident) working sets
    efficiency: float
    #: extra per-kernel launches it issues relative to the ideal
    #: (e.g. unfused boundary kernels)
    launch_multiplier: float = 1.0


#: Calibrated from the paper's reported ratios (see module docstring).
IMPLEMENTATIONS = {
    "snowflake-openmp": Implementation("snowflake-openmp", efficiency=0.90),
    "snowflake-opencl": Implementation(
        "snowflake-opencl", efficiency=0.50, launch_multiplier=1.5
    ),
    "hpgmg-openmp": Implementation("hpgmg-openmp", efficiency=0.95),
    "hpgmg-cuda": Implementation("hpgmg-cuda", efficiency=0.95),
    "roofline": Implementation("roofline", efficiency=1.0, launch_multiplier=0.0),
}


@dataclass(frozen=True)
class KernelWork:
    """One sweep's worth of work handed to the model."""

    points: int
    bytes_per_point: float
    #: bytes of all arrays touched — decides cache residency
    working_set: float
    #: kernel launches the sweep needs (boundary stencils, colors, ...)
    launches: int = 1


def predict_sweep_time(
    spec: MachineSpec, impl: Implementation, work: KernelWork
) -> float:
    """Predicted wall time of one sweep on ``spec`` with ``impl``."""
    bw = spec.effective_bw(work.working_set) * impl.efficiency
    traffic = work.points * work.bytes_per_point
    overhead = work.launches * impl.launch_multiplier * spec.launch_overhead
    return overhead + traffic / bw
