"""Every example script runs to completion (deliverable b)."""

import pathlib
import subprocess
import sys

import pytest

EXAMPLES = pathlib.Path(__file__).resolve().parents[2] / "examples"


def run_example(name, *args, timeout=600):
    proc = subprocess.run(
        [sys.executable, str(EXAMPLES / name), *args],
        capture_output=True,
        text=True,
        timeout=timeout,
    )
    assert proc.returncode == 0, f"{name} failed:\n{proc.stderr[-3000:]}"
    return proc.stdout


def test_quickstart():
    out = run_example("quickstart.py")
    assert "all five backends agree" in out
    assert "generated C" in out


def test_redblack_poisson():
    out = run_example("redblack_poisson.py")
    assert "parallel-safe? True" in out
    assert "4 phases" in out


def test_custom_backend():
    out = run_example("custom_backend.py")
    assert "OK" in out


def test_amr_domains():
    out = run_example("amr_domains_and_analysis.py")
    assert "dead_scratch" in out
    assert "expected" in out


def test_distributed_smoother():
    out = run_example("distributed_smoother.py")
    assert "surface, not volume" in out
    assert "deadlock" in out


def test_profile_and_tune():
    out = run_example("profile_and_tune.py")
    assert "hottest first" in out
    assert "dead stencil" in out


def test_wave_2d():
    out = run_example("wave_2d.py")
    assert "stable propagation" in out


def test_multigrid_3d_small():
    out = run_example("multigrid_3d.py", "8")
    assert "max error vs manufactured solution" in out
    assert "opencl-sim" in out
