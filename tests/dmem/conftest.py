"""Isolation for the dmem suite's fault-injection tests.

The transport/recovery tests arm fault sites; make sure no armed fault
or guard config leaks between tests (or in from the environment).
"""

import pytest

from repro.resilience import faults


@pytest.fixture(autouse=True)
def _clean_faults(monkeypatch):
    monkeypatch.delenv("SNOWFLAKE_FAULTS", raising=False)
    monkeypatch.delenv("SNOWFLAKE_GUARDS", raising=False)
    faults.reset()
    yield
    faults.reset()
