"""Fallback chains, retry/backoff, degradation reporting."""

import warnings

import numpy as np
import pytest

from repro import Component, ExecutionPolicy, RectDomain, Stencil, WeightArray
from repro.resilience import BackendChainError, DegradedExecution, InjectedFault
from repro.resilience.faults import arm, inject

pytestmark = pytest.mark.faults

LAP = Component("u", WeightArray([[0, 1, 0], [1, -4, 1], [0, 1, 0]]))
INTERIOR = RectDomain((1, 1), (-1, -1))


def make_stencil():
    return Stencil(LAP, "out", INTERIOR)


def reference(u):
    out = np.zeros_like(u)
    make_stencil().compile(backend="python")(u=u, out=out)
    return out


@pytest.fixture
def broken_cc(monkeypatch):
    monkeypatch.setenv("SNOWFLAKE_CC", "/nonexistent/snowflake-cc")


class TestFallbackChain:
    def test_degrades_to_numpy_matching_reference(self, broken_cc, rng):
        u = rng.random((12, 12))
        out = np.zeros_like(u)
        kernel = make_stencil().compile(
            backend="openmp", fallback=("c", "numpy")
        )
        with warnings.catch_warnings(record=True) as w:
            warnings.simplefilter("always")
            kernel(u=u, out=out)
        np.testing.assert_allclose(out, reference(u))
        assert kernel.serving_backend == "numpy"
        assert kernel.degraded
        assert [b for b, _ in kernel.attempts] == ["openmp", "c"]
        degraded = [
            x for x in w if isinstance(x.message, DegradedExecution)
        ]
        assert len(degraded) == 1, "exactly one degradation warning"
        assert "openmp" in str(degraded[0].message)

    def test_eager_shapes_degrade_at_compile_time(self, broken_cc, rng):
        shapes = {"u": (10, 10), "out": (10, 10)}
        with warnings.catch_warnings(record=True) as w:
            warnings.simplefilter("always")
            kernel = make_stencil().compile(
                backend="c", shapes=shapes, fallback=("numpy",)
            )
        assert kernel.serving_backend == "numpy"
        assert any(isinstance(x.message, DegradedExecution) for x in w)
        u = rng.random((10, 10))
        out = np.zeros_like(u)
        kernel(u=u, out=out)
        np.testing.assert_allclose(out, reference(u))

    def test_healthy_primary_never_warns(self, rng):
        u = rng.random((8, 8))
        out = np.zeros_like(u)
        kernel = make_stencil().compile(
            backend="numpy", fallback=("python",)
        )
        with warnings.catch_warnings():
            warnings.simplefilter("error", DegradedExecution)
            kernel(u=u, out=out)
        assert kernel.serving_backend == "numpy"
        assert not kernel.degraded
        assert kernel.attempts == []

    def test_chain_is_deduplicated(self):
        kernel = make_stencil().compile(
            backend="numpy", fallback=("numpy", "python", "numpy")
        )
        assert kernel.chain == ("numpy", "python")

    def test_chain_exhaustion_carries_attempt_log(self, rng):
        u = rng.random((8, 8))
        kernel = make_stencil().compile(
            backend="numpy", fallback=("python",)
        )
        arm("backend.invoke", times=None)  # every backend's invoke dies
        with pytest.raises(BackendChainError) as ei:
            kernel(u=u, out=np.zeros_like(u))
        assert [b for b, _ in ei.value.attempts] == ["numpy", "python"]
        assert "numpy" in str(ei.value)

    def test_user_errors_propagate_not_degrade(self, rng):
        kernel = make_stencil().compile(
            backend="numpy", fallback=("python",)
        )
        with pytest.raises(TypeError, match="unexpected argument"):
            kernel(u=rng.random((8, 8)), wrong_name=np.zeros((8, 8)))
        assert kernel.attempts == []

    def test_backend_specific_options_dropped_on_family_switch(
        self, broken_cc, rng
    ):
        # `tile` means something to openmp, nothing to numpy: the chain
        # must cross anyway rather than die on a tuning knob.
        u = rng.random((10, 10))
        out = np.zeros_like(u)
        kernel = make_stencil().compile(
            backend="openmp", fallback=("numpy",), tile=4
        )
        with warnings.catch_warnings():
            warnings.simplefilter("ignore", DegradedExecution)
            kernel(u=u, out=out)
        assert kernel.serving_backend == "numpy"
        np.testing.assert_allclose(out, reference(u))


class TestRetries:
    def test_transient_specialize_failure_retried_in_place(self, rng):
        sleeps = []
        policy = ExecutionPolicy(
            fallback=("python",), max_retries=2, backoff=0.01,
            sleep=sleeps.append,
        )
        kernel = make_stencil().compile(backend="numpy", policy=policy)
        arm("backend.specialize", times=1, exc=OSError)
        u = rng.random((8, 8))
        out = np.zeros_like(u)
        with warnings.catch_warnings():
            warnings.simplefilter("error", DegradedExecution)
            kernel(u=u, out=out)
        assert kernel.serving_backend == "numpy"  # no degradation
        assert sleeps == [0.01]  # one backoff sleep, then success
        np.testing.assert_allclose(out, reference(u))

    def test_retry_budget_bounded_then_degrades(self, rng):
        sleeps = []
        policy = ExecutionPolicy(
            fallback=("python",), max_retries=2, backoff=0.01,
            sleep=sleeps.append,
        )
        kernel = make_stencil().compile(backend="numpy", policy=policy)
        # exactly numpy's whole budget (1 try + 2 retries); python then
        # specializes cleanly
        arm("backend.specialize", times=3, exc=OSError)
        u = rng.random((8, 8))
        out = np.zeros_like(u)
        with warnings.catch_warnings(record=True) as w:
            warnings.simplefilter("always")
            kernel(u=u, out=out)
        # 2 retries on numpy (exponential backoff), then the fallback
        assert sleeps == [0.01, 0.02]
        assert kernel.serving_backend == "python"
        assert any(isinstance(x.message, DegradedExecution) for x in w)
        np.testing.assert_allclose(out, reference(u))

    def test_missing_compiler_skips_retry_budget(self, broken_cc, rng):
        sleeps = []
        policy = ExecutionPolicy(
            fallback=("numpy",), max_retries=5, backoff=0.01,
            sleep=sleeps.append,
        )
        kernel = make_stencil().compile(backend="c", policy=policy)
        u = rng.random((8, 8))
        with warnings.catch_warnings():
            warnings.simplefilter("ignore", DegradedExecution)
            kernel(u=u, out=np.zeros_like(u))
        assert sleeps == []  # FileNotFoundError is not transient
        assert kernel.serving_backend == "numpy"


class TestCompileTimeout:
    def test_hung_compiler_hits_hard_timeout_then_degrades(
        self, tmp_path, monkeypatch, rng
    ):
        hung = tmp_path / "hung-cc"
        hung.write_text("#!/bin/sh\nsleep 30\n")
        hung.chmod(0o755)
        monkeypatch.setenv("SNOWFLAKE_CC", str(hung))
        sleeps = []
        policy = ExecutionPolicy(
            fallback=("numpy",), max_retries=1, backoff=0.01,
            compile_timeout=0.2, sleep=sleeps.append,
        )
        u = rng.random((8, 8))
        out = np.zeros_like(u)
        kernel = make_stencil().compile(backend="c", policy=policy)
        with warnings.catch_warnings(record=True) as w:
            warnings.simplefilter("always")
            kernel(u=u, out=out)
        assert kernel.serving_backend == "numpy"
        assert sleeps == [0.01]  # timeout is transient: one retry
        assert any("CompileTimeout" in e for _, e in kernel.attempts)
        assert any(isinstance(x.message, DegradedExecution) for x in w)
        np.testing.assert_allclose(out, reference(u))


class TestInjectedJitFaults:
    def test_spawn_fault_degrades(self, rng, fresh_jit):
        u = rng.random((8, 8))
        out = np.zeros_like(u)
        kernel = make_stencil().compile(backend="c", fallback=("numpy",))
        with inject("jit.spawn", times=None):
            with warnings.catch_warnings():
                warnings.simplefilter("ignore", DegradedExecution)
                kernel(u=u, out=out)
        assert kernel.serving_backend == "numpy"
        np.testing.assert_allclose(out, reference(u))

    def test_plain_compile_unaffected_by_policy_machinery(self, rng):
        # no fallback/policy argument -> the classic direct path, which
        # surfaces injected faults raw
        kernel = make_stencil().compile(backend="numpy")
        with inject("backend.invoke"):
            with pytest.raises(InjectedFault):
                kernel(u=rng.random((8, 8)), out=np.zeros((8, 8)))
