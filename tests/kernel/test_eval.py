"""The IR interpreters: per-point, scalar prelude, vectorized per-rect."""

import numpy as np
import pytest

from repro.kernel.eval import (
    eval_expr,
    eval_point,
    eval_rect,
    eval_scalar_lets,
)
from repro.kernel.ir import (
    KAdd,
    KConst,
    KDiv,
    KFma,
    KLet,
    KLoad,
    KMul,
    KParam,
    KRef,
    KernelBody,
)


def _load(grid="u", offset=(0, 0)):
    return KLoad(grid, offset, (1, 1))


def test_eval_expr_arithmetic():
    env = {}
    params = {"w": 2.0}
    load = lambda ld: 3.0  # noqa: E731
    e = KAdd(KMul(KConst(2.0), _load()), KDiv(KParam("w"), KConst(4.0)))
    assert eval_expr(e, load, params, env) == 2.0 * 3.0 + 2.0 / 4.0


def test_eval_fma_is_two_rounded_ops():
    # KFma must evaluate as round(round(a*b) + c), never a fused op
    a, b, c = 1e16 + 1.0, 1e16 - 1.0, -1e32
    e = KFma(KConst(a), KConst(b), KConst(c))
    got = eval_expr(e, lambda ld: 0.0, {}, {})
    assert got == a * b + c  # python's a*b+c is two rounded ops


def test_eval_scalar_lets_and_point():
    body = KernelBody(
        2,
        [
            KLet("s0", KMul(KParam("w"), KConst(0.5)), 0),
            KLet("t0", KMul(KRef("s0"), _load()), 2),
        ],
        KAdd(KRef("t0"), KConst(1.0)),
    )
    params = {"w": 4.0}
    env = eval_scalar_lets(body, params)
    assert env == {"s0": 2.0}
    got = eval_point(body, lambda ld: 10.0, params, env)
    assert got == 2.0 * 10.0 + 1.0
    # scalar_env is optional — eval_point recomputes when omitted
    assert eval_point(body, lambda ld: 10.0, params) == got


def test_eval_rect_vectorizes_like_eval_point():
    rng = np.random.default_rng(0)
    u = rng.random((4, 4))
    body = KernelBody(
        2,
        [KLet("t0", KMul(KConst(2.0), _load()), 2)],
        KAdd(KRef("t0"), KParam("w")),
    )
    params = {"w": 0.25}
    got = eval_rect(body, lambda ld: u, params, u.shape, u.dtype)
    np.testing.assert_array_equal(got, 2.0 * u + 0.25)


def test_eval_rect_always_returns_fresh_array():
    """A body that folds to a bare load must not alias the source —
    the caller assigns the result onto a view of the same grid."""
    u = np.arange(9.0).reshape(3, 3)
    body = KernelBody(2, [], _load())
    got = eval_rect(body, lambda ld: u, {}, u.shape, u.dtype)
    assert got.base is not u and got is not u
    got[0, 0] = -1.0
    assert u[0, 0] == 0.0


def test_eval_rect_broadcasts_scalar_result():
    body = KernelBody(2, [], KConst(7.0))
    got = eval_rect(body, lambda ld: None, {}, (2, 3), np.float64)
    assert got.shape == (2, 3)
    np.testing.assert_array_equal(got, np.full((2, 3), 7.0))


def test_eval_point_missing_param_raises():
    body = KernelBody(2, [], KParam("missing"))
    with pytest.raises(KeyError):
        eval_point(body, lambda ld: 0.0, {})
