"""Distributed stencil execution over the simulated fabric.

:class:`DistributedKernel` takes any :class:`StencilGroup` whose grids
share one shape (smoothers, residuals, boundary conditions — the bulk
of a solver's work) and runs it SPMD-style across ``nranks``:

1. grids are block-decomposed along dim 0 with a halo inferred from the
   group's flat-form read offsets;
2. each stencil's iteration domain is *exactly* partitioned into
   per-rank sub-domains (lattice intersection with the owned slab, the
   same arithmetic the dependence analysis uses), so colored and pinned
   domains decompose correctly, not just dense interiors;
3. before every stencil that reads beyond owned rows, neighbouring
   ranks swap halo rows — by default through the exactly-once
   :class:`~repro.dmem.transport.ReliableComm` layer, which sequences,
   CRC-verifies, dedups, reorders, and retransmits over the lossy
   :class:`~repro.dmem.comm.SimComm` wire (``transport="raw"`` keeps
   the legacy unguarded exchange for experiments on the bare fabric);
4. each rank executes its sub-stencil through any shared-memory
   micro-compiler (``c`` by default) — the distributed layer composes
   with, rather than replaces, the single-node backends.

Failure model: the ``comm.rank.crash`` fault site kills a rank
mid-sweep; surviving neighbours detect it as a typed
:class:`~repro.dmem.comm.RankFailure` at the next exchange (or the
end-of-sweep liveness audit).  Passing
``run(times, recovery=RecoveryPolicy(...))`` arms checkpoint/restart
(:mod:`repro.dmem.recovery`): the sweep replays from the last verified
snapshot and the final answer is bitwise-identical to a fault-free run.

Restrictions (validated eagerly): identity output maps, unit read
scale along dim 0, one common grid shape.  Inter-grid transfer
operators (restriction/interpolation) stay node-local in this version.
"""

from __future__ import annotations

from typing import Sequence

import numpy as np

from .. import telemetry
from ..core.domains import RectDomain, ResolvedRect
from ..core.stencil import Stencil, StencilGroup
from ..core.validate import check_group
from ..resilience.faults import fault_point
from ..resilience.guards import Guards, halo_crc
from .comm import RankFailure, SimComm
from .decompose import BlockDecomposition
from .recovery import RecoveryManager, RecoveryPolicy
from .transport import ReliableComm

__all__ = ["DistributedKernel"]

_TAG_UP = 101    # data flowing to the lower-ranked neighbour
_TAG_DOWN = 102  # data flowing to the higher-ranked neighbour
_TAG_UP_CRC = 111    # checksum companions of the halo payloads,
_TAG_DOWN_CRC = 112  # sent only when the halo_checksum guard is on


def _rect_slab_restriction(
    rect: ResolvedRect, own_lo: int, own_hi: int, base: int
) -> RectDomain | None:
    """Intersect a resolved global box with one rank's owned dim-0 rows
    and translate to local coordinates; ``None`` when empty."""
    lo, st, ct = rect.lows[0], rect.strides[0], rect.counts[0]
    if st == 0:
        if not (own_lo <= lo < own_hi):
            return None
        k0 = k1 = 0
    else:
        k0 = max(0, -((lo - own_lo) // st) if lo < own_lo else 0)
        # first k with lo + st*k >= own_lo
        k0 = max(0, (own_lo - lo + st - 1) // st)
        k1 = min(ct - 1, (own_hi - 1 - lo) // st)
        if k0 > k1:
            return None
    first = lo + st * k0 - base
    last = lo + st * k1 - base
    starts = [first]
    ends = [last + 1]
    strides = [st]
    for d in range(1, rect.ndim):
        dlo, dst, dct = rect.lows[d], rect.strides[d], rect.counts[d]
        dhi = dlo + dst * (dct - 1)
        starts.append(dlo)
        ends.append(dhi + 1)
        strides.append(dst)
    return RectDomain(tuple(starts), tuple(ends), tuple(strides))


class DistributedKernel:
    """SPMD executor for a stencil group on a simulated rank world."""

    def __init__(
        self,
        group: StencilGroup,
        global_shape: Sequence[int],
        nranks: int,
        *,
        backend: str = "c",
        dtype=np.float64,
        fallback: Sequence[str] | None = None,
        guards: Guards | None = None,
        transport: str = "reliable",
        transport_retries: int = 4,
        **backend_options,
    ) -> None:
        if transport not in ("reliable", "raw"):
            raise ValueError(
                f"transport must be 'reliable' or 'raw', got {transport!r}"
            )
        self.group = group
        self.global_shape = tuple(int(x) for x in global_shape)
        self.dtype = np.dtype(dtype)
        self.backend = backend
        self.fallback = tuple(fallback) if fallback else None
        self.guards = guards if guards is not None else Guards.from_env()
        self.transport_mode = transport
        self.transport_retries = int(transport_retries)
        self.backend_options = dict(backend_options)

        self._validate_decomposable()
        shapes = {g: self.global_shape for g in group.grids()}
        check_group(group, shapes)

        #: per-stencil halo width along dim 0 for each grid it reads
        self.read_halos: list[dict[str, int]] = []
        halo = 0
        for st in group:
            per_grid: dict[str, int] = {}
            for read in st.flat.reads():
                w = abs(read.offset[0])
                if w:
                    per_grid[read.grid] = max(per_grid.get(read.grid, 0), w)
                    halo = max(halo, w)
            self.read_halos.append(per_grid)
        self.halo = halo

        self.decomp = BlockDecomposition(
            self.global_shape[0], nranks, halo
        )
        for s in self.decomp.slabs:
            if s.own_hi - s.own_lo < halo:
                raise ValueError(
                    f"rank {s.rank} owns {s.own_hi - s.own_lo} rows, fewer "
                    f"than the halo width {halo}; use fewer ranks"
                )
        self.comms = SimComm.world(nranks)
        self.transport = ReliableComm.attach(
            self.comms, guards=self.guards,
            max_retries=self.transport_retries,
        )

        # Per-rank, per-stencil sub-stencils + compiled kernels.
        self._kernels: list[list[tuple[Stencil, object] | None]] = []
        for s in self.decomp.slabs:
            local_shape = self.decomp.local_shape(s.rank, self.global_shape)
            row: list[tuple[Stencil, object] | None] = []
            for st in group:
                rects = [
                    r
                    for r in st.domain.resolve(self.global_shape)
                    if not r.is_empty()
                ]
                local_doms = [
                    d
                    for d in (
                        _rect_slab_restriction(r, s.own_lo, s.own_hi, s.base)
                        for r in rects
                    )
                    if d is not None
                ]
                if not local_doms:
                    row.append(None)
                    continue
                dom = local_doms[0]
                for extra in local_doms[1:]:
                    dom = dom + extra
                local = Stencil(
                    st.body, st.output, dom,
                    output_map=st.output_map, name=f"{st.name}@r{s.rank}",
                )
                kernel = local.compile(
                    backend=self.backend,
                    shapes={g: local_shape for g in local.grids()},
                    dtype=self.dtype,
                    fallback=self.fallback,
                    **self.backend_options,
                )
                row.append((local, kernel))
            self._kernels.append(row)

    # -- validation ---------------------------------------------------------------

    def _validate_decomposable(self) -> None:
        for st in self.group:
            if not st.output_map.is_identity():
                raise ValueError(
                    f"{st.name}: scaled output maps are node-local in the "
                    "distributed backend"
                )
            for read in st.flat.reads():
                if read.scale[0] != 1:
                    raise ValueError(
                        f"{st.name}: dim-0 read scale {read.scale[0]} != 1 "
                        "cannot be block-decomposed along dim 0"
                    )

    # -- halo exchange ---------------------------------------------------------------

    def _exchange(self, locals_: list[dict[str, np.ndarray]], grid: str, width: int) -> None:
        """Swap ``width`` boundary rows of ``grid`` between neighbours.

        The default (``transport="reliable"``) path sends every payload
        as a sequenced, CRC-fingerprinted envelope: injected drops,
        duplicates, reordering, and corruption are all healed before the
        block lands in the halo, and a dead neighbour surfaces as a
        typed :class:`RankFailure`.  The ``"raw"`` path is the legacy
        bare-wire exchange where only the ``halo_checksum`` guard's
        explicit CRC companion messages stand between corruption and a
        wrong answer.
        """
        if self.transport_mode == "raw":
            return self._exchange_raw(locals_, grid, width)
        size = self.decomp.size
        alive = self.comms[0].alive
        # enqueue all sends first (lock-step driver: no ordering hazards)
        for s in self.decomp.slabs:
            if not alive(s.rank):
                continue  # a dead rank sends nothing; neighbours notice
            telemetry.tracing.instant(
                "halo.send", cat="dmem", lane=f"rank {s.rank}",
                grid=grid, width=width,
            )
            arr = locals_[s.rank][grid]
            rc = self.transport[s.rank]
            if s.rank > 0:
                lo = s.local_own_lo
                rc.rsend(arr[lo : lo + width], s.rank - 1, _TAG_UP)
            if s.rank < size - 1:
                hi = s.local_own_hi
                rc.rsend(arr[hi - width : hi], s.rank + 1, _TAG_DOWN)
        for s in self.decomp.slabs:
            if not alive(s.rank):
                continue
            arr = locals_[s.rank][grid]
            rc = self.transport[s.rank]
            if s.rank < size - 1:
                block = rc.rrecv(s.rank + 1, _TAG_UP)
                hi = s.local_own_hi
                arr[hi : hi + width] = block
            if s.rank > 0:
                block = rc.rrecv(s.rank - 1, _TAG_DOWN)
                lo = s.local_own_lo
                arr[lo - width : lo] = block

    def _exchange_raw(
        self, locals_: list[dict[str, np.ndarray]], grid: str, width: int
    ) -> None:
        """Legacy bare-wire exchange (``transport="raw"``): payloads ride
        :class:`SimComm` directly, with the ``halo_checksum`` guard's
        CRC travelling as a companion message when enabled."""
        size = self.decomp.size
        checked = self.guards.halo_checksum != "off"
        for s in self.decomp.slabs:
            telemetry.tracing.instant(
                "halo.send", cat="dmem", lane=f"rank {s.rank}",
                grid=grid, width=width,
            )
            arr = locals_[s.rank][grid]
            if s.rank > 0:
                lo = s.local_own_lo
                block = arr[lo : lo + width]
                self.comms[s.rank].send(block, s.rank - 1, _TAG_UP)
                if checked:
                    self.comms[s.rank].send(
                        np.array([halo_crc(block)], dtype=np.int64),
                        s.rank - 1, _TAG_UP_CRC,
                    )
            if s.rank < size - 1:
                hi = s.local_own_hi
                block = arr[hi - width : hi]
                self.comms[s.rank].send(block, s.rank + 1, _TAG_DOWN)
                if checked:
                    self.comms[s.rank].send(
                        np.array([halo_crc(block)], dtype=np.int64),
                        s.rank + 1, _TAG_DOWN_CRC,
                    )
        for s in self.decomp.slabs:
            arr = locals_[s.rank][grid]
            if s.rank < size - 1:
                block = self.comms[s.rank].recv(s.rank + 1, _TAG_UP)
                if checked:
                    crc = self.comms[s.rank].recv(s.rank + 1, _TAG_UP_CRC)
                    self.guards.check_halo(grid, int(crc[0]), block)
                hi = s.local_own_hi
                arr[hi : hi + width] = block
            if s.rank > 0:
                block = self.comms[s.rank].recv(s.rank - 1, _TAG_DOWN)
                if checked:
                    crc = self.comms[s.rank].recv(s.rank - 1, _TAG_DOWN_CRC)
                    self.guards.check_halo(grid, int(crc[0]), block)
                lo = s.local_own_lo
                arr[lo - width : lo] = block

    # -- execution ----------------------------------------------------------------

    def __call__(self, **global_arrays: np.ndarray) -> None:
        """One-shot: scatter, run the group SPMD, gather owned rows back."""
        self.scatter(**global_arrays)
        self.run()
        self.gather(**global_arrays)

    # -- persistent mode ---------------------------------------------------------
    #
    # Iterative use (smoothing sweeps, time stepping) should not pay a
    # full scatter/gather per application: scatter once, run() many
    # times against rank-resident state, gather when the host needs the
    # global view — the working style of a real MPI application.

    def scatter(self, **global_arrays: np.ndarray) -> None:
        """Distribute global arrays into rank-local (halo-padded) state."""
        grids = self.group.grids()
        missing = grids - set(global_arrays)
        if missing:
            raise TypeError(f"missing grids: {sorted(missing)}")
        for g in grids:
            if tuple(global_arrays[g].shape) != self.global_shape:
                raise ValueError(
                    f"grid {g!r} has shape {global_arrays[g].shape}, "
                    f"kernel built for {self.global_shape}"
                )
        self._locals: list[dict[str, np.ndarray]] = [
            {
                g: self.decomp.scatter(
                    r, np.asarray(global_arrays[g], dtype=self.dtype)
                )
                for g in grids
            }
            for r in range(self.decomp.size)
        ]

    def run(
        self, times: int = 1, recovery: RecoveryPolicy | None = None
    ) -> None:
        """Apply the group ``times`` times to the rank-resident state.

        With a :class:`RecoveryPolicy`, the sweeps run under
        checkpoint/restart: a rank crash (``comm.rank.crash``) is
        detected as a :class:`RankFailure`, the dead rank restarts, and
        the run replays from the last verified snapshot — the final
        state is bitwise-identical to a fault-free run.  Without one, a
        crash propagates as the typed :class:`RankFailure` (never a
        misleading deadlock :class:`CommError`).
        """
        locals_ = getattr(self, "_locals", None)
        if locals_ is None:
            raise RuntimeError("call scatter(...) before run()")
        if recovery is None:
            for _ in range(times):
                self._sweep(locals_)
            return
        RecoveryManager(self, recovery).run(times)

    def _sweep(self, locals_: list[dict[str, np.ndarray]]) -> None:
        """One application of the whole group, with crash detection.

        The ``comm.rank.crash`` fault site is probed once per (rank,
        stencil): a firing kills that rank mid-sweep.  Survivors notice
        at their next halo exchange (recv from a dead peer), or at
        latest in the end-of-sweep liveness audit — either way the
        sweep raises :class:`RankFailure` instead of completing with a
        silently missing contribution.
        """
        telemetry.count("dmem.sweeps")
        alive = self.comms[0].alive
        for si in range(len(self.group)):
            for g, w in self.read_halos[si].items():
                with telemetry.tracing.span(
                    f"halo:{g}", cat="dmem",
                    width=w, ranks=self.decomp.size,
                ), telemetry.timed("dmem.exchange"):
                    self._exchange(locals_, g, w)
                telemetry.count("dmem.exchanges")
            for r in range(self.decomp.size):
                if not alive(r):
                    continue
                if fault_point("comm.rank.crash"):
                    self.comms[r].kill(r)
                    continue
                entry = self._kernels[r][si]
                if entry is None:
                    continue
                local, kernel = entry
                with telemetry.tracing.span(
                    f"apply:{local.name}", cat="dmem",
                    lane=f"rank {r}",
                ):
                    kernel(**{g: locals_[r][g] for g in local.grids()})
        dead = self.comms[0].dead_ranks()
        if dead:
            raise RankFailure(
                min(dead),
                f"{len(dead)} rank(s) died during the sweep: "
                f"{sorted(dead)}",
            )

    def gather(self, **global_arrays: np.ndarray) -> None:
        """Write every output grid's owned rows back into global arrays."""
        locals_ = getattr(self, "_locals", None)
        if locals_ is None:
            raise RuntimeError("nothing to gather: scatter(...) first")
        outputs = {st.output for st in self.group}
        for g in outputs:
            if g not in global_arrays:
                raise TypeError(f"gather needs output grid {g!r}")
            for r in range(self.decomp.size):
                self.decomp.gather_into(r, locals_[r][g], global_arrays[g])

    # -- accounting -------------------------------------------------------------

    @property
    def comm_stats(self):
        """Fabric-wide traffic + resilience counters (messages, bytes,
        barriers, retransmits, duplicates, crashes, restores, ...)."""
        return self.comms[0].stats

    def describe_dict(self) -> dict:
        """Machine-readable resilience/decomposition summary (the
        ``explain --dmem`` surface)."""
        return {
            "ranks": self.decomp.size,
            "global_shape": list(self.global_shape),
            "halo": self.halo,
            "rows_per_rank": [
                s.own_hi - s.own_lo for s in self.decomp.slabs
            ],
            "read_halos": [dict(h) for h in self.read_halos],
            "backend": self.backend,
            "serving_backends": sorted(self.serving_backends),
            "transport": {
                "mode": self.transport_mode,
                "max_retries": self.transport_retries,
                "delivery": (
                    "exactly-once (seq + CRC + ack/retransmit)"
                    if self.transport_mode == "reliable"
                    else "best-effort (bare wire)"
                ),
            },
            "guards": {
                "nonfinite": self.guards.nonfinite,
                "invariants": self.guards.invariants,
                "halo_checksum": self.guards.halo_checksum,
            },
            "comm_stats": self.comm_stats.as_dict(),
            "dead_ranks": sorted(self.comms[0].dead_ranks()),
        }

    def describe(self) -> str:
        """Human-readable form of :meth:`describe_dict`."""
        d = self.describe_dict()
        lines = [
            f"distributed kernel: {d['ranks']} rank(s) over "
            f"{tuple(d['global_shape'])}, halo {d['halo']}",
            f"  rows/rank: {d['rows_per_rank']}",
            f"  backend: {d['backend']} "
            f"(serving: {', '.join(d['serving_backends'])})",
            f"  transport: {d['transport']['mode']} — "
            f"{d['transport']['delivery']}, "
            f"retry budget {d['transport']['max_retries']}",
            "  guards: " + ", ".join(
                f"{k}={v}" for k, v in d["guards"].items()
            ),
        ]
        stats = {k: v for k, v in d["comm_stats"].items() if v}
        lines.append(
            "  comm stats: " + (
                ", ".join(f"{k}={v}" for k, v in sorted(stats.items()))
                if stats else "(no traffic yet)"
            )
        )
        if d["dead_ranks"]:
            lines.append(f"  DEAD RANKS: {d['dead_ranks']}")
        return "\n".join(lines)

    @property
    def serving_backends(self) -> set[str]:
        """Backends actually serving the per-rank kernels.

        ``{"c"}`` on a healthy toolchain; a degraded fallback chain
        shows up here (e.g. ``{"numpy"}``) without changing results.
        """
        out: set[str] = set()
        for row in self._kernels:
            for entry in row:
                if entry is None:
                    continue
                _, kernel = entry
                out.add(
                    getattr(kernel, "serving_backend", None) or self.backend
                )
        return out
