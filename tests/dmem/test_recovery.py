"""Checkpoint/restart: rank crashes replay to bitwise-identical state."""

import numpy as np
import pytest

from repro.core.components import Component
from repro.core.domains import RectDomain
from repro.core.stencil import Stencil, StencilGroup
from repro.core.weights import WeightArray
from repro.dmem import (
    Checkpoint,
    CheckpointError,
    DistributedKernel,
    RankFailure,
    RecoveryExhausted,
    RecoveryPolicy,
)
from repro.resilience.faults import inject

pytestmark = pytest.mark.faults

LAP = Component("u", WeightArray([[0, 1, 0], [1, -4, 1], [0, 1, 0]]))
INTERIOR = RectDomain((1, 1), (-1, -1))


def _dk(n=16, nranks=2, **kw):
    group = StencilGroup([Stencil(LAP, "u", INTERIOR, name="smooth")])
    return DistributedKernel(group, (n, n), nranks, backend="numpy", **kw)


def _fault_free(u0, times=1, n=16, nranks=2):
    """Reference: the same distributed run with no faults armed."""
    ref = np.array(u0, copy=True)
    dk = _dk(n=n, nranks=nranks)
    dk.scatter(u=ref)
    dk.run(times)
    dk.gather(u=ref)
    return ref


class TestCheckpoint:
    def test_capture_restore_roundtrip(self, rng):
        locals_ = [{"u": rng.random((4, 4))} for _ in range(3)]
        want = [{g: a.copy() for g, a in r.items()} for r in locals_]
        ckpt = Checkpoint.capture(2, locals_)
        for r in locals_:
            r["u"] += 99.0  # diverge the live state
        ckpt.restore_into(locals_)
        for live, snap in zip(locals_, want):
            np.testing.assert_array_equal(live["u"], snap["u"])

    def test_capture_is_a_deep_copy(self, rng):
        locals_ = [{"u": rng.random((4, 4))}]
        ckpt = Checkpoint.capture(0, locals_)
        locals_[0]["u"][0, 0] = -1.0
        assert ckpt.blocks[0]["u"][0, 0] != -1.0
        ckpt.verify()  # mutating live state never invalidates it

    def test_corrupted_snapshot_refused(self, rng):
        locals_ = [{"u": rng.random((4, 4))}]
        ckpt = Checkpoint.capture(0, locals_)
        ckpt.blocks[0]["u"][1, 1] += 1.0  # bit-rot in the snapshot
        with pytest.raises(CheckpointError, match="failed CRC"):
            ckpt.restore_into(locals_)

    def test_restore_refuses_changed_invariants(self, rng):
        locals_ = [{"u": rng.random((4, 4))}]
        ckpt = Checkpoint.capture(0, locals_)
        with pytest.raises(CheckpointError, match="invariants changed"):
            ckpt.restore_into([{"u": np.zeros((2, 2))}])
        with pytest.raises(CheckpointError, match="grid set changed"):
            ckpt.restore_into([{"v": np.zeros((4, 4))}])
        with pytest.raises(CheckpointError, match="rank"):
            ckpt.restore_into([])

    def test_policy_validation(self):
        with pytest.raises(ValueError, match="interval"):
            RecoveryPolicy(interval=0)
        with pytest.raises(ValueError, match="max_restarts"):
            RecoveryPolicy(max_restarts=-1)


class TestCrashRecovery:
    def test_crash_without_recovery_is_a_typed_failure(self, rng):
        dk = _dk()
        dk.scatter(u=rng.random((16, 16)))
        with inject("comm.rank.crash", times=1):
            with pytest.raises(RankFailure) as ei:
                dk.run()
        assert ei.value.rank == 0
        assert dk.comms[0].dead_ranks() == {0}
        assert dk.comm_stats.crashes == 1

    def test_crash_recovers_bitwise_identical(self, rng):
        u0 = rng.random((16, 16))
        ref = _fault_free(u0, times=3)
        u = np.array(u0, copy=True)
        dk = _dk()
        dk.scatter(u=u)
        with inject("comm.rank.crash", times=1):
            dk.run(3, recovery=RecoveryPolicy())
        dk.gather(u=u)
        np.testing.assert_array_equal(u, ref)  # bitwise, not allclose
        assert dk.comm_stats.crashes == 1
        assert dk.comm_stats.restores == 1
        assert not dk.comms[0].dead_ranks()

    def test_crash_of_middle_rank_recovers(self, rng):
        u0 = rng.random((18, 18))
        ref = _fault_free(u0, times=2, n=18, nranks=3)
        u = np.array(u0, copy=True)
        dk = _dk(n=18, nranks=3)
        dk.scatter(u=u)
        # per sweep the crash site is probed once per alive rank;
        # after=1 skips rank 0's probe so rank 1 dies mid-sweep
        with inject("comm.rank.crash", times=1, after=1):
            dk.run(2, recovery=RecoveryPolicy())
        dk.gather(u=u)
        np.testing.assert_array_equal(u, ref)

    def test_repeated_crashes_within_budget(self, rng):
        u0 = rng.random((16, 16))
        ref = _fault_free(u0, times=2)
        u = np.array(u0, copy=True)
        dk = _dk()
        dk.scatter(u=u)
        # after=1 staggers the two firings onto different sweeps (a
        # plain times=2 would kill both ranks within one sweep and
        # count as a single restart)
        with inject("comm.rank.crash", times=2, after=1):
            dk.run(2, recovery=RecoveryPolicy(max_restarts=3))
        dk.gather(u=u)
        np.testing.assert_array_equal(u, ref)
        assert dk.comm_stats.restores == 2

    def test_crash_after_checkpointed_progress(self, rng):
        u0 = rng.random((16, 16))
        ref = _fault_free(u0, times=4)
        u = np.array(u0, copy=True)
        dk = _dk()
        dk.scatter(u=u)
        # 2 probes/sweep (2 ranks): after=4 fires in sweep 3, past the
        # interval-2 checkpoint, so replay starts from sweep 2
        with inject("comm.rank.crash", times=1, after=4):
            dk.run(4, recovery=RecoveryPolicy(interval=2))
        dk.gather(u=u)
        np.testing.assert_array_equal(u, ref)

    def test_restart_budget_exhausted(self, rng):
        dk = _dk()
        dk.scatter(u=rng.random((16, 16)))
        with inject("comm.rank.crash", times=None):  # crash every sweep
            with pytest.raises(RecoveryExhausted) as ei:
                dk.run(2, recovery=RecoveryPolicy(max_restarts=2))
        assert ei.value.restarts == 2
        assert len(ei.value.history) == 3  # 2 restored + the fatal one

    def test_zero_restarts_means_fail_fast(self, rng):
        dk = _dk()
        dk.scatter(u=rng.random((16, 16)))
        with inject("comm.rank.crash", times=1):
            with pytest.raises(RecoveryExhausted):
                dk.run(1, recovery=RecoveryPolicy(max_restarts=0))
