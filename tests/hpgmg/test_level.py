"""Level storage, coefficients, norms."""

import numpy as np
import pytest

from repro.hpgmg.level import Level, default_beta


class TestConstruction:
    def test_shapes(self):
        lvl = Level(8, 3)
        assert lvl.shape == (10, 10, 10)
        assert lvl.h == 1 / 8
        assert lvl.dof == 512
        for g in ("x", "rhs", "res", "tmp"):
            assert lvl.grids[g].shape == (10, 10, 10)

    def test_constant_has_no_betas(self):
        lvl = Level(8, 2, coefficients="constant")
        assert "beta_0" not in lvl.grids
        assert "lam" not in lvl.grids

    def test_variable_has_betas_and_lam(self):
        lvl = Level(8, 2, coefficients="variable")
        assert {"beta_0", "beta_1", "lam"} <= set(lvl.grids)

    def test_too_small_rejected(self):
        with pytest.raises(ValueError):
            Level(1, 2)

    def test_bad_coefficients(self):
        with pytest.raises(ValueError):
            Level(8, 2, coefficients="random")

    def test_dtype(self):
        lvl = Level(4, 2, dtype=np.float32)
        assert lvl.grids["x"].dtype == np.float32


class TestCoefficients:
    def test_default_beta_positive(self):
        lvl = Level(16, 3, coefficients="variable")
        for d in range(3):
            assert (lvl.grids[f"beta_{d}"] > 0).all()

    def test_beta_heterogeneous(self):
        lvl = Level(16, 2, coefficients="variable")
        assert lvl.grids["beta_0"].std() > 1e-3

    def test_lam_is_inverse_diagonal(self):
        lvl = Level(8, 2, coefficients="variable")
        h2 = lvl.h * lvl.h
        b0, b1 = lvl.grids["beta_0"], lvl.grids["beta_1"]
        diag = (
            b0[1:-1, 1:-1] + b0[2:, 1:-1] + b1[1:-1, 1:-1] + b1[1:-1, 2:]
        ) / h2
        np.testing.assert_allclose(lvl.grids["lam"][1:-1, 1:-1], 1.0 / diag)

    def test_face_field_offset_half_cell(self):
        lvl = Level(8, 1, coefficients="variable",
                    beta_fn=lambda p: p[..., 0] + 10.0)
        # beta_0[i] sits at coordinate (i-1)*h
        want = (np.arange(10) - 1) * lvl.h + 10.0
        np.testing.assert_allclose(lvl.grids["beta_0"], want)

    def test_custom_beta_fn(self):
        lvl = Level(8, 2, coefficients="variable", beta_fn=lambda p: 0 * p[..., 0] + 3.0)
        assert np.allclose(lvl.grids["beta_0"], 3.0)


class TestViewsAndNorms:
    def test_interior_selector(self):
        lvl = Level(4, 2)
        lvl.grids["x"][...] = 1.0
        assert lvl.interior_of("x").shape == (4, 4)

    def test_zero(self):
        lvl = Level(4, 2)
        lvl.grids["x"][...] = 5.0
        lvl.zero("x")
        assert not lvl.grids["x"].any()

    def test_norms(self):
        lvl = Level(4, 2)
        lvl.grids["res"][lvl.interior] = 2.0
        assert lvl.norm("res", "l2") == pytest.approx(2.0)
        assert lvl.norm("res", "max") == 2.0
        with pytest.raises(ValueError):
            lvl.norm("res", "l7")

    def test_coarsen_shape(self):
        assert Level(8, 2).coarsen_shape() == 4
        with pytest.raises(ValueError):
            Level(9, 2).coarsen_shape()

    def test_cell_centers(self):
        lvl = Level(4, 1)
        pts = lvl.cell_centers()
        assert pts.shape == (6, 1)
        assert pts[1, 0] == pytest.approx(0.5 * lvl.h)
        assert pts[4, 0] == pytest.approx(1 - 0.5 * lvl.h)
