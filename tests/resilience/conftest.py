"""Isolation for the fault-matrix suite.

Every test here runs with: a private JIT disk cache (so a read-only or
poisoned global cache never leaks in — this is what lets the tier-2
broken-toolchain invocation work), a clean fault registry, and no
inherited ``SNOWFLAKE_FAULTS``/``SNOWFLAKE_GUARDS``.
"""

import shutil

import pytest

from repro.resilience import faults

HAVE_GCC = shutil.which("gcc") is not None

needs_gcc = pytest.mark.skipif(
    not HAVE_GCC, reason="needs a real gcc on PATH"
)


@pytest.fixture(autouse=True)
def _isolate(monkeypatch, tmp_path):
    monkeypatch.setenv("SNOWFLAKE_CACHE_DIR", str(tmp_path / "jit-cache"))
    monkeypatch.delenv("SNOWFLAKE_FAULTS", raising=False)
    monkeypatch.delenv("SNOWFLAKE_GUARDS", raising=False)
    faults.reset()
    yield
    faults.reset()


@pytest.fixture
def real_gcc(monkeypatch):
    """Force a working toolchain even under the tier-2 broken env."""
    monkeypatch.setenv("SNOWFLAKE_CC", "gcc")


@pytest.fixture
def fresh_jit(monkeypatch):
    """Empty in-process handle cache: force the disk-cache code paths."""
    from repro.backends import jit

    monkeypatch.setattr(jit, "_loaded", {})
    monkeypatch.setattr(jit, "_tag_locks", {})
    return jit
