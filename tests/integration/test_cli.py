"""The ``python -m repro`` command-line interface."""

import subprocess
import sys

import pytest


def run_cli(*args, timeout=300):
    return subprocess.run(
        [sys.executable, "-m", "repro", *args],
        capture_output=True, text=True, timeout=timeout,
    )


def test_info():
    proc = run_cli("info")
    assert proc.returncode == 0
    assert "repro-snowflake" in proc.stdout
    assert "backends:" in proc.stdout
    assert "compiler:" in proc.stdout


def test_selftest_passes():
    proc = run_cli("selftest")
    assert proc.returncode == 0
    assert "PASS" in proc.stdout
    assert "MISMATCH" not in proc.stdout


def test_requires_a_command():
    proc = run_cli()
    assert proc.returncode != 0


def test_stats_reports_telemetry(tmp_path):
    bench = tmp_path / "BENCH_pipeline.json"
    proc = run_cli(
        "stats", "--size", "32", "--calls", "2", "--json", str(bench)
    )
    assert proc.returncode == 0
    assert "kernel invocations" in proc.stdout
    assert "telemetry mode" in proc.stdout
    import json

    doc = json.loads(bench.read_text())
    assert doc["schema"] == "snowflake-telemetry/1"
    assert doc["kernels"], "smoke kernel calls must be recorded"


def test_stats_respects_off_mode():
    import os

    env = dict(os.environ, SNOWFLAKE_TELEMETRY="off", PYTHONPATH="src")
    proc = subprocess.run(
        [sys.executable, "-m", "repro", "stats", "--size", "16",
         "--calls", "1", "--backend", "numpy"],
        capture_output=True, text=True, timeout=300, env=env,
    )
    assert proc.returncode == 0
    assert "telemetry is off" in proc.stdout


def test_figures_passthrough():
    proc = run_cli("figures", "fig6", "--repeats", "1", timeout=600)
    assert proc.returncode == 0
    assert "STREAM" in proc.stdout


def test_in_process_main():
    from repro.__main__ import main

    assert main(["selftest"]) == 0
