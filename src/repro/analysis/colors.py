"""Multicolor (red-black, 4-color, ...) domain analysis.

Colored iteration orderings are Snowflake's idiom for legal in-place
smoothing: each color is a union of stride-2 (or stride-k) boxes, and the
Diophantine machinery proves that updating all points of one color in
parallel never touches another point of the same color (paper Fig.3).

This module provides the checks applications and tests lean on:
partition validation (colors are disjoint and jointly cover a region) and
per-color self-interference.
"""

from __future__ import annotations

import itertools
from typing import Mapping, Sequence

from ..core.domains import DomainUnion, RectDomain, as_domain
from ..core.stencil import Stencil
from .dependence import is_parallel_safe

__all__ = [
    "domains_disjoint",
    "union_self_disjoint",
    "is_partition",
    "color_parallel_safe",
    "checkerboard",
]


def domains_disjoint(
    a: "RectDomain | DomainUnion",
    b: "RectDomain | DomainUnion",
    shape: Sequence[int],
) -> bool:
    """Exact emptiness test of the intersection of two domains."""
    ra = [r for r in as_domain(a).resolve(shape) if not r.is_empty()]
    rb = [r for r in as_domain(b).resolve(shape) if not r.is_empty()]
    return not any(x.intersects(y) for x in ra for y in rb)


def union_self_disjoint(
    dom: "RectDomain | DomainUnion", shape: Sequence[int]
) -> bool:
    """Do the member boxes of a union overlap each other?"""
    rects = [r for r in as_domain(dom).resolve(shape) if not r.is_empty()]
    for i in range(len(rects)):
        for j in range(i + 1, len(rects)):
            if rects[i].intersects(rects[j]):
                return False
    return True


def is_partition(
    colors: Sequence["RectDomain | DomainUnion"],
    region: "RectDomain | DomainUnion",
    shape: Sequence[int],
) -> bool:
    """Are ``colors`` pairwise disjoint and jointly exactly ``region``?

    Disjointness is proven by lattice intersection; coverage is proven by
    counting — for disjoint lattice unions, point counts are additive, so
    the colors cover the region iff their sizes sum to the region's size
    and each color lies inside the region.
    """
    for i in range(len(colors)):
        if not union_self_disjoint(colors[i], shape):
            return False
        for j in range(i + 1, len(colors)):
            if not domains_disjoint(colors[i], colors[j], shape):
                return False
    region_u = as_domain(region)
    if not union_self_disjoint(region_u, shape):
        raise ValueError("region must itself be a disjoint union")
    region_count = region_u.npoints(shape)
    total = 0
    region_rects = [r for r in region_u.resolve(shape) if not r.is_empty()]
    for c in colors:
        cu = as_domain(c)
        total += cu.npoints(shape)
        # containment: every box of the color must avoid the region's
        # complement; since boxes are lattices we verify by checking the
        # color's points are within region via sampling the lattice
        # corners plus an exact intersection count argument below.
        for rc in cu.resolve(shape):
            if rc.is_empty():
                continue
            if not any(_lattice_contained(rc, rr) for rr in region_rects):
                # not inside a single region box; fall back to exact
                # pointwise containment (small domains only in practice)
                if rc.npoints <= 4096:
                    if not all(
                        any(rr.contains(p) for rr in region_rects)
                        for p in rc.points()
                    ):
                        return False
                else:
                    return False
    return total == region_count


def _lattice_contained(inner, outer) -> bool:
    """Sufficient containment test: inner's bounding extremes lie on
    outer's lattice and within bounds, and inner's stride is a multiple
    of outer's stride (or outer is dense)."""
    for (il, ist, ic), (ol, ost, oc) in zip(
        zip(inner.lows, inner.strides, inner.counts),
        zip(outer.lows, outer.strides, outer.counts),
    ):
        ihigh = il + ist * (ic - 1)
        ohigh = ol + ost * (oc - 1)
        if il < ol or ihigh > ohigh:
            return False
        if ost == 0:
            if not (il == ol == ihigh):
                return False
        else:
            if (il - ol) % ost != 0:
                return False
            if ist % ost != 0 and ic > 1:
                return False
    return True


def color_parallel_safe(
    stencil: Stencil, shapes: Mapping[str, Sequence[int]]
) -> bool:
    """Is this (typically in-place, colored) stencil hazard-free?

    For GSRB: the red sub-stencil reads only black neighbours, so the
    write lattice (red) and the shifted read lattices (black) never meet;
    the extended-gcd test proves it without enumerating points.
    """
    return is_parallel_safe(stencil, shapes)


def checkerboard(ndim: int, ghost: int = 1) -> tuple[DomainUnion, DomainUnion]:
    """(red, black) interior colorings; red holds the corner cell
    ``(ghost,)*ndim``."""
    red = RectDomain.colored(ndim, parity=0, ghost=ghost)
    black = RectDomain.colored(ndim, parity=1, ghost=ghost)
    return red, black


def k_coloring(ndim: int, k_per_dim: int, ghost: int = 1) -> list[DomainUnion]:
    """General ``k_per_dim**ndim``-coloring: one color per residue class
    of each coordinate mod ``k_per_dim`` (Fig.3b's 4-color tiling is
    ``ndim=2, k_per_dim=2``)."""
    colors = []
    for offs in itertools.product(range(k_per_dim), repeat=ndim):
        start = tuple(ghost + o for o in offs)
        colors.append(
            DomainUnion(
                [RectDomain(start, (-ghost,) * ndim, (k_per_dim,) * ndim)]
            )
        )
    return colors


__all__ += ["k_coloring"]
