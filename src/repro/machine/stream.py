"""Modified STREAM benchmark (paper Fig.6).

The paper measures the bandwidth bound for stencils with a *dot product*
rather than the classic triad, because stencil sweeps are read-dominated:

    #pragma omp parallel for reduction(+:beta)
    for (j = 0; j < N; j++) beta += a[j] * b[j];

We provide the same kernel three ways — hand-written C (compiled with
the JIT, matching the figure verbatim), C+OpenMP, and numpy ``dot`` —
and report bytes moved per second (2 arrays * 8 bytes * N / time).
"""

from __future__ import annotations

import ctypes
import time
import warnings

import numpy as np

from ..backends.jit import compile_and_load

__all__ = ["stream_dot_bandwidth", "STREAM_DOT_C_SOURCE"]

#: Verbatim analogue of the paper's Fig.6 kernel, wrapped for the FFI.
STREAM_DOT_C_SOURCE = """\
#include <stdint.h>

double tuned_STREAM_Dot(const double* a, const double* b, int64_t n)
{
    double beta = 0.0;
    #ifdef _OPENMP
    #pragma omp parallel for reduction(+:beta)
    #endif
    for (int64_t j = 0; j < n; j++)
        beta += a[j] * b[j];
    return beta;
}
"""


def _c_dot(openmp: bool):
    lib = compile_and_load(STREAM_DOT_C_SOURCE, openmp=openmp)
    fn = lib.tuned_STREAM_Dot
    fn.argtypes = [
        ctypes.POINTER(ctypes.c_double),
        ctypes.POINTER(ctypes.c_double),
        ctypes.c_int64,
    ]
    fn.restype = ctypes.c_double

    def dot(a: np.ndarray, b: np.ndarray) -> float:
        return fn(
            a.ctypes.data_as(ctypes.POINTER(ctypes.c_double)),
            b.ctypes.data_as(ctypes.POINTER(ctypes.c_double)),
            a.size,
        )

    return dot


def stream_dot_bandwidth(
    n: int = 2**24, repeats: int = 5, flavor: str = "c"
) -> float:
    """Measured read bandwidth in bytes/second.

    ``flavor``: ``"c"`` (sequential C), ``"openmp"``, or ``"numpy"``.
    Arrays are initialized non-trivially so the compiler cannot elide
    the loads; best-of-``repeats`` timing after one warmup pass.
    """
    rng = np.random.default_rng(12345)
    a = rng.random(n)
    b = rng.random(n)
    if flavor == "numpy":
        dot = lambda x, y: float(np.dot(x, y))  # noqa: E731
    elif flavor == "c":
        dot = _c_dot(openmp=False)
    elif flavor == "openmp":
        dot = _c_dot(openmp=True)
    else:
        raise ValueError(f"unknown flavor {flavor!r}")
    sink = dot(a, b)  # warmup
    best = float("inf")
    for _ in range(repeats):
        t0 = time.perf_counter()
        sink += dot(a, b)
        best = min(best, time.perf_counter() - t0)
    if sink == 0.0:  # pragma: no cover - keeps the loads observable
        warnings.warn(
            f"stream_dot_bandwidth: dot product summed to {sink!r} on "
            "random inputs — the compiler may have elided the loads and "
            "the bandwidth figure cannot be trusted",
            stacklevel=2,
        )
    return 2.0 * 8.0 * n / best
