"""Provenance layer: intra-stencil verdicts, barrier grids, artifacts."""

import json

import pytest

from repro import Component, RectDomain, Stencil, WeightArray
from repro.explain import explain
from repro.hpgmg.operators import cc_laplacian, smooth_group

LAP = Component("u", WeightArray([[0, 1, 0], [1, -4, 1], [0, 1, 0]]))
INTERIOR = RectDomain((1, 1), (-1, -1))


def smoother():
    group = smooth_group(2, cc_laplacian(2, 0.1), lam=0.1)
    shapes = {g: (12, 12) for g in group.grids()}
    return group, shapes


class TestGsrbProvenance:
    def test_every_barrier_names_the_smoothed_grid(self):
        group, shapes = smoother()
        prov = explain(group, shapes, backend="numpy")
        assert len(prov.barriers) == prov.plan.n_barriers == 3
        for b in prov.barriers:
            assert b.grids() == {"x"}

    def test_colored_sweeps_are_parallel_safe(self):
        group, shapes = smoother()
        prov = explain(group, shapes, backend="numpy")
        assert len(prov.stencils) == len(group)
        assert all(s.parallel_safe for s in prov.stencils)
        assert "parallel-safe" in prov.stencils[0].verdict()

    def test_render_is_complete(self):
        group, shapes = smoother()
        text = explain(group, shapes, backend="numpy").render()
        assert "gsrb_red" in text
        assert "forced by" in text
        assert "RAW on x" in text

    def test_to_dict_is_json_serializable(self):
        group, shapes = smoother()
        doc = json.loads(
            json.dumps(explain(group, shapes, backend="numpy").to_dict())
        )
        assert doc["group"] == group.name
        assert all(b["grids"] == ["x"] for b in doc["barriers"])


class TestIntraStencilVerdict:
    def test_unsafe_inplace_stencil_is_serialized(self):
        blur = Stencil(LAP, "u", INTERIOR, name="inplace_lap")
        prov = explain(blur, {"u": (12, 12)}, backend="numpy")
        (s,) = prov.stencils
        assert not s.parallel_safe
        assert s.verdict().startswith("serialized:")
        assert s.hazards


class TestArtifactInfo:
    def shapes(self):
        return {"u": (12, 12), "out": (12, 12)}

    def test_interpreter_backend_has_no_artifact(self):
        prov = explain(Stencil(LAP, "out", INTERIOR), self.shapes(),
                       backend="numpy")
        assert prov.artifact is None

    def test_c_backend_reports_cache_identity(self):
        prov = explain(Stencil(LAP, "out", INTERIOR), self.shapes(),
                       backend="c")
        a = prov.artifact
        assert a["backend"] == "c"
        assert len(a["cache_key"]) == 24
        assert a["source_path"].endswith(f"sf_{a['cache_key']}.c")
        assert a["artifact_path"].endswith(f"sf_{a['cache_key']}.so")
        assert a["source_bytes"] > 0

    def test_compile_options_change_the_cache_key(self):
        s = Stencil(LAP, "out", INTERIOR)
        plain = explain(s, self.shapes(), backend="c")
        tiled = explain(s, self.shapes(), backend="c", tile=4)
        assert plain.artifact["cache_key"] != tiled.artifact["cache_key"]

    def test_unknown_option_rejected(self):
        with pytest.raises(TypeError):
            explain(Stencil(LAP, "out", INTERIOR), self.shapes(),
                    backend="c", warp_drive=9)

    def test_simulator_backends_report_in_process_identity(self):
        for backend in ("opencl", "cuda"):
            prov = explain(Stencil(LAP, "out", INTERIOR), self.shapes(),
                           backend=backend)
            assert prov.artifact["in_process"] is True
            assert prov.artifact["cache_key"]
