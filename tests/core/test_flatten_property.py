"""Property test: flattening preserves expression semantics.

The oracle is an *independent* recursive evaluator over the raw
expression tree (never touching the flat form); the subject is the
python backend, which consumes only the canonical flat form.  Random
expression trees over random data must agree — this pins down the
shift-anchoring of expression weights, distribution, division, and
merging rules all at once.
"""

import numpy as np
import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.core.components import Component
from repro.core.domains import RectDomain
from repro.core.expr import BinOp, Constant, Expr, GridRead, Neg, Param
from repro.core.stencil import Stencil
from repro.core.weights import SparseArray

GRIDS = ("u", "v")
PARAMS = ("w",)


def eval_expr(expr: Expr, point, arrays, params):
    """Direct recursive evaluation at ``point`` — the oracle."""
    if isinstance(expr, Constant):
        return expr.value
    if isinstance(expr, Param):
        return params[expr.name]
    if isinstance(expr, GridRead):
        idx = tuple(
            s * i + o for s, i, o in zip(expr.scale, point, expr.offset)
        )
        return arrays[expr.grid][idx]
    if isinstance(expr, Neg):
        return -eval_expr(expr.operand, point, arrays, params)
    if isinstance(expr, Component):
        total = 0.0
        for off, w in expr.weights:
            shifted = tuple(
                s * i + o for s, i, o in zip(expr.scale, point, off)
            )
            if isinstance(w, Expr):
                # weight expressions are anchored at the shifted point
                wval = eval_expr(w, shifted, arrays, params)
            else:
                wval = float(w)
            total += wval * arrays[expr.grid][shifted]
        return total
    if isinstance(expr, BinOp):
        a = eval_expr(expr.lhs, point, arrays, params)
        b = eval_expr(expr.rhs, point, arrays, params)
        if expr.op == "+":
            return a + b
        if expr.op == "-":
            return a - b
        if expr.op == "*":
            return a * b
        return a / b
    raise TypeError(type(expr))


@st.composite
def small_exprs(draw, depth=0):
    """Random expression trees that always flatten successfully."""
    if depth >= 3:
        choice = draw(st.integers(0, 2))
    else:
        choice = draw(st.integers(0, 5))
    if choice == 0:
        return Constant(draw(st.sampled_from([-2.0, -0.5, 1.0, 3.0])))
    if choice == 1:
        return Param("w")
    if choice == 2:
        off = draw(
            st.tuples(st.integers(-1, 1), st.integers(-1, 1))
        )
        return GridRead(draw(st.sampled_from(GRIDS)), off)
    if choice == 3:
        return Neg(draw(small_exprs(depth=depth + 1)))
    if choice == 4:
        # component with a possibly-expression weight
        off = draw(st.tuples(st.integers(-1, 1), st.integers(-1, 1)))
        inner = draw(
            st.one_of(
                st.sampled_from([0.5, -1.0, 2.0]),
                small_exprs(depth=3),  # leaf-ish exprs only
            )
        )
        return Component(
            draw(st.sampled_from(GRIDS)), SparseArray({off: inner})
        )
    op = draw(st.sampled_from(["+", "-", "*"]))
    return BinOp(
        op,
        draw(small_exprs(depth=depth + 1)),
        draw(small_exprs(depth=depth + 1)),
    )


@settings(max_examples=60, deadline=None)
@given(expr=small_exprs(), seed=st.integers(0, 2**16))
def test_flattened_execution_matches_recursive_oracle(expr, seed):
    rng = np.random.default_rng(seed)
    shape = (8, 8)
    arrays = {g: rng.random(shape) + 0.5 for g in GRIDS}
    arrays["out"] = np.zeros(shape)
    params = {"w": 1.25}

    # flat-form execution (domain keeps all reads in bounds: radius <= 2
    # after one level of component nesting)
    s = Stencil(expr, "out", RectDomain((3, 3), (-3, -3)))
    kernel = s.compile(backend="python")
    work = {g: a.copy() for g, a in arrays.items() if g in s.grids()}
    needed_params = {p: params[p] for p in s.params()}
    kernel(**work, **needed_params)

    for point in [(3, 3), (4, 4), (3, 4)]:
        want = eval_expr(expr, point, arrays, params)
        got = work["out"][point]
        assert got == pytest.approx(want, rel=1e-10, abs=1e-10)


@settings(max_examples=30, deadline=None)
@given(expr=small_exprs(), seed=st.integers(0, 2**16))
def test_division_by_param_matches_oracle(expr, seed):
    rng = np.random.default_rng(seed)
    body = expr / Param("w")
    shape = (8, 8)
    arrays = {g: rng.random(shape) + 0.5 for g in GRIDS}
    arrays["out"] = np.zeros(shape)
    params = {"w": 2.5}
    s = Stencil(body, "out", RectDomain((3, 3), (-3, -3)))
    work = {g: a.copy() for g, a in arrays.items() if g in s.grids()}
    s.compile(backend="python")(**work, **{p: params[p] for p in s.params()})
    want = eval_expr(body, (3, 3), arrays, params)
    assert work["out"][3, 3] == pytest.approx(want, rel=1e-10)
