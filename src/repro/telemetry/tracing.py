"""Hierarchical span tracing exported as Chrome trace-event JSON.

Where the registry (:mod:`repro.telemetry.registry`) answers "how much,
how often", this module answers *where the time went inside one solve*:
every stage of the pipeline — frontend passes, dependence analysis, JIT
compile/cache traffic, kernel invocations, resilience fallback
transitions, and simulated-fabric halo exchanges — opens a :func:`span`
around its work.  Spans nest (a kernel call contains its lazy
specialization, which contains the JIT compile, which contains the
``cc`` subprocess), carry monotonic timestamps and real thread ids, and
export as the Chrome trace-event format [1], so one ``trace.json`` is
directly loadable in Perfetto (https://ui.perfetto.dev) or
``chrome://tracing``.

Activation: spans record while a :func:`session` is open (or after an
explicit :func:`start`), and also whenever ``SNOWFLAKE_TELEMETRY=trace``
— the same switch that arms the registry's event ring buffer.  When
inactive every hook is a single boolean check.

Lanes: events are keyed ``(pid, tid)``.  By default ``tid`` is the real
OS thread id, so multi-threaded compiles interleave truthfully.  A span
may instead name a *virtual lane* (``lane="rank 0"``) — the simulated
distributed ranks all run on one driver thread, but each rank's work
must land on its own track to be readable; lanes map to reserved
synthetic tids and are labelled with ``thread_name`` metadata records at
export.

[1] "Trace Event Format", the JSON consumed by chrome://tracing and
    Perfetto: complete events ``ph="X"`` with microsecond ``ts``/``dur``,
    instant events ``ph="i"``, metadata ``ph="M"``.
"""

from __future__ import annotations

import itertools
import json
import os
import threading
import time
from contextlib import contextmanager
from pathlib import Path

__all__ = [
    "TRACE_SCHEMA",
    "SPAN_CAPACITY",
    "CATEGORIES",
    "active",
    "start",
    "stop",
    "clear",
    "session",
    "span",
    "instant",
    "events",
    "dropped",
    "current_span_id",
    "export_chrome_trace",
    "validate_chrome_trace",
]

#: schema tag stamped into the exported document's ``otherData``
TRACE_SCHEMA = "snowflake-trace/1"

#: hard cap on buffered events; past it new events are counted as
#: dropped rather than growing without bound
SPAN_CAPACITY = 100_000

#: the subsystem categories the pipeline instrumentation uses (``cat``
#: field); free-form cats are allowed but these are what the smoke
#: validator looks for
CATEGORIES = (
    "frontend",
    "analysis",
    "jit",
    "kernel",
    "resilience",
    "dmem",
)

#: synthetic-tid base for virtual lanes, far above real thread ids
_LANE_TID_BASE = 900_000_000

_lock = threading.Lock()
_events: list[dict] = []
_dropped = 0
_sessions = 0  # explicit start()/stop() nesting depth
_lanes: dict[str, int] = {}  # lane name -> synthetic tid
_epoch_ns = time.perf_counter_ns()  # trace time zero (monotonic)
_local = threading.local()  # per-thread open-span stack
#: every thread's open-span stack, keyed by native tid — the sampling
#: profiler reads these from its own thread (entries are (name, id,
#: cat) tuples; list append/pop are atomic under the GIL, so a reader
#: sees either the pre- or post-state, never a torn frame)
_stacks: dict[int, list] = {}
#: the profiler sets this so span() maintains stacks even when no
#: trace buffer is recording (checked before `active()` on the fast
#: path — a plain module bool, one attribute load when everything is
#: off)
stacks_wanted = False
_ids = itertools.count(1)  # span correlation ids (next() is atomic)


def _telemetry_trace_mode() -> bool:
    from .registry import events_enabled

    return events_enabled()


def active() -> bool:
    """Is span collection on?  The hot-path gate."""
    return _sessions > 0 or _telemetry_trace_mode()


def start() -> None:
    """Open a collection session (nestable; see :func:`session`)."""
    global _sessions
    with _lock:
        _sessions += 1


def stop() -> None:
    """Close one collection session (no-op below zero)."""
    global _sessions
    with _lock:
        _sessions = max(0, _sessions - 1)


def clear() -> None:
    """Drop every buffered event (test isolation / fresh recording)."""
    global _dropped
    with _lock:
        _events.clear()
        _lanes.clear()
        _dropped = 0


@contextmanager
def session(fresh: bool = True):
    """Collect spans for the duration of the block.

    ``fresh`` clears the buffer first so the exported trace contains
    exactly this session's events.
    """
    if fresh:
        clear()
    start()
    try:
        yield
    finally:
        stop()


def dropped() -> int:
    """Events discarded because the buffer hit :data:`SPAN_CAPACITY`."""
    return _dropped


# -- recording ----------------------------------------------------------------


def _now_us() -> float:
    return (time.perf_counter_ns() - _epoch_ns) / 1e3


def _tid(lane: str | None) -> int:
    if lane is None:
        return threading.get_native_id()
    with _lock:
        tid = _lanes.get(lane)
        if tid is None:
            tid = _LANE_TID_BASE + len(_lanes)
            _lanes[lane] = tid
    return tid


def _emit(ev: dict) -> None:
    global _dropped
    with _lock:
        if len(_events) >= SPAN_CAPACITY:
            _dropped += 1
            return
        _events.append(ev)


def _stack() -> list:
    st = getattr(_local, "stack", None)
    if st is None:
        st = _local.stack = []
        with _lock:
            _stacks[threading.get_native_id()] = st
    return st


def current_span_id() -> int | None:
    """Correlation id of this thread's innermost open span, if any.

    The id is also recorded in the span's exported ``args["span_id"]``,
    so a structured event (:mod:`repro.telemetry.events`) emitted inside
    the span links back to the exact trace record.
    """
    st = getattr(_local, "stack", None)
    if not st:
        return None
    return st[-1][1]


@contextmanager
def span(name: str, cat: str = "misc", lane: str | None = None, **args):
    """Record the block as one complete trace event (``ph="X"``).

    Spans on one thread nest: the enclosing span's name is recorded as
    ``args["parent"]`` so hierarchy survives even when a viewer flattens
    tracks.  A raising body is still recorded — where the time went
    matters most on the failing path — with ``args["error"]`` naming the
    exception type.  Each span carries a process-unique ``span_id``
    (see :func:`current_span_id`) correlating it with structured events
    and profiler samples; when only the profiler is running
    (``stacks_wanted``) the stack is maintained but nothing is buffered.
    """
    record = active()
    if not (record or stacks_wanted):
        yield
        return
    stack = _stack()
    parent = stack[-1][0] if stack else None
    sid = next(_ids)
    stack.append((name, sid, cat))
    t0 = time.perf_counter_ns()
    err: str | None = None
    try:
        yield
    except BaseException as e:
        err = type(e).__name__
        raise
    finally:
        t1 = time.perf_counter_ns()
        stack.pop()
        if record:
            fields = dict(args)
            fields["span_id"] = sid
            if parent is not None:
                fields.setdefault("parent", parent)
            if err is not None:
                fields["error"] = err
            _emit(
                {
                    "name": name,
                    "cat": cat,
                    "ph": "X",
                    "ts": round((t0 - _epoch_ns) / 1e3, 3),
                    "dur": round((t1 - t0) / 1e3, 3),
                    "pid": os.getpid(),
                    "tid": _tid(lane),
                    "args": fields,
                }
            )


def instant(name: str, cat: str = "misc", lane: str | None = None, **args) -> None:
    """Record a zero-duration marker (``ph="i"``, thread scope)."""
    if not active():
        return
    _emit(
        {
            "name": name,
            "cat": cat,
            "ph": "i",
            "s": "t",
            "ts": round(_now_us(), 3),
            "pid": os.getpid(),
            "tid": _tid(lane),
            "args": dict(args),
        }
    )


# -- reading / export ---------------------------------------------------------


def events() -> list[dict]:
    """Copy of the buffered events, in emission order."""
    with _lock:
        return [dict(e) for e in _events]


def open_stacks() -> list[tuple[int, list]]:
    """Snapshot of every thread's open-span stack (profiler read side).

    Returns ``[(native_tid, stack), ...]`` where each stack is the
    *live* list of ``(name, span_id, cat)`` frames — read its top with
    ``stack[-1]`` under try/except, tolerating concurrent pops.
    """
    with _lock:
        return list(_stacks.items())


def _metadata_events() -> list[dict]:
    pid = os.getpid()
    out = [
        {
            "name": "process_name",
            "ph": "M",
            "pid": pid,
            "tid": 0,
            "args": {"name": "repro-snowflake"},
        }
    ]
    with _lock:
        lanes = dict(_lanes)
    for lane, tid in sorted(lanes.items(), key=lambda kv: kv[1]):
        out.append(
            {
                "name": "thread_name",
                "ph": "M",
                "pid": pid,
                "tid": tid,
                "args": {"name": lane},
            }
        )
    return out


def export_chrome_trace(path: str | os.PathLike | None = None) -> dict:
    """Assemble the Chrome trace-event document (and write it if asked).

    Returns the document; with ``path`` it is also serialized as JSON.
    Load the file in Perfetto or ``chrome://tracing`` as-is.
    """
    from .. import __version__

    doc = {
        "traceEvents": _metadata_events() + events(),
        "displayTimeUnit": "ms",
        "otherData": {
            "schema": TRACE_SCHEMA,
            "version": __version__,
            "unix_time": time.time(),
            "dropped_events": dropped(),
        },
    }
    if path is not None:
        Path(path).write_text(json.dumps(doc, indent=1) + "\n")
    return doc


def validate_chrome_trace(doc: dict) -> list[str]:
    """Structural check of an exported document; returns problems.

    Used by ``python -m repro trace --smoke`` and the CI trace job: an
    empty list means every event is a well-formed trace-event record
    with monotonic, non-negative timestamps per thread.
    """
    problems: list[str] = []
    evs = doc.get("traceEvents")
    if not isinstance(evs, list) or not evs:
        return ["traceEvents missing or empty"]
    if doc.get("otherData", {}).get("schema") != TRACE_SCHEMA:
        problems.append(f"schema != {TRACE_SCHEMA!r}")
    last_ts: dict[tuple[int, int], float] = {}
    for i, ev in enumerate(evs):
        ph = ev.get("ph")
        if ph not in ("X", "i", "M"):
            problems.append(f"event {i}: unknown ph {ph!r}")
            continue
        for key in ("name", "pid", "tid"):
            if key not in ev:
                problems.append(f"event {i}: missing {key!r}")
        if ph == "M":
            continue
        ts = ev.get("ts")
        if not isinstance(ts, (int, float)) or ts < 0:
            problems.append(f"event {i}: bad ts {ts!r}")
            continue
        if ph == "X":
            dur = ev.get("dur")
            if not isinstance(dur, (int, float)) or dur < 0:
                problems.append(f"event {i}: bad dur {dur!r}")
        key = (ev.get("pid"), ev.get("tid"))
        # emission order per thread must be time-ordered (monotonic
        # clock): an X event is emitted at its *end*, so compare ends.
        end = ts + ev.get("dur", 0.0) if ph == "X" else ts
        if key in last_ts and end < last_ts[key] - 1e-6:
            problems.append(
                f"event {i}: timestamps not monotonic on tid {key[1]}"
            )
        last_ts[key] = max(last_ts.get(key, 0.0), end)
    return problems
