"""Reliable halo transport: exactly-once delivery over an unreliable wire.

:class:`~repro.dmem.comm.SimComm` models the raw fabric, including its
failure modes — injected send/delivery drops, in-flight corruption,
and (at this layer) duplication and reordering.  :class:`ReliableComm`
turns that lossy wire into the delivery contract a distributed solver
actually needs:

* **sequenced** — every logical message on a ``(src, dest, tag)``
  channel carries a sequence number; receivers deliver in send order,
  stashing early arrivals (``comm.msg.reorder``) until the gap fills;
* **deduplicated** — envelopes already delivered or stashed
  (``comm.msg.duplicate``, or retransmitted copies racing the
  original) are discarded and counted, never delivered twice;
* **integrity-checked** — each envelope is fingerprinted with the same
  CRC32 the halo guards use (:func:`repro.resilience.guards.halo_crc`)
  over header *and* payload, so corruption anywhere in the envelope
  (``comm.payload.corrupt``) is detected, reported through the
  ``halo_checksum`` guard, and healed by retransmission;
* **acked + retransmitted** — senders keep every envelope in a
  per-channel log until the receiver confirms delivery; a receiver
  that comes up empty requests retransmission of the whole unacked
  window, with the bounded-backoff retry loop shared with the backend
  fallback machinery (:func:`repro.resilience.policy.retry_call`);
* **failure-typed** — waiting on a rank the fabric knows is dead
  raises :class:`~repro.dmem.comm.RankFailure` (the in-process
  stand-in for recv timeout / ack loss) so the checkpoint/restart
  layer can distinguish a crashed peer from a protocol bug; loss that
  outlives the retry budget raises :class:`TransportError`.

Guard interaction: with the ``halo_checksum`` guard ``off`` the
transport heals corruption silently; ``warn`` makes every healed
corruption loud; ``raise`` turns any in-flight corruption into a fatal
:class:`~repro.resilience.guards.GuardViolation` — strictness for runs
where a corrupted wire must stop the job, not be papered over.
"""

from __future__ import annotations

import time
from dataclasses import dataclass, field

import numpy as np

from .. import telemetry
from ..resilience.faults import fault_point
from ..resilience.guards import Guards, halo_crc
from .comm import CommError, RankFailure, SimComm

__all__ = ["ReliableComm", "TransportError"]

#: sanity sentinel leading every envelope header
_MAGIC = 0x5AFE_C0DE
#: fixed-width dtype-name field in the envelope header
_DTYPE_FIELD = 16
#: headers never legitimately describe payloads beyond this rank
_MAX_NDIM = 16


class TransportError(CommError):
    """Message loss outlived the retransmission budget."""


class _CorruptEnvelope(Exception):
    """Envelope failed CRC or structural validation (internal)."""


class _LostEnvelope(Exception):
    """Expected sequence number not deliverable yet (internal,
    transient: each occurrence triggers a retransmit request)."""


def _pack(seq: int, payload: np.ndarray) -> np.ndarray:
    """Wrap ``payload`` in a self-describing, CRC-fingerprinted envelope.

    Layout (bytes): ``crc:int64 | magic:int64 seq:int64 ndim:int64
    shape:int64[ndim] | dtype:16s | payload``.  The CRC — the same
    :func:`halo_crc` the guards use — covers everything after itself,
    so a bit-flip in header *or* payload is detected.
    """
    data = np.ascontiguousarray(payload)
    head = np.array(
        [_MAGIC, int(seq), data.ndim, *data.shape], dtype=np.int64
    ).tobytes()
    dt = str(data.dtype).encode("ascii").ljust(_DTYPE_FIELD)
    if len(dt) != _DTYPE_FIELD:
        raise CommError(f"dtype name too long for envelope: {data.dtype}")
    body = head + dt + data.tobytes()
    crc = halo_crc(np.frombuffer(body, dtype=np.uint8))
    return np.frombuffer(
        np.int64(crc).tobytes() + body, dtype=np.uint8
    ).copy()


def _unpack(env: np.ndarray) -> tuple[int, np.ndarray]:
    """Inverse of :func:`_pack`; raises :class:`_CorruptEnvelope` on any
    CRC mismatch or structurally impossible header."""
    buf = np.ascontiguousarray(env, dtype=np.uint8).tobytes()
    if len(buf) < 8 * 4 + _DTYPE_FIELD:
        raise _CorruptEnvelope("truncated envelope")
    crc = int(np.frombuffer(buf[:8], dtype=np.int64)[0])
    body = buf[8:]
    if halo_crc(np.frombuffer(body, dtype=np.uint8)) != crc:
        raise _CorruptEnvelope("CRC mismatch")
    magic, seq, ndim = (
        int(x) for x in np.frombuffer(body[:24], dtype=np.int64)
    )
    if magic != _MAGIC or seq < 0 or not (0 <= ndim <= _MAX_NDIM):
        raise _CorruptEnvelope("implausible header survived CRC")
    off = 24 + 8 * ndim
    shape = tuple(
        int(x) for x in np.frombuffer(body[24:off], dtype=np.int64)
    )
    try:
        dtype = np.dtype(
            body[off : off + _DTYPE_FIELD].decode("ascii").strip()
        )
        payload = np.frombuffer(
            body[off + _DTYPE_FIELD :], dtype=dtype
        ).reshape(shape)
    except Exception as e:
        raise _CorruptEnvelope(f"undecodable payload: {e}") from e
    return seq, payload.copy()


@dataclass
class _Channel:
    """Reliable-delivery state for one ``(src, dest, tag)`` stream."""

    next_out: int = 0  # next sequence number the sender assigns
    next_in: int = 0  # next sequence number the receiver delivers
    log: dict[int, np.ndarray] = field(default_factory=dict)  # unacked
    stash: dict[int, np.ndarray] = field(default_factory=dict)  # early
    delayed: list[np.ndarray] = field(default_factory=list)  # reorder hold
    max_seen: int = -1  # highest sequence number ever received


class _TransportState:
    """Channel table shared by every endpoint of one world."""

    def __init__(self) -> None:
        self.channels: dict[tuple[int, int, int], _Channel] = {}

    def channel(self, key: tuple[int, int, int]) -> _Channel:
        ch = self.channels.get(key)
        if ch is None:
            ch = self.channels[key] = _Channel()
        return ch


class ReliableComm:
    """One rank's endpoint on the reliable layer over a SimComm world.

    Build with :meth:`world` (fresh fabric) or :meth:`attach` (wrap an
    existing ``SimComm`` world).  ``rsend``/``rrecv`` are the reliable
    counterparts of ``send``/``recv``; the raw endpoint stays reachable
    as ``.raw`` for code that wants the lossy wire.
    """

    def __init__(
        self,
        sim: SimComm,
        state: _TransportState,
        *,
        guards: Guards | None = None,
        max_retries: int = 4,
        backoff: float = 0.0,
        sleep=None,
    ) -> None:
        self._sim = sim
        self._state = state
        self._world: list["ReliableComm"] = []
        self.guards = guards if guards is not None else Guards()
        self.max_retries = int(max_retries)
        self.backoff = float(backoff)
        self._sleep = sleep if sleep is not None else (lambda _d: None)

    # -- construction --------------------------------------------------------

    @staticmethod
    def world(
        size: int,
        *,
        guards: Guards | None = None,
        strict_barriers: bool = False,
        max_retries: int = 4,
        backoff: float = 0.0,
        sleep=None,
    ) -> list["ReliableComm"]:
        return ReliableComm.attach(
            SimComm.world(size, strict_barriers=strict_barriers),
            guards=guards, max_retries=max_retries,
            backoff=backoff, sleep=sleep,
        )

    @staticmethod
    def attach(
        sims: list[SimComm],
        *,
        guards: Guards | None = None,
        max_retries: int = 4,
        backoff: float = 0.0,
        sleep=None,
    ) -> list["ReliableComm"]:
        """Layer reliable endpoints over an existing SimComm world."""
        state = _TransportState()
        world = [
            ReliableComm(
                sim, state, guards=guards, max_retries=max_retries,
                backoff=backoff, sleep=sleep,
            )
            for sim in sims
        ]
        for rc in world:
            rc._world = world
        return world

    # -- passthroughs --------------------------------------------------------

    @property
    def raw(self) -> SimComm:
        return self._sim

    @property
    def rank(self) -> int:
        return self._sim.rank

    @property
    def size(self) -> int:
        return self._sim.size

    @property
    def stats(self):
        return self._sim.stats

    def barrier(self, strict: bool | None = None) -> None:
        self._sim.barrier(strict)

    def alive(self, rank: int) -> bool:
        return self._sim.alive(rank)

    # -- reliable surface ----------------------------------------------------

    def rsend(self, data: np.ndarray, dest: int, tag: int = 0) -> int:
        """Sequence, log, and transmit one message; returns its seq.

        The envelope stays in the channel log until the receiver acks
        it, so injected drops and corruption are recoverable by
        retransmission.
        """
        ch = self._state.channel((self.rank, dest, tag))
        seq = ch.next_out
        ch.next_out += 1
        env = _pack(seq, np.asarray(data))
        ch.log[seq] = env
        telemetry.count("dmem.transport.sends")
        self._put(ch, env, dest, tag)
        return seq

    def _put(self, ch: _Channel, env: np.ndarray, dest: int, tag: int) -> None:
        """Hand one envelope to the wire, subject to transport faults."""
        if fault_point("comm.msg.reorder"):
            # hold this envelope back; it travels after its successor
            # (or when the receiver requests retransmission)
            ch.delayed.append(env)
            return
        self._sim.send(env, dest, tag)
        if fault_point("comm.msg.duplicate"):
            self._sim.send(env, dest, tag)
        while ch.delayed:  # release anything parked by the reorder fault
            self._sim.send(ch.delayed.pop(0), dest, tag)

    def rrecv(self, source: int, tag: int = 0) -> np.ndarray:
        """Deliver the next in-sequence message from ``source``.

        Drains the wire, dedups and reorders, then — if the expected
        envelope is still missing — requests retransmission of the
        sender's unacked window under the shared bounded-backoff retry
        loop.  Raises :class:`RankFailure` when the peer is dead with
        nothing recoverable in flight, :class:`TransportError` when
        loss outlives ``max_retries`` retransmit requests.
        """
        from ..resilience.policy import retry_call

        me = self.rank
        key = (source, me, tag)
        ch = self._state.channel(key)
        want = ch.next_in

        def attempt() -> np.ndarray:
            self._drain(ch, source, tag)
            if want in ch.stash:
                return ch.stash.pop(want)
            if not self._sim.alive(source):
                raise RankFailure(
                    source,
                    f"rank {me} waiting on seq {want} "
                    f"(tag {tag}) from a dead peer",
                )
            raise _LostEnvelope(want)

        def on_retry(_attempt: int, _e: BaseException) -> None:
            self._request_retransmit(ch, source, tag, want)

        t0 = time.perf_counter()
        retransmits_before = self.stats.retransmits
        try:
            payload = retry_call(
                attempt,
                max_retries=self.max_retries,
                backoff=self.backoff,
                sleep=self._sleep,
                transient=(_LostEnvelope,),
                on_retry=on_retry,
            )
        except _LostEnvelope:
            raise TransportError(
                f"rank {me} gave up on seq {want} from rank {source} "
                f"(tag {tag}) after {self.max_retries} retransmit "
                "requests — either the peer never sent (protocol bug) "
                "or injected loss exceeded the retry budget"
            ) from None
        rtt = time.perf_counter() - t0
        telemetry.observe("dmem.halo.rtt", rtt, rank=str(me))
        if self.stats.retransmits > retransmits_before:
            # the round-trips that needed healing, as their own series:
            # the recovery tail would otherwise vanish into the p50
            telemetry.observe("dmem.retransmit.latency", rtt, rank=str(me))
        ch.next_in = want + 1
        ch.log.pop(want, None)  # the in-process ack
        self.stats.acked += 1
        telemetry.count("dmem.transport.acked")
        return payload

    # -- delivery machinery --------------------------------------------------

    def _drain(self, ch: _Channel, source: int, tag: int) -> None:
        """Pull every wire message on the channel into the stash."""
        while self._sim.probe(source, tag):
            try:
                env = self._sim.recv(source, tag)
            except CommError:
                continue  # injected delivery drop; re-probe
            try:
                seq, payload = _unpack(env)
            except _CorruptEnvelope as e:
                self.stats.crc_failures += 1
                telemetry.count("dmem.transport.crc_failures")
                # guards decide loudness; the transport heals either way
                self.guards.report(
                    "halo_checksum",
                    f"transport envelope from rank {source} rejected "
                    f"({e}) — payload corrupted in flight; requesting "
                    "retransmission",
                )
                continue
            if seq < ch.next_in or seq in ch.stash:
                self.stats.duplicates += 1
                telemetry.count("dmem.transport.duplicates")
                continue
            if seq < ch.max_seen:
                # a lower sequence number arriving after a higher one
                # was overtaken on the wire
                self.stats.reordered += 1
                telemetry.count("dmem.transport.reordered")
            ch.max_seen = max(ch.max_seen, seq)
            ch.stash[seq] = payload

    def _request_retransmit(
        self, ch: _Channel, source: int, tag: int, want: int
    ) -> None:
        """NACK path: have the sender re-send its whole unacked window."""
        if not self._sim.alive(source):
            raise RankFailure(
                source,
                f"retransmit request for seq {want} (tag {tag}) went "
                "unanswered — ack loss from a dead peer",
            )
        sender = self._world[source]._sim
        while ch.delayed:  # flush envelopes parked by the reorder fault
            sender.send(ch.delayed.pop(0), self.rank, tag)
        for seq in sorted(ch.log):
            sender.send(ch.log[seq], self.rank, tag)
            self.stats.retransmits += 1
            telemetry.count("dmem.transport.retransmits")
        telemetry.event(
            "dmem.retransmit",
            source=source, dest=self.rank, tag=tag,
            want=want, window=len(ch.log),
        )
        telemetry.tracing.instant(
            "retransmit", cat="dmem", lane=f"rank {source}",
            dest=self.rank, tag=tag, window=len(ch.log),
        )

    # -- recovery hooks ------------------------------------------------------

    def reset(self) -> int:
        """World-wide rollback: forget all channel state and purge the
        fabric's undelivered messages; returns the purge count.  Every
        rank restarts its sequence numbers together — recovery restores
        all ranks to one consistent checkpoint, so a global reset is
        the consistent thing to do."""
        self._state.channels.clear()
        return self._sim.purge()

    def __repr__(self) -> str:  # pragma: no cover
        return (
            f"ReliableComm(rank={self.rank}/{self.size}, "
            f"max_retries={self.max_retries})"
        )
