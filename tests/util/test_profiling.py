"""Per-stencil profiler."""

import numpy as np
import pytest

from repro.core.components import Component
from repro.core.domains import RectDomain
from repro.core.stencil import Stencil, StencilGroup
from repro.core.weights import WeightArray
from repro.util.profiling import format_profile, profile_group

LAP = Component("u", WeightArray([[0, 1, 0], [1, -4, 1], [0, 1, 0]]))


def make_group():
    big = Stencil(LAP, "a", RectDomain((1, 1), (-1, -1)), name="big")
    tiny = Stencil(LAP, "b", RectDomain((1, 1), (4, 4)), name="tiny")
    return StencilGroup([big, tiny])


class TestProfileGroup:
    def test_covers_every_stencil(self, rng):
        g = make_group()
        arrays = {k: rng.random((64, 64)) for k in g.grids()}
        profiles = profile_group(g, arrays, backend="c", repeats=1)
        assert [p.name for p in profiles] == ["big", "tiny"]

    def test_points_counted(self, rng):
        g = make_group()
        arrays = {k: rng.random((64, 64)) for k in g.grids()}
        profiles = profile_group(g, arrays, backend="numpy", repeats=1)
        assert profiles[0].points == 62 * 62
        assert profiles[1].points == 3 * 3

    def test_shares_sum_to_one(self, rng):
        g = make_group()
        arrays = {k: rng.random((64, 64)) for k in g.grids()}
        profiles = profile_group(g, arrays, backend="c", repeats=1)
        assert sum(p.share for p in profiles) == pytest.approx(1.0)

    def test_big_stencil_dominates(self, rng):
        # 256^2 interior vs 3x3 patch: the big sweep should own most of
        # the time even on a noisy shared machine.
        g = make_group()
        arrays = {k: rng.random((256, 256)) for k in g.grids()}
        profiles = profile_group(g, arrays, backend="c", repeats=3)
        by_name = {p.name: p for p in profiles}
        assert by_name["big"].share > 0.5

    def test_params_forwarded(self, rng):
        from repro.core.expr import Param

        s = Stencil(Param("w") * LAP, "a", RectDomain((1, 1), (-1, -1)))
        g = StencilGroup([s])
        arrays = {k: rng.random((32, 32)) for k in g.grids()}
        profiles = profile_group(
            g, arrays, params={"w": 2.0}, backend="numpy", repeats=1
        )
        assert len(profiles) == 1

    def test_caller_arrays_never_mutated(self, rng):
        # Regression: the profiler used to run kernels against the
        # caller's arrays, so profiling overwrote the output grids.
        g = make_group()
        arrays = {k: rng.random((32, 32)) for k in g.grids()}
        before = {k: a.copy() for k, a in arrays.items()}
        profile_group(g, arrays, backend="numpy", repeats=1)
        for k in arrays:
            np.testing.assert_array_equal(arrays[k], before[k])

    def test_sub_resolution_timings_are_nan_not_inf(self, rng, monkeypatch):
        # Regression: a 0.0 best-of used to produce inf rates and an
        # invented share split via the `total or 1.0` fallback.
        monkeypatch.setattr(
            "repro.util.profiling.best_of", lambda *a, **k: 0.0
        )
        g = make_group()
        arrays = {k: rng.random((16, 16)) for k in g.grids()}
        profiles = profile_group(g, arrays, backend="numpy", repeats=1)
        for p in profiles:
            assert np.isnan(p.stencils_per_s)
            assert np.isnan(p.share)

    def test_report_renders(self, rng):
        g = make_group()
        arrays = {k: rng.random((32, 32)) for k in g.grids()}
        out = format_profile(profile_group(g, arrays, backend="numpy", repeats=1))
        assert "hottest first" in out
        assert "big" in out and "tiny" in out
