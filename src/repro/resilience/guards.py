"""Opt-in runtime guards: cheap invariants checked around kernel calls.

A production solver would rather pay a scan than serve garbage.  The
:class:`Guards` config switches three families of checks between
``"off"`` (default — zero cost), ``"warn"`` (emit a
:class:`GuardWarning`), and ``"raise"`` (raise :class:`GuardViolation`):

* ``nonfinite`` — after a kernel call, scan every output grid for
  NaN/Inf and report the poisoned grid and element count;
* ``invariants`` — dtype and shape of every grid must survive the call
  unchanged (catches a backend scribbling over array metadata);
* ``halo_checksum`` — :class:`~repro.dmem.executor.DistributedKernel`
  sends a CRC32 alongside every halo message and verifies it on
  receipt, catching in-flight payload corruption (the
  ``comm.payload.corrupt`` fault site) the moment it happens.

Guards attach per-kernel (``compile(..., guards=Guards(...))``) or
globally via ``SNOWFLAKE_GUARDS`` (``"warn"``, ``"raise"``, or a
per-check spec like ``"nonfinite=raise,halo_checksum=warn"``).
"""

from __future__ import annotations

import os
import warnings
import zlib
from dataclasses import dataclass, replace

import numpy as np

from .. import telemetry

__all__ = [
    "Guards",
    "GuardViolation",
    "GuardWarning",
    "halo_crc",
]

_SEVERITIES = ("off", "warn", "raise")


class GuardViolation(RuntimeError):
    """A runtime guard configured as ``"raise"`` detected a violation."""


class GuardWarning(UserWarning):
    """A runtime guard configured as ``"warn"`` detected a violation."""


def halo_crc(arr: np.ndarray) -> int:
    """Deterministic payload fingerprint used by halo-checksum guards."""
    return zlib.crc32(np.ascontiguousarray(arr).tobytes())


@dataclass(frozen=True)
class Guards:
    """Severity per check family: ``"off"``, ``"warn"``, or ``"raise"``."""

    nonfinite: str = "off"
    invariants: str = "off"
    halo_checksum: str = "off"

    def __post_init__(self):
        for field in ("nonfinite", "invariants", "halo_checksum"):
            v = getattr(self, field)
            if v not in _SEVERITIES:
                raise ValueError(
                    f"guard {field!r} severity must be one of "
                    f"{_SEVERITIES}, got {v!r}"
                )

    # -- construction ---------------------------------------------------------

    @classmethod
    def from_env(cls) -> "Guards":
        """Build from ``SNOWFLAKE_GUARDS``; all-off when unset.

        ``SNOWFLAKE_GUARDS=warn`` (or ``raise``) switches every family;
        ``SNOWFLAKE_GUARDS=nonfinite=raise,invariants=warn`` is
        per-family.
        """
        raw = os.environ.get("SNOWFLAKE_GUARDS", "").strip()
        if not raw:
            return cls()
        if raw in _SEVERITIES:
            return cls(nonfinite=raw, invariants=raw, halo_checksum=raw)
        g = cls()
        for part in raw.split(","):
            part = part.strip()
            if not part:
                continue
            if "=" not in part:
                raise ValueError(
                    f"bad SNOWFLAKE_GUARDS entry {part!r}: expected "
                    "'check=severity' or a bare severity"
                )
            key, val = (s.strip() for s in part.split("=", 1))
            if key not in ("nonfinite", "invariants", "halo_checksum"):
                raise ValueError(f"unknown guard {key!r} in SNOWFLAKE_GUARDS")
            g = replace(g, **{key: val})
        return g

    def enabled(self) -> bool:
        """Any check switched on?"""
        return (
            self.nonfinite != "off"
            or self.invariants != "off"
            or self.halo_checksum != "off"
        )

    # -- reporting ------------------------------------------------------------

    def report(self, check: str, message: str) -> None:
        """Dispatch a violation of ``check`` per its severity."""
        severity = getattr(self, check)
        if severity == "off":
            return
        telemetry.count(f"guards.trip.{check}")
        telemetry.event("guards.trip", check=check, severity=severity)
        if severity == "warn":
            warnings.warn(GuardWarning(f"[{check}] {message}"), stacklevel=3)
            return
        raise GuardViolation(f"[{check}] {message}")

    # -- the checks -----------------------------------------------------------

    def scan_nonfinite(self, arrays, outputs) -> None:
        """NaN/Inf scan over the output grids of a finished call."""
        if self.nonfinite == "off":
            return
        for g in sorted(outputs):
            a = arrays.get(g)
            if a is None or a.dtype.kind not in "fc":
                continue
            bad = a.size - int(np.isfinite(a).sum())
            if bad:
                self.report(
                    "nonfinite",
                    f"output grid {g!r} contains {bad} non-finite "
                    f"value(s) after kernel call",
                )

    def snapshot_invariants(self, arrays) -> dict | None:
        """Capture (dtype, shape) per grid before a call; ``None`` if off."""
        if self.invariants == "off":
            return None
        return {g: (a.dtype, a.shape) for g, a in arrays.items()}

    def check_invariants(self, before: dict | None, arrays) -> None:
        """Compare post-call grid metadata against the snapshot."""
        if before is None:
            return
        for g, (dt, shape) in before.items():
            a = arrays.get(g)
            if a is None:
                continue
            if a.dtype != dt or a.shape != shape:
                self.report(
                    "invariants",
                    f"grid {g!r} changed across the call: "
                    f"dtype {dt}->{a.dtype}, shape {shape}->{a.shape}",
                )

    def check_halo(self, grid: str, expected_crc: int, block) -> None:
        """Verify a received halo block against the sender's CRC."""
        if self.halo_checksum == "off":
            return
        got = halo_crc(block)
        if got != int(expected_crc):
            self.report(
                "halo_checksum",
                f"halo block for grid {grid!r} failed checksum "
                f"(sent {int(expected_crc):#010x}, received {got:#010x}) — "
                "payload corrupted in flight",
            )
