"""cudasim translation: shim header, launch-grid drivers."""

import numpy as np
import pytest

from repro.backends.cuda_backend import generate_cuda_program
from repro.backends.jit import compile_and_load
from repro.core.components import Component
from repro.core.domains import RectDomain
from repro.core.stencil import Stencil, StencilGroup
from repro.core.weights import WeightArray
from repro.cudasim.translate import shim_header, translation_unit

LAP = Component("u", WeightArray([[0, 1, 0], [1, -4, 1], [0, 1, 0]]))
INTERIOR = RectDomain((1, 1), (-1, -1))


def make_prog(shapes=None, **kw):
    g = StencilGroup([Stencil(LAP, "out", INTERIOR)])
    shapes = shapes or {"u": (10, 10), "out": (10, 10)}
    return generate_cuda_program(g, shapes, np.float64, **kw)


class TestShim:
    def test_cuda_keywords_neutralized(self):
        h = shim_header()
        for macro in ("__global__", "__device__", "__restrict__", "__shared__"):
            assert f"#define {macro}" in h

    def test_builtin_index_variables(self):
        h = shim_header()
        for var in ("gridDim", "blockDim", "blockIdx", "threadIdx"):
            assert var in h

    def test_shim_compiles_standalone(self):
        compile_and_load(shim_header() + "\nint sf_cuda_dummy(void){return 1;}\n")


class TestTranslationUnit:
    def test_kernel_source_verbatim(self):
        prog = make_prog()
        tu = translation_unit(prog, "double")
        assert prog.source in tu

    def test_driver_derives_grid_by_ceil_division(self):
        prog = make_prog()
        tu = translation_unit(prog, "double")
        assert "(gsize[0] + block[0] - 1) / block[0]" in tu

    def test_driver_sweeps_blocks_and_threads(self):
        prog = make_prog()
        tu = translation_unit(prog, "double")
        for loop in ("by < gridDim.y", "bx < gridDim.x",
                     "ty < blockDim.y", "tx < blockDim.x"):
            assert loop in tu

    def test_whole_unit_compiles(self):
        compile_and_load(translation_unit(make_prog(), "double"))

    def test_partial_blocks_guarded_in_kernel(self, rng):
        # 13x9 interior with 32x4 blocks: most threads are out of range;
        # the kernel guard must make them no-ops.
        g = StencilGroup([Stencil(LAP, "out", INTERIOR)])
        u = rng.random((15, 11))
        ref = np.zeros((15, 11))
        g.compile(backend="python")(u=u, out=ref)
        out = np.zeros((15, 11))
        g.compile(backend="cuda-sim", block=(32, 4))(u=u, out=out)
        np.testing.assert_allclose(out, ref)
