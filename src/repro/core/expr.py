"""Expression IR for Snowflake stencil bodies.

A stencil body is an arithmetic expression over *grid reads*.  Reads carry
an affine index map ``idx[d] = scale[d] * i[d] + offset[d]`` applied to the
iteration point ``i`` — the multiplicative part is what lets Snowflake
express restriction and interpolation operators (paper SectionVI contrasts
this with SDSL's additive-only offsets).

Expressions are immutable and hash-consable; ``signature()`` produces a
stable string used as part of the JIT cache key.
"""

from __future__ import annotations

import numbers
from typing import Iterator, Sequence

__all__ = [
    "Expr",
    "Constant",
    "Param",
    "GridRead",
    "BinOp",
    "Neg",
    "as_expr",
    "walk",
    "grids_read",
    "params_used",
]


class Expr:
    """Base class for all stencil expressions.

    Supports the arithmetic operators so DSL users can write
    ``b - Ax`` or ``original + lam * difference`` directly (paper Fig.4).
    """

    __slots__ = ()

    # -- operator sugar -----------------------------------------------------

    def __add__(self, other: "Expr | float") -> "Expr":
        return BinOp("+", self, as_expr(other))

    def __radd__(self, other: "Expr | float") -> "Expr":
        return BinOp("+", as_expr(other), self)

    def __sub__(self, other: "Expr | float") -> "Expr":
        return BinOp("-", self, as_expr(other))

    def __rsub__(self, other: "Expr | float") -> "Expr":
        return BinOp("-", as_expr(other), self)

    def __mul__(self, other: "Expr | float") -> "Expr":
        return BinOp("*", self, as_expr(other))

    def __rmul__(self, other: "Expr | float") -> "Expr":
        return BinOp("*", as_expr(other), self)

    def __truediv__(self, other: "Expr | float") -> "Expr":
        return BinOp("/", self, as_expr(other))

    def __rtruediv__(self, other: "Expr | float") -> "Expr":
        return BinOp("/", as_expr(other), self)

    def __neg__(self) -> "Expr":
        return Neg(self)

    def __pos__(self) -> "Expr":
        return self

    # -- interface ----------------------------------------------------------

    def children(self) -> tuple["Expr", ...]:
        return ()

    def signature(self) -> str:
        raise NotImplementedError

    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        return self.signature()


class Constant(Expr):
    """A numeric literal."""

    __slots__ = ("value",)

    def __init__(self, value: float) -> None:
        if not isinstance(value, numbers.Real):
            raise TypeError(f"Constant requires a real number, got {value!r}")
        object.__setattr__(self, "value", float(value))

    def __setattr__(self, *a):  # immutability
        raise AttributeError("Constant is immutable")

    def __eq__(self, other) -> bool:
        return isinstance(other, Constant) and other.value == self.value

    def __hash__(self) -> int:
        return hash(("Constant", self.value))

    def signature(self) -> str:
        return repr(self.value)


class Param(Expr):
    """A named scalar supplied at call time (e.g. a relaxation weight).

    Params keep compiled callables reusable across runs where only scalar
    knobs change — no recompilation, the value is passed through the FFI.
    """

    __slots__ = ("name",)

    def __init__(self, name: str) -> None:
        if not name.isidentifier():
            raise ValueError(f"Param name must be an identifier: {name!r}")
        object.__setattr__(self, "name", name)

    def __setattr__(self, *a):
        raise AttributeError("Param is immutable")

    def __eq__(self, other) -> bool:
        return isinstance(other, Param) and other.name == self.name

    def __hash__(self) -> int:
        return hash(("Param", self.name))

    def signature(self) -> str:
        return f"param:{self.name}"


class GridRead(Expr):
    """Read ``grid[scale * i + offset]`` at iteration point ``i``.

    ``scale`` defaults to all-ones (plain neighbour access); restriction
    reads use ``scale=2``.  Scales must be positive integers so that the
    dependence analysis stays within the linear-Diophantine fragment.
    """

    __slots__ = ("grid", "offset", "scale")

    def __init__(
        self,
        grid: str,
        offset: Sequence[int],
        scale: Sequence[int] | None = None,
    ) -> None:
        if not grid or not isinstance(grid, str):
            raise TypeError("grid must be a non-empty string")
        off = tuple(int(o) for o in offset)
        if scale is None:
            sc = (1,) * len(off)
        else:
            sc = tuple(int(s) for s in scale)
        if len(sc) != len(off):
            raise ValueError("scale and offset dimensionality differ")
        if any(s <= 0 for s in sc):
            raise ValueError("scales must be positive integers")
        object.__setattr__(self, "grid", grid)
        object.__setattr__(self, "offset", off)
        object.__setattr__(self, "scale", sc)

    def __setattr__(self, *a):
        raise AttributeError("GridRead is immutable")

    @property
    def ndim(self) -> int:
        return len(self.offset)

    def compose(self, outer_scale: Sequence[int], outer_offset: Sequence[int]) -> "GridRead":
        """Index map composition: evaluate this read at point ``S*i + O``.

        ``scale*(S*i + O) + offset  ==  (scale*S)*i + (scale*O + offset)``.
        Used when a weight *expression* sits at a non-zero stencil offset:
        its reads must be re-anchored to the shifted evaluation point.
        """
        new_scale = tuple(s * S for s, S in zip(self.scale, outer_scale))
        new_offset = tuple(
            s * O + o for s, O, o in zip(self.scale, outer_offset, self.offset)
        )
        return GridRead(self.grid, new_offset, new_scale)

    def __eq__(self, other) -> bool:
        return (
            isinstance(other, GridRead)
            and other.grid == self.grid
            and other.offset == self.offset
            and other.scale == self.scale
        )

    def __hash__(self) -> int:
        return hash(("GridRead", self.grid, self.offset, self.scale))

    def signature(self) -> str:
        if all(s == 1 for s in self.scale):
            return f"{self.grid}@{list(self.offset)}"
        return f"{self.grid}@{list(self.scale)}*i+{list(self.offset)}"


_VALID_OPS = ("+", "-", "*", "/")


class BinOp(Expr):
    """Binary arithmetic node."""

    __slots__ = ("op", "lhs", "rhs")

    def __init__(self, op: str, lhs: Expr, rhs: Expr) -> None:
        if op not in _VALID_OPS:
            raise ValueError(f"unsupported operator {op!r}")
        if not isinstance(lhs, Expr) or not isinstance(rhs, Expr):
            raise TypeError("BinOp operands must be Expr")
        object.__setattr__(self, "op", op)
        object.__setattr__(self, "lhs", lhs)
        object.__setattr__(self, "rhs", rhs)

    def __setattr__(self, *a):
        raise AttributeError("BinOp is immutable")

    def children(self) -> tuple[Expr, ...]:
        return (self.lhs, self.rhs)

    def __eq__(self, other) -> bool:
        return (
            isinstance(other, BinOp)
            and other.op == self.op
            and other.lhs == self.lhs
            and other.rhs == self.rhs
        )

    def __hash__(self) -> int:
        return hash(("BinOp", self.op, self.lhs, self.rhs))

    def signature(self) -> str:
        return f"({self.lhs.signature()} {self.op} {self.rhs.signature()})"


class Neg(Expr):
    """Unary negation."""

    __slots__ = ("operand",)

    def __init__(self, operand: Expr) -> None:
        if not isinstance(operand, Expr):
            raise TypeError("Neg operand must be Expr")
        object.__setattr__(self, "operand", operand)

    def __setattr__(self, *a):
        raise AttributeError("Neg is immutable")

    def children(self) -> tuple[Expr, ...]:
        return (self.operand,)

    def __eq__(self, other) -> bool:
        return isinstance(other, Neg) and other.operand == self.operand

    def __hash__(self) -> int:
        return hash(("Neg", self.operand))

    def signature(self) -> str:
        return f"(-{self.operand.signature()})"


def as_expr(value: "Expr | float | int") -> Expr:
    """Coerce numbers to :class:`Constant`; pass expressions through."""
    if isinstance(value, Expr):
        return value
    if isinstance(value, numbers.Real):
        return Constant(float(value))
    raise TypeError(f"cannot interpret {value!r} as a stencil expression")


def walk(expr: Expr) -> Iterator[Expr]:
    """Pre-order traversal of an expression tree."""
    stack = [expr]
    while stack:
        node = stack.pop()
        yield node
        stack.extend(reversed(node.children()))


def grids_read(expr: Expr) -> set[str]:
    """Names of all grids referenced anywhere under ``expr``.

    Both :class:`GridRead` and :class:`~repro.core.components.Component`
    carry a ``grid`` attribute (duck-typed here to avoid a circular
    import), and ``Component.children`` exposes its weight expressions,
    so nested variable-coefficient grids are found too.
    """
    return {n.grid for n in walk(expr) if hasattr(n, "grid")}


def params_used(expr: Expr) -> set[str]:
    """Names of all scalar :class:`Param` nodes under ``expr``."""
    return {n.name for n in walk(expr) if isinstance(n, Param)}
