""":class:`Stencil` and :class:`StencilGroup` — the executable DSL objects.

A ``Stencil`` ties together (paper TableI / Fig.2):

* a body expression (components combined arithmetically),
* an output grid name — which may be one of the input grids, giving the
  *in-place* stencils (GSRB, Chebyshev) that Halide/Pochoir/SDSL cannot
  express,
* a domain (:class:`RectDomain` or :class:`DomainUnion`) over which the
  body is applied, and
* optionally an affine *output map* ``out[S*i + O] = body(i)`` used by
  interpolation-style operators that scatter to a finer grid.

``StencilGroup`` is a sequence of stencils executed back-to-back; the
group is the unit over which cross-stencil dependence analysis finds
parallelism and places barriers.

Both expose ``compile(backend=...)`` returning a cached Python callable —
the paper's JIT micro-compiler entry point.
"""

from __future__ import annotations

from functools import cached_property
from typing import Callable, Iterable, Iterator, Mapping, Sequence

from .domains import DomainUnion, RectDomain, as_domain
from .expr import Expr, as_expr
from .flatten import FlatStencil, flatten_expr

__all__ = ["Stencil", "StencilGroup", "OutputMap"]


class OutputMap:
    """Affine write map ``out[scale * i + offset] = value(i)``."""

    __slots__ = ("scale", "offset")

    def __init__(
        self, scale: Sequence[int] | int = 1, offset: Sequence[int] | int = 0,
        ndim: int | None = None,
    ) -> None:
        if isinstance(scale, int):
            if ndim is None:
                raise ValueError("ndim required for scalar scale")
            scale = (scale,) * ndim
        if isinstance(offset, int):
            if ndim is None:
                raise ValueError("ndim required for scalar offset")
            offset = (offset,) * ndim
        sc = tuple(int(s) for s in scale)
        off = tuple(int(o) for o in offset)
        if len(sc) != len(off):
            raise ValueError("scale/offset dimensionality mismatch")
        if any(s <= 0 for s in sc):
            raise ValueError("output scales must be positive")
        object.__setattr__(self, "scale", sc)
        object.__setattr__(self, "offset", off)

    def __setattr__(self, *a):
        raise AttributeError("OutputMap is immutable")

    @property
    def ndim(self) -> int:
        return len(self.scale)

    def is_identity(self) -> bool:
        return all(s == 1 for s in self.scale) and all(o == 0 for o in self.offset)

    def apply(self, point: Sequence[int]) -> tuple[int, ...]:
        return tuple(s * p + o for s, p, o in zip(self.scale, point, self.offset))

    def signature(self) -> str:
        if self.is_identity():
            return "id"
        return f"{list(self.scale)}*i+{list(self.offset)}"

    def __eq__(self, other) -> bool:
        return (
            isinstance(other, OutputMap)
            and other.scale == self.scale
            and other.offset == self.offset
        )

    def __hash__(self) -> int:
        return hash(("OutputMap", self.scale, self.offset))


class Stencil:
    """Apply ``body`` over ``domain``, writing grid ``output``.

    The constructor accepts both argument orders used in the paper's
    listings — ``Stencil(body, "out", domain)`` and
    ``Stencil("out", body, domain)`` — and normalizes to the former.
    """

    def __init__(
        self,
        body: "Expr | str",
        output: "str | Expr",
        domain: "RectDomain | DomainUnion",
        *,
        output_map: OutputMap | None = None,
        iteration_grid: str | None = None,
        name: str | None = None,
    ) -> None:
        if isinstance(body, str) and isinstance(output, Expr):
            body, output = output, body
        if not isinstance(output, str) or not output:
            raise TypeError("stencil output must be a grid name")
        self.body: Expr = as_expr(body)
        self.output: str = output
        self.domain: DomainUnion = as_domain(domain)
        self.name = name or f"stencil_{output}"
        flat = flatten_expr(self.body, self.domain.ndim)
        if output_map is None:
            output_map = OutputMap((1,) * flat.ndim, (0,) * flat.ndim)
        if output_map.ndim != flat.ndim:
            raise ValueError("output map dimensionality mismatch")
        self.output_map = output_map
        #: grid whose shape the domain's relative indices resolve against.
        #: Defaults to the output grid; operators with scaled output maps
        #: (interpolation) name the grid that *is* their iteration space
        #: so reusable relative domains like ``interior()`` keep meaning
        #: "the interior of the swept grid".
        self.iteration_grid = iteration_grid
        if iteration_grid is not None and not isinstance(iteration_grid, str):
            raise TypeError("iteration_grid must be a grid name")
        self._flat = flat

    @property
    def flat(self) -> FlatStencil:
        """The canonical lowered body (cached at construction)."""
        return self._flat

    def kernel_body(self, optimize: bool | None = None):
        """The :class:`~repro.kernel.ir.KernelBody` every backend
        consumes (cached per instance; ``optimize=None`` follows the
        package toggle)."""
        from ..kernel import body_for  # local import: core <- kernel

        return body_for(self, optimize)[0]

    def opt_report(self):
        """The :class:`~repro.kernel.optimize.OptReport` of the
        optimized kernel body."""
        from ..kernel import body_for  # local import: core <- kernel

        return body_for(self, True)[1]

    @property
    def ndim(self) -> int:
        return self._flat.ndim

    def grids(self) -> set[str]:
        """All grids touched (reads plus the output)."""
        return self._flat.grids() | {self.output}

    def input_grids(self) -> set[str]:
        return self._flat.grids()

    def params(self) -> set[str]:
        return self._flat.params()

    def is_inplace(self) -> bool:
        """Does the stencil read the grid it writes (e.g. GSRB)?"""
        return self.output in self._flat.grids()

    def signature(self) -> str:
        it = f"@{self.iteration_grid}" if self.iteration_grid else ""
        return (
            f"S[{self.output}<{self.output_map.signature()}>{it}"
            f"={self._flat.signature()};{self.domain.signature()}]"
        )

    def __eq__(self, other) -> bool:
        return (
            isinstance(other, Stencil)
            and other.output == self.output
            and other.output_map == self.output_map
            and other.iteration_grid == self.iteration_grid
            and other.domain == self.domain
            and other._flat == self._flat
        )

    def __hash__(self) -> int:
        return hash(self.signature())

    def __repr__(self) -> str:  # pragma: no cover
        return f"Stencil({self.name}: {self.signature()})"

    def compile(
        self,
        backend: str = "numpy",
        shapes: Mapping[str, Sequence[int]] | None = None,
        dtype=None,
        *,
        fallback: Sequence[str] | None = None,
        policy=None,
        **options,
    ) -> Callable:
        """JIT-compile this stencil alone; see :meth:`StencilGroup.compile`."""
        return StencilGroup([self], name=self.name).compile(
            backend=backend, shapes=shapes, dtype=dtype,
            fallback=fallback, policy=policy, **options
        )


class StencilGroup:
    """An ordered sequence of stencils with sequential semantics.

    Grouping exposes cross-stencil parallelism to the analysis engine:
    the compiler may run member stencils concurrently wherever the
    Diophantine dependence test proves non-interference, inserting
    barriers only where required (paper SectionIV-A).
    """

    def __init__(self, stencils: Iterable[Stencil], name: str | None = None) -> None:
        sl = tuple(stencils)
        if not sl:
            raise ValueError("StencilGroup requires at least one stencil")
        if any(not isinstance(s, Stencil) for s in sl):
            raise TypeError("StencilGroup members must be Stencil")
        nd = sl[0].ndim
        if any(s.ndim != nd for s in sl):
            raise ValueError("all stencils in a group must share dimensionality")
        self.stencils = sl
        self.name = name or "group"

    @property
    def ndim(self) -> int:
        return self.stencils[0].ndim

    def __iter__(self) -> Iterator[Stencil]:
        return iter(self.stencils)

    def __len__(self) -> int:
        return len(self.stencils)

    def __getitem__(self, i: int) -> Stencil:
        return self.stencils[i]

    def __add__(self, other: "StencilGroup | Stencil") -> "StencilGroup":
        if isinstance(other, Stencil):
            return StencilGroup(self.stencils + (other,), name=self.name)
        if isinstance(other, StencilGroup):
            return StencilGroup(self.stencils + other.stencils, name=self.name)
        return NotImplemented

    def grids(self) -> set[str]:
        out: set[str] = set()
        for s in self.stencils:
            out |= s.grids()
        return out

    def params(self) -> set[str]:
        out: set[str] = set()
        for s in self.stencils:
            out |= s.params()
        return out

    def signature(self) -> str:
        return "G[" + ";".join(s.signature() for s in self.stencils) + "]"

    def __eq__(self, other) -> bool:
        return isinstance(other, StencilGroup) and other.stencils == self.stencils

    def __hash__(self) -> int:
        return hash(self.signature())

    def __repr__(self) -> str:  # pragma: no cover
        return f"StencilGroup({self.name}, {len(self.stencils)} stencils)"

    def compile(
        self,
        backend: str = "numpy",
        shapes: Mapping[str, Sequence[int]] | None = None,
        dtype=None,
        *,
        fallback: Sequence[str] | None = None,
        policy=None,
        **options,
    ) -> Callable:
        """Compile via the named micro-compiler backend.

        Returns a Python callable ``fn(**grids, **params)`` mutating the
        output grids in place.  When ``shapes`` is omitted the backend
        shape-specializes lazily on first call and re-uses the cached
        kernel for subsequent same-shape calls.

        ``fallback`` names backends tried in order when ``backend``
        fails (broken toolchain, compile timeout, corrupted cache);
        ``policy`` is a full :class:`~repro.resilience.policy.
        ExecutionPolicy` (retry budget, backoff, compile timeout).
        Either one routes through the resilient compile path and
        returns a :class:`~repro.resilience.policy.ResilientKernel`
        that records which backend actually serves.
        """
        from ..backends import get_backend  # local import: avoid cycle

        if fallback is not None or policy is not None:
            from ..resilience.policy import (
                ExecutionPolicy,
                compile_resilient,
            )

            pol = policy or ExecutionPolicy()
            if fallback is not None:
                pol = pol.with_fallback(tuple(fallback))
            return compile_resilient(
                self, backend=backend, shapes=shapes, dtype=dtype,
                policy=pol, **options
            )
        return get_backend(backend).compile(
            self, shapes=shapes, dtype=dtype, **options
        )
