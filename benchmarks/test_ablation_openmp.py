"""Ablations of the OpenMP micro-compiler's optimizations (E8).

SectionIV-A describes three knobs — task-based scheduling with greedy
barriers, arbitrary-dimension tiling, and multicolor reordering.  Each
benchmark here isolates one of them on the VC GSRB smoother so the
report shows what each transformation buys (or costs) on this host.
"""

import pytest

from repro.figures.common import build_case
from repro.tuning import autotune_tile


def _runner(case, backend="openmp", **options):
    run = case.compile(backend, **options)
    run()  # JIT warmup
    return run


def test_multicolor_reordering_on(benchmark, op_size):
    case = build_case("vc_gsrb", op_size)
    benchmark(_runner(case, multicolor=True))


def test_multicolor_reordering_off(benchmark, op_size):
    case = build_case("vc_gsrb", op_size)
    benchmark(_runner(case, multicolor=False))


@pytest.mark.parametrize("tile", [2, 8, 32])
def test_tile_size(benchmark, tile, op_size):
    case = build_case("vc_gsrb", op_size)
    benchmark(_runner(case, tile=tile))
    benchmark.extra_info["tile"] = tile


def test_schedule_greedy(benchmark, op_size):
    case = build_case("vc_gsrb", op_size)
    benchmark(_runner(case, schedule="greedy"))


def test_schedule_serial_barriers(benchmark, op_size):
    """Barrier after every stencil — what the greedy grouping avoids."""
    case = build_case("vc_gsrb", op_size)
    benchmark(_runner(case, schedule="serial"))


def test_schedule_wavefront(benchmark, op_size):
    case = build_case("vc_gsrb", op_size)
    benchmark(_runner(case, schedule="wavefront"))


def test_fusion_off(benchmark, op_size):
    """Residual + error-estimate pair sharing a domain, unfused."""
    case = _fusable_pair(op_size)
    benchmark(_runner(case, backend="c", fuse=False))


def test_fusion_on(benchmark, op_size):
    """Same pair fused into one loop nest (reads u once per point)."""
    case = _fusable_pair(op_size)
    benchmark(_runner(case, backend="c", fuse=True))


def _fusable_pair(n):
    import numpy as np

    from repro.core.components import Component
    from repro.core.domains import RectDomain
    from repro.core.stencil import Stencil, StencilGroup
    from repro.core.weights import SparseArray
    from repro.figures.common import OperatorCase
    from repro.hpgmg.level import Level

    level = Level(n, 3, coefficients="constant")
    rng = np.random.default_rng(5)
    level.grids["x"][level.interior] = rng.random((n,) * 3)
    interior = RectDomain((1, 1, 1), (-1, -1, -1))
    w = {(0, 0, 0): 6.0}
    for d in range(3):
        for s in (-1, 1):
            off = [0, 0, 0]
            off[d] = s
            w[tuple(off)] = -1.0
    lap = Component("x", SparseArray(w))
    blur = Component("x", SparseArray({k: abs(v) / 12 for k, v in w.items()}))
    group = StencilGroup(
        [
            Stencil(lap, "res", interior, name="apply"),
            Stencil(blur, "tmp", interior, name="blur"),
        ]
    )
    return OperatorCase("fusable_pair", level, group, points=n**3)


def test_autotuned_tile(benchmark, op_size):
    """The paper's 'method of tuning tiling sizes' end to end."""
    case = build_case("vc_gsrb", op_size)
    result = autotune_tile(
        case.group, case.arrays(), backend="openmp",
        candidates=(4, 16, 64), repeats=1,
    )
    benchmark(_runner(case, tile=result.best_tile))
    benchmark.extra_info["best_tile"] = result.best_tile
