"""Roofline-attributed benchmark: document shape, regression check."""

import copy
import json

import pytest

from repro.bench import (
    BENCH_KERNELS_SCHEMA,
    check_regression,
    check_sweep_model,
    paper_operators,
    resolve_spec,
    run_bench,
    write_bench_kernels,
)


@pytest.fixture(scope="module")
def doc():
    # numpy-only keeps the module fast and toolchain-independent
    return run_bench(n=8, backends=("numpy",), spec="paper-cpu", calls=1)


class TestOperators:
    def test_three_paper_operators(self):
        ops = paper_operators()
        assert set(ops) == {"cc_7pt", "cc_jacobi", "vc_gsrb"}
        for name, st in ops.items():
            assert st.name == name

    def test_resolve_spec(self):
        assert resolve_spec("paper-cpu").kind == "cpu"
        assert resolve_spec("gpu").kind == "gpu"
        with pytest.raises(ValueError):
            resolve_spec("quantum")


class TestRunBench:
    def test_document_shape(self, doc):
        assert doc["schema"] == BENCH_KERNELS_SCHEMA
        assert doc["size"] == 8
        assert set(doc["operators"]) == {"cc_7pt", "cc_jacobi", "vc_gsrb"}
        assert doc["spec"]["stream_bw"] > 0

    def test_roofline_attribution(self, doc):
        for op, rec in doc["operators"].items():
            assert rec["bytes_per_point"] == rec["paper_bytes_per_point"]
            assert rec["roofline_points_per_s"] > 0
            assert rec["points"] > 0
            t = rec["backends"]["numpy"]
            assert t["points_per_s"] > 0
            assert t["roofline_fraction"] == pytest.approx(
                t["points_per_s"] / rec["roofline_points_per_s"]
            )

    def test_unavailable_backend_is_data_not_crash(self):
        out = run_bench(
            n=8, backends=("no-such-backend",), spec="paper-cpu", calls=1
        )
        for rec in out["operators"].values():
            assert "error" in rec["backends"]["no-such-backend"]

    def test_write_roundtrip(self, doc, tmp_path):
        path = write_bench_kernels(doc, tmp_path / "BENCH_kernels.json")
        assert json.loads(path.read_text()) == json.loads(
            json.dumps(doc)
        )


class TestCheckRegression:
    def test_identical_documents_pass(self, doc):
        assert check_regression(doc, doc) == []

    def test_slowdown_beyond_tolerance_flagged(self, doc):
        slow = copy.deepcopy(doc)
        t = slow["operators"]["cc_7pt"]["backends"]["numpy"]
        t["points_per_s"] *= 0.5
        problems = check_regression(slow, doc, tolerance=0.25)
        assert len(problems) == 1
        assert "cc_7pt/numpy" in problems[0]

    def test_slowdown_within_tolerance_passes(self, doc):
        slow = copy.deepcopy(doc)
        t = slow["operators"]["cc_7pt"]["backends"]["numpy"]
        t["points_per_s"] *= 0.8
        assert check_regression(slow, doc, tolerance=0.25) == []

    def test_speedup_passes(self, doc):
        fast = copy.deepcopy(doc)
        for rec in fast["operators"].values():
            rec["backends"]["numpy"]["points_per_s"] *= 10
        assert check_regression(fast, doc) == []

    def test_missing_coverage_skipped(self, doc):
        partial = copy.deepcopy(doc)
        del partial["operators"]["cc_7pt"]
        partial["operators"]["cc_jacobi"]["backends"]["numpy"] = {
            "error": "CompilerNotFound: no cc"
        }
        assert check_regression(partial, doc) == []


class TestCallsValidation:
    def test_zero_calls_rejected_with_clear_error(self):
        with pytest.raises(ValueError, match="calls must be >= 1"):
            run_bench(n=8, backends=("numpy",), calls=0)

    def test_negative_calls_rejected(self):
        with pytest.raises(ValueError, match="calls must be >= 1"):
            run_bench(n=8, backends=("numpy",), calls=-2)

    def test_time_tile_of_one_rejected(self):
        with pytest.raises(ValueError, match="time_tiles"):
            run_bench(n=8, backends=("numpy",), calls=1, time_tiles=(1,))


@pytest.fixture(scope="module")
def sweep_doc():
    return run_bench(
        n=8, backends=("numpy",), spec="paper-cpu", calls=1,
        time_tiles=(2, 4),
    )


class TestTimeTileSweep:
    def test_sweep_records_per_application_throughput(self, sweep_doc):
        for op, rec in sweep_doc["operators"].items():
            per_k = rec["sweep"]["numpy"]
            assert set(per_k) == {"2", "4"}
            for k, t in per_k.items():
                assert t["points_per_s"] > 0
                assert t["speedup"] > 0
                model = t["model"]
                assert model["k"] == int(k)
                assert model["cache_resident"] is True
                assert model["traffic_reduction"] == pytest.approx(int(k))

    def test_sweep_model_check_passes_on_fresh_doc(self, sweep_doc):
        assert check_sweep_model(sweep_doc) == []

    def test_sweep_model_check_flags_tampering(self, sweep_doc):
        bad = copy.deepcopy(sweep_doc)
        rec = bad["operators"]["cc_7pt"]["sweep"]["numpy"]["2"]
        rec["model"]["traffic_reduction"] = 17.0
        problems = check_sweep_model(bad)
        assert len(problems) == 1
        assert "cc_7pt" in problems[0]

    def test_sweep_regression_gated(self, sweep_doc):
        slow = copy.deepcopy(sweep_doc)
        t = slow["operators"]["vc_gsrb"]["sweep"]["numpy"]["4"]
        t["points_per_s"] *= 0.5
        problems = check_regression(slow, sweep_doc, tolerance=0.25)
        assert len(problems) == 1
        assert "vc_gsrb/numpy[time_tile=4]" in problems[0]

    def test_untiled_doc_has_no_sweep_key(self, doc):
        for rec in doc["operators"].values():
            assert "sweep" not in rec
        assert check_sweep_model(doc) == []
