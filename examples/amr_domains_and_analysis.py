"""Domain unions, dependence DAGs, and group optimizations.

Three smaller Snowflake features on one scenario, an AMR-flavoured
update of two disjoint refined patches inside a coarse background grid:

1. **DomainUnion** — one stencil applied over a union of disjoint boxes
   (the paper lists "unions of rectangular domains (used in adaptive
   mesh refinement)" as a first-class language feature);
2. **Diophantine scheduling** — the dependence DAG proves the two patch
   updates independent, so the greedy scheduler runs them barrier-free,
   while a reader of their output forces a barrier;
3. **Optimizations** — dead-stencil elimination and fusion marking from
   the analysis layer (the paper's SectionVII items, implemented).

Run:  python examples/amr_domains_and_analysis.py
"""

import numpy as np

from repro import Component, RectDomain, Stencil, StencilGroup, WeightArray
from repro.analysis import (
    build_dag,
    domains_disjoint,
    eliminate_dead_stencils,
    fusion_candidates,
    plan,
)

SHAPE = (128, 128)

# -- two refined patches inside one grid -------------------------------------
patch_a = RectDomain((8, 8), (40, 40))
patch_b = RectDomain((60, 60), (120, 120))
patches = patch_a + patch_b  # DomainUnion via `+`, as in the paper

print("patches provably disjoint:",
      domains_disjoint(patch_a, patch_b, SHAPE))

lap = Component("u", WeightArray([[0, 1, 0], [1, -4, 1], [0, 1, 0]]))
smooth = Component("u", WeightArray([[0, 0.25, 0], [0.25, 0, 0.25],
                                     [0, 0.25, 0]]))

update_patches = Stencil(smooth, "v", patches, name="update_patches")
edge_detect = Stencil(lap, "edges", patch_a, name="edges_a")
reader = Stencil(Component("v", WeightArray([[1]])), "copy",
                 RectDomain((8, 8), (40, 40)), name="copy_v")
never_read = Stencil(lap, "scratch", patch_b, name="dead_scratch")

group = StencilGroup([update_patches, edge_detect, never_read, reader],
                     name="amr")
shapes = {g: SHAPE for g in group.grids()}

# -- scheduling ----------------------------------------------------------------
exec_plan = plan(group, shapes)
print(f"\ngreedy plan ({exec_plan.n_barriers} barrier(s)):")
print(exec_plan.describe())

dag = build_dag(group, shapes)
print("dependence edges:",
      [(u, v, sorted(d["kinds"])) for u, v, d in dag.edges(data=True)])

# -- dead-stencil elimination ----------------------------------------------------
live = eliminate_dead_stencils(group, shapes, live_grids={"v", "edges", "copy"})
print(f"\ndead-stencil elimination: {len(group)} -> {len(live)} stencils "
      f"(dropped {[s.name for s in group if s not in live.stencils]})")

# -- fusion marking ----------------------------------------------------------------
pair_group = StencilGroup(
    [
        Stencil(lap, "a1", patch_a, name="p1"),
        Stencil(smooth, "a2", patch_a, name="p2"),
    ]
)
cands = fusion_candidates(pair_group, {g: SHAPE for g in pair_group.grids()})
print("fusable adjacent pairs:", [(c.first, c.second) for c in cands])

# -- and of course it runs -------------------------------------------------------
rng = np.random.default_rng(0)
arrays = {g: np.zeros(SHAPE) for g in live.grids()}
arrays["u"] = rng.random(SHAPE)
kernel = live.compile(backend="c")
kernel(**arrays)
print("\npatch update ran; v nonzero cells:",
      int(np.count_nonzero(arrays['v'])),
      "=", patches.npoints(SHAPE), "expected")
