"""Interpreters for :class:`~repro.kernel.ir.KernelBody`.

Two granularities, matching the two interpreting backends:

* :func:`eval_point` — scalar evaluation at one iteration point (the
  python reference backend).  With Python floats the arithmetic is the
  same IEEE-754 double sequence the compiled backends emit, so the
  reference stays the bitwise oracle for float64;
* :func:`eval_rect` — vectorized evaluation over a whole domain box,
  where each load materializes as a numpy strided view (the numpy
  backend).  Because each let-binding is evaluated once, a grid read
  shared by many terms is fetched once per sweep instead of per term.

Both take a ``load`` callback mapping a :class:`~repro.kernel.ir.KLoad`
to its value, so this module knows nothing about arrays, snapshots or
domain resolution — the backends own indexing.
"""

from __future__ import annotations

from typing import Callable, Mapping

import numpy as np

from .ir import (
    KAdd,
    KConst,
    KDiv,
    KExpr,
    KFma,
    KLoad,
    KMul,
    KParam,
    KRef,
    KernelBody,
)

__all__ = ["eval_expr", "eval_scalar_lets", "eval_point", "eval_rect"]


def eval_expr(
    expr: KExpr,
    load: "Callable[[KLoad], object] | None",
    params: Mapping[str, float],
    env: Mapping[str, object],
):
    """Evaluate one expression; ``env`` holds bound let values."""
    if isinstance(expr, KConst):
        return expr.value
    if isinstance(expr, KParam):
        return params[expr.name]
    if isinstance(expr, KRef):
        return env[expr.name]
    if isinstance(expr, KLoad):
        if load is None:
            raise ValueError("expression contains a load but no loader given")
        return load(expr)
    if isinstance(expr, KAdd):
        return eval_expr(expr.lhs, load, params, env) + eval_expr(
            expr.rhs, load, params, env
        )
    if isinstance(expr, KMul):
        return eval_expr(expr.lhs, load, params, env) * eval_expr(
            expr.rhs, load, params, env
        )
    if isinstance(expr, KDiv):
        return eval_expr(expr.lhs, load, params, env) / eval_expr(
            expr.rhs, load, params, env
        )
    if isinstance(expr, KFma):
        # Two separately-rounded ops — exactly the `(a * b + c)` the
        # compiled backends emit, never a fused hardware FMA.
        return eval_expr(expr.a, load, params, env) * eval_expr(
            expr.b, load, params, env
        ) + eval_expr(expr.c, load, params, env)
    raise TypeError(f"cannot evaluate {type(expr).__name__}")


def eval_scalar_lets(
    body: KernelBody, params: Mapping[str, float]
) -> dict[str, float]:
    """Evaluate the depth-0 bindings once (the per-sweep prelude)."""
    env: dict[str, float] = {}
    for let in body.scalar_lets():
        env[let.name] = eval_expr(let.expr, None, params, env)
    return env


def eval_point(
    body: KernelBody,
    load: Callable[[KLoad], float],
    params: Mapping[str, float],
    scalar_env: Mapping[str, float] | None = None,
) -> float:
    """Scalar value of the body at one iteration point.

    Pass the result of :func:`eval_scalar_lets` as ``scalar_env`` to
    amortize the hoisted bindings across the sweep.
    """
    env: dict = (
        dict(scalar_env) if scalar_env is not None
        else dict(eval_scalar_lets(body, params))
    )
    for let in body.inner_lets():
        env[let.name] = eval_expr(let.expr, load, params, env)
    return eval_expr(body.result, load, params, env)


def eval_rect(
    body: KernelBody,
    load: Callable[[KLoad], np.ndarray],
    params: Mapping[str, float],
    shape: tuple[int, ...],
    dtype,
    scalar_env: Mapping[str, float] | None = None,
) -> np.ndarray:
    """Vectorized body over one domain box.

    ``load`` must return an array of ``shape`` (a strided view is
    fine).  The result is always a *fresh* array of ``shape``/``dtype``
    — never a view of an input — so callers may assign it onto an
    output view that aliases a source grid.
    """
    shape = tuple(int(x) for x in shape)
    env: dict = (
        dict(scalar_env) if scalar_env is not None
        else dict(eval_scalar_lets(body, params))
    )
    for let in body.inner_lets():
        env[let.name] = eval_expr(let.expr, load, params, env)
    val = eval_expr(body.result, load, params, env)
    if isinstance(val, np.ndarray) and val.shape == shape:
        return val.astype(dtype, copy=True)
    return np.full(shape, val, dtype=dtype)
