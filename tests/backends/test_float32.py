"""float32 support across every backend.

The compiled micro-compilers specialize on dtype (``float`` vs
``double`` codegen); numpy/python follow the arrays.  Single precision
matters for GPU-flavoured targets, so the simulators are covered too.
"""

import numpy as np
import pytest

from _helpers import ALL_BACKENDS, run_group
from repro.core.components import Component
from repro.core.domains import RectDomain
from repro.core.stencil import Stencil, StencilGroup
from repro.core.weights import WeightArray
from repro.hpgmg.operators import smooth_group, vc_laplacian

INTERIOR = RectDomain((1, 1), (-1, -1))
LAP = Component("u", WeightArray([[0, 1, 0], [1, -4, 1], [0, 1, 0]]))


@pytest.mark.parametrize("backend", ALL_BACKENDS)
def test_laplacian_float32(backend, rng):
    u64 = rng.random((14, 14))
    u32 = u64.astype(np.float32)
    s = Stencil(LAP, "out", INTERIOR)
    got = run_group(
        s, {"u": u32, "out": np.zeros((14, 14), np.float32)}, backend=backend
    )["out"]
    ref = run_group(
        s, {"u": u64, "out": np.zeros((14, 14))}, backend="python"
    )["out"]
    np.testing.assert_allclose(got, ref, rtol=2e-5, atol=1e-6)
    assert got.dtype == np.float32


@pytest.mark.parametrize("backend", ["c", "openmp", "opencl-sim", "cuda-sim"])
def test_gsrb_smoother_float32(backend, rng):
    group = smooth_group(2, vc_laplacian(2, 1 / 12), lam="lam")
    shape = (14, 14)
    base64 = {g: rng.random(shape) for g in group.grids()}
    base64["lam"] = 0.01 + 0.001 * rng.random(shape)
    base32 = {g: a.astype(np.float32) for g, a in base64.items()}

    got = run_group(group, base32, backend=backend)["x"]
    ref = run_group(group, base64, backend="python")["x"]
    np.testing.assert_allclose(got, ref, rtol=5e-4, atol=1e-4)


def test_float32_kernel_source_uses_float(rng):
    from repro.backends.c_backend import generate_c_source

    g = StencilGroup([Stencil(LAP, "out", INTERIOR)])
    src = generate_c_source(g, {"u": (8, 8), "out": (8, 8)}, np.float32)
    assert "float* restrict" in src
    assert "double* restrict" not in src


def test_float32_and_float64_specializations_coexist(rng):
    s = Stencil(LAP, "out", INTERIOR)
    k = s.compile(backend="c")
    u64, o64 = rng.random((8, 8)), np.zeros((8, 8))
    u32 = u64.astype(np.float32)
    o32 = np.zeros((8, 8), np.float32)
    k(u=u64, out=o64)
    k(u=u32, out=o32)
    assert k.specializations == 2
    np.testing.assert_allclose(o32, o64, rtol=2e-5, atol=1e-6)
