"""Persistent tuning cache — schema ``snowflake-tune/1``.

A search winner is stored per ``(tune_tag, machine fingerprint)``:

* ``tune_tag`` identifies *what is being tuned* — the
  :func:`repro.backends.jit.source_tag` of the group's baseline C
  rendering (default :class:`~repro.schedule.ScheduleOptions`), which
  keys on the stencil definitions, shapes, dtype **and** the active C
  compiler, exactly like the JIT artifact cache;
* the machine fingerprint identifies *where it was measured* — a
  winner tuned on one machine must not silently steer another.

Files live in :func:`repro.backends.jit.cache_dir` (honouring
``SNOWFLAKE_CACHE_DIR``) as ``sf_tune_<tag>.<fingerprint>.json``.
:func:`tuned_options` is the transparent-reload hook
:func:`repro.schedule.schedule_for` calls when a caller expresses no
schedule preference; every failure mode here degrades to ``None`` —
tuning must never break compilation.
"""

from __future__ import annotations

import hashlib
import json
import os
import platform
import threading
import time
from typing import Mapping

import numpy as np

from ..core.stencil import StencilGroup
from ..schedule.options import ScheduleOptions

__all__ = [
    "TUNE_SCHEMA",
    "machine_fingerprint",
    "tune_tag",
    "winner_path",
    "save_winner",
    "load_winner",
    "tuned_options",
    "options_from_dict",
]

#: schema tag stamped into every cache file (versioned like
#: ``snowflake-stats/1`` / ``snowflake-events/1``)
TUNE_SCHEMA = "snowflake-tune/1"

_MEMO: dict = {}
_MEMO_LOCK = threading.Lock()


def machine_fingerprint() -> str:
    """Short stable fingerprint of the measuring machine + toolchain."""
    cc = os.environ.get("SNOWFLAKE_CC", "gcc")
    raw = repr(
        (platform.system(), platform.machine(), os.cpu_count(), cc)
    )
    return hashlib.sha256(raw.encode()).hexdigest()[:16]


def tune_tag(
    group: StencilGroup, shapes: Mapping[str, tuple[int, ...]]
) -> str:
    """Identity of the tuned program: source tag of the baseline render.

    Rendering is pure Python (no compiler invoked), so the tag is
    available even where the C toolchain is not.
    """
    from ..backends.c_backend import generate_c_source
    from ..backends.jit import source_tag

    norm = {g: tuple(int(x) for x in s) for g, s in shapes.items()}
    source = generate_c_source(
        group, norm, np.float64, schedule=ScheduleOptions()
    )
    return source_tag(source)


def winner_path(
    group: StencilGroup, shapes: Mapping[str, tuple[int, ...]]
):
    """Cache-file path for this group/shapes on this machine."""
    from ..backends.jit import cache_dir

    tag = tune_tag(group, shapes)
    return cache_dir() / f"sf_tune_{tag}.{machine_fingerprint()}.json"


def options_from_dict(d: Mapping) -> ScheduleOptions:
    """Rebuild a :class:`ScheduleOptions` from its ``to_dict`` form."""
    block = d.get("block")
    return ScheduleOptions(
        policy=d.get("policy", "greedy"),
        fuse=bool(d.get("fuse", False)),
        multicolor=bool(d.get("multicolor", True)),
        tile=d.get("tile"),
        block=tuple(block) if block is not None else None,
        time_tile=int(d.get("time_tile", 1)),
        unroll=d.get("unroll"),
    )


def save_winner(
    group: StencilGroup,
    shapes: Mapping[str, tuple[int, ...]],
    options: ScheduleOptions,
    *,
    backend: str,
    measured_s: float,
    predicted_s: float | None = None,
    strategy: str = "",
    trials: int = 0,
) -> str:
    """Persist a search winner; returns the file path written."""
    norm = {g: tuple(int(x) for x in s) for g, s in shapes.items()}
    path = winner_path(group, norm)
    doc = {
        "schema": TUNE_SCHEMA,
        "created": round(time.time(), 3),
        "group": group.name,
        "tune_tag": tune_tag(group, norm),
        "fingerprint": machine_fingerprint(),
        "backend": backend,
        "shapes": {g: list(s) for g, s in sorted(norm.items())},
        "options": options.to_dict(),
        "measured_s": measured_s,
        "predicted_s": predicted_s,
        "strategy": strategy,
        "trials": trials,
    }
    tmp = path.with_suffix(".tmp")
    tmp.write_text(json.dumps(doc, indent=2, sort_keys=True) + "\n")
    os.replace(tmp, path)
    with _MEMO_LOCK:
        _MEMO.clear()  # a fresh winner must be visible in-process
    return str(path)


def load_winner(
    group: StencilGroup, shapes: Mapping[str, tuple[int, ...]]
) -> dict | None:
    """Load and validate this group/shapes' winner record, or ``None``."""
    try:
        path = winner_path(group, shapes)
        if not path.exists():
            return None
        doc = json.loads(path.read_text())
    except Exception:
        return None
    if doc.get("schema") != TUNE_SCHEMA:
        return None
    if doc.get("fingerprint") != machine_fingerprint():
        return None
    if not isinstance(doc.get("options"), dict):
        return None
    return doc


def tuned_options(
    group: StencilGroup, shapes: Mapping[str, tuple[int, ...]]
) -> ScheduleOptions | None:
    """The persisted winner's options for transparent reload, or ``None``.

    ``time_tile`` is stripped back to 1: a time-tiled kernel performs
    ``k`` group applications per call, so silently reloading it would
    change call semantics, not just speed.  Winners are memoized per
    (group signature, shapes) so the hot compile path touches the disk
    once.
    """
    norm = {g: tuple(int(x) for x in s) for g, s in shapes.items()}
    key = (group.signature(), tuple(sorted(norm.items())))
    with _MEMO_LOCK:
        if key in _MEMO:
            return _MEMO[key]
    doc = load_winner(group, norm)
    opts: ScheduleOptions | None = None
    if doc is not None:
        try:
            opts = options_from_dict(doc["options"])
            if opts.time_tile != 1:
                from dataclasses import replace

                opts = replace(opts, time_tile=1)
        except Exception:
            opts = None
    with _MEMO_LOCK:
        _MEMO[key] = opts
    return opts
