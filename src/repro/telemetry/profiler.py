"""Always-on sampling self-profiler with a measured overhead budget.

A daemon thread wakes every ``interval`` seconds and reads the top of
every thread's open-span stack (:func:`repro.telemetry.tracing
.open_stacks`), attributing wall time to the existing span hierarchy —
compile vs. codegen vs. sweep vs. halo — without instrumenting anything
new: the spans the tracer already opens *are* the attribution.

The profiler's pitch is that it is **provably cheap**:

* the sampler measures its own duty cycle (time spent sampling / wall
  time) and reports it (:func:`overhead`);
* when the duty cycle exceeds the configured ``budget`` the interval
  doubles (bounded by :data:`MAX_INTERVAL`), so the overhead converges
  under the budget instead of growing with thread count — the profiler
  throttles itself, the workload never waits on it;
* span bookkeeping on the workload threads costs one tuple append/pop
  per span (the tracer maintains stacks whenever
  ``tracing.stacks_wanted`` is set), and nothing at all when the
  profiler is off.

Surfaces: ``python -m repro top`` (aggregate hot-path table),
:func:`render_top`, OpenMetrics families
``snowflake_profile_samples_total{span=,cat=}`` /
``snowflake_profile_overhead_ratio`` via the exporter, and
:func:`export_chrome_trace` (sample instants on the sampled threads'
tracks, loadable in Perfetto next to a span trace).

Activation: :func:`start` (idempotent), ``profile()`` as a context
manager, or ``SNOWFLAKE_PROFILE=1`` in the environment (checked once
at package import).
"""

from __future__ import annotations

import os
import threading
import time
from collections import Counter
from contextlib import contextmanager

from . import tracing

__all__ = [
    "DEFAULT_INTERVAL",
    "DEFAULT_BUDGET",
    "MAX_INTERVAL",
    "SAMPLE_TRACE_CAPACITY",
    "start",
    "stop",
    "active",
    "profile",
    "snapshot",
    "overhead",
    "reset",
    "render_top",
    "export_chrome_trace",
    "maybe_start_from_env",
]

#: default sampling period, seconds (200 Hz)
DEFAULT_INTERVAL = 0.005

#: default overhead budget: sampler duty cycle must stay below this
#: fraction of wall time, or the interval backs off
DEFAULT_BUDGET = 0.02

#: adaptive back-off never slows sampling below this period
MAX_INTERVAL = 0.25

#: bounded raw-sample buffer for the Chrome-trace export
SAMPLE_TRACE_CAPACITY = 20_000

_lock = threading.Lock()
_thread: threading.Thread | None = None
_stop_flag = threading.Event()

_interval = DEFAULT_INTERVAL
_budget = DEFAULT_BUDGET
_samples: Counter = Counter()  # (span name, cat) -> samples
_idle_samples = 0
_ticks = 0
_busy_s = 0.0  # time spent inside the sampling body
_wall_s = 0.0  # wall time covered while running
_backoffs = 0
_raw: list[tuple[float, int, str, str]] = []  # (ts_us, tid, name, cat)


def _sample_once() -> None:
    global _idle_samples
    now_us = tracing._now_us()
    hit = False
    for tid, stack in tracing.open_stacks():
        try:
            name, _sid, cat = stack[-1]
        except IndexError:
            continue  # thread idle (no open span)
        hit = True
        with _lock:
            _samples[(name, cat)] += 1
            if len(_raw) < SAMPLE_TRACE_CAPACITY:
                _raw.append((now_us, tid, name, cat))
    if not hit:
        with _lock:
            _idle_samples += 1


def _loop() -> None:
    global _interval, _ticks, _busy_s, _wall_s, _backoffs
    t_last = time.perf_counter()
    while not _stop_flag.wait(_interval):
        t0 = time.perf_counter()
        _sample_once()
        t1 = time.perf_counter()
        with _lock:
            _ticks += 1
            _busy_s += t1 - t0
            _wall_s += t1 - t_last
            # Overhead governor: stay inside the budget by slowing
            # down, creep back toward the requested rate when cheap.
            if _wall_s > 0 and _ticks % 16 == 0:
                duty = _busy_s / _wall_s
                if duty > _budget and _interval < MAX_INTERVAL:
                    _interval = min(_interval * 2.0, MAX_INTERVAL)
                    _backoffs += 1
                elif duty < _budget / 4 and _interval > DEFAULT_INTERVAL:
                    _interval = max(_interval / 2.0, DEFAULT_INTERVAL)
        t_last = t1


def start(
    interval: float = DEFAULT_INTERVAL, budget: float = DEFAULT_BUDGET
) -> None:
    """Start (or retune) the sampler; idempotent.

    ``interval`` is the requested sampling period; ``budget`` the duty-
    cycle ceiling the governor enforces (fraction of wall time).
    """
    global _thread, _interval, _budget
    if interval <= 0 or not (0 < budget <= 1):
        raise ValueError(
            f"need interval > 0 and 0 < budget <= 1, "
            f"got {interval!r}/{budget!r}"
        )
    with _lock:
        _interval = float(interval)
        _budget = float(budget)
        if _thread is not None and _thread.is_alive():
            return
        _stop_flag.clear()
        tracing.stacks_wanted = True
        _thread = threading.Thread(
            target=_loop, name="snowflake-profiler", daemon=True
        )
        _thread.start()


def stop() -> None:
    """Stop the sampler thread (aggregates are kept until :func:`reset`)."""
    global _thread
    with _lock:
        th = _thread
        _thread = None
    if th is None:
        return
    _stop_flag.set()
    th.join(timeout=5)
    tracing.stacks_wanted = tracing.active()  # sessions may still need stacks


def active() -> bool:
    return _thread is not None and _thread.is_alive()


@contextmanager
def profile(
    interval: float = DEFAULT_INTERVAL, budget: float = DEFAULT_BUDGET
):
    """Profile the block: fresh aggregates, sampler running throughout."""
    reset()
    start(interval, budget)
    try:
        yield
    finally:
        stop()


def overhead() -> float:
    """Measured sampler duty cycle so far (0.0 before any tick)."""
    with _lock:
        return (_busy_s / _wall_s) if _wall_s > 0 else 0.0


def snapshot() -> dict:
    """Aggregate view: where did the sampled wall time go?

    ``spans`` maps span name -> ``{cat, samples, fraction}`` (fraction
    of non-idle samples); plus the governor's state — ``interval_s``
    (current, post-adaptation), ``duty_cycle``, ``budget``,
    ``within_budget``, ``backoffs``.
    """
    with _lock:
        samples = dict(_samples)
        idle = _idle_samples
        ticks = _ticks
        duty = (_busy_s / _wall_s) if _wall_s > 0 else 0.0
        interval = _interval
        budget = _budget
        backoffs = _backoffs
    total = sum(samples.values())
    spans = {
        name: {
            "cat": cat,
            "samples": n,
            "fraction": (n / total) if total else 0.0,
        }
        for (name, cat), n in samples.items()
    }
    return {
        "samples_total": total,
        "idle_samples": idle,
        "ticks": ticks,
        "spans": spans,
        "interval_s": interval,
        "duty_cycle": duty,
        "budget": budget,
        "within_budget": duty <= budget,
        "backoffs": backoffs,
    }


def reset() -> None:
    """Zero every aggregate (test isolation / fresh profile window)."""
    global _idle_samples, _ticks, _busy_s, _wall_s, _backoffs
    with _lock:
        _samples.clear()
        _raw.clear()
        _idle_samples = 0
        _ticks = 0
        _busy_s = 0.0
        _wall_s = 0.0
        _backoffs = 0


def render_top(snap: dict | None = None, limit: int = 20) -> str:
    """The ``repro top`` table: hottest spans by sample count."""
    from ..util.tables import format_table

    if snap is None:
        snap = snapshot()
    lines = []
    spans = sorted(
        snap["spans"].items(), key=lambda kv: -kv[1]["samples"]
    )[:limit]
    if spans:
        rows = [
            [name, rec["cat"], rec["samples"],
             f"{rec['fraction'] * 100:.1f}%"]
            for name, rec in spans
        ]
        lines.append(format_table(
            ["span", "subsystem", "samples", "share"],
            rows, title="hot paths (sampled)",
        ))
    else:
        lines.append("(no samples — nothing ran under an open span)")
    lines.append(
        f"sampler: {snap['samples_total']} attributed + "
        f"{snap['idle_samples']} idle samples over {snap['ticks']} ticks, "
        f"interval {snap['interval_s'] * 1e3:.1f} ms, "
        f"overhead {snap['duty_cycle'] * 100:.2f}% "
        f"(budget {snap['budget'] * 100:.1f}%, "
        f"{'within' if snap['within_budget'] else 'OVER'} budget, "
        f"{snap['backoffs']} backoff(s))"
    )
    return "\n\n".join(lines)


def export_chrome_trace(path=None) -> dict:
    """Export the raw samples as a Chrome trace-event document.

    Each sample becomes an instant event (``ph="i"``, cat
    ``profile``) on the sampled thread's track, so the file overlays
    directly on a span trace in Perfetto.  Valid per
    :func:`repro.telemetry.tracing.validate_chrome_trace`.
    """
    import json

    from .. import __version__
    from ..util.artifacts import artifact_path
    from .tracing import TRACE_SCHEMA

    with _lock:
        raw = list(_raw)
    pid = os.getpid()
    evs = [
        {
            "name": f"sample:{name}",
            "cat": "profile",
            "ph": "i",
            "s": "t",
            "ts": round(ts, 3),
            "pid": pid,
            "tid": tid,
            "args": {"span": name, "subsystem": cat},
        }
        for ts, tid, name, cat in raw
    ]
    doc = {
        "traceEvents": evs,
        "displayTimeUnit": "ms",
        "otherData": {
            "schema": TRACE_SCHEMA,
            "version": __version__,
            "unix_time": time.time(),
            "dropped_events": 0,
            "profile": snapshot(),
        },
    }
    if path is not None:
        artifact_path(path).write_text(json.dumps(doc, indent=1) + "\n")
    return doc


def maybe_start_from_env() -> bool:
    """Start the sampler when ``SNOWFLAKE_PROFILE`` asks for it.

    ``SNOWFLAKE_PROFILE=1`` (or any truthy value) starts with defaults;
    a float value sets the interval in milliseconds
    (``SNOWFLAKE_PROFILE=2.5`` → 2.5 ms).  Returns whether it started.
    """
    raw = os.environ.get("SNOWFLAKE_PROFILE", "").strip().lower()
    if not raw or raw in ("0", "off", "false", "no"):
        return False
    interval = DEFAULT_INTERVAL
    try:
        ms = float(raw)
        if ms > 0 and raw not in ("1", "true", "on", "yes"):
            interval = ms / 1e3
    except ValueError:
        pass
    start(interval=interval)
    return True
