"""Pipeline telemetry: counters, histograms, traces, events, profiler.

"You cannot claim a hot path got faster without counters and traces" —
this package is the observability layer under the repo's measurement
discipline.  Every stage of the compile/execute pipeline reports here:

* frontend passes (``frontend.pass.*`` timers, stencils eliminated),
* the JIT (cache hit/miss/quarantine, compiler wall time, lock waits),
* every backend's kernel invocations (calls, seconds, points/s, and
  per-call latency histograms),
* the resilience layer (fallback activations, retries, guard trips,
  injected faults fired, backoff delays),
* the simulated distributed fabric (messages, bytes, barriers,
  exchange wall time, halo round-trip latency, retransmits).

Five collection surfaces (see ``docs/OBSERVABILITY.md`` for the full
map and the name-stability contract):

* the **registry** (:mod:`repro.telemetry.registry`) — aggregate
  counters/timers/kernel stats, controlled with
  ``SNOWFLAKE_TELEMETRY=off|counters|events|trace`` (default
  ``counters``; ``off`` reduces every hook to one cached string
  compare).  Read with :func:`snapshot` (schema ``snowflake-stats/1``),
  export the perf trajectory with :func:`export_bench_json`
  (→ ``BENCH_pipeline.json``), render with ``python -m repro stats``;
* **latency histograms** (:mod:`repro.telemetry.metrics`) — fixed
  log-scale buckets behind every timer plus the labelled
  ``kernel.call`` / ``dmem.halo.rtt`` seams; lock-free per-thread
  shards, p50/p95/p99 on read.  The same module renders everything as
  **OpenMetrics** text (:func:`render_openmetrics`) and serves it over
  stdlib HTTP (``python -m repro serve-metrics``);
* the **structured event log** (:mod:`repro.telemetry.events`) —
  one-line ``snowflake-events/1`` JSON records for every pipeline
  event (fallbacks, guard trips, quarantines, rank crashes,
  checkpoint/restore, time-tile refusals), ring-buffered, span-
  correlated, sinkable to file/stderr (``SNOWFLAKE_EVENTS_SINK``);
* the **span tracer** (:mod:`repro.telemetry.tracing`) — hierarchical
  timed spans across every subsystem, exported as Chrome trace-event
  JSON for Perfetto (``python -m repro trace``).  Records inside a
  ``tracing.session()`` block or whenever ``SNOWFLAKE_TELEMETRY=trace``;
* the **self-profiler** (:mod:`repro.telemetry.profiler`) — a sampling
  thread attributing wall time to the open span hierarchy under a
  measured, self-enforcing overhead budget (``python -m repro top``,
  ``SNOWFLAKE_PROFILE=1``).
"""

from . import events, metrics, profiler, tracing
from .metrics import (
    observe,
    render_openmetrics,
    serve_metrics,
    snapshot_histograms,
    validate_openmetrics,
)
from .registry import (
    BENCH_SCHEMA,
    MODES,
    STATS_SCHEMA,
    TRACE_CAPACITY,
    count,
    enabled,
    event,
    events_enabled,
    export_bench_json,
    kernel_call,
    mode,
    record_time,
    reset,
    set_mode,
    snapshot,
    timed,
)
from .report import format_stats, render_stats

__all__ = [
    "BENCH_SCHEMA",
    "MODES",
    "STATS_SCHEMA",
    "TRACE_CAPACITY",
    "count",
    "enabled",
    "event",
    "events",
    "events_enabled",
    "export_bench_json",
    "format_stats",
    "kernel_call",
    "metrics",
    "mode",
    "observe",
    "profiler",
    "record_time",
    "render_openmetrics",
    "render_stats",
    "reset",
    "serve_metrics",
    "set_mode",
    "snapshot",
    "snapshot_histograms",
    "timed",
    "tracing",
    "validate_openmetrics",
]

# Always-on profiling is an env opt-in: SNOWFLAKE_PROFILE=1 starts the
# sampler with the whole pipeline instrumented, budget-gated.
profiler.maybe_start_from_env()
