"""Dead-stencil elimination, reordering, fusion marking."""

import numpy as np
import pytest

from repro.analysis.optimize import (
    eliminate_dead_stencils,
    fusion_candidates,
    reorder_for_phases,
)
from repro.analysis.dag import greedy_phases
from repro.core.components import Component
from repro.core.domains import RectDomain
from repro.core.stencil import Stencil, StencilGroup
from repro.core.weights import WeightArray

INTERIOR = RectDomain((1, 1), (-1, -1))
LAP5 = Component("u", WeightArray([[0, 1, 0], [1, -4, 1], [0, 1, 0]]))


def shapes_of(group, shape=(10, 10)):
    return {g: shape for g in group.grids()}


class TestDeadStencilElimination:
    def test_unobserved_write_dropped(self):
        dead = Stencil(LAP5, "scratch", INTERIOR, name="dead")
        live = Stencil(LAP5, "out", INTERIOR, name="live")
        g = StencilGroup([dead, live])
        kept = eliminate_dead_stencils(g, shapes_of(g), live_grids={"out"})
        assert [s.name for s in kept] == ["live"]

    def test_transitively_live_kept(self):
        s1 = Stencil(LAP5, "a", INTERIOR, name="s1")
        s2 = Stencil(Component("a", WeightArray([[1]])), "out", INTERIOR, name="s2")
        g = StencilGroup([s1, s2])
        kept = eliminate_dead_stencils(g, shapes_of(g), live_grids={"out"})
        assert len(kept) == 2

    def test_overwritten_before_read_still_kept_conservatively(self):
        # s1 writes a, s2 overwrites a, s3 reads a: RAW edges keep both
        # (we do not kill stencils on WAW shadows — conservative).
        s1 = Stencil(LAP5, "a", INTERIOR, name="s1")
        s2 = Stencil(Component("v", WeightArray([[1]])), "a", INTERIOR, name="s2")
        s3 = Stencil(Component("a", WeightArray([[1]])), "out", INTERIOR, name="s3")
        g = StencilGroup([s1, s2, s3])
        kept = eliminate_dead_stencils(g, shapes_of(g), live_grids={"out"})
        assert len(kept) == 3

    def test_default_live_set_keeps_everything(self):
        s = Stencil(LAP5, "a", INTERIOR)
        g = StencilGroup([s])
        assert len(eliminate_dead_stencils(g, shapes_of(g))) == 1

    def test_all_dead_raises(self):
        s = Stencil(LAP5, "a", INTERIOR)
        g = StencilGroup([s])
        with pytest.raises(ValueError):
            eliminate_dead_stencils(g, shapes_of(g), live_grids={"zzz"})

    def test_elimination_preserves_results(self, rng):
        dead = Stencil(LAP5, "scratch", INTERIOR, name="dead")
        live = Stencil(LAP5, "out", INTERIOR, name="live")
        g = StencilGroup([dead, live])
        kept = eliminate_dead_stencils(g, shapes_of(g), live_grids={"out"})
        arrays = {n: np.zeros((10, 10)) for n in g.grids()}
        arrays["u"] = rng.random((10, 10))
        a1 = {k: v.copy() for k, v in arrays.items()}
        g.compile(backend="numpy")(**{k: a1[k] for k in g.grids()})
        a2 = {k: v.copy() for k, v in arrays.items()}
        kept.compile(backend="numpy")(**{k: a2[k] for k in kept.grids()})
        np.testing.assert_array_equal(a1["out"], a2["out"])


class TestReorder:
    def test_reorder_reduces_barriers(self):
        # interleaved chain/independent: A1 -> A2, B independent.
        a1 = Stencil(LAP5, "a", INTERIOR, name="a1")
        a2 = Stencil(Component("a", WeightArray([[1]])), "a2", INTERIOR, name="a2")
        b = Stencil(Component("v", WeightArray([[1]])), "b", INTERIOR, name="b")
        g = StencilGroup([a1, a2, b])
        shapes = shapes_of(g)
        before = len(greedy_phases(g, shapes))
        reordered = reorder_for_phases(g, shapes)
        after = len(greedy_phases(reordered, shapes))
        assert after <= before
        assert [s.name for s in reordered] == ["a1", "b", "a2"]

    def test_reorder_respects_dependences(self):
        a1 = Stencil(LAP5, "a", INTERIOR, name="a1")
        a2 = Stencil(Component("a", WeightArray([[1]])), "a2", INTERIOR, name="a2")
        g = StencilGroup([a1, a2])
        reordered = reorder_for_phases(g, shapes_of(g))
        names = [s.name for s in reordered]
        assert names.index("a1") < names.index("a2")


class TestFusion:
    def test_same_domain_independent_bodies_fusable(self):
        s1 = Stencil(LAP5, "a", INTERIOR, name="s1")
        s2 = Stencil(Component("v", WeightArray([[1]])), "b", INTERIOR, name="s2")
        g = StencilGroup([s1, s2])
        cands = fusion_candidates(g, shapes_of(g))
        assert [(c.first, c.second) for c in cands] == [(0, 1)]

    def test_raw_pair_not_fusable(self):
        s1 = Stencil(LAP5, "a", INTERIOR)
        s2 = Stencil(Component("a", WeightArray([[0, 1, 0], [1, 0, 1], [0, 1, 0]])), "b", INTERIOR)
        g = StencilGroup([s1, s2])
        assert fusion_candidates(g, shapes_of(g)) == []

    def test_different_domains_not_fusable(self):
        s1 = Stencil(LAP5, "a", INTERIOR)
        s2 = Stencil(Component("v", WeightArray([[1]])), "b",
                     RectDomain((2, 2), (-2, -2)))
        g = StencilGroup([s1, s2])
        assert fusion_candidates(g, shapes_of(g)) == []
