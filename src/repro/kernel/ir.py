"""Scalar kernel-expression IR nodes.

A :class:`KernelBody` is the *single* lowered form of one stencil's
loop body, consumed by every backend: the C emitter renders it into
C99 let-bindings, the OpenCL/CUDA generators embed it in kernel text,
and the interpreters evaluate it directly.  Nodes are immutable and
carry stable ``signature()`` strings (structural identity — the CSE
pass and the JIT cache key both rely on them).

Arithmetic nodes are **binary** on purpose: the evaluation order of
every floating-point operation is explicit in the tree, which is what
lets the compiled backends agree bit-for-bit with the reference
interpreter (no backend is allowed to reassociate).
"""

from __future__ import annotations

from typing import Callable, Iterator, Sequence

__all__ = [
    "KExpr",
    "KConst",
    "KParam",
    "KLoad",
    "KRef",
    "KAdd",
    "KMul",
    "KDiv",
    "KFma",
    "KLet",
    "KernelBody",
    "walk",
    "count_nodes",
]


class KExpr:
    """Base class for kernel-expression nodes (immutable)."""

    __slots__ = ()

    def children(self) -> tuple["KExpr", ...]:
        return ()

    def signature(self) -> str:
        raise NotImplementedError

    def __setattr__(self, *a):
        raise AttributeError(f"{type(self).__name__} is immutable")

    def __eq__(self, other) -> bool:
        return (
            type(other) is type(self)
            and other.signature() == self.signature()
        )

    def __hash__(self) -> int:
        return hash((type(self).__name__, self.signature()))

    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        return self.signature()


class KConst(KExpr):
    """A floating-point literal (dtype applied at emission time)."""

    __slots__ = ("value",)

    def __init__(self, value: float) -> None:
        object.__setattr__(self, "value", float(value))

    def signature(self) -> str:
        return repr(self.value)


class KParam(KExpr):
    """A named scalar parameter supplied at call time."""

    __slots__ = ("name",)

    def __init__(self, name: str) -> None:
        object.__setattr__(self, "name", name)

    def signature(self) -> str:
        return f"p:{self.name}"


class KLoad(KExpr):
    """Scalar load ``grid[scale * i + offset]`` at iteration point ``i``.

    Mirrors :class:`~repro.core.expr.GridRead`'s affine index map; the
    ``key`` property is the hashable identity the CSE pass dedupes on
    and the numpy backend keys its precomputed slices by.
    """

    __slots__ = ("grid", "offset", "scale")

    def __init__(
        self, grid: str, offset: Sequence[int], scale: Sequence[int]
    ) -> None:
        object.__setattr__(self, "grid", grid)
        object.__setattr__(self, "offset", tuple(int(o) for o in offset))
        object.__setattr__(self, "scale", tuple(int(s) for s in scale))
        if len(self.offset) != len(self.scale):
            raise ValueError("offset/scale dimensionality mismatch")

    @property
    def key(self) -> tuple:
        return (self.grid, self.offset, self.scale)

    def signature(self) -> str:
        if all(s == 1 for s in self.scale):
            return f"{self.grid}@{list(self.offset)}"
        return f"{self.grid}@{list(self.scale)}*i+{list(self.offset)}"


class KRef(KExpr):
    """Reference to a let-binding of the enclosing :class:`KernelBody`."""

    __slots__ = ("name",)

    def __init__(self, name: str) -> None:
        object.__setattr__(self, "name", name)

    def signature(self) -> str:
        return f"&{self.name}"


class _KBin(KExpr):
    __slots__ = ("lhs", "rhs")
    _OP = "?"

    def __init__(self, lhs: KExpr, rhs: KExpr) -> None:
        if not isinstance(lhs, KExpr) or not isinstance(rhs, KExpr):
            raise TypeError("operands must be KExpr")
        object.__setattr__(self, "lhs", lhs)
        object.__setattr__(self, "rhs", rhs)

    def children(self) -> tuple[KExpr, ...]:
        return (self.lhs, self.rhs)

    def signature(self) -> str:
        return (
            f"({self.lhs.signature()} {self._OP} {self.rhs.signature()})"
        )


class KAdd(_KBin):
    """``lhs + rhs``."""

    __slots__ = ()
    _OP = "+"


class KMul(_KBin):
    """``lhs * rhs``."""

    __slots__ = ()
    _OP = "*"


class KDiv(_KBin):
    """``lhs / rhs``."""

    __slots__ = ()
    _OP = "/"


class KFma(KExpr):
    """``a * b + c`` as one node — *structural* grouping only.

    Backends emit the multiply and the add as two separately-rounded
    IEEE operations (never a hardware fused multiply-add), so grouping
    is bitwise-neutral; it exists to expose the accumulation chains a
    vectorizing compiler turns into FMA instructions.
    """

    __slots__ = ("a", "b", "c")

    def __init__(self, a: KExpr, b: KExpr, c: KExpr) -> None:
        for x in (a, b, c):
            if not isinstance(x, KExpr):
                raise TypeError("operands must be KExpr")
        object.__setattr__(self, "a", a)
        object.__setattr__(self, "b", b)
        object.__setattr__(self, "c", c)

    def children(self) -> tuple[KExpr, ...]:
        return (self.a, self.b, self.c)

    def signature(self) -> str:
        return (
            f"fma({self.a.signature()},{self.b.signature()},"
            f"{self.c.signature()})"
        )


class KLet(KExpr):
    """One named binding: ``name = expr``, invariant at loop ``depth``.

    ``depth`` is the loop depth whose body must (re)compute the value:
    ``0`` means invariant across the whole nest — params and constants
    only, hoisted to the kernel prelude and evaluated once per sweep —
    while ``ndim`` means the value depends on the full iteration point
    (any binding containing a grid load) and lives in the innermost
    loop body.
    """

    __slots__ = ("name", "expr", "depth")

    def __init__(self, name: str, expr: KExpr, depth: int) -> None:
        object.__setattr__(self, "name", name)
        object.__setattr__(self, "expr", expr)
        object.__setattr__(self, "depth", int(depth))

    def children(self) -> tuple[KExpr, ...]:
        return (self.expr,)

    def signature(self) -> str:
        return f"let {self.name}@{self.depth} = {self.expr.signature()}"


class KernelBody:
    """Let-bindings plus a result expression — one stencil's loop body.

    Bindings are in dependency order (a binding may reference earlier
    bindings only); backends evaluate/emit them in sequence and store
    ``result`` to the output grid.
    """

    __slots__ = ("ndim", "lets", "result")

    def __init__(
        self, ndim: int, lets: Sequence[KLet], result: KExpr
    ) -> None:
        object.__setattr__(self, "ndim", int(ndim))
        object.__setattr__(self, "lets", tuple(lets))
        object.__setattr__(self, "result", result)
        seen: set[str] = set()
        for let in self.lets:
            for node in walk(let.expr):
                if isinstance(node, KRef) and node.name not in seen:
                    raise ValueError(
                        f"binding {let.name!r} references {node.name!r} "
                        "before it is bound"
                    )
            if let.name in seen:
                raise ValueError(f"duplicate binding {let.name!r}")
            seen.add(let.name)

    def __setattr__(self, *a):
        raise AttributeError("KernelBody is immutable")

    # -- queries -------------------------------------------------------------

    def exprs(self) -> Iterator[KExpr]:
        """The bound expressions followed by the result."""
        for let in self.lets:
            yield let.expr
        yield self.result

    def scalar_lets(self) -> tuple[KLet, ...]:
        """Bindings hoisted out of the loop nest (depth 0)."""
        return tuple(l for l in self.lets if l.depth == 0)

    def inner_lets(self) -> tuple[KLet, ...]:
        """Bindings evaluated per iteration point (depth > 0)."""
        return tuple(l for l in self.lets if l.depth > 0)

    def loads(self) -> list[KLoad]:
        """Distinct loads, in first-occurrence order."""
        seen: dict[tuple, KLoad] = {}
        for e in self.exprs():
            for node in walk(e):
                if isinstance(node, KLoad) and node.key not in seen:
                    seen[node.key] = node
        return list(seen.values())

    def load_count(self) -> int:
        """Total load *occurrences* (each emitted load counted once)."""
        return sum(
            1
            for e in self.exprs()
            for node in walk(e)
            if isinstance(node, KLoad)
        )

    def grids(self) -> set[str]:
        return {l.grid for l in self.loads()}

    def params(self) -> set[str]:
        return {
            n.name
            for e in self.exprs()
            for n in walk(e)
            if isinstance(n, KParam)
        }

    def node_count(self) -> int:
        return sum(count_nodes(e) for e in self.exprs())

    def signature(self) -> str:
        bits = [l.signature() for l in self.lets]
        bits.append(f"-> {self.result.signature()}")
        return f"K{self.ndim}d[" + "; ".join(bits) + "]"

    def map_exprs(self, fn: Callable[[KExpr], KExpr]) -> "KernelBody":
        """Rebuild with ``fn`` applied to every binding and the result."""
        return KernelBody(
            self.ndim,
            [KLet(l.name, fn(l.expr), l.depth) for l in self.lets],
            fn(self.result),
        )

    def __eq__(self, other) -> bool:
        return (
            isinstance(other, KernelBody)
            and other.signature() == self.signature()
        )

    def __hash__(self) -> int:
        return hash(self.signature())

    def __repr__(self) -> str:  # pragma: no cover
        return self.signature()


def walk(expr: KExpr) -> Iterator[KExpr]:
    """Pre-order traversal."""
    stack = [expr]
    while stack:
        node = stack.pop()
        yield node
        stack.extend(reversed(node.children()))


def count_nodes(expr: KExpr) -> int:
    return sum(1 for _ in walk(expr))
