"""Wall-clock measurement helpers for the benchmark harness.

Follows the paper's protocol (SectionV-A): an untimed warmup phase
followed by the benchmarking phase; best-of-N reporting guards against
scheduler noise on shared machines.
"""

from __future__ import annotations

import time
from typing import Callable

__all__ = ["Timer", "best_of", "time_callable", "clock_resolution"]

_resolution: float | None = None


def clock_resolution() -> float:
    """Smallest trustworthy ``perf_counter`` interval on this host.

    The max of the advertised clock resolution and the smallest
    observable back-to-back tick (which includes call overhead) —
    measured once and cached.  Durations at or below this floor carry
    no information; rate computations must treat them as unresolved
    rather than dividing by them.
    """
    global _resolution
    if _resolution is None:
        advertised = time.get_clock_info("perf_counter").resolution
        tick = float("inf")
        for _ in range(32):
            a = time.perf_counter()
            b = time.perf_counter()
            while b <= a:  # pragma: no cover - coarse-clock hosts only
                b = time.perf_counter()
            tick = min(tick, b - a)
        _resolution = max(advertised, tick)
    return _resolution


class Timer:
    """Context-manager stopwatch accumulating across entries.

    Only *clean* exits are recorded: a timed body that raises is an
    aborted run, and folding its partial duration into ``elapsed``
    would silently pollute the mean.  Aborted entries are tallied in
    ``aborted`` instead.

    >>> t = Timer()
    >>> with t:
    ...     work()
    >>> t.elapsed  # seconds
    """

    def __init__(self) -> None:
        self.elapsed = 0.0
        self.count = 0
        self.aborted = 0
        self._t0 = 0.0

    def __enter__(self) -> "Timer":
        self._t0 = time.perf_counter()
        return self

    def __exit__(self, exc_type, exc, tb) -> None:
        if exc_type is not None:
            self.aborted += 1
            return
        self.elapsed += time.perf_counter() - self._t0
        self.count += 1

    def reset(self) -> None:
        self.elapsed = 0.0
        self.count = 0
        self.aborted = 0

    @property
    def mean(self) -> float:
        return self.elapsed / self.count if self.count else 0.0


def time_callable(
    fn: Callable[[], object], warmup: int = 1, repeats: int = 3
) -> list[float]:
    """Per-repeat wall times after ``warmup`` untimed calls."""
    for _ in range(warmup):
        fn()
    times = []
    for _ in range(repeats):
        t0 = time.perf_counter()
        fn()
        times.append(time.perf_counter() - t0)
    return times


def best_of(fn: Callable[[], object], warmup: int = 1, repeats: int = 3) -> float:
    """Minimum wall time over ``repeats`` timed calls."""
    return min(time_callable(fn, warmup=warmup, repeats=repeats))
