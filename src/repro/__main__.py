"""Command-line entry point: ``python -m repro <command>``.

Commands:

* ``info``      — environment report: backends, compiler, cache, machine
* ``selftest``  — compile-and-run a stencil through every backend
* ``doctor``    — toolchain/cache self-check + degradation report
                  (exit 0 healthy, 1 degraded, 2 unusable)
* ``stats``     — run a smoke kernel through the instrumented pipeline
                  and print the telemetry report (``--json`` writes the
                  ``BENCH_pipeline.json`` perf-trajectory artifact;
                  ``--openmetrics`` prints OpenMetrics exposition text)
* ``serve-metrics`` — serve ``/metrics`` (OpenMetrics), ``/events``
                  and ``/healthz`` over stdlib HTTP, foreground
* ``top``       — profile a GSRB workload with the sampling
                  self-profiler and print the hottest spans
* ``trace``     — run a traced workload spanning frontend, analysis,
                  JIT, kernel, resilience and dmem, and export a Chrome
                  trace-event JSON viewable in Perfetto (``--smoke``
                  exits nonzero unless the trace is valid and covers
                  the expected subsystems)
* ``explain``   — print the analysis provenance of a GSRB smoother
                  group: intra-stencil verdicts, which grids forced
                  each barrier, the legality-checked schedule the
                  backend executes, and the backend artifact identity
* ``bench``     — time the paper's three operators per backend and
                  attribute each rate against the machine roofline;
                  writes the ``BENCH_kernels.json`` artifact
* ``tune``      — cost-model-guided schedule search (beam/annealing)
                  over one paper operator; prints the trial table and
                  persists the winner to the tuning cache so later
                  ``schedule_for`` calls reload it transparently
* ``figures``   — alias for ``python -m repro.figures ...``
"""

from __future__ import annotations

import argparse
import sys


def cmd_info() -> None:
    import shutil

    import numpy as np

    from . import __version__, available_backends
    from .backends import HAVE_COMPILED_BACKENDS
    from .backends.jit import cache_dir, _cc

    print(f"repro-snowflake {__version__}")
    print(f"python {sys.version.split()[0]}, numpy {np.__version__}")
    print(f"backends: {', '.join(available_backends())}")
    cc = _cc()
    print(
        f"compiler: {cc} "
        f"({'found' if shutil.which(cc) else 'NOT FOUND'}; "
        f"compiled backends "
        f"{'available' if HAVE_COMPILED_BACKENDS else 'unavailable'})"
    )
    print(f"jit cache: {cache_dir()}")
    try:
        from .machine.specs import host_spec

        spec = host_spec()
        print(f"host STREAM-dot bandwidth: {spec.stream_bw / 1e9:.2f} GB/s")
    except Exception as e:  # pragma: no cover - measurement best-effort
        print(f"host bandwidth: unavailable ({e})")


def cmd_selftest() -> int:
    import numpy as np

    from . import Component, RectDomain, Stencil, WeightArray, available_backends

    lap = Component("u", WeightArray([[0, 1, 0], [1, -4, 1], [0, 1, 0]]))
    stencil = Stencil(lap, "out", RectDomain((1, 1), (-1, -1)))
    rng = np.random.default_rng(0)
    u = rng.random((34, 34))
    ref = None
    failed = 0
    for backend in available_backends():
        out = np.zeros_like(u)
        try:
            stencil.compile(backend=backend)(u=u, out=out)
        except Exception as e:
            print(f"  {backend:12s} ERROR: {e}")
            failed += 1
            continue
        if ref is None:
            ref = out
        ok = np.allclose(out, ref)
        print(f"  {backend:12s} {'OK' if ok else 'MISMATCH'}")
        failed += 0 if ok else 1
    print("selftest:", "PASS" if failed == 0 else f"FAIL ({failed})")
    return 1 if failed else 0


def cmd_stats(args) -> int:
    """Exercise the pipeline on a smoke kernel, then report telemetry.

    The smoke workload compiles a 2-D Laplacian through the requested
    backend (fallback chain down to numpy, so the command works on a
    broken toolchain) and applies it ``--calls`` times; everything the
    instrumented pipeline recorded — including whatever the process ran
    before this call — is rendered as fixed-width tables.
    """
    import numpy as np

    from . import Component, RectDomain, Stencil, WeightArray, telemetry

    if telemetry.mode() == "off":
        print(
            "telemetry is off (SNOWFLAKE_TELEMETRY=off); "
            "nothing will be recorded"
        )
    n = int(args.size)
    lap = Component("u", WeightArray([[0, 1, 0], [1, -4, 1], [0, 1, 0]]))
    stencil = Stencil(lap, "out", RectDomain((1, 1), (-1, -1)))
    kernel = stencil.compile(
        backend=args.backend,
        shapes={"u": (n, n), "out": (n, n)},
        fallback=("c", "numpy"),
    )
    rng = np.random.default_rng(0)
    u = rng.random((n, n))
    out = np.zeros_like(u)
    for _ in range(int(args.calls)):
        kernel(u=u, out=out)
    serving = getattr(kernel, "serving_backend", args.backend)
    if args.openmetrics:
        # machine surface: nothing but the exposition text on stdout
        sys.stdout.write(telemetry.render_openmetrics())
    else:
        print(f"smoke kernel: {n}x{n} laplacian, served by {serving!r}")
        print()
        print(telemetry.render_stats())
    if args.json:
        path = telemetry.export_bench_json(args.json)
        if args.openmetrics:  # keep stdout pure exposition text
            print(f"wrote {path}", file=sys.stderr)
        else:
            print(f"\nwrote {path}")
    return 0


def cmd_serve_metrics(args) -> int:
    """Serve the OpenMetrics endpoint over stdlib HTTP, foreground.

    Runs the same smoke workload as ``stats`` first (so a fresh process
    scrapes non-empty families), prints the URL, then blocks serving
    ``/metrics``, ``/events`` and ``/healthz`` until interrupted.
    ``--port 0`` binds an ephemeral port and prints the real one —
    tests and CI use that to avoid collisions.
    """
    import numpy as np

    from . import Component, RectDomain, Stencil, WeightArray, telemetry
    from .telemetry.metrics import MetricsServer

    n = int(args.size)
    lap = Component("u", WeightArray([[0, 1, 0], [1, -4, 1], [0, 1, 0]]))
    stencil = Stencil(lap, "out", RectDomain((1, 1), (-1, -1)))
    kernel = stencil.compile(
        backend="numpy", shapes={"u": (n, n), "out": (n, n)}
    )
    rng = np.random.default_rng(0)
    u = rng.random((n, n))
    out = np.zeros_like(u)
    for _ in range(int(args.calls)):
        kernel(u=u, out=out)

    server = MetricsServer(args.host, int(args.port))
    print(f"serving OpenMetrics on http://{server.host}:{server.port}/metrics "
          f"(mode {telemetry.mode()}; /events, /healthz also routed)",
          flush=True)
    try:
        server.serve_forever()
    except KeyboardInterrupt:
        pass
    finally:
        server.close()
    return 0


def cmd_top(args) -> int:
    """Profile a GSRB workload with the sampling self-profiler.

    Runs the shared trace workload under :mod:`repro.telemetry.profiler`
    and prints the span-attributed wall-time table plus the measured
    profiler overhead (always bounded by its duty-cycle budget).
    """
    import numpy as np

    from .telemetry import profiler, tracing

    n = int(args.size)
    group, shapes = _gsrb_workload(n)
    shape = next(iter(shapes.values()))
    rng = np.random.default_rng(0)
    arrays = {g: rng.standard_normal(shape) for g in group.grids()}
    arrays["x"] = np.zeros(shape)

    interval = float(args.interval) / 1e3
    with profiler.profile(interval=interval):
        with tracing.session(fresh=True):
            kernel = group.compile(
                backend=args.backend, shapes=shapes,
                fallback=("c", "numpy"),
            )
            for _ in range(int(args.calls)):
                kernel(**arrays)
    snap = profiler.snapshot()
    print(profiler.render_top(snap, limit=int(args.limit)))
    if args.out:
        from .util.artifacts import artifact_path

        out = artifact_path(args.out)
        profiler.export_chrome_trace(out)
        print(f"wrote {out}")
    return 0


def _gsrb_workload(n: int):
    """The shared trace/explain workload: a 2-D GSRB smoother group.

    Returns ``(group, shapes)``.  This group exercises every analysis
    feature at once — boundary stencils, two in-place colored
    half-sweeps, and barriers forced by the smoothed grid ``x``.
    """
    from .hpgmg.operators import cc_laplacian, smooth_group

    group = smooth_group(2, cc_laplacian(2, 1.0 / n), lam=0.25)
    shape = (n + 2, n + 2)
    return group, {g: shape for g in group.grids()}


def cmd_trace(args) -> int:
    """Run a multi-subsystem workload under the span tracer and export.

    The workload: GSRB smoother group through the frontend pipeline and
    barrier planner, compiled with a fallback chain (JIT spans), applied
    ``--calls`` times (kernel spans), then re-run on a 2-rank simulated
    distributed executor (dmem halo/apply spans on per-rank lanes).
    """
    import json

    import numpy as np

    from .analysis.dag import plan
    from .dmem.executor import DistributedKernel
    from .frontend.passes import optimize_group
    from .telemetry import tracing
    from .util.artifacts import artifact_path

    out_path = artifact_path(args.out)
    n = int(args.size)
    group, shapes = _gsrb_workload(n)
    shape = next(iter(shapes.values()))
    rng = np.random.default_rng(0)

    def make_arrays():
        arrays = {g: rng.standard_normal(shape) for g in group.grids()}
        arrays["x"] = np.zeros(shape)
        return arrays

    with tracing.session(fresh=True):
        opt = optimize_group(group, shapes)
        plan(opt, shapes)
        kernel = opt.compile(
            backend="c", shapes=shapes, fallback=("c", "numpy")
        )
        arrays = make_arrays()
        for _ in range(int(args.calls)):
            kernel(**arrays)
        dk = DistributedKernel(group, shape, 2, backend="numpy")
        dk(**make_arrays())
        tracing.export_chrome_trace(out_path)

    path = out_path
    doc = json.loads(path.read_text())  # validate what was written
    problems = tracing.validate_chrome_trace(doc)
    events = doc.get("traceEvents", [])
    cats = {e.get("cat") for e in events}
    covered = sorted(cats & set(tracing.CATEGORIES))
    print(f"wrote {path}: {len(events)} events "
          f"(subsystems: {', '.join(covered)})")
    print("view: load into https://ui.perfetto.dev or chrome://tracing")
    for p in problems:
        print(f"  INVALID: {p}")
    if args.smoke:
        required = {"frontend", "jit", "kernel", "dmem"}
        missing = sorted(required - cats)
        if problems or missing:
            print(f"smoke: FAIL"
                  + (f" (missing subsystems: {', '.join(missing)})"
                     if missing else " (trace invalid)"))
            return 1
        print("smoke: PASS")
    return 0


def cmd_explain(args) -> int:
    """Render the analysis provenance of the GSRB smoother group."""
    import json

    from .explain import explain

    group, shapes = _gsrb_workload(int(args.size))
    options = {}
    if args.fuse:
        options["fuse"] = True
    if args.no_multicolor:
        options["multicolor"] = False
    if args.tile is not None:
        options["tile"] = int(args.tile)
    if args.time_tile is not None:
        options["time_tile"] = int(args.time_tile)
    prov = explain(
        group, shapes, backend=args.backend, policy=args.policy,
        **options,
    )
    if args.transforms:
        # Just the composable-rewrite expansion of the preset.
        if args.json:
            print(json.dumps(list(prov.transforms), indent=2))
        else:
            for t in prov.transforms:
                print(t)
        return 0
    dmem_doc = None
    dmem_text = None
    if args.dmem:
        from .dmem.executor import DistributedKernel

        shape = next(iter(shapes.values()))
        dk = DistributedKernel(
            group, shape, int(args.dmem), backend="numpy"
        )
        dmem_doc = dk.describe_dict()
        dmem_text = dk.describe()
    if args.json:
        doc = prov.to_dict()
        if dmem_doc is not None:
            doc["dmem"] = dmem_doc
        print(json.dumps(doc, indent=2, sort_keys=True))
    else:
        print(prov.render())
        if dmem_text is not None:
            print()
            print(dmem_text)
    return 0


def cmd_bench(args) -> int:
    """Roofline-attributed benchmark of the paper's three operators."""
    import json
    from pathlib import Path

    from .bench import (
        check_regression,
        check_sweep_model,
        run_bench,
        write_bench_kernels,
    )

    backends = tuple(b for b in args.backends.split(",") if b)
    time_tiles = tuple(
        int(k) for k in (args.sweep or "").split(",") if k
    )
    doc = run_bench(
        n=int(args.size), backends=backends, spec=args.spec,
        calls=int(args.calls), time_tiles=time_tiles,
    )
    spec = doc["spec"]
    print(f"machine: {spec['name']} "
          f"({spec['stream_bw'] / 1e9:.1f} GB/s STREAM)")
    for op, rec in doc["operators"].items():
        cost = rec["cost"]
        opt = rec["opt_report"]
        print(f"{op}: {rec['bytes_per_point']:.0f} B/point, "
              f"{cost['flops_per_point']} flops/point, "
              f"AI {cost['arithmetic_intensity']:.3f}, "
              f"roofline {rec['roofline_points_per_s']:.3e} points/s")
        print(f"  kernel opt: nodes {opt['nodes_before']}->"
              f"{opt['nodes_after']}, {opt['reads_deduped']} reads deduped, "
              f"{opt['bindings_hoisted']} hoisted, "
              f"{opt['fma_grouped']} fma grouped")
        for b, t in rec["backends"].items():
            if "error" in t:
                print(f"  {b:8s} ERROR: {t['error']}")
            else:
                print(f"  {b:8s} {t['points_per_s']:.3e} points/s "
                      f"= {t['roofline_fraction'] * 100:5.1f}% of roofline")
        for b, per_k in rec.get("sweep", {}).items():
            for k, t in per_k.items():
                tag = f"{b}[tt={k}]"
                model = t.get("model", {})
                pred = model.get("traffic_reduction")
                pred_s = f", predicted x{pred:.2f} traffic" if pred else ""
                if "error" in t:
                    print(f"  {tag:12s} ERROR: {t['error']}")
                else:
                    speed = t.get("speedup")
                    speed_s = f" (x{speed:.2f} vs untiled)" if speed else ""
                    print(f"  {tag:12s} {t['points_per_s']:.3e} "
                          f"points/s per application{speed_s}{pred_s}")
    if args.out:
        print(f"wrote {write_bench_kernels(doc, args.out)}")
    if args.check:
        baseline = json.loads(Path(args.check).read_text())
        problems = check_regression(doc, baseline, float(args.tolerance))
        # The analytic swept-cost predictions are deterministic on the
        # paper specs, so --check also demands they reproduce bit-exact.
        problems += [
            f"sweep model: {p}" for p in check_sweep_model(baseline)
        ]
        if problems:
            for p in problems:
                print(f"REGRESSION: {p}")
            return 1
        print(f"regression check vs {args.check}: PASS "
              f"(tolerance {float(args.tolerance) * 100:.0f}%)")
    return 0


def cmd_tune(args) -> int:
    """Cost-model-guided schedule search over one paper operator.

    Predicts every candidate with the analytic roofline model, measures
    only the most promising ones (``--budget`` caps measured trials),
    prints the trial table, and persists the winner to the tuning cache
    — a later process calling :func:`repro.schedule.schedule_for` with
    no explicit options transparently reloads it.
    """
    import json

    import numpy as np

    from .bench import paper_operators
    from .core.stencil import StencilGroup
    from .tuning import search_schedules
    from .util.artifacts import artifact_path

    n = int(args.size)
    operators = paper_operators(n)
    if args.op not in operators:
        print(f"unknown operator {args.op!r}; "
              f"choose one of {', '.join(sorted(operators))}")
        return 2
    stencil = operators[args.op]
    group = StencilGroup([stencil], name=args.op)
    rng = np.random.default_rng(int(args.seed))
    shapes = {}
    arrays = {}
    for st in group:
        for g in st.grids():
            if g not in arrays:
                shape = (n + 2,) * st.ndim
                shapes[g] = shape
                arrays[g] = rng.standard_normal(shape)
    result = search_schedules(
        group, arrays,
        backend=args.backend,
        budget=int(args.budget),
        repeats=int(args.repeats),
        strategy=args.strategy,
        spec=args.spec,
        seed=int(args.seed),
        persist=not args.no_persist,
    )
    if args.json:
        print(json.dumps(result.to_dict(), indent=2, sort_keys=True))
    else:
        print(f"tune {args.op} via {args.backend} "
              f"({args.strategy}, budget {args.budget}, spec {args.spec})")
        print()
        print(result.table())
        print()
        if result.best is None:
            print("no candidate could be measured")
        else:
            print(f"winner: {result.best.describe()} "
                  f"({result.best_measured_s * 1e6:.1f}us measured, "
                  f"{result.best_predicted_s * 1e6:.1f}us predicted)")
            print("persisted: " + ("no (--no-persist)" if args.no_persist
                                   else "yes (tuning cache)"))
    if args.out:
        out = artifact_path(args.out)
        out.write_text(
            json.dumps(result.to_dict(), indent=2, sort_keys=True) + "\n"
        )
        print(f"wrote {out}", file=sys.stderr if args.json else sys.stdout)
    return 0 if result.best is not None else 1


_PROBE_SRC = "double sf_doctor_probe(void){ return 42.0; }\n"


def cmd_doctor() -> int:
    """Self-check the execution stack and print the degradation report.

    Exit codes: 0 — primary chain fully healthy; 1 — degraded but
    serving (a fallback backend will carry the load); 2 — no backend
    can serve at all.
    """
    import os
    import shutil

    from . import __version__
    from .backends import jit
    from .resilience import faults

    def line(status: str, name: str, detail: str) -> None:
        print(f"  [{status:^4s}] {name:18s} {detail}")

    print(f"repro doctor ({__version__})")

    cc = jit._cc()
    cc_found = shutil.which(cc) is not None
    line("ok" if cc_found else "FAIL", "compiler",
         f"{cc} ({'found' if cc_found else 'NOT FOUND'})")

    # Probe the real pipeline, not just PATH: compile + dlopen a
    # one-liner, plain and with -fopenmp.
    c_ok = omp_ok = False
    c_err = omp_err = ""
    try:
        jit.compile_and_load(_PROBE_SRC)
        c_ok = True
    except Exception as e:
        c_err = f"{type(e).__name__}: {e}".splitlines()[0][:90]
    line("ok" if c_ok else "FAIL", "c toolchain",
         "probe compiled and loaded" if c_ok else c_err)
    try:
        jit.compile_and_load(_PROBE_SRC, openmp=True)
        omp_ok = True
    except Exception as e:
        omp_err = f"{type(e).__name__}: {e}".splitlines()[0][:90]
    line("ok" if omp_ok else "FAIL", "openmp link",
         "probe compiled with -fopenmp" if omp_ok else omp_err)

    try:
        d = jit.cache_dir()
        probe = d / f"sf_doctor.{os.getpid()}.touch"
        probe.write_text("ok")
        probe.unlink()
        cache_ok = True
        line("ok", "cache", f"writable at {d}")
    except OSError as e:
        cache_ok = False
        line("warn", "cache", f"not writable ({e}); compiles cannot persist")

    if cache_ok:
        swept = jit.sweep_orphans()
        if swept:
            line("warn", "orphans", f"removed {swept} stale *.tmp.so "
                 "from crashed compiles")
        else:
            line("ok", "orphans", "no stale *.tmp.so temporaries")
        bad = len(list(jit.cache_dir().glob("sf_*.so.bad")))
        line("warn" if bad else "ok", "quarantine",
             f"{bad} quarantined artifact(s)" if bad
             else "no quarantined artifacts")

    armed = faults.active()
    line("warn" if armed else "ok", "fault injection",
         f"armed sites: {sorted(armed)}" if armed else "no sites armed")

    # Distributed-transport health: run a 2-rank reliable exchange with
    # an injected send-side drop and confirm the retransmit path heals
    # it — the degradation report below then reflects whether halo
    # traffic can survive a lossy wire on this host.
    import numpy as np

    from .dmem.transport import ReliableComm

    transport_ok = False
    try:
        world = ReliableComm.world(2)
        probe_msg = np.arange(8.0)
        with faults.inject("comm.send.drop", times=1):
            world[0].rsend(probe_msg, 1, tag=1)
        echoed = world[1].rrecv(0, tag=1)
        retransmits = world[0].stats.retransmits
        transport_ok = (
            np.array_equal(echoed, probe_msg) and retransmits >= 1
        )
        line(
            "ok" if transport_ok else "FAIL", "dmem transport",
            f"2-rank exchange healed injected drop via "
            f"{retransmits} retransmit(s)" if transport_ok
            else "drop injected but delivery/retransmit did not recover",
        )
    except Exception as e:
        line("FAIL", "dmem transport",
             f"{type(e).__name__}: {e}".splitlines()[0][:90])

    # Degradation report: walk the default fallback chain exactly the
    # way ExecutionPolicy would.
    chain = ("openmp", "c", "numpy")
    healthy = {"openmp": omp_ok, "c": c_ok, "numpy": True}
    serving = next((b for b in chain if healthy[b]), None)
    print(f"degradation report (chain {' -> '.join(chain)}):")
    for b in chain:
        print(f"  {b:8s} {'available' if healthy[b] else 'UNAVAILABLE'}")
    print(
        "  dmem transport: "
        + ("exactly-once delivery verified under injected loss"
           if transport_ok
           else "UNVERIFIED — reliable halo delivery not confirmed")
    )
    if serving == chain[0]:
        print(f"  would serve: {serving} (healthy, no degradation)")
        return 0
    if serving is not None:
        print(f"  would serve: {serving} (DEGRADED — results identical, "
              "performance reduced)")
        return 1
    print("  would serve: nothing — system unusable")  # pragma: no cover
    return 2


def main(argv=None) -> int:
    ap = argparse.ArgumentParser(prog="repro")
    sub = ap.add_subparsers(dest="command", required=True)
    sub.add_parser("info", help="environment report")
    sub.add_parser("selftest", help="run every backend on a probe stencil")
    sub.add_parser(
        "doctor",
        help="toolchain/cache self-check and degradation report",
    )
    st = sub.add_parser(
        "stats",
        help="run a smoke kernel and print the telemetry report",
    )
    st.add_argument(
        "--backend", default="c",
        help="primary backend for the smoke kernel (default: c)",
    )
    st.add_argument(
        "--size", type=int, default=64,
        help="grid edge length for the smoke kernel (default: 64)",
    )
    st.add_argument(
        "--calls", type=int, default=3,
        help="kernel applications to record (default: 3)",
    )
    st.add_argument(
        "--json", metavar="PATH", default=None,
        help="also write the telemetry snapshot as JSON "
        "(e.g. BENCH_pipeline.json)",
    )
    st.add_argument(
        "--openmetrics", action="store_true",
        help="print the snapshot as OpenMetrics exposition text "
        "instead of the fixed-width report",
    )
    sm = sub.add_parser(
        "serve-metrics",
        help="serve the OpenMetrics endpoint over stdlib HTTP",
    )
    sm.add_argument(
        "--host", default="127.0.0.1",
        help="bind address (default: 127.0.0.1)",
    )
    sm.add_argument(
        "--port", type=int, default=9464,
        help="bind port; 0 picks an ephemeral port and prints it "
        "(default: 9464)",
    )
    sm.add_argument(
        "--size", type=int, default=64,
        help="grid edge length for the warm-up smoke kernel (default: 64)",
    )
    sm.add_argument(
        "--calls", type=int, default=3,
        help="warm-up kernel applications to record (default: 3)",
    )
    tp = sub.add_parser(
        "top",
        help="profile a GSRB workload with the sampling self-profiler",
    )
    tp.add_argument(
        "--backend", default="c",
        help="primary backend for the profiled kernel (default: c)",
    )
    tp.add_argument(
        "--size", type=int, default=96,
        help="interior grid edge length (default: 96)",
    )
    tp.add_argument(
        "--calls", type=int, default=20,
        help="kernel applications to profile (default: 20)",
    )
    tp.add_argument(
        "--interval", type=float, default=2.0, metavar="MS",
        help="requested sampling interval in milliseconds (default: 2.0)",
    )
    tp.add_argument(
        "--limit", type=int, default=20,
        help="rows in the top table (default: 20)",
    )
    tp.add_argument(
        "--out", metavar="PATH", default=None,
        help="also export the raw samples as Chrome trace-event JSON",
    )
    tr = sub.add_parser(
        "trace",
        help="run a traced workload and export Chrome trace-event JSON",
    )
    tr.add_argument(
        "--smoke", action="store_true",
        help="exit nonzero unless the trace validates and covers "
        "frontend, jit, kernel and dmem",
    )
    tr.add_argument(
        "--out", metavar="PATH", default="trace.json",
        help="trace file to write (default: trace.json)",
    )
    tr.add_argument(
        "--size", type=int, default=48,
        help="interior grid edge length (default: 48)",
    )
    tr.add_argument(
        "--calls", type=int, default=2,
        help="kernel applications to trace (default: 2)",
    )
    ex = sub.add_parser(
        "explain",
        help="print analysis provenance for a GSRB smoother group",
    )
    ex.add_argument(
        "--backend", default="c",
        help="backend whose artifact identity to report (default: c)",
    )
    ex.add_argument(
        "--policy", default="greedy",
        help="barrier policy: greedy, wavefront, serial (default: greedy)",
    )
    ex.add_argument(
        "--size", type=int, default=32,
        help="interior grid edge length (default: 32)",
    )
    ex.add_argument(
        "--fuse", action="store_true",
        help="enable fusion chains in the reported schedule",
    )
    ex.add_argument(
        "--no-multicolor", action="store_true",
        help="disable checkerboard sweep recognition in the schedule",
    )
    ex.add_argument(
        "--tile", type=int, default=None,
        help="tile size recorded in the schedule (c/openmp backends)",
    )
    ex.add_argument(
        "--time-tile", type=int, default=None, metavar="K",
        help="fuse K applications into one time tile and report the "
        "legality evidence and predicted traffic reduction",
    )
    ex.add_argument(
        "--dmem", type=int, default=None, metavar="RANKS",
        help="also report the distributed execution plan over RANKS "
        "simulated ranks: decomposition, reliable-transport and "
        "guard configuration",
    )
    ex.add_argument(
        "--transforms", action="store_true",
        help="print only the composable transform pipeline the "
        "scheduling preset expands to",
    )
    ex.add_argument(
        "--json", action="store_true",
        help="emit the provenance as JSON instead of the report",
    )
    be = sub.add_parser(
        "bench",
        help="roofline-attributed benchmark of the paper operators",
    )
    be.add_argument(
        "--spec", default="paper-cpu",
        help="machine model: host, paper-cpu, paper-gpu "
        "(default: paper-cpu)",
    )
    be.add_argument(
        "--backends", default=",".join(
            ("c", "openmp", "numpy")
        ),
        help="comma-separated backends to time (default: c,openmp,numpy)",
    )
    be.add_argument(
        "--size", type=int, default=32,
        help="interior cubic grid edge length (default: 32)",
    )
    be.add_argument(
        "--calls", type=int, default=3,
        help="timed applications per backend, best-of (default: 3)",
    )
    be.add_argument(
        "--out", metavar="PATH", default="BENCH_kernels.json",
        help="artifact to write (default: BENCH_kernels.json); "
        "empty string skips writing",
    )
    be.add_argument(
        "--check", metavar="BASELINE", default=None,
        help="compare against a baseline BENCH_kernels.json and exit "
        "nonzero on regression",
    )
    be.add_argument(
        "--tolerance", type=float, default=0.25,
        help="fractional slowdown tolerated by --check (default: 0.25)",
    )
    be.add_argument(
        "--sweep", metavar="K1,K2,...", default="",
        help="also time each operator with time_tile=K (comma-separated "
        "tile depths, each >= 2) and record per-application throughput, "
        "speedup and the swept-cost prediction",
    )
    tu = sub.add_parser(
        "tune",
        help="cost-model-guided schedule search; persists the winner",
    )
    tu.add_argument(
        "--backend", default="c",
        help="backend to tune for (default: c)",
    )
    tu.add_argument(
        "--op", default="cc_7pt",
        help="paper operator: cc_7pt, cc_jacobi, vc_gsrb "
        "(default: cc_7pt)",
    )
    tu.add_argument(
        "--size", type=int, default=32,
        help="interior cubic grid edge length (default: 32)",
    )
    tu.add_argument(
        "--budget", type=int, default=12,
        help="maximum candidates actually measured (default: 12)",
    )
    tu.add_argument(
        "--repeats", type=int, default=3,
        help="timed applications per candidate, best-of (default: 3)",
    )
    tu.add_argument(
        "--strategy", default="beam", choices=("beam", "anneal"),
        help="search strategy (default: beam)",
    )
    tu.add_argument(
        "--spec", default="paper-cpu",
        help="machine model guiding predictions: host, paper-cpu, "
        "paper-gpu (default: paper-cpu)",
    )
    tu.add_argument(
        "--seed", type=int, default=0,
        help="RNG seed for array data and annealing moves (default: 0)",
    )
    tu.add_argument(
        "--json", action="store_true",
        help="emit the full search result as JSON instead of the table",
    )
    tu.add_argument(
        "--out", metavar="PATH", default=None,
        help="also write the search result JSON to PATH",
    )
    tu.add_argument(
        "--no-persist", action="store_true",
        help="do not write the winner to the tuning cache",
    )
    fig = sub.add_parser("figures", help="regenerate paper figures")
    fig.add_argument("rest", nargs=argparse.REMAINDER)
    args = ap.parse_args(argv)

    if args.command == "info":
        cmd_info()
        return 0
    if args.command == "selftest":
        return cmd_selftest()
    if args.command == "doctor":
        return cmd_doctor()
    if args.command == "stats":
        return cmd_stats(args)
    if args.command == "serve-metrics":
        return cmd_serve_metrics(args)
    if args.command == "top":
        return cmd_top(args)
    if args.command == "trace":
        return cmd_trace(args)
    if args.command == "explain":
        return cmd_explain(args)
    if args.command == "bench":
        return cmd_bench(args)
    if args.command == "tune":
        return cmd_tune(args)
    if args.command == "figures":
        from .figures.__main__ import main as fig_main

        fig_main(args.rest)
        return 0
    raise AssertionError(args.command)


if __name__ == "__main__":
    raise SystemExit(main())
