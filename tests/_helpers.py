"""Shared helpers importable from any test module."""

from __future__ import annotations

import numpy as np

from repro.core.stencil import Stencil, StencilGroup

#: every registered backend that must agree on every stencil
ALL_BACKENDS = ("python", "numpy", "c", "openmp", "opencl-sim", "cuda-sim")
#: fast subset for tests that only need one compiled target
COMPILED_BACKENDS = ("c", "openmp", "opencl-sim")


def run_group(
    group: "StencilGroup | Stencil",
    arrays: dict[str, np.ndarray],
    params: dict[str, float] | None = None,
    backend: str = "numpy",
    **options,
) -> dict[str, np.ndarray]:
    """Deep-copy ``arrays``, run ``group`` on ``backend``, return copies."""
    if isinstance(group, Stencil):
        group = StencilGroup([group])
    work = {g: np.array(a, copy=True) for g, a in arrays.items()}
    kernel = group.compile(backend=backend, **options)
    kernel(**work, **(params or {}))
    return work


def assert_backends_agree(
    group: "StencilGroup | Stencil",
    arrays: dict[str, np.ndarray],
    params: dict[str, float] | None = None,
    backends=ALL_BACKENDS,
    rtol: float = 1e-12,
    atol: float = 1e-12,
    **options,
) -> dict[str, np.ndarray]:
    """Run on every backend and compare against the python reference."""
    ref = run_group(group, arrays, params, backend="python")
    for backend in backends:
        if backend == "python":
            continue
        got = run_group(group, arrays, params, backend=backend, **options)
        for g in ref:
            np.testing.assert_allclose(
                got[g], ref[g], rtol=rtol, atol=atol,
                err_msg=f"backend {backend!r} disagrees on grid {g!r}",
            )
    return ref
