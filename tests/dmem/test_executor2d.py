"""2-D Cartesian decomposition equals single-node execution."""

import numpy as np
import pytest

from repro.core.components import Component
from repro.core.domains import RectDomain
from repro.core.stencil import OutputMap, Stencil, StencilGroup
from repro.core.weights import SparseArray, WeightArray
from repro.dmem import DistributedKernel2D
from repro.hpgmg.highorder import (
    compact_diagonal,
    compact_laplacian,
    multicolor_smooth_group,
)
from repro.hpgmg.operators import (
    boundary_stencils_full,
    smooth_group,
    vc_laplacian,
)

INTERIOR = RectDomain((1, 1), (-1, -1))
LAP = Component("u", WeightArray([[0, 1, 0], [1, -4, 1], [0, 1, 0]]))


def run_both(group, shape, grid, rng, backend="c"):
    base = {g: rng.random(shape) for g in group.grids()}
    ref = {k: v.copy() for k, v in base.items()}
    group.compile(backend=backend)(**ref)
    got = {k: v.copy() for k, v in base.items()}
    dk = DistributedKernel2D(group, shape, grid, backend=backend)
    dk(**got)
    return ref, got, dk


class TestEqualsLocal:
    @pytest.mark.parametrize("grid", [(1, 1), (2, 2), (2, 3), (3, 2)])
    def test_laplacian(self, grid, rng):
        g = StencilGroup([Stencil(LAP, "out", INTERIOR)])
        ref, got, _ = run_both(g, (20, 20), grid, rng)
        np.testing.assert_allclose(got["out"], ref["out"], atol=1e-14)

    @pytest.mark.parametrize("grid", [(2, 2), (4, 2)])
    def test_gsrb_smoother(self, grid, rng):
        group = smooth_group(2, vc_laplacian(2, 1 / 30), lam="lam")
        shape = (32, 32)
        base = {g: rng.random(shape) for g in group.grids()}
        base["lam"] = 0.01 * np.ones(shape)
        ref = {k: v.copy() for k, v in base.items()}
        group.compile(backend="c")(**ref)
        got = {k: v.copy() for k, v in base.items()}
        DistributedKernel2D(group, shape, grid, backend="c")(**got)
        np.testing.assert_allclose(got["x"], ref["x"], atol=1e-13)

    def test_corner_ghosts_via_two_phase_exchange(self, rng):
        # the compact 9-point operator reads diagonal neighbours: rank
        # corners must carry remote data, which arrives transitively
        # from the dim-1-then-dim-0 exchange order.
        h = 1 / 30
        mc = StencilGroup(
            boundary_stencils_full(2, "x")
            + list(
                multicolor_smooth_group(
                    2, compact_laplacian(2, h),
                    lam=1 / compact_diagonal(2, h), with_boundaries=False,
                )
            )
        )
        ref, got, dk = run_both(mc, (32, 32), (2, 2), rng)
        np.testing.assert_allclose(got["x"], ref["x"], atol=1e-12)
        assert dk.halo == (1, 1)

    def test_3d_grid_decomposed_on_two_leading_dims(self, rng):
        from repro.hpgmg.operators import cc_laplacian, interior

        s = Stencil(cc_laplacian(3, 0.1, grid="u"), "out", interior(3))
        g = StencilGroup([s])
        ref, got, _ = run_both(g, (12, 12, 12), (2, 2), rng)
        np.testing.assert_allclose(got["out"], ref["out"], rtol=1e-13)

    def test_uneven_rank_grid(self, rng):
        g = StencilGroup([Stencil(LAP, "u", INTERIOR)])  # in-place hazard
        ref, got, _ = run_both(g, (22, 26), (3, 2), rng)
        np.testing.assert_allclose(got["u"], ref["u"], atol=1e-14)


class TestValidation:
    def test_needs_two_dims(self):
        s = Stencil(Component("u", WeightArray([1.0, 0, 1.0])), "out",
                    RectDomain((1,), (-1,)))
        with pytest.raises(ValueError, match="2 dims"):
            DistributedKernel2D(StencilGroup([s]), (16,), (2, 1))

    def test_scaled_output_rejected(self):
        s = Stencil(
            Component("c", WeightArray([[1]])), "f", INTERIOR,
            output_map=OutputMap((2, 2), (0, 0)),
        )
        with pytest.raises(ValueError, match="node-local"):
            DistributedKernel2D(StencilGroup([s]), (16, 16), (2, 2))

    def test_thin_slabs_rejected(self):
        wide = Component("u", SparseArray({(0, 0): 1.0, (0, 3): 1.0}))
        s = Stencil(wide, "out", RectDomain((3, 3), (-3, -3)))
        with pytest.raises(ValueError, match="thinner"):
            DistributedKernel2D(StencilGroup([s]), (12, 12), (1, 6))

    def test_missing_grid_at_call(self, rng):
        g = StencilGroup([Stencil(LAP, "out", INTERIOR)])
        dk = DistributedKernel2D(g, (16, 16), (2, 2))
        with pytest.raises(TypeError, match="missing"):
            dk(u=rng.random((16, 16)))


class TestCommVolume:
    def test_message_count_scales_with_interfaces(self, rng):
        g = StencilGroup([Stencil(LAP, "u", INTERIOR)])
        counts = {}
        for grid in ((2, 1), (2, 2)):
            base = {"u": rng.random((24, 24))}
            dk = DistributedKernel2D(g, (24, 24), grid)
            dk(**base)
            counts[grid] = dk.comm_stats.messages
        # (2,1): one dim-0 interface -> 2 messages per exchanged grid;
        # (2,2): dim-0 and dim-1 interfaces -> 4x as many directed sends
        assert counts[(2, 2)] == 4 * counts[(2, 1)]
