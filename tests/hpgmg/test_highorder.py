"""Higher-order / compact operators, multicolor smoothing, exotic BCs."""

import numpy as np
import pytest

from _helpers import run_group
from repro.analysis import is_parallel_safe
from repro.core.components import Component
from repro.core.domains import RectDomain
from repro.core.stencil import Stencil, StencilGroup
from repro.core.weights import SparseArray
from repro.hpgmg.highorder import (
    cc_laplacian_4th,
    compact_diagonal,
    compact_laplacian,
    multicolor_smooth_group,
)
from repro.hpgmg.operators import (
    boundary_stencils_full,
    periodic_boundary_stencils,
    red_black_domains,
)


class TestFourthOrderStar:
    def test_annihilates_cubics(self, rng):
        # exact for polynomials up to degree 3 per dim: A(x^3) has only
        # the analytic second-derivative content, and A(const)=0.
        n = 16
        h = 1.0 / n
        xs = (np.arange(n + 4) - 0.5) * h  # 2-deep halo
        u = np.tile(xs**3, (n + 4, 1))
        s = Stencil(cc_laplacian_4th(2, h, grid="u"), "out",
                    RectDomain((2, 2), (-2, -2)))
        got = run_group(s, {"u": u, "out": np.zeros_like(u)})["out"]
        # A = -d2/dx2 - d2/dy2 (positive-definite sign): -(6x)
        interior = got[2:-2, 2:-2]
        want = -6.0 * xs[2:-2][None, :].repeat(n, 0)
        np.testing.assert_allclose(interior, want, rtol=1e-8, atol=1e-8)

    def test_radius_is_two(self):
        from repro.core.flatten import flatten_expr

        flat = flatten_expr(cc_laplacian_4th(3, 0.1))
        assert flat.radius() == 2
        assert len(flat.reads()) == 13  # the 13-point star

    def test_fourth_order_convergence_on_sine(self):
        # error of A_h u vs analytic shrinks ~16x per mesh halving
        errs = []
        for n in (8, 16, 32):
            h = 1.0 / n
            xs = (np.arange(n + 4) - 1.5) * h
            u = np.sin(np.pi * xs)[None, :].repeat(n + 4, 0)
            s = Stencil(cc_laplacian_4th(2, h, grid="u"), "out",
                        RectDomain((2, 2), (-2, -2)))
            got = run_group(s, {"u": u, "out": np.zeros_like(u)})["out"]
            want = (np.pi**2) * np.sin(np.pi * xs)[None, :].repeat(n + 4, 0)
            errs.append(
                np.max(np.abs(got[2:-2, 2:-2] - want[2:-2, 2:-2]))
            )
        assert errs[0] / errs[1] > 10
        assert errs[1] / errs[2] > 10


class TestCompactOperator:
    def test_zero_row_sum(self, rng):
        s = Stencil(compact_laplacian(2, 0.1, grid="u"), "out",
                    RectDomain((1, 1), (-1, -1)))
        got = run_group(
            s, {"u": np.ones((10, 10)), "out": np.zeros((10, 10))}
        )["out"]
        np.testing.assert_allclose(got[1:-1, 1:-1], 0.0, atol=1e-12)

    def test_touches_full_box(self):
        from repro.core.flatten import flatten_expr

        assert len(flatten_expr(compact_laplacian(2, 0.1)).reads()) == 9
        assert len(flatten_expr(compact_laplacian(3, 0.1)).reads()) == 27

    def test_approximates_laplacian(self):
        n = 32
        h = 1.0 / n
        xs = (np.arange(n + 2) - 0.5) * h
        u = np.sin(np.pi * xs)[:, None] * np.sin(np.pi * xs)[None, :]
        s = Stencil(compact_laplacian(2, h, grid="u"), "out",
                    RectDomain((1, 1), (-1, -1)))
        got = run_group(s, {"u": u, "out": np.zeros_like(u)})["out"]
        want = 2 * np.pi**2 * u
        err = np.max(np.abs(got[2:-2, 2:-2] - want[2:-2, 2:-2]))
        assert err < 0.05 * np.max(np.abs(want))

    def test_unsupported_ndim(self):
        with pytest.raises(ValueError):
            compact_laplacian(4, 0.1)
        with pytest.raises(ValueError):
            compact_diagonal(1, 0.1)


class TestMulticolorSmoothing:
    def test_red_black_insufficient_for_compact(self):
        # the analysis result motivating 4-coloring (paper Fig.3b)
        Ax = compact_laplacian(2, 0.1)
        red, _ = red_black_domains(2)
        from repro.core.expr import Constant

        x = Component("x", SparseArray({(0, 0): 1.0}))
        b = Component("rhs", SparseArray({(0, 0): 1.0}))
        body = x + Constant(0.001) * (b - Ax)
        s = Stencil(body, "x", red)
        shapes = {g: (14, 14) for g in s.grids()}
        assert not is_parallel_safe(s, shapes)

    def test_four_coloring_is_safe(self):
        Ax = compact_laplacian(2, 0.1)
        group = multicolor_smooth_group(
            2, Ax, lam=0.001, with_boundaries=False
        )
        shapes = {g: (14, 14) for g in group.grids()}
        for s in group:
            assert is_parallel_safe(s, shapes)

    def test_eight_coloring_3d_safe(self):
        Ax = compact_laplacian(3, 0.25)
        group = multicolor_smooth_group(
            3, Ax, lam=0.001, with_boundaries=False
        )
        assert len(group) == 8
        shapes = {g: (8, 8, 8) for g in group.grids()}
        for s in group:
            assert is_parallel_safe(s, shapes)

    def test_colors_partition_and_update_everything(self, rng):
        Ax = compact_laplacian(2, 1 / 12)
        group = multicolor_smooth_group(
            2, Ax, lam=compact_diagonal(2, 1 / 12) ** -1,
            with_boundaries=False,
        )
        shape = (14, 14)
        x = rng.random(shape)
        got = run_group(group, {"x": x, "rhs": rng.random(shape)})["x"]
        assert (got[1:-1, 1:-1] != x[1:-1, 1:-1]).all()

    def test_compact_smoother_converges_with_full_boundaries(self, rng):
        n = 16
        h = 1.0 / n
        shape = (n + 2, n + 2)
        Ax = compact_laplacian(2, h)
        lam = 1.0 / compact_diagonal(2, h)
        smooth = StencilGroup(
            boundary_stencils_full(2, "x")
            + list(
                multicolor_smooth_group(2, Ax, lam=lam, with_boundaries=False)
            )
        )
        rhs = np.zeros(shape)
        rhs[1:-1, 1:-1] = 1.0
        arrays = {"x": np.zeros(shape), "rhs": rhs}
        kernel = smooth.compile(backend="c")
        for _ in range(300):
            kernel(**arrays)
        u = arrays["x"][1:-1, 1:-1]
        assert u.min() > 0  # diffusion of a positive source
        assert u.max() < 1.0  # bounded (no blow-up: smoother is stable)

    def test_all_backends_agree_on_multicolor(self, rng):
        from _helpers import assert_backends_agree

        Ax = compact_laplacian(2, 1 / 12)
        group = multicolor_smooth_group(
            2, Ax, lam=0.002, with_boundaries=True
        )
        arrays = {g: rng.random((14, 14)) for g in group.grids()}
        assert_backends_agree(group, arrays)


class TestFullBoundaries:
    def test_counts(self):
        assert len(boundary_stencils_full(2, "u")) == 4 + 4
        assert len(boundary_stencils_full(3, "u")) == 6 + 12 + 8

    def test_corner_value_double_reflection(self, rng):
        g = StencilGroup(boundary_stencils_full(2, "u"))
        u = rng.random((8, 8))
        got = run_group(g, {"u": u})["u"]
        # corner = -edge_ghost = +interior corner cell
        assert got[0, 0] == pytest.approx(got[1, 1])
        assert got[-1, -1] == pytest.approx(got[-2, -2])

    def test_dependence_orders_faces_before_corners(self):
        from repro.analysis import plan

        g = StencilGroup(boundary_stencils_full(2, "u"))
        exec_plan = plan(g, {"u": (8, 8)})
        # faces (first 4) in an earlier phase than the corners
        assert set(exec_plan.phases[0]) == {0, 1, 2, 3}
        assert exec_plan.n_barriers >= 1

    def test_3d_edges_then_corners(self, rng):
        g = StencilGroup(boundary_stencils_full(3, "u"))
        u = rng.random((6, 6, 6))
        got = run_group(g, {"u": u}, backend="c")["u"]
        # 3-D corner is the triple reflection of the interior corner
        assert got[0, 0, 0] == pytest.approx(-got[1, 1, 1])


class TestPeriodicBoundaries:
    def test_wraparound_values(self, rng):
        from repro.core.stencil import StencilGroup

        n = 6
        g = StencilGroup(periodic_boundary_stencils(2, n, "u"))
        u = rng.random((n + 2, n + 2))
        ref = u.copy()
        got = run_group(g, {"u": u})["u"]
        np.testing.assert_allclose(got[0, 1:-1], ref[n, 1:-1])
        np.testing.assert_allclose(got[n + 1, 1:-1], ref[1, 1:-1])
        np.testing.assert_allclose(got[1:-1, 0], ref[1:-1, n])

    def test_periodic_stencils_are_safe_inplace(self):
        g = periodic_boundary_stencils(2, 6, "u")
        for s in g:
            assert is_parallel_safe(s, {"u": (8, 8)})

    def test_periodic_heat_preserves_mean(self, rng):
        # explicit diffusion step with periodic BCs conserves total heat
        n = 12
        from repro.core.weights import WeightArray

        diff = Component(
            "u",
            WeightArray(
                [[0, 0.1, 0], [0.1, 0.6, 0.1], [0, 0.1, 0]]
            ),
        )
        step = StencilGroup(
            periodic_boundary_stencils(2, n, "u")
            + [Stencil(diff, "tmp", RectDomain((1, 1), (-1, -1)))]
        )
        u = np.zeros((n + 2, n + 2))
        u[1:-1, 1:-1] = rng.random((n, n))
        arrays = {"u": u, "tmp": np.zeros_like(u)}
        kernel = step.compile(backend="c")
        mean0 = arrays["u"][1:-1, 1:-1].mean()
        for _ in range(5):
            kernel(**arrays)
            arrays["u"], arrays["tmp"] = arrays["tmp"], arrays["u"]
            # keep dict identity stable for next call
        assert arrays["u"][1:-1, 1:-1].mean() == pytest.approx(mean0)

    def test_matches_np_roll_laplacian(self, rng):
        from repro.core.weights import WeightArray

        n = 10
        lap = Component("u", WeightArray([[0, 1, 0], [1, -4, 1], [0, 1, 0]]))
        step = StencilGroup(
            periodic_boundary_stencils(2, n, "u")
            + [Stencil(lap, "out", RectDomain((1, 1), (-1, -1)))]
        )
        u_int = rng.random((n, n))
        u = np.zeros((n + 2, n + 2))
        u[1:-1, 1:-1] = u_int
        got = run_group(step, {"u": u, "out": np.zeros_like(u)})["out"]
        want = (
            np.roll(u_int, 1, 0) + np.roll(u_int, -1, 0)
            + np.roll(u_int, 1, 1) + np.roll(u_int, -1, 1)
            - 4 * u_int
        )
        np.testing.assert_allclose(got[1:-1, 1:-1], want, atol=1e-13)
