"""CLI: ``python -m repro.figures <fig6|fig7|fig8|fig9|all> [--size N]``."""

from __future__ import annotations

import argparse

from . import fig6, fig7, fig8, fig9


def main(argv=None) -> None:
    ap = argparse.ArgumentParser(
        prog="repro.figures",
        description="Regenerate the evaluation figures of the Snowflake paper.",
    )
    ap.add_argument("figure", choices=["fig6", "fig7", "fig8", "fig9", "all"])
    ap.add_argument(
        "--size", type=int, default=None,
        help="host problem size per dimension (default: figure-specific)",
    )
    ap.add_argument("--repeats", type=int, default=3)
    ap.add_argument("--cycles", type=int, default=10, help="fig9 V-cycles")
    args = ap.parse_args(argv)

    if args.figure in ("fig6", "all"):
        fig6.main(repeats=args.repeats)
        print()
    if args.figure in ("fig7", "all"):
        fig7.main(n=args.size or 64, repeats=args.repeats)
        print()
    if args.figure in ("fig8", "all"):
        sizes = (16, 32, args.size) if args.size else (16, 32, 64)
        fig8.main(host_sizes=tuple(sorted(set(sizes))), repeats=args.repeats)
        print()
    if args.figure in ("fig9", "all"):
        fig9.main(n=args.size or 32, cycles=args.cycles)


if __name__ == "__main__":
    main()
