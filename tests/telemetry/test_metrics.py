"""Latency histograms and the OpenMetrics exporter/endpoint."""

import threading
import urllib.error
import urllib.request

import pytest

from repro import telemetry
from repro.telemetry import metrics
from repro.telemetry.metrics import (
    BUCKETS,
    OPENMETRICS_CONTENT_TYPE,
    MetricsServer,
    observe,
    percentile_from_buckets,
    render_openmetrics,
    snapshot_histograms,
    validate_openmetrics,
)


class TestBuckets:
    def test_ladder_is_strictly_increasing(self):
        assert list(BUCKETS) == sorted(BUCKETS)
        assert len(set(BUCKETS)) == len(BUCKETS)

    def test_bounds_are_exact_decimals(self):
        # merged histograms are a cross-process contract: the bounds
        # must render identically everywhere (2.5e-06, not 2.4999...e-06)
        for b in BUCKETS:
            assert float(f"{b:.6g}") == b

    def test_spans_microseconds_to_minutes(self):
        assert BUCKETS[0] == 1e-6
        assert BUCKETS[-1] == 100.0


class TestObserve:
    def test_count_sum_min_max(self):
        for v in (0.002, 0.004, 0.006):
            observe("t", v)
        (rec,) = snapshot_histograms()["t"]
        assert rec["count"] == 3
        assert rec["sum"] == pytest.approx(0.012)
        assert rec["min"] == pytest.approx(0.002)
        assert rec["max"] == pytest.approx(0.006)

    def test_labels_split_series(self):
        observe("kernel.call", 0.001, backend="c")
        observe("kernel.call", 0.002, backend="numpy")
        recs = snapshot_histograms()["kernel.call"]
        assert sorted(r["labels"]["backend"] for r in recs) == ["c", "numpy"]
        assert all(r["count"] == 1 for r in recs)

    def test_percentiles_land_in_the_right_bucket(self):
        # 100 observations at ~3ms: every quantile must report inside
        # the (2.5ms, 5ms] bucket
        for _ in range(100):
            observe("t", 0.003)
        (rec,) = snapshot_histograms()["t"]
        for q in ("p50", "p95", "p99"):
            assert 0.0025 < rec[q] <= 0.005

    def test_buckets_are_cumulative_and_json_safe(self):
        observe("t", 0.003)
        (rec,) = snapshot_histograms()["t"]
        counts = [c for _, c in rec["buckets"]]
        assert counts == sorted(counts)  # cumulative
        assert rec["buckets"][-1][0] == "+Inf"  # str, not float inf
        assert rec["buckets"][-1][1] == rec["count"]
        import json

        json.loads(json.dumps(rec))  # strict JSON round-trip

    def test_off_mode_is_a_noop(self):
        telemetry.set_mode("off")
        observe("t", 1.0)
        telemetry.set_mode("counters")
        assert "t" not in snapshot_histograms()

    def test_overflow_bucket_catches_outliers(self):
        observe("t", 1e6)
        (rec,) = snapshot_histograms()["t"]
        finite = [c for b, c in rec["buckets"] if b != "+Inf"]
        assert finite[-1] == 0
        assert rec["buckets"][-1][1] == 1


class TestPercentileEstimate:
    def test_empty_returns_none(self):
        assert percentile_from_buckets([0] * (len(BUCKETS) + 1), 0.5) is None

    def test_interpolates_within_bucket(self):
        counts = [0] * (len(BUCKETS) + 1)
        counts[3] = 10  # all mass in bucket (BUCKETS[2], BUCKETS[3]]
        lo, hi = BUCKETS[2], BUCKETS[3]
        p50 = percentile_from_buckets(counts, 0.5)
        assert lo < p50 < hi


class TestTimersFeedHistograms:
    def test_record_time_lands_in_histogram(self):
        telemetry.record_time("jit.cc", 0.1)
        assert snapshot_histograms()["jit.cc"][0]["count"] == 1

    def test_kernel_call_lands_labelled(self):
        telemetry.kernel_call("numpy", 0.01, 1000)
        (rec,) = snapshot_histograms()["kernel.call"]
        assert rec["labels"] == {"backend": "numpy"}

    def test_snapshot_carries_histograms(self):
        telemetry.record_time("t", 0.5)
        snap = telemetry.snapshot()
        assert snap["histograms"]["t"][0]["count"] == 1


class TestConcurrency:
    def test_shards_merge_exactly(self):
        def worker(tag):
            for i in range(2000):
                observe("hot", 0.001, worker=tag)
                observe(f"key.{tag}.{i % 7}", 0.002)

        threads = [
            threading.Thread(target=worker, args=(str(t),)) for t in range(8)
        ]
        for t in threads:
            t.start()
        for t in threads:
            t.join()
        hists = snapshot_histograms()
        assert sum(r["count"] for r in hists["hot"]) == 16000
        per_key = [
            r["count"] for name, recs in hists.items()
            if name.startswith("key.") for r in recs
        ]
        assert sum(per_key) == 16000

    def test_snapshot_during_registration_never_raises_or_drops(self):
        # regression: reading while writers register brand-new series
        started = threading.Barrier(5)

        def churn(tag):
            started.wait()
            for i in range(400):
                observe(f"churn.{tag}.{i}", 0.001)

        threads = [
            threading.Thread(target=churn, args=(t,)) for t in range(4)
        ]
        for t in threads:
            t.start()
        started.wait()
        for _ in range(25):
            snapshot_histograms()
        for t in threads:
            t.join()
        hists = snapshot_histograms()
        churned = sum(
            r["count"] for name, recs in hists.items()
            if name.startswith("churn.") for r in recs
        )
        assert churned == 4 * 400

    def test_reset_race_cannot_orphan_a_shard(self):
        # regression: a reset between a thread's generation check and
        # its locked publish used to leave the shard cached thread-
        # locally but unpublished — every later observation silently
        # vanished.  Interleave observes and resets, then confirm the
        # post-reset observations all surface.
        barrier = threading.Barrier(2)

        def observer():
            barrier.wait()
            for _ in range(5000):
                observe("contested", 0.001)

        t = threading.Thread(target=observer)
        t.start()
        barrier.wait()
        for _ in range(20):
            metrics.reset_histograms()
        t.join()
        metrics.reset_histograms()
        observe("contested", 0.001)  # same thread-local cache path
        t2 = threading.Thread(target=lambda: observe("contested", 0.002))
        t2.start()
        t2.join()
        (rec,) = snapshot_histograms()["contested"]
        assert rec["count"] == 2


class TestRenderOpenMetrics:
    def _populate(self):
        telemetry.count("jit.cache.miss", 2)
        telemetry.record_time("jit.cc", 0.2)
        telemetry.kernel_call("numpy", 0.01, 1000)
        telemetry.count("codegen.numpy.sources")
        observe("dmem.halo.rtt", 0.003, rank="0")

    def test_output_validates(self):
        self._populate()
        text = render_openmetrics()
        assert validate_openmetrics(text) == []
        assert text.endswith("# EOF\n")

    def test_families_present_and_typed(self):
        self._populate()
        text = render_openmetrics()
        assert "# TYPE snowflake_jit_cache_miss counter" in text
        assert 'snowflake_kernel_calls_total{backend="numpy"} 1' in text
        assert "# TYPE snowflake_kernel_call_seconds histogram" in text
        assert 'le="+Inf"' in text
        assert ('snowflake_dmem_halo_rtt_seconds_bucket'
                '{le="1e-06",rank="0"}' in text)
        assert "snowflake_build_info" in text

    def test_backend_label_extracted_from_counter_names(self):
        telemetry.count("codegen.numpy.sources", 3)
        text = render_openmetrics()
        assert ('snowflake_codegen_sources_total{backend="numpy"} 3'
                in text)

    def test_event_counts_exported(self):
        telemetry.set_mode("events")
        telemetry.event("guards.trip", guard="nonfinite")
        telemetry.set_mode("counters")
        text = render_openmetrics()
        assert 'snowflake_events_total{event="guards.trip"} 1' in text

    def test_validator_rejects_garbage(self):
        assert validate_openmetrics("snowflake_x_total 1\n") != []
        assert validate_openmetrics("") != []
        # bucket le must be monotonically increasing
        bad = (
            "# TYPE snowflake_t_seconds histogram\n"
            "# HELP snowflake_t_seconds h\n"
            'snowflake_t_seconds_bucket{le="0.5"} 1\n'
            'snowflake_t_seconds_bucket{le="0.1"} 2\n'
            "# EOF\n"
        )
        assert any("not increasing" in p for p in validate_openmetrics(bad))

    def test_label_values_escaped(self):
        observe("t", 0.001, detail='quo"te\nnewline\\slash')
        text = render_openmetrics()
        assert validate_openmetrics(text) == []
        assert '\\"' in text and "\\n" in text


class TestHTTPServer:
    def test_scrape_metrics_events_healthz(self):
        telemetry.kernel_call("numpy", 0.01, 100)
        with MetricsServer(port=0) as srv:
            base = f"http://127.0.0.1:{srv.port}"
            resp = urllib.request.urlopen(f"{base}/metrics", timeout=10)
            body = resp.read().decode()
            assert resp.headers["Content-Type"] == OPENMETRICS_CONTENT_TYPE
            assert validate_openmetrics(body) == []
            assert "snowflake_kernel_calls_total" in body
            hz = urllib.request.urlopen(f"{base}/healthz", timeout=10)
            assert hz.read() == b"ok\n"
            ev = urllib.request.urlopen(f"{base}/events", timeout=10)
            assert ev.status == 200

    def test_unknown_route_is_404(self):
        with MetricsServer(port=0) as srv:
            with pytest.raises(urllib.error.HTTPError) as ei:
                urllib.request.urlopen(
                    f"http://127.0.0.1:{srv.port}/nope", timeout=10
                )
            assert ei.value.code == 404

    def test_ephemeral_port_is_real(self):
        srv = MetricsServer(port=0)
        try:
            assert srv.port > 0
        finally:
            srv.close()


class TestReset:
    def test_reset_clears_series(self):
        observe("t", 0.1)
        telemetry.reset()
        assert snapshot_histograms() == {}

    def test_observations_resume_after_reset(self):
        observe("t", 0.1)
        telemetry.reset()
        observe("t", 0.2)
        assert snapshot_histograms()["t"][0]["count"] == 1
