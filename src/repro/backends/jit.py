"""JIT machinery: compile generated C to a shared object and load it.

The paper's micro-compilers render the stencil AST into a performance
language, hand it to a system compiler, and wrap the binary in a Python
callable via the built-in FFI, caching callables for subsequent use
(SectionIV).  This module implements exactly that pipeline with gcc +
:mod:`ctypes`:

* source is hashed (sha256) — the hash keys both an in-process cache and
  an on-disk cache directory, so identical stencils never recompile,
  even across interpreter sessions;
* compiler and flags mirror SectionV-A (``-std=c99 -O3 -fgcse -fPIC``),
  with ``-fopenmp`` / ``-lm`` added per backend request.

Hardened for production use:

* compilation is serialized **per source tag**, not globally — threads
  building different stencils run their compiler subprocesses
  concurrently;
* every compiler subprocess runs under a hard wall-clock timeout
  (``SNOWFLAKE_CC_TIMEOUT`` seconds, default 300; per-call override via
  ``timeout=``), raising the retryable :class:`CompileTimeout`;
* a cached ``.so`` that fails to ``dlopen`` (truncated by a crash, disk
  corruption) is **quarantined** (renamed ``*.so.bad``) and rebuilt from
  source transparently, with one :class:`ResilienceWarning`;
* ``sf_*.tmp.so`` temporaries left by crashed compiles are swept by
  :func:`sweep_orphans` (and ``python -m repro doctor``);
* the spawn/load/cache paths carry named fault-injection sites
  (``jit.spawn``, ``jit.load``, ``jit.cache.read``, ``jit.cache.write``
  — see :mod:`repro.resilience.faults`).
"""

from __future__ import annotations

import ctypes
import hashlib
import os
import subprocess
import tempfile
import threading
import time
import warnings
from pathlib import Path

from .. import telemetry
from ..resilience.faults import ResilienceWarning, fault_point
from ..telemetry import tracing

__all__ = [
    "CompileError",
    "CompileTimeout",
    "compile_and_load",
    "cache_dir",
    "clear_disk_cache",
    "sweep_orphans",
    "default_cc_timeout",
    "source_tag",
]


class CompileError(RuntimeError):
    """gcc rejected generated source — always a codegen bug; the message
    carries the compiler output and a path to the offending source."""


class CompileTimeout(CompileError):
    """The compiler subprocess exceeded its hard wall-clock timeout.

    Transient by definition (a loaded machine, a hung license check) —
    the fallback policy retries these in place before degrading."""


_DEFAULT_FLAGS = ("-std=c99", "-O3", "-fgcse", "-fPIC", "-shared")

_lock = threading.Lock()  # guards _loaded and _tag_locks only
_loaded: dict[str, ctypes.CDLL] = {}
_tag_locks: dict[str, threading.Lock] = {}


def cache_dir() -> Path:
    """On-disk cache location (override with ``SNOWFLAKE_CACHE_DIR``)."""
    root = os.environ.get("SNOWFLAKE_CACHE_DIR")
    if root:
        p = Path(root)
    else:
        p = Path(tempfile.gettempdir()) / "snowflake-jit-cache"
    p.mkdir(parents=True, exist_ok=True)
    return p


def default_cc_timeout() -> float | None:
    """Hard compiler timeout in seconds (``SNOWFLAKE_CC_TIMEOUT``;
    ``<= 0`` disables; default 300)."""
    raw = os.environ.get("SNOWFLAKE_CC_TIMEOUT", "").strip()
    if not raw:
        return 300.0
    try:
        val = float(raw)
    except ValueError:
        raise ValueError(
            f"SNOWFLAKE_CC_TIMEOUT must be a number of seconds, "
            f"got {raw!r}"
        ) from None
    return None if val <= 0 else val


def clear_disk_cache() -> int:
    """Delete cached artifacts — sources, shared objects, quarantined
    ``*.so.bad`` and orphaned ``*.tmp.so`` — returning the number of
    files *actually* deleted (a concurrent sweeper's work is not
    double-counted)."""
    n = 0
    for f in cache_dir().glob("sf_*"):
        try:
            f.unlink()
            n += 1
        except FileNotFoundError:
            pass  # lost a race with another process: not our deletion
    return n


def _pid_alive(pid: int) -> bool:
    try:
        os.kill(pid, 0)
    except ProcessLookupError:
        return False
    except (PermissionError, OverflowError):
        return True  # exists but owned elsewhere / unprobeable: keep
    return True


def sweep_orphans() -> int:
    """Remove ``sf_*.tmp.so`` temporaries whose owning process is gone
    (crashed mid-compile); returns the number removed.  Temporaries of
    live processes — including this one — are left alone."""
    n = 0
    for f in cache_dir().glob("sf_*.tmp.so"):
        parts = f.name.split(".")  # sf_<tag> . <pid> . tmp . so
        try:
            pid = int(parts[-3]) if len(parts) >= 4 else -1
        except ValueError:
            pid = -1
        if pid > 0 and _pid_alive(pid):
            continue
        try:
            f.unlink()
            n += 1
        except FileNotFoundError:
            pass
    if n:
        telemetry.count("jit.orphans_swept", n)
    return n


def _cc() -> str:
    return os.environ.get("SNOWFLAKE_CC", "gcc")


def _tag(
    source: str,
    openmp: bool = False,
    extra_flags: tuple[str, ...] = (),
) -> str:
    """Cache key: source text + everything that changes the binary."""
    return hashlib.sha256(
        source.encode() + repr((openmp, extra_flags, _cc())).encode()
    ).hexdigest()[:24]


def source_tag(
    source: str,
    openmp: bool = False,
    extra_flags: tuple[str, ...] = (),
) -> str:
    """The cache key :func:`compile_and_load` would use for ``source``.

    Public so provenance reports (:mod:`repro.explain`) can name the
    exact cached artifact (``sf_<tag>.c`` / ``sf_<tag>.so`` under
    :func:`cache_dir`) without compiling anything.
    """
    return _tag(source, openmp, extra_flags)


def _quarantine(so_path: Path) -> Path:
    """Move a bad artifact out of the compile path; never raises."""
    bad = so_path.with_name(so_path.name + ".bad")
    try:
        os.replace(so_path, bad)
        return bad
    except OSError:
        try:
            so_path.unlink(missing_ok=True)
        except OSError:
            pass
        return so_path


def _load(so_path: Path) -> ctypes.CDLL:
    if fault_point("jit.load"):
        raise OSError(f"injected fault: dlopen {so_path.name}")
    return ctypes.CDLL(str(so_path))


def _build(
    tag: str,
    source: str,
    d: Path,
    so_path: Path,
    openmp: bool,
    extra_flags: tuple[str, ...],
    timeout: float | None,
) -> None:
    """Compile ``source`` and atomically publish ``so_path``."""
    c_path = d / f"sf_{tag}.c"
    c_path.write_text(source)
    cmd = [_cc(), *_DEFAULT_FLAGS]
    if openmp:
        cmd.append("-fopenmp")
    cmd += list(extra_flags)
    tmp_so = d / f"sf_{tag}.{os.getpid()}.tmp.so"
    cmd += [str(c_path), "-o", str(tmp_so), "-lm"]
    if timeout is None:
        timeout = default_cc_timeout()
    if fault_point("jit.spawn"):
        raise CompileError(f"injected fault: compiler spawn ({cmd[0]})")
    t0 = time.perf_counter()
    try:
        with tracing.span("cc", cat="jit", tag=tag, cc=cmd[0], openmp=openmp):
            proc = subprocess.run(
                cmd, capture_output=True, text=True, timeout=timeout
            )
    except subprocess.TimeoutExpired:
        tmp_so.unlink(missing_ok=True)
        telemetry.count("jit.cc.timeouts")
        raise CompileTimeout(
            f"compiler exceeded the {timeout:.0f}s hard timeout: "
            f"{' '.join(cmd)}"
        ) from None
    telemetry.record_time("jit.cc", time.perf_counter() - t0)
    telemetry.event("jit.cc", tag=tag, rc=proc.returncode)
    if proc.returncode != 0:
        tmp_so.unlink(missing_ok=True)
        raise CompileError(
            f"compiler failed ({' '.join(cmd)}):\n{proc.stderr}\n"
            f"source kept at {c_path}"
        )
    if fault_point("jit.cache.write"):
        tmp_so.unlink(missing_ok=True)
        raise OSError("injected fault: cache write failed")
    os.replace(tmp_so, so_path)  # atomic publish for concurrent procs


def _materialize(
    tag: str,
    source: str,
    openmp: bool,
    extra_flags: tuple[str, ...],
    timeout: float | None,
) -> ctypes.CDLL:
    d = cache_dir()
    so_path = d / f"sf_{tag}.so"
    if so_path.exists():
        if fault_point("jit.cache.read"):
            # the injected failure mode is on-disk corruption of the
            # cached artifact — exercised end-to-end through dlopen.
            # Replaced via a new inode: dlopen caches handles by
            # dev/inode, so an in-place overwrite of an already-mapped
            # artifact would be silently served from the old mapping.
            corrupt = so_path.with_name(so_path.name + ".corrupt")
            corrupt.write_bytes(b"\x7fELF injected corruption")
            os.replace(corrupt, so_path)
        try:
            lib = _load(so_path)
            telemetry.count("jit.cache.hit.disk")
            return lib
        except OSError as e:
            bad = _quarantine(so_path)
            telemetry.count("jit.quarantine")
            telemetry.event("jit.quarantine", artifact=so_path.name)
            warnings.warn(
                ResilienceWarning(
                    f"cached artifact {so_path.name} failed to load "
                    f"({e}); quarantined as {bad.name}, recompiling"
                ),
                stacklevel=3,
            )
    telemetry.count("jit.cache.miss")
    _build(tag, source, d, so_path, openmp, extra_flags, timeout)
    return _load(so_path)


def compile_and_load(
    source: str,
    *,
    openmp: bool = False,
    extra_flags: tuple[str, ...] = (),
    timeout: float | None = None,
) -> ctypes.CDLL:
    """Compile C ``source`` to a shared object and dlopen it (cached).

    Serialized per source tag: concurrent callers compiling *different*
    stencils proceed in parallel; callers racing on the *same* stencil
    share one compile."""
    tag = _tag(source, openmp, extra_flags)
    with _lock:
        lib = _loaded.get(tag)
        if lib is not None:
            telemetry.count("jit.cache.hit.memory")
            return lib
        tag_lock = _tag_locks.setdefault(tag, threading.Lock())
    t0 = time.perf_counter()
    with tracing.span("compile_and_load", cat="jit", tag=tag, openmp=openmp):
        with tag_lock:
            telemetry.record_time("jit.lock_wait", time.perf_counter() - t0)
            with _lock:
                lib = _loaded.get(tag)
                if lib is not None:
                    telemetry.count("jit.cache.hit.memory")
                    return lib
            lib = _materialize(tag, source, openmp, extra_flags, timeout)
            with _lock:
                _loaded[tag] = lib
    return lib
