"""Group-level transformation passes and the pass manager.

A pass is a named, pure transformation ``StencilGroup -> StencilGroup``
that must preserve observable semantics for a declared set of live
grids.  The :class:`PassManager` runs a pipeline, records what each
pass did, and (optionally) re-validates after every step — the "make
analysis easy so optimization is safe" discipline of SectionIII.
"""

from __future__ import annotations

import abc
from dataclasses import dataclass, field
from typing import Mapping, Sequence

from .. import telemetry
from ..analysis.dag import greedy_phases
from ..analysis.optimize import eliminate_dead_stencils, reorder_for_phases
from ..core.stencil import StencilGroup
from ..core.validate import check_group

__all__ = [
    "GroupPass",
    "PassManager",
    "DeadStencilElimination",
    "Reorder",
    "Validate",
    "default_pipeline",
    "optimize_group",
]


class GroupPass(abc.ABC):
    """One transformation step."""

    name: str = "pass"

    @abc.abstractmethod
    def run(
        self,
        group: StencilGroup,
        shapes: Mapping[str, tuple[int, ...]],
        live_grids: set[str],
    ) -> StencilGroup:
        ...


class DeadStencilElimination(GroupPass):
    """Drop stencils whose writes are never observed (SectionVII)."""

    name = "dead-stencil-elimination"

    def run(self, group, shapes, live_grids):
        return eliminate_dead_stencils(group, shapes, live_grids=live_grids)


class Reorder(GroupPass):
    """Legal reordering that clusters independent stencils so the greedy
    barrier policy emits fewer phases (SectionVII reordering)."""

    name = "reorder"

    def run(self, group, shapes, live_grids):
        return reorder_for_phases(group, shapes)


class Validate(GroupPass):
    """No-op transformation that re-checks static validity."""

    name = "validate"

    def run(self, group, shapes, live_grids):
        check_group(group, shapes)
        return group


@dataclass
class PassRecord:
    """What one pass did, for reports and debugging."""

    name: str
    stencils_before: int
    stencils_after: int
    phases_before: int
    phases_after: int


@dataclass
class PassManager:
    """Run a pipeline of :class:`GroupPass` steps with bookkeeping.

    ``live_grids`` defaults to every grid the group touches (which makes
    dead-stencil elimination a no-op — callers state what they observe
    to unlock it).  Set ``validate_each`` to re-run static validation
    after every pass (cheap, catches buggy custom passes immediately).
    """

    passes: Sequence[GroupPass]
    validate_each: bool = True
    records: list[PassRecord] = field(default_factory=list)

    def run(
        self,
        group: StencilGroup,
        shapes: Mapping[str, Sequence[int]],
        live_grids: set[str] | None = None,
    ) -> StencilGroup:
        shapes = {g: tuple(int(x) for x in s) for g, s in shapes.items()}
        if live_grids is None:
            live_grids = group.grids()
        self.records = []
        check_group(group, shapes)
        # One phase analysis up front; each pass's "after" count is the
        # next pass's "before" count (greedy_phases re-runs the full
        # Diophantine dependence analysis, so halving the calls matters).
        phases_n = len(greedy_phases(group, shapes))
        for p in self.passes:
            before_n = len(group)
            before_ph = phases_n
            with telemetry.tracing.span(
                f"pass:{p.name}", cat="frontend",
                group=group.name, stencils_in=before_n,
            ), telemetry.timed(f"frontend.pass.{p.name}"):
                group = p.run(group, shapes, live_grids)
            if self.validate_each:
                check_group(group, shapes)
            after_n = len(group)
            if after_n < before_n:
                telemetry.count(
                    "frontend.stencils_eliminated", before_n - after_n
                )
            phases_n = len(greedy_phases(group, shapes))
            self.records.append(
                PassRecord(
                    p.name,
                    before_n,
                    after_n,
                    before_ph,
                    phases_n,
                )
            )
            telemetry.event(
                "frontend.pass",
                pass_name=p.name,
                stencils=after_n,
            )
        return group

    def report(self) -> str:
        lines = []
        for r in self.records:
            lines.append(
                f"{r.name}: {r.stencils_before}->{r.stencils_after} stencils, "
                f"{r.phases_before}->{r.phases_after} phases"
            )
        return "\n".join(lines)


def default_pipeline() -> PassManager:
    """The standard optimization pipeline: eliminate, reorder, validate."""
    return PassManager([DeadStencilElimination(), Reorder(), Validate()])


def optimize_group(
    group: StencilGroup,
    shapes: Mapping[str, Sequence[int]],
    live_grids: set[str] | None = None,
) -> StencilGroup:
    """One-call convenience over :func:`default_pipeline`."""
    return default_pipeline().run(group, shapes, live_grids)
