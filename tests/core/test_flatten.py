"""Flattening to the canonical sum-of-products form."""

import pytest

from repro.core.components import Component
from repro.core.expr import Constant, GridRead, Param
from repro.core.flatten import FlatStencil, flatten_expr
from repro.core.weights import SparseArray, WeightArray


def terms_as_dict(flat: FlatStencil):
    """{(params, denom, reads) -> coeff} for easy assertions."""
    return {t.key(): t.coeff for t in flat.terms}


class TestBasics:
    def test_constant(self):
        f = flatten_expr(Constant(3.0), ndim=1)
        assert len(f.terms) == 1
        assert f.terms[0].coeff == 3.0
        assert f.terms[0].reads == ()

    def test_zero_constant_vanishes(self):
        f = flatten_expr(Constant(0.0), ndim=2)
        assert f.terms == ()

    def test_param(self):
        f = flatten_expr(Param("w"), ndim=1)
        assert f.terms[0].params == ("w",)

    def test_grid_read(self):
        f = flatten_expr(GridRead("u", (1,)))
        assert f.ndim == 1
        assert f.terms[0].reads[0].grid == "u"

    def test_ndim_inferred_from_reads(self):
        f = flatten_expr(GridRead("u", (0, 0)) + 1)
        assert f.ndim == 2

    def test_ndim_required_for_scalar_exprs(self):
        with pytest.raises(ValueError):
            flatten_expr(Constant(1.0))

    def test_mixed_ndim_rejected(self):
        with pytest.raises(ValueError):
            flatten_expr(GridRead("u", (0,)) + GridRead("v", (0, 0)))


class TestAlgebra:
    def test_like_terms_merge(self):
        r = GridRead("u", (0,))
        f = flatten_expr(r + r)
        assert len(f.terms) == 1
        assert f.terms[0].coeff == 2.0

    def test_cancellation_drops_term(self):
        r = GridRead("u", (0,))
        f = flatten_expr(r - r)
        assert f.terms == ()

    def test_distribution(self):
        u, v = GridRead("u", (0,)), GridRead("v", (0,))
        f = flatten_expr((u + v) * 2.0)
        d = terms_as_dict(f)
        assert len(d) == 2
        assert all(c == 2.0 for c in d.values())

    def test_product_of_reads(self):
        u, v = GridRead("u", (0,)), GridRead("v", (1,))
        f = flatten_expr(u * v)
        assert f.terms[0].degree() == 2
        assert not f.is_linear()

    def test_neg(self):
        f = flatten_expr(-GridRead("u", (0,)))
        assert f.terms[0].coeff == -1.0

    def test_division_by_constant(self):
        f = flatten_expr(GridRead("u", (0,)) / 4.0)
        assert f.terms[0].coeff == 0.25

    def test_division_by_param(self):
        f = flatten_expr(GridRead("u", (0,)) / Param("d"))
        assert f.terms[0].denom_params == ("d",)

    def test_division_by_grid_rejected(self):
        with pytest.raises(ValueError):
            flatten_expr(Constant(1.0) / GridRead("u", (0,)))

    def test_division_by_zero_rejected(self):
        with pytest.raises(ZeroDivisionError):
            flatten_expr(GridRead("u", (0,)) / 0.0)

    def test_division_by_sum_rejected(self):
        with pytest.raises(ValueError):
            flatten_expr(GridRead("u", (0,)) / (Param("a") + Param("b")))

    def test_param_products_keep_multiplicity(self):
        w = Param("w")
        f = flatten_expr(w * w * GridRead("u", (0,)))
        assert f.terms[0].params == ("w", "w")


class TestComponentExpansion:
    def test_numeric_weights(self):
        c = Component("u", WeightArray([1, -2, 1]))
        f = flatten_expr(c)
        d = {t.reads[0].offset: t.coeff for t in f.terms}
        assert d == {(-1,): 1.0, (0,): -2.0, (1,): 1.0}

    def test_scaled_component(self):
        c = Component("fine", {(-1,): 0.5, (0,): 0.5}, scale=2)
        f = flatten_expr(c)
        for t in f.terms:
            assert t.reads[0].scale == (2,)

    def test_expression_weight_is_anchored_at_shifted_point(self):
        # weight at offset +1 reads beta at its own centre -> beta[i+1]
        beta = Component("beta", SparseArray({(0,): 1.0}))
        c = Component("x", SparseArray({(1,): beta}))
        f = flatten_expr(c)
        assert len(f.terms) == 1
        reads = {r.grid: r.offset for r in f.terms[0].reads}
        assert reads == {"x": (1,), "beta": (1,)}

    def test_vc_construction_low_face(self):
        # weight at -1 reading beta's +1 entry -> beta[i] (the low face)
        beta_hi = Component("beta", SparseArray({(1,): 1.0}))
        c = Component("x", SparseArray({(-1,): beta_hi}))
        f = flatten_expr(c)
        reads = {r.grid: r.offset for r in f.terms[0].reads}
        assert reads == {"x": (-1,), "beta": (0,)}

    def test_nested_component_degree(self):
        beta = Component("beta", SparseArray({(0,): 1.0}))
        c = Component("x", SparseArray({(0,): beta}))
        f = flatten_expr(c)
        assert f.terms[0].degree() == 2  # beta * x

    def test_paper_fig4_flattens(self):
        from repro.hpgmg.operators import vc_laplacian

        Ax = vc_laplacian(2, h=0.1)
        b = Component("rhs", SparseArray({(0, 0): 1.0}))
        lam = Component("lam", SparseArray({(0, 0): 1.0}))
        orig = Component("x", SparseArray({(0, 0): 1.0}))
        final = orig + lam * (b - Ax)
        f = flatten_expr(final)
        assert f.grids() == {"x", "rhs", "lam", "beta_0", "beta_1"}
        # lam * beta * x terms are degree 3
        assert f.max_degree() == 3


class TestQueries:
    def _flat(self):
        body = Param("w") * GridRead("u", (1, 0)) + GridRead("v", (0, 0)) / Param("d")
        return flatten_expr(body)

    def test_grids(self):
        assert self._flat().grids() == {"u", "v"}

    def test_params(self):
        assert self._flat().params() == {"w", "d"}

    def test_reads_sorted_distinct(self):
        r = GridRead("u", (0,))
        f = flatten_expr(r * r + r)
        assert f.reads() == [r]

    def test_radius(self):
        f = flatten_expr(GridRead("u", (3, 0)) + GridRead("u", (0, -2)))
        assert f.radius() == 3

    def test_signature_stable_and_order_sensitive(self):
        a = flatten_expr(GridRead("u", (0,)) + GridRead("v", (0,)))
        b = flatten_expr(GridRead("u", (0,)) + GridRead("v", (0,)))
        assert a.signature() == b.signature()
        assert a == b and hash(a) == hash(b)

    def test_equality_differs_on_coeff(self):
        a = flatten_expr(2 * GridRead("u", (0,)))
        b = flatten_expr(3 * GridRead("u", (0,)))
        assert a != b
