"""Sequential C backend: codegen structure, FFI wrapper guards, caching."""

import numpy as np
import pytest

from repro.backends.c_backend import generate_c_source
from repro.backends.codegen_c import (
    CodegenContext,
    detect_parity_class,
    ctype_for,
)
from repro.core.components import Component
from repro.core.domains import RectDomain
from repro.core.stencil import Stencil, StencilGroup
from repro.core.weights import WeightArray
from repro.hpgmg.operators import red_black_domains

INTERIOR = RectDomain((1, 1), (-1, -1))
LAP = Component("u", WeightArray([[0, 1, 0], [1, -4, 1], [0, 1, 0]]))


def group_of(*stencils):
    return StencilGroup(stencils)


class TestSourceGeneration:
    def test_signature_and_prologue(self):
        g = group_of(Stencil(LAP, "out", INTERIOR))
        src = generate_c_source(g, {"u": (8, 8), "out": (8, 8)}, np.float64)
        assert "void sf_kernel(double** grids, const double* params)" in src
        assert "double* restrict g_out = grids[0];" in src
        assert "double* restrict g_u = grids[1];" in src

    def test_strides_baked(self):
        g = group_of(Stencil(LAP, "out", INTERIOR))
        src = generate_c_source(g, {"u": (8, 16), "out": (8, 16)}, np.float64)
        assert "16*i0" in src  # row stride of the 8x16 grid

    def test_float32_ctype(self):
        g = group_of(Stencil(LAP, "out", INTERIOR))
        src = generate_c_source(g, {"u": (8, 8), "out": (8, 8)}, np.float32)
        assert "float* restrict" in src
        with pytest.raises(TypeError):
            ctype_for(np.int32)

    def test_snapshot_emitted_only_for_hazards(self):
        safe = Stencil(LAP, "out", INTERIOR)
        src = generate_c_source(
            group_of(safe), {"u": (8, 8), "out": (8, 8)}, np.float64
        )
        assert "memcpy" not in src
        hazard = Stencil(LAP, "u", INTERIOR)
        src = generate_c_source(group_of(hazard), {"u": (8, 8)}, np.float64)
        assert "memcpy" in src and "snap_0" in src and "free(snap_0)" in src

    def test_gsrb_colors_need_no_snapshot(self):
        red, _ = red_black_domains(2)
        s = Stencil(LAP, "u", red)
        src = generate_c_source(group_of(s), {"u": (10, 10)}, np.float64)
        assert "memcpy" not in src

    def test_multicolor_fusion_collapses_boxes(self):
        red, _ = red_black_domains(2)
        s = Stencil(LAP, "u", red)
        fused = generate_c_source(
            group_of(s), {"u": (12, 12)}, np.float64, tile=None, multicolor=True
        )
        unfused = generate_c_source(
            group_of(s), {"u": (12, 12)}, np.float64, tile=None, multicolor=False
        )
        # fused: one nest with a parity-corrected start; unfused: two nests
        assert fused.count("for (int64_t i0") == 1
        assert unfused.count("for (int64_t i0") == 2
        assert "% 2" in fused

    def test_tiling_emits_tile_loop(self):
        s = Stencil(LAP, "out", INTERIOR)
        src = generate_c_source(
            group_of(s), {"u": (64, 64), "out": (64, 64)}, np.float64, tile=8
        )
        assert "for (int64_t t0" in src

    def test_params_unpacked(self):
        from repro.core.expr import Param

        s = Stencil(Param("w") * LAP, "out", INTERIOR)
        src = generate_c_source(
            group_of(s), {"u": (8, 8), "out": (8, 8)}, np.float64
        )
        assert "const double p_w = (double)params[0];" in src

    def test_weird_grid_names_sanitized(self):
        c = Component("beta-x.1", WeightArray([[1]]))
        s = Stencil(c, "out grid", INTERIOR)
        shapes = {"beta-x.1": (8, 8), "out grid": (8, 8)}
        src = generate_c_source(group_of(s), shapes, np.float64)
        assert "g_beta_x_1" in src and "g_out_grid" in src
        # and it actually compiles + runs
        arrays = {"beta-x.1": np.ones((8, 8)), "out grid": np.zeros((8, 8))}
        k = s.compile(backend="c")
        k(**arrays)
        assert arrays["out grid"][1:-1, 1:-1].all()


class TestParityDetection:
    def _rects(self, dom, shape):
        from repro.core.domains import as_domain

        return [r for r in as_domain(dom).resolve(shape) if not r.is_empty()]

    def test_checkerboard_detected(self):
        red, black = red_black_domains(2)
        pc = detect_parity_class(self._rects(red, (12, 12)))
        assert pc is not None
        assert pc.parity == 0
        pc2 = detect_parity_class(self._rects(black, (12, 12)))
        assert pc2 is not None and pc2.parity == 1

    def test_checkerboard_detected_odd_interior(self):
        red, _ = red_black_domains(2)
        assert detect_parity_class(self._rects(red, (13, 13))) is not None

    def test_3d_checkerboard_detected(self):
        red, _ = red_black_domains(3)
        assert detect_parity_class(self._rects(red, (8, 8, 8))) is not None

    def test_single_box_not_detected(self):
        dom = RectDomain((1, 1), (-1, -1), (2, 2))
        assert detect_parity_class(self._rects(dom, (12, 12))) is None

    def test_stride3_not_detected(self):
        dom = RectDomain((1, 1), (-1, -1), (3, 3)) + RectDomain(
            (2, 2), (-1, -1), (3, 3)
        )
        assert detect_parity_class(self._rects(dom, (14, 14))) is None

    def test_mixed_parity_not_detected(self):
        dom = RectDomain((1, 1), (-1, -1), (2, 2)) + RectDomain(
            (1, 2), (-1, -1), (2, 2)
        )
        assert detect_parity_class(self._rects(dom, (12, 12))) is None


class TestWrapperGuards:
    def _kernel(self):
        return Stencil(LAP, "out", INTERIOR).compile(
            backend="c", shapes={"u": (8, 8), "out": (8, 8)}
        )

    def test_noncontiguous_rejected(self, rng):
        k = self._kernel()
        u = np.asfortranarray(rng.random((8, 8)))
        with pytest.raises(ValueError, match="contiguous"):
            k(u=u, out=np.zeros((8, 8)))

    def test_aliasing_rejected(self, rng):
        k = self._kernel()
        u = rng.random((8, 8))
        with pytest.raises(ValueError, match="alias"):
            k(u=u, out=u)

    def test_overlapping_views_rejected(self, rng):
        k = self._kernel()
        buf = rng.random((9, 8))
        with pytest.raises(ValueError, match="alias"):
            k(u=buf[:8], out=buf[1:])

    def test_wrong_shape_recompiles_not_crashes(self, rng):
        # CompiledKernel lazily respecializes on new shapes
        k = self._kernel()
        u = rng.random((10, 10))
        out = np.zeros((10, 10))
        k(u=u, out=out)
        assert out[1:-1, 1:-1].any()

    def test_dtype_pinning(self, rng):
        k = Stencil(LAP, "out", INTERIOR).compile(
            backend="c", shapes={"u": (8, 8), "out": (8, 8)}, dtype=np.float64
        )
        with pytest.raises(TypeError):
            k(u=rng.random((8, 8)).astype(np.float32),
              out=np.zeros((8, 8), dtype=np.float32))


class TestOptions:
    def test_unknown_option_rejected(self):
        s = Stencil(LAP, "out", INTERIOR)
        with pytest.raises(TypeError):
            s.compile(backend="c", frobnicate=True)

    def test_tile_changes_nothing_numerically(self, rng):
        s = Stencil(LAP, "out", INTERIOR)
        u = rng.random((32, 32))
        outs = []
        for tile in (None, 4, 8):
            out = np.zeros((32, 32))
            s.compile(backend="c", tile=tile)(u=u, out=out)
            outs.append(out)
        np.testing.assert_array_equal(outs[0], outs[1])
        np.testing.assert_array_equal(outs[0], outs[2])
