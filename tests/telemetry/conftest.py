"""Telemetry tests get a clean, env-independent registry each time."""

import pytest

from repro import telemetry


@pytest.fixture(autouse=True)
def clean_telemetry(monkeypatch):
    monkeypatch.delenv("SNOWFLAKE_TELEMETRY", raising=False)
    telemetry.set_mode(None)
    telemetry.reset()
    yield
    telemetry.set_mode(None)
    telemetry.reset()
