"""Machine substrate: STREAM measurement, Roofline bounds, platform models."""

from .model import IMPLEMENTATIONS, Implementation, KernelWork, predict_sweep_time
from .roofline import (
    PAPER_BYTES_PER_STENCIL,
    bytes_per_point,
    roofline_stencils_per_s,
    roofline_time,
)
from .specs import I7_4765T, K20C, PAPER_PLATFORMS, MachineSpec, host_spec
from .stream import STREAM_DOT_C_SOURCE, stream_dot_bandwidth

__all__ = [
    "IMPLEMENTATIONS",
    "Implementation",
    "KernelWork",
    "predict_sweep_time",
    "PAPER_BYTES_PER_STENCIL",
    "bytes_per_point",
    "roofline_stencils_per_s",
    "roofline_time",
    "I7_4765T",
    "K20C",
    "PAPER_PLATFORMS",
    "MachineSpec",
    "host_spec",
    "STREAM_DOT_C_SOURCE",
    "stream_dot_bandwidth",
]
