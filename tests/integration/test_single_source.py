"""The headline claim: one Python source, every backend, same answers.

Runs the complete VC GSRB smoother and a small end-to-end multigrid
solve through every registered backend and checks both numerical
agreement and that the convergence behaviour is backend-independent.
"""

import numpy as np
import pytest

from _helpers import ALL_BACKENDS
from repro.hpgmg.level import Level
from repro.hpgmg.problem import setup_problem
from repro.hpgmg.solver import MultigridSolver


@pytest.mark.parametrize("backend", ALL_BACKENDS)
def test_smoother_identical_across_backends(backend, rng):
    from repro.hpgmg.operators import smooth_group, vc_laplacian

    group = smooth_group(2, vc_laplacian(2, 1 / 10), lam="lam")
    shape = (12, 12)
    base = {g: rng.random(shape) for g in group.grids()}
    base["lam"] = 0.05 + 0.01 * rng.random(shape)

    ref = {g: a.copy() for g, a in base.items()}
    group.compile(backend="python")(**ref)

    got = {g: a.copy() for g, a in base.items()}
    group.compile(backend=backend)(**got)
    np.testing.assert_allclose(got["x"], ref["x"], rtol=1e-12, atol=1e-13)


@pytest.mark.parametrize("backend", ["numpy", "c", "openmp", "opencl-sim"])
def test_full_solve_converges_identically(backend):
    level, _ = setup_problem(8, ndim=3, coefficients="variable",
                             backend="numpy")
    solver = MultigridSolver(level, backend=backend)
    hist = solver.solve(cycles=4)
    # the histories must match the numpy-backend run to near machine eps
    level_ref, _ = setup_problem(8, ndim=3, coefficients="variable",
                                 backend="numpy")
    ref = MultigridSolver(level_ref, backend="numpy").solve(cycles=4)
    np.testing.assert_allclose(hist, ref, rtol=1e-9)


def test_backend_is_a_constructor_argument_not_a_code_change():
    # the exact API the paper promises: same solver class, new target
    results = {}
    for backend in ("numpy", "c"):
        level, _ = setup_problem(8, ndim=2)
        solver = MultigridSolver(level, backend=backend)
        solver.solve(cycles=3)
        results[backend] = level.grids["x"].copy()
    np.testing.assert_allclose(results["numpy"], results["c"], rtol=1e-10)
