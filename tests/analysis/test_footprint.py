"""Footprint lattices and access conflicts."""

import pytest

from repro.analysis.footprint import (
    Access,
    access_conflicts,
    map_lattice,
    stencil_accesses,
)
from repro.core.components import Component
from repro.core.domains import RectDomain, ResolvedRect
from repro.core.stencil import OutputMap, Stencil
from repro.core.weights import WeightArray
from repro.hpgmg.operators import restriction_stencil

LAP5 = Component("u", WeightArray([[0, 1, 0], [1, -4, 1], [0, 1, 0]]))


class TestMapLattice:
    def test_identity(self):
        r = ResolvedRect((1, 1), (1, 1), (4, 4))
        assert map_lattice(r, (1, 1), (0, 0)) == r

    def test_offset_shifts_lows(self):
        r = ResolvedRect((1,), (2,), (3,))
        m = map_lattice(r, (1,), (5,))
        assert m.lows == (6,)
        assert m.strides == (2,)
        assert m.counts == (3,)

    def test_scale_multiplies_strides(self):
        r = ResolvedRect((1,), (1,), (4,))
        m = map_lattice(r, (2,), (-1,))
        assert m.lows == (1,)       # 2*1 - 1
        assert m.strides == (2,)    # 2*1
        assert set(m.points()) == {(1,), (3,), (5,), (7,)}

    def test_image_matches_pointwise(self):
        r = ResolvedRect((2, 1), (3, 2), (2, 3))
        m = map_lattice(r, (2, 1), (1, -1))
        want = {
            tuple(2 * p[0] + 1 for p in [pt])[0:1] + (pt[1] - 1,)
            for pt in r.points()
        }
        want = {(2 * a + 1, b - 1) for a, b in r.points()}
        assert set(m.points()) == want


class TestStencilAccesses:
    def test_out_of_place(self):
        s = Stencil(LAP5, "out", RectDomain((1, 1), (-1, -1)))
        acc = stencil_accesses(s, {"u": (8, 8), "out": (8, 8)})
        assert acc.grids_written() == {"out"}
        assert acc.grids_read() == {"u"}
        assert len(acc.writes) == 1
        assert len(acc.reads) == 5  # one lattice per distinct offset

    def test_union_multiplies_accesses(self):
        dom = RectDomain((1, 1), (-1, -1), (2, 2)) + RectDomain(
            (2, 2), (-1, -1), (2, 2)
        )
        s = Stencil(LAP5, "out", dom)
        acc = stencil_accesses(s, {"u": (8, 8), "out": (8, 8)})
        assert len(acc.writes) == 2
        assert len(acc.reads) == 10

    def test_empty_boxes_skipped(self):
        dom = RectDomain((1, 1), (-1, -1)) + RectDomain((5, 5), (3, 3))
        s = Stencil(LAP5, "out", dom)
        acc = stencil_accesses(s, {"u": (8, 8), "out": (8, 8)})
        assert len(acc.writes) == 1

    def test_restriction_reads_scaled_lattice(self):
        s = restriction_stencil(2)
        acc = stencil_accesses(s, {"res": (18, 18), "coarse_rhs": (10, 10)})
        read_strides = {a.lattice.strides for a in acc.reads}
        assert read_strides == {(2, 2)}


class TestAccessConflicts:
    def _acc(self, stencil, shapes):
        return stencil_accesses(stencil, shapes)

    def test_kinds(self):
        shapes = {"u": (8, 8), "a": (8, 8), "b": (8, 8)}
        w = Stencil(LAP5, "a", RectDomain((1, 1), (-1, -1)))
        r = Stencil(Component("a", WeightArray([[1]])), "b",
                    RectDomain((1, 1), (-1, -1)))
        kinds = access_conflicts(self._acc(w, shapes), self._acc(r, shapes))
        assert kinds == {"RAW"}
        kinds = access_conflicts(self._acc(r, shapes), self._acc(w, shapes))
        assert kinds == {"WAR"}

    def test_access_intersects_requires_same_grid(self):
        a = Access("x", ResolvedRect((0,), (1,), (5,)), True)
        b = Access("y", ResolvedRect((0,), (1,), (5,)), False)
        assert not a.intersects(b)
