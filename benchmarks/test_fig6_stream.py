"""Fig.6 — modified STREAM (dot product) bandwidth.

Regenerates the Roofline denominator measurement.  ``pytest-benchmark``
times the kernels; the derived GB/s figures are attached to
``benchmark.extra_info`` so the report carries the same numbers the
paper's figure plots.
"""

import numpy as np
import pytest

from repro.machine.stream import _c_dot

N = 2**22  # 32 MiB per array: comfortably DRAM-resident


@pytest.fixture(scope="module")
def vectors():
    rng = np.random.default_rng(7)
    return rng.random(N), rng.random(N)


def _attach_bw(benchmark):
    moved = 2.0 * 8.0 * N
    benchmark.extra_info["GB/s"] = round(moved / benchmark.stats["min"] / 1e9, 2)


def test_stream_dot_c(benchmark, vectors):
    a, b = vectors
    dot = _c_dot(openmp=False)
    benchmark(dot, a, b)
    _attach_bw(benchmark)


def test_stream_dot_openmp(benchmark, vectors):
    a, b = vectors
    dot = _c_dot(openmp=True)
    benchmark(dot, a, b)
    _attach_bw(benchmark)


def test_stream_dot_numpy(benchmark, vectors):
    a, b = vectors
    benchmark(np.dot, a, b)
    _attach_bw(benchmark)
