"""Dependence analysis: the paper's SectionIII claims, verified.

Key cases: in-place GSRB colors are safe, the uncolored in-place sweep
is not, boundary stencils don't falsely depend on interior stencils
(finite domains beat Halide-style interval analysis), and cross-stencil
RAW/WAR/WAW detection matches brute-force footprint enumeration.
"""

import numpy as np
import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.analysis.dependence import (
    cross_stencil_dependence,
    group_dependences,
    intra_stencil_hazards,
    is_parallel_safe,
)
from repro.core.components import Component
from repro.core.domains import RectDomain
from repro.core.expr import GridRead
from repro.core.stencil import OutputMap, Stencil, StencilGroup
from repro.core.validate import iteration_shape
from repro.core.weights import WeightArray
from repro.hpgmg.operators import (
    boundary_stencils,
    cc_laplacian,
    gsrb_stencils,
    red_black_domains,
    restriction_stencil,
    interpolation_pc_group,
)

SHAPE2 = (18, 18)
LAP5 = Component("u", WeightArray([[0, 1, 0], [1, -4, 1], [0, 1, 0]]))
INTERIOR = RectDomain((1, 1), (-1, -1))


def shapes_for(*stencils, shape=SHAPE2):
    out = {}
    for s in stencils:
        for g in s.grids():
            out[g] = shape
    return out


class TestIntraStencil:
    def test_out_of_place_is_safe(self):
        s = Stencil(LAP5, "out", INTERIOR)
        assert is_parallel_safe(s, shapes_for(s))

    def test_inplace_neighbour_read_is_hazard(self):
        s = Stencil(LAP5, "u", INTERIOR)
        hazards = intra_stencil_hazards(s, shapes_for(s))
        assert hazards
        assert all(h.grid == "u" for h in hazards)

    def test_inplace_pure_center_read_is_safe(self):
        s = Stencil(Component("u", WeightArray([[2.0]])), "u", INTERIOR)
        assert is_parallel_safe(s, shapes_for(s))

    def test_gsrb_colors_are_safe(self):
        red, black = gsrb_stencils(2, cc_laplacian(2, 0.1), lam=0.1)
        assert is_parallel_safe(red, shapes_for(red))
        assert is_parallel_safe(black, shapes_for(black))

    def test_gsrb_on_odd_interior_still_safe(self):
        red, black = gsrb_stencils(2, cc_laplacian(2, 0.1), lam=0.1)
        # 19x19 grid -> 17x17 interior (odd): unequal color populations
        assert is_parallel_safe(red, shapes_for(red, shape=(19, 19)))
        assert is_parallel_safe(black, shapes_for(black, shape=(19, 19)))

    def test_boundary_faces_are_safe(self):
        for bc in boundary_stencils(2, "u"):
            assert is_parallel_safe(bc, {"u": SHAPE2})

    def test_waw_on_overlapping_union(self):
        dom = RectDomain((1, 1), (6, 6)) + RectDomain((4, 4), (9, 9))
        s = Stencil(Component("src", WeightArray([[1]])), "dst", dom)
        kinds = {h.kind for h in intra_stencil_hazards(s, shapes_for(s))}
        assert "WAW" in kinds

    def test_interp_diagonal_scaled_read_is_safe(self):
        group = interpolation_pc_group(2)
        shapes = {"coarse_x": (6, 6), "x": (10, 10)}
        for s in group:
            assert is_parallel_safe(s, shapes)

    def test_stride2_inplace_offset2_read_is_hazard(self):
        # red points reading 2 cells over land on red again
        red, _ = red_black_domains(2)
        body = Component("u", {(0, 2): 1.0})
        s = Stencil(body, "u", red)
        assert not is_parallel_safe(s, shapes_for(s))


class TestCrossStencil:
    def test_raw(self):
        w = Stencil(LAP5, "a", INTERIOR)
        r = Stencil(Component("a", WeightArray([[1]])), "b", INTERIOR)
        assert "RAW" in cross_stencil_dependence(w, r, shapes_for(w, r))

    def test_war(self):
        r = Stencil(Component("a", WeightArray([[1]])), "b", INTERIOR)
        w = Stencil(LAP5, "a", INTERIOR)
        kinds = cross_stencil_dependence(r, w, shapes_for(r, w))
        assert "WAR" in kinds and "RAW" not in kinds

    def test_waw(self):
        s1 = Stencil(LAP5, "a", INTERIOR)
        s2 = Stencil(Component("v", WeightArray([[1]])), "a", INTERIOR)
        assert "WAW" in cross_stencil_dependence(s1, s2, shapes_for(s1, s2))

    def test_independent_grids(self):
        s1 = Stencil(LAP5, "a", INTERIOR)
        s2 = Stencil(Component("v", WeightArray([[1]])), "b", INTERIOR)
        assert cross_stencil_dependence(s1, s2, shapes_for(s1, s2)) == set()

    def test_disjoint_regions_same_grid(self):
        # two stencils updating disjoint patches of one grid from another
        body = Component("src", WeightArray([[1]]))
        s1 = Stencil(body, "dst", RectDomain((1, 1), (8, 8)))
        s2 = Stencil(body, "dst", RectDomain((8, 8), (17, 17)))
        assert cross_stencil_dependence(s1, s2, shapes_for(s1, s2)) == set()

    def test_red_then_black_depend(self):
        red, black = gsrb_stencils(2, cc_laplacian(2, 0.1), lam=0.1)
        kinds = cross_stencil_dependence(red, black, shapes_for(red, black))
        assert "RAW" in kinds  # black reads the red points just written

    def test_boundary_then_interior_depend(self):
        bc = boundary_stencils(2, "u")[0]
        interior = Stencil(LAP5, "out", INTERIOR)
        kinds = cross_stencil_dependence(bc, interior, shapes_for(bc, interior))
        assert "RAW" in kinds

    def test_interior_writer_does_not_block_far_face(self):
        # the paper's finite-domain claim: an interior stencil that stays
        # 2 cells from the face cannot conflict with the face update.
        deep = RectDomain((2, 2), (-2, -2))
        w = Stencil(LAP5, "u", deep)
        bc = boundary_stencils(2, "u")[0]  # writes row 0, reads row 1
        assert cross_stencil_dependence(w, bc, shapes_for(w, bc)) == set()

    def test_restriction_interp_roundtrip_dependences(self):
        restrict = restriction_stencil(2)
        shapes = {"res": (18, 18), "coarse_rhs": (10, 10)}
        # restriction reads res, writes coarse_rhs: no self-hazard
        assert is_parallel_safe(restrict, shapes)


class TestGroupDependences:
    def test_matrix_shape(self):
        red, black = gsrb_stencils(2, cc_laplacian(2, 0.1), lam=0.1)
        g = StencilGroup([red, black])
        deps = group_dependences(g, shapes_for(red, black))
        assert (0, 1) in deps

    def test_independent_group_is_empty(self):
        s1 = Stencil(LAP5, "a", INTERIOR)
        s2 = Stencil(Component("v", WeightArray([[1]])), "b", INTERIOR)
        assert group_dependences(StencilGroup([s1, s2]), shapes_for(s1, s2)) == {}


def brute_force_hazard(stencil, shapes) -> bool:
    """Reference implementation by enumeration (small domains only)."""
    it_shape = iteration_shape(stencil, shapes)
    pts = [
        p
        for r in stencil.domain.resolve(it_shape)
        for p in r.points()
    ]
    om = stencil.output_map
    writes = {om.apply(p): p for p in pts}
    for p in pts:
        for read in stencil.flat.reads():
            if read.grid != stencil.output:
                continue
            idx = tuple(
                s * i + o for s, i, o in zip(read.scale, p, read.offset)
            )
            if idx in writes and writes[idx] != p:
                return True
    # WAW
    seen = {}
    for p in pts:
        w = om.apply(p)
        if w in seen and seen[w] != p:
            return True
        seen[w] = p
    return False


@settings(max_examples=120, deadline=None)
@given(
    off=st.tuples(st.integers(-2, 2), st.integers(-2, 2)),
    stride=st.sampled_from([1, 2, 3]),
    start=st.tuples(st.integers(1, 3), st.integers(1, 3)),
)
def test_intra_hazard_matches_brute_force(off, stride, start):
    dom = RectDomain(start, (-1, -1), (stride, stride))
    body = Component("u", {(0, 0): 1.0, off: 0.5})
    s = Stencil(body, "u", dom)
    shapes = {"u": (12, 12)}
    got = not is_parallel_safe(s, shapes)
    want = brute_force_hazard(s, shapes)
    # exactness for identity write maps (the analysis may only be
    # conservative for exotic scaled writes, not these)
    assert got == want
