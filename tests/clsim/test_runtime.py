"""The pyopencl-shaped host API of the device simulator."""

import numpy as np
import pytest

from repro.clsim import runtime as cl

AXPY = """
__kernel void axpy(__global double* y, __global const double* x,
                   const double a)
{
    const long i = (long)get_global_id(0);
    y[i] = y[i] + a * x[i];
}

__kernel void fill(__global double* y, const double v)
{
    y[get_global_id(0)] = v;
}
"""


@pytest.fixture(scope="module")
def ctx():
    return cl.Context(cl.get_platforms()[0].get_devices())


@pytest.fixture(scope="module")
def queue(ctx):
    return cl.CommandQueue(ctx)


@pytest.fixture(scope="module")
def prog(ctx):
    return cl.Program(ctx, AXPY).build()


class TestObjects:
    def test_platform_and_device_discovery(self):
        plats = cl.get_platforms()
        assert len(plats) == 1
        devs = plats[0].get_devices()
        assert devs[0].type == "CPU"

    def test_context_requires_devices(self):
        with pytest.raises(cl.RuntimeError_):
            cl.Context([])

    def test_program_lists_kernels(self, prog):
        assert prog.kernel_names == ["axpy", "fill"]

    def test_unbuilt_program_rejects_kernel_access(self, ctx):
        p = cl.Program(ctx, AXPY)
        with pytest.raises(cl.RuntimeError_):
            p.axpy  # noqa: B018

    def test_build_failure_without_kernels(self, ctx):
        with pytest.raises(cl.RuntimeError_, match="no kernels"):
            cl.Program(ctx, "int x;").build()

    def test_kernel_arg_count(self, prog):
        assert prog.axpy.num_args == 3


class TestBuffers:
    def test_from_hostbuf_copies(self, ctx, queue):
        a = np.arange(5.0)
        buf = cl.Buffer(ctx, 0, hostbuf=a)
        a[0] = 99
        assert buf.read_as(np.float64, (5,))[0] == 0.0

    def test_size_validation(self, ctx):
        with pytest.raises(cl.RuntimeError_):
            cl.Buffer(ctx, 0)

    def test_enqueue_copy_roundtrip(self, ctx, queue):
        a = np.arange(8.0)
        buf = cl.Buffer(ctx, a.nbytes)
        cl.enqueue_copy(queue, buf, a)
        out = np.empty(8)
        cl.enqueue_copy(queue, out, buf)
        np.testing.assert_array_equal(out, a)

    def test_copy_size_mismatch(self, ctx, queue):
        buf = cl.Buffer(ctx, 64)
        with pytest.raises(cl.RuntimeError_):
            cl.enqueue_copy(queue, buf, np.zeros(9))
        with pytest.raises(cl.RuntimeError_):
            cl.enqueue_copy(queue, np.zeros(9), buf)

    def test_bad_copy_direction(self, queue):
        with pytest.raises(cl.RuntimeError_):
            cl.enqueue_copy(queue, 3, 4)


class TestKernelExecution:
    def test_axpy(self, ctx, queue, prog):
        x = np.arange(16.0)
        y = np.ones(16)
        bx = cl.Buffer(ctx, x.nbytes, hostbuf=x)
        by = cl.Buffer(ctx, y.nbytes, hostbuf=y)
        prog.axpy(queue, (16,), None, by, bx, np.float64(3.0))
        out = np.empty(16)
        cl.enqueue_copy(queue, out, by)
        queue.finish()
        np.testing.assert_allclose(out, 1 + 3 * x)

    def test_fill_2d_ndrange(self, ctx, queue, prog):
        y = np.zeros(12)
        by = cl.Buffer(ctx, y.nbytes, hostbuf=y)
        prog.fill(queue, (12,), None, by, 7.5)
        np.testing.assert_array_equal(by.read_as(np.float64, (12,)), 7.5)

    def test_wrong_arg_count(self, ctx, queue, prog):
        by = cl.Buffer(ctx, 8)
        with pytest.raises(cl.RuntimeError_, match="INVALID_KERNEL_ARGS"):
            prog.axpy(queue, (1,), None, by)

    def test_buffer_type_checked(self, ctx, queue, prog):
        by = cl.Buffer(ctx, 8)
        with pytest.raises(cl.RuntimeError_, match="INVALID_ARG_VALUE"):
            prog.axpy(queue, (1,), None, np.zeros(1), by, 1.0)

    def test_work_dimension_checked(self, ctx, queue, prog):
        by = cl.Buffer(ctx, 8)
        bx = cl.Buffer(ctx, 8)
        with pytest.raises(cl.RuntimeError_, match="WORK_DIMENSION"):
            prog.axpy(queue, (1, 1, 1, 1), None, by, bx, 1.0)

    def test_runs_snowflake_generated_kernels(self, ctx, queue, rng):
        """The generated stencil kernels run through the public API too."""
        from repro.backends.opencl_backend import generate_opencl_program
        from repro.core.components import Component
        from repro.core.domains import RectDomain
        from repro.core.stencil import Stencil, StencilGroup
        from repro.core.weights import WeightArray

        lap = Component("u", WeightArray([[0, 1, 0], [1, -4, 1], [0, 1, 0]]))
        g = StencilGroup([Stencil(lap, "out", RectDomain((1, 1), (-1, -1)))])
        shapes = {"u": (10, 10), "out": (10, 10)}
        program = generate_opencl_program(g, shapes, np.float64)
        prog2 = cl.Program(ctx, program.source).build()
        u = rng.random((10, 10))
        out = np.zeros((10, 10))
        bu = cl.Buffer(ctx, u.nbytes, hostbuf=u)
        bo = cl.Buffer(ctx, out.nbytes, hostbuf=out)
        kname = next(iter(program.kernel_ranges))
        gsize = program.kernel_ranges[kname]
        getattr(prog2, kname)(queue, gsize, None, bo, bu)
        cl.enqueue_copy(queue, out, bo)
        manual = (
            u[:-2, 1:-1] + u[2:, 1:-1] + u[1:-1, :-2] + u[1:-1, 2:]
            - 4 * u[1:-1, 1:-1]
        )
        np.testing.assert_allclose(out[1:-1, 1:-1], manual)
