"""Six-backend parity on the shared optimized kernel body.

Every backend consumes the same :class:`~repro.kernel.ir.KernelBody`.
The compiled targets (C, OpenMP, and the OpenCL/CUDA simulators, which
execute real generated kernel text) must agree *bit for bit* with the
python reference — the pass pipeline is IEEE-preserving and the C
toolchain runs with contraction off.  numpy evaluates per-rect in a
different association order, so it gets allclose.
"""

import numpy as np
import pytest

from _helpers import run_group
from repro.bench import paper_operators
from repro.kernel import no_optimization

BITWISE_BACKENDS = ("c", "openmp", "opencl-sim", "cuda-sim")


def _arrays(stencil, rng, n=8):
    shape = (n + 2,) * stencil.ndim
    arrays = {g: rng.standard_normal(shape) for g in stencil.grids()}
    if "lam" in arrays:
        arrays["lam"] = np.abs(arrays["lam"]) * 0.01 + 0.01
    return arrays


@pytest.fixture(scope="module")
def operators():
    return paper_operators(8)


@pytest.mark.parametrize("op_name", ["cc_7pt", "cc_jacobi", "vc_gsrb"])
def test_compiled_backends_bitwise_equal_python(operators, rng, op_name):
    stencil = operators[op_name]
    arrays = _arrays(stencil, rng)
    ref = run_group(stencil, arrays, backend="python")
    for backend in BITWISE_BACKENDS:
        got = run_group(stencil, arrays, backend=backend)
        for g in ref:
            np.testing.assert_array_equal(
                got[g], ref[g],
                err_msg=f"{backend} not bitwise-equal on {op_name}/{g}",
            )


@pytest.mark.parametrize("op_name", ["cc_7pt", "cc_jacobi", "vc_gsrb"])
def test_numpy_allclose_python(operators, rng, op_name):
    stencil = operators[op_name]
    arrays = _arrays(stencil, rng)
    ref = run_group(stencil, arrays, backend="python")
    got = run_group(stencil, arrays, backend="numpy")
    for g in ref:
        np.testing.assert_allclose(got[g], ref[g], rtol=1e-12, atol=1e-13)


@pytest.mark.parametrize("op_name", ["cc_jacobi", "vc_gsrb"])
def test_optimization_is_bitwise_neutral_on_c(operators, rng, op_name):
    """CSE/folding/hoisting/FMA-grouping must not change a single bit
    of the C backend's output."""
    stencil = operators[op_name]
    arrays = _arrays(stencil, rng)
    opt = run_group(stencil, arrays, backend="c")
    with no_optimization():
        raw = run_group(stencil, arrays, backend="c")
    for g in opt:
        np.testing.assert_array_equal(
            opt[g], raw[g],
            err_msg=f"optimization changed bits on {op_name}/{g}",
        )


def test_all_backends_agree_with_optimization_off(operators, rng):
    stencil = operators["vc_gsrb"]
    arrays = _arrays(stencil, rng)
    with no_optimization():
        ref = run_group(stencil, arrays, backend="python")
        for backend in BITWISE_BACKENDS:
            got = run_group(stencil, arrays, backend=backend)
            for g in ref:
                np.testing.assert_array_equal(
                    got[g], ref[g],
                    err_msg=f"{backend} diverges from raw lowering on {g}",
                )
        got = run_group(stencil, arrays, backend="numpy")
        for g in ref:
            np.testing.assert_allclose(
                got[g], ref[g], rtol=1e-12, atol=1e-13
            )


# -- legacy term-by-term paths stay as independent cross-checks ---------------


def test_python_legacy_term_path_matches_ir_path(operators, rng):
    from repro.backends.python_ref import _apply_stencil, _apply_stencil_terms

    stencil = operators["cc_jacobi"]
    arrays = _arrays(stencil, rng)
    shapes = {g: a.shape for g, a in arrays.items()}
    params = {}
    via_ir = {g: a.copy() for g, a in arrays.items()}
    via_terms = {g: a.copy() for g, a in arrays.items()}
    _apply_stencil(stencil, via_ir, params, shapes)
    _apply_stencil_terms(stencil, via_terms, params, shapes)
    for g in arrays:
        np.testing.assert_allclose(
            via_ir[g], via_terms[g], rtol=1e-12, atol=1e-13
        )


def test_numpy_legacy_term_path_matches_ir_path(operators, rng):
    from repro.backends.numpy_backend import _StencilExec

    stencil = operators["vc_gsrb"]
    arrays = _arrays(stencil, rng)
    shapes = {g: a.shape for g, a in arrays.items()}
    params = {}
    ex = _StencilExec(stencil, shapes)
    via_ir = {g: a.copy() for g, a in arrays.items()}
    via_terms = {g: a.copy() for g, a in arrays.items()}
    ex.run(via_ir, params)
    ex.run_terms(via_terms, params)
    for g in arrays:
        np.testing.assert_allclose(
            via_ir[g], via_terms[g], rtol=1e-12, atol=1e-13
        )
