"""The benchmark workloads themselves compute correct answers.

A benchmark that times a wrong kernel measures nothing: before trusting
Fig.7/8's bars, verify that the Snowflake case, the hand-optimized
baseline runner, and the reference interpreter agree *on the exact
arrays the benchmarks use*.
"""

import numpy as np
import pytest

from repro.figures.common import OPERATORS, build_case
from repro.figures.fig7 import _baseline_runner


@pytest.mark.parametrize("name", OPERATORS)
def test_baseline_runner_matches_snowflake_case(name):
    n = 8
    case_sf = build_case(name, n)
    case_bl = build_case(name, n)  # identical seeding

    case_sf.compile("python")()
    _baseline_runner(name, case_bl)()

    out_grid = {"cc_7pt": "res", "cc_jacobi": "tmp", "vc_gsrb": "x"}[name]
    np.testing.assert_allclose(
        case_sf.level.grids[out_grid],
        case_bl.level.grids[out_grid],
        rtol=1e-12, atol=1e-13,
        err_msg=f"benchmark workload {name!r}: baseline != snowflake",
    )


@pytest.mark.parametrize("name", OPERATORS)
@pytest.mark.parametrize("backend", ["openmp", "opencl-sim", "cuda-sim"])
def test_benchmarked_backends_match_reference(name, backend):
    n = 8
    ref_case = build_case(name, n)
    ref_case.compile("python")()

    got_case = build_case(name, n)
    got_case.compile(backend)()

    out_grid = {"cc_7pt": "res", "cc_jacobi": "tmp", "vc_gsrb": "x"}[name]
    np.testing.assert_allclose(
        got_case.level.grids[out_grid],
        ref_case.level.grids[out_grid],
        rtol=1e-12, atol=1e-13,
    )


def test_gsrb_case_actually_smooths():
    # the benchmark's GSRB workload must do real smoothing work, not a
    # no-op: the residual of A x = rhs should drop after applications.
    case = build_case("vc_gsrb", 8)
    run = case.compile("c")
    lvl = case.level
    from repro.hpgmg.problem import operator_expr
    from repro.hpgmg.operators import boundary_stencils, residual_stencil
    from repro.core.stencil import StencilGroup

    res_g = StencilGroup(
        boundary_stencils(3, "x")
        + [residual_stencil(3, operator_expr(lvl))]
    )
    res_k = res_g.compile(backend="numpy")

    def resnorm():
        res_k(**{g: lvl.grids[g] for g in res_g.grids()})
        return float(np.linalg.norm(lvl.grids["res"][lvl.interior]))

    r0 = resnorm()
    for _ in range(30):
        run()
    assert resnorm() < 0.7 * r0
