"""Linear Diophantine equation solvers over bounded (finite) domains.

This module is the numeric heart of Snowflake's dependence analysis
(paper SectionIII).  Dependence questions about strided stencil domains
reduce to the existence of *integer* solutions of linear equations whose
unknowns are loop counters constrained to finite intervals:

    s1 + t1*k1 == s2 + t2*k2 + delta,   0 <= k1 < n1,  0 <= k2 < n2

The classic theory (extended Euclid / extended gcd) decides solvability
over the integers; Snowflake's twist is restricting the solution family
to the finite iteration domain, which removes the false dependencies an
infinite-domain analysis (e.g. Halide's interval analysis) would report.

Everything here is implemented from first principles (no sympy); the test
suite cross-checks these routines against both brute force and sympy's
``diophantine`` solver.
"""

from __future__ import annotations

import math
from dataclasses import dataclass
from fractions import Fraction
from typing import Sequence

__all__ = [
    "extended_gcd",
    "solve_linear_2var",
    "SolutionLine",
    "lattice_range_intersect",
    "lattice_ranges_intersect_nonempty",
    "solve_linear_nvar",
    "BoxedLinearSystem",
    "count_lattice_points",
    "first_lattice_point",
]


def extended_gcd(a: int, b: int) -> tuple[int, int, int]:
    """Return ``(g, x, y)`` with ``g = gcd(a, b)`` and ``a*x + b*y == g``.

    ``g`` is always non-negative; ``gcd(0, 0) == 0`` with witnesses (0, 0).
    Iterative to avoid recursion limits on adversarial inputs.
    """
    old_r, r = a, b
    old_s, s = 1, 0
    old_t, t = 0, 1
    while r != 0:
        q = old_r // r
        old_r, r = r, old_r - q * r
        old_s, s = s, old_s - q * s
        old_t, t = t, old_t - q * t
    if old_r < 0:
        old_r, old_s, old_t = -old_r, -old_s, -old_t
    return old_r, old_s, old_t


@dataclass(frozen=True)
class SolutionLine:
    """The integer solutions of ``a*x + b*y == c`` form a line.

    ``(x, y) = (x0 + step_x * t, y0 + step_y * t)`` for all integers ``t``.
    """

    x0: int
    y0: int
    step_x: int
    step_y: int

    def at(self, t: int) -> tuple[int, int]:
        return (self.x0 + self.step_x * t, self.y0 + self.step_y * t)


def solve_linear_2var(a: int, b: int, c: int) -> SolutionLine | None:
    """General solution of ``a*x + b*y == c`` over the integers.

    Returns ``None`` when no integer solution exists.  Degenerate cases
    (``a == 0`` and/or ``b == 0``) are handled explicitly; when the
    solution set is the whole plane (``a == b == c == 0``) the returned
    line is the x-axis direction with a note that y is unconstrained —
    callers that need the full 2-D family should special-case this, and
    the bounded-existence helpers below do.
    """
    if a == 0 and b == 0:
        if c != 0:
            return None
        # Every (x, y) is a solution; represent the x-axis sweep.
        return SolutionLine(0, 0, 1, 0)
    if a == 0:
        if c % b != 0:
            return None
        return SolutionLine(0, c // b, 1, 0)
    if b == 0:
        if c % a != 0:
            return None
        return SolutionLine(c // a, 0, 0, 1)
    g, x, y = extended_gcd(a, b)
    if c % g != 0:
        return None
    scale = c // g
    return SolutionLine(x * scale, y * scale, b // g, -(a // g))


def _ceil_div(a: int, b: int) -> int:
    return -((-a) // b)


def _floor_div(a: int, b: int) -> int:
    return a // b


def _t_interval(v0: int, step: int, lo: int, hi: int) -> tuple[int, int] | None:
    """Integer ``t`` interval with ``lo <= v0 + step*t <= hi`` (inclusive).

    Returns ``None`` for an empty interval.  ``step == 0`` means the value
    is fixed: the interval is all of Z (represented by a huge interval) if
    ``lo <= v0 <= hi``, else empty.
    """
    if lo > hi:
        return None
    if step == 0:
        if lo <= v0 <= hi:
            return (-(1 << 62), 1 << 62)
        return None
    if step > 0:
        t_lo = _ceil_div(lo - v0, step)
        t_hi = _floor_div(hi - v0, step)
    else:
        t_lo = _ceil_div(hi - v0, step)
        t_hi = _floor_div(lo - v0, step)
    if t_lo > t_hi:
        return None
    return (t_lo, t_hi)


def lattice_range_intersect(
    s1: int, t1: int, n1: int, s2: int, t2: int, n2: int, delta: int = 0
) -> tuple[int, int] | None:
    """Find ``(k1, k2)`` with ``s1 + t1*k1 == s2 + t2*k2 + delta``.

    ``0 <= k1 < n1`` and ``0 <= k2 < n2``; strides may be zero (pinned
    index) but not negative.  Returns one witness pair or ``None``.

    This is the per-dimension dependence test: does the write lattice
    ``{s1 + t1*k1}`` meet the (shifted) read lattice ``{s2 + t2*k2 + delta}``
    inside the finite iteration bounds?
    """
    if t1 < 0 or t2 < 0:
        raise ValueError("strides must be non-negative")
    if n1 <= 0 or n2 <= 0:
        return None
    c = s2 + delta - s1
    # t1*k1 - t2*k2 == c
    line = solve_linear_2var(t1, -t2, c)
    if line is None:
        return None
    if t1 == 0 and t2 == 0:
        # Both pinned: equality already verified by solve (c == 0 branch).
        return (0, 0) if c == 0 else None
    iv1 = _t_interval(line.x0, line.step_x, 0, n1 - 1)
    if iv1 is None:
        return None
    iv2 = _t_interval(line.y0, line.step_y, 0, n2 - 1)
    if iv2 is None:
        return None
    lo = max(iv1[0], iv2[0])
    hi = min(iv1[1], iv2[1])
    if lo > hi:
        return None
    k1, k2 = line.at(lo)
    return (k1, k2)


def lattice_ranges_intersect_nonempty(
    s1: int, t1: int, n1: int, s2: int, t2: int, n2: int, delta: int = 0
) -> bool:
    """Existence form of :func:`lattice_range_intersect`."""
    return lattice_range_intersect(s1, t1, n1, s2, t2, n2, delta) is not None


def solve_linear_nvar(coeffs: Sequence[int], c: int) -> list[int] | None:
    """One integer solution of ``sum(coeffs[i] * x[i]) == c`` or ``None``.

    Classic recursive extended-gcd construction: fold the coefficient list
    pairwise, keeping Bezout witnesses.  Unbounded variables — bounded
    existence is handled by :class:`BoxedLinearSystem`.
    """
    coeffs = list(coeffs)
    if not coeffs:
        return [] if c == 0 else None
    if len(coeffs) == 1:
        a = coeffs[0]
        if a == 0:
            return [0] if c == 0 else None
        if c % a != 0:
            return None
        return [c // a]
    # g = gcd of all; c must be divisible by it.
    g = 0
    for a in coeffs:
        g = math.gcd(g, a)
    if g == 0:
        return [0] * len(coeffs) if c == 0 else None
    if c % g != 0:
        return None
    # Reduce: solve a0*x0 + g_rest*y == c where g_rest = gcd(coeffs[1:]),
    # then distribute y across the tail recursively.
    a0 = coeffs[0]
    g_rest = 0
    for a in coeffs[1:]:
        g_rest = math.gcd(g_rest, a)
    if g_rest == 0:
        # Tail contributes nothing; x0 alone must absorb c.
        if a0 == 0:
            return [0] * len(coeffs) if c == 0 else None
        if c % a0 != 0:
            return None
        return [c // a0] + [0] * (len(coeffs) - 1)
    line = solve_linear_2var(a0, g_rest, c)
    if line is None:
        return None
    x0, y = line.x0, line.y0
    tail = solve_linear_nvar(coeffs[1:], g_rest * y)
    assert tail is not None
    return [x0] + tail


class BoxedLinearSystem:
    """Existence of integer solutions of ``A x == b`` with ``lo <= x <= hi``.

    Used for the multi-dimensional / multi-variable dependence questions
    that do not decompose per dimension (e.g. cross-grid affine maps with
    coupled scales).  The solver does exact integer Gaussian elimination
    to a triangular form and then a bounded backtracking search over the
    free variables, pruned with interval arithmetic.  Stencil systems are
    tiny (<= a handful of variables), so the search is instantaneous; a
    ``node_budget`` guards against pathological inputs.
    """

    def __init__(
        self,
        rows: Sequence[Sequence[int]],
        rhs: Sequence[int],
        lows: Sequence[int],
        highs: Sequence[int],
        node_budget: int = 200_000,
    ) -> None:
        self.rows = [list(map(int, r)) for r in rows]
        self.rhs = list(map(int, rhs))
        self.lows = list(map(int, lows))
        self.highs = list(map(int, highs))
        self.node_budget = int(node_budget)
        if any(len(r) != len(self.lows) for r in self.rows):
            raise ValueError("row width mismatch")
        if len(self.rhs) != len(self.rows):
            raise ValueError("rhs length mismatch")
        if len(self.lows) != len(self.highs):
            raise ValueError("bounds length mismatch")

    def solve(self) -> list[int] | None:
        """Return a witness solution within bounds, or ``None``."""
        n = len(self.lows)
        if any(lo > hi for lo, hi in zip(self.lows, self.highs)):
            return None
        rows = [r[:] + [b] for r, b in zip(self.rows, self.rhs)]
        rows = _fraction_free_triangularize(rows, n)
        if rows is None:
            return None
        self._nodes = 0
        return self._search(rows, n, [None] * n, n - 1)

    # -- internals ---------------------------------------------------------

    def _search(
        self, rows: list[list[int]], n: int, assign: list[int | None], var: int
    ) -> list[int] | None:
        if var < 0:
            if _check_rows(rows, assign):
                return [int(v) for v in assign]  # type: ignore[arg-type]
            return None
        lo, hi = self.lows[var], self.highs[var]
        lo, hi = self._tighten(rows, assign, var, lo, hi)
        if lo > hi:
            return None
        for v in range(lo, hi + 1):
            self._nodes += 1
            if self._nodes > self.node_budget:
                raise RuntimeError("Diophantine search budget exhausted")
            assign[var] = v
            got = self._search(rows, n, assign, var - 1)
            if got is not None:
                return got
        assign[var] = None
        return None

    def _tighten(
        self,
        rows: list[list[int]],
        assign: list[int | None],
        var: int,
        lo: int,
        hi: int,
    ) -> tuple[int, int]:
        """Use rows whose only unassigned variable is ``var`` to pin it."""
        for row in rows:
            coeff = row[var]
            if coeff == 0:
                continue
            residual = row[-1]
            ok = True
            for j, a in enumerate(row[:-1]):
                if j == var or a == 0:
                    continue
                if assign[j] is None:
                    ok = False
                    break
                residual -= a * assign[j]
            if not ok:
                continue
            if residual % coeff != 0:
                return (1, 0)  # empty
            v = residual // coeff
            lo = max(lo, v)
            hi = min(hi, v)
        return (lo, hi)


def _fraction_free_triangularize(
    rows: list[list[int]], n: int
) -> list[list[int]] | None:
    """Integer row-reduce ``[A | b]``; ``None`` when inconsistent over Q."""
    rows = [r[:] for r in rows]
    pivot_row = 0
    for col in range(n):
        sel = None
        for r in range(pivot_row, len(rows)):
            if rows[r][col] != 0:
                sel = r
                break
        if sel is None:
            continue
        rows[pivot_row], rows[sel] = rows[sel], rows[pivot_row]
        p = rows[pivot_row][col]
        for r in range(pivot_row + 1, len(rows)):
            q = rows[r][col]
            if q == 0:
                continue
            l = p * q // math.gcd(p, q)
            f1, f2 = l // q, l // p
            rows[r] = [f1 * x - f2 * y for x, y in zip(rows[r], rows[pivot_row])]
            g = 0
            for x in rows[r]:
                g = math.gcd(g, x)
            if g > 1:
                rows[r] = [x // g for x in rows[r]]
        pivot_row += 1
        if pivot_row == len(rows):
            break
    for row in rows:
        if all(a == 0 for a in row[:-1]) and row[-1] != 0:
            return None
    return rows


def _check_rows(rows: list[list[int]], assign: Sequence[int | None]) -> bool:
    for row in rows:
        s = row[-1]
        for a, v in zip(row[:-1], assign):
            assert v is not None
            s -= a * v
        if s != 0:
            return False
    return True


def count_lattice_points(start: int, stop: int, step: int) -> int:
    """Number of points of ``range(start, stop, step)`` with ``step >= 0``.

    ``step == 0`` denotes a pinned index: one point if ``start < stop``.
    """
    if step < 0:
        raise ValueError("step must be non-negative")
    if stop <= start:
        return 0
    if step == 0:
        return 1
    return (stop - start + step - 1) // step


def first_lattice_point(
    s: int, t: int, n: int, value: int
) -> int | None:
    """Index ``k`` in ``[0, n)`` with ``s + t*k == value``, else ``None``."""
    if n <= 0:
        return None
    if t == 0:
        return 0 if s == value else None
    if (value - s) % t != 0:
        return None
    k = (value - s) // t
    if 0 <= k < n:
        return k
    return None


def rational_line_box_hit(
    x0: Fraction, y0: Fraction, dx: Fraction, dy: Fraction,
    xlo: int, xhi: int, ylo: int, yhi: int,
) -> bool:
    """Does the *rational* line ``(x0+dx*t, y0+dy*t)`` meet the integer box?

    Only used as a fast necessary condition before exact integer search in
    degenerate analyses; kept exact via :class:`fractions.Fraction`.
    """
    def interval(v0: Fraction, dv: Fraction, lo: int, hi: int):
        if dv == 0:
            return None if not (lo <= v0 <= hi) else (Fraction(-10**18), Fraction(10**18))
        a = (Fraction(lo) - v0) / dv
        b = (Fraction(hi) - v0) / dv
        return (min(a, b), max(a, b))

    ix = interval(x0, dx, xlo, xhi)
    if ix is None:
        return False
    iy = interval(y0, dy, ylo, yhi)
    if iy is None:
        return False
    return max(ix[0], iy[0]) <= min(ix[1], iy[1])
