"""End-to-end: the instrumented pipeline reports what actually ran."""

import warnings

import numpy as np
import pytest

from repro import (
    Component,
    RectDomain,
    Stencil,
    StencilGroup,
    WeightArray,
    telemetry,
)
from repro.resilience.faults import inject
from repro.resilience.guards import Guards, GuardWarning

LAP = Component("u", WeightArray([[0, 1, 0], [1, -4, 1], [0, 1, 0]]))
INTERIOR = RectDomain((1, 1), (-1, -1))


def make_stencil():
    return Stencil(LAP, "out", INTERIOR)


class TestCompileAndCall:
    def test_c_backend_reports_cache_and_kernel_stats(self, rng):
        """The headline acceptance criterion: one compile + call on the
        ``c`` backend must surface at least one JIT cache event and one
        kernel invocation with seconds and a points/s rate."""
        shapes = {"u": (32, 32), "out": (32, 32)}
        kernel = make_stencil().compile(backend="c", shapes=shapes)
        u = rng.random((32, 32))
        out = np.zeros_like(u)
        kernel(u=u, out=out)
        snap = telemetry.snapshot()

        cache_events = [
            k for k in snap["counters"] if k.startswith("jit.cache.")
        ]
        assert cache_events, f"no cache events in {sorted(snap['counters'])}"

        k = snap["kernels"]["c"]
        assert k["calls"] >= 1
        assert k["seconds"] > 0
        assert k["points"] == 30 * 30
        assert k["points_per_s"] is not None and k["points_per_s"] > 0

        assert any(
            name.startswith("backend.c.specialize")
            for name in snap["timers"]
        )

    def test_codegen_counters_per_backend(self, rng):
        shapes = {"u": (16, 16), "out": (16, 16)}
        make_stencil().compile(backend="numpy", shapes=shapes)
        counters = telemetry.snapshot()["counters"]
        assert counters.get("codegen.numpy.stencil_execs", 0) >= 1

    def test_off_mode_records_nothing_end_to_end(self, monkeypatch, rng):
        monkeypatch.setenv("SNOWFLAKE_TELEMETRY", "off")
        shapes = {"u": (16, 16), "out": (16, 16)}
        kernel = make_stencil().compile(backend="numpy", shapes=shapes)
        u = rng.random((16, 16))
        kernel(u=u, out=np.zeros_like(u))
        monkeypatch.delenv("SNOWFLAKE_TELEMETRY")
        snap = telemetry.snapshot()
        assert snap["counters"] == {}
        assert snap["kernels"] == {}


@pytest.mark.faults
class TestResilienceCounters:
    def test_fallback_and_fault_counters(self, rng):
        kernel = make_stencil().compile(
            backend="numpy", fallback=("python",)
        )
        u = rng.random((8, 8))
        out = np.zeros_like(u)
        with inject("backend.invoke", times=1):
            with warnings.catch_warnings():
                warnings.simplefilter("ignore")
                kernel(u=u, out=out)
        assert kernel.serving_backend == "python"
        counters = telemetry.snapshot()["counters"]
        assert counters.get("faults.fired.backend.invoke", 0) >= 1
        assert counters.get("resilience.fallback.advances", 0) >= 1
        assert counters.get("resilience.fallback.activations", 0) >= 1

    def test_guard_trip_counter(self):
        g = Guards(nonfinite="warn")
        with warnings.catch_warnings():
            warnings.simplefilter("ignore", GuardWarning)
            g.report("nonfinite", "synthetic violation")
        counters = telemetry.snapshot()["counters"]
        assert counters.get("guards.trip.nonfinite", 0) == 1


class TestDmemCounters:
    def test_exchange_traffic_recorded(self, rng):
        from repro.dmem.executor import DistributedKernel

        dk = DistributedKernel(
            StencilGroup([make_stencil()]), (24, 24), 3, backend="numpy"
        )
        u = rng.random((24, 24))
        out = np.zeros_like(u)
        dk(u=u, out=out)
        counters = telemetry.snapshot()["counters"]
        assert counters.get("dmem.exchanges", 0) >= 1
        assert counters.get("dmem.messages", 0) >= 1
        assert counters.get("dmem.bytes_sent", 0) > 0
        assert counters.get("dmem.sweeps", 0) >= 1


class TestFrontendCounters:
    def test_pass_timers_recorded(self):
        from repro.frontend.passes import optimize_group

        group = StencilGroup([make_stencil()])
        optimize_group(group, {"u": (16, 16), "out": (16, 16)})
        timers = telemetry.snapshot()["timers"]
        assert any(name.startswith("frontend.pass.") for name in timers)
