"""Lowering: frontend analysis -> :class:`~repro.schedule.ir.Schedule`.

This is the one place fusion legality, snapshot decisions and
checkerboard recognition run.  The historical copies
(``c_backend.fusion_chains``, ``analysis.optimize.fusion_candidates``,
the emitter-internal parity detection) are now thin shims over the
functions here.

Chains are computed *within* dependence phases, which closes a latent
race in the legacy OpenMP path: a program-order chain could straddle a
barrier (its tail independent of the phase-mate it got glued to but not
of an earlier phase member), hoisting stores across a ``taskwait``.
Phase-local chains make that impossible by construction.
"""

from __future__ import annotations

import threading
from collections import OrderedDict
from dataclasses import replace
from typing import Mapping, Sequence

from ..analysis.dag import plan
from ..analysis.dependence import group_dependences, intra_stencil_hazards
from ..analysis.footprint import map_lattice
from ..core.stencil import StencilGroup
from ..core.validate import iteration_shape
from ..telemetry import tracing
from .ir import (
    Evidence,
    ParityClass,
    Schedule,
    SchedulePhase,
    Step,
    TimeTile,
    detect_parity_class,
)
from .options import ScheduleOptions

__all__ = [
    "fusion_chains",
    "time_tile_verdict",
    "base_schedule",
    "build_schedule",
    "schedule_for",
    "as_schedule",
    "pop_schedule_spec",
]


def fusion_chains(
    group: StencilGroup,
    shapes: Mapping[str, tuple[int, ...]],
    *,
    deps: Mapping[tuple[int, int], frozenset] | None = None,
    within: Sequence[Sequence[int]] | None = None,
) -> list[list[int]]:
    """Maximal runs of adjacent stencils legal to fuse into one nest.

    A stencil joins the current chain when it shares the chain's domain
    and output map, has no RAW/WAW dependence with *any* chain member
    (transitive safety — pairwise adjacency is not enough once three
    stencils share one loop nest), and needs no gather snapshot.

    ``within`` restricts chains to the given phases (each a sequence of
    group indices); ``None`` chains over full program order, which is
    the legacy ``c_backend.fusion_chains`` behaviour.
    """
    if deps is None:
        deps = group_dependences(group, shapes)

    def needs_snapshot(i: int) -> bool:
        return group[i].is_inplace() and bool(
            intra_stencil_hazards(group[i], shapes)
        )

    sequences = (
        [list(range(len(group)))]
        if within is None
        else [list(seq) for seq in within if seq]
    )
    chains: list[list[int]] = []
    for seq in sequences:
        current = [seq[0]]
        for j in seq[1:]:
            head = group[current[0]]
            ok = (
                group[j].domain == head.domain
                and group[j].output_map == head.output_map
                and not needs_snapshot(j)
                and not needs_snapshot(current[0])
                and all(
                    not ({"RAW", "WAW"} & set(deps.get((i, j), ())))
                    for i in current
                )
            )
            if ok:
                current.append(j)
            else:
                chains.append(current)
                current = [j]
        chains.append(current)
    return chains


def time_tile_verdict(
    group: StencilGroup,
    shapes: Mapping[str, tuple[int, ...]],
    steps: Sequence[Step],
) -> tuple[int, list[Evidence], list[Evidence]]:
    """Decide whether ``k`` successive group applications may be fused.

    Returns ``(slope, evidence, refusals)``.  The schedule is
    time-tileable iff ``refusals`` is empty; ``slope`` is then the
    maximal cross-application RAW halo (the wavefront skew per
    application) and ``evidence`` carries the per-step Diophantine
    facts.

    A step is time-tileable iff

    * it needs no gather snapshot (a snapshot per application would
      have to be re-taken inside the tile — the transform's whole point
      is to *not* round-trip the grid per application);
    * its output map is the identity scale (a scaled write footprint
      moves per application, so the halo is unbounded);
    * every read of a grid written by the schedule is an identity-scale
      read whose offset stays a *bounded halo* — at most half the grid
      extent per dimension.  Whole-grid wrap-around reads (periodic
      boundaries) are refused: their footprint spans the domain, so no
      cache-sized tile covers the dependence.

    The halo a read contributes is refined by the same lattice
    arithmetic the snapshot analysis uses: a read whose lattice never
    meets the writer's lattice (e.g. the red half-sweep reading its
    *black* neighbours) carries no cross-application dependence and
    contributes slope 0.
    """
    written: dict[str, list[int]] = {}
    for step in steps:
        for i in step.stencils:
            written.setdefault(group[i].output, []).append(i)
    write_lattices: dict[int, list] = {}
    for idxs in written.values():
        for j in idxs:
            st = group[j]
            it_shape = iteration_shape(st, shapes)
            rects = [
                r for r in st.domain.resolve(it_shape) if not r.is_empty()
            ]
            om = st.output_map
            write_lattices[j] = [
                map_lattice(r, om.scale, om.offset) for r in rects
            ]

    slope = 0
    evidence: list[Evidence] = []
    refusals: list[Evidence] = []
    for step in steps:
        names = ", ".join(group[i].name for i in step.stencils)
        if step.snapshot:
            refusals.append(
                Evidence(
                    "time-tile-refused",
                    f"step [{names}] requires a gather snapshot each "
                    "application (loop-carried hazard); a time tile "
                    "cannot re-snapshot mid-wavefront",
                )
            )
            continue
        step_halo = 0
        for i in step.stencils:
            st = group[i]
            if any(s != 1 for s in st.output_map.scale):
                refusals.append(
                    Evidence(
                        "time-tile-refused",
                        f"step [{names}] writes through scaled output "
                        f"map {st.output_map.signature()}: the write "
                        "footprint moves per application (unbounded "
                        "halo)",
                    )
                )
                continue
            it_shape = iteration_shape(st, shapes)
            rects = [
                r for r in st.domain.resolve(it_shape) if not r.is_empty()
            ]
            for read in st.flat.reads():
                if read.grid not in written:
                    continue
                if any(s != 1 for s in read.scale):
                    refusals.append(
                        Evidence(
                            "time-tile-refused",
                            f"step [{names}] reads written grid "
                            f"{read.grid!r} through scaled map "
                            f"{read.signature()}: footprint is not a "
                            "bounded halo",
                        )
                    )
                    continue
                halo = max((abs(o) for o in read.offset), default=0)
                limit = min(
                    x // 2 for x in shapes[read.grid]
                )
                if halo > limit:
                    refusals.append(
                        Evidence(
                            "time-tile-refused",
                            f"step [{names}] reads {read.grid!r} at "
                            f"offset {list(read.offset)} — beyond half "
                            "the grid extent, an unbounded (wrap-"
                            "around) footprint, not a halo",
                        )
                    )
                    continue
                if halo == 0:
                    continue  # centre read: per-point recurrence
                # Lattice refinement: does this read ever touch cells
                # another schedule member writes?  (Reads of the *own*
                # stencil's writes are diagonal-only — proven by the
                # snapshot analysis, or the step would carry one.)
                carried = False
                for j in written[read.grid]:
                    if j == i:
                        continue
                    rl = [
                        map_lattice(r, read.scale, read.offset)
                        for r in rects
                    ]
                    if any(
                        a.intersects(b)
                        for a in rl
                        for b in write_lattices[j]
                    ):
                        carried = True
                        break
                if carried:
                    step_halo = max(step_halo, halo)
        slope = max(slope, step_halo)
        evidence.append(
            Evidence(
                "time-tile",
                f"step [{names}]: snapshot-free, RAW footprint per "
                f"application is a bounded halo (radius {step_halo})",
            )
        )
    return slope, evidence, refusals


def _plan_time_tile(
    group: StencilGroup,
    shapes: Mapping[str, tuple[int, ...]],
    phases: Sequence[SchedulePhase],
    k: int,
) -> TimeTile:
    """Legalize ``time_tile=k`` over the lowered phases, or raise."""
    steps = [s for ph in phases for s in ph.steps]
    slope, evidence, refusals = time_tile_verdict(group, shapes, steps)
    if refusals:
        detail = "; ".join(e.basis for e in refusals)
        from .. import telemetry
        from ..transform.base import TransformError

        telemetry.count("schedule.time_tile.refusals")
        telemetry.event(
            "schedule.time_tile.refused",
            group=group.name, k=k, detail=detail,
        )
        raise TransformError(
            f"time_tile={k} is not legal for group {group.name!r}: {detail}",
            refusals=tuple(refusals),
        )
    if len(steps) == 1 and slope == 0:
        kind = "wavefront"
        evidence = evidence + [
            Evidence(
                "time-tile",
                f"single step with slope 0: spatial blocks are "
                f"independent across all {k} applications — blocked "
                "wavefront nest, tasks may run blocks concurrently",
            )
        ]
    else:
        kind = "fused"
        evidence = evidence + [
            Evidence(
                "time-tile",
                f"{len(steps)} step(s), cross-application halo "
                f"{slope}: fused outer time loop (barriers intact per "
                "application); traffic reduction from whole-grid cache "
                "residency",
            )
        ]
    return TimeTile(k=k, kind=kind, slope=slope, evidence=tuple(evidence))


def base_schedule(
    group: StencilGroup,
    shapes: Mapping[str, Sequence[int]],
    policy: str = "greedy",
) -> Schedule:
    """The untransformed schedule: the dependence plan, nothing else.

    One singleton step per stencil in plan-phase order, each tagged with
    its parallel/snapshot verdict; no fusion, no sweep recognition, no
    tiling.  This is the starting point every
    :class:`~repro.transform.base.Transform` rewrites — and what
    :func:`build_schedule` feeds the preset pipeline.
    """
    norm = {g: tuple(int(x) for x in s) for g, s in shapes.items()}
    options = ScheduleOptions(policy=policy, multicolor=False)
    exec_plan = plan(group, norm, policy=policy)
    hazards = [intra_stencil_hazards(s, norm) for s in group]
    phases: list[SchedulePhase] = []
    for pi, phase in enumerate(exec_plan.phases):
        steps = tuple(
            _make_step(group, norm, [si], hazards, options) for si in phase
        )
        phases.append(SchedulePhase(pi, steps))
    return Schedule(group, norm, options, exec_plan, tuple(phases), None)


def build_schedule(
    group: StencilGroup,
    shapes: Mapping[str, Sequence[int]],
    options: ScheduleOptions | None = None,
) -> Schedule:
    """Lower ``group`` to a :class:`Schedule` under ``options``.

    A thin preset over the transform API: :func:`base_schedule` runs the
    dependence plan and per-stencil hazard (snapshot) analysis, then the
    pipeline :func:`repro.transform.preset.preset_pipeline` renders from
    ``options`` applies fusion chaining, checkerboard recognition,
    tiling and temporal blocking — every rewrite re-validated and tagged
    with its legalizing evidence.
    """
    options = options or ScheduleOptions()
    norm = {g: tuple(int(x) for x in s) for g, s in shapes.items()}
    from ..transform.preset import preset_pipeline

    with tracing.span(
        "schedule", cat="analysis", group=group.name,
        policy=options.policy, fuse=options.fuse,
        multicolor=options.multicolor,
    ):
        sched = base_schedule(group, norm, options.policy)
        sched = preset_pipeline(options)(sched)
    return sched


def _sweep_verdict(
    group: StencilGroup,
    shapes: Mapping[str, tuple[int, ...]],
    head_index: int,
) -> tuple[ParityClass | None, Evidence | None]:
    """Checkerboard recognition for one step head: ``(sweep, evidence)``.

    ``(None, None)`` when the head's domain is not a parity class —
    recognition simply does not apply (that is not a refusal).
    """
    head = group[head_index]
    it_shape = iteration_shape(head, shapes)
    rects = [r for r in head.domain.resolve(it_shape) if not r.is_empty()]
    sweep = detect_parity_class(rects)
    if sweep is None:
        return None, None
    ev = Evidence(
        "multicolor",
        f"{len(rects)} stride-2 boxes exactly tile parity "
        f"{sweep.parity} of the dense box "
        f"{list(sweep.base)}..{list(sweep.high)}; reordered "
        "into one parity-corrected sweep",
    )
    return sweep, ev


def _make_step(group, shapes, chain, hazards, options) -> Step:
    si = chain[0]
    head = group[si]
    evidence: list[Evidence] = []
    parallel = all(not hazards[i] for i in chain)
    if parallel:
        evidence.append(
            Evidence("parallel", "no loop-carried lattice intersection")
        )
    else:
        evidence.append(
            Evidence(
                "serialized",
                "; ".join(str(h) for i in chain for h in hazards[i]),
            )
        )
    snapshot = len(chain) == 1 and head.is_inplace() and bool(hazards[si])
    if snapshot:
        evidence.append(
            Evidence(
                "snapshot",
                "gather semantics restored by reading the output grid "
                "through a copy: " + "; ".join(str(h) for h in hazards[si]),
            )
        )
    if len(chain) > 1:
        evidence.append(
            Evidence(
                "fuse",
                f"{len(chain)} stencils share domain and output map; "
                "no RAW/WAW lattice intersection among members; all "
                "snapshot-free",
            )
        )
    sweep: ParityClass | None = None
    if options.multicolor:
        sweep, sweep_ev = _sweep_verdict(group, shapes, si)
        if sweep_ev is not None:
            evidence.append(sweep_ev)
    return Step(
        stencils=tuple(chain),
        parallel=parallel,
        snapshot=snapshot,
        sweep=sweep,
        evidence=tuple(evidence),
    )


# ---------------------------------------------------------------------------
# memoized construction + option resolution (the backends' entry points)
# ---------------------------------------------------------------------------


def _tuned_or_default(
    group: StencilGroup,
    norm: Mapping[str, tuple[int, ...]],
    base: ScheduleOptions | None = None,
) -> ScheduleOptions:
    """Resolve a caller's "no preference" to persisted winner or default.

    Looks up the tuning cache (:mod:`repro.tuning.cache`) for this
    group/shapes on this machine.  Any cache problem — unreadable file,
    schema mismatch, missing toolchain for the fingerprint — falls back
    to the defaults; tuning must never break compilation.
    """
    import os

    fallback = base if base is not None else ScheduleOptions()
    if os.environ.get("SNOWFLAKE_TUNED", "1").strip().lower() in (
        "0", "off", "no", "false", "",
    ):
        return fallback
    try:
        from ..tuning.cache import tuned_options

        opts = tuned_options(group, norm)
    except Exception:
        return fallback
    return opts if opts is not None else fallback


_CACHE: OrderedDict[tuple, Schedule] = OrderedDict()
_CACHE_LOCK = threading.Lock()
_CACHE_CAP = 128
#: per-key build locks so concurrent misses on the *same* key build once
_BUILDING: dict[tuple, threading.Lock] = {}


def schedule_for(
    group: StencilGroup,
    shapes: Mapping[str, Sequence[int]],
    options: ScheduleOptions | None = None,
) -> Schedule:
    """Memoized :func:`build_schedule` (keyed on signature/shapes/options).

    The memo is a true LRU: a hit refreshes the entry's recency, so hot
    schedules survive eviction while cold ones age out.  Concurrent
    misses on the same key serialize on a per-key build lock (one build,
    everyone else waits for the memo), while builds for *different* keys
    still proceed in parallel.

    When ``options`` is ``None`` (the caller expressed no preference) a
    persisted tuning winner for this group/shapes — if one exists in the
    artifact cache for this machine — is transparently loaded and used
    instead of the defaults.  Set ``SNOWFLAKE_TUNED=0`` to disable.
    """
    if options is None:
        norm0 = {g: tuple(int(x) for x in s) for g, s in shapes.items()}
        options = _tuned_or_default(group, norm0)
    norm = {g: tuple(int(x) for x in s) for g, s in shapes.items()}
    key = (group.signature(), tuple(sorted(norm.items())), options)
    with _CACHE_LOCK:
        sched = _CACHE.get(key)
        if sched is not None:
            _CACHE.move_to_end(key)
            return sched
        build_lock = _BUILDING.setdefault(key, threading.Lock())
    with build_lock:
        # re-check: another thread may have finished the build while we
        # waited on its lock
        with _CACHE_LOCK:
            sched = _CACHE.get(key)
            if sched is not None:
                _CACHE.move_to_end(key)
                _BUILDING.pop(key, None)
                return sched
        sched = build_schedule(group, norm, options)
        with _CACHE_LOCK:
            _CACHE[key] = sched
            _CACHE.move_to_end(key)
            while len(_CACHE) > _CACHE_CAP:
                _CACHE.popitem(last=False)
            _BUILDING.pop(key, None)
    return sched


def as_schedule(
    spec: "Schedule | ScheduleOptions | str | None",
    group: StencilGroup,
    shapes: Mapping[str, Sequence[int]],
    options: ScheduleOptions | None = None,
) -> Schedule:
    """Coerce whatever a caller handed a backend into a :class:`Schedule`.

    ``spec`` may be a prebuilt :class:`Schedule` (checked against this
    group/shapes), a :class:`ScheduleOptions`, a bare policy string
    (legacy ``schedule="wavefront"`` usage), or ``None``; ``options``
    supplies the remaining knobs for the string/None forms.
    """
    norm = {g: tuple(int(x) for x in s) for g, s in shapes.items()}
    if isinstance(spec, Schedule):
        if spec.group.signature() != group.signature():
            raise ValueError(
                f"schedule was built for group {spec.group.name!r} "
                f"(different signature than {group.name!r})"
            )
        if dict(spec.shapes) != norm:
            raise ValueError(
                f"schedule was built for shapes {dict(spec.shapes)}, "
                f"asked to execute with {norm}"
            )
        return spec
    if isinstance(spec, ScheduleOptions):
        return schedule_for(group, norm, spec)
    base = options or ScheduleOptions()
    if spec == "tuned":
        # Explicit opt-in to the persisted tuning winner: use it when
        # one exists for this group/shapes/machine, else the base knobs.
        return schedule_for(group, norm, _tuned_or_default(group, norm, base))
    if isinstance(spec, str):
        base = replace(base, policy=spec)
    elif spec is not None:
        raise TypeError(
            f"schedule must be a Schedule, ScheduleOptions or policy "
            f"string, got {type(spec).__name__}"
        )
    return schedule_for(group, norm, base)


def pop_schedule_spec(
    options: dict,
    *,
    backend: str,
    knobs: Mapping[str, object],
) -> "Schedule | ScheduleOptions":
    """Validate and consume a backend's scheduling kwargs.

    ``knobs`` is the backend's declared vocabulary (name -> default);
    ``schedule`` always accepts a prebuilt :class:`Schedule` or a policy
    string.  Mutates ``options``; raises ``TypeError`` on anything the
    backend did not declare, naming the valid knobs.
    """
    bad = sorted(set(options) - set(knobs))
    if bad:
        raise TypeError(
            f"unknown options for {backend!r}: {bad}; "
            f"valid scheduling options are {sorted(knobs)}"
        )
    spec = options.pop("schedule", knobs.get("schedule", "greedy"))
    if isinstance(spec, (Schedule, ScheduleOptions)):
        mixed = sorted(set(options) & set(knobs))
        if mixed:
            raise TypeError(
                f"cannot combine a prebuilt schedule with loose "
                f"scheduling options {mixed}"
            )
        return spec
    kw: dict = {}
    for name, default in knobs.items():
        if name == "schedule":
            continue
        kw[name] = options.pop(name, default)
    if not isinstance(spec, str):
        raise TypeError(
            f"schedule must be a Schedule, ScheduleOptions or policy "
            f"string, got {type(spec).__name__}"
        )
    return ScheduleOptions(policy=spec, **kw)
