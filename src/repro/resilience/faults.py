"""Deterministic, site-addressed fault injection.

Production resilience is untestable without a way to *cause* the
failures it defends against.  This module compiles named fault sites
into the JIT/backend/communication hot paths; each site is a single
call to :func:`fault_point` that is inert (a dict lookup) unless armed.

Arming is deterministic and site-addressed — no randomness, no wall
clock — so a fault matrix replays identically on every run:

* programmatically, via :func:`arm` / :func:`disarm` or the
  :func:`inject` context manager::

      with inject("jit.spawn", times=1):
          kernel = stencil.compile(backend="c", fallback=("numpy",))

* from the environment, via ``SNOWFLAKE_FAULTS`` — a comma-separated
  list of ``site[:times][@after]`` specs (``times`` may be ``*`` for
  unlimited), e.g. ``SNOWFLAKE_FAULTS="jit.spawn:2,comm.send.drop@1"``.
  The variable is re-read lazily, so tests may monkeypatch it without
  re-importing anything.

A site fires in one of two modes:

* armed **with** an exception (``exc=...``): :func:`fault_point` raises
  it — used to simulate a *specific* failure type (e.g. a transient
  ``OSError`` from the compiler spawn);
* armed **without** one: :func:`fault_point` returns ``True`` and the
  instrumented code performs its natural failure (drop the message,
  corrupt the artifact, raise its domain error).

Counters (:func:`reached`, :func:`fired`) let the fault-matrix suite
assert that every site is actually exercised.
"""

from __future__ import annotations

import os
import threading
from collections import Counter
from contextlib import contextmanager
from dataclasses import dataclass

from .. import telemetry

__all__ = [
    "InjectedFault",
    "ResilienceWarning",
    "SITES",
    "register_site",
    "known_sites",
    "arm",
    "disarm",
    "inject",
    "fault_point",
    "active",
    "reached",
    "fired",
    "reset",
    "snapshot_arms",
    "restore_arms",
]


class InjectedFault(RuntimeError):
    """An armed fault site fired (the default injected failure)."""


class ResilienceWarning(UserWarning):
    """Base category for warnings emitted by the resilience layer."""


#: Built-in injection sites, compiled into the execution stack.
SITES: dict[str, str] = {
    "jit.spawn": "before the compiler subprocess is spawned",
    "jit.load": "before a shared object is dlopen'd",
    "jit.cache.read": "when a cached .so is about to be reused "
    "(firing corrupts the artifact on disk)",
    "jit.cache.write": "when a freshly built .so is published to the cache",
    "backend.specialize": "before a backend shape-specializes a group",
    "backend.invoke": "before a compiled kernel body executes",
    "comm.send.drop": "message silently lost on the send side",
    "comm.recv.drop": "matching message discarded at delivery",
    "comm.payload.corrupt": "in-flight message payload bit-flipped",
    "comm.msg.duplicate": "reliable-transport envelope delivered twice",
    "comm.msg.reorder": "reliable-transport envelope delayed past its "
    "successor (out-of-order delivery)",
    "comm.rank.crash": "a rank dies mid-sweep in the distributed executor",
}


@dataclass
class _Arm:
    remaining: int | None  # None = unlimited
    after: int  # skip this many hits before firing
    exc: BaseException | type[BaseException] | None
    source: str  # "manual" | "env"


_lock = threading.Lock()
_arms: dict[str, _Arm] = {}
_reached: Counter = Counter()
_fired: Counter = Counter()
_env_raw: str | None = None


def register_site(name: str, doc: str = "") -> str:
    """Register an extension fault site (idempotent); returns ``name``."""
    if not name:
        raise ValueError("fault site name must be non-empty")
    SITES.setdefault(name, doc)
    return name


def known_sites() -> dict[str, str]:
    """All registered sites and their one-line descriptions."""
    return dict(SITES)


def _check_site(site: str) -> None:
    if site not in SITES:
        raise ValueError(
            f"unknown fault site {site!r}; known sites: {sorted(SITES)}"
        )


def arm(
    site: str,
    *,
    times: int | None = 1,
    after: int = 0,
    exc: BaseException | type[BaseException] | None = None,
    _source: str = "manual",
) -> None:
    """Arm ``site`` to fire ``times`` times (``None`` = unlimited) after
    skipping the first ``after`` hits, raising ``exc`` if given."""
    _check_site(site)
    if times is not None and times < 1:
        raise ValueError("times must be >= 1 or None (unlimited)")
    if after < 0:
        raise ValueError("after must be >= 0")
    with _lock:
        _arms[site] = _Arm(times, after, exc, _source)


def disarm(site: str | None = None) -> None:
    """Disarm one site, or every site when called without arguments."""
    with _lock:
        if site is None:
            _arms.clear()
        else:
            _arms.pop(site, None)


@contextmanager
def inject(
    site: str,
    *,
    times: int | None = 1,
    after: int = 0,
    exc: BaseException | type[BaseException] | None = None,
):
    """Context manager: arm ``site`` on entry, restore its previous
    state on exit."""
    _check_site(site)
    with _lock:
        prev = _arms.get(site)
    arm(site, times=times, after=after, exc=exc)
    try:
        yield
    finally:
        with _lock:
            if prev is None:
                _arms.pop(site, None)
            else:
                _arms[site] = prev


def _parse_env_spec(spec: str) -> tuple[str, int | None, int]:
    """``site[:times][@after]`` -> (site, times, after)."""
    after = 0
    if "@" in spec:
        spec, raw = spec.rsplit("@", 1)
        after = int(raw)
    times: int | None = 1
    if ":" in spec:
        spec, raw = spec.rsplit(":", 1)
        times = None if raw == "*" else int(raw)
    return spec.strip(), times, after


def _sync_env_locked() -> None:
    global _env_raw
    raw = os.environ.get("SNOWFLAKE_FAULTS", "")
    if raw == _env_raw:
        return
    _env_raw = raw
    for site in [s for s, a in _arms.items() if a.source == "env"]:
        del _arms[site]
    for part in raw.split(","):
        part = part.strip()
        if not part:
            continue
        site, times, after = _parse_env_spec(part)
        _check_site(site)
        if site not in _arms:  # manual arms win over the environment
            _arms[site] = _Arm(times, after, None, "env")


def fault_point(site: str) -> bool:
    """The instrumented-code hook.

    Returns ``False`` (the overwhelmingly common case) when the site is
    not armed; returns ``True`` when an armed site fires without a
    custom exception; raises the armed exception otherwise.
    """
    _check_site(site)
    # Fast path: no env spec and nothing armed — one string compare,
    # one counter bump, no lock.
    if _env_raw == os.environ.get("SNOWFLAKE_FAULTS", "") and not _arms:
        _reached[site] += 1
        return False
    with _lock:
        _sync_env_locked()
        _reached[site] += 1
        a = _arms.get(site)
        if a is None:
            return False
        if a.after > 0:
            a.after -= 1
            return False
        if a.remaining is not None:
            if a.remaining <= 0:
                return False
            a.remaining -= 1
            if a.remaining == 0:
                del _arms[site]
        _fired[site] += 1
        exc = a.exc
    telemetry.count(f"faults.fired.{site}")
    telemetry.event("faults.fired", site=site)
    if exc is not None:
        raise exc if isinstance(exc, BaseException) else exc(
            f"injected fault at {site!r}"
        )
    return True


def snapshot_arms() -> dict[str, tuple[int | None, int, str]]:
    """Checkpointable image of the injection schedule: per armed site,
    ``(remaining, after, source)``.

    Fault injection is this repo's "randomness" — the deterministic
    stand-in for a fault RNG — so distributed checkpoints
    (:mod:`repro.dmem.recovery`) record it alongside the numerical
    state.  Restore is *opt-in*: replaying an already-fired crash by
    default would loop a recovery forever, so recovery stores the
    snapshot for forensics and only re-arms when asked.
    """
    with _lock:
        _sync_env_locked()
        return {s: (a.remaining, a.after, a.source) for s, a in _arms.items()}


def restore_arms(snap: dict[str, tuple[int | None, int, str]]) -> None:
    """Reinstate an injection schedule captured by :func:`snapshot_arms`."""
    for site in snap:
        _check_site(site)
    with _lock:
        for site in [s for s, a in _arms.items() if a.source != "env"]:
            del _arms[site]
        for site, (remaining, after, source) in snap.items():
            _arms[site] = _Arm(remaining, after, None, source)


def active() -> dict[str, tuple[int | None, int]]:
    """Currently armed sites -> (remaining, after); env arms included."""
    with _lock:
        _sync_env_locked()
        return {s: (a.remaining, a.after) for s, a in _arms.items()}


def reached(site: str) -> int:
    """How many times execution passed through ``site``."""
    _check_site(site)
    return _reached[site]


def fired(site: str) -> int:
    """How many times ``site`` actually injected a fault."""
    _check_site(site)
    return _fired[site]


def reset() -> None:
    """Disarm everything and zero the counters (test isolation)."""
    global _env_raw
    with _lock:
        _arms.clear()
        _reached.clear()
        _fired.clear()
        _env_raw = None
