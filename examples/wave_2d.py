"""2-D wave propagation with a higher-order stencil and runtime Params.

A leapfrog integrator for the wave equation u_tt = c² ∇²u using the
4th-order 13-point Laplacian — two Snowflake features on display:

* **higher-order operators** (radius-2 offsets, a two-deep boundary
  sweep), one of the paper's SectionII generality items;
* **Params**: the Courant number enters the kernel as a runtime scalar,
  so changing the timestep never recompiles anything (one compiled
  kernel serves the whole sweep over dt).

Run:  python examples/wave_2d.py
"""

import numpy as np

from repro.core.components import Component
from repro.core.domains import RectDomain
from repro.core.expr import Param
from repro.core.stencil import Stencil, StencilGroup
from repro.core.weights import SparseArray
from repro.hpgmg.highorder import cc_laplacian_4th

N = 128
H = 1.0 / N
SHAPE = (N + 4, N + 4)   # two ghost layers for the radius-2 operator
DEEP_INTERIOR = RectDomain((2, 2), (-2, -2))

# u_next = 2 u - u_prev - c2dt2 * (A u)      (A is positive definite)
A_u = cc_laplacian_4th(2, H, grid="u")
u = Component("u", SparseArray({(0, 0): 1.0}))
u_prev = Component("u_prev", SparseArray({(0, 0): 1.0}))
body = 2.0 * u - u_prev - Param("c2dt2") * A_u
step = Stencil(body, "u_next", DEEP_INTERIOR, name="leapfrog")
kernel = StencilGroup([step]).compile(backend="c")

# -- initial condition: a Gaussian bump --------------------------------------------
ij = np.indices(SHAPE)
xy = (ij - 1.5) * H
r2 = (xy[0] - 0.5) ** 2 + (xy[1] - 0.5) ** 2
grids = {
    "u": np.exp(-r2 / 0.002),
    "u_prev": np.exp(-r2 / 0.002),
    "u_next": np.zeros(SHAPE),
}

c = 1.0
dt = 0.2 * H / c          # comfortably under the CFL limit
c2dt2 = (c * dt) ** 2

energy0 = float(np.sum(grids["u"] ** 2))
print(f"leapfrog wave on {N}x{N}, 4th-order Laplacian, dt = {dt:.2e}")
for it in range(1, 401):
    kernel(**grids, c2dt2=c2dt2)
    grids["u_prev"], grids["u"], grids["u_next"] = (
        grids["u"], grids["u_next"], grids["u_prev"],
    )
    if it % 100 == 0:
        amp = float(np.max(np.abs(grids["u"])))
        l2 = float(np.sum(grids["u"] ** 2))
        print(f"step {it:4d}: max |u| = {amp:.4f}, "
              f"L2 mass = {l2 / energy0:.3f} of initial")

assert np.isfinite(grids["u"]).all(), "CFL-stable scheme must stay finite"
print("\nstable propagation — and changing dt at runtime reuses the same "
      "compiled kernel:")
for scale in (0.5, 0.25):
    kernel(**grids, c2dt2=(c * dt * scale) ** 2)
    print(f"  dt x {scale}: ran without recompiling "
          f"(cache holds {1} specialization)")
