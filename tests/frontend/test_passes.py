"""Pass manager and built-in passes."""

import numpy as np
import pytest

from repro.core.components import Component
from repro.core.domains import RectDomain
from repro.core.stencil import Stencil, StencilGroup
from repro.core.validate import ValidationError
from repro.core.weights import WeightArray
from repro.frontend import (
    DeadStencilElimination,
    GroupPass,
    PassManager,
    Reorder,
    Validate,
    default_pipeline,
    optimize_group,
)

INTERIOR = RectDomain((1, 1), (-1, -1))
LAP = Component("u", WeightArray([[0, 1, 0], [1, -4, 1], [0, 1, 0]]))


def messy_group():
    """dead scratch + a chain interleaved with an independent stencil."""
    a1 = Stencil(LAP, "a", INTERIOR, name="a1")
    a2 = Stencil(Component("a", WeightArray([[1]])), "a2", INTERIOR, name="a2")
    dead = Stencil(LAP, "scratch", INTERIOR, name="dead")
    b = Stencil(Component("v", WeightArray([[1]])), "b", INTERIOR, name="b")
    return StencilGroup([a1, a2, dead, b])


def shapes_of(g, shape=(12, 12)):
    return {k: shape for k in g.grids()}


class TestPassManager:
    def test_default_pipeline_eliminates_and_reorders(self):
        g = messy_group()
        pm = default_pipeline()
        out = pm.run(g, shapes_of(g), live_grids={"a2", "b"})
        names = [s.name for s in out]
        assert "dead" not in names
        assert names.index("a1") < names.index("a2")
        # records capture the shrink
        rec = {r.name: r for r in pm.records}
        assert rec["dead-stencil-elimination"].stencils_after == 3

    def test_report_format(self):
        pm = default_pipeline()
        g = messy_group()
        pm.run(g, shapes_of(g), live_grids={"a2", "b"})
        rep = pm.report()
        assert "dead-stencil-elimination" in rep
        assert "->" in rep

    def test_phase_count_never_increases(self):
        from repro.analysis.dag import greedy_phases

        g = messy_group()
        shapes = shapes_of(g)
        before = len(greedy_phases(g, shapes))
        out = optimize_group(g, shapes, live_grids={"a2", "b"})
        after = len(greedy_phases(out, shapes))
        assert after <= before

    def test_validate_pass_catches_broken_custom_pass(self):
        class Breaker(GroupPass):
            name = "breaker"

            def run(self, group, shapes, live_grids):
                # produce a stencil reading out of bounds
                bad = Stencil(LAP, "u", RectDomain((0, 0), (-1, -1)))
                return StencilGroup([bad])

        pm = PassManager([Breaker()], validate_each=True)
        g = messy_group()
        with pytest.raises(ValidationError):
            pm.run(g, shapes_of(g))

    def test_default_live_set_is_conservative(self):
        g = messy_group()
        out = optimize_group(g, shapes_of(g))  # everything live
        assert len(out) == len(g)

    def test_optimized_group_computes_same_live_results(self, rng):
        g = messy_group()
        shapes = shapes_of(g)
        out = optimize_group(g, shapes, live_grids={"a2", "b"})
        arrays = {k: np.zeros((12, 12)) for k in g.grids()}
        arrays["u"] = rng.random((12, 12))
        arrays["v"] = rng.random((12, 12))
        r1 = {k: v.copy() for k, v in arrays.items()}
        g.compile(backend="numpy")(**{k: r1[k] for k in g.grids()})
        r2 = {k: v.copy() for k, v in arrays.items()}
        out.compile(backend="numpy")(**{k: r2[k] for k in out.grids()})
        np.testing.assert_array_equal(r1["a2"], r2["a2"])
        np.testing.assert_array_equal(r1["b"], r2["b"])
