"""Backend fallback chains and retry policy for kernel compilation.

The paper's portability story ("every lowering path has a verified
correct fallback") becomes executable here: an :class:`ExecutionPolicy`
names an ordered chain of micro-compilers, and :class:`ResilientKernel`
walks it — retrying *transient* failures (compiler timeout, spawn
``OSError``, lost cache write) with bounded exponential backoff on the
same backend, and degrading to the next backend on *persistent* ones
(codegen ``CompileError``, un-dlopen-able artifact, injected faults).

Because every backend compiles the same canonical flat form, a
degraded kernel is slower but never wrong; the chain bottoms out at
``numpy``/``python``, which need no toolchain at all.  Degradation is
loud (one :class:`DegradedExecution` warning per kernel) and queryable
(``kernel.serving_backend``, ``kernel.attempts``).

Entry points: ``Stencil.compile(..., fallback=("c", "numpy"))`` /
``StencilGroup.compile(..., fallback=...)`` or :func:`compile_resilient`
directly.
"""

from __future__ import annotations

import time
import warnings
from dataclasses import dataclass, field, replace
from typing import Callable, Mapping, Sequence

from .. import telemetry
from ..backends.base import get_backend
from ..backends.jit import CompileError, CompileTimeout
from .faults import InjectedFault, ResilienceWarning

__all__ = [
    "DegradedExecution",
    "BackendChainError",
    "ExecutionPolicy",
    "ResilientKernel",
    "compile_resilient",
    "retry_call",
    "TRANSIENT_ERRORS",
    "FALLBACK_ERRORS",
]

#: Retried in place (same backend, bounded backoff) before degrading.
TRANSIENT_ERRORS = (CompileTimeout, OSError)

#: Advance the fallback chain.  User errors (TypeError/ValueError/
#: ValidationError from argument checking) are deliberately absent:
#: they propagate — no backend can fix a wrong call.
FALLBACK_ERRORS = (CompileError, OSError, InjectedFault)


def retry_call(
    fn: Callable,
    *,
    max_retries: int = 2,
    backoff: float = 0.05,
    sleep: Callable[[float], None] = time.sleep,
    transient: tuple[type[BaseException], ...] = TRANSIENT_ERRORS,
    give_up: Callable[[BaseException], bool] | None = None,
    on_retry: Callable[[int, BaseException], None] | None = None,
):
    """Run ``fn``, retrying ``transient`` failures with doubling backoff.

    The one retry loop shared by the resilience layer: backend
    compilation (:class:`ResilientKernel`) and halo retransmission
    (:class:`repro.dmem.transport.ReliableComm`) both drive it.
    ``give_up(e)`` short-circuits retries for errors that cannot heal
    (a missing compiler binary, a dead peer rank); ``on_retry(attempt,
    e)`` runs before each sleep — transports use it to re-send the
    lost message, kernels to emit telemetry.
    """
    delay = backoff
    for attempt in range(max_retries + 1):
        try:
            return fn()
        except transient as e:
            if (give_up is not None and give_up(e)) or attempt >= max_retries:
                raise
            if on_retry is not None:
                on_retry(attempt, e)
            telemetry.observe("resilience.retry.backoff", delay)
            sleep(delay)
            delay *= 2
    raise AssertionError("unreachable")  # pragma: no cover


class DegradedExecution(ResilienceWarning):
    """A kernel is being served by a fallback backend."""


class BackendChainError(RuntimeError):
    """Every backend in the fallback chain failed; carries the log."""

    def __init__(self, attempts: Sequence[tuple[str, str]]) -> None:
        self.attempts = list(attempts)
        lines = "\n".join(f"  {b}: {e}" for b, e in self.attempts)
        super().__init__(
            f"all {len(self.attempts)} backend(s) in the fallback chain "
            f"failed:\n{lines}"
        )


@dataclass(frozen=True)
class ExecutionPolicy:
    """How a kernel compiles and degrades.

    ``fallback`` — backends tried, in order, after the primary;
    ``max_retries`` — extra in-place attempts per backend for transient
    failures; ``backoff`` — initial sleep between retries, doubling each
    time (``sleep`` is injectable so tests stay instant);
    ``compile_timeout`` — hard wall-clock cap on each compiler
    subprocess, passed to toolchain backends as ``cc_timeout``.
    """

    fallback: tuple[str, ...] = ()
    max_retries: int = 2
    backoff: float = 0.05
    compile_timeout: float | None = None
    sleep: Callable[[float], None] = field(
        default=time.sleep, repr=False, compare=False
    )

    def with_fallback(self, chain: Sequence[str]) -> "ExecutionPolicy":
        return replace(self, fallback=tuple(chain))


class ResilientKernel:
    """A kernel that walks a backend chain instead of dying.

    Behaves like the :class:`~repro.backends.base.CompiledKernel` it
    wraps — ``kernel(**grids, **params)`` — plus:

    * ``serving_backend`` — who actually served the last successful
      call (``None`` until one succeeds);
    * ``degraded`` — is the server not the primary backend;
    * ``attempts`` — ``[(backend, error), ...]`` log of failures.
    """

    def __init__(
        self,
        group,
        backend: str,
        shapes: Mapping[str, Sequence[int]] | None,
        dtype,
        policy: ExecutionPolicy,
        options: Mapping | None = None,
    ) -> None:
        chain: list[str] = []
        for name in (backend, *policy.fallback):
            if name not in chain:
                chain.append(name)
        self.group = group
        self.chain: tuple[str, ...] = tuple(chain)
        self.policy = policy
        self.attempts: list[tuple[str, str]] = []
        self._shapes = shapes
        self._dtype = dtype
        self._options = dict(options or {})
        self._pos = 0
        self._kernel = None
        self._serving: str | None = None
        self._warned = False
        if shapes is not None:
            # Eager shapes: surface compile failures (and the chain
            # walk) at construction, like a plain backend would.
            self._ensure_kernel()

    # -- public surface -------------------------------------------------------

    @property
    def serving_backend(self) -> str | None:
        return self._serving

    @property
    def degraded(self) -> bool:
        return self._serving is not None and self._serving != self.chain[0]

    def __call__(self, **kwargs) -> None:
        while True:
            kernel, name = self._ensure_kernel()
            try:
                self._with_retries(lambda: kernel(**kwargs))
            except FALLBACK_ERRORS as e:
                self._fail(name, e)
                continue
            self._mark_serving(name)
            return

    def __repr__(self) -> str:  # pragma: no cover
        return (
            f"ResilientKernel(chain={self.chain}, "
            f"serving={self._serving!r}, attempts={len(self.attempts)})"
        )

    # -- chain machinery ------------------------------------------------------

    def _current_name(self) -> str:
        if self._pos >= len(self.chain):
            telemetry.count("resilience.chain_exhausted")
            raise BackendChainError(self.attempts)
        return self.chain[self._pos]

    def _options_for(self, name: str) -> dict:
        opts = dict(self._options)
        be = get_backend(name)
        if (
            self.policy.compile_timeout is not None
            and getattr(be, "requires_toolchain", False)
        ):
            opts.setdefault("cc_timeout", self.policy.compile_timeout)
        return opts

    def _build(self, name: str):
        be = get_backend(name)

        def make():
            with telemetry.tracing.span(
                f"build:{name}", cat="resilience",
                group=getattr(self.group, "name", "?"),
            ):
                return self._compile_on(be, name)
        return self._with_retries(make)

    def _compile_on(self, be, name: str):
        opts = self._options_for(name)
        try:
            return be.compile(
                self.group,
                shapes=self._shapes,
                dtype=self._dtype,
                **opts,
            )
        except TypeError as e:
            # A chain may cross backend families with different
            # option vocabularies (e.g. openmp's `tile` means
            # nothing to numpy): retry bare rather than dying on a
            # tuning knob.
            if opts and "option" in str(e):
                return be.compile(
                    self.group, shapes=self._shapes, dtype=self._dtype
                )
            raise

    def _ensure_kernel(self):
        while self._kernel is None:
            name = self._current_name()
            try:
                self._kernel = self._build(name)
            except FALLBACK_ERRORS as e:
                self._fail(name, e)
                continue
            if self._shapes is not None:
                # eager compile already proved the backend works
                self._mark_serving(name)
        return self._kernel, self.chain[self._pos]

    def _with_retries(self, fn: Callable):
        """Run ``fn``, retrying transient failures per the policy.

        A missing compiler binary (``FileNotFoundError``) is OSError
        but not transient — it won't reappear between retries, so it
        degrades immediately instead of burning the retry budget.
        """

        def on_retry(attempt: int, e: BaseException) -> None:
            telemetry.count("resilience.retries")
            telemetry.event(
                "resilience.retry",
                backend=self.chain[self._pos],
                error=type(e).__name__,
            )
            telemetry.tracing.instant(
                "retry", cat="resilience",
                backend=self.chain[self._pos],
                error=type(e).__name__,
                attempt=attempt + 1,
            )

        return retry_call(
            fn,
            max_retries=self.policy.max_retries,
            backoff=self.policy.backoff,
            sleep=self.policy.sleep,
            give_up=lambda e: isinstance(e, FileNotFoundError),
            on_retry=on_retry,
        )

    def _fail(self, name: str, e: BaseException) -> None:
        self.attempts.append((name, f"{type(e).__name__}: {e}"))
        telemetry.count("resilience.fallback.advances")
        telemetry.event(
            "resilience.fallback",
            failed=name,
            error=type(e).__name__,
        )
        next_name = (
            self.chain[self._pos + 1]
            if self._pos + 1 < len(self.chain) else None
        )
        telemetry.tracing.instant(
            "fallback", cat="resilience",
            failed=name, error=type(e).__name__, next=next_name,
        )
        self._kernel = None
        self._serving = None
        self._pos += 1
        self._current_name()  # raises BackendChainError when exhausted

    def _mark_serving(self, name: str) -> None:
        self._serving = name
        if name != self.chain[0] and not self._warned:
            self._warned = True
            telemetry.count("resilience.fallback.activations")
            telemetry.event(
                "resilience.degraded",
                primary=self.chain[0], serving=name,
            )
            telemetry.tracing.instant(
                "degraded", cat="resilience",
                primary=self.chain[0], serving=name,
            )
            log = "; ".join(f"{b}: {e}" for b, e in self.attempts)
            warnings.warn(
                DegradedExecution(
                    f"backend {self.chain[0]!r} unavailable, serving "
                    f"from fallback {name!r} ({log})"
                ),
                stacklevel=3,
            )


def compile_resilient(
    group,
    backend: str = "numpy",
    shapes: Mapping[str, Sequence[int]] | None = None,
    dtype=None,
    policy: ExecutionPolicy | None = None,
    **options,
) -> ResilientKernel:
    """Compile ``group`` under a fallback policy (see module docs)."""
    return ResilientKernel(
        group, backend, shapes, dtype, policy or ExecutionPolicy(), options
    )
