"""Command-line entry point: ``python -m repro <command>``.

Commands:

* ``info``      — environment report: backends, compiler, cache, machine
* ``selftest``  — compile-and-run a stencil through every backend
* ``doctor``    — toolchain/cache self-check + degradation report
                  (exit 0 healthy, 1 degraded, 2 unusable)
* ``stats``     — run a smoke kernel through the instrumented pipeline
                  and print the telemetry report (``--json`` writes the
                  ``BENCH_pipeline.json`` perf-trajectory artifact)
* ``figures``   — alias for ``python -m repro.figures ...``
"""

from __future__ import annotations

import argparse
import sys


def cmd_info() -> None:
    import shutil

    import numpy as np

    from . import __version__, available_backends
    from .backends import HAVE_COMPILED_BACKENDS
    from .backends.jit import cache_dir, _cc

    print(f"repro-snowflake {__version__}")
    print(f"python {sys.version.split()[0]}, numpy {np.__version__}")
    print(f"backends: {', '.join(available_backends())}")
    cc = _cc()
    print(
        f"compiler: {cc} "
        f"({'found' if shutil.which(cc) else 'NOT FOUND'}; "
        f"compiled backends "
        f"{'available' if HAVE_COMPILED_BACKENDS else 'unavailable'})"
    )
    print(f"jit cache: {cache_dir()}")
    try:
        from .machine.specs import host_spec

        spec = host_spec()
        print(f"host STREAM-dot bandwidth: {spec.stream_bw / 1e9:.2f} GB/s")
    except Exception as e:  # pragma: no cover - measurement best-effort
        print(f"host bandwidth: unavailable ({e})")


def cmd_selftest() -> int:
    import numpy as np

    from . import Component, RectDomain, Stencil, WeightArray, available_backends

    lap = Component("u", WeightArray([[0, 1, 0], [1, -4, 1], [0, 1, 0]]))
    stencil = Stencil(lap, "out", RectDomain((1, 1), (-1, -1)))
    rng = np.random.default_rng(0)
    u = rng.random((34, 34))
    ref = None
    failed = 0
    for backend in available_backends():
        out = np.zeros_like(u)
        try:
            stencil.compile(backend=backend)(u=u, out=out)
        except Exception as e:
            print(f"  {backend:12s} ERROR: {e}")
            failed += 1
            continue
        if ref is None:
            ref = out
        ok = np.allclose(out, ref)
        print(f"  {backend:12s} {'OK' if ok else 'MISMATCH'}")
        failed += 0 if ok else 1
    print("selftest:", "PASS" if failed == 0 else f"FAIL ({failed})")
    return 1 if failed else 0


def cmd_stats(args) -> int:
    """Exercise the pipeline on a smoke kernel, then report telemetry.

    The smoke workload compiles a 2-D Laplacian through the requested
    backend (fallback chain down to numpy, so the command works on a
    broken toolchain) and applies it ``--calls`` times; everything the
    instrumented pipeline recorded — including whatever the process ran
    before this call — is rendered as fixed-width tables.
    """
    import numpy as np

    from . import Component, RectDomain, Stencil, WeightArray, telemetry

    if telemetry.mode() == "off":
        print(
            "telemetry is off (SNOWFLAKE_TELEMETRY=off); "
            "nothing will be recorded"
        )
    n = int(args.size)
    lap = Component("u", WeightArray([[0, 1, 0], [1, -4, 1], [0, 1, 0]]))
    stencil = Stencil(lap, "out", RectDomain((1, 1), (-1, -1)))
    kernel = stencil.compile(
        backend=args.backend,
        shapes={"u": (n, n), "out": (n, n)},
        fallback=("c", "numpy"),
    )
    rng = np.random.default_rng(0)
    u = rng.random((n, n))
    out = np.zeros_like(u)
    for _ in range(int(args.calls)):
        kernel(u=u, out=out)
    serving = getattr(kernel, "serving_backend", args.backend)
    print(f"smoke kernel: {n}x{n} laplacian, served by {serving!r}")
    print()
    print(telemetry.render_stats())
    if args.json:
        path = telemetry.export_bench_json(args.json)
        print(f"\nwrote {path}")
    return 0


_PROBE_SRC = "double sf_doctor_probe(void){ return 42.0; }\n"


def cmd_doctor() -> int:
    """Self-check the execution stack and print the degradation report.

    Exit codes: 0 — primary chain fully healthy; 1 — degraded but
    serving (a fallback backend will carry the load); 2 — no backend
    can serve at all.
    """
    import os
    import shutil

    from . import __version__
    from .backends import jit
    from .resilience import faults

    def line(status: str, name: str, detail: str) -> None:
        print(f"  [{status:^4s}] {name:18s} {detail}")

    print(f"repro doctor ({__version__})")

    cc = jit._cc()
    cc_found = shutil.which(cc) is not None
    line("ok" if cc_found else "FAIL", "compiler",
         f"{cc} ({'found' if cc_found else 'NOT FOUND'})")

    # Probe the real pipeline, not just PATH: compile + dlopen a
    # one-liner, plain and with -fopenmp.
    c_ok = omp_ok = False
    c_err = omp_err = ""
    try:
        jit.compile_and_load(_PROBE_SRC)
        c_ok = True
    except Exception as e:
        c_err = f"{type(e).__name__}: {e}".splitlines()[0][:90]
    line("ok" if c_ok else "FAIL", "c toolchain",
         "probe compiled and loaded" if c_ok else c_err)
    try:
        jit.compile_and_load(_PROBE_SRC, openmp=True)
        omp_ok = True
    except Exception as e:
        omp_err = f"{type(e).__name__}: {e}".splitlines()[0][:90]
    line("ok" if omp_ok else "FAIL", "openmp link",
         "probe compiled with -fopenmp" if omp_ok else omp_err)

    try:
        d = jit.cache_dir()
        probe = d / f"sf_doctor.{os.getpid()}.touch"
        probe.write_text("ok")
        probe.unlink()
        cache_ok = True
        line("ok", "cache", f"writable at {d}")
    except OSError as e:
        cache_ok = False
        line("warn", "cache", f"not writable ({e}); compiles cannot persist")

    if cache_ok:
        swept = jit.sweep_orphans()
        if swept:
            line("warn", "orphans", f"removed {swept} stale *.tmp.so "
                 "from crashed compiles")
        else:
            line("ok", "orphans", "no stale *.tmp.so temporaries")
        bad = len(list(jit.cache_dir().glob("sf_*.so.bad")))
        line("warn" if bad else "ok", "quarantine",
             f"{bad} quarantined artifact(s)" if bad
             else "no quarantined artifacts")

    armed = faults.active()
    line("warn" if armed else "ok", "fault injection",
         f"armed sites: {sorted(armed)}" if armed else "no sites armed")

    # Degradation report: walk the default fallback chain exactly the
    # way ExecutionPolicy would.
    chain = ("openmp", "c", "numpy")
    healthy = {"openmp": omp_ok, "c": c_ok, "numpy": True}
    serving = next((b for b in chain if healthy[b]), None)
    print(f"degradation report (chain {' -> '.join(chain)}):")
    for b in chain:
        print(f"  {b:8s} {'available' if healthy[b] else 'UNAVAILABLE'}")
    if serving == chain[0]:
        print(f"  would serve: {serving} (healthy, no degradation)")
        return 0
    if serving is not None:
        print(f"  would serve: {serving} (DEGRADED — results identical, "
              "performance reduced)")
        return 1
    print("  would serve: nothing — system unusable")  # pragma: no cover
    return 2


def main(argv=None) -> int:
    ap = argparse.ArgumentParser(prog="repro")
    sub = ap.add_subparsers(dest="command", required=True)
    sub.add_parser("info", help="environment report")
    sub.add_parser("selftest", help="run every backend on a probe stencil")
    sub.add_parser(
        "doctor",
        help="toolchain/cache self-check and degradation report",
    )
    st = sub.add_parser(
        "stats",
        help="run a smoke kernel and print the telemetry report",
    )
    st.add_argument(
        "--backend", default="c",
        help="primary backend for the smoke kernel (default: c)",
    )
    st.add_argument(
        "--size", type=int, default=64,
        help="grid edge length for the smoke kernel (default: 64)",
    )
    st.add_argument(
        "--calls", type=int, default=3,
        help="kernel applications to record (default: 3)",
    )
    st.add_argument(
        "--json", metavar="PATH", default=None,
        help="also write the telemetry snapshot as JSON "
        "(e.g. BENCH_pipeline.json)",
    )
    fig = sub.add_parser("figures", help="regenerate paper figures")
    fig.add_argument("rest", nargs=argparse.REMAINDER)
    args = ap.parse_args(argv)

    if args.command == "info":
        cmd_info()
        return 0
    if args.command == "selftest":
        return cmd_selftest()
    if args.command == "doctor":
        return cmd_doctor()
    if args.command == "stats":
        return cmd_stats(args)
    if args.command == "figures":
        from .figures.__main__ import main as fig_main

        fig_main(args.rest)
        return 0
    raise AssertionError(args.command)


if __name__ == "__main__":
    raise SystemExit(main())
