"""The ``times``-aware execution entry point.

``run(stencil_or_group, arrays, times=k)`` applies the whole program
``k`` times — the operation a smoother loop performs — and picks the
cheapest legal realization:

* when the schedule proves the group time-tileable, the ``k``
  applications are fused into **one** kernel invocation
  (``ScheduleOptions(time_tile=k)``): one FFI round trip, and on the
  wavefront path one cache-resident pass instead of ``k`` DRAM sweeps;
* when time tiling is refused (snapshot-requiring step, unbounded
  footprint such as periodic wrap-around reads) or the backend cannot
  lower it (the GPU simulators), ``run`` transparently falls back to
  ``k`` separate kernel calls — same bits either way, by construction.

The refusal evidence is never swallowed: pass ``strict=True`` to get
the ``ValueError`` with the ``Evidence("time-tile-refused", ...)``
chain instead of the fallback.
"""

from __future__ import annotations

from typing import Mapping

import numpy as np

from .core.stencil import Stencil, StencilGroup

__all__ = ["run"]


def run(
    program: "Stencil | StencilGroup",
    arrays: Mapping[str, np.ndarray],
    params: Mapping[str, float] | None = None,
    *,
    times: int = 1,
    backend: str = "c",
    strict: bool = False,
    **options,
):
    """Apply ``program`` to ``arrays`` ``times`` times, in place.

    ``options`` are the backend's scheduling knobs (``tile``, ``fuse``,
    ``multicolor``, ...).  Returns the number of kernel invocations
    performed (1 when the time tile landed, ``times`` on fallback) so
    callers and tests can observe which path ran.
    """
    times = int(times)
    if times < 1:
        raise ValueError(f"times must be >= 1, got {times!r}")
    if isinstance(program, Stencil):
        program = StencilGroup([program], name=program.name)
    params = dict(params or {})
    shapes = {g: np.asarray(a).shape for g, a in arrays.items()}
    dtype = np.asarray(next(iter(arrays.values()))).dtype

    if times > 1:
        try:
            # shapes= makes specialization eager, so a time-tile
            # refusal (ValueError with evidence) or a backend that
            # cannot lower it (NotImplementedError, or TypeError for
            # one without the knob) surfaces here, before any grid is
            # touched.
            kernel = program.compile(
                backend=backend, shapes=shapes, dtype=dtype,
                time_tile=times, **options,
            )
        except (ValueError, NotImplementedError, TypeError):
            if strict:
                raise
        else:
            kernel(**arrays, **params)
            return 1
    kernel = program.compile(
        backend=backend, shapes=shapes, dtype=dtype, **options
    )
    for _ in range(times):
        kernel(**arrays, **params)
    return times
