"""Unit tests for the kernel IR node classes and KernelBody invariants."""

import pytest

from repro.kernel.ir import (
    KAdd,
    KConst,
    KDiv,
    KFma,
    KLet,
    KLoad,
    KMul,
    KParam,
    KRef,
    KernelBody,
    count_nodes,
    walk,
)


def _load(grid="u", offset=(0, 0), scale=(1, 1)):
    return KLoad(grid, offset, scale)


def test_nodes_are_immutable():
    c = KConst(2.0)
    with pytest.raises(AttributeError):
        c.value = 3.0
    with pytest.raises(AttributeError):
        _load().grid = "v"


def test_signature_equality_and_hash():
    a = KMul(KConst(2.0), _load())
    b = KMul(KConst(2.0), _load())
    assert a == b
    assert hash(a) == hash(b)
    assert a != KMul(_load(), KConst(2.0))  # order matters
    assert KParam("w") != KRef("w")  # param and ref never unify
    assert KConst(1.0) != KConst(1.5)


def test_load_key_identifies_the_access():
    l1 = _load("u", (1, 0))
    l2 = _load("u", (1, 0))
    l3 = _load("u", (0, 1))
    assert l1.key == l2.key
    assert l1.key != l3.key
    assert l1 == l2 and l1 != l3


def test_fma_is_structural():
    f = KFma(KConst(2.0), _load(), KParam("w"))
    assert f.children() == (KConst(2.0), _load(), KParam("w"))
    # signature distinguishes fma from the equivalent add-of-mul
    assert f != KAdd(KMul(KConst(2.0), _load()), KParam("w"))


def test_walk_is_preorder_and_count_nodes_counts():
    e = KAdd(KMul(KConst(2.0), _load()), KParam("w"))
    seen = list(walk(e))
    assert seen[0] is e
    assert count_nodes(e) == 5
    assert len(seen) == 5


def test_body_validates_ref_before_bind():
    with pytest.raises(ValueError):
        KernelBody(
            2,
            [KLet("a", KRef("b"), 0), KLet("b", KConst(1.0), 0)],
            KRef("a"),
        )


def test_body_rejects_duplicate_names():
    with pytest.raises(ValueError):
        KernelBody(
            2,
            [KLet("a", KConst(1.0), 0), KLet("a", KConst(2.0), 0)],
            KRef("a"),
        )


def test_body_queries():
    lets = [
        KLet("s0", KMul(KParam("w"), KConst(0.5)), 0),
        KLet("t0", KMul(KRef("s0"), _load("u", (1, 0))), 2),
    ]
    body = KernelBody(2, lets, KAdd(KRef("t0"), _load("v")))
    assert [l.name for l in body.scalar_lets()] == ["s0"]
    assert [l.name for l in body.inner_lets()] == ["t0"]
    assert body.grids() == {"u", "v"}
    assert body.params() == {"w"}
    # distinct loads in first-occurrence order
    assert [ld.grid for ld in body.loads()] == ["u", "v"]
    assert body.load_count() == 2
    assert body.node_count() == sum(
        count_nodes(e) for e in body.exprs()
    )


def test_body_loads_deduplicates_repeats():
    twice = KAdd(_load("u", (0, 1)), _load("u", (0, 1)))
    body = KernelBody(2, [], twice)
    # loads() is distinct accesses; load_count() is emitted occurrences
    assert len(body.loads()) == 1
    assert body.load_count() == 2


def test_map_exprs_rebuilds_consistently():
    body = KernelBody(
        2,
        [KLet("t0", KMul(KConst(1.0), _load()), 2)],
        KRef("t0"),
    )

    def drop_one_mul(e):
        if isinstance(e, KMul) and e.lhs == KConst(1.0):
            return e.rhs
        return e

    mapped = body.map_exprs(
        lambda root: _map_bottom_up(root, drop_one_mul)
    )
    assert mapped.lets[0].expr == _load()
    assert mapped.result == KRef("t0")


def _map_bottom_up(e, fn):
    kids = [_map_bottom_up(k, fn) for k in e.children()]
    if isinstance(e, (KAdd, KMul, KDiv)):
        e = type(e)(*kids)
    elif isinstance(e, KFma):
        e = KFma(*kids)
    return fn(e)
