"""Backend registry and CompiledKernel plumbing."""

import numpy as np
import pytest

from repro.backends import (
    Backend,
    available_backends,
    get_backend,
    register_backend,
)
from repro.core.components import Component
from repro.core.domains import RectDomain
from repro.core.stencil import Stencil, StencilGroup
from repro.core.weights import WeightArray

LAP = Component("u", WeightArray([[0, 1, 0], [1, -4, 1], [0, 1, 0]]))
INTERIOR = RectDomain((1, 1), (-1, -1))


class TestRegistry:
    def test_builtins_registered(self):
        names = available_backends()
        for expected in ("python", "numpy", "c", "openmp", "opencl-sim",
                         "cuda-sim"):
            assert expected in names

    def test_aliases_resolve_to_same_backend(self):
        assert get_backend("np") is get_backend("numpy")
        assert get_backend("omp") is get_backend("openmp")
        assert get_backend("ref") is get_backend("python")
        assert get_backend("cl") is get_backend("opencl-sim")

    def test_unknown_backend_lists_options(self):
        with pytest.raises(KeyError, match="available"):
            get_backend("tpu")

    def test_register_custom_and_alias(self):
        class Null(Backend):
            name = "null-test-backend"

            def specializer(self, group, **options):
                def specialize(shapes, dtype):
                    return lambda arrays, params: None

                return specialize

        register_backend(Null(), "nul")
        try:
            assert get_backend("nul").name == "null-test-backend"
            # a registered no-op backend is callable end to end
            s = Stencil(LAP, "out", INTERIOR)
            out = np.full((8, 8), -1.0)
            s.compile(backend="nul")(u=np.ones((8, 8)), out=out)
            assert (out == -1.0).all()
        finally:
            # the registry is process-global: leave no test pollution
            from repro.backends.base import _REGISTRY

            _REGISTRY.pop("null-test-backend", None)
            _REGISTRY.pop("nul", None)

    def test_register_empty_name_rejected(self):
        class Bad(Backend):
            name = ""

            def specializer(self, group, **options):  # pragma: no cover
                raise NotImplementedError

        with pytest.raises(ValueError):
            register_backend(Bad())


class TestCompiledKernel:
    def test_eager_shapes_compile_immediately(self):
        s = Stencil(LAP, "out", INTERIOR)
        k = s.compile(backend="numpy", shapes={"u": (8, 8), "out": (8, 8)})
        assert k.specializations == 1

    def test_lazy_compile_on_first_call(self, rng):
        s = Stencil(LAP, "out", INTERIOR)
        k = s.compile(backend="numpy")
        assert k.specializations == 0
        k(u=rng.random((8, 8)), out=np.zeros((8, 8)))
        assert k.specializations == 1

    def test_dtype_is_part_of_the_key(self, rng):
        s = Stencil(LAP, "out", INTERIOR)
        k = s.compile(backend="numpy")
        k(u=rng.random((8, 8)), out=np.zeros((8, 8)))
        u32 = rng.random((8, 8)).astype(np.float32)
        k(u=u32, out=np.zeros((8, 8), np.float32))
        assert k.specializations == 2

    def test_group_property_exposed(self):
        s = Stencil(LAP, "out", INTERIOR)
        k = s.compile(backend="numpy")
        assert isinstance(k.group, StencilGroup)
        assert len(k.group) == 1
