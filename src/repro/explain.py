"""Analysis provenance: *why* the pipeline made each decision.

The dependence analysis and the barrier planner are exact, but their
output (an :class:`~repro.analysis.dag.ExecutionPlan`) records only
*what* was decided.  This module re-runs the cheap analysis queries and
assembles the full chain of custody for one compiled group:

* per stencil — the Diophantine intra-stencil verdict (parallel-safe or
  the list of loop-carried hazards that forbid it), plus the analytic
  kernel cost (flops, compulsory bytes, arithmetic intensity from
  :func:`repro.kernel.kernel_cost`) and the
  :class:`~repro.kernel.optimize.OptReport` of the pass pipeline that
  produced the body every backend emits;
* per barrier — every cross-stencil dependence edge crossing it and the
  grids whose footprint-lattice intersections carry each RAW/WAR/WAW;
* per group — the :class:`~repro.schedule.ir.Schedule` the backend will
  execute (phases, fused chains, color sweeps), each decision tagged
  with the Diophantine evidence that legalizes it;
* per backend — the chosen micro-compiler, its JIT cache key, and the
  on-disk paths of the generated source and shared object
  (:meth:`~repro.backends.base.Backend.artifact_info`).

Nothing here compiles or executes anything: :func:`explain` costs a few
lattice intersections, so it is safe to call on production groups.
Render with :meth:`GroupProvenance.render` or ``python -m repro
explain``; feed dashboards with :meth:`GroupProvenance.to_dict`.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Mapping, Sequence

import numpy as np

from .analysis.dag import ExecutionPlan, plan
from .analysis.dependence import intra_stencil_hazards
from .backends.base import get_backend
from .core.stencil import Stencil, StencilGroup
from .kernel import body_for, kernel_cost, swept_cost
from .schedule import Schedule, as_schedule, pop_schedule_spec
from .telemetry import tracing

__all__ = [
    "StencilProvenance",
    "BarrierProvenance",
    "GroupProvenance",
    "explain",
]


@dataclass(frozen=True)
class StencilProvenance:
    """The intra-stencil analysis verdict for one stencil."""

    index: int
    name: str
    output: str
    parallel_safe: bool
    hazards: tuple[str, ...]  # rendered Hazard messages, empty when safe
    #: analytic per-point cost of the optimized kernel body
    #: (:meth:`repro.kernel.cost.KernelCost.to_dict`)
    cost: dict | None = None
    #: what the kernel pass pipeline did
    #: (:meth:`repro.kernel.optimize.OptReport.to_dict`)
    opt_report: dict | None = None

    def verdict(self) -> str:
        if self.parallel_safe:
            return "parallel-safe (no loop-carried lattice intersection)"
        return "serialized: " + "; ".join(self.hazards)

    def kernel_summary(self) -> str | None:
        """One line of cost + optimization evidence, if available."""
        if self.cost is None:
            return None
        bits = (
            f"{self.cost['flops_per_point']} flops/pt, "
            f"{self.cost['bytes_per_point']:g} B/pt, "
            f"AI {self.cost['arithmetic_intensity']:.3f}"
        )
        if self.opt_report is not None:
            r = self.opt_report
            bits += (
                f"; opt: nodes {r['nodes_before']}->{r['nodes_after']}, "
                f"{r['reads_deduped']} reads deduped, "
                f"{r['bindings_hoisted']} hoisted, "
                f"{r['fma_grouped']} fma"
            )
        return bits


@dataclass(frozen=True)
class BarrierProvenance:
    """The dependence edges one barrier enforces.

    ``edges`` holds ``((i, j), {kind: grids})`` in stencil order — the
    exact output of :meth:`ExecutionPlan.barrier_edges`.
    """

    index: int
    edges: tuple


    def grids(self) -> frozenset[str]:
        """Every grid named by a dependence crossing this barrier."""
        out: set[str] = set()
        for _, detail in self.edges:
            for gs in detail.values():
                out |= set(gs)
        return frozenset(out)


@dataclass(frozen=True)
class GroupProvenance:
    """Everything :func:`explain` found out about one group."""

    group: str
    backend: str
    plan: ExecutionPlan
    stencils: tuple[StencilProvenance, ...]
    barriers: tuple[BarrierProvenance, ...]
    artifact: dict | None  # Backend.artifact_info(); None for interpreters
    #: the legality-checked schedule the backend executes; None only for
    #: user-registered backends that don't declare scheduling knobs
    schedule: Schedule | None = None
    #: per-stencil swept-cost prediction (name ->
    #: :meth:`repro.kernel.cost.SweptCost.to_dict`) when the schedule
    #: carries a time tile; None otherwise
    swept: dict | None = None
    #: the composable transform pipeline the scheduling preset expands
    #: to (:func:`repro.transform.preset_pipeline` descriptions, after
    #: the ``base_schedule`` seed); empty for knob-less backends
    transforms: tuple = ()

    def to_dict(self) -> dict:
        """JSON-able view (frozensets become sorted lists)."""
        return {
            "group": self.group,
            "backend": self.backend,
            "schedule": (
                self.schedule.to_dict() if self.schedule is not None else None
            ),
            "phases": [list(p) for p in self.plan.phases],
            "stencils": [
                {
                    "index": s.index,
                    "name": s.name,
                    "output": s.output,
                    "parallel_safe": s.parallel_safe,
                    "hazards": list(s.hazards),
                    "cost": s.cost,
                    "opt_report": s.opt_report,
                }
                for s in self.stencils
            ],
            "barriers": [
                {
                    "index": b.index,
                    "edges": [
                        {
                            "from": i,
                            "to": j,
                            "kinds": {
                                k: sorted(v) for k, v in detail.items()
                            },
                        }
                        for (i, j), detail in b.edges
                    ],
                    "grids": sorted(b.grids()),
                }
                for b in self.barriers
            ],
            "artifact": self.artifact,
            "swept": self.swept,
            "transforms": list(self.transforms),
        }

    def render(self) -> str:
        """Human-readable provenance report."""
        lines = [
            f"group {self.group!r}: {len(self.stencils)} stencil(s), "
            f"{len(self.plan.phases)} phase(s), "
            f"{self.plan.n_barriers} barrier(s), backend {self.backend!r}",
            "",
            "intra-stencil (Diophantine) verdicts:",
        ]
        for s in self.stencils:
            lines.append(f"  [{s.index}] {s.name} -> {s.output}: {s.verdict()}")
        lines.append("")
        lines.append("kernel cost (analytic, per point):")
        for s in self.stencils:
            summary = s.kernel_summary()
            if summary is not None:
                lines.append(f"  [{s.index}] {s.name}: {summary}")
        lines.append("")
        lines.append("execution plan:")
        for l in self.plan.describe().splitlines():
            lines.append("  " + l)
        if self.schedule is not None:
            lines.append("")
            lines.append("schedule:")
            for l in self.schedule.describe().splitlines():
                lines.append("  " + l)
        if self.transforms:
            lines.append("")
            lines.append("transform pipeline (the preset as rewrites):")
            for t in self.transforms:
                lines.append(f"  {t}")
        if self.swept is not None:
            lines.append("")
            lines.append("time-tile traffic prediction (cache-resident tiles):")
            for name, sc in self.swept.items():
                lines.append(
                    f"  {name}: {sc['base_bytes_per_point']:g} -> "
                    f"{sc['swept_bytes_per_point']:g} B/pt "
                    f"(x{sc['traffic_reduction']:.2f} reduction at "
                    f"k={sc['k']})"
                )
        if self.artifact is not None:
            lines.append("")
            lines.append("artifact:")
            for k in sorted(self.artifact):
                lines.append(f"  {k}: {self.artifact[k]}")
        return "\n".join(lines)


def explain(
    group: StencilGroup | Stencil,
    shapes: Mapping[str, Sequence[int]],
    *,
    backend: str = "c",
    dtype=np.float64,
    policy: str = "greedy",
    **options,
) -> GroupProvenance:
    """Assemble the analysis provenance of compiling ``group``.

    Pure analysis — the named ``backend`` is only asked for its
    :meth:`~repro.backends.base.Backend.artifact_info` (cache identity),
    never to compile.  ``options`` are the backend compile options and
    participate in the cache key exactly as ``compile`` would use them.
    """
    if isinstance(group, Stencil):
        group = StencilGroup((group,), name=group.name)
    shapes = {g: tuple(int(x) for x in s) for g, s in shapes.items()}
    be = get_backend(backend)
    with tracing.span(
        "explain", cat="analysis", group=group.name, backend=backend
    ):
        sched: Schedule | None = None
        if be._KNOBS is not None:
            # Resolve scheduling options exactly as compile() would: the
            # backend's declared knobs, validated in one place, lowered
            # to the Schedule the backend will execute.
            probe = dict(options)
            probe.pop("cc_timeout", None)
            probe.setdefault("schedule", policy)
            spec = pop_schedule_spec(
                probe, backend=backend, knobs=be._KNOBS
            )
            sched = as_schedule(spec, group, shapes)
            exec_plan = sched.plan
        else:
            exec_plan = plan(group, shapes, policy=policy)
        stencils = []
        for i, st in enumerate(group):
            hazards = intra_stencil_hazards(st, shapes)
            report = st.opt_report()
            stencils.append(
                StencilProvenance(
                    index=i,
                    name=st.name,
                    output=st.output,
                    parallel_safe=not hazards,
                    hazards=tuple(str(h) for h in hazards),
                    cost=kernel_cost(st).to_dict(),
                    opt_report=report.to_dict() if report else None,
                )
            )
        barriers = tuple(
            BarrierProvenance(k, tuple(exec_plan.barrier_edges(k)))
            for k in range(exec_plan.n_barriers)
        )
        swept: dict | None = None
        if sched is not None and sched.time_tile is not None:
            k = sched.time_tile.k
            swept = {}
            for st in group:
                body, _ = body_for(st)
                swept[st.name] = swept_cost(body, st.output, k).to_dict()
        transforms: tuple = ()
        if sched is not None:
            from .transform import preset_pipeline

            transforms = (
                f"base_schedule(policy={sched.options.policy!r})",
            ) + tuple(
                t.describe() for t in preset_pipeline(sched.options)
            )
        artifact = be.artifact_info(group, shapes, dtype, **options)
    return GroupProvenance(
        group=group.name,
        backend=backend,
        plan=exec_plan,
        stencils=stencils,
        barriers=barriers,
        artifact=artifact,
        schedule=sched,
        swept=swept,
        transforms=transforms,
    )
