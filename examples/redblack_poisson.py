"""The paper's Fig.4 worked end to end: variable-coefficient GSRB.

Builds the complex smoothing operation of SectionII-B — a red-black
colored, in-place, variable-coefficient 5-point stencil with linear
Dirichlet boundary stencils — and uses it to *solve* a heterogeneous
Poisson problem ``-∇·(β∇u) = f`` on the unit square by smoothing alone.

Along the way it shows what the analysis engine proves about the group:
that each colored half-sweep is hazard-free in-place, and where the
greedy scheduler must place barriers.

Run:  python examples/redblack_poisson.py
"""

import numpy as np

from repro import Component, SparseArray, Stencil, StencilGroup
from repro.analysis import intra_stencil_hazards, is_parallel_safe, plan
from repro.hpgmg.operators import (
    boundary_stencils,
    red_black_domains,
    vc_laplacian,
)

N = 64                      # interior cells per side
H = 1.0 / N
SHAPE = (N + 2, N + 2)      # one ghost cell per side

# -- operator and smoother bodies (exactly the Fig.4 construction) ----------
Ax = vc_laplacian(2, H, grid="mesh", beta_prefix="beta_")
b = Component("rhs", SparseArray({(0, 0): 1.0}))
original = Component("mesh", SparseArray({(0, 0): 1.0}))
lambda_term = Component("lam", SparseArray({(0, 0): 1.0}))
difference = b - Ax
final = original + lambda_term * difference

red, black = red_black_domains(2)
red_stencil = Stencil(final, "mesh", red, name="red")
black_stencil = Stencil(final, "mesh", black, name="black")

# Dirichlet zero boundary: 4 rotationally equivalent face stencils.
bcs = boundary_stencils(2, "mesh")

group = StencilGroup(bcs + [red_stencil] + bcs + [black_stencil], "gsrb")

# -- what the analysis engine can prove --------------------------------------
shapes = {g: SHAPE for g in group.grids()}
print("in-place red sweep parallel-safe?", is_parallel_safe(red_stencil, shapes))
print("hazards reported:", intra_stencil_hazards(red_stencil, shapes))

exec_plan = plan(group, shapes)
print(f"\ngreedy schedule: {len(exec_plan.phases)} phases "
      f"({exec_plan.n_barriers} barriers) for {len(group)} stencils")
print(exec_plan.describe())

# -- set up the heterogeneous problem -----------------------------------------
rng = np.random.default_rng(3)
ij = np.indices(SHAPE)
xy = (ij - 0.5) * H

beta_0 = 1.0 + 0.5 * np.sin(2 * np.pi * (xy[0] - 0.5 * H))
beta_1 = 1.0 + 0.5 * np.cos(2 * np.pi * (xy[1] - 0.5 * H))

diag = np.ones(SHAPE)
diag[1:-1, 1:-1] = (
    beta_0[1:-1, 1:-1] + beta_0[2:, 1:-1] + beta_1[1:-1, 1:-1] + beta_1[1:-1, 2:]
) / (H * H)
lam = 1.0 / diag

grids = {
    "mesh": np.zeros(SHAPE),
    "rhs": np.zeros(SHAPE),
    "lam": lam,
    "beta_0": beta_0,
    "beta_1": beta_1,
}
grids["rhs"][1:-1, 1:-1] = 1.0  # uniform heat source

# -- smooth to convergence -----------------------------------------------------
kernel = group.compile(backend="c")
res_kernel = StencilGroup(
    boundary_stencils(2, "mesh")
    + [Stencil(difference, "res", red + black, name="residual")],
    "res",
).compile(backend="c")
grids["res"] = np.zeros(SHAPE)

for it in range(400):
    kernel(**{g: grids[g] for g in group.grids()})
    if it % 100 == 99:
        res_kernel(**{g: grids[g] for g in ("mesh", "rhs", "res", "beta_0", "beta_1")})
        r = np.max(np.abs(grids["res"][1:-1, 1:-1]))
        print(f"iteration {it + 1:4d}: max residual {r:.3e}")

u = grids["mesh"][1:-1, 1:-1]
print(f"\nsolution: min {u.min():.4f}, max {u.max():.4f} "
      f"(positive bump, zero at the boundary — as physics demands)")
assert u.max() > 0 and abs(grids['mesh'][0, :]).max() > 0  # ghosts mirror
