"""Tile-size autotuner."""

import numpy as np
import pytest

from repro.core.components import Component
from repro.core.domains import RectDomain
from repro.core.stencil import Stencil, StencilGroup
from repro.core.weights import WeightArray
from repro.tuning import TuneResult, autotune_tile

LAP = Component("u", WeightArray([[0, 1, 0], [1, -4, 1], [0, 1, 0]]))


def make_case(n=64):
    s = Stencil(LAP, "out", RectDomain((1, 1), (-1, -1)))
    rng = np.random.default_rng(0)
    arrays = {"u": rng.random((n, n)), "out": np.zeros((n, n))}
    return StencilGroup([s]), arrays


class TestAutotune:
    def test_returns_best_of_candidates(self):
        group, arrays = make_case()
        res = autotune_tile(group, arrays, candidates=(4, 16), repeats=1)
        assert res.best_tile in (4, 16)
        assert set(res.timings) == {4, 16}
        assert res.timings[res.best_tile] == min(res.timings.values())

    def test_timings_positive(self):
        group, arrays = make_case()
        res = autotune_tile(group, arrays, candidates=(8,), repeats=1)
        assert all(t > 0 for t in res.timings.values())

    def test_speedup_metric(self):
        r = TuneResult(best_tile=4, timings={4: 1.0, 8: 2.0})
        assert r.speedup_over_worst() == 2.0

    def test_openmp_backend_and_options_flow_through(self):
        group, arrays = make_case(32)
        res = autotune_tile(
            group, arrays, backend="openmp", candidates=(8,), repeats=1,
            multicolor=False,
        )
        assert res.best_tile == 8
