"""Schedule autotuning (paper SectionIV-A).

The OpenMP micro-compiler "allows the user to specify a tiling size when
compiling the stencil, and provides a method of tuning tiling sizes" —
this module is that method, generalized to the unified schedule IR:
:func:`autotune_schedule` times a group under a set of candidate
:class:`~repro.schedule.ScheduleOptions` (tile, fuse, multicolor,
policy, block) and returns the fastest, while :func:`autotune_tile`
keeps the historical tile-only surface as a thin wrapper.
"""

from __future__ import annotations

from dataclasses import dataclass, replace
from typing import Mapping, Sequence

import numpy as np

from .. import telemetry
from ..core.stencil import StencilGroup
from ..schedule import ScheduleOptions, schedule_for
from ..util.timing import best_of

__all__ = [
    "TuneResult",
    "ScheduleTuneResult",
    "autotune_tile",
    "autotune_schedule",
    "default_schedule_candidates",
    "check_tune_model",
]

DEFAULT_CANDIDATES = (2, 4, 8, 16, 32, 64)


@dataclass(frozen=True)
class TuneResult:
    best_tile: int
    timings: dict[int, float]  # tile -> best-of wall seconds

    def speedup_over_worst(self) -> float:
        return max(self.timings.values()) / self.timings[self.best_tile]


@dataclass(frozen=True)
class ScheduleTuneResult:
    """Outcome of a schedule search: the winning options + full table."""

    best: ScheduleOptions
    timings: tuple  # ((ScheduleOptions, seconds), ...) in candidate order
    #: cost-model predictions aligned with ``timings`` — one predicted
    #: seconds (or ``inf`` for a refused candidate) per entry; empty
    #: when the tuner ran without a machine spec
    predicted: tuple = ()

    def best_time(self) -> float:
        # The candidate list may contain duplicates (a caller-built grid
        # that repeats an option); collapsing through dict() would keep
        # the *last* duplicate's time, not the winning one.
        return min(t for o, t in self.timings if o == self.best)

    def speedup_over_worst(self) -> float:
        # Refused candidates are recorded as inf; compare against the
        # slowest candidate that actually ran.
        times = [t for _, t in self.timings if t != float("inf")]
        return max(times) / self.best_time()


def default_schedule_candidates(
    tiles: Sequence[int] = DEFAULT_CANDIDATES,
    *,
    base: ScheduleOptions | None = None,
    fuse: Sequence[bool] = (False,),
    time_tiles: Sequence[int] = (1,),
) -> list[ScheduleOptions]:
    """The standard search grid: tile size × fusion × time-tile depth.

    ``time_tiles`` beyond the default ``(1,)`` add temporal blocking to
    the grid; a depth the group cannot legally tile is skipped by
    :func:`autotune_schedule` (the refusal is recorded as an infinite
    time, so it can never win).
    """
    base = base or ScheduleOptions()
    return [
        replace(base, tile=int(t), fuse=f, time_tile=int(k))
        for k in time_tiles
        for f in fuse
        for t in tiles
    ]


def autotune_schedule(
    group: StencilGroup,
    arrays: Mapping[str, np.ndarray],
    params: Mapping[str, float] | None = None,
    *,
    backend: str = "c",
    candidates: Sequence[ScheduleOptions] | None = None,
    repeats: int = 3,
    spec: "object | str" = "paper-cpu",
    **backend_options,
) -> ScheduleTuneResult:
    """Time ``group`` under each candidate schedule; pick the fastest.

    Every candidate is lowered once through
    :func:`repro.schedule.build_schedule` and handed to the backend as a
    prebuilt ``schedule=`` — the search space is the schedule IR itself,
    not per-backend kwargs.  ``arrays`` are working copies (the tuner
    mutates them — pass scratch grids, not live data); non-scheduling
    ``backend_options`` (e.g. ``cc_timeout``) flow through unchanged.

    Alongside each measured time the result records the cost model's
    *prediction* for the same candidate on ``spec``
    (:func:`repro.tuning.search.predict_schedule_time`), so model drift
    is visible next to ground truth; ``spec=None`` skips prediction.
    """
    params = dict(params or {})
    shapes = {g: tuple(int(x) for x in a.shape) for g, a in arrays.items()}
    if candidates is None:
        candidates = default_schedule_candidates()
    timings: list[tuple[ScheduleOptions, float]] = []
    predicted: list[float] = []

    def _predict(opts: ScheduleOptions) -> float:
        if spec is None:
            return float("inf")
        from .search import predict_schedule_time

        try:
            return predict_schedule_time(group, shapes, opts, spec=spec)
        except (ValueError, NotImplementedError):
            return float("inf")

    for opts in candidates:
        try:
            sched = schedule_for(group, shapes, opts)
            kernel = group.compile(
                backend=backend, shapes=shapes, schedule=sched,
                **backend_options,
            )
        except (ValueError, NotImplementedError) as e:
            if opts.time_tile <= 1:
                raise
            # Time-tile refusal (or a backend that cannot lower it) is
            # a legal search outcome, not an error: record it as
            # infinitely slow so it can never win — and say why in the
            # event log instead of silently recording inf.
            ev = getattr(e, "evidence", None)
            kind = getattr(ev, "claim", None) or (
                "not-implemented"
                if isinstance(e, NotImplementedError)
                else type(e).__name__
            )
            telemetry.event(
                "tuning.candidate.refused",
                group=group.name, backend=backend, kind=str(kind),
                options=opts.describe(), detail=str(e),
            )
            timings.append((opts, float("inf")))
            predicted.append(float("inf"))
            continue
        p = _predict(opts)
        t = best_of(
            lambda: kernel(**arrays, **params),
            warmup=1, repeats=repeats,
        )
        timings.append((opts, t))
        predicted.append(p)
        telemetry.event(
            "tuning.trial",
            group=group.name, backend=backend, trial=len(timings),
            options=opts.describe(), predicted_s=p, measured_s=t,
        )
    best = min(timings, key=lambda item: item[1])[0]
    return ScheduleTuneResult(
        best, tuple(timings),
        tuple(predicted) if spec is not None else (),
    )


def autotune_tile(
    group: StencilGroup,
    arrays: Mapping[str, np.ndarray],
    params: Mapping[str, float] | None = None,
    *,
    backend: str = "c",
    candidates: Sequence[int] = DEFAULT_CANDIDATES,
    repeats: int = 3,
    **backend_options,
) -> TuneResult:
    """Historical tile-only tuning surface over :func:`autotune_schedule`.

    Scheduling kwargs the legacy surface accepted (``schedule=``,
    ``fuse=``, ``multicolor=``, ``block=``) become fields of the base
    :class:`ScheduleOptions`; anything else passes through to the
    backend.  When not given they keep the legacy resolved defaults —
    the :class:`ScheduleOptions` defaults the backends always applied:
    ``policy="greedy"``, ``fuse=False``, ``multicolor=True``,
    ``block=None`` (pinned by a regression test).
    """
    base = ScheduleOptions(
        policy=backend_options.pop("schedule", "greedy"),
        fuse=backend_options.pop("fuse", False),
        multicolor=backend_options.pop("multicolor", True),
        block=backend_options.pop("block", None),
    )
    result = autotune_schedule(
        group,
        arrays,
        params,
        backend=backend,
        candidates=[replace(base, tile=int(t)) for t in candidates],
        repeats=repeats,
        **backend_options,
    )
    timings = {opts.tile: t for opts, t in result.timings}
    return TuneResult(result.best.tile, timings)


def check_tune_model(
    result: ScheduleTuneResult,
    group: StencilGroup,
    shapes: Mapping[str, tuple[int, ...]],
    *,
    spec: "object | str" = "paper-cpu",
) -> list[str]:
    """Re-derive every recorded prediction in ``result``; list any drift.

    The mirror of :func:`repro.bench.check_sweep_model` for the tuning
    surface: predictions are analytic, so on a deterministic spec
    (``paper-cpu``) each recorded value must be *bit-exact* reproducible
    from the group definition — any mismatch means the cost model
    changed after the tuning run and the result's predictions are stale.
    """
    from .search import predict_schedule_time

    problems: list[str] = []
    if not result.predicted:
        return ["result records no predictions; cannot re-derive"]
    if len(result.predicted) != len(result.timings):
        return [
            f"{len(result.predicted)} predictions for "
            f"{len(result.timings)} timings; result is malformed"
        ]
    for i, ((opts, _t), recorded) in enumerate(
        zip(result.timings, result.predicted)
    ):
        try:
            expected = predict_schedule_time(
                group, shapes, opts, spec=spec
            )
        except (ValueError, NotImplementedError):
            expected = float("inf")
        if recorded != expected:
            problems.append(
                f"candidate {i} ({opts.describe()}): recorded "
                f"prediction {recorded!r} != re-derived {expected!r}"
            )
    return problems
