"""The from-scratch Diophantine solvers, cross-checked against brute
force and (as the paper does) against SymPy."""

import math

import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.analysis.diophantine import (
    BoxedLinearSystem,
    count_lattice_points,
    extended_gcd,
    first_lattice_point,
    lattice_range_intersect,
    lattice_ranges_intersect_nonempty,
    solve_linear_2var,
    solve_linear_nvar,
)

ints = st.integers(-50, 50)
small = st.integers(-8, 8)


class TestExtendedGcd:
    @given(a=ints, b=ints)
    @settings(max_examples=300, deadline=None)
    def test_bezout_identity(self, a, b):
        g, x, y = extended_gcd(a, b)
        assert g == math.gcd(a, b)
        assert a * x + b * y == g

    def test_zero_zero(self):
        g, x, y = extended_gcd(0, 0)
        assert g == 0 and 0 * x + 0 * y == 0

    def test_negative_inputs(self):
        g, x, y = extended_gcd(-12, 18)
        assert g == 6
        assert -12 * x + 18 * y == 6


class TestSolve2Var:
    @given(a=ints, b=ints, c=ints)
    @settings(max_examples=300, deadline=None)
    def test_solutions_verify(self, a, b, c):
        line = solve_linear_2var(a, b, c)
        if line is None:
            g = math.gcd(a, b)
            if g != 0:
                assert c % g != 0
            else:
                assert c != 0
        else:
            for t in (-3, 0, 5):
                x, y = line.at(t)
                if a == 0 and b == 0:
                    continue  # whole-plane case: checked separately
                assert a * x + b * y == c

    def test_whole_plane(self):
        line = solve_linear_2var(0, 0, 0)
        assert line is not None

    def test_inconsistent_degenerate(self):
        assert solve_linear_2var(0, 0, 5) is None
        assert solve_linear_2var(0, 4, 2) is None
        assert solve_linear_2var(4, 0, 2) is None

    def test_classic(self):
        line = solve_linear_2var(3, 5, 1)
        x, y = line.at(0)
        assert 3 * x + 5 * y == 1

    @pytest.mark.parametrize("a,b,c", [(2, 4, 7), (6, 9, 5), (10, 15, 4)])
    def test_gcd_obstruction(self, a, b, c):
        assert solve_linear_2var(a, b, c) is None

    def test_against_sympy(self):
        sympy = pytest.importorskip("sympy")
        from sympy.abc import x, y
        from sympy.solvers.diophantine import diophantine

        for a, b, c in [(3, 5, 1), (12, 18, 6), (7, -11, 13), (4, 6, 3)]:
            ours = solve_linear_2var(a, b, c)
            theirs = diophantine(a * x + b * y - c)
            assert (ours is None) == (len(theirs) == 0)


def brute_intersect(s1, t1, n1, s2, t2, n2, delta):
    a = {s1 + t1 * k for k in range(n1)} if t1 else {s1}
    b = {s2 + t2 * k + delta for k in range(n2)} if t2 else {s2 + delta}
    return bool(a & b)


class TestLatticeRangeIntersect:
    @given(
        s1=small, t1=st.integers(0, 5), n1=st.integers(1, 8),
        s2=small, t2=st.integers(0, 5), n2=st.integers(1, 8),
        delta=small,
    )
    @settings(max_examples=500, deadline=None)
    def test_matches_brute_force(self, s1, t1, n1, s2, t2, n2, delta):
        n1e = n1 if t1 else 1
        n2e = n2 if t2 else 1
        got = lattice_range_intersect(s1, t1, n1e, s2, t2, n2e, delta)
        want = brute_intersect(s1, t1, n1e, s2, t2, n2e, delta)
        assert (got is not None) == want
        if got is not None:
            k1, k2 = got
            assert 0 <= k1 < n1e and 0 <= k2 < n2e
            assert s1 + t1 * k1 == s2 + t2 * k2 + delta

    def test_red_black_never_meet(self):
        # red lattice {1,3,...} vs black {2,4,...} shifted by +-1: meets;
        # but red vs red shifted by 1 never meets (the GSRB safety core).
        assert not lattice_ranges_intersect_nonempty(1, 2, 50, 1, 2, 50, 1)
        assert lattice_ranges_intersect_nonempty(1, 2, 50, 2, 2, 50, 1)

    def test_empty_ranges(self):
        assert lattice_range_intersect(0, 1, 0, 0, 1, 5) is None

    def test_negative_stride_rejected(self):
        with pytest.raises(ValueError):
            lattice_range_intersect(0, -1, 5, 0, 1, 5)

    def test_huge_domains_stay_fast(self):
        # The whole point: no enumeration. 10^9-point lattices, instant.
        assert lattice_ranges_intersect_nonempty(
            0, 2, 10**9, 1, 2, 10**9, 3
        )
        assert not lattice_ranges_intersect_nonempty(
            0, 2, 10**9, 1, 2, 10**9, 2
        )


class TestSolveNVar:
    @given(
        coeffs=st.lists(ints, min_size=1, max_size=5),
        c=ints,
    )
    @settings(max_examples=300, deadline=None)
    def test_solutions_verify(self, coeffs, c):
        sol = solve_linear_nvar(coeffs, c)
        g = 0
        for a in coeffs:
            g = math.gcd(g, a)
        solvable = (c == 0) if g == 0 else (c % g == 0)
        assert (sol is not None) == solvable
        if sol is not None:
            assert sum(a * x for a, x in zip(coeffs, sol)) == c

    def test_empty(self):
        assert solve_linear_nvar([], 0) == []
        assert solve_linear_nvar([], 1) is None


class TestBoxedLinearSystem:
    def test_simple_feasible(self):
        sys = BoxedLinearSystem([[1, 1]], [5], [0, 0], [5, 5])
        sol = sys.solve()
        assert sol is not None and sum(sol) == 5

    def test_bounds_exclude_solutions(self):
        sys = BoxedLinearSystem([[1, 1]], [50], [0, 0], [5, 5])
        assert sys.solve() is None

    def test_gcd_infeasible(self):
        sys = BoxedLinearSystem([[2, 4]], [3], [-10, -10], [10, 10])
        assert sys.solve() is None

    def test_multi_row(self):
        # x + y = 4, x - y = 2 -> (3, 1)
        sys = BoxedLinearSystem([[1, 1], [1, -1]], [4, 2], [0, 0], [10, 10])
        assert sys.solve() == [3, 1]

    def test_inconsistent_rows(self):
        sys = BoxedLinearSystem([[1, 1], [1, 1]], [4, 5], [0, 0], [10, 10])
        assert sys.solve() is None

    def test_empty_box(self):
        sys = BoxedLinearSystem([[1]], [0], [3], [2])
        assert sys.solve() is None

    def test_validation(self):
        with pytest.raises(ValueError):
            BoxedLinearSystem([[1, 2]], [0], [0], [5])
        with pytest.raises(ValueError):
            BoxedLinearSystem([[1]], [0, 1], [0], [5])

    @given(
        a=st.integers(-4, 4), b=st.integers(-4, 4), c2=st.integers(-4, 4),
        rhs=st.integers(-10, 10),
    )
    @settings(max_examples=200, deadline=None)
    def test_matches_brute_force(self, a, b, c2, rhs):
        lo, hi = -3, 3
        sys = BoxedLinearSystem([[a, b, c2]], [rhs], [lo] * 3, [hi] * 3)
        got = sys.solve()
        want = any(
            a * x + b * y + c2 * z == rhs
            for x in range(lo, hi + 1)
            for y in range(lo, hi + 1)
            for z in range(lo, hi + 1)
        )
        assert (got is not None) == want
        if got:
            assert a * got[0] + b * got[1] + c2 * got[2] == rhs


class TestLatticeHelpers:
    def test_count(self):
        assert count_lattice_points(1, 7, 2) == 3
        assert count_lattice_points(1, 8, 2) == 4
        assert count_lattice_points(5, 5, 1) == 0
        assert count_lattice_points(5, 6, 0) == 1

    def test_count_rejects_negative(self):
        with pytest.raises(ValueError):
            count_lattice_points(0, 5, -1)

    def test_first_lattice_point(self):
        assert first_lattice_point(1, 2, 5, 7) == 3
        assert first_lattice_point(1, 2, 5, 8) is None
        assert first_lattice_point(1, 2, 3, 9) is None  # out of range
        assert first_lattice_point(4, 0, 1, 4) == 0
        assert first_lattice_point(4, 0, 1, 5) is None
