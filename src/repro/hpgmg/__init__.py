"""HPGMG-style geometric multigrid, written entirely in Snowflake.

The paper's evaluation driver (SectionV): a Python reference
implementation of HPGMG whose every kernel — smoothers, residual,
restriction, interpolation, boundary conditions — is a Snowflake
stencil compiled through a chosen micro-compiler backend.
"""

from .level import Level, default_beta
from .problem import apply_operator, setup_problem, smooth_u_exact
from .solver import MultigridSolver
from . import highorder, operators

__all__ = [
    "Level",
    "default_beta",
    "apply_operator",
    "setup_problem",
    "smooth_u_exact",
    "MultigridSolver",
    "highorder",
    "operators",
]
