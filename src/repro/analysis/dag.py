"""Stencil dependence DAGs and barrier placement (paper SectionIV-A).

The OpenMP micro-compiler emits each stencil as a task; a barrier is
needed only when an upcoming stencil consumes (or clobbers) what an
in-flight one produces.  The paper forms these barrier groups *greedily*:
keep appending stencils to the current phase until the next stencil
depends on a member of the phase, then flush.  We implement that exact
policy, plus an ASAP (wavefront) alternative used for ablation.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Mapping, Sequence

import networkx as nx

from ..core.stencil import StencilGroup
from ..telemetry import tracing
from .dependence import group_dependence_details, group_dependences

__all__ = ["ExecutionPlan", "build_dag", "greedy_phases", "wavefront_phases", "plan"]


@dataclass(frozen=True)
class ExecutionPlan:
    """Barrier-separated phases; stencils within a phase may run together.

    ``phases[k]`` holds indices into the originating group, in original
    program order.  ``parallel_within[i]`` records whether stencil ``i``
    itself may be applied in parallel over its own domain (intra-stencil
    analysis) — backends use it to decide between a parallel loop and a
    serial sweep.

    ``dependences`` keeps the raw edge set ``(i, j) -> kinds``;
    ``dependence_grids`` refines each edge to ``{kind: grids}`` so
    :meth:`describe` (and :mod:`repro.explain`) can name the grids whose
    lattice intersections forced every barrier.  ``stencil_names``
    carries the originating stencils' names for readable reports.
    """

    phases: tuple[tuple[int, ...], ...]
    parallel_within: tuple[bool, ...]
    dependences: Mapping[tuple[int, int], frozenset[str]] = field(default_factory=dict)
    dependence_grids: Mapping[tuple[int, int], Mapping[str, frozenset[str]]] = field(
        default_factory=dict
    )
    stencil_names: tuple[str, ...] = ()

    @property
    def n_barriers(self) -> int:
        return max(0, len(self.phases) - 1)

    def stencil_count(self) -> int:
        return sum(len(p) for p in self.phases)

    def barrier_edges(
        self, k: int
    ) -> list[tuple[tuple[int, int], dict[str, frozenset[str]]]]:
        """Dependence edges crossing barrier ``k`` (phase ``k`` → ``k+1``).

        These are the orderings the barrier enforces.  Each entry is
        ``((i, j), {kind: grids})``; the grid sets come from
        ``dependence_grids`` and fall back to empty sets when the plan
        was built without detail (hand-constructed plans).
        """
        if not 0 <= k < self.n_barriers:
            raise IndexError(f"barrier {k} out of range (n_barriers={self.n_barriers})")
        before, after = set(self.phases[k]), set(self.phases[k + 1])
        out: list[tuple[tuple[int, int], dict[str, frozenset[str]]]] = []
        for (i, j), kinds in sorted(self.dependences.items()):
            if i in before and j in after:
                detail = self.dependence_grids.get((i, j))
                if detail is None:
                    detail = {kind: frozenset() for kind in sorted(kinds)}
                out.append(((i, j), dict(detail)))
        return out

    def _label(self, i: int) -> str:
        if i < len(self.stencil_names):
            return f"{i}:{self.stencil_names[i]}"
        return str(i)

    def describe(self) -> str:
        """Human-readable plan: phases plus what forced every barrier.

        Each barrier line names the dependence edges crossing it and the
        grids carrying each dependence kind, e.g.
        ``barrier 0: forced by 4:red->9:black RAW on x``.
        """
        lines = []
        for k, ph in enumerate(self.phases):
            members = ", ".join(self._label(i) for i in ph)
            lines.append(f"phase {k}: [{members}]")
            if k >= self.n_barriers:
                continue
            edges = self.barrier_edges(k)
            if not edges:
                lines.append(f"barrier {k}: policy order (no direct dependence)")
                continue
            parts = []
            for (i, j), detail in edges:
                kinds = "; ".join(
                    f"{kind} on {', '.join(sorted(grids)) or '?'}"
                    for kind, grids in sorted(detail.items())
                )
                parts.append(f"{self._label(i)}->{self._label(j)} {kinds}")
            lines.append(f"barrier {k}: forced by " + " | ".join(parts))
        return "\n".join(lines)


def build_dag(
    group: StencilGroup, shapes: Mapping[str, Sequence[int]]
) -> nx.DiGraph:
    """Directed dependence graph: node = stencil index, edge i->j labelled
    with the dependence kinds that order them."""
    g = nx.DiGraph()
    for i, s in enumerate(group):
        g.add_node(i, name=s.name, output=s.output)
    for (i, j), kinds in group_dependences(group, shapes).items():
        g.add_edge(i, j, kinds=frozenset(kinds))
    return g


def greedy_phases(
    group: StencilGroup, shapes: Mapping[str, Sequence[int]]
) -> list[list[int]]:
    """The paper's greedy barrier grouping.

    Maintain the current phase; place a barrier (start a new phase) only
    when the next stencil depends on a stencil already in the phase.
    """
    deps = group_dependences(group, shapes)
    phases: list[list[int]] = []
    current: list[int] = []
    for j in range(len(group)):
        if any((i, j) in deps for i in current):
            phases.append(current)
            current = []
        current.append(j)
    if current:
        phases.append(current)
    return phases


def wavefront_phases(
    group: StencilGroup, shapes: Mapping[str, Sequence[int]]
) -> list[list[int]]:
    """ASAP schedule: phase = longest dependence path length to the node.

    Can expose more concurrency than the greedy in-order policy (a late
    independent stencil may hoist into an early phase) at the cost of
    reordering; only valid because the DAG captures *all* orderings.
    """
    dag = build_dag(group, shapes)
    level = {n: 0 for n in dag.nodes}
    for n in nx.topological_sort(dag):
        for _, m in dag.out_edges(n):
            level[m] = max(level[m], level[n] + 1)
    if not level:
        return []
    out: list[list[int]] = [[] for _ in range(max(level.values()) + 1)]
    for n, l in sorted(level.items()):
        out[l].append(n)
    return out


def plan(
    group: StencilGroup,
    shapes: Mapping[str, Sequence[int]],
    policy: str = "greedy",
) -> ExecutionPlan:
    """Produce the :class:`ExecutionPlan` a backend schedules from."""
    from .dependence import is_parallel_safe

    with tracing.span(
        "plan", cat="analysis", group=group.name, policy=policy,
        stencils=len(group),
    ):
        if policy == "greedy":
            phases = greedy_phases(group, shapes)
        elif policy == "wavefront":
            phases = wavefront_phases(group, shapes)
        elif policy == "serial":
            phases = [[i] for i in range(len(group))]
        else:
            raise ValueError(f"unknown scheduling policy {policy!r}")
        details = group_dependence_details(group, shapes)
        deps = {edge: frozenset(kinds) for edge, kinds in details.items()}
        par = tuple(is_parallel_safe(s, shapes) for s in group)
    return ExecutionPlan(
        tuple(tuple(p) for p in phases),
        par,
        deps,
        details,
        tuple(s.name for s in group),
    )
