"""Static validation: bounds, missing grids, dtype coherence."""

import numpy as np
import pytest

from repro.core.components import Component
from repro.core.domains import RectDomain
from repro.core.expr import GridRead
from repro.core.stencil import OutputMap, Stencil, StencilGroup
from repro.core.validate import (
    ValidationError,
    check_group,
    check_stencil,
    iteration_shape,
)
from repro.core.weights import WeightArray

LAP = Component("u", WeightArray([[0, 1, 0], [1, -4, 1], [0, 1, 0]]))
INTERIOR = RectDomain((1, 1), (-1, -1))


class TestCheckStencil:
    def test_ok(self):
        check_stencil(Stencil(LAP, "out", INTERIOR), {"u": (8, 8), "out": (8, 8)})

    def test_missing_output_shape(self):
        with pytest.raises(ValidationError, match="output grid"):
            check_stencil(Stencil(LAP, "out", INTERIOR), {"u": (8, 8)})

    def test_missing_input_shape(self):
        with pytest.raises(ValidationError, match="input grid"):
            check_stencil(Stencil(LAP, "out", INTERIOR), {"out": (8, 8)})

    def test_read_out_of_bounds(self):
        full = RectDomain((0, 0), (8, 8))
        with pytest.raises(ValidationError, match="read"):
            check_stencil(Stencil(LAP, "out", full), {"u": (8, 8), "out": (8, 8)})

    def test_write_out_of_bounds_with_output_map(self):
        body = GridRead("c", (0,))
        s = Stencil(
            body, "f", RectDomain((0,), (6,)),
            output_map=OutputMap((2,), (0,), ndim=1),
            iteration_grid="c",
        )
        # sweeps all of c (6 cells): writes at 0..10 but f has 8 cells
        with pytest.raises(ValidationError, match="write"):
            check_stencil(s, {"c": (6,), "f": (8,)})

    def test_dimensionality_mismatch(self):
        with pytest.raises(ValidationError, match="2-D"):
            check_stencil(Stencil(LAP, "out", INTERIOR), {"u": (8, 8), "out": (8,)})

    def test_input_dim_mismatch(self):
        with pytest.raises(ValidationError):
            check_stencil(Stencil(LAP, "out", INTERIOR), {"u": (8,), "out": (8, 8)})

    def test_empty_domain_is_fine(self):
        tiny = RectDomain((5, 5), (3, 3))
        check_stencil(Stencil(LAP, "out", tiny), {"u": (8, 8), "out": (8, 8)})

    def test_boundary_stencil_reads_stay_inside(self):
        # ghost = -inner on the top face
        body = -1.0 * GridRead("u", (1, 0))
        s = Stencil(body, "u", RectDomain((0, 1), (1, -1), (0, 1)))
        check_stencil(s, {"u": (8, 8)})

    def test_check_group_covers_all(self):
        good = Stencil(LAP, "out", INTERIOR)
        bad = Stencil(LAP, "out", RectDomain((0, 0), (-1, -1)))
        with pytest.raises(ValidationError):
            check_group(StencilGroup([good, bad]), {"u": (8, 8), "out": (8, 8)})


class TestIterationShape:
    def test_identity_uses_output(self):
        s = Stencil(LAP, "out", INTERIOR)
        assert iteration_shape(s, {"u": (8, 8), "out": (8, 8)}) == (8, 8)

    def test_explicit_iteration_grid(self):
        body = GridRead("c", (0,)) + GridRead("f", (0,), scale=(2,))
        s = Stencil(
            body, "f", RectDomain((1,), (-1,)),
            output_map=OutputMap((2,), (0,), ndim=1),
            iteration_grid="c",
        )
        assert iteration_shape(s, {"c": (6,), "f": (12,)}) == (6,)

    def test_missing_iteration_grid(self):
        s = Stencil(GridRead("c", (0,)), "f", RectDomain((0,), (2,)),
                    iteration_grid="zzz")
        with pytest.raises(ValidationError, match="iteration grid"):
            iteration_shape(s, {"c": (6,), "f": (6,)})

    def test_scaled_fallback_counts_inbounds_writes(self):
        s = Stencil(
            GridRead("c", (0,)), "f", RectDomain((0,), (100,)),
            output_map=OutputMap((2,), (0,), ndim=1),
        )
        # writes 2i < 9 -> i in [0, 5)
        assert iteration_shape(s, {"c": (9,), "f": (9,)}) == (5,)


class TestCallTimeValidation:
    def test_mixed_dtypes_rejected(self, rng):
        s = Stencil(LAP, "out", INTERIOR)
        k = s.compile(backend="numpy")
        with pytest.raises(ValidationError, match="mixed dtypes"):
            k(u=rng.random((8, 8)), out=np.zeros((8, 8), dtype=np.float32))

    def test_float32_supported_end_to_end(self, rng):
        s = Stencil(LAP, "out", INTERIOR)
        u = rng.random((8, 8)).astype(np.float32)
        out32 = np.zeros((8, 8), dtype=np.float32)
        s.compile(backend="c")(u=u, out=out32)
        out64 = np.zeros((8, 8))
        s.compile(backend="numpy")(u=u.astype(np.float64), out=out64)
        np.testing.assert_allclose(out32, out64, rtol=1e-5, atol=1e-6)
