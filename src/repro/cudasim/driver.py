"""Host-side execution of a :class:`CudaProgram` on the simulator.

Plays the CUDA runtime's role: builds the module (gcc JIT), keeps
device buffers zero-copy over the caller's numpy arrays, and replays
the host plan like an in-order stream — ``cudaMemcpy`` for snapshot
copies, kernel launches with the configured block shape, and
``cudaDeviceSynchronize`` barriers (no-ops under serial execution).
"""

from __future__ import annotations

import ctypes
from typing import Callable, Mapping

import numpy as np

from ..backends.cuda_backend import CudaProgram
from ..backends.codegen_c import ctype_for
from ..backends.jit import compile_and_load
from ..backends.opencl_backend import Barrier, CopyBuffer, KernelLaunch
from ..core.stencil import StencilGroup
from .translate import translation_unit

__all__ = ["build_executor"]


def build_executor(
    program: CudaProgram,
    group: StencilGroup,
    shapes: Mapping[str, tuple[int, ...]],
    dtype,
) -> Callable:
    ctype = ctype_for(dtype)
    npdtype = np.dtype(dtype)
    lib = compile_and_load(translation_unit(program, ctype))

    drivers = {}
    for kname in program.kernel_ranges:
        fn = getattr(lib, f"drive_{kname}")
        fn.argtypes = [
            ctypes.POINTER(ctypes.c_void_p),
            ctypes.POINTER(ctypes.c_double),
            ctypes.POINTER(ctypes.c_size_t),
            ctypes.POINTER(ctypes.c_size_t),
        ]
        fn.restype = None
        drivers[kname] = fn

    grid_names = [b for b in program.buffer_order if b not in program.snap_of]
    snap_names = [b for b in program.buffer_order if b in program.snap_of]
    snap_arrays = {
        s: np.empty(shapes[program.snap_of[s]], dtype=npdtype)
        for s in snap_names
    }
    buf_index = {b: i for i, b in enumerate(program.buffer_order)}
    gshapes = {g: tuple(int(x) for x in shapes[g]) for g in grid_names}
    block = (ctypes.c_size_t * 2)(*program.block)

    def impl(arrays: Mapping[str, np.ndarray], params: Mapping[str, float]):
        ptrs = (ctypes.c_void_p * len(program.buffer_order))()
        for g in grid_names:
            a = arrays[g]
            if a.dtype != npdtype:
                raise TypeError(
                    f"grid {g!r} has dtype {a.dtype}, module built for {npdtype}"
                )
            if tuple(a.shape) != gshapes[g]:
                raise ValueError(
                    f"grid {g!r} has shape {a.shape}, module built for {gshapes[g]}"
                )
            if not a.flags["C_CONTIGUOUS"]:
                raise ValueError(f"grid {g!r} must be C-contiguous")
            ptrs[buf_index[g]] = a.ctypes.data
        for s in snap_names:
            ptrs[buf_index[s]] = snap_arrays[s].ctypes.data
        pvals = (ctypes.c_double * max(len(program.param_order), 1))(
            *[float(params[p]) for p in program.param_order]
        )
        for op in program.ops:
            if isinstance(op, CopyBuffer):
                np.copyto(snap_arrays[op.snap], arrays[op.grid])
            elif isinstance(op, KernelLaunch):
                gsize = (ctypes.c_size_t * 2)(1, 1)
                for d, n in enumerate(op.global_size):
                    gsize[d] = n
                drivers[op.kernel](ptrs, pvals, gsize, block)
            elif isinstance(op, Barrier):
                pass  # serial in-order stream
            else:  # pragma: no cover
                raise TypeError(f"unknown host op {op!r}")

    return impl
