"""Render a telemetry snapshot as fixed-width :mod:`repro.util.tables`.

The report is what ``python -m repro stats`` prints: one table per
collection family (counters, timers, kernel invocations), diff-able
and stable-sorted like every other benchmark table in the repo.
"""

from __future__ import annotations

from ..util.tables import format_table
from .registry import snapshot

__all__ = ["format_stats", "render_stats"]


def _quantiles_for(hists: dict, name: str, labels: dict | None = None):
    """p50/p95/p99 of one histogram series, or dashes when absent."""
    for rec in hists.get(name, ()):
        if labels is None or rec.get("labels") == labels:
            return rec["p50"], rec["p95"], rec["p99"]
    return "-", "-", "-"


def format_stats(snap: dict) -> str:
    """Fixed-width report of one :func:`~repro.telemetry.snapshot`."""
    blocks: list[str] = [f"telemetry mode: {snap.get('mode', '?')}"]
    hists = snap.get("histograms", {})

    kernels = snap.get("kernels", {})
    if kernels:
        rows = []
        for backend, k in sorted(kernels.items()):
            p50, p95, p99 = _quantiles_for(
                hists, "kernel.call", {"backend": backend}
            )
            rows.append([
                backend,
                k["calls"],
                k["seconds"],
                (k["points_per_s"] / 1e6 if k["points_per_s"] else "-"),
                k["points"],
                p50, p95, p99,
            ])
        blocks.append(
            format_table(
                ["backend", "calls", "seconds", "Mpoint/s", "points",
                 "p50_s", "p95_s", "p99_s"],
                rows,
                title="kernel invocations",
            )
        )

    timers = snap.get("timers", {})
    if timers:
        rows = []
        for name, t in sorted(timers.items()):
            p50, p95, p99 = _quantiles_for(hists, name, {})
            rows.append([
                name, t["count"], t["total_s"], t["mean_s"], t["max_s"],
                p50, p95, p99,
            ])
        blocks.append(
            format_table(
                ["timer", "count", "total_s", "mean_s", "max_s",
                 "p50_s", "p95_s", "p99_s"],
                rows,
                title="timers",
            )
        )

    # Histogram-only series (labelled seams like kernel.call or
    # dmem.halo.rtt that have no registry timer of the same name).
    extra_rows = []
    for name, series in sorted(hists.items()):
        if name in timers:
            continue
        for rec in series:
            label = ",".join(
                f"{k}={v}" for k, v in sorted(rec["labels"].items())
            ) or "-"
            extra_rows.append([
                name, label, rec["count"], rec["sum"],
                rec["p50"], rec["p95"], rec["p99"], rec["max"],
            ])
    if extra_rows:
        blocks.append(
            format_table(
                ["histogram", "labels", "count", "total_s",
                 "p50_s", "p95_s", "p99_s", "max_s"],
                extra_rows,
                title="latency histograms",
            )
        )

    counters = snap.get("counters", {})
    # The distributed fabric gets its own table: transport resilience
    # (retransmits, duplicates, reordering, CRC rejects), rank crashes,
    # checkpoint restores, and barrier-audit failures would otherwise
    # drown in the generic counter list.
    dmem = {
        name[len("dmem."):]: n
        for name, n in counters.items()
        if name.startswith("dmem.")
    }
    if dmem:
        rows = [[name, n] for name, n in sorted(dmem.items())]
        blocks.append(
            format_table(
                ["event", "count"], rows, title="distributed fabric"
            )
        )
    general = {
        name: n for name, n in counters.items()
        if not name.startswith("dmem.")
    }
    if general:
        rows = [[name, n] for name, n in sorted(general.items())]
        blocks.append(format_table(["counter", "value"], rows, title="counters"))

    if len(blocks) == 1:
        blocks.append("(nothing recorded)")
    return "\n\n".join(blocks)


def render_stats() -> str:
    """One-call convenience: snapshot the live registry and format it."""
    return format_stats(snapshot())
