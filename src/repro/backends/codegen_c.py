"""Shared C99 emitter for the compiled micro-compilers.

Renders the optimized kernel IR into loop nests.  Responsibilities:

* grid/param naming and row-major stride baking (shape-specialized),
* rendering a :class:`~repro.kernel.ir.KernelBody` as C99 let-bindings:
  depth-0 bindings become a ``const`` scalar prelude before the loop
  nest, deeper bindings become ``const`` locals in the innermost loop
  body, and the result expression feeds the store (every binding name
  gets a per-kernel ``k<n>_`` prefix, so the same stencil may appear
  several times in one translation unit),
* affine index expressions ``(scale*i + off) * stride`` folded per dim,
* gather-semantics snapshots for hazardous in-place stencils (decided by
  the dependence analysis — safe stencils pay nothing),
* the *multicolor reordering* nest (paper SectionIV-A): when the
  schedule hands down a :class:`~repro.schedule.ir.ParityClass`, the
  checkerboard boxes are fused into a single dense nest whose innermost
  loop start is parity corrected, replacing 2^(d-1) strided sweeps with
  one cache-friendly sweep,
* arbitrary-dimension tiling of the outermost free loop (used by the
  OpenMP backend to form tasks, and by the sequential backend for cache
  blocking).

The emitter is purely mechanical: fusion, snapshot and sweep decisions
arrive precomputed on the :class:`~repro.schedule.ir.Schedule` steps
(``ParityClass``/``detect_parity_class`` are re-exported here for
backward compatibility).  The emitter knows nothing about scheduling
pragmas either; backends inject those through small hook callables.
"""

from __future__ import annotations

import re
from dataclasses import dataclass, field
from typing import Callable, Mapping, Sequence

import numpy as np

from ..analysis.dependence import is_parallel_safe
from ..core.domains import ResolvedRect
from ..core.flatten import FlatTerm
from ..core.stencil import Stencil, StencilGroup
from ..core.validate import iteration_shape
from ..kernel.ir import (
    KAdd,
    KConst,
    KDiv,
    KExpr,
    KFma,
    KLoad,
    KMul,
    KParam,
    KRef,
)
from ..kernel.lower import body_for
from ..schedule.ir import ParityClass, detect_parity_class

__all__ = [
    "CodegenContext",
    "KernelParts",
    "StencilLoops",
    "C_PREAMBLE",
    "ctype_for",
    "ParityClass",
    "detect_parity_class",
]


C_PREAMBLE = """\
#include <stdint.h>
#include <stdlib.h>
#include <string.h>
#include <math.h>
"""


def ctype_for(dtype) -> str:
    dt = np.dtype(dtype)
    if dt == np.float64:
        return "double"
    if dt == np.float32:
        return "float"
    raise TypeError(f"unsupported dtype for compiled backends: {dt}")


def sanitize(name: str) -> str:
    s = re.sub(r"\W", "_", name)
    if not s or s[0].isdigit():
        s = "_" + s
    return s


def _lit(value: float, ctype: str) -> str:
    return f"(({ctype}){value!r})"


@dataclass
class KernelParts:
    """One stencil's kernel body rendered to C fragments.

    ``scalar_lines`` (depth-0 bindings) belong *before* the loop nest,
    ``inner_lines`` in the innermost loop body just above the store of
    ``result``.  Names are already ``k<n>_``-prefixed, unique within
    the :class:`CodegenContext` that produced them.
    """

    scalar_lines: list[str]
    inner_lines: list[str]
    result: str


@dataclass
class CodegenContext:
    """Shape/dtype-specialized naming and layout information."""

    group: StencilGroup
    shapes: Mapping[str, tuple[int, ...]]
    ctype: str

    grid_order: list[str] = field(init=False)
    param_order: list[str] = field(init=False)
    grid_cname: dict[str, str] = field(init=False)
    param_cname: dict[str, str] = field(init=False)
    strides: dict[str, tuple[int, ...]] = field(init=False)
    _kernel_seq: int = field(init=False, default=0)

    def __post_init__(self) -> None:
        self.grid_order = sorted(self.group.grids())
        self.param_order = sorted(self.group.params())
        used: set[str] = set()
        self.grid_cname = {}
        for g in self.grid_order:
            base = "g_" + sanitize(g)
            c = base
            k = 1
            while c in used:
                c = f"{base}_{k}"
                k += 1
            used.add(c)
            self.grid_cname[g] = c
        self.param_cname = {}
        for p in self.param_order:
            base = "p_" + sanitize(p)
            c = base
            k = 1
            while c in used:
                c = f"{base}_{k}"
                k += 1
            used.add(c)
            self.param_cname[p] = c
        self.strides = {}
        for g in self.grid_order:
            shp = tuple(int(x) for x in self.shapes[g])
            st = [1] * len(shp)
            for d in range(len(shp) - 2, -1, -1):
                st[d] = st[d + 1] * shp[d + 1]
            self.strides[g] = tuple(st)

    def grid_size(self, g: str) -> int:
        n = 1
        for x in self.shapes[g]:
            n *= int(x)
        return n

    def prologue(self) -> list[str]:
        """Unpack the grids/params arrays into named locals."""
        lines = []
        for i, g in enumerate(self.grid_order):
            lines.append(
                f"{self.ctype}* restrict {self.grid_cname[g]} = grids[{i}];"
            )
        for i, p in enumerate(self.param_order):
            lines.append(
                f"const {self.ctype} {self.param_cname[p]} = "
                f"({self.ctype})params[{i}];"
            )
        return lines

    # -- expressions ---------------------------------------------------------

    def index_expr(
        self,
        grid: str,
        scale: Sequence[int],
        offset: Sequence[int],
        loopvars: Sequence[str],
    ) -> str:
        """Flat row-major index of ``grid[scale*i + offset]``."""
        strides = self.strides[grid]
        parts = []
        const = 0
        for s, o, st, v in zip(scale, offset, strides, loopvars):
            const += o * st
            coeff = s * st
            if coeff == 1:
                parts.append(v)
            else:
                parts.append(f"{coeff}*{v}")
        if const != 0 or not parts:
            parts.append(str(const))
        return " + ".join(parts)

    def term_expr(
        self,
        term: FlatTerm,
        loopvars: Sequence[str],
        source_name: Callable[[str], str],
    ) -> str:
        """Legacy term-by-term emission (superseded by the kernel IR;
        kept for comparison tooling and tests of the raw order)."""
        factors = [_lit(term.coeff, self.ctype)]
        for p in term.params:
            factors.append(self.param_cname[p])
        expr = " * ".join(factors)
        for p in term.denom_params:
            expr += f" / {self.param_cname[p]}"
        for read in term.reads:
            idx = self.index_expr(read.grid, read.scale, read.offset, loopvars)
            expr += f" * {source_name(read.grid)}[{idx}]"
        return expr

    def body_expr(
        self,
        stencil: Stencil,
        loopvars: Sequence[str],
        source_name: Callable[[str], str],
    ) -> str:
        """Legacy whole-body emission (see :meth:`term_expr`)."""
        terms = stencil.flat.terms
        if not terms:
            return _lit(0.0, self.ctype)
        return "\n        + ".join(
            self.term_expr(t, loopvars, source_name) for t in terms
        )

    # -- kernel IR rendering -------------------------------------------------

    def fresh_prefix(self) -> str:
        """Unique let-binding prefix — the same :class:`Stencil` object
        may be emitted several times in one translation unit (a group
        can list it at multiple indices), so names cannot key on the
        stencil."""
        p = f"k{self._kernel_seq}_"
        self._kernel_seq += 1
        return p

    def render_kexpr(
        self,
        expr: KExpr,
        loopvars: Sequence[str],
        source_name: Callable[[str], str],
        names: Mapping[str, str],
    ) -> str:
        """One kernel-IR expression as fully-parenthesized C.

        Parentheses pin the IR's evaluation order exactly; under the
        strict-ISO flag set (no ``-ffast-math``, default
        ``-ffp-contract=off``) the compiler preserves it, which is what
        keeps the compiled backends bitwise-equal to the reference
        interpreter.  A :class:`KFma` renders as a separate multiply
        and add for the same reason.
        """
        r = lambda e: self.render_kexpr(e, loopvars, source_name, names)  # noqa: E731
        if isinstance(expr, KConst):
            return _lit(expr.value, self.ctype)
        if isinstance(expr, KParam):
            return self.param_cname[expr.name]
        if isinstance(expr, KRef):
            return names[expr.name]
        if isinstance(expr, KLoad):
            idx = self.index_expr(expr.grid, expr.scale, expr.offset, loopvars)
            return f"{source_name(expr.grid)}[{idx}]"
        if isinstance(expr, KAdd):
            return f"({r(expr.lhs)} + {r(expr.rhs)})"
        if isinstance(expr, KMul):
            return f"({r(expr.lhs)} * {r(expr.rhs)})"
        if isinstance(expr, KDiv):
            return f"({r(expr.lhs)} / {r(expr.rhs)})"
        if isinstance(expr, KFma):
            return f"({r(expr.a)} * {r(expr.b)} + {r(expr.c)})"
        raise TypeError(f"cannot render {type(expr).__name__}")

    def kernel_parts(
        self,
        stencil: Stencil,
        loopvars: Sequence[str],
        source_name: Callable[[str], str],
        optimize: bool | None = None,
    ) -> KernelParts:
        """Render ``stencil``'s (cached) kernel body to C fragments."""
        body, _ = body_for(stencil, optimize)
        prefix = self.fresh_prefix()
        names = {l.name: prefix + l.name for l in body.lets}
        scalar: list[str] = []
        inner: list[str] = []
        for let in body.lets:
            line = (
                f"const {self.ctype} {names[let.name]} = "
                f"{self.render_kexpr(let.expr, loopvars, source_name, names)};"
            )
            (scalar if let.depth == 0 else inner).append(line)
        return KernelParts(
            scalar, inner,
            self.render_kexpr(body.result, loopvars, source_name, names),
        )


# ---------------------------------------------------------------------------
# loop nests
# ---------------------------------------------------------------------------


class StencilLoops:
    """Emit the loop nests of one stencil (all domain boxes).

    ``task_hook(depth_lines, tile_var)`` lets the OpenMP backend wrap the
    outer tile loop body in a task pragma; ``None`` produces plain loops.

    ``fused_with`` carries additional stencils sharing this stencil's
    domain and output map whose stores are emitted in the *same* loop
    nest — the fusion transformation the dependence analysis legalizes
    (only snapshot-free, mutually independent stencils may be fused;
    :func:`repro.schedule.fusion_chains` decides).

    ``parity`` is the schedule's multicolor verdict for this stencil:
    a :class:`~repro.schedule.ir.ParityClass` selects the fused dense
    nest, ``None`` emits one nest per domain box.

    ``unroll`` emits ``#pragma GCC unroll N`` immediately before each
    innermost loop — a pure performance hint (the arithmetic and its
    order are unchanged, so results stay bitwise identical); ``None``
    emits nothing.
    """

    def __init__(
        self,
        ctx: CodegenContext,
        stencil: Stencil,
        *,
        tile: int | None = None,
        parity: ParityClass | None = None,
        snapshot_name: str | None = None,
        fused_with: Sequence[Stencil] = (),
        unroll: int | None = None,
    ) -> None:
        self.ctx = ctx
        self.stencil = stencil
        self.tile = tile
        self.parity = parity
        self.snapshot_name = snapshot_name
        self.unroll = unroll
        self.fused_with = tuple(fused_with)
        if self.fused_with and snapshot_name is not None:
            raise ValueError("fused clusters must be snapshot-free")
        it_shape = iteration_shape(stencil, ctx.shapes)
        self.rects = [
            r for r in stencil.domain.resolve(it_shape) if not r.is_empty()
        ]
        # Kernel bodies rendered once per StencilLoops: every nest form
        # (rect or parity) uses the same i0..i{d-1} loop variables.
        loopvars = [f"i{d}" for d in range(stencil.ndim)]
        self.parts = [ctx.kernel_parts(stencil, loopvars, self.source_name)]
        for st in self.fused_with:
            # fused members are snapshot-free by construction
            self.parts.append(
                ctx.kernel_parts(st, loopvars, lambda g: ctx.grid_cname[g])
            )

    # -- naming --------------------------------------------------------------

    def source_name(self, grid: str) -> str:
        if self.snapshot_name is not None and grid == self.stencil.output:
            return self.snapshot_name
        return self.ctx.grid_cname[grid]

    def needs_snapshot(self) -> bool:
        return self.stencil.is_inplace() and not is_parallel_safe(
            self.stencil, self.ctx.shapes
        )

    # -- emission ------------------------------------------------------------

    def emit(self, task_pragma: str | None = None) -> list[str]:
        """Full C lines for this stencil (without snapshot management).

        Starts with the hoisted scalar prelude (depth-0 bindings,
        evaluated once per sweep), then the loop nests.  Under OpenMP
        the prelude precedes the task pragmas; the ``const`` locals are
        firstprivate-captured by the tasks.
        """
        lines: list[str] = []
        for parts in self.parts:
            lines += parts.scalar_lines
        pc = self.parity
        if pc is not None:
            lines += self._emit_parity_nest(pc, task_pragma)
            return lines
        for rect in self.rects:
            lines += self._emit_rect_nest(rect, task_pragma)
        return lines

    def _store_stmt(self, loopvars: Sequence[str]) -> list[str]:
        ctx = self.ctx
        stmts = []
        for st, parts in zip((self.stencil, *self.fused_with), self.parts):
            om = st.output_map
            out_idx = ctx.index_expr(st.output, om.scale, om.offset, loopvars)
            stmts.extend(parts.inner_lines)
            out = ctx.grid_cname[st.output]
            stmts.append(f"{out}[{out_idx}] = {parts.result};")
        return stmts

    def emit_wavefront(
        self, k: int, task_pragma: str | None = None
    ) -> list[str]:
        """Blocked wavefront time tile: ``k`` applications per block.

        Cuts the spatial domain into blocks along the outermost free
        dimension (``tile`` planes each; the whole extent when untiled)
        and runs *all* ``k`` applications of one block before the next
        block starts, keeping the block cache-resident across the time
        steps.  Only legal when the schedule proved slope 0 (blocks
        carry no cross-application dependence), which also makes the
        blocks independent — the OpenMP backend runs them as tasks.
        """
        if self.snapshot_name is not None:
            raise ValueError("time-tiled steps are snapshot-free by legality")
        lines: list[str] = []
        for parts in self.parts:
            lines += parts.scalar_lines
        if self.parity is not None:
            lines += self._emit_wavefront_parity(self.parity, k, task_pragma)
            return lines
        for rect in self.rects:
            lines += self._emit_wavefront_rect(rect, k, task_pragma)
        return lines

    def _plain_rect_nest(
        self,
        rect: ResolvedRect,
        bounds: Mapping[int, tuple[str, str]],
    ) -> list[str]:
        """Dense nest over ``rect``; ``bounds`` overrides one dim's
        (lo, hi) with C expressions (the wavefront block clamp)."""
        nd = rect.ndim
        loopvars = [f"i{d}" for d in range(nd)]
        lines: list[str] = []
        indent = ""
        for d in range(nd):
            lo, st, ct = rect.lows[d], rect.strides[d], rect.counts[d]
            step = st if st > 0 else 1
            lo_s, hi_s = bounds.get(d, (str(lo), str(lo + st * (ct - 1))))
            v = loopvars[d]
            if d == nd - 1 and self.unroll:
                lines.append(indent + f"#pragma GCC unroll {self.unroll}")
            lines.append(
                indent
                + f"for (int64_t {v} = {lo_s}; {v} <= {hi_s}; {v} += {step}) {{"
            )
            indent += "  "
        for s in self._store_stmt(loopvars):
            lines.append(indent + s)
        while indent:
            indent = indent[:-2]
            lines.append(indent + "}")
        return lines

    def _plain_parity_nest(
        self, pc: ParityClass, bounds0: tuple[str, str] | None
    ) -> list[str]:
        """Parity-corrected dense nest; ``bounds0`` clamps dim 0."""
        nd = len(pc.base)
        loopvars = [f"i{d}" for d in range(nd)]
        lines: list[str] = []
        indent = ""
        for d in range(nd - 1):
            v = loopvars[d]
            lo_s, hi_s = (
                bounds0
                if d == 0 and bounds0 is not None
                else (str(pc.base[d]), str(pc.high[d]))
            )
            lines.append(
                indent + f"for (int64_t {v} = {lo_s}; {v} <= {hi_s}; ++{v}) {{"
            )
            indent += "  "
        last = nd - 1
        off_sum = " + ".join(
            f"({loopvars[d]} - {pc.base[d]})" for d in range(nd - 1)
        ) or "0"
        lines.append(
            indent
            + f"const int64_t s{last} = {pc.base[last]} + "
            f"((({pc.parity} - ({off_sum})) % 2 + 2) % 2);"
        )
        if self.unroll:
            lines.append(indent + f"#pragma GCC unroll {self.unroll}")
        lines.append(
            indent
            + f"for (int64_t {loopvars[last]} = s{last}; "
            f"{loopvars[last]} <= {pc.high[last]}; {loopvars[last]} += 2) {{"
        )
        indent += "  "
        for s in self._store_stmt(loopvars):
            lines.append(indent + s)
        while indent:
            indent = indent[:-2]
            lines.append(indent + "}")
        return lines

    def _emit_wavefront_rect(
        self, rect: ResolvedRect, k: int, task_pragma: str | None
    ) -> list[str]:
        nd = rect.ndim
        lines: list[str] = []
        indent = ""

        def add(s: str) -> None:
            lines.append(indent + s)

        tile_dim = next((d for d in range(nd) if rect.counts[d] > 1), None)
        bounds: dict[int, tuple[str, str]] = {}
        if (
            tile_dim is not None
            and self.tile
            and rect.counts[tile_dim] > self.tile
        ):
            d = tile_dim
            lo, st, ct = rect.lows[d], rect.strides[d], rect.counts[d]
            step = st if st > 0 else 1
            hi = lo + st * (ct - 1)
            add(
                f"for (int64_t wb{d} = {lo}; wb{d} <= {hi}; "
                f"wb{d} += {step * self.tile}) {{"
            )
            indent += "  "
            if task_pragma:
                add(task_pragma)
                add("{")
                indent += "  "
            add(
                f"const int64_t we{d} = (wb{d} + {step * (self.tile - 1)} "
                f"< {hi}) ? wb{d} + {step * (self.tile - 1)} : {hi};"
            )
            bounds[d] = (f"wb{d}", f"we{d}")
        elif task_pragma:
            add(task_pragma)
            add("{")
            indent += "  "
        add(f"for (int64_t sf_tt = 0; sf_tt < {k}; ++sf_tt) {{")
        indent += "  "
        for l in self._plain_rect_nest(rect, bounds):
            add(l)
        while indent:
            indent = indent[:-2]
            lines.append(indent + "}")
        return lines

    def _emit_wavefront_parity(
        self, pc: ParityClass, k: int, task_pragma: str | None
    ) -> list[str]:
        lines: list[str] = []
        indent = ""

        def add(s: str) -> None:
            lines.append(indent + s)

        lo, hi = pc.base[0], pc.high[0]
        bounds0: tuple[str, str] | None = None
        if self.tile and (hi - lo + 1) > self.tile:
            add(
                f"for (int64_t wb0 = {lo}; wb0 <= {hi}; "
                f"wb0 += {self.tile}) {{"
            )
            indent += "  "
            if task_pragma:
                add(task_pragma)
                add("{")
                indent += "  "
            add(
                f"const int64_t we0 = (wb0 + {self.tile - 1} < {hi}) "
                f"? wb0 + {self.tile - 1} : {hi};"
            )
            bounds0 = ("wb0", "we0")
        elif task_pragma:
            add(task_pragma)
            add("{")
            indent += "  "
        add(f"for (int64_t sf_tt = 0; sf_tt < {k}; ++sf_tt) {{")
        indent += "  "
        for l in self._plain_parity_nest(pc, bounds0):
            add(l)
        while indent:
            indent = indent[:-2]
            lines.append(indent + "}")
        return lines

    def _emit_rect_nest(
        self, rect: ResolvedRect, task_pragma: str | None
    ) -> list[str]:
        nd = rect.ndim
        loopvars = [f"i{d}" for d in range(nd)]
        lines: list[str] = []
        indent = ""

        def add(s: str) -> None:
            lines.append(indent + s)

        # Outermost free (count>1) dimension gets tiled when requested.
        tile_dim = next((d for d in range(nd) if rect.counts[d] > 1), None)
        for d in range(nd):
            lo, st, ct = rect.lows[d], rect.strides[d], rect.counts[d]
            step = st if st > 0 else 1
            hi = lo + st * (ct - 1)
            v = loopvars[d]
            if d == tile_dim and self.tile and ct > self.tile:
                tstep = step * self.tile
                add(
                    f"for (int64_t t{d} = {lo}; t{d} <= {hi}; t{d} += {tstep}) {{"
                )
                indent += "  "
                if task_pragma:
                    add(task_pragma)
                    add("{")
                    indent += "  "
                add(
                    f"const int64_t e{d} = (t{d} + {step * (self.tile - 1)} "
                    f"< {hi}) ? t{d} + {step * (self.tile - 1)} : {hi};"
                )
                if d == nd - 1 and self.unroll:
                    add(f"#pragma GCC unroll {self.unroll}")
                add(f"for (int64_t {v} = t{d}; {v} <= e{d}; {v} += {step}) {{")
                indent += "  "
            else:
                if d == tile_dim and task_pragma:
                    add(task_pragma.replace("%TILEVAR%", v))
                    # untiled task: one task wraps the whole nest
                    add("{")
                    indent += "  "
                    task_pragma = None  # consume
                if d == nd - 1 and self.unroll:
                    add(f"#pragma GCC unroll {self.unroll}")
                add(f"for (int64_t {v} = {lo}; {v} <= {hi}; {v} += {step}) {{")
                indent += "  "
        for s in self._store_stmt(loopvars):
            add(s)
        # close braces
        while indent:
            indent = indent[:-2]
            lines.append(indent + "}")
        return lines

    def _emit_parity_nest(
        self, pc: ParityClass, task_pragma: str | None
    ) -> list[str]:
        """Fused multicolor nest: dense leading loops, parity-corrected
        stride-2 innermost loop (the paper's multicolor reordering)."""
        nd = len(pc.base)
        loopvars = [f"i{d}" for d in range(nd)]
        lines: list[str] = []
        indent = ""

        def add(s: str) -> None:
            lines.append(indent + s)

        # leading dims: dense
        for d in range(nd - 1):
            v = loopvars[d]
            if d == 0 and self.tile and (pc.high[0] - pc.base[0] + 1) > self.tile:
                add(
                    f"for (int64_t t0 = {pc.base[0]}; t0 <= {pc.high[0]}; "
                    f"t0 += {self.tile}) {{"
                )
                indent += "  "
                if task_pragma:
                    add(task_pragma)
                    add("{")
                    indent += "  "
                add(
                    f"const int64_t e0 = (t0 + {self.tile - 1} < {pc.high[0]})"
                    f" ? t0 + {self.tile - 1} : {pc.high[0]};"
                )
                add(f"for (int64_t {v} = t0; {v} <= e0; ++{v}) {{")
                indent += "  "
            else:
                if d == 0 and task_pragma:
                    add(task_pragma)
                    add("{")
                    indent += "  "
                add(
                    f"for (int64_t {v} = {pc.base[d]}; {v} <= {pc.high[d]}; "
                    f"++{v}) {{"
                )
                indent += "  "
        # innermost: stride 2 with parity-corrected start
        last = nd - 1
        off_sum = " + ".join(
            f"({loopvars[d]} - {pc.base[d]})" for d in range(nd - 1)
        ) or "0"
        add(
            f"const int64_t s{last} = {pc.base[last]} + "
            f"((({pc.parity} - ({off_sum})) % 2 + 2) % 2);"
        )
        if self.unroll:
            add(f"#pragma GCC unroll {self.unroll}")
        add(
            f"for (int64_t {loopvars[last]} = s{last}; "
            f"{loopvars[last]} <= {pc.high[last]}; {loopvars[last]} += 2) {{"
        )
        indent += "  "
        for s in self._store_stmt(loopvars):
            add(s)
        while indent:
            indent = indent[:-2]
            lines.append(indent + "}")
        return lines


def snapshot_decl(ctx: CodegenContext, stencil: Stencil, name: str) -> list[str]:
    """Allocate + fill a gather-semantics snapshot of the output grid."""
    g = stencil.output
    n = ctx.grid_size(g)
    src = ctx.grid_cname[g]
    return [
        f"{ctx.ctype}* {name} = ({ctx.ctype}*)malloc({n} * sizeof({ctx.ctype}));",
        f"memcpy({name}, {src}, {n} * sizeof({ctx.ctype}));",
    ]
