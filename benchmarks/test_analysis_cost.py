"""Cost of the analysis itself: domain-size independence.

The point of solving Diophantine systems instead of enumerating points
(paper SectionIII): planning a stencil group costs the same for an 8³
domain and a (simulated) 1024³ one.  These benchmarks time the exact
analysis at wildly different domain sizes — the report should show flat
times — plus the full greedy planning of a 13-stencil smoother and a
38-stencil two-smooth pipeline.
"""

import pytest

from repro.analysis.dag import plan
from repro.analysis.dependence import is_parallel_safe
from repro.hpgmg.operators import cc_laplacian, gsrb_stencils, smooth_group, vc_laplacian


@pytest.mark.parametrize("n", [8, 128, 1024])
def test_inplace_legality_is_size_independent(benchmark, n):
    red, _ = gsrb_stencils(3, cc_laplacian(3, 1.0 / n), lam=0.1)
    shapes = {g: (n + 2,) * 3 for g in red.grids()}
    result = benchmark(is_parallel_safe, red, shapes)
    assert result
    benchmark.extra_info["domain_points"] = n**3


@pytest.mark.parametrize("n", [16, 512])
def test_greedy_plan_smoother(benchmark, n):
    group = smooth_group(3, vc_laplacian(3, 1.0 / n), lam="lam")
    shapes = {g: (n + 2,) * 3 for g in group.grids()}
    p = benchmark(plan, group, shapes)
    assert p.stencil_count() == len(group)
    benchmark.extra_info["stencils"] = len(group)


def test_greedy_plan_two_smooth_pipeline(benchmark):
    group = smooth_group(3, vc_laplacian(3, 1.0 / 64), lam="lam", n_smooths=2)
    shapes = {g: (66,) * 3 for g in group.grids()}
    p = benchmark(plan, group, shapes)
    benchmark.extra_info["stencils"] = len(group)
    benchmark.extra_info["phases"] = len(p.phases)
