"""Quickstart: define a stencil once, run it on every micro-compiler.

A 2-D 5-point Laplacian smoothing a random field — the "hello world" of
stencil DSLs.  The same ``Stencil`` object compiles through the Python
reference interpreter, the vectorized numpy backend, the sequential C
JIT, the task-parallel OpenMP backend, and the OpenCL code generator
(executed on the CPU device simulator): single source, many targets.

Run:  python examples/quickstart.py
"""

import numpy as np

from repro import Component, RectDomain, Stencil, WeightArray

# -- 1. the stencil ----------------------------------------------------------
# WeightArray is centred on its middle element: this is the classic
# 5-point Jacobi-style average (Fig.3d of the paper).
blur = Component(
    "u",
    WeightArray(
        [
            [0.00, 0.25, 0.00],
            [0.25, 0.00, 0.25],
            [0.00, 0.25, 0.00],
        ]
    ),
)

# Apply over the interior of the grid; negative indices are grid-size
# relative, so the same Stencil works for any array size.
interior = RectDomain((1, 1), (-1, -1))
stencil = Stencil(blur, "out", interior, name="blur5")

# -- 2. run it everywhere ----------------------------------------------------
rng = np.random.default_rng(42)
u = rng.random((130, 130))

results = {}
for backend in ("python", "numpy", "c", "openmp", "opencl-sim"):
    out = np.zeros_like(u)
    kernel = stencil.compile(backend=backend)  # JIT: cached per shape
    kernel(u=u, out=out)
    results[backend] = out
    print(f"{backend:11s} -> interior mean {out[1:-1, 1:-1].mean():.6f}")

ref = results["python"]
for backend, out in results.items():
    assert np.allclose(out, ref), f"{backend} disagrees with the reference!"
print("\nall five backends agree bit-for-bit (up to FP reassociation)")

# -- 3. peek at the generated code -------------------------------------------
from repro.backends.c_backend import generate_c_source

src = generate_c_source(
    __import__("repro").StencilGroup([stencil]), {"u": u.shape, "out": u.shape},
    np.float64,
)
print("\n--- generated C (first 25 lines) ---")
print("\n".join(src.splitlines()[:25]))
