"""Frontend pass pipeline over stencil groups.

The paper's JIT "modifies the AST by multiple analysis, optimization
and translation passes" (SectionIV).  In this reproduction the unit of
transformation is the :class:`~repro.core.stencil.StencilGroup`; this
package provides the pass protocol, the built-in passes (dead-stencil
elimination, dependence-aware reordering, validation), and a composable
:class:`PassManager`.
"""

from .passes import (
    DeadStencilElimination,
    GroupPass,
    PassManager,
    Reorder,
    Validate,
    default_pipeline,
    optimize_group,
)

__all__ = [
    "DeadStencilElimination",
    "GroupPass",
    "PassManager",
    "Reorder",
    "Validate",
    "default_pipeline",
    "optimize_group",
]
