"""Shared stencil constructions for the schedule-IR suite."""

from __future__ import annotations

import numpy as np

from repro.core.components import Component
from repro.core.domains import RectDomain
from repro.core.stencil import Stencil, StencilGroup
from repro.core.weights import WeightArray

LAP = WeightArray([[0, 1, 0], [1, -4, 1], [0, 1, 0]])


def laplacian_pair(n=12):
    """One Laplacian stencil; the smallest compilable case."""
    s = Stencil(Component("u", LAP), "out", RectDomain((1, 1), (-1, -1)))
    group = StencilGroup([s], name="lap")
    shapes = {"u": (n, n), "out": (n, n)}
    return group, shapes


def straddle_group(n=12):
    """Three stencils whose legacy program-order fusion straddles a barrier.

    * ``s0`` writes ``a`` over the wide interior;
    * ``s1`` writes ``b`` over the narrow interior, independent of ``s0``;
    * ``s2`` writes ``c`` over the narrow interior, *reading* ``a``.

    Greedy phases: ``[[0, 1], [2]]`` (the RAW ``a`` edge bars ``s2``).
    Program-order chaining glues ``[1, 2]`` — same domain, no mutual
    dependence — hoisting ``s2`` across the barrier it must wait on.
    Phase-local chaining keeps them apart by construction.
    """
    wide = RectDomain((1, 1), (-1, -1))
    narrow = RectDomain((2, 2), (-2, -2))
    s0 = Stencil(Component("u", LAP), "a", wide, name="s0")
    s1 = Stencil(Component("u", LAP), "b", narrow, name="s1")
    s2 = Stencil(Component("a", LAP), "c", narrow, name="s2")
    group = StencilGroup([s0, s1, s2], name="straddle")
    shapes = {g: (n, n) for g in ("u", "a", "b", "c")}
    return group, shapes


def fusable_pair_group(n=12):
    """Two independent same-domain stencils: one legal 2-chain."""
    interior = RectDomain((1, 1), (-1, -1))
    s0 = Stencil(Component("u", LAP), "a", interior, name="f0")
    s1 = Stencil(Component("u", LAP), "b", interior, name="f1")
    group = StencilGroup([s0, s1], name="fusable")
    shapes = {g: (n, n) for g in ("u", "a", "b")}
    return group, shapes


def gsrb_workload(n=10, ndim=2):
    """The HPGMG GSRB smoother group plus matching random arrays."""
    from repro.hpgmg.operators import cc_laplacian, smooth_group

    group = smooth_group(ndim, cc_laplacian(ndim, 1.0 / n), lam=0.25)
    shape = (n + 2,) * ndim
    shapes = {g: shape for g in group.grids()}
    rng = np.random.default_rng(7)
    arrays = {g: rng.standard_normal(shape) for g in group.grids()}
    return group, shapes, arrays
