"""Hardened JIT: quarantine/recompile, per-tag locking, orphan sweep,
cache accounting, hard timeouts."""

import ctypes
import os
import shutil
import subprocess
import threading

import pytest

from repro.backends import jit
from repro.backends.jit import (
    CompileError,
    CompileTimeout,
    cache_dir,
    clear_disk_cache,
    compile_and_load,
    sweep_orphans,
)
from repro.resilience import ResilienceWarning
from repro.resilience.faults import inject

pytestmark = pytest.mark.faults

needs_gcc = pytest.mark.skipif(
    shutil.which("gcc") is None, reason="requires a C toolchain"
)


def _value_of(lib, name):
    fn = getattr(lib, name)
    fn.restype = ctypes.c_double
    return fn()


@needs_gcc
class TestQuarantine:
    # NB: dlopen caches handles by path within a process, so a library
    # this process already loaded can never fail to re-load here.  The
    # "corrupted cache from an earlier run" scenario therefore plants
    # the bad artifact at a path this process has never dlopened.

    def test_corrupted_cached_so_quarantined_and_recompiled(
        self, real_gcc, fresh_jit
    ):
        src = "double sf_q1(void){ return 11.0; }\n"
        so = cache_dir() / f"sf_{jit._tag(src)}.so"
        so.write_bytes(b"garbage, not an ELF")  # crash-truncated artifact
        with pytest.warns(ResilienceWarning, match="quarantined"):
            lib = compile_and_load(src)
        assert _value_of(lib, "sf_q1") == 11.0
        assert list(cache_dir().glob("sf_*.so.bad")), "bad artifact kept"

    def test_cache_read_fault_site_exercises_same_path(
        self, real_gcc, fresh_jit
    ):
        src_a = "double sf_qa(void){ return 1.0; }\n"
        src_b = "double sf_q2(void){ return 12.0; }\n"
        compile_and_load(src_a)
        # a valid cached artifact this process has never dlopened
        so_a = cache_dir() / f"sf_{jit._tag(src_a)}.so"
        so_b = cache_dir() / f"sf_{jit._tag(src_b)}.so"
        shutil.copy(so_a, so_b)
        with inject("jit.cache.read", times=1):
            with pytest.warns(ResilienceWarning, match="recompiling"):
                lib = compile_and_load(src_b)
        assert _value_of(lib, "sf_q2") == 12.0

    def test_load_fault_surfaces_as_oserror(self, real_gcc, fresh_jit):
        with inject("jit.load", times=None):
            with pytest.raises(OSError, match="injected fault: dlopen"):
                compile_and_load("double sf_q3(void){ return 13.0; }\n")

    def test_cache_write_fault_then_clean_retry(self, real_gcc, fresh_jit):
        src = "double sf_q4(void){ return 14.0; }\n"
        with inject("jit.cache.write", times=1):
            with pytest.raises(OSError, match="cache write"):
                compile_and_load(src)
        assert not list(cache_dir().glob("sf_*.tmp.so"))  # tmp cleaned
        lib = compile_and_load(src)  # transient: next attempt succeeds
        assert _value_of(lib, "sf_q4") == 14.0


@needs_gcc
class TestConcurrency:
    def test_concurrent_distinct_and_shared_tags(self, real_gcc, fresh_jit):
        n_distinct = 4
        sources = [
            f"double sf_t{i}(void){{ return {i}.0; }}\n"
            for i in range(n_distinct)
        ]
        shared = "double sf_shared(void){ return 99.0; }\n"
        results: dict[int, object] = {}
        errors: list[BaseException] = []
        start = threading.Barrier(n_distinct + 2)

        def worker(idx, src):
            try:
                start.wait()
                results[idx] = compile_and_load(src)
            except BaseException as e:  # noqa: BLE001 - collected for assert
                errors.append(e)

        threads = [
            threading.Thread(target=worker, args=(i, s))
            for i, s in enumerate(sources)
        ] + [
            threading.Thread(target=worker, args=(10 + j, shared))
            for j in range(2)
        ]
        for t in threads:
            t.start()
        for t in threads:
            t.join()
        assert not errors
        for i in range(n_distinct):
            assert _value_of(results[i], f"sf_t{i}") == float(i)
        # racing threads on one tag share a single compiled handle
        assert results[10] is results[11]


class TestCacheAccounting:
    @needs_gcc
    def test_clear_counts_only_real_deletions(self, real_gcc, fresh_jit):
        compile_and_load("double sf_c1(void){ return 1.0; }\n")
        d = cache_dir()
        assert len(list(d.glob("sf_*"))) == 2  # .c and .so
        (d / "sf_orphan.424242.tmp.so").write_bytes(b"x")  # crashed compile
        (d / "unrelated.txt").write_text("keep me")
        assert clear_disk_cache() == 3
        assert (d / "unrelated.txt").exists()
        assert clear_disk_cache() == 0  # nothing left: count stays honest

    def test_sweep_orphans_spares_live_owners(self, tmp_path, monkeypatch):
        monkeypatch.setenv("SNOWFLAKE_CACHE_DIR", str(tmp_path / "swp"))
        d = cache_dir()
        # a pid that existed and is now certainly dead
        proc = subprocess.Popen(["sleep", "0"])
        proc.wait()
        dead = d / f"sf_dead.{proc.pid}.tmp.so"
        dead.write_bytes(b"x")
        live = d / f"sf_live.{os.getpid()}.tmp.so"
        live.write_bytes(b"x")
        junk = d / "sf_weird.notapid.tmp.so"
        junk.write_bytes(b"x")
        assert sweep_orphans() == 2  # dead + unparsable; live spared
        assert live.exists()
        assert not dead.exists()
        assert not junk.exists()


class TestHardTimeout:
    def test_hung_compiler_raises_compiletimeout(
        self, tmp_path, monkeypatch, fresh_jit
    ):
        hung = tmp_path / "hung-cc"
        hung.write_text("#!/bin/sh\nsleep 30\n")
        hung.chmod(0o755)
        monkeypatch.setenv("SNOWFLAKE_CC", str(hung))
        with pytest.raises(CompileTimeout, match="hard timeout"):
            compile_and_load("int sf_hang(void){return 0;}\n", timeout=0.2)
        assert not list(cache_dir().glob("sf_*.tmp.so"))

    def test_timeout_env_knob(self, monkeypatch):
        monkeypatch.setenv("SNOWFLAKE_CC_TIMEOUT", "7.5")
        assert jit.default_cc_timeout() == 7.5
        monkeypatch.setenv("SNOWFLAKE_CC_TIMEOUT", "0")
        assert jit.default_cc_timeout() is None
        monkeypatch.delenv("SNOWFLAKE_CC_TIMEOUT")
        assert jit.default_cc_timeout() == 300.0

    def test_timeout_is_a_compile_error(self):
        # fallback policies treat CompileTimeout as transient *and* as a
        # compile failure; the hierarchy must support both
        assert issubclass(CompileTimeout, CompileError)


class TestBrokenToolchainHygiene:
    def test_failed_compile_leaves_no_tmp(self, monkeypatch, fresh_jit):
        monkeypatch.setenv("SNOWFLAKE_CC", "false")
        with pytest.raises((CompileError, OSError)):
            compile_and_load("int sf_broken(void){return 0;}\n")
        assert not list(cache_dir().glob("sf_*.tmp.so"))
