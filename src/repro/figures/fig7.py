"""Figure7 — stencils/s for the three operators on CPU and GPU.

Measured rows: the Snowflake OpenMP backend and the hand-optimized C
baseline run on *this host*, normalized to the host's measured STREAM
bandwidth so the roofline fraction is comparable to the paper's.

Paper-platform rows: the calibrated execution model on the i7-4765T
and K20c specs (DESIGN.md substitution), which reproduces the figure's
shape — Snowflake ≈ HPGMG ≈ roofline on CPU, Snowflake/OpenCL about
half of HPGMG-CUDA on the GPU.
"""

from __future__ import annotations

import numpy as np

from ..baselines.kernels_c import BaselineKernels3D
from ..machine.model import IMPLEMENTATIONS, predict_sweep_time
from ..machine.roofline import PAPER_BYTES_PER_STENCIL, roofline_stencils_per_s
from ..machine.specs import I7_4765T, K20C, host_spec
from ..util.tables import format_table
from ..util.timing import best_of
from .common import DEFAULT_SIZE, OPERATORS, build_case, operator_work

__all__ = ["run", "main", "measure_host", "model_paper_platforms"]


def _baseline_runner(name: str, case):
    """Hand-optimized comparator for one operator application."""
    k = BaselineKernels3D()
    lvl = case.level
    g = lvl.grids
    n = lvl.n
    invh2 = 1.0 / (lvl.h * lvl.h)
    if name == "cc_7pt":
        def run():
            k.bc(g["x"], n)
            k.residual_cc(g["res"], g["x"], g["rhs"], n, invh2)
    elif name == "cc_jacobi":
        wlam = (2.0 / 3.0) / (6.0 * invh2)
        def run():
            k.bc(g["x"], n)
            k.jacobi_cc(g["tmp"], g["x"], g["rhs"], n, invh2, wlam)
    elif name == "vc_gsrb":
        def run():
            for color in (0, 1):
                k.bc(g["x"], n)
                k.gsrb_vc(
                    g["x"], g["rhs"], g["beta_0"], g["beta_1"], g["beta_2"],
                    g["lam"], n, invh2, color,
                )
    else:
        raise ValueError(name)
    return run


def measure_host(n: int = DEFAULT_SIZE, repeats: int = 3, backend: str = "openmp"):
    """Measured stencils/s on this host: Snowflake vs hand-written C."""
    rows = []
    spec = host_spec()
    for name in OPERATORS:
        case = build_case(name, n)
        sf = case.compile(backend)
        t_sf = best_of(sf, warmup=1, repeats=repeats)
        bl = _baseline_runner(name, build_case(name, n))
        t_bl = best_of(bl, warmup=1, repeats=repeats)
        bound = roofline_stencils_per_s(spec, PAPER_BYTES_PER_STENCIL[name])
        rows.append(
            {
                "operator": name,
                "snowflake": case.points / t_sf,
                "baseline": case.points / t_bl,
                "roofline": bound,
            }
        )
    return rows


def model_paper_platforms(n: int = 256):
    """Model-predicted stencils/s on the paper's two testbeds."""
    rows = []
    for plat_name, spec, sf_impl, hand_impl in (
        ("Core i7-4765T", I7_4765T, "snowflake-openmp", "hpgmg-openmp"),
        ("K20c GPU", K20C, "snowflake-opencl", "hpgmg-cuda"),
    ):
        for name in OPERATORS:
            work = operator_work(name, n)
            t_sf = predict_sweep_time(spec, IMPLEMENTATIONS[sf_impl], work)
            t_hand = predict_sweep_time(spec, IMPLEMENTATIONS[hand_impl], work)
            bound = roofline_stencils_per_s(
                spec, PAPER_BYTES_PER_STENCIL[name], work.working_set
            )
            rows.append(
                {
                    "platform": plat_name,
                    "operator": name,
                    "snowflake": work.points / t_sf,
                    "hpgmg": work.points / t_hand,
                    "roofline": bound,
                }
            )
    return rows


def run(n: int = DEFAULT_SIZE, model_n: int = 256, repeats: int = 3):
    headers = [
        "platform", "operator", "HPGMG (GStencil/s)",
        "Snowflake (GStencil/s)", "Roofline (GStencil/s)", "source",
    ]
    rows = []
    for r in measure_host(n, repeats):
        rows.append(
            [
                f"host {n}^3", r["operator"], r["baseline"] / 1e9,
                r["snowflake"] / 1e9, r["roofline"] / 1e9, "measured",
            ]
        )
    for r in model_paper_platforms(model_n):
        rows.append(
            [
                f"{r['platform']} {model_n}^3", r["operator"], r["hpgmg"] / 1e9,
                r["snowflake"] / 1e9, r["roofline"] / 1e9, "model",
            ]
        )
    return headers, rows


def main(n: int = DEFAULT_SIZE, model_n: int = 256, repeats: int = 3) -> str:
    headers, rows = run(n, model_n, repeats)
    out = format_table(
        headers, rows,
        title=f"Fig.7 — operator performance (host measured at {n}^3, "
        f"paper platforms modeled at {model_n}^3)",
    )
    print(out)
    return out


if __name__ == "__main__":  # pragma: no cover
    main()
