"""HPGMG operators: DSL-built kernels vs direct numpy math."""

import numpy as np
import pytest

from _helpers import run_group
from repro.core.stencil import Stencil, StencilGroup
from repro.hpgmg.level import Level
from repro.hpgmg.operators import (
    boundary_stencils,
    cc_diagonal,
    cc_laplacian,
    face_domain,
    gsrb_stencils,
    interior,
    interpolation_linear_group,
    interpolation_pc_group,
    jacobi_stencil,
    residual_stencil,
    restriction_stencil,
    smooth_group,
    vc_laplacian,
)


def manual_cc_apply(u, h):
    """(2d u - neighbours)/h^2 on a 2-D interior."""
    return (
        4 * u[1:-1, 1:-1] - u[:-2, 1:-1] - u[2:, 1:-1]
        - u[1:-1, :-2] - u[1:-1, 2:]
    ) / (h * h)


class TestCCLaplacian:
    def test_matches_manual_2d(self, rng):
        h = 0.125
        s = Stencil(cc_laplacian(2, h, grid="u"), "out", interior(2))
        u = rng.random((10, 10))
        got = run_group(s, {"u": u, "out": np.zeros((10, 10))})
        np.testing.assert_allclose(got["out"][1:-1, 1:-1], manual_cc_apply(u, h))

    def test_constant_function_maps_to_zero(self):
        # away from boundaries, A(const) = 0
        s = Stencil(cc_laplacian(2, 0.1, grid="u"), "out", interior(2))
        got = run_group(s, {"u": np.ones((8, 8)), "out": np.zeros((8, 8))})
        np.testing.assert_allclose(got["out"][1:-1, 1:-1], 0.0, atol=1e-12)

    def test_diagonal_constant(self):
        assert cc_diagonal(3, 0.5) == 6 / 0.25


class TestVCLaplacian:
    def test_reduces_to_cc_when_beta_is_one(self, rng):
        h = 0.125
        shape = (10, 10)
        u = rng.random(shape)
        arrays = {
            "x": u, "out": np.zeros(shape),
            "beta_0": np.ones(shape), "beta_1": np.ones(shape),
        }
        s = Stencil(vc_laplacian(2, h), "out", interior(2))
        got = run_group(s, arrays)
        np.testing.assert_allclose(
            got["out"][1:-1, 1:-1], manual_cc_apply(u, h), atol=1e-12
        )

    def test_matches_manual_flux_form(self, rng):
        h = 0.25
        shape = (8, 8)
        u = rng.random(shape)
        b0 = 1 + rng.random(shape)
        b1 = 1 + rng.random(shape)
        s = Stencil(vc_laplacian(2, h), "out", interior(2))
        got = run_group(
            s, {"x": u, "out": np.zeros(shape), "beta_0": b0, "beta_1": b1}
        )
        # manual: (1/h^2) sum_d [ b_lo*(u_i - u_{i-1}) + b_hi*(u_i - u_{i+1}) ]
        I = slice(1, -1)
        manual = (
            b0[I, I] * (u[I, I] - u[:-2, I])
            + b0[2:, I] * (u[I, I] - u[2:, I])
            + b1[I, I] * (u[I, I] - u[I, :-2])
            + b1[I, 2:] * (u[I, I] - u[I, 2:])
        ) / (h * h)
        np.testing.assert_allclose(got["out"][1:-1, 1:-1], manual, atol=1e-12)

    def test_with_alpha_term(self, rng):
        h = 0.25
        shape = (8, 8)
        u = rng.random(shape)
        alpha = rng.random(shape)
        ones = np.ones(shape)
        body = vc_laplacian(2, h, a=2.0, alpha_grid="alpha")
        s = Stencil(body, "out", interior(2))
        got = run_group(
            s,
            {"x": u, "out": np.zeros(shape), "alpha": alpha,
             "beta_0": ones, "beta_1": ones},
        )
        want = 2.0 * alpha[1:-1, 1:-1] * u[1:-1, 1:-1] + manual_cc_apply(u, h)
        np.testing.assert_allclose(got["out"][1:-1, 1:-1], want, atol=1e-12)

    def test_alpha_requires_grid_name(self):
        with pytest.raises(ValueError):
            vc_laplacian(2, 0.1, a=1.0)


class TestBoundaries:
    def test_face_domains_cover_all_faces(self):
        shape = (8, 8)
        pts = set()
        for d in range(2):
            for side in (-1, 1):
                pts |= set(
                    face_domain(2, d, side).resolve(shape).points()
                )
        # faces exclude corners (other dims span the interior)
        assert (0, 1) in pts and (7, 6) in pts
        assert (0, 0) not in pts

    def test_ghost_mirror_negation(self, rng):
        shape = (8, 8)
        u = rng.random(shape)
        got = run_group(
            StencilGroup(boundary_stencils(2, "u")), {"u": u}
        )["u"]
        np.testing.assert_allclose(got[0, 1:-1], -u[1, 1:-1])
        np.testing.assert_allclose(got[-1, 1:-1], -u[-2, 1:-1])
        np.testing.assert_allclose(got[1:-1, 0], -u[1:-1, 1])
        np.testing.assert_allclose(got[1:-1, -1], -u[1:-1, -2])
        # interior untouched
        np.testing.assert_array_equal(got[1:-1, 1:-1], u[1:-1, 1:-1])

    def test_face_value_is_zero_after_bc(self, rng):
        # cell-centered Dirichlet: (ghost + inner)/2 == 0 along the face
        # (corners are untouched by face-only BC stencils)
        shape = (8, 8)
        got = run_group(
            StencilGroup(boundary_stencils(2, "u")), {"u": rng.random(shape)}
        )["u"]
        np.testing.assert_allclose(got[0, 1:-1] + got[1, 1:-1], 0.0, atol=1e-15)

    def test_count_2d_and_3d(self):
        assert len(boundary_stencils(2, "u")) == 4
        assert len(boundary_stencils(3, "u")) == 6


class TestSmoothers:
    def test_jacobi_fixed_point_is_solution(self, rng):
        # if x solves A x = rhs exactly, Jacobi leaves it unchanged
        h = 1 / 7
        shape = (9, 9)
        x = np.zeros(shape)
        x[1:-1, 1:-1] = rng.random((7, 7))
        # impose BC consistency then compute rhs = A x
        bc = StencilGroup(boundary_stencils(2, "x"))
        x = run_group(bc, {"x": x})["x"]
        Ax = Stencil(cc_laplacian(2, h), "rhs", interior(2))
        rhs = run_group(Ax, {"x": x, "rhs": np.zeros(shape)})["rhs"]
        jac = jacobi_stencil(2, cc_laplacian(2, h), lam=1 / cc_diagonal(2, h))
        got = run_group(jac, {"x": x, "rhs": rhs, "tmp": np.zeros(shape)})
        np.testing.assert_allclose(
            got["tmp"][1:-1, 1:-1], x[1:-1, 1:-1], atol=1e-12
        )

    def test_jacobi_inplace_variant_flags_hazard(self):
        from repro.analysis import is_parallel_safe

        jac = jacobi_stencil(2, cc_laplacian(2, 0.1), grid="x", out="x", lam=0.1)
        assert jac.is_inplace()
        shapes = {g: (9, 9) for g in jac.grids()}
        assert not is_parallel_safe(jac, shapes)

    def test_gsrb_red_only_touches_red(self, rng):
        red, black = gsrb_stencils(2, cc_laplacian(2, 1 / 7), lam=0.01)
        shape = (9, 9)
        x = rng.random(shape)
        got = run_group(red, {"x": x, "rhs": rng.random(shape)})["x"]
        changed = got != x
        ii, jj = np.nonzero(changed)
        assert ((ii + jj) % 2 == 0).all()

    def test_gsrb_error_decreases_monotonically(self, rng):
        # Gauss-Seidel decreases the energy norm of the error every
        # sweep (the L2 *residual* may transiently rise — verified
        # against an independent numpy GS implementation).
        h = 1 / 14
        shape = (16, 16)
        u_star = np.zeros(shape)
        u_star[1:-1, 1:-1] = rng.random((14, 14))
        bc = StencilGroup(boundary_stencils(2, "x"))
        u_star = run_group(bc, {"x": u_star})["x"]
        rhs = run_group(
            Stencil(cc_laplacian(2, h), "rhs", interior(2)),
            {"x": u_star, "rhs": np.zeros(shape)},
        )["rhs"]
        group = smooth_group(2, cc_laplacian(2, h), lam=1 / cc_diagonal(2, h))
        arrays = {"x": np.zeros(shape), "rhs": rhs}
        errs = []
        for _ in range(4):
            arrays = run_group(group, arrays)
            errs.append(
                np.linalg.norm(arrays["x"][1:-1, 1:-1] - u_star[1:-1, 1:-1])
            )
        assert all(b < a for a, b in zip(errs, errs[1:]))
        assert errs[-1] < 0.8 * errs[0]

    def test_smooth_group_structure(self):
        group = smooth_group(3, cc_laplacian(3, 0.1), lam=0.1, n_smooths=2)
        # per smooth: 6 bc + red + 6 bc + black = 14
        assert len(group) == 28


class TestTransfers:
    def test_restriction_preserves_constants(self):
        s = restriction_stencil(2)
        fine = np.ones((18, 18))
        got = run_group(s, {"res": fine, "coarse_rhs": np.zeros((10, 10))})
        np.testing.assert_allclose(got["coarse_rhs"][1:-1, 1:-1], 1.0)

    def test_interp_pc_preserves_constants(self):
        group = interpolation_pc_group(2, add=False)
        got = run_group(
            group, {"coarse_x": np.ones((6, 6)), "x": np.zeros((10, 10))}
        )
        np.testing.assert_allclose(got["x"][1:-1, 1:-1], 1.0)

    def test_interp_linear_preserves_constants(self):
        coarse = np.ones((6, 6))
        group = interpolation_linear_group(2, add=False)
        got = run_group(group, {"coarse_x": coarse, "x": np.zeros((10, 10))})
        np.testing.assert_allclose(got["x"][1:-1, 1:-1], 1.0)

    def test_interp_linear_reproduces_linears(self):
        # cell-centered trilinear interpolation is exact on affine fields
        nc = 4
        cl = Level(nc, 2)
        coarse = cl.cell_centers()[..., 0] + 2 * cl.cell_centers()[..., 1]
        fl = Level(2 * nc, 2)
        fine_exact = fl.cell_centers()[..., 0] + 2 * fl.cell_centers()[..., 1]
        group = interpolation_linear_group(2, add=False)
        got = run_group(
            group, {"coarse_x": coarse, "x": np.zeros(fl.shape)}
        )
        np.testing.assert_allclose(
            got["x"][1:-1, 1:-1], fine_exact[1:-1, 1:-1], atol=1e-12
        )

    def test_restriction_adjoint_scaling(self, rng):
        # <R f, c> = (1/2^d) <f, P c> for PC interpolation / averaging
        nc = 4
        f = np.zeros((2 * nc + 2,) * 2)
        f[1:-1, 1:-1] = rng.random((2 * nc, 2 * nc))
        c = np.zeros((nc + 2,) * 2)
        c[1:-1, 1:-1] = rng.random((nc, nc))
        Rf = run_group(
            restriction_stencil(2), {"res": f, "coarse_rhs": np.zeros_like(c)}
        )["coarse_rhs"]
        Pc = run_group(
            interpolation_pc_group(2, add=False),
            {"coarse_x": c, "x": np.zeros_like(f)},
        )["x"]
        lhs = np.sum(Rf[1:-1, 1:-1] * c[1:-1, 1:-1])
        rhs = np.sum(f[1:-1, 1:-1] * Pc[1:-1, 1:-1]) / 4.0
        assert lhs == pytest.approx(rhs)
