"""Stencil / StencilGroup / OutputMap semantics."""

import numpy as np
import pytest

from repro.core.components import Component
from repro.core.domains import RectDomain
from repro.core.expr import GridRead, Param
from repro.core.stencil import OutputMap, Stencil, StencilGroup
from repro.core.weights import WeightArray

INTERIOR = RectDomain((1, 1), (-1, -1))
LAP = Component("u", WeightArray([[0, 1, 0], [1, -4, 1], [0, 1, 0]]))


class TestOutputMap:
    def test_identity(self):
        om = OutputMap((1, 1), (0, 0))
        assert om.is_identity()
        assert om.apply((3, 4)) == (3, 4)

    def test_scaled(self):
        om = OutputMap((2, 2), (-1, 0))
        assert not om.is_identity()
        assert om.apply((3, 4)) == (5, 8)

    def test_scalar_broadcast_needs_ndim(self):
        with pytest.raises(ValueError):
            OutputMap(2, 0)
        om = OutputMap(2, 0, ndim=3)
        assert om.scale == (2, 2, 2)

    def test_nonpositive_scale_rejected(self):
        with pytest.raises(ValueError):
            OutputMap((0, 1), (0, 0))

    def test_equality(self):
        assert OutputMap((2,), (1,)) == OutputMap((2,), (1,))


class TestStencilConstruction:
    def test_canonical_order(self):
        s = Stencil(LAP, "out", INTERIOR)
        assert s.output == "out"

    def test_paper_swapped_order_accepted(self):
        # Fig.4 line 16 writes Stencil("mesh", Component(...), domain)
        s = Stencil("out", LAP, INTERIOR)
        assert s.output == "out"
        assert s.body == LAP

    def test_output_must_be_string(self):
        with pytest.raises(TypeError):
            Stencil(LAP, LAP, INTERIOR)

    def test_dimension_mismatch_body_vs_domain(self):
        with pytest.raises(ValueError):
            Stencil(LAP, "out", RectDomain((1,), (-1,)))

    def test_output_map_dim_checked(self):
        with pytest.raises(ValueError):
            Stencil(LAP, "out", INTERIOR, output_map=OutputMap((2,), (0,)))

    def test_iteration_grid_must_be_string(self):
        with pytest.raises(TypeError):
            Stencil(LAP, "out", INTERIOR, iteration_grid=3)


class TestStencilQueries:
    def test_grids_includes_output(self):
        s = Stencil(LAP, "out", INTERIOR)
        assert s.grids() == {"u", "out"}
        assert s.input_grids() == {"u"}

    def test_inplace_detection(self):
        assert Stencil(LAP, "u", INTERIOR).is_inplace()
        assert not Stencil(LAP, "out", INTERIOR).is_inplace()

    def test_params(self):
        s = Stencil(Param("w") * LAP, "out", INTERIOR)
        assert s.params() == {"w"}

    def test_equality_and_hash(self):
        a = Stencil(LAP, "out", INTERIOR)
        b = Stencil(LAP, "out", INTERIOR)
        assert a == b and hash(a) == hash(b)
        assert a != Stencil(LAP, "u", INTERIOR)

    def test_signature_includes_iteration_grid(self):
        s = Stencil(LAP, "out", INTERIOR, iteration_grid="u")
        assert "@u" in s.signature()


class TestStencilGroup:
    def _two(self):
        return (
            Stencil(LAP, "a", INTERIOR, name="s1"),
            Stencil(Component("a", WeightArray([[1]])), "b", INTERIOR, name="s2"),
        )

    def test_iteration_len_index(self):
        g = StencilGroup(self._two())
        assert len(g) == 2
        assert g[0].name == "s1"
        assert [s.name for s in g] == ["s1", "s2"]

    def test_empty_rejected(self):
        with pytest.raises(ValueError):
            StencilGroup([])

    def test_type_checked(self):
        with pytest.raises(TypeError):
            StencilGroup([LAP])

    def test_ndim_consistency(self):
        s1 = Stencil(LAP, "a", INTERIOR)
        s2 = Stencil(Component("u", WeightArray([1])), "b", RectDomain((1,), (-1,)))
        with pytest.raises(ValueError):
            StencilGroup([s1, s2])

    def test_concatenation(self):
        s1, s2 = self._two()
        g = StencilGroup([s1]) + s2
        assert len(g) == 2
        g2 = g + StencilGroup([s1])
        assert len(g2) == 3

    def test_grids_and_params_union(self):
        s1, s2 = self._two()
        g = StencilGroup([s1, s2])
        assert g.grids() == {"u", "a", "b"}


class TestCompileEntryPoints:
    def test_stencil_compile_returns_callable(self, rng):
        s = Stencil(LAP, "out", INTERIOR)
        k = s.compile(backend="numpy")
        u = rng.random((8, 8))
        out = np.zeros((8, 8))
        k(u=u, out=out)
        manual = (
            u[:-2, 1:-1] + u[2:, 1:-1] + u[1:-1, :-2] + u[1:-1, 2:]
            - 4 * u[1:-1, 1:-1]
        )
        np.testing.assert_allclose(out[1:-1, 1:-1], manual)

    def test_unknown_backend(self):
        s = Stencil(LAP, "out", INTERIOR)
        with pytest.raises(KeyError):
            s.compile(backend="fortran-2077")

    def test_shape_specialization_cached(self, rng):
        s = Stencil(LAP, "out", INTERIOR)
        k = s.compile(backend="numpy")
        for shape in ((8, 8), (8, 8), (10, 10)):
            k(u=rng.random(shape), out=np.zeros(shape))
        assert k.specializations == 2

    def test_unexpected_kwarg_rejected(self, rng):
        s = Stencil(LAP, "out", INTERIOR)
        k = s.compile(backend="numpy")
        with pytest.raises(TypeError):
            k(u=rng.random((8, 8)), out=np.zeros((8, 8)), bogus=1)

    def test_missing_grid_rejected(self, rng):
        from repro.core.validate import ValidationError

        s = Stencil(LAP, "out", INTERIOR)
        k = s.compile(backend="numpy")
        with pytest.raises(ValidationError):
            k(u=rng.random((8, 8)))

    def test_missing_param_rejected(self, rng):
        from repro.core.validate import ValidationError

        s = Stencil(Param("w") * LAP, "out", INTERIOR)
        k = s.compile(backend="numpy")
        with pytest.raises(ValidationError):
            k(u=rng.random((8, 8)), out=np.zeros((8, 8)))

    def test_param_passed_through(self, rng):
        s = Stencil(Param("w") * Component("u", WeightArray([[1]])), "out", INTERIOR)
        k = s.compile(backend="numpy")
        u = rng.random((6, 6))
        out = np.zeros((6, 6))
        k(u=u, out=out, w=2.5)
        np.testing.assert_allclose(out[1:-1, 1:-1], 2.5 * u[1:-1, 1:-1])
