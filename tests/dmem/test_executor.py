"""Distributed execution equals single-node execution, exactly."""

import numpy as np
import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.core.components import Component
from repro.core.domains import RectDomain
from repro.core.stencil import OutputMap, Stencil, StencilGroup
from repro.core.weights import SparseArray, WeightArray
from repro.dmem import BlockDecomposition, DistributedKernel
from repro.hpgmg.operators import (
    boundary_stencils,
    restriction_stencil,
    smooth_group,
    vc_laplacian,
)

INTERIOR = RectDomain((1, 1), (-1, -1))
LAP = Component("u", WeightArray([[0, 1, 0], [1, -4, 1], [0, 1, 0]]))


class TestBlockDecomposition:
    def test_even_split(self):
        d = BlockDecomposition(16, 4, halo=1)
        assert [(s.own_lo, s.own_hi) for s in d.slabs] == [
            (0, 4), (4, 8), (8, 12), (12, 16)
        ]

    def test_uneven_split_front_loads(self):
        d = BlockDecomposition(10, 3, halo=0)
        assert [(s.own_lo, s.own_hi) for s in d.slabs] == [
            (0, 4), (4, 7), (7, 10)
        ]

    def test_halo_clipped_at_ends(self):
        d = BlockDecomposition(16, 4, halo=2)
        assert d.slabs[0].base == 0
        assert d.slabs[0].stop == 6
        assert d.slabs[1].base == 2
        assert d.slabs[-1].stop == 16

    def test_scatter_gather_roundtrip(self, rng):
        d = BlockDecomposition(12, 3, halo=1)
        g = rng.random((12, 5))
        out = np.zeros_like(g)
        for r in range(3):
            local = d.scatter(r, g)
            d.gather_into(r, local, out)
        np.testing.assert_array_equal(out, g)

    def test_owner_of(self):
        d = BlockDecomposition(8, 2, halo=1)
        assert d.owner_of(0) == 0
        assert d.owner_of(7) == 1
        with pytest.raises(IndexError):
            d.owner_of(8)

    def test_validation(self):
        with pytest.raises(ValueError):
            BlockDecomposition(2, 4, halo=0)
        with pytest.raises(ValueError):
            BlockDecomposition(8, 0, halo=0)
        with pytest.raises(ValueError):
            BlockDecomposition(8, 2, halo=-1)


def run_both(group, shape, nranks, rng, backend="c"):
    base = {g: rng.random(shape) for g in group.grids()}
    ref = {k: v.copy() for k, v in base.items()}
    group.compile(backend=backend)(**ref)
    got = {k: v.copy() for k, v in base.items()}
    dk = DistributedKernel(group, shape, nranks, backend=backend)
    dk(**got)
    return ref, got, dk


class TestDistributedEqualsLocal:
    @pytest.mark.parametrize("nranks", [1, 2, 3, 5])
    def test_laplacian(self, nranks, rng):
        g = StencilGroup([Stencil(LAP, "out", INTERIOR)])
        ref, got, _ = run_both(g, (20, 20), nranks, rng)
        np.testing.assert_allclose(got["out"], ref["out"], atol=1e-14)

    @pytest.mark.parametrize("nranks", [2, 4])
    def test_gsrb_smoother_with_boundaries(self, nranks, rng):
        group = smooth_group(2, vc_laplacian(2, 1 / 30), lam="lam")
        shape = (32, 32)
        base = {g: rng.random(shape) for g in group.grids()}
        base["lam"] = 0.01 + 0.001 * rng.random(shape)
        ref = {k: v.copy() for k, v in base.items()}
        group.compile(backend="c")(**ref)
        got = {k: v.copy() for k, v in base.items()}
        DistributedKernel(group, shape, nranks, backend="c")(**got)
        np.testing.assert_allclose(got["x"], ref["x"], atol=1e-13)

    def test_3d(self, rng):
        from repro.hpgmg.operators import cc_laplacian, interior

        s = Stencil(cc_laplacian(3, 0.1, grid="u"), "out", interior(3))
        g = StencilGroup([s])
        ref, got, _ = run_both(g, (12, 12, 12), 3, rng)
        np.testing.assert_allclose(got["out"], ref["out"], rtol=1e-13)

    def test_sequential_chain_across_stencils(self, rng):
        # second stencil reads what the first wrote across rank borders
        s1 = Stencil(LAP, "a", INTERIOR, name="s1")
        s2 = Stencil(Component("a", WeightArray([[0, 1, 0], [1, 0, 1], [0, 1, 0]])),
                     "b", RectDomain((2, 2), (-2, -2)), name="s2")
        g = StencilGroup([s1, s2])
        ref, got, dk = run_both(g, (24, 24), 4, rng)
        np.testing.assert_allclose(got["b"], ref["b"], atol=1e-14)
        assert dk.comm_stats.messages > 0  # the exchange actually happened

    def test_wide_offset_needs_wide_halo(self, rng):
        body = Component("u", SparseArray({(0, 0): 1.0, (-2, 0): 0.5, (2, 1): 0.25}))
        s = Stencil(body, "out", RectDomain((2, 2), (-2, -2)))
        g = StencilGroup([s])
        dk_probe = DistributedKernel(g, (24, 24), 2)
        assert dk_probe.halo == 2
        ref, got, _ = run_both(g, (24, 24), 3, rng)
        np.testing.assert_allclose(got["out"], ref["out"], atol=1e-14)

    def test_inplace_hazard_distributed(self, rng):
        # gather-semantics snapshot happens per rank; halo rows carry the
        # pre-stencil neighbour values, so results match single node.
        blur = Component("u", WeightArray([[0, 0.25, 0], [0.25, 0, 0.25],
                                           [0, 0.25, 0]]))
        s = Stencil(blur, "u", INTERIOR)
        g = StencilGroup([s])
        ref, got, _ = run_both(g, (16, 16), 2, rng)
        np.testing.assert_allclose(got["u"], ref["u"], atol=1e-14)

    @settings(max_examples=10, deadline=None)
    @given(nranks=st.integers(1, 4), seed=st.integers(0, 99))
    def test_property_random_ranks(self, nranks, seed):
        rng = np.random.default_rng(seed)
        g = StencilGroup(boundary_stencils(2, "u") + [
            Stencil(LAP, "u" if seed % 2 else "out", INTERIOR)
        ])
        ref, got, _ = run_both(g, (16, 16), nranks, rng)
        for k in ref:
            np.testing.assert_allclose(got[k], ref[k], atol=1e-13)


class TestRestrictionsAndErrors:
    def test_scaled_output_map_rejected(self):
        s = Stencil(
            Component("c", WeightArray([[1]])), "f", INTERIOR,
            output_map=OutputMap((2, 2), (0, 0)),
        )
        with pytest.raises(ValueError, match="output maps"):
            DistributedKernel(StencilGroup([s]), (16, 16), 2)

    def test_scaled_dim0_read_rejected(self):
        with pytest.raises(ValueError, match="scale"):
            DistributedKernel(
                StencilGroup([restriction_stencil(2)]), (16, 16), 2
            )

    def test_too_many_ranks_for_halo(self):
        wide = Component("u", SparseArray({(0, 0): 1.0, (2, 0): 1.0, (-2, 0): 1.0}))
        g = StencilGroup([Stencil(wide, "out", RectDomain((2, 2), (-2, -2)))])
        with pytest.raises(ValueError, match="fewer"):
            DistributedKernel(g, (8, 8), 8)  # 1 row each < halo 2

    def test_missing_grid_at_call(self, rng):
        g = StencilGroup([Stencil(LAP, "out", INTERIOR)])
        dk = DistributedKernel(g, (16, 16), 2)
        with pytest.raises(TypeError, match="missing"):
            dk(u=rng.random((16, 16)))

    def test_wrong_shape_at_call(self, rng):
        g = StencilGroup([Stencil(LAP, "out", INTERIOR)])
        dk = DistributedKernel(g, (16, 16), 2)
        with pytest.raises(ValueError, match="shape"):
            dk(u=rng.random((8, 8)), out=np.zeros((8, 8)))


class TestCommVolume:
    def test_messages_scale_with_ranks_and_stencils(self, rng):
        group = smooth_group(2, vc_laplacian(2, 1 / 30), lam="lam")
        shape = (32, 32)
        arrays = {g: rng.random(shape) for g in group.grids()}
        arrays["lam"] = 0.01 * np.ones(shape)
        counts = {}
        for nranks in (2, 4):
            dk = DistributedKernel(group, shape, nranks)
            dk(**{k: v.copy() for k, v in arrays.items()})
            counts[nranks] = dk.comm_stats.messages
        # messages grow linearly in the number of rank interfaces
        assert counts[4] == 3 * counts[2]


class TestPersistentMode:
    def test_scatter_run_gather_equals_repeated_calls(self, rng):
        group = smooth_group(2, vc_laplacian(2, 1 / 30), lam="lam")
        shape = (32, 32)
        base = {g: rng.random(shape) for g in group.grids()}
        base["lam"] = 0.01 * np.ones(shape)

        # reference: 3 sequential single-node applications
        ref = {k: v.copy() for k, v in base.items()}
        kernel = group.compile(backend="c")
        for _ in range(3):
            kernel(**ref)

        dk = DistributedKernel(group, shape, 3, backend="c")
        got = {k: v.copy() for k, v in base.items()}
        dk.scatter(**got)
        dk.run(times=3)
        dk.gather(**got)
        np.testing.assert_allclose(got["x"], ref["x"], atol=1e-13)

    def test_run_before_scatter_rejected(self):
        g = StencilGroup([Stencil(LAP, "out", INTERIOR)])
        dk = DistributedKernel(g, (16, 16), 2)
        with pytest.raises(RuntimeError, match="scatter"):
            dk.run()
        with pytest.raises(RuntimeError, match="scatter"):
            dk.gather(out=np.zeros((16, 16)))

    def test_gather_requires_output_grids(self, rng):
        g = StencilGroup([Stencil(LAP, "out", INTERIOR)])
        dk = DistributedKernel(g, (16, 16), 2)
        dk.scatter(u=rng.random((16, 16)), out=np.zeros((16, 16)))
        dk.run()
        with pytest.raises(TypeError, match="output grid"):
            dk.gather(u=np.zeros((16, 16)))

    def test_persistent_avoids_rescatter_traffic(self, rng):
        # run(times=3) exchanges halos 3x but never re-scatters; the
        # message count should be exactly 3x the single-run count.
        group = smooth_group(2, vc_laplacian(2, 1 / 30), lam="lam")
        shape = (32, 32)
        arrays = {g: rng.random(shape) for g in group.grids()}
        arrays["lam"] = 0.01 * np.ones(shape)
        dk = DistributedKernel(group, shape, 2, backend="c")
        dk.scatter(**arrays)
        dk.run()
        one = dk.comm_stats.messages
        dk.run(times=3)
        assert dk.comm_stats.messages == 4 * one
