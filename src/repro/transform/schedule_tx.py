"""Schedule transforms: legality-checked rewrites of the schedule IR.

Each transform here takes a :class:`~repro.schedule.ir.Schedule` and
returns a new one; :func:`verify_schedule` re-validates every result
against the Diophantine/dependence evidence the lowering stage produced
(the :class:`~repro.analysis.dag.ExecutionPlan` edge set, the
intra-stencil hazard lattices, the parity-class recognition and the
time-tile verdict).  :class:`~repro.transform.base.Transform.__call__`
runs the verifier after every application, so an illegal composition
raises :class:`~repro.transform.base.TransformError` carrying the
refusing :class:`~repro.schedule.ir.Evidence` instead of producing a
schedule the backends would execute wrongly.

The lowercase factories (``fuse``, ``split``, ``tile``, ...) are the
public spelling; ``repro.transform.preset.preset_pipeline`` renders a
:class:`~repro.schedule.ScheduleOptions` record as a pipeline of these.
"""

from __future__ import annotations

from dataclasses import replace

from ..analysis.dependence import intra_stencil_hazards
from ..schedule.ir import Evidence, Schedule, SchedulePhase
from ..schedule.lower import (
    _make_step,
    _plan_time_tile,
    _sweep_verdict,
    fusion_chains,
    time_tile_verdict,
)
from .base import Transform, TransformError

__all__ = [
    "verify_schedule",
    "Fuse",
    "Distribute",
    "Split",
    "Reorder",
    "ColorSweep",
    "Tile",
    "Block",
    "Unroll",
    "TimeTile",
    "fuse",
    "distribute",
    "split",
    "reorder",
    "color_sweep",
    "tile",
    "block",
    "unroll",
    "time_tile",
]


# ---------------------------------------------------------------------------
# the verifier: every transform result is checked against the evidence
# ---------------------------------------------------------------------------


def verify_schedule(sched: Schedule) -> list[Evidence]:
    """Re-validate a schedule against its group's dependence evidence.

    Returns a list of refusing :class:`Evidence` (empty == legal).
    Checks, in order: coverage (every stencil exactly once), barrier
    ordering (no dependence edge within or across phases the wrong
    way), fused-step legality (shared domain/output map, snapshot-free,
    no RAW/WAW among members), snapshot/parallel flag correctness
    against the hazard lattices, sweep correctness against parity-class
    recognition, and — when a time tile is attached — the time-tile
    verdict including slope staleness.
    """
    problems: list[Evidence] = []
    group = sched.group
    norm = dict(sched.shapes)
    exec_plan = sched.plan
    n = len(group)

    # coverage: each group index exactly once
    seen: dict[int, int] = {}
    for ph in sched.phases:
        for s in ph.steps:
            for i in s.stencils:
                seen[i] = seen.get(i, 0) + 1
    missing = sorted(i for i in range(n) if i not in seen)
    dup = sorted(i for i, c in seen.items() if c > 1)
    extra = sorted(i for i in seen if not 0 <= i < n)
    if missing:
        problems.append(
            Evidence(
                "coverage-refused",
                f"stencil indices {missing} are executed by no step",
            )
        )
    if dup:
        problems.append(
            Evidence(
                "coverage-refused",
                f"stencil indices {dup} appear in more than one step",
            )
        )
    if extra:
        problems.append(
            Evidence(
                "coverage-refused",
                f"step indices {extra} do not name stencils of group "
                f"{group.name!r} (size {n})",
            )
        )
    if problems:
        return problems  # downstream checks assume a sane index map

    phase_of: dict[int, int] = {}
    step_of: dict[int, object] = {}
    for pi, ph in enumerate(sched.phases):
        for s in ph.steps:
            for i in s.stencils:
                phase_of[i] = pi
                step_of[i] = s

    # barrier ordering: a dependence edge (i, j) must cross a barrier
    # (steps of one phase may run concurrently), unless both ends share
    # a fused step — where only RAW/WAW is illegal (the fusion rule).
    for (i, j), kinds in sorted(exec_plan.dependences.items()):
        if i not in step_of or j not in step_of:
            continue
        if step_of[i] is step_of[j]:
            bad = {"RAW", "WAW"} & set(kinds)
            if bad:
                problems.append(
                    Evidence(
                        "fuse-refused",
                        f"{group[i].name} and {group[j].name} share a "
                        f"fused step but carry {sorted(bad)} dependence "
                        "(lattice intersection)",
                    )
                )
        elif phase_of[i] >= phase_of[j]:
            problems.append(
                Evidence(
                    "order-refused",
                    f"dependence {group[i].name} -> {group[j].name} "
                    f"({sorted(kinds)}) requires a barrier between "
                    f"them, but they sit in phases {phase_of[i]} and "
                    f"{phase_of[j]}",
                )
            )

    # per-step flags against the hazard lattices + sweep recognition
    hazards = [intra_stencil_hazards(s, norm) for s in group]
    for ph in sched.phases:
        for s in ph.steps:
            names = ", ".join(group[i].name for i in s.stencils)
            expect_par = all(not hazards[i] for i in s.stencils)
            if s.parallel != expect_par:
                problems.append(
                    Evidence(
                        "parallel-refused",
                        f"step [{names}] is marked "
                        f"{'parallel' if s.parallel else 'serialized'} "
                        "but the hazard lattices say "
                        f"{'parallel' if expect_par else 'serialized'}",
                    )
                )
            expect_snap = (
                len(s.stencils) == 1
                and group[s.head].is_inplace()
                and bool(hazards[s.head])
            )
            if s.snapshot != expect_snap:
                problems.append(
                    Evidence(
                        "snapshot-refused",
                        f"step [{names}] snapshot flag is {s.snapshot} "
                        f"but the hazard analysis requires {expect_snap}",
                    )
                )
            if s.fused:
                head = group[s.head]
                for j in s.stencils[1:]:
                    if (
                        group[j].domain != head.domain
                        or group[j].output_map != head.output_map
                    ):
                        problems.append(
                            Evidence(
                                "fuse-refused",
                                f"fused step members {head.name} and "
                                f"{group[j].name} differ in domain or "
                                "output map",
                            )
                        )
                snapshot_members = [
                    group[i].name
                    for i in s.stencils
                    if group[i].is_inplace() and hazards[i]
                ]
                if snapshot_members:
                    problems.append(
                        Evidence(
                            "fuse-refused",
                            f"fused step [{names}] contains members "
                            f"needing a gather snapshot: "
                            f"{snapshot_members}",
                        )
                    )
            if s.sweep is not None:
                want, _ = _sweep_verdict(group, norm, s.head)
                if want != s.sweep:
                    problems.append(
                        Evidence(
                            "multicolor-refused",
                            f"step [{names}] claims a parity-class "
                            "sweep the domain union does not form",
                        )
                    )

    if sched.time_tile is not None:
        steps = list(sched.steps())
        slope, _, refusals = time_tile_verdict(group, norm, steps)
        problems.extend(refusals)
        if not refusals and slope != sched.time_tile.slope:
            problems.append(
                Evidence(
                    "time-tile-refused",
                    f"attached time tile assumes wavefront slope "
                    f"{sched.time_tile.slope} but the current steps "
                    f"prove slope {slope}; re-plan the tile after "
                    "restructuring",
                )
            )
    return problems


# ---------------------------------------------------------------------------
# structural transforms
# ---------------------------------------------------------------------------


class Fuse(Transform):
    """Fuse same-phase chains of independent stencils into single steps.

    ``chains=None`` (the default) fuses exactly what
    :func:`~repro.schedule.lower.fusion_chains` proves legal — the
    preset behaviour of ``ScheduleOptions(fuse=True)``.  Explicit
    ``chains`` (sequences of group indices) are validated against the
    same rules and refused with ``fuse-refused`` evidence on any
    violation: barrier straddle, domain/output-map mismatch, snapshot
    member, or RAW/WAW among members.
    """

    name = "fuse"

    def __init__(self, chains=None) -> None:
        self.chains = (
            None
            if chains is None
            else tuple(tuple(int(i) for i in c) for c in chains)
        )

    def describe(self) -> str:
        if self.chains is None:
            return "fuse()"
        return f"fuse({[list(c) for c in self.chains]})"

    def apply_schedule(self, sched: Schedule) -> Schedule:
        group = sched.group
        norm = dict(sched.shapes)
        exec_plan = sched.plan
        hazards = [intra_stencil_hazards(s, norm) for s in group]
        opts = replace(sched.options, fuse=True)
        if self.chains is None:
            chains = fusion_chains(
                group, norm, deps=exec_plan.dependences,
                within=exec_plan.phases,
            )
        else:
            chains = [list(c) for c in self.chains]
            problems = _check_chains(group, norm, exec_plan, hazards, chains)
            if problems:
                raise TransformError(
                    f"{self.describe()} is illegal: "
                    + "; ".join(str(p) for p in problems),
                    refusals=tuple(problems),
                )
        chain_of_head = {c[0]: c for c in chains}
        phases: list[SchedulePhase] = []
        for pi, phase in enumerate(exec_plan.phases):
            steps = []
            emitted: set[int] = set()
            for si in phase:
                if si in emitted:
                    continue
                chain = chain_of_head.get(si, [si])
                emitted.update(chain)
                steps.append(_make_step(group, norm, chain, hazards, opts))
            phases.append(SchedulePhase(pi, tuple(steps)))
        return replace(sched, options=opts, phases=tuple(phases))


def _check_chains(group, norm, exec_plan, hazards, chains) -> list[Evidence]:
    """Validate explicit fusion chains; returns refusing evidence."""
    problems: list[Evidence] = []
    phase_of = {
        i: pi for pi, ph in enumerate(exec_plan.phases) for i in ph
    }
    deps = exec_plan.dependences
    taken: set[int] = set()
    for c in chains:
        if not c:
            problems.append(Evidence("fuse-refused", "empty chain"))
            continue
        if any(not 0 <= i < len(group) for i in c):
            problems.append(
                Evidence(
                    "fuse-refused",
                    f"chain {list(c)} names stencils outside group "
                    f"{group.name!r} (size {len(group)})",
                )
            )
            continue
        overlap = sorted(set(c) & taken)
        if overlap:
            problems.append(
                Evidence(
                    "fuse-refused",
                    f"chain {list(c)} overlaps another chain on "
                    f"indices {overlap}",
                )
            )
        taken.update(c)
        if list(c) != sorted(set(c)):
            problems.append(
                Evidence(
                    "fuse-refused",
                    f"chain {list(c)} is not strictly increasing "
                    "program order",
                )
            )
            continue
        chain_phases = sorted({phase_of[i] for i in c})
        if len(chain_phases) > 1:
            problems.append(
                Evidence(
                    "fuse-refused",
                    f"chain {list(c)} straddles a barrier: members "
                    f"span phases {chain_phases}",
                )
            )
        head = group[c[0]]
        for j in c[1:]:
            if group[j].domain != head.domain:
                problems.append(
                    Evidence(
                        "fuse-refused",
                        f"{group[j].name} and {head.name} iterate "
                        "different domains",
                    )
                )
            if group[j].output_map != head.output_map:
                problems.append(
                    Evidence(
                        "fuse-refused",
                        f"{group[j].name} and {head.name} write through "
                        "different output maps",
                    )
                )
        for i in c:
            if group[i].is_inplace() and hazards[i]:
                problems.append(
                    Evidence(
                        "fuse-refused",
                        f"{group[i].name} needs a gather snapshot "
                        "(loop-carried hazard); fused chains must be "
                        "snapshot-free",
                    )
                )
        for a in range(len(c)):
            for b in range(a + 1, len(c)):
                bad = {"RAW", "WAW"} & set(deps.get((c[a], c[b]), ()))
                if bad:
                    problems.append(
                        Evidence(
                            "fuse-refused",
                            f"{group[c[a]].name} -> {group[c[b]].name} "
                            f"carries {sorted(bad)} dependence (lattice "
                            "intersection); members must be independent",
                        )
                    )
    return problems


class Distribute(Transform):
    """Undo fusion: every step becomes a run of singleton steps."""

    name = "distribute"

    def apply_schedule(self, sched: Schedule) -> Schedule:
        group = sched.group
        norm = dict(sched.shapes)
        hazards = [intra_stencil_hazards(s, norm) for s in group]
        opts = replace(sched.options, fuse=False)
        phases: list[SchedulePhase] = []
        for ph in sched.phases:
            steps = []
            for s in ph.steps:
                for i in s.stencils:
                    steps.append(_make_step(group, norm, [i], hazards, opts))
            phases.append(SchedulePhase(ph.index, tuple(steps)))
        return replace(sched, options=opts, phases=tuple(phases))


class Split(Transform):
    """Split one fused step into two at a chain position.

    ``step_index`` is the flat step ordinal (over
    :meth:`~repro.schedule.ir.Schedule.steps`); ``at`` is the chain
    position the second half starts at (``1 <= at < len(chain)``).
    Splitting a singleton, or at an out-of-range position, is refused
    with ``split-refused`` evidence.
    """

    name = "split"

    def __init__(self, step_index: int, at: int) -> None:
        self.step_index = int(step_index)
        self.at = int(at)

    def describe(self) -> str:
        return f"split({self.step_index}, {self.at})"

    def apply_schedule(self, sched: Schedule) -> Schedule:
        flat = list(sched.steps())
        if not 0 <= self.step_index < len(flat):
            raise TransformError(
                f"{self.describe()}: no such step",
                evidence=Evidence(
                    "split-refused",
                    f"step index {self.step_index} out of range "
                    f"(schedule has {len(flat)} steps)",
                ),
            )
        target = flat[self.step_index]
        names = ", ".join(sched.group[i].name for i in target.stencils)
        if len(target.stencils) < 2:
            raise TransformError(
                f"{self.describe()}: step [{names}] is a singleton",
                evidence=Evidence(
                    "split-refused",
                    f"step [{names}] holds one stencil; nothing to split",
                ),
            )
        if not 1 <= self.at < len(target.stencils):
            raise TransformError(
                f"{self.describe()}: split point out of range",
                evidence=Evidence(
                    "split-refused",
                    f"split point {self.at} outside "
                    f"1..{len(target.stencils) - 1} for step [{names}]",
                ),
            )
        group = sched.group
        norm = dict(sched.shapes)
        hazards = [intra_stencil_hazards(s, norm) for s in group]
        left = _make_step(
            group, norm, list(target.stencils[: self.at]), hazards,
            sched.options,
        )
        right = _make_step(
            group, norm, list(target.stencils[self.at:]), hazards,
            sched.options,
        )
        k = 0
        phases: list[SchedulePhase] = []
        for ph in sched.phases:
            steps = []
            for s in ph.steps:
                if k == self.step_index:
                    steps.extend((left, right))
                else:
                    steps.append(s)
                k += 1
            phases.append(SchedulePhase(ph.index, tuple(steps)))
        return replace(sched, phases=tuple(phases))


class Reorder(Transform):
    """Permute the steps of one phase (steps of a phase are unordered).

    A sequence that is not a permutation of the phase's step indices is
    refused with ``reorder-refused`` evidence; the post-verify catches
    any dependence the new order would violate (it cannot — same-phase
    steps are independent by construction — but hand-built schedules
    are re-checked all the same).
    """

    name = "reorder"

    def __init__(self, phase_index: int, permutation) -> None:
        self.phase_index = int(phase_index)
        self.permutation = tuple(int(i) for i in permutation)

    def describe(self) -> str:
        return f"reorder({self.phase_index}, {list(self.permutation)})"

    def apply_schedule(self, sched: Schedule) -> Schedule:
        if not 0 <= self.phase_index < len(sched.phases):
            raise TransformError(
                f"{self.describe()}: no such phase",
                evidence=Evidence(
                    "reorder-refused",
                    f"phase index {self.phase_index} out of range "
                    f"(schedule has {len(sched.phases)} phases)",
                ),
            )
        ph = sched.phases[self.phase_index]
        if sorted(self.permutation) != list(range(len(ph.steps))):
            raise TransformError(
                f"{self.describe()}: not a permutation",
                evidence=Evidence(
                    "reorder-refused",
                    f"{list(self.permutation)} is not a permutation of "
                    f"0..{len(ph.steps) - 1} (phase {self.phase_index} "
                    f"has {len(ph.steps)} steps)",
                ),
            )
        steps = tuple(ph.steps[i] for i in self.permutation)
        phases = list(sched.phases)
        phases[self.phase_index] = SchedulePhase(ph.index, steps)
        return replace(sched, phases=tuple(phases))


class ColorSweep(Transform):
    """Recognize checkerboard domain unions as parity-class sweeps.

    Steps whose domain union is not a parity class pass through
    untouched — recognition is opportunistic, exactly as
    ``ScheduleOptions(multicolor=True)`` behaves.
    """

    name = "color_sweep"

    def apply_schedule(self, sched: Schedule) -> Schedule:
        group = sched.group
        norm = dict(sched.shapes)
        opts = replace(sched.options, multicolor=True)
        phases: list[SchedulePhase] = []
        for ph in sched.phases:
            steps = []
            for s in ph.steps:
                if s.sweep is None:
                    sweep, ev = _sweep_verdict(group, norm, s.head)
                    if sweep is not None:
                        s = replace(
                            s, sweep=sweep, evidence=s.evidence + (ev,)
                        )
                steps.append(s)
            phases.append(SchedulePhase(ph.index, tuple(steps)))
        return replace(sched, options=opts, phases=tuple(phases))


# ---------------------------------------------------------------------------
# knob transforms (rewrite the options record; backends read it)
# ---------------------------------------------------------------------------


class _Knob(Transform):
    """Base for option-field transforms; validation errors become typed."""

    field = ""

    def __init__(self, value) -> None:
        self.value = value

    def describe(self) -> str:
        return f"{self.name}({self.value!r})"

    def apply_schedule(self, sched: Schedule) -> Schedule:
        try:
            opts = replace(sched.options, **{self.field: self.value})
        except ValueError as e:
            raise TransformError(
                f"{self.describe()}: {e}",
                evidence=Evidence(f"{self.name}-refused", str(e)),
            ) from e
        return replace(sched, options=opts)


class Tile(_Knob):
    """Cache-block / task-granularity size on the outermost free loop."""

    name = "tile"
    field = "tile"

    def describe(self) -> str:
        return f"tile({self.value})"


class Block(_Knob):
    """2-D thread-block shape for the CUDA target."""

    name = "block"
    field = "block"

    def describe(self) -> str:
        b = self.value
        try:
            return f"block(({int(b[0])}, {int(b[1])}))"
        except (TypeError, ValueError, IndexError):
            return f"block({b!r})"


class Unroll(_Knob):
    """Innermost-loop unroll factor hint for the C-family targets."""

    name = "unroll"
    field = "unroll"

    def describe(self) -> str:
        return f"unroll({self.value})"


class TimeTile(Transform):
    """Temporal blocking: fuse ``k`` group applications into one call.

    Legalized by :func:`~repro.schedule.lower.time_tile_verdict`; a
    schedule whose steps need per-application snapshots, write through
    scaled maps, or read unbounded (wrap-around) footprints refuses with
    the full ``time-tile-refused`` evidence list.  ``k = 1`` removes an
    attached tile.
    """

    name = "time_tile"

    def __init__(self, k: int) -> None:
        self.k = int(k)

    def describe(self) -> str:
        return f"time_tile({self.k})"

    def apply_schedule(self, sched: Schedule) -> Schedule:
        try:
            opts = replace(sched.options, time_tile=self.k)
        except ValueError as e:
            raise TransformError(
                f"{self.describe()}: {e}",
                evidence=Evidence("time-tile-refused", str(e)),
            ) from e
        if self.k <= 1:
            return replace(sched, options=opts, time_tile=None)
        tt = _plan_time_tile(
            sched.group, dict(sched.shapes), sched.phases, self.k
        )
        return replace(sched, options=opts, time_tile=tt)


# ---------------------------------------------------------------------------
# factories (the public spelling)
# ---------------------------------------------------------------------------


def fuse(chains=None) -> Fuse:
    return Fuse(chains)


def distribute() -> Distribute:
    return Distribute()


def split(step_index: int, at: int) -> Split:
    return Split(step_index, at)


def reorder(phase_index: int, permutation) -> Reorder:
    return Reorder(phase_index, permutation)


def color_sweep() -> ColorSweep:
    return ColorSweep()


def tile(n: int) -> Tile:
    return Tile(n)


def block(b) -> Block:
    return Block(b)


def unroll(n: int) -> Unroll:
    return Unroll(n)


def time_tile(k: int) -> TimeTile:
    return TimeTile(k)
