"""Hand-optimized C kernels — the "HPGMG" comparator (DESIGN.md S18).

These kernels share *no* code with the DSL code generators: they are
written the way a performance engineer writes them (fused multicolor
sweeps with parity-corrected inner loops, hoisted plane pointers,
``restrict`` qualifiers, runtime sizes so one binary serves every level)
and play the role the hand-optimized HPGMG reference plays in the
paper's Figures7-9.

All kernels are 3-D double precision on ``(n+2)^3`` arrays with one
ghost cell per side, matching :class:`repro.hpgmg.level.Level`.
"""

from __future__ import annotations

import ctypes

import numpy as np

from ..backends.jit import compile_and_load

__all__ = ["BaselineKernels3D", "BASELINE_C_SOURCE"]

BASELINE_C_SOURCE = r"""
#include <stdint.h>

#define IDX(i, j, k, s) ((i)*(s)*(s) + (j)*(s) + (k))

/* Homogeneous Dirichlet ghost faces: ghost = -inner. */
void bl_bc3(double* restrict x, int64_t n)
{
    const int64_t s = n + 2;
    for (int64_t j = 1; j <= n; j++)
        for (int64_t k = 1; k <= n; k++) {
            x[IDX(0, j, k, s)]     = -x[IDX(1, j, k, s)];
            x[IDX(n + 1, j, k, s)] = -x[IDX(n, j, k, s)];
        }
    for (int64_t i = 1; i <= n; i++)
        for (int64_t k = 1; k <= n; k++) {
            x[IDX(i, 0, k, s)]     = -x[IDX(i, 1, k, s)];
            x[IDX(i, n + 1, k, s)] = -x[IDX(i, n, k, s)];
        }
    for (int64_t i = 1; i <= n; i++)
        for (int64_t j = 1; j <= n; j++) {
            x[IDX(i, j, 0, s)]     = -x[IDX(i, j, 1, s)];
            x[IDX(i, j, n + 1, s)] = -x[IDX(i, j, n, s)];
        }
}

/* Constant-coefficient 7-point Laplacian: out = (6x - neighbours)/h^2. */
void bl_cc7pt(double* restrict out, const double* restrict x,
              int64_t n, double invh2)
{
    const int64_t s = n + 2, p = s * s;
    for (int64_t i = 1; i <= n; i++)
        for (int64_t j = 1; j <= n; j++) {
            const double* row = x + IDX(i, j, 0, s);
            double* orow = out + IDX(i, j, 0, s);
            for (int64_t k = 1; k <= n; k++) {
                orow[k] = invh2 * (6.0 * row[k]
                    - row[k - 1] - row[k + 1]
                    - row[k - s] - row[k + s]
                    - row[k - p] - row[k + p]);
            }
        }
}

/* Weighted Jacobi, constant coefficients: out = x + w*lam*(rhs - A x). */
void bl_jacobi_cc(double* restrict out, const double* restrict x,
                  const double* restrict rhs, int64_t n,
                  double invh2, double wlam)
{
    const int64_t s = n + 2, p = s * s;
    for (int64_t i = 1; i <= n; i++)
        for (int64_t j = 1; j <= n; j++) {
            const double* row = x + IDX(i, j, 0, s);
            const double* brow = rhs + IDX(i, j, 0, s);
            double* orow = out + IDX(i, j, 0, s);
            for (int64_t k = 1; k <= n; k++) {
                const double Ax = invh2 * (6.0 * row[k]
                    - row[k - 1] - row[k + 1]
                    - row[k - s] - row[k + s]
                    - row[k - p] - row[k + p]);
                orow[k] = row[k] + wlam * (brow[k] - Ax);
            }
        }
}

/* Variable-coefficient GSRB half-sweep over one color (0=red, 1=black):
   x += lam * (rhs - A x) with A x = (1/h^2) * sum_d flux differences.
   Fused multicolor sweep: dense i/j loops, parity-corrected k start. */
void bl_gsrb_vc(double* restrict x, const double* restrict rhs,
                const double* restrict bx, const double* restrict by,
                const double* restrict bz, const double* restrict lam,
                int64_t n, double invh2, int color)
{
    const int64_t s = n + 2, p = s * s;
    for (int64_t i = 1; i <= n; i++)
        for (int64_t j = 1; j <= n; j++) {
            const int64_t base = IDX(i, j, 0, s);
            const double* row  = x + base;
            const double* brow = rhs + base;
            const double* lrow = lam + base;
            const double* bxr  = bx + base;   /* low-face beta in i */
            const double* byr  = by + base;   /* low-face beta in j */
            const double* bzr  = bz + base;   /* low-face beta in k */
            double* xw = x + base;
            /* color 0 (red) owns (1,1,1): k parity = (i + j + color) & 1 */
            const int64_t k0 = 1 + (int64_t)((i + j + color) & 1);
            for (int64_t k = k0; k <= n; k += 2) {
                const double Ax = invh2 * (
                      bxr[k]     * (row[k] - row[k - p])
                    + bxr[k + p] * (row[k] - row[k + p])
                    + byr[k]     * (row[k] - row[k - s])
                    + byr[k + s] * (row[k] - row[k + s])
                    + bzr[k]     * (row[k] - row[k - 1])
                    + bzr[k + 1] * (row[k] - row[k + 1]));
                xw[k] = row[k] + lrow[k] * (brow[k] - Ax);
            }
        }
}

/* Variable-coefficient residual: res = rhs - A x. */
void bl_residual_vc(double* restrict res, const double* restrict x,
                    const double* restrict rhs,
                    const double* restrict bx, const double* restrict by,
                    const double* restrict bz, int64_t n, double invh2)
{
    const int64_t s = n + 2, p = s * s;
    for (int64_t i = 1; i <= n; i++)
        for (int64_t j = 1; j <= n; j++) {
            const int64_t base = IDX(i, j, 0, s);
            const double* row  = x + base;
            const double* brow = rhs + base;
            const double* bxr  = bx + base;
            const double* byr  = by + base;
            const double* bzr  = bz + base;
            double* rrow = res + base;
            for (int64_t k = 1; k <= n; k++) {
                const double Ax = invh2 * (
                      bxr[k]     * (row[k] - row[k - p])
                    + bxr[k + p] * (row[k] - row[k + p])
                    + byr[k]     * (row[k] - row[k - s])
                    + byr[k + s] * (row[k] - row[k + s])
                    + bzr[k]     * (row[k] - row[k - 1])
                    + bzr[k + 1] * (row[k] - row[k + 1]));
                rrow[k] = brow[k] - Ax;
            }
        }
}

/* Constant-coefficient residual: res = rhs - A x. */
void bl_residual_cc(double* restrict res, const double* restrict x,
                    const double* restrict rhs, int64_t n, double invh2)
{
    const int64_t s = n + 2, p = s * s;
    for (int64_t i = 1; i <= n; i++)
        for (int64_t j = 1; j <= n; j++) {
            const double* row  = x + IDX(i, j, 0, s);
            const double* brow = rhs + IDX(i, j, 0, s);
            double* rrow = res + IDX(i, j, 0, s);
            for (int64_t k = 1; k <= n; k++) {
                const double Ax = invh2 * (6.0 * row[k]
                    - row[k - 1] - row[k + 1]
                    - row[k - s] - row[k + s]
                    - row[k - p] - row[k + p]);
                rrow[k] = brow[k] - Ax;
            }
        }
}

/* Full-weighting restriction: coarse (nc interior) from fine (2nc). */
void bl_restrict3(double* restrict coarse, const double* restrict fine,
                  int64_t nc)
{
    const int64_t sc = nc + 2;
    const int64_t sf = 2 * nc + 2, pf = sf * sf;
    for (int64_t i = 1; i <= nc; i++)
        for (int64_t j = 1; j <= nc; j++)
            for (int64_t k = 1; k <= nc; k++) {
                const int64_t f = IDX(2 * i - 1, 2 * j - 1, 2 * k - 1, sf);
                coarse[IDX(i, j, k, sc)] = 0.125 * (
                      fine[f]          + fine[f + 1]
                    + fine[f + sf]     + fine[f + sf + 1]
                    + fine[f + pf]     + fine[f + pf + 1]
                    + fine[f + pf + sf]+ fine[f + pf + sf + 1]);
            }
}

/* Piecewise-constant interpolation with correction add:
   xf[children of i] += xc[i]. */
void bl_interp_pc3(double* restrict xf, const double* restrict xc,
                   int64_t nc)
{
    const int64_t sc = nc + 2;
    const int64_t sf = 2 * nc + 2, pf = sf * sf;
    for (int64_t i = 1; i <= nc; i++)
        for (int64_t j = 1; j <= nc; j++)
            for (int64_t k = 1; k <= nc; k++) {
                const double c = xc[IDX(i, j, k, sc)];
                const int64_t f = IDX(2 * i - 1, 2 * j - 1, 2 * k - 1, sf);
                xf[f] += c;            xf[f + 1] += c;
                xf[f + sf] += c;       xf[f + sf + 1] += c;
                xf[f + pf] += c;       xf[f + pf + 1] += c;
                xf[f + pf + sf] += c;  xf[f + pf + sf + 1] += c;
            }
}
"""


def _sig(fn, *argtypes):
    fn.argtypes = list(argtypes)
    fn.restype = None
    return fn


_D = ctypes.POINTER(ctypes.c_double)


def _ptr(a: np.ndarray):
    if a.dtype != np.float64 or not a.flags["C_CONTIGUOUS"]:
        raise TypeError("baseline kernels need contiguous float64 arrays")
    return a.ctypes.data_as(_D)


class BaselineKernels3D:
    """ctypes facade over the hand-written kernels (any level size).

    One compilation serves every grid size — sizes are runtime arguments,
    the way a hand-maintained benchmark is built.
    """

    def __init__(self, openmp: bool = False) -> None:
        self._lib = compile_and_load(BASELINE_C_SOURCE, openmp=openmp)
        L = self._lib
        i64, d = ctypes.c_int64, ctypes.c_double
        self._bc = _sig(L.bl_bc3, _D, i64)
        self._cc7 = _sig(L.bl_cc7pt, _D, _D, i64, d)
        self._jac = _sig(L.bl_jacobi_cc, _D, _D, _D, i64, d, d)
        self._gsrb = _sig(
            L.bl_gsrb_vc, _D, _D, _D, _D, _D, _D, i64, d, ctypes.c_int
        )
        self._res_vc = _sig(L.bl_residual_vc, _D, _D, _D, _D, _D, _D, i64, d)
        self._res_cc = _sig(L.bl_residual_cc, _D, _D, _D, i64, d)
        self._restr = _sig(L.bl_restrict3, _D, _D, i64)
        self._interp = _sig(L.bl_interp_pc3, _D, _D, i64)

    # -- wrappers (all take numpy (n+2)^3 arrays) -----------------------------

    def bc(self, x: np.ndarray, n: int) -> None:
        self._bc(_ptr(x), n)

    def cc7pt(self, out: np.ndarray, x: np.ndarray, n: int, invh2: float) -> None:
        self._cc7(_ptr(out), _ptr(x), n, invh2)

    def jacobi_cc(
        self, out, x, rhs, n: int, invh2: float, wlam: float
    ) -> None:
        self._jac(_ptr(out), _ptr(x), _ptr(rhs), n, invh2, wlam)

    def gsrb_vc(
        self, x, rhs, bx, by, bz, lam, n: int, invh2: float, color: int
    ) -> None:
        self._gsrb(
            _ptr(x), _ptr(rhs), _ptr(bx), _ptr(by), _ptr(bz), _ptr(lam),
            n, invh2, color,
        )

    def residual_vc(self, res, x, rhs, bx, by, bz, n: int, invh2: float) -> None:
        self._res_vc(_ptr(res), _ptr(x), _ptr(rhs), _ptr(bx), _ptr(by), _ptr(bz), n, invh2)

    def residual_cc(self, res, x, rhs, n: int, invh2: float) -> None:
        self._res_cc(_ptr(res), _ptr(x), _ptr(rhs), n, invh2)

    def restrict(self, coarse, fine, nc: int) -> None:
        self._restr(_ptr(coarse), _ptr(fine), nc)

    def interp_pc(self, xf, xc, nc: int) -> None:
        self._interp(_ptr(xf), _ptr(xc), nc)
