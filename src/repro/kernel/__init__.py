"""Kernel expression IR: one optimized loop body, lowered once.

Before this package existed every backend re-lowered the scalar loop
body on its own: the C emitter, the two GPU code generators and both
interpreters each walked :class:`~repro.core.flatten.FlatStencil`
term by term, re-indexing and re-loading repeated grid reads, folding
nothing.  The kernel IR centralizes that work (the single-lowering
thesis of StencilFlow, and the shared-subterm optimization argument of
Orchard & Mycroft):

* :mod:`repro.kernel.ir` — scalar expression nodes (:class:`KLoad`
  with affine index maps, :class:`KParam`, :class:`KConst`, add/mul/
  div/fma) and :class:`KernelBody`, a sequence of let-bindings tagged
  with the loop depth at which each is invariant, plus a result
  expression;
* :mod:`repro.kernel.lower` — lowers a ``FlatStencil`` to a raw
  ``KernelBody`` **once per stencil** (cached), bit-compatible with the
  historical term-by-term emission order;
* :mod:`repro.kernel.optimize` — the pass pipeline (constant folding,
  CSE of repeated grid reads and shared subexpressions, loop-invariant
  hoisting, FMA grouping), every rewrite tallied in an
  :class:`OptReport`;
* :mod:`repro.kernel.eval` — the interpreters (per-point for the
  python reference, per-rect vectorized for numpy);
* :mod:`repro.kernel.cost` — the analytic per-point flops/bytes model
  (compulsory-traffic convention of paper SectionV-B).

Every pass is *bitwise semantics preserving* on IEEE doubles: constant
folding computes the same operations at lower time, CSE only names
subexpressions, hoisting only moves invariant work, and FMA grouping
is structural (``a*b + c`` stays a separate multiply and add — no
hardware contraction).  The C/OpenMP/OpenCL-sim/CUDA-sim backends
therefore agree bit-for-bit with the python reference on the same
optimized body.

Optimization is on by default; disable globally with
``SNOWFLAKE_KERNEL_OPT=0`` or locally with :func:`no_optimization`
(used by the equivalence tests to compare both paths).
"""

from __future__ import annotations

import os
from contextlib import contextmanager

from .cost import KernelCost, SweptCost, kernel_cost, swept_cost
from .eval import eval_point, eval_rect, eval_scalar_lets
from .ir import (
    KAdd,
    KConst,
    KDiv,
    KExpr,
    KFma,
    KLet,
    KLoad,
    KMul,
    KParam,
    KRef,
    KernelBody,
)
from .lower import body_for, lower_flat
from .optimize import OptReport, optimize_kernel

__all__ = [
    "KExpr",
    "KConst",
    "KParam",
    "KLoad",
    "KRef",
    "KAdd",
    "KMul",
    "KDiv",
    "KFma",
    "KLet",
    "KernelBody",
    "lower_flat",
    "body_for",
    "optimize_kernel",
    "OptReport",
    "KernelCost",
    "SweptCost",
    "kernel_cost",
    "swept_cost",
    "eval_point",
    "eval_rect",
    "eval_scalar_lets",
    "optimization_enabled",
    "no_optimization",
]

_OPT_ENABLED = os.environ.get("SNOWFLAKE_KERNEL_OPT", "1").lower() not in (
    "0", "off", "false", "no",
)


def optimization_enabled() -> bool:
    """Is the kernel pass pipeline applied by default?"""
    return _OPT_ENABLED


@contextmanager
def no_optimization():
    """Temporarily lower raw (unoptimized) kernel bodies everywhere.

    Compiled-backend sources differ between the two modes, so the JIT
    cache keys them apart automatically; interpreters consult the flag
    on every application.
    """
    global _OPT_ENABLED
    prev = _OPT_ENABLED
    _OPT_ENABLED = False
    try:
        yield
    finally:
        _OPT_ENABLED = prev
