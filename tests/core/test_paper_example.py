"""The paper's Fig.4 complex-smoothing example, reconstructed faithfully.

Builds the red-black, variable-coefficient, Dirichlet-bounded smoother
with the exact data-structure vocabulary of TableI and checks the
properties the paper claims for it: red/black partition the interior,
the in-place colored sweeps are parallel-safe, boundary stencils do not
conflict with the interior, and the whole thing runs and converges.
"""

import numpy as np
import pytest

from repro.analysis import (
    cross_stencil_dependence,
    is_parallel_safe,
    is_partition,
    plan,
)
from repro.core.components import Component
from repro.core.domains import RectDomain
from repro.core.stencil import Stencil, StencilGroup
from repro.core.weights import SparseArray, WeightArray
from repro.hpgmg.operators import boundary_stencils, vc_laplacian

SHAPE = (34, 34)
H = 1.0 / 32


@pytest.fixture(scope="module")
def fig4():
    Ax = vc_laplacian(2, H, grid="mesh")
    b = Component("rhs", WeightArray([[1]]))
    difference = b - Ax
    original = Component("mesh", WeightArray([[1]]))
    lambda_term = Component("lam", WeightArray([[1]]))
    final = original + lambda_term * difference
    red = RectDomain((1, 1), (-1, -1), (2, 2)) + RectDomain(
        (2, 2), (-1, -1), (2, 2)
    )
    black = RectDomain((1, 2), (-1, -1), (2, 2)) + RectDomain(
        (2, 1), (-1, -1), (2, 2)
    )
    red_stencil = Stencil(final, "mesh", red, name="red")
    black_stencil = Stencil(final, "mesh", black, name="black")
    bcs = boundary_stencils(2, "mesh")
    group = StencilGroup(bcs + [red_stencil] + bcs + [black_stencil])
    return red_stencil, black_stencil, group


def test_red_black_partition_the_interior(fig4):
    red_stencil, black_stencil, _ = fig4
    interior = RectDomain((1, 1), (-1, -1))
    assert is_partition(
        [red_stencil.domain, black_stencil.domain], interior, SHAPE
    )


def test_colored_inplace_sweeps_are_parallel_safe(fig4):
    red_stencil, black_stencil, _ = fig4
    shapes = {g: SHAPE for g in red_stencil.grids()}
    assert is_parallel_safe(red_stencil, shapes)
    assert is_parallel_safe(black_stencil, shapes)


def test_uncolored_inplace_sweep_is_not_safe(fig4):
    red_stencil, _, _ = fig4
    full = Stencil(red_stencil.body, "mesh", RectDomain((1, 1), (-1, -1)))
    shapes = {g: SHAPE for g in full.grids()}
    assert not is_parallel_safe(full, shapes)


def test_boundary_stencils_do_not_conflict_with_each_other(fig4):
    bcs = boundary_stencils(2, "mesh")
    shapes = {"mesh": SHAPE}
    for i, a in enumerate(bcs):
        for b in bcs[i + 1 :]:
            assert cross_stencil_dependence(a, b, shapes) == set()


def test_red_depends_on_boundary_updates(fig4):
    red_stencil, _, _ = fig4
    bcs = boundary_stencils(2, "mesh")
    shapes = {g: SHAPE for g in red_stencil.grids()}
    kinds = cross_stencil_dependence(bcs[0], red_stencil, shapes)
    assert "RAW" in kinds  # red reads the ghosts the bc stencil wrote


def test_greedy_plan_groups_boundaries_together(fig4):
    _, _, group = fig4
    shapes = {g: SHAPE for g in group.grids()}
    exec_plan = plan(group, shapes)
    # 4 bc + red + 4 bc + black -> phases [bc x4][red][bc x4][black]
    assert exec_plan.phases[0] == (0, 1, 2, 3)
    assert exec_plan.n_barriers == 3


def test_fig4_smoother_reduces_the_residual(fig4, rng):
    _, _, group = fig4
    grids = {g: np.zeros(SHAPE) for g in group.grids()}
    ij = np.indices(SHAPE)
    xy = (ij - 0.5) * H
    grids["beta_0"] = 1.0 + 0.25 * np.sin(2 * np.pi * xy[0])
    grids["beta_1"] = 1.0 + 0.25 * np.cos(2 * np.pi * xy[1])
    diag = np.ones(SHAPE)
    diag[1:-1, 1:-1] = (
        grids["beta_0"][1:-1, 1:-1]
        + grids["beta_0"][2:, 1:-1]
        + grids["beta_1"][1:-1, 1:-1]
        + grids["beta_1"][1:-1, 2:]
    ) / (H * H)
    grids["lam"] = 1.0 / diag
    grids["rhs"][1:-1, 1:-1] = rng.random((32, 32))

    from repro.hpgmg.operators import residual_stencil

    res_group = StencilGroup(
        boundary_stencils(2, "mesh")
        + [residual_stencil(2, vc_laplacian(2, H, grid="mesh"), out="res")]
    )
    grids["res"] = np.zeros(SHAPE)

    kernel = group.compile(backend="c")
    res_kernel = res_group.compile(backend="c")

    def resnorm():
        res_kernel(**{g: grids[g] for g in res_group.grids()})
        return float(np.max(np.abs(grids["res"][1:-1, 1:-1])))

    r0 = resnorm()
    for _ in range(200):
        kernel(**{g: grids[g] for g in group.grids()})
    # pointwise smoothers kill high frequencies fast but low frequencies
    # at only ~1 - O(h^2) per sweep; 200 sweeps on 32^2 is ~0.4-0.5x.
    assert resnorm() < 0.6 * r0


def test_domains_constructed_at_runtime_with_no_extra_cost(fig4):
    # paper: "These operators and iteration domains can be constructed at
    # run-time with no additional cost" — the same Stencil object reuses
    # its compiled kernel across calls (one specialization per shape).
    red_stencil, _, _ = fig4
    k = red_stencil.compile(backend="numpy")
    grids = {g: np.ones(SHAPE) for g in red_stencil.grids()}
    for _ in range(3):
        k(**grids)
    assert k.specializations == 1
