"""Lowering: chains, evidence, memoization, coercion."""

import pytest

from repro.backends import c_backend
from repro.schedule import (
    Schedule,
    ScheduleOptions,
    as_schedule,
    build_schedule,
    fusion_chains,
    schedule_for,
)
from tests.schedule._cases import (
    fusable_pair_group,
    gsrb_workload,
    laplacian_pair,
    straddle_group,
)


class TestFusionChains:
    def test_program_order_matches_legacy_shim(self):
        group, shapes = straddle_group()
        assert fusion_chains(group, shapes) == c_backend.fusion_chains(
            group, shapes
        )

    def test_program_order_glues_across_barrier(self):
        # The legacy view: s1/s2 share a domain and have no mutual
        # dependence, so program-order chaining merges them...
        group, shapes = straddle_group()
        assert fusion_chains(group, shapes) == [[0], [1, 2]]

    def test_phase_local_chains_respect_barriers(self):
        # ...but s2 RAW-depends on s0, which bars it from s1's phase:
        # a chain straddling that barrier would hoist s2's reads of
        # ``a`` ahead of the taskwait that publishes them.
        group, shapes = straddle_group()
        sched = build_schedule(group, shapes, ScheduleOptions(fuse=True))
        assert [list(ph.stencils()) for ph in sched.phases] == [[0, 1], [2]]
        assert all(not s.fused for s in sched.steps())

    def test_fused_schedule_never_straddles_execution(self):
        # End-to-end regression: fused OpenMP execution of the straddle
        # group must equal the sequential reference.
        import numpy as np

        group, shapes = straddle_group()
        rng = np.random.default_rng(3)
        ref_arrays = {g: rng.standard_normal(s) for g, s in shapes.items()}
        got_arrays = {g: a.copy() for g, a in ref_arrays.items()}
        group.compile(backend="python", shapes=shapes)(**ref_arrays)
        group.compile(backend="openmp", shapes=shapes, fuse=True)(
            **got_arrays
        )
        for g in shapes:
            np.testing.assert_array_equal(got_arrays[g], ref_arrays[g])

    def test_legal_pair_fuses_with_evidence(self):
        group, shapes = fusable_pair_group()
        sched = build_schedule(group, shapes, ScheduleOptions(fuse=True))
        (step,) = sched.steps()
        assert step.stencils == (0, 1) and step.fused
        assert any(e.claim == "fuse" for e in step.evidence)

    def test_fuse_off_keeps_singletons(self):
        group, shapes = fusable_pair_group()
        sched = build_schedule(group, shapes, ScheduleOptions(fuse=False))
        assert [s.stencils for s in sched.steps()] == [(0,), (1,)]


class TestMulticolorRecognition:
    def test_gsrb_sweeps_recognized(self):
        group, shapes, _ = gsrb_workload()
        sched = build_schedule(
            group, shapes, ScheduleOptions(multicolor=True)
        )
        sweeps = [s for s in sched.steps() if s.sweep is not None]
        assert len(sweeps) == 2  # one red, one black half-sweep
        assert {s.sweep.parity for s in sweeps} == {0, 1}
        for s in sweeps:
            assert any(e.claim == "multicolor" for e in s.evidence)

    def test_multicolor_off_emits_no_sweeps(self):
        group, shapes, _ = gsrb_workload()
        sched = build_schedule(
            group, shapes, ScheduleOptions(multicolor=False)
        )
        assert all(s.sweep is None for s in sched.steps())


class TestScheduleObject:
    def test_stencil_order_covers_group_once(self):
        group, shapes, _ = gsrb_workload()
        sched = schedule_for(group, shapes)
        assert sorted(sched.stencil_order()) == list(range(len(group)))

    def test_step_for_and_describe(self):
        group, shapes = fusable_pair_group()
        sched = schedule_for(group, shapes, ScheduleOptions(fuse=True))
        assert sched.step_for(1).fused
        with pytest.raises(KeyError):
            sched.step_for(99)
        assert "fused chain" in sched.describe()

    def test_to_dict_is_json_able(self):
        import json

        group, shapes, _ = gsrb_workload()
        sched = schedule_for(
            group, shapes, ScheduleOptions(fuse=True, multicolor=True)
        )
        doc = json.loads(json.dumps(sched.to_dict()))
        assert doc["group"] == group.name
        assert doc["options"]["fuse"] is True
        sweeps = [
            st for ph in doc["phases"] for st in ph["steps"] if st["sweep"]
        ]
        assert sweeps and {"base", "high", "parity"} <= set(sweeps[0]["sweep"])


class TestMemoizationAndCoercion:
    def test_schedule_for_memoizes(self):
        group, shapes = laplacian_pair()
        opts = ScheduleOptions(fuse=True)
        assert schedule_for(group, shapes, opts) is schedule_for(
            group, shapes, opts
        )

    def test_as_schedule_passthrough_and_coercions(self):
        group, shapes = laplacian_pair()
        sched = schedule_for(group, shapes)
        assert as_schedule(sched, group, shapes) is sched
        assert isinstance(
            as_schedule("wavefront", group, shapes), Schedule
        )
        assert as_schedule(None, group, shapes).options.policy == "greedy"
        with pytest.raises(TypeError):
            as_schedule(42, group, shapes)

    def test_as_schedule_rejects_wrong_shapes(self):
        group, shapes = laplacian_pair(12)
        sched = schedule_for(group, shapes)
        with pytest.raises(ValueError, match="shapes"):
            as_schedule(sched, group, {"u": (16, 16), "out": (16, 16)})

    def test_as_schedule_rejects_wrong_group(self):
        group, shapes = laplacian_pair()
        other, other_shapes = straddle_group()
        sched = schedule_for(other, other_shapes)
        with pytest.raises(ValueError, match="signature"):
            as_schedule(sched, group, shapes)
