"""The schedule IR: legality-checked structure every backend consumes.

A :class:`Schedule` is the contract between the analysis layer and the
micro-compilers (paper SectionIV's narrow interface, made explicit):

* **phases** — barrier-separated groups from the Diophantine dependence
  plan (:class:`~repro.analysis.dag.ExecutionPlan`);
* **steps** — within a phase, each step is one loop nest / kernel
  launch: a maximal fused chain of independent same-domain stencils
  (or a singleton), tagged with its snapshot decision and, when the
  stencil's domain union is a checkerboard, the dense
  :class:`ParityClass` sweep that replaces the strided color sweeps;
* **evidence** — every non-trivial decision carries the analysis fact
  that legalizes it, so ``repro.explain`` can print the chain of
  custody instead of re-deriving it.

Backends never re-run fusion or multicolor detection: they walk the
phases/steps and emit.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Iterator, Mapping, Sequence

from ..analysis.dag import ExecutionPlan
from ..core.domains import ResolvedRect
from ..core.stencil import StencilGroup
from .options import ScheduleOptions

__all__ = [
    "ParityClass",
    "detect_parity_class",
    "Evidence",
    "TimeTile",
    "Step",
    "SchedulePhase",
    "Schedule",
]


# ---------------------------------------------------------------------------
# multicolor (parity-class) detection — single implementation, moved here
# from the C emitter so every backend shares it
# ---------------------------------------------------------------------------


@dataclass(frozen=True)
class ParityClass:
    """A union of stride-2 boxes equal to one parity class of a dense box."""

    base: tuple[int, ...]
    high: tuple[int, ...]  # inclusive
    parity: int


def detect_parity_class(rects: Sequence[ResolvedRect]) -> ParityClass | None:
    """Recognize checkerboard unions so they can be loop-fused.

    Requirements: >=2 boxes, all strides exactly 2, box lows differ from
    the per-dim minimum by 0/1, offsets enumerate every combination with
    one fixed total parity, and each box exactly fills its residue class
    of the common dense bounding box.
    """
    if len(rects) < 2:
        return None
    ndim = rects[0].ndim
    for r in rects:
        if any(st != 2 for st in r.strides):
            return None
    base = tuple(min(r.lows[d] for r in rects) for d in range(ndim))
    high = tuple(max(r.highs()[d] for r in rects) for d in range(ndim))
    offsets = set()
    for r in rects:
        off = tuple(r.lows[d] - base[d] for d in range(ndim))
        if any(o not in (0, 1) for o in off):
            return None
        if off in offsets:
            return None
        offsets.add(off)
        # exact residue fill of [base, high]
        for d in range(ndim):
            lo = r.lows[d]
            want_hi = lo + 2 * ((high[d] - lo) // 2)
            if r.highs()[d] != want_hi:
                return None
    parities = {sum(o) % 2 for o in offsets}
    if len(parities) != 1:
        return None
    parity = parities.pop()
    expected = {
        off
        for off in _binary_offsets(ndim)
        if sum(off) % 2 == parity
        and all(base[d] + off[d] <= high[d] for d in range(ndim))
    }
    if offsets != expected:
        return None
    return ParityClass(base, high, parity)


def _binary_offsets(ndim: int):
    import itertools

    return itertools.product((0, 1), repeat=ndim)


# ---------------------------------------------------------------------------
# the IR proper
# ---------------------------------------------------------------------------


@dataclass(frozen=True)
class Evidence:
    """One analysis fact legalizing one scheduling decision."""

    claim: str  # e.g. "fuse", "multicolor", "snapshot", "parallel"
    basis: str  # the Diophantine fact, human-readable

    def __str__(self) -> str:
        return f"{self.claim}: {self.basis}"


@dataclass(frozen=True)
class TimeTile:
    """The schedule's temporal-blocking dimension (ROADMAP item 1).

    ``k`` successive applications of the whole group are fused into one
    kernel invocation.  ``kind`` selects the loop structure the CPU
    emitters lower it to:

    * ``"wavefront"`` — a single-step schedule whose cross-application
      RAW footprint has halo ``slope`` (proved by the dependence
      lattices): the spatial domain is cut into blocks along the
      outermost free dimension and each block runs all ``k``
      applications before the next block starts — the skewed
      (parallelogram) time tile.  With ``slope == 0`` blocks are fully
      independent, so the OpenMP target runs them as concurrent tasks.
    * ``"fused"`` — multi-step schedules: one outer time loop around
      the whole phase sequence (barriers intact per application).
      Traffic reduction then comes from whole-grid cache residency.

    ``slope`` is the wavefront skew per application (the maximal
    cross-application RAW halo).  Evidence carries the per-step
    Diophantine facts that legalize the fusion.
    """

    k: int
    kind: str  # "wavefront" | "fused"
    slope: int = 0
    evidence: tuple[Evidence, ...] = ()

    def describe(self) -> str:
        return f"time tile: k={self.k} kind={self.kind} slope={self.slope}"

    def to_dict(self) -> dict:
        return {
            "k": self.k,
            "kind": self.kind,
            "slope": self.slope,
            "evidence": [str(e) for e in self.evidence],
        }


@dataclass(frozen=True)
class Step:
    """One loop nest / kernel launch: a fused chain or a singleton.

    ``stencils`` are indices into the originating group, program order.
    ``snapshot`` means the (single) member is an in-place stencil with a
    proven loop-carried hazard and must read its output grid through a
    gather snapshot; fused chains are snapshot-free by construction.
    ``sweep`` is the dense parity-class nest replacing the member's
    strided color boxes, when recognized and enabled.
    """

    stencils: tuple[int, ...]
    parallel: bool
    snapshot: bool
    sweep: ParityClass | None = None
    evidence: tuple[Evidence, ...] = ()

    @property
    def head(self) -> int:
        return self.stencils[0]

    @property
    def fused(self) -> bool:
        return len(self.stencils) > 1


@dataclass(frozen=True)
class SchedulePhase:
    """Steps between two barriers; steps of a phase may run concurrently."""

    index: int
    steps: tuple[Step, ...]

    def stencils(self) -> tuple[int, ...]:
        return tuple(i for s in self.steps for i in s.stencils)


@dataclass(eq=False)
class Schedule:
    """The complete, legality-checked execution recipe for one group.

    Built once by :func:`repro.schedule.build_schedule`; consumed by all
    six backends.  ``plan`` keeps the underlying
    :class:`~repro.analysis.dag.ExecutionPlan` (dependence edges and
    barrier provenance); ``phases`` refine it with fusion, snapshot and
    sweep decisions.
    """

    group: StencilGroup
    shapes: Mapping[str, tuple[int, ...]]
    options: ScheduleOptions
    plan: ExecutionPlan
    phases: tuple[SchedulePhase, ...] = field(default_factory=tuple)
    #: temporal-blocking decision; ``None`` means one sweep per call
    time_tile: "TimeTile | None" = None

    def steps(self) -> Iterator[Step]:
        for ph in self.phases:
            yield from ph.steps

    def stencil_order(self) -> list[int]:
        """Group indices in execution order (interpreter backends)."""
        return [i for s in self.steps() for i in s.stencils]

    @property
    def n_steps(self) -> int:
        return sum(len(ph.steps) for ph in self.phases)

    def step_for(self, stencil_index: int) -> Step:
        for s in self.steps():
            if stencil_index in s.stencils:
                return s
        raise KeyError(f"stencil {stencil_index} not in schedule")

    def _names(self, idxs: Sequence[int]) -> str:
        return ", ".join(self.group[i].name for i in idxs)

    def describe(self) -> str:
        """Human-readable schedule with the evidence for each decision."""
        lines = [
            f"schedule for group {self.group.name!r}: "
            f"{len(self.group)} stencil(s), {len(self.phases)} phase(s), "
            f"{self.n_steps} step(s) [{self.options.describe()}]"
        ]
        if self.time_tile is not None:
            lines.append(self.time_tile.describe())
            for ev in self.time_tile.evidence:
                lines.append(f"  - {ev}")
        for ph in self.phases:
            lines.append(f"phase {ph.index}:")
            for s in ph.steps:
                kind = "fused chain" if s.fused else "step"
                tags = []
                if s.sweep is not None:
                    tags.append("multicolor sweep")
                if s.snapshot:
                    tags.append("snapshot")
                if s.parallel:
                    tags.append("parallel")
                tag = f" ({', '.join(tags)})" if tags else ""
                lines.append(
                    f"  {kind} {list(s.stencils)}: {self._names(s.stencils)}{tag}"
                )
                for ev in s.evidence:
                    lines.append(f"    - {ev}")
        return "\n".join(lines)

    def to_dict(self) -> dict:
        """JSON-able view for dashboards and ``repro explain --json``."""
        return {
            "group": self.group.name,
            "options": self.options.to_dict(),
            "time_tile": (
                None if self.time_tile is None else self.time_tile.to_dict()
            ),
            "phases": [
                {
                    "index": ph.index,
                    "steps": [
                        {
                            "stencils": list(s.stencils),
                            "names": [
                                self.group[i].name for i in s.stencils
                            ],
                            "fused": s.fused,
                            "parallel": s.parallel,
                            "snapshot": s.snapshot,
                            "sweep": (
                                None
                                if s.sweep is None
                                else {
                                    "base": list(s.sweep.base),
                                    "high": list(s.sweep.high),
                                    "parity": s.sweep.parity,
                                }
                            ),
                            "evidence": [str(e) for e in s.evidence],
                        }
                        for s in ph.steps
                    ],
                }
                for ph in self.phases
            ],
        }
