"""Group-level optimizations driven by the dependence analysis.

The paper lists dead-stencil elimination and reordering as applications
of the Diophantine framework (SectionIII, SectionVII); both are
implemented here, along with fusion *marking* (identifying adjacent
stencils a backend may legally fuse into one loop nest).
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Mapping, Sequence

from ..core.stencil import Stencil, StencilGroup
from .dag import build_dag
from .dependence import group_dependences

__all__ = [
    "eliminate_dead_stencils",
    "reorder_for_phases",
    "fusion_candidates",
]


def eliminate_dead_stencils(
    group: StencilGroup,
    shapes: Mapping[str, Sequence[int]],
    live_grids: set[str] | None = None,
) -> StencilGroup:
    """Drop stencils whose writes are never observed.

    A stencil is *live* if its output grid is in ``live_grids`` (defaults
    to every grid — pass the set of grids the caller will inspect to
    enable elimination), or if a later live stencil reads cells it wrote
    (RAW edge in the dependence DAG).  Computed by a backward sweep.
    """
    if live_grids is None:
        live_grids = group.grids()
    deps = group_dependences(group, shapes)
    n = len(group)
    live = [group[i].output in live_grids for i in range(n)]
    # Backward propagation: i is live if some live j>i RAW-depends on i.
    for i in range(n - 1, -1, -1):
        if live[i]:
            continue
        for j in range(i + 1, n):
            if live[j] and "RAW" in deps.get((i, j), set()):
                live[i] = True
                break
    kept = [group[i] for i in range(n) if live[i]]
    if not kept:
        raise ValueError("dead-stencil elimination removed every stencil")
    return StencilGroup(kept, name=group.name)


def reorder_for_phases(
    group: StencilGroup, shapes: Mapping[str, Sequence[int]]
) -> StencilGroup:
    """Reorder stencils (legally) to minimize greedy barrier count.

    List scheduling on the dependence DAG: repeatedly emit every ready
    stencil (all predecessors emitted), which clusters independent
    stencils into contiguous runs the greedy barrier policy keeps in one
    phase.  Any topological order preserves semantics because the DAG
    orders every conflicting pair.
    """
    dag = build_dag(group, shapes)
    indeg = {n: dag.in_degree(n) for n in dag.nodes}
    ready = sorted(n for n, d in indeg.items() if d == 0)
    order: list[int] = []
    while ready:
        batch, ready = ready, []
        for n in batch:
            order.append(n)
        for n in batch:
            for _, m in dag.out_edges(n):
                indeg[m] -= 1
                if indeg[m] == 0:
                    ready.append(m)
        ready.sort()
    if len(order) != len(group):  # pragma: no cover - DAG is acyclic by construction
        raise RuntimeError("dependence graph is not acyclic")
    return StencilGroup([group[i] for i in order], name=group.name)


@dataclass(frozen=True)
class FusionPair:
    first: int
    second: int
    reason: str


def fusion_candidates(
    group: StencilGroup, shapes: Mapping[str, Sequence[int]]
) -> list[FusionPair]:
    """Adjacent stencil pairs a backend may fuse into one loop nest.

    Deprecated shim: fusion legality now has a single implementation in
    :func:`repro.schedule.fusion_chains` (maximal chains with transitive
    safety); this view flattens those chains back into the historical
    adjacent-pair form for existing callers.
    """
    from ..schedule import fusion_chains

    norm = {g: tuple(int(x) for x in s) for g, s in shapes.items()}
    out: list[FusionPair] = []
    for chain in fusion_chains(group, norm):
        for i, j in zip(chain, chain[1:]):
            out.append(
                FusionPair(
                    i, j, "identical domain, no RAW/WAW between bodies"
                )
            )
    return out
