"""Cost-model-guided schedule search (beam + simulated annealing).

Replaces fixed-candidate enumeration with a real search over the
transform space: candidates are :class:`~repro.schedule.ScheduleOptions`
points (each the preset pipeline of transforms
:func:`repro.transform.preset.preset_pipeline` renders), *predicted*
with the analytic cost model (:mod:`repro.kernel.cost` traffic on a
:class:`~repro.machine.specs.MachineSpec` roofline), and only the most
promising predictions are *measured* with the existing min-over-repeats
timing.  Illegal candidates (time-tile refusals, backends that cannot
lower a knob) are recorded as ``refused`` trials with the refusing
evidence kind — and emitted as ``tuning.candidate.refused`` events —
instead of silently vanishing.

Winners persist per ``(tune_tag, machine fingerprint)`` via
:mod:`repro.tuning.cache` and are transparently reloaded by
:func:`repro.schedule.schedule_for`.

The prediction is deterministic — pure arithmetic over the kernel IR
and the spec record — so on ``paper-cpu`` it is bit-exact reproducible;
:func:`repro.tuning.autotune.check_tune_model` exploits that the same
way ``bench.check_sweep_model`` does for the sweep model.
"""

from __future__ import annotations

import math
import random
from dataclasses import dataclass, replace
from typing import Mapping

import numpy as np

from .. import telemetry
from ..core.stencil import StencilGroup
from ..core.validate import iteration_shape
from ..kernel.cost import WORD_BYTES, body_cost, swept_cost
from ..kernel.lower import body_for
from ..machine.specs import PAPER_PLATFORMS, MachineSpec, host_spec
from ..schedule import ScheduleOptions, schedule_for
from ..telemetry import tracing
from ..util.timing import best_of

__all__ = [
    "Trial",
    "SearchResult",
    "predict_schedule_time",
    "search_schedules",
    "resolve_search_spec",
]

#: tile sizes the default search neighbourhood draws from
TILE_LADDER = (None, 4, 8, 16, 32, 64)
#: unroll factors the default search neighbourhood draws from
UNROLL_LADDER = (None, 2, 4, 8)
#: time-tile depths proposed by the default grid
TIME_TILE_LADDER = (1, 2, 4)


def resolve_search_spec(spec: "MachineSpec | str" = "paper-cpu") -> MachineSpec:
    """Accept a :class:`MachineSpec` or a name (host/paper-cpu/paper-gpu)."""
    if isinstance(spec, MachineSpec):
        return spec
    if spec == "host":
        return host_spec(measure=True)
    if spec in ("paper-cpu", "cpu"):
        return PAPER_PLATFORMS["cpu"]
    if spec in ("paper-gpu", "gpu"):
        return PAPER_PLATFORMS["gpu"]
    raise ValueError(
        f"unknown machine spec {spec!r}; choose host, paper-cpu or "
        "paper-gpu (or pass a MachineSpec)"
    )


@dataclass(frozen=True)
class Trial:
    """One candidate visited by the search."""

    options: ScheduleOptions
    predicted_s: float
    measured_s: float | None  # None until (unless) measured
    status: str  # "measured" | "predicted" | "refused"
    detail: str = ""  # refusal evidence kind, or ""

    def to_dict(self) -> dict:
        return {
            "options": self.options.to_dict(),
            "predicted_s": self.predicted_s,
            "measured_s": self.measured_s,
            "status": self.status,
            "detail": self.detail,
        }


@dataclass(frozen=True)
class SearchResult:
    """Outcome of one schedule search."""

    best: ScheduleOptions | None
    best_measured_s: float
    best_predicted_s: float
    trials: tuple[Trial, ...]
    backend: str
    budget: int
    strategy: str

    def measured(self) -> list[Trial]:
        return [t for t in self.trials if t.status == "measured"]

    def table(self) -> str:
        """Fixed-width trial table for the CLI."""
        lines = [
            f"{'status':<9} {'predicted':>12} {'measured':>12}  options",
            "-" * 72,
        ]
        for t in self.trials:
            pred = (
                f"{t.predicted_s * 1e6:10.1f}us"
                if t.predicted_s != float("inf")
                else "         -"
            )
            meas = (
                f"{t.measured_s * 1e6:10.1f}us"
                if t.measured_s is not None
                else "         -"
            )
            opt = t.options.describe()
            if t.detail:
                opt += f"  [{t.detail}]"
            mark = ""
            if self.best is not None and t.options == self.best and (
                t.status == "measured"
            ):
                mark = " *"
            lines.append(f"{t.status:<9} {pred:>12} {meas:>12}  {opt}{mark}")
        return "\n".join(lines)

    def to_dict(self) -> dict:
        return {
            "schema": "snowflake-tune-search/1",
            "backend": self.backend,
            "strategy": self.strategy,
            "budget": self.budget,
            "best": None if self.best is None else self.best.to_dict(),
            "best_measured_s": self.best_measured_s,
            "best_predicted_s": self.best_predicted_s,
            "trials": [t.to_dict() for t in self.trials],
        }


# ---------------------------------------------------------------------------
# the analytic predictor
# ---------------------------------------------------------------------------


def _points(stencil, norm: Mapping[str, tuple[int, ...]]) -> int:
    it_shape = iteration_shape(stencil, norm)
    return sum(
        r.npoints
        for r in stencil.domain.resolve(it_shape)
        if not r.is_empty()
    )


def predict_schedule_time(
    group: StencilGroup,
    shapes: Mapping[str, tuple[int, ...]],
    options: ScheduleOptions,
    *,
    spec: "MachineSpec | str" = "paper-cpu",
) -> float:
    """Model seconds per kernel call for ``group`` under ``options``.

    Deterministic compulsory-traffic model: each step moves
    ``points x bytes/point`` through the roofline bandwidth the working
    set earns (:meth:`~repro.machine.specs.MachineSpec.effective_bw`);
    a time tile of depth ``k`` performs ``k`` applications per call
    using the swept (cache-resident) traffic model; snapshot steps pay
    the gather copy; every step launch pays the spec's per-launch
    overhead.  Raises whatever :func:`~repro.schedule.schedule_for`
    raises on an illegal candidate (typed
    :class:`~repro.transform.TransformError` for refused rewrites).
    """
    spec = resolve_search_spec(spec)
    norm = {g: tuple(int(x) for x in s) for g, s in shapes.items()}
    sched = schedule_for(group, norm, options)
    k = 1 if sched.time_tile is None else sched.time_tile.k
    ws = sum(
        float(np.prod(s)) * WORD_BYTES for s in norm.values()
    )
    bw = spec.effective_bw(ws)
    seconds = 0.0
    launches = 0
    for step in sched.steps():
        launches += 1
        for i in step.stencils:
            st = group[i]
            body, _ = body_for(st)
            if k > 1:
                bpp = swept_cost(
                    body, st.output, k,
                    tile_bytes=ws, cache_bytes=spec.cache_bytes,
                ).swept_bytes_per_point
            else:
                bpp = body_cost(body, st.output).bytes_per_point
            seconds += _points(st, norm) * bpp / bw
        if step.snapshot:
            g = group[step.head].output
            snap_bytes = float(np.prod(norm[g])) * WORD_BYTES
            seconds += 2.0 * snap_bytes / bw  # gather copy: read + write
    seconds *= k  # k applications per call
    seconds += launches * k * spec.launch_overhead
    return seconds


# ---------------------------------------------------------------------------
# candidate space
# ---------------------------------------------------------------------------


def _default_grid(base: ScheduleOptions) -> list[ScheduleOptions]:
    """The seed candidate grid the beam predicts over."""
    out: list[ScheduleOptions] = []
    seen: set = set()
    for k in TIME_TILE_LADDER:
        for f in (False, True):
            for t in TILE_LADDER:
                cand = replace(base, tile=t, fuse=f, time_tile=k)
                if cand not in seen:
                    seen.add(cand)
                    out.append(cand)
    return out


def _neighbours(opts: ScheduleOptions) -> list[ScheduleOptions]:
    """Single-knob mutations of one candidate (the search moves)."""
    out: list[ScheduleOptions] = []
    ti = TILE_LADDER.index(opts.tile) if opts.tile in TILE_LADDER else 0
    for j in (ti - 1, ti + 1):
        if 0 <= j < len(TILE_LADDER):
            out.append(replace(opts, tile=TILE_LADDER[j]))
    ui = (
        UNROLL_LADDER.index(opts.unroll)
        if opts.unroll in UNROLL_LADDER
        else 0
    )
    for j in (ui - 1, ui + 1):
        if 0 <= j < len(UNROLL_LADDER):
            out.append(replace(opts, unroll=UNROLL_LADDER[j]))
    out.append(replace(opts, fuse=not opts.fuse))
    ki = (
        TIME_TILE_LADDER.index(opts.time_tile)
        if opts.time_tile in TIME_TILE_LADDER
        else 0
    )
    for j in (ki - 1, ki + 1):
        if 0 <= j < len(TIME_TILE_LADDER):
            out.append(replace(opts, time_tile=TIME_TILE_LADDER[j]))
    return [o for o in out if o != opts]


def _refusal_kind(exc: Exception) -> str:
    ev = getattr(exc, "evidence", None)
    kind = getattr(ev, "claim", None)
    if kind:
        return str(kind)
    if isinstance(exc, NotImplementedError):
        return "not-implemented"
    return type(exc).__name__


# ---------------------------------------------------------------------------
# the search proper
# ---------------------------------------------------------------------------


class _Bench:
    """Compile-and-measure harness shared by both strategies."""

    def __init__(
        self, group, arrays, params, backend, repeats, backend_options
    ):
        self.group = group
        self.arrays = arrays
        self.params = dict(params or {})
        self.shapes = {
            g: tuple(int(x) for x in a.shape) for g, a in arrays.items()
        }
        self.backend = backend
        self.repeats = repeats
        self.backend_options = backend_options
        self.measured: dict[ScheduleOptions, float] = {}

    def measure(self, opts: ScheduleOptions) -> float:
        """Min-over-repeats seconds; raises on refused candidates."""
        if opts in self.measured:
            return self.measured[opts]
        sched = schedule_for(self.group, self.shapes, opts)
        kernel = self.group.compile(
            backend=self.backend, shapes=self.shapes, schedule=sched,
            **self.backend_options,
        )
        t = best_of(
            lambda: kernel(**self.arrays, **self.params),
            warmup=1, repeats=self.repeats,
        )
        self.measured[opts] = t
        return t


def search_schedules(
    group: StencilGroup,
    arrays: Mapping[str, np.ndarray],
    params: Mapping[str, float] | None = None,
    *,
    backend: str = "c",
    budget: int = 12,
    repeats: int = 3,
    strategy: str = "beam",
    spec: "MachineSpec | str" = "paper-cpu",
    seed: int = 0,
    base: ScheduleOptions | None = None,
    beam_width: int = 4,
    persist: bool = True,
    **backend_options,
) -> SearchResult:
    """Search the schedule space; measure at most ``budget`` candidates.

    ``strategy`` is ``"beam"`` (predict the whole seed grid, measure the
    ``beam_width`` best predictions, then hill-climb by mutating the
    measured winner) or ``"anneal"`` (simulated annealing over single-
    knob mutations with the prediction as the proposal filter).
    ``arrays`` are working copies — the search mutates them.  The winner
    is persisted to the tuning cache (:mod:`repro.tuning.cache`) unless
    ``persist=False``, and reloaded transparently by
    :func:`repro.schedule.schedule_for` in later processes.
    """
    if budget < 1:
        raise ValueError(f"budget must be >= 1, got {budget!r}")
    if strategy not in ("beam", "anneal"):
        raise ValueError(
            f"unknown strategy {strategy!r}; choose beam or anneal"
        )
    mspec = resolve_search_spec(spec)
    base = base or ScheduleOptions()
    bench = _Bench(group, arrays, params, backend, repeats, backend_options)
    trials: list[Trial] = []
    predictions: dict[ScheduleOptions, float] = {}
    refused: set = set()

    def predict(opts: ScheduleOptions) -> float | None:
        """Predicted seconds, or None when the candidate is refused."""
        if opts in predictions:
            return predictions[opts]
        if opts in refused:
            return None
        try:
            p = predict_schedule_time(
                group, bench.shapes, opts, spec=mspec
            )
        except (ValueError, NotImplementedError) as e:
            kind = _refusal_kind(e)
            refused.add(opts)
            trials.append(
                Trial(opts, float("inf"), None, "refused", kind)
            )
            telemetry.event(
                "tuning.candidate.refused",
                group=group.name, backend=backend, kind=kind,
                options=opts.describe(), detail=str(e),
            )
            return None
        predictions[opts] = p
        return p

    def measure(opts: ScheduleOptions) -> float | None:
        """Measured seconds, or None when compile/lower refuses."""
        p = predict(opts)
        if p is None:
            return None
        try:
            t = bench.measure(opts)
        except (ValueError, NotImplementedError) as e:
            kind = _refusal_kind(e)
            refused.add(opts)
            trials.append(Trial(opts, p, None, "refused", kind))
            telemetry.event(
                "tuning.candidate.refused",
                group=group.name, backend=backend, kind=kind,
                options=opts.describe(), detail=str(e),
            )
            return None
        trials.append(Trial(opts, p, t, "measured"))
        telemetry.event(
            "tuning.trial",
            group=group.name, backend=backend, trial=len(bench.measured),
            options=opts.describe(), predicted_s=p, measured_s=t,
        )
        return t

    with tracing.span(
        "tuning.search", cat="analysis", group=group.name,
        backend=backend, strategy=strategy, budget=budget,
    ):
        if strategy == "beam":
            _run_beam(base, budget, beam_width, predict, measure, bench)
        else:
            _run_anneal(
                base, budget, seed, predict, measure, bench
            )

    best: ScheduleOptions | None = None
    best_t = float("inf")
    for opts, t in bench.measured.items():
        if t < best_t:
            best, best_t = opts, t
    best_p = predictions.get(best, float("inf")) if best else float("inf")
    # Candidates predicted but never measured still show in the table.
    for opts, p in predictions.items():
        if opts not in bench.measured and opts not in refused:
            if not any(
                t.options == opts and t.status != "refused" for t in trials
            ):
                trials.append(Trial(opts, p, None, "predicted"))
    result = SearchResult(
        best=best,
        best_measured_s=best_t,
        best_predicted_s=best_p,
        trials=tuple(trials),
        backend=backend,
        budget=budget,
        strategy=strategy,
    )
    if best is not None:
        telemetry.event(
            "tuning.winner",
            group=group.name, backend=backend,
            options=best.describe(), measured_s=best_t,
            predicted_s=best_p, strategy=strategy,
            trials=len(bench.measured),
        )
        if persist:
            from .cache import save_winner

            try:
                save_winner(
                    group, bench.shapes, best, backend=backend,
                    measured_s=best_t,
                    predicted_s=None if best_p == float("inf") else best_p,
                    strategy=strategy, trials=len(bench.measured),
                )
            except Exception:
                pass  # persistence is best-effort; the result stands
    return result


def _run_beam(base, budget, beam_width, predict, measure, bench) -> None:
    """Predict the grid; measure the beam; hill-climb the winner."""
    grid = _default_grid(base)
    scored = [
        (p, o) for o in grid if (p := predict(o)) is not None
    ]
    scored.sort(key=lambda it: it[0])
    for _, opts in scored[: max(1, beam_width)]:
        if len(bench.measured) >= budget:
            return
        measure(opts)
    # hill-climb: mutate the measured winner, measure the most
    # promising unmeasured prediction, repeat while budget remains
    while len(bench.measured) < budget:
        if not bench.measured:
            return
        cur_best = min(bench.measured, key=bench.measured.get)
        frontier = [
            (p, o)
            for o in _neighbours(cur_best)
            if o not in bench.measured
            and (p := predict(o)) is not None
        ]
        # fall back to the grid's next-best unmeasured prediction
        frontier += [
            (p, o)
            for p, o in scored
            if o not in bench.measured
        ]
        frontier = [
            (p, o) for p, o in frontier if o not in bench.measured
        ]
        if not frontier:
            return
        frontier.sort(key=lambda it: it[0])
        measure(frontier[0][1])


def _run_anneal(base, budget, seed, predict, measure, bench) -> None:
    """Simulated annealing over single-knob mutations."""
    rng = random.Random(seed)
    current = base
    cur_t = measure(current)
    attempts = 0
    while cur_t is None and attempts < 8:
        # the base itself may be refused on this backend; jitter off it
        moves = _neighbours(current)
        if not moves:
            return
        current = rng.choice(moves)
        cur_t = measure(current)
        attempts += 1
    if cur_t is None:
        return
    temp0 = cur_t  # temperature scale: the starting runtime itself
    step = 0
    while len(bench.measured) < budget:
        moves = [m for m in _neighbours(current) if predict(m) is not None]
        if not moves:
            return
        nxt = rng.choice(moves)
        nxt_t = measure(nxt)
        if nxt_t is None:
            continue
        step += 1
        temp = temp0 * max(0.05, 1.0 - step / max(1, budget))
        if nxt_t < cur_t or rng.random() < math.exp(
            -(nxt_t - cur_t) / max(temp, 1e-12)
        ):
            current, cur_t = nxt, nxt_t
