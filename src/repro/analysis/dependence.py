"""Dependence analysis within and across stencils (paper SectionIII).

Two questions are answered exactly, over *finite* domains:

1. **Intra-stencil** — may one stencil application be parallelized over
   its own iteration domain?  Hazardous iff some iteration writes a cell
   that a *different* iteration reads (loop-carried).  This is what makes
   naive parallel in-place GSRB over the full interior illegal, while the
   red- and black-colored sub-stencils are each provably safe.

2. **Cross-stencil** — must stencil ``j`` wait for stencil ``i`` in a
   group?  Classic RAW/WAR/WAW on footprint lattices.

Both reduce to lattice-intersection queries solved by extended-gcd
arithmetic; no enumeration of points ever happens, so a 512**3 domain
costs the same as an 8**3 one.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Mapping, Sequence

from ..core.domains import ResolvedRect
from ..core.stencil import Stencil, StencilGroup
from ..core.validate import iteration_shape
from ..telemetry import tracing
from .footprint import (
    access_conflict_details,
    access_conflicts,
    map_lattice,
    stencil_accesses,
)

__all__ = [
    "Hazard",
    "intra_stencil_hazards",
    "is_parallel_safe",
    "cross_stencil_dependence",
    "group_dependences",
    "group_dependence_details",
]


@dataclass(frozen=True)
class Hazard:
    """A loop-carried conflict inside one stencil application."""

    grid: str
    kind: str  # "RAW/WAR" (read lattice meets write lattice) or "WAW"
    write_rect: int  # index of writing domain box
    other_rect: int  # index of the conflicting domain box
    detail: str

    def __str__(self) -> str:  # pragma: no cover - message formatting
        return f"{self.kind} hazard on {self.grid!r}: {self.detail}"


def _maps_equal(
    scale_a: Sequence[int], off_a: Sequence[int],
    scale_b: Sequence[int], off_b: Sequence[int],
) -> bool:
    return tuple(scale_a) == tuple(scale_b) and tuple(off_a) == tuple(off_b)


def intra_stencil_hazards(
    stencil: Stencil, shapes: Mapping[str, Sequence[int]]
) -> list[Hazard]:
    """Loop-carried hazards of applying ``stencil`` fully in parallel.

    A write by iteration ``p1`` conflicting with a read by iteration
    ``p2 != p1`` is a hazard.  When the read's affine map equals the
    write's map *and* both iterations range over the same domain box, the
    only solutions of ``map(p1) == map(p2)`` are the diagonal ``p1 == p2``
    (affine maps with positive scales are injective), which is harmless —
    an iteration may read its own cell.  Distinct boxes of a
    :class:`DomainUnion` never share iteration points if they intersect
    only off-diagonally; any lattice intersection there is reported.

    This rule is exact for identity write maps (all smoothers, boundary
    stencils) and errs conservative for exotic scaled self-references.
    """
    it_shape = iteration_shape(stencil, shapes)
    rects = [r for r in stencil.domain.resolve(it_shape) if not r.is_empty()]
    om = stencil.output_map
    hazards: list[Hazard] = []

    write_lattices = [map_lattice(r, om.scale, om.offset) for r in rects]

    # write vs read of the same grid
    for read in stencil.flat.reads():
        if read.grid != stencil.output:
            continue
        for wi, (wrect, wlat) in enumerate(zip(rects, write_lattices)):
            for ri, rrect in enumerate(rects):
                rlat = map_lattice(rrect, read.scale, read.offset)
                if not wlat.intersects(rlat):
                    continue
                same_box = wi == ri
                same_map = _maps_equal(om.scale, om.offset, read.scale, read.offset)
                if same_box and same_map:
                    continue  # diagonal-only: safe self-read
                if not same_box and same_map and not wrect.intersects(rrect):
                    # p1 in box wi, p2 in box ri with map(p1)==map(p2)
                    # forces p1==p2 (injective), impossible across
                    # disjoint boxes.
                    continue
                hazards.append(
                    Hazard(
                        stencil.output,
                        "RAW/WAR",
                        wi,
                        ri,
                        f"write lattice of box {wi} meets read "
                        f"{read.signature()} over box {ri}",
                    )
                )
    # write vs write (overlapping union boxes writing the same cells)
    for wi in range(len(rects)):
        for wj in range(wi + 1, len(rects)):
            if write_lattices[wi].intersects(write_lattices[wj]):
                hazards.append(
                    Hazard(
                        stencil.output,
                        "WAW",
                        wi,
                        wj,
                        f"domain boxes {wi} and {wj} write overlapping cells",
                    )
                )
    return hazards


def is_parallel_safe(
    stencil: Stencil, shapes: Mapping[str, Sequence[int]]
) -> bool:
    """True when the stencil may be applied in parallel over its domain."""
    return not intra_stencil_hazards(stencil, shapes)


def cross_stencil_dependence(
    first: Stencil,
    second: Stencil,
    shapes: Mapping[str, Sequence[int]],
) -> set[str]:
    """Dependence kinds requiring ``second`` to wait for ``first``."""
    return access_conflicts(
        stencil_accesses(first, shapes), stencil_accesses(second, shapes)
    )


def group_dependences(
    group: StencilGroup, shapes: Mapping[str, Sequence[int]]
) -> dict[tuple[int, int], set[str]]:
    """All pairwise dependences ``(i, j) -> kinds`` for ``i < j``.

    Footprints are computed once per stencil; the pairwise tests are pure
    lattice arithmetic.
    """
    acc = [stencil_accesses(s, shapes) for s in group]
    out: dict[tuple[int, int], set[str]] = {}
    with tracing.span(
        "dependences", cat="analysis", group=group.name, stencils=len(group)
    ):
        for i in range(len(group)):
            for j in range(i + 1, len(group)):
                kinds = access_conflicts(acc[i], acc[j])
                if kinds:
                    out[(i, j)] = kinds
    return out


def group_dependence_details(
    group: StencilGroup, shapes: Mapping[str, Sequence[int]]
) -> dict[tuple[int, int], dict[str, frozenset[str]]]:
    """Pairwise dependences with the grids that carry each kind.

    Same edges as :func:`group_dependences`, but each ``(i, j)`` maps to
    ``{kind: grids}`` — the provenance an :class:`ExecutionPlan` records
    so barrier placement stays explainable after the fact.
    """
    acc = [stencil_accesses(s, shapes) for s in group]
    out: dict[tuple[int, int], dict[str, frozenset[str]]] = {}
    with tracing.span(
        "dependence-details", cat="analysis", group=group.name,
        stencils=len(group),
    ):
        for i in range(len(group)):
            for j in range(i + 1, len(group)):
                details = access_conflict_details(acc[i], acc[j])
                if details:
                    out[(i, j)] = details
    return out
