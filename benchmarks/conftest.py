"""Benchmark configuration.

Default sizes are laptop/CI scale; set ``SNOWFLAKE_BENCH_SIZE`` (per-dim
cells, e.g. 128 or 256) to approach the paper's problem sizes.  The
corresponding paper tables/figures are regenerated in printable form by
``python -m repro.figures {fig6,fig7,fig8,fig9}``.
"""

import os

import numpy as np
import pytest


def bench_size(default: int = 32) -> int:
    return int(os.environ.get("SNOWFLAKE_BENCH_SIZE", default))


@pytest.fixture(scope="session")
def op_size():
    """Operator benchmarks (Figs.7-8): per-dimension interior cells."""
    return bench_size(32)


@pytest.fixture(scope="session")
def gmg_size():
    """Full-solver benchmarks (Fig.9)."""
    return bench_size(16)
