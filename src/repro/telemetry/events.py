"""Structured JSON event log — schema ``snowflake-events/1``.

The registry's counters say *how many* guard trips happened; this
module records *each one* as a greppable one-line JSON object with a
stable event name, a wall-clock timestamp, and — when the event fires
inside an open tracing span — the span's correlation id, so a fallback
activation in the event log links to the exact kernel invocation in
the Chrome trace.

Activation: ``SNOWFLAKE_TELEMETRY=events`` (counters + structured
events) or ``trace`` (everything).  Every ``telemetry.event(...)``
call site in the pipeline feeds this log automatically — fallback
activations, guard trips, JIT quarantines, fired faults, rank crashes,
checkpoint/restore, time-tile refusals — so arming one environment
variable turns the whole fault surface into structured records.

Memory is bounded: records land in a ring buffer of
:data:`EVENT_CAPACITY` (overflow counted, never grown).  A **sink**
additionally streams each record as one JSON line at emit time:
``SNOWFLAKE_EVENTS_SINK=stderr`` or ``SNOWFLAKE_EVENTS_SINK=/path/to/
events.jsonl`` (append mode), or programmatically via
:func:`set_sink`.

Record shape::

    {"schema": "snowflake-events/1", "t": <unix seconds>,
     "event": "<dotted.name>", "span": <correlation id or null>,
     "thread": <native tid>, ...event fields}

Event names are a stability contract (:data:`KNOWN_EVENTS` lists the
core vocabulary); see ``docs/OBSERVABILITY.md``.
"""

from __future__ import annotations

import json
import os
import sys
import threading
import time
from collections import Counter, deque

__all__ = [
    "EVENTS_SCHEMA",
    "EVENT_CAPACITY",
    "KNOWN_EVENTS",
    "structured_enabled",
    "emit",
    "records",
    "counts_by_name",
    "dropped",
    "reset",
    "set_sink",
    "validate_events",
]

#: schema tag stamped into every record
EVENTS_SCHEMA = "snowflake-events/1"

#: ring-buffer capacity; past it the oldest record is evicted and the
#: eviction counted (bounded memory for long-lived services)
EVENT_CAPACITY = 8192

#: the core event-name vocabulary instrumented across the pipeline —
#: a *stability contract*: renaming any of these is a breaking change
#: to downstream log pipelines (docs/OBSERVABILITY.md)
KNOWN_EVENTS = (
    "backend.specialize",
    "jit.cc",
    "jit.quarantine",
    "guards.trip",
    "faults.fired",
    "frontend.eliminated",
    "resilience.retry",
    "resilience.fallback",
    "resilience.degraded",
    "dmem.rank.crash",
    "dmem.rank.failure",
    "dmem.retransmit",
    "dmem.checkpoint",
    "dmem.restore",
    "schedule.time_tile.refused",
    "tuning.trial",
    "tuning.candidate.refused",
    "tuning.winner",
)

_lock = threading.Lock()
_ring: deque = deque(maxlen=EVENT_CAPACITY)
_by_name: Counter = Counter()
_evicted = 0
_sink = None  # resolved lazily; False = disabled, file object otherwise
_sink_forced = False  # set_sink() wins over the environment


def structured_enabled() -> bool:
    """Is the structured event log recording?  (mode events or trace)"""
    from .registry import mode

    return mode() in ("events", "trace")


def _resolve_sink():
    """Open the configured sink once (env-driven unless set_sink won)."""
    global _sink
    if _sink is not None or _sink_forced:
        return _sink
    raw = os.environ.get("SNOWFLAKE_EVENTS_SINK", "").strip()
    if not raw:
        _sink = False
    elif raw == "stderr":
        _sink = sys.stderr
    else:
        try:
            _sink = open(raw, "a", encoding="utf-8")  # noqa: SIM115
        except OSError:
            _sink = False  # a bad sink must never take down the host
    return _sink


def set_sink(target) -> None:
    """Programmatic sink: a file-like object, a path, or ``None``.

    A non-``None`` target wins over ``SNOWFLAKE_EVENTS_SINK``;
    ``None`` drops the override and returns sink control to the
    environment (re-resolved on the next emit).
    """
    global _sink, _sink_forced
    with _lock:
        if target is None:
            _sink, _sink_forced = None, False
        elif isinstance(target, (str, os.PathLike)):
            _sink = open(target, "a", encoding="utf-8")  # noqa: SIM115
            _sink_forced = True
        else:
            _sink, _sink_forced = target, True


def emit(name: str, **fields) -> None:
    """Record one structured event (no-op outside events/trace modes).

    ``fields`` must be JSON-serializable; anything that is not is
    stringified rather than raised — the event log records failures, it
    must not cause them.
    """
    if not structured_enabled():
        return
    from . import tracing

    rec = {
        "schema": EVENTS_SCHEMA,
        "t": round(time.time(), 6),
        "event": name,
        "span": tracing.current_span_id(),
        "thread": threading.get_native_id(),
    }
    for k, v in fields.items():
        if k in rec:
            k = f"field_{k}"  # never let a payload clobber the envelope
        rec[k] = v
    try:
        line = json.dumps(rec, sort_keys=True)
    except (TypeError, ValueError):
        rec = {
            k: (v if isinstance(v, (str, int, float, bool, type(None)))
                else repr(v))
            for k, v in rec.items()
        }
        line = json.dumps(rec, sort_keys=True)
    global _evicted
    with _lock:
        if len(_ring) == EVENT_CAPACITY:
            _evicted += 1
        _ring.append(rec)
        _by_name[name] += 1
        sink = _resolve_sink()
        if sink:
            try:
                sink.write(line + "\n")
                sink.flush()
            except (OSError, ValueError):
                pass  # a dead sink must not take down the pipeline


def records() -> list[dict]:
    """Copy of the buffered records, oldest first."""
    with _lock:
        return [dict(r) for r in _ring]


def counts_by_name() -> dict[str, int]:
    """Total emits per event name (survives ring eviction)."""
    with _lock:
        return dict(_by_name)


def dropped() -> int:
    """Records evicted from the ring because it was full."""
    return _evicted


def reset() -> None:
    """Drop the ring and the per-name totals (test isolation)."""
    global _evicted, _sink
    with _lock:
        _ring.clear()
        _by_name.clear()
        _evicted = 0
        if not _sink_forced:
            _sink = None  # re-resolve the env next emit


def validate_events(recs: list[dict]) -> list[str]:
    """Structural check of event records; returns problems.

    Every record must carry the schema tag, a non-empty event name, a
    numeric timestamp, and JSON-roundtrip cleanly.
    """
    problems: list[str] = []
    for i, rec in enumerate(recs):
        if rec.get("schema") != EVENTS_SCHEMA:
            problems.append(f"record {i}: schema != {EVENTS_SCHEMA!r}")
        if not rec.get("event"):
            problems.append(f"record {i}: missing event name")
        if not isinstance(rec.get("t"), (int, float)):
            problems.append(f"record {i}: bad timestamp {rec.get('t')!r}")
        try:
            json.dumps(rec)
        except (TypeError, ValueError) as e:
            problems.append(f"record {i}: not JSON-serializable ({e})")
    return problems
