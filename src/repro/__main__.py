"""Command-line entry point: ``python -m repro <command>``.

Commands:

* ``info``      — environment report: backends, compiler, cache, machine
* ``selftest``  — compile-and-run a stencil through every backend
* ``figures``   — alias for ``python -m repro.figures ...``
"""

from __future__ import annotations

import argparse
import sys


def cmd_info() -> None:
    import shutil

    import numpy as np

    from . import __version__, available_backends
    from .backends import HAVE_COMPILED_BACKENDS
    from .backends.jit import cache_dir, _cc

    print(f"repro-snowflake {__version__}")
    print(f"python {sys.version.split()[0]}, numpy {np.__version__}")
    print(f"backends: {', '.join(available_backends())}")
    cc = _cc()
    print(
        f"compiler: {cc} "
        f"({'found' if shutil.which(cc) else 'NOT FOUND'}; "
        f"compiled backends "
        f"{'available' if HAVE_COMPILED_BACKENDS else 'unavailable'})"
    )
    print(f"jit cache: {cache_dir()}")
    try:
        from .machine.specs import host_spec

        spec = host_spec()
        print(f"host STREAM-dot bandwidth: {spec.stream_bw / 1e9:.2f} GB/s")
    except Exception as e:  # pragma: no cover - measurement best-effort
        print(f"host bandwidth: unavailable ({e})")


def cmd_selftest() -> int:
    import numpy as np

    from . import Component, RectDomain, Stencil, WeightArray, available_backends

    lap = Component("u", WeightArray([[0, 1, 0], [1, -4, 1], [0, 1, 0]]))
    stencil = Stencil(lap, "out", RectDomain((1, 1), (-1, -1)))
    rng = np.random.default_rng(0)
    u = rng.random((34, 34))
    ref = None
    failed = 0
    for backend in available_backends():
        out = np.zeros_like(u)
        try:
            stencil.compile(backend=backend)(u=u, out=out)
        except Exception as e:
            print(f"  {backend:12s} ERROR: {e}")
            failed += 1
            continue
        if ref is None:
            ref = out
        ok = np.allclose(out, ref)
        print(f"  {backend:12s} {'OK' if ok else 'MISMATCH'}")
        failed += 0 if ok else 1
    print("selftest:", "PASS" if failed == 0 else f"FAIL ({failed})")
    return 1 if failed else 0


def main(argv=None) -> int:
    ap = argparse.ArgumentParser(prog="repro")
    sub = ap.add_subparsers(dest="command", required=True)
    sub.add_parser("info", help="environment report")
    sub.add_parser("selftest", help="run every backend on a probe stencil")
    fig = sub.add_parser("figures", help="regenerate paper figures")
    fig.add_argument("rest", nargs=argparse.REMAINDER)
    args = ap.parse_args(argv)

    if args.command == "info":
        cmd_info()
        return 0
    if args.command == "selftest":
        return cmd_selftest()
    if args.command == "figures":
        from .figures.__main__ import main as fig_main

        fig_main(args.rest)
        return 0
    raise AssertionError(args.command)


if __name__ == "__main__":
    raise SystemExit(main())
