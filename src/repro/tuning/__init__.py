"""Autotuning utilities for the compiled micro-compilers."""

from .autotune import DEFAULT_CANDIDATES, TuneResult, autotune_tile

__all__ = ["DEFAULT_CANDIDATES", "TuneResult", "autotune_tile"]
