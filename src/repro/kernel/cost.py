"""Analytic per-point cost model over the kernel IR.

Conventions follow the paper's SectionV-B *compulsory traffic* model
(double precision, write-allocate caches, no cache-bypass stores, no
capacity/conflict misses):

* **bytes/point** — each *distinct grid* read costs one word (perfect
  in-sweep reuse of neighbouring loads), the store costs one word, and
  a write-allocate cache first fills the written line unless the sweep
  already reads the output grid.  This reproduces the paper's quoted
  24 / 40 / 64 bytes per stencil for the constant-coefficient 7-point
  Laplacian, the constant-coefficient Jacobi smoother and the
  variable-coefficient GSRB smoother (asserted exactly in
  :mod:`repro.bench` and the test suite);
* **flops/point** — IEEE operations executed per iteration point of
  the *optimized* body: add/mul/div count 1, a structural FMA counts
  2.  Depth-0 (hoisted) bindings are excluded — they run once per
  sweep, not per point.

``flops / bytes`` is the arithmetic intensity the roofline model
positions against the machine balance.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import TYPE_CHECKING

from .ir import KAdd, KDiv, KFma, KMul, KernelBody, walk

if TYPE_CHECKING:  # pragma: no cover
    from ..core.stencil import Stencil

__all__ = [
    "KernelCost",
    "SweptCost",
    "body_cost",
    "kernel_cost",
    "swept_cost",
    "WORD_BYTES",
]

#: double precision word, the paper's convention.
WORD_BYTES = 8.0


@dataclass(frozen=True)
class KernelCost:
    """Per-point analytic cost of one stencil sweep."""

    flops_per_point: int
    read_grids: int        # distinct grids read
    loads_per_point: int   # distinct loads the optimized body performs
    bytes_per_point: float
    write_allocate: bool

    @property
    def arithmetic_intensity(self) -> float:
        """Flops per byte of compulsory traffic."""
        return self.flops_per_point / self.bytes_per_point

    def to_dict(self) -> dict:
        return {
            "flops_per_point": self.flops_per_point,
            "read_grids": self.read_grids,
            "loads_per_point": self.loads_per_point,
            "bytes_per_point": self.bytes_per_point,
            "arithmetic_intensity": self.arithmetic_intensity,
            "write_allocate": self.write_allocate,
        }


def body_cost(
    body: KernelBody, output: str, *, write_allocate: bool = True
) -> KernelCost:
    """Cost a kernel body writing grid ``output``."""
    read_grids = body.grids()
    traffic = WORD_BYTES * len(read_grids)
    traffic += WORD_BYTES  # the store itself
    if write_allocate and output not in read_grids:
        traffic += WORD_BYTES  # write-allocate fill of the stored line
    flops = 0
    for expr in [l.expr for l in body.inner_lets()] + [body.result]:
        for node in walk(expr):
            if isinstance(node, (KAdd, KMul, KDiv)):
                flops += 1
            elif isinstance(node, KFma):
                flops += 2
    return KernelCost(
        flops_per_point=flops,
        read_grids=len(read_grids),
        loads_per_point=len(body.loads()),
        bytes_per_point=traffic,
        write_allocate=write_allocate,
    )


@dataclass(frozen=True)
class SweptCost:
    """Predicted compulsory traffic of a time-tiled (swept) sweep.

    Extends the single-sweep model to ``k`` fused applications: when
    the spatial tile stays cache-resident across the time steps, each
    distinct grid is read from DRAM once and the output written back
    once *for all k applications*, so the per-application traffic
    divides by ``~k``; a tile that overflows the cache round-trips the
    grids every application and the fusion buys nothing.
    """

    k: int
    base_bytes_per_point: float
    swept_bytes_per_point: float
    cache_resident: bool

    @property
    def traffic_reduction(self) -> float:
        """Predicted DRAM-traffic reduction factor (>= 1)."""
        return self.base_bytes_per_point / self.swept_bytes_per_point

    def to_dict(self) -> dict:
        return {
            "k": self.k,
            "base_bytes_per_point": self.base_bytes_per_point,
            "swept_bytes_per_point": self.swept_bytes_per_point,
            "cache_resident": self.cache_resident,
            "traffic_reduction": self.traffic_reduction,
        }


def swept_cost(
    body: KernelBody,
    output: str,
    k: int,
    *,
    tile_bytes: float | None = None,
    cache_bytes: float | None = None,
    write_allocate: bool = True,
) -> SweptCost:
    """Predict per-application traffic of a ``time_tile=k`` sweep.

    ``tile_bytes`` is the working set of one spatial block (all grids
    the block touches); ``cache_bytes`` the capacity it must fit in.
    When either is unknown the tile is assumed resident — the
    best-case (compulsory-only) convention the whole cost model uses.
    """
    if k < 1:
        raise ValueError(f"time tile k must be >= 1, got {k!r}")
    base = body_cost(body, output, write_allocate=write_allocate)
    resident = True
    if tile_bytes is not None and cache_bytes is not None:
        resident = tile_bytes <= cache_bytes
    if k == 1 or not resident:
        swept = base.bytes_per_point
    else:
        swept = base.bytes_per_point / k
    return SweptCost(
        k=k,
        base_bytes_per_point=base.bytes_per_point,
        swept_bytes_per_point=swept,
        cache_resident=resident,
    )


def kernel_cost(
    stencil: "Stencil",
    *,
    write_allocate: bool = True,
    optimize: bool = True,
) -> KernelCost:
    """Cost one stencil from its (by default optimized) kernel body."""
    from .lower import body_for

    body, _ = body_for(stencil, optimize=optimize)
    return body_cost(body, stencil.output, write_allocate=write_allocate)
