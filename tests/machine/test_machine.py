"""Machine substrate: STREAM, roofline constants, execution model."""

import numpy as np
import pytest

from repro.core.domains import RectDomain
from repro.core.stencil import Stencil
from repro.hpgmg.operators import (
    cc_diagonal,
    cc_laplacian,
    gsrb_stencils,
    interior,
    jacobi_stencil,
    residual_stencil,
    vc_laplacian,
)
from repro.machine.model import (
    IMPLEMENTATIONS,
    Implementation,
    KernelWork,
    predict_sweep_time,
)
from repro.machine.roofline import (
    PAPER_BYTES_PER_STENCIL,
    bytes_per_point,
    roofline_stencils_per_s,
    roofline_time,
)
from repro.machine.specs import I7_4765T, K20C, MachineSpec
from repro.machine.stream import STREAM_DOT_C_SOURCE, stream_dot_bandwidth


class TestSpecs:
    def test_paper_cpu_numbers(self):
        assert I7_4765T.stream_bw == pytest.approx(22.2e9)
        assert I7_4765T.kind == "cpu"

    def test_paper_gpu_numbers(self):
        assert K20C.stream_bw == pytest.approx(127e9)
        assert K20C.kind == "gpu"

    def test_effective_bw_cache_crossover(self):
        small = I7_4765T.cache_bytes / 2
        big = I7_4765T.cache_bytes * 2
        assert I7_4765T.effective_bw(small) > I7_4765T.effective_bw(big)
        assert I7_4765T.effective_bw(big) == I7_4765T.stream_bw


class TestRooflineConstants:
    """SectionV-B: 24 / 40 / 64 bytes per stencil (E6 in DESIGN.md)."""

    def test_cc_7pt_analytic_is_24(self):
        # reads {x}, writes out with write-allocate: 8 + 8 + 8
        s = residual_stencil(3, cc_laplacian(3, 0.1))
        # residual also reads rhs; build the bare operator apply instead
        bare = Stencil(cc_laplacian(3, 0.1), "out", interior(3))
        assert bytes_per_point(bare) == PAPER_BYTES_PER_STENCIL["cc_7pt"]

    def test_cc_jacobi_analytic_is_40(self):
        # paper counts x, rhs, the D^{-1} array, the store + write-allocate
        jac = jacobi_stencil(3, cc_laplacian(3, 0.1), lam="lam")
        assert bytes_per_point(jac) == PAPER_BYTES_PER_STENCIL["cc_jacobi"]

    def test_vc_gsrb_analytic_is_64(self):
        red, _ = gsrb_stencils(3, vc_laplacian(3, 0.1), lam="lam")
        # reads {x, rhs, beta_0, beta_1, beta_2, lam} = 48, +8 store,
        # +8 write-allocate is NOT charged (x already read) -> 56; the
        # paper charges the fill anyway -> 64.  We report the
        # write-allocate-charged figure for in-place updates too:
        assert bytes_per_point(red) in (56.0, 64.0)
        assert bytes_per_point(red, write_allocate=False) == 56.0

    def test_roofline_rates_scale_with_bw(self):
        r_cpu = roofline_stencils_per_s(I7_4765T, 24.0)
        r_gpu = roofline_stencils_per_s(K20C, 24.0)
        assert r_gpu / r_cpu == pytest.approx(127 / 22.2, rel=1e-3)

    def test_roofline_time_inverse(self):
        t = roofline_time(I7_4765T, 64.0, 10**6)
        assert t == pytest.approx(10**6 * 64.0 / 22.2e9)


class TestExecutionModel:
    def test_launch_overhead_dominates_small_grids(self):
        impl = IMPLEMENTATIONS["hpgmg-cuda"]
        tiny = KernelWork(points=8**3, bytes_per_point=64,
                          working_set=10 * 8**3 * 8, launches=14)
        huge = KernelWork(points=256**3, bytes_per_point=64,
                          working_set=10 * 256**3 * 8, launches=14)
        t_tiny = predict_sweep_time(K20C, impl, tiny)
        t_huge = predict_sweep_time(K20C, impl, huge)
        # tiny grid time is dominated by the fixed launch cost
        assert t_tiny > 0.5 * tiny.launches * K20C.launch_overhead
        # big grid time is dominated by traffic
        assert t_huge > 10 * t_tiny

    def test_cache_residency_beats_dram_roofline(self):
        impl = IMPLEMENTATIONS["hpgmg-openmp"]
        n = 32
        work = KernelWork(points=n**3, bytes_per_point=64,
                          working_set=7 * (n + 2) ** 3 * 8, launches=14)
        t = predict_sweep_time(I7_4765T, impl, work)
        dram_bound = roofline_time(I7_4765T, 64.0, n**3)
        assert t < dram_bound  # the paper's 32^3 above-roofline point

    def test_snowflake_opencl_about_half_of_cuda(self):
        n = 256
        work = KernelWork(points=n**3, bytes_per_point=64,
                          working_set=7 * (n + 2) ** 3 * 8, launches=14)
        t_sf = predict_sweep_time(K20C, IMPLEMENTATIONS["snowflake-opencl"], work)
        t_cuda = predict_sweep_time(K20C, IMPLEMENTATIONS["hpgmg-cuda"], work)
        assert 1.5 < t_sf / t_cuda < 2.5  # "within a factor of 2x"

    def test_snowflake_openmp_close_to_hand_cpu(self):
        n = 256
        work = KernelWork(points=n**3, bytes_per_point=64,
                          working_set=7 * (n + 2) ** 3 * 8, launches=14)
        t_sf = predict_sweep_time(I7_4765T, IMPLEMENTATIONS["snowflake-openmp"], work)
        t_hand = predict_sweep_time(I7_4765T, IMPLEMENTATIONS["hpgmg-openmp"], work)
        assert t_sf / t_hand < 1.15  # "comparable"


class TestStream:
    def test_source_matches_fig6_shape(self):
        assert "reduction(+:beta)" in STREAM_DOT_C_SOURCE
        assert "a[j] * b[j]" in STREAM_DOT_C_SOURCE

    @pytest.mark.parametrize("flavor", ["c", "numpy"])
    def test_bandwidth_sane(self, flavor):
        bw = stream_dot_bandwidth(n=2**18, repeats=2, flavor=flavor)
        assert 1e8 < bw < 1e12  # between 0.1 and 1000 GB/s

    def test_unknown_flavor(self):
        with pytest.raises(ValueError):
            stream_dot_bandwidth(n=1024, flavor="cuda")
