"""Autotuning utilities for the compiled micro-compilers."""

from .autotune import (
    DEFAULT_CANDIDATES,
    ScheduleTuneResult,
    TuneResult,
    autotune_schedule,
    autotune_tile,
    default_schedule_candidates,
)

__all__ = [
    "DEFAULT_CANDIDATES",
    "ScheduleTuneResult",
    "TuneResult",
    "autotune_schedule",
    "autotune_tile",
    "default_schedule_candidates",
]
