"""Lower :class:`~repro.core.flatten.FlatStencil` to a raw kernel body.

This is the **single** lowering point: every backend obtains its loop
body through :func:`body_for` (cached per stencil instance), so the
scalar expression is lowered — and, when enabled, optimized — exactly
once no matter how many backends compile the stencil.

The raw lowering is bit-compatible with the historical term-by-term
emission used by every backend before the kernel IR existed:

* each term multiplies left-associatively
  ``((coeff * p1) * p2) / d1 / d2 * r1 * r2``
  (numerator params in sorted order, then denominator divisions, then
  grid-read factors in signature order — exactly the legacy C text and
  the legacy interpreter loop);
* terms are summed fold-left in flat order, with no leading zero
  (matching the C emitter; the old interpreter's ``0.0 + t1`` prefix
  differed only on −0.0 edge cases);
* an empty body lowers to ``0.0``.
"""

from __future__ import annotations

from typing import TYPE_CHECKING

from ..core.flatten import FlatStencil, FlatTerm
from .ir import KAdd, KConst, KDiv, KExpr, KLoad, KMul, KParam, KernelBody

if TYPE_CHECKING:  # pragma: no cover
    from ..core.stencil import Stencil

__all__ = ["lower_flat", "lower_term", "body_for"]


def lower_term(term: FlatTerm) -> KExpr:
    """One flat term as a left-associative scalar expression."""
    expr: KExpr = KConst(term.coeff)
    for p in term.params:
        expr = KMul(expr, KParam(p))
    for p in term.denom_params:
        expr = KDiv(expr, KParam(p))
    for read in term.reads:
        expr = KMul(expr, KLoad(read.grid, read.offset, read.scale))
    return expr


def lower_flat(flat: FlatStencil) -> KernelBody:
    """Lower the canonical flat form to a raw (un-optimized) body."""
    if not flat.terms:
        return KernelBody(flat.ndim, (), KConst(0.0))
    expr = lower_term(flat.terms[0])
    for term in flat.terms[1:]:
        expr = KAdd(expr, lower_term(term))
    return KernelBody(flat.ndim, (), expr)


def body_for(stencil: "Stencil", optimize: bool | None = None):
    """``(KernelBody, OptReport | None)`` for ``stencil``, cached.

    ``optimize=None`` consults the package-level toggle
    (:func:`repro.kernel.optimization_enabled`).  Both variants are
    cached on the stencil instance, so repeated compiles — and the six
    backends — all share one lowering.  The raw variant carries no
    report.
    """
    if optimize is None:
        from . import optimization_enabled

        optimize = optimization_enabled()
    cache = stencil.__dict__.setdefault("_kernel_bodies", {})
    key = bool(optimize)
    if key not in cache:
        raw = lower_flat(stencil.flat)
        if key:
            from .optimize import optimize_kernel

            cache[key] = optimize_kernel(raw)
        else:
            cache[key] = (raw, None)
    return cache[key]
