"""Pipeline telemetry: counters, timers, traces with near-zero cost.

"You cannot claim a hot path got faster without counters and traces" —
this package is the observability layer under the repo's measurement
discipline.  Every stage of the compile/execute pipeline reports here:

* frontend passes (``frontend.pass.*`` timers, stencils eliminated),
* the JIT (cache hit/miss/quarantine, compiler wall time, lock waits),
* every backend's kernel invocations (calls, seconds, points/s),
* the resilience layer (fallback activations, retries, guard trips,
  injected faults fired),
* the simulated distributed fabric (messages, bytes, barriers,
  exchange wall time).

Two collection surfaces:

* the **registry** (:mod:`repro.telemetry.registry`) — aggregate
  counters/timers/kernel stats, controlled with
  ``SNOWFLAKE_TELEMETRY=off|counters|trace`` (default ``counters``;
  ``off`` reduces every hook to one cached string compare).  Read with
  :func:`snapshot`, export the perf trajectory with
  :func:`export_bench_json` (→ ``BENCH_pipeline.json``), render with
  ``python -m repro stats``;
* the **span tracer** (:mod:`repro.telemetry.tracing`) — hierarchical
  timed spans across every subsystem, exported as Chrome trace-event
  JSON for Perfetto (``python -m repro trace``).  Records inside a
  ``tracing.session()`` block or whenever ``SNOWFLAKE_TELEMETRY=trace``.
"""

from . import tracing
from .registry import (
    BENCH_SCHEMA,
    MODES,
    TRACE_CAPACITY,
    count,
    enabled,
    event,
    events_enabled,
    export_bench_json,
    kernel_call,
    mode,
    record_time,
    reset,
    set_mode,
    snapshot,
    timed,
)
from .report import format_stats, render_stats

__all__ = [
    "BENCH_SCHEMA",
    "MODES",
    "TRACE_CAPACITY",
    "count",
    "enabled",
    "event",
    "events_enabled",
    "export_bench_json",
    "format_stats",
    "kernel_call",
    "mode",
    "record_time",
    "render_stats",
    "reset",
    "set_mode",
    "snapshot",
    "timed",
    "tracing",
]
