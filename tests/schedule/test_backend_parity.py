"""Every backend executes the same Schedule bit-identically.

The tentpole guarantee of the schedule IR: structure is decided once,
so the six backends — including the OpenCL/CUDA simulators running
fused multicolor GSRB they previously could not express — produce
bitwise-identical grids from the same prebuilt :class:`Schedule`.
"""

import numpy as np
import pytest

from repro.schedule import ScheduleOptions, schedule_for
from tests._helpers import ALL_BACKENDS
from tests.schedule._cases import fusable_pair_group, gsrb_workload

#: backends with no toolchain requirement (the CI schedule-parity job)
SIM_BACKENDS = ("python", "numpy", "opencl-sim", "cuda-sim")


def run_with_schedule(group, shapes, arrays, backend, sched):
    work = {g: a.copy() for g, a in arrays.items()}
    group.compile(backend=backend, shapes=shapes, schedule=sched)(**work)
    return work


class TestFusedMulticolorParity:
    @pytest.mark.parametrize("backend", ALL_BACKENDS)
    def test_gsrb_bitwise_identical_from_one_schedule(self, backend):
        group, shapes, arrays = gsrb_workload()
        sched = schedule_for(
            group, shapes, ScheduleOptions(fuse=True, multicolor=True)
        )
        ref = run_with_schedule(group, shapes, arrays, "python", sched)
        got = run_with_schedule(group, shapes, arrays, backend, sched)
        for g in sorted(shapes):
            np.testing.assert_array_equal(
                got[g], ref[g],
                err_msg=f"backend {backend!r} diverges on {g!r}",
            )

    @pytest.mark.parametrize("backend", ("opencl-sim", "cuda-sim"))
    def test_gpu_sims_execute_parity_kernels(self, backend):
        # The schedule carries the multicolor sweeps; the GPU programs
        # must actually lower them to parity-corrected kernels.
        from repro.backends.cuda_backend import generate_cuda_program
        from repro.backends.opencl_backend import generate_opencl_program

        group, shapes, _ = gsrb_workload()
        gen = (
            generate_opencl_program
            if backend == "opencl-sim"
            else generate_cuda_program
        )
        program = gen(
            group, shapes, np.float64, fuse=True, multicolor=True
        )
        assert "_p" in program.source  # parity kernels were emitted

    @pytest.mark.parametrize("backend", ALL_BACKENDS)
    def test_fused_chain_parity(self, backend):
        group, shapes = fusable_pair_group()
        rng = np.random.default_rng(11)
        arrays = {g: rng.standard_normal(s) for g, s in shapes.items()}
        sched = schedule_for(group, shapes, ScheduleOptions(fuse=True))
        ref = run_with_schedule(group, shapes, arrays, "python", sched)
        got = run_with_schedule(group, shapes, arrays, backend, sched)
        for g in sorted(shapes):
            np.testing.assert_array_equal(got[g], ref[g])


class TestScheduleVsLegacyEquivalence:
    """Loose knobs and a prebuilt Schedule are the same computation."""

    @pytest.mark.parametrize("backend", ALL_BACKENDS)
    def test_knobs_equal_prebuilt_schedule(self, backend):
        group, shapes, arrays = gsrb_workload()
        knobs = {"fuse": True, "multicolor": True}
        sched = schedule_for(group, shapes, ScheduleOptions(**knobs))
        via_sched = run_with_schedule(group, shapes, arrays, backend, sched)
        via_knobs = {g: a.copy() for g, a in arrays.items()}
        group.compile(backend=backend, shapes=shapes, **knobs)(**via_knobs)
        for g in sorted(shapes):
            np.testing.assert_array_equal(via_knobs[g], via_sched[g])

    @pytest.mark.parametrize("policy", ("greedy", "wavefront", "serial"))
    def test_policies_agree_on_hpgmg_results(self, policy):
        # Any legal barrier policy computes the same function.
        group, shapes, arrays = gsrb_workload()
        ref = {g: a.copy() for g, a in arrays.items()}
        group.compile(backend="numpy", shapes=shapes)(**ref)
        got = {g: a.copy() for g, a in arrays.items()}
        group.compile(backend="numpy", shapes=shapes, schedule=policy)(
            **got
        )
        for g in sorted(shapes):
            np.testing.assert_array_equal(got[g], ref[g])

    def test_default_c_results_unchanged_by_refactor(self):
        # The greedy default preserves program order, so the C backend's
        # default output must equal the plain sequential reference.
        group, shapes, arrays = gsrb_workload()
        ref = {g: a.copy() for g, a in arrays.items()}
        group.compile(backend="python", shapes=shapes)(**ref)
        got = {g: a.copy() for g, a in arrays.items()}
        group.compile(backend="c", shapes=shapes)(**got)
        for g in sorted(shapes):
            np.testing.assert_array_equal(got[g], ref[g])
