"""Figure8 — VC GSRB smoother time across the multigrid size ladder.

The paper sweeps 32³…256³ and shows (a) runtime tracking the Roofline
bound as size shrinks, (b) the smallest CPU sizes *beating* the DRAM
roofline because they fit in cache, and (c) the GPU curve flattening at
small sizes where kernel-launch overhead dominates.  The host sweep is
measured; the paper platforms are modeled with exactly those three
mechanisms (cache residency, bandwidth, launch overhead).
"""

from __future__ import annotations

from ..machine.model import IMPLEMENTATIONS, predict_sweep_time
from ..machine.roofline import PAPER_BYTES_PER_STENCIL, roofline_time
from ..machine.specs import I7_4765T, K20C, host_spec
from ..util.tables import format_table
from ..util.timing import best_of
from .common import build_case, operator_work
from .fig7 import _baseline_runner

__all__ = ["run", "main"]

PAPER_SIZES = (32, 64, 128, 256)
HOST_SIZES = (16, 32, 64)


def run(host_sizes=HOST_SIZES, model_sizes=PAPER_SIZES, repeats: int = 3,
        backend: str = "openmp"):
    headers = ["platform", "size", "Snowflake (s)", "HPGMG (s)",
               "Roofline (s)", "source"]
    rows = []
    spec = host_spec()
    bpp = PAPER_BYTES_PER_STENCIL["vc_gsrb"]
    for n in host_sizes:
        case = build_case("vc_gsrb", n)
        t_sf = best_of(case.compile(backend), warmup=1, repeats=repeats)
        t_bl = best_of(
            _baseline_runner("vc_gsrb", build_case("vc_gsrb", n)),
            warmup=1, repeats=repeats,
        )
        work = operator_work("vc_gsrb", n)
        # DRAM-based bound (the paper's flat roofline): cache-resident
        # small sizes legitimately beat it.
        bound = roofline_time(spec, bpp, work.points)
        rows.append(["host", f"{n}^3", t_sf, t_bl, bound, "measured"])
    for plat, spec_p, sf_impl, hand_impl in (
        ("Core i7-4765T", I7_4765T, "snowflake-openmp", "hpgmg-openmp"),
        ("K20c GPU", K20C, "snowflake-opencl", "hpgmg-cuda"),
    ):
        for n in model_sizes:
            work = operator_work("vc_gsrb", n)
            t_sf = predict_sweep_time(spec_p, IMPLEMENTATIONS[sf_impl], work)
            t_hand = predict_sweep_time(spec_p, IMPLEMENTATIONS[hand_impl], work)
            bound = roofline_time(spec_p, bpp, work.points)
            rows.append([plat, f"{n}^3", t_sf, t_hand, bound, "model"])
    return headers, rows


def main(**kw) -> str:
    headers, rows = run(**kw)
    out = format_table(
        headers, rows, title="Fig.8 — VC GSRB smoother time vs problem size"
    )
    print(out)
    return out


if __name__ == "__main__":  # pragma: no cover
    main()
