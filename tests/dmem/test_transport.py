"""Reliable transport: exactly-once halo delivery over a lossy wire.

Unit tests for the envelope format and each protocol mechanism, plus
the acceptance property: under any combination of injected drops,
duplicates, reordering, and corruption, every message is delivered
exactly once, in order, bit-for-bit.
"""

import warnings

import numpy as np
import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.dmem.comm import RankFailure, SimComm
from repro.dmem.transport import (
    ReliableComm,
    TransportError,
    _CorruptEnvelope,
    _pack,
    _unpack,
)
from repro.resilience import faults
from repro.resilience.faults import inject
from repro.resilience.guards import Guards, GuardViolation, GuardWarning

pytestmark = pytest.mark.faults


class TestEnvelope:
    def test_roundtrip(self):
        payload = np.arange(12.0).reshape(3, 4)
        seq, got = _unpack(_pack(7, payload))
        assert seq == 7
        np.testing.assert_array_equal(got, payload)
        assert got.dtype == payload.dtype

    def test_roundtrip_preserves_dtype(self):
        payload = np.array([1, 2, 3], dtype=np.int32)
        _, got = _unpack(_pack(0, payload))
        assert got.dtype == np.int32

    def test_any_bitflip_detected(self):
        env = _pack(3, np.ones(5))
        for pos in range(0, len(env), 7):
            bad = env.copy()
            bad[pos] ^= 0x40
            with pytest.raises(_CorruptEnvelope):
                _unpack(bad)

    def test_truncation_detected(self):
        env = _pack(0, np.ones(5))
        with pytest.raises(_CorruptEnvelope, match="truncated"):
            _unpack(env[:10])
        with pytest.raises(_CorruptEnvelope, match="CRC"):
            _unpack(env[:-1])


class TestReliableDelivery:
    def test_clean_roundtrip(self):
        a, b = ReliableComm.world(2)
        data = np.arange(6.0).reshape(2, 3)
        assert a.rsend(data, 1) == 0
        np.testing.assert_array_equal(b.rrecv(0), data)
        assert b.stats.acked == 1

    def test_sequenced_in_order(self):
        a, b = ReliableComm.world(2)
        for i in range(4):
            assert a.rsend(np.full(2, float(i)), 1) == i
        for i in range(4):
            np.testing.assert_array_equal(
                b.rrecv(0), np.full(2, float(i))
            )

    def test_send_drop_healed_by_retransmit(self):
        a, b = ReliableComm.world(2)
        data = np.arange(8.0)
        with inject("comm.send.drop", times=1):
            a.rsend(data, 1)
        np.testing.assert_array_equal(b.rrecv(0), data)
        assert b.stats.retransmits >= 1

    def test_recv_drop_healed_by_retransmit(self):
        a, b = ReliableComm.world(2)
        data = np.arange(8.0)
        a.rsend(data, 1)
        with inject("comm.recv.drop", times=1):
            np.testing.assert_array_equal(b.rrecv(0), data)
        assert b.stats.retransmits >= 1

    def test_corruption_healed_silently_with_guards_off(self):
        a, b = ReliableComm.world(2)  # Guards() default: all off
        data = np.arange(8.0)
        with inject("comm.payload.corrupt", times=1):
            a.rsend(data, 1)
        with warnings.catch_warnings():
            warnings.simplefilter("error", GuardWarning)
            np.testing.assert_array_equal(b.rrecv(0), data)
        assert b.stats.crc_failures == 1
        assert b.stats.retransmits >= 1

    def test_corruption_warns_and_heals_with_guard_warn(self):
        a, b = ReliableComm.world(
            2, guards=Guards(halo_checksum="warn")
        )
        data = np.arange(8.0)
        with inject("comm.payload.corrupt", times=1):
            a.rsend(data, 1)
        with pytest.warns(GuardWarning, match="corrupted in flight"):
            np.testing.assert_array_equal(b.rrecv(0), data)

    def test_corruption_fatal_with_guard_raise(self):
        a, b = ReliableComm.world(
            2, guards=Guards(halo_checksum="raise")
        )
        with inject("comm.payload.corrupt", times=1):
            a.rsend(np.ones(4), 1)
        with pytest.raises(GuardViolation, match="corrupted in flight"):
            b.rrecv(0)

    def test_duplicate_discarded(self):
        a, b = ReliableComm.world(2)
        data = np.arange(3.0)
        with inject("comm.msg.duplicate", times=1):
            a.rsend(data, 1)
        np.testing.assert_array_equal(b.rrecv(0), data)
        assert b.stats.duplicates == 1

    def test_reorder_reassembled_in_order(self):
        a, b = ReliableComm.world(2)
        with inject("comm.msg.reorder", times=1):
            a.rsend(np.zeros(2), 1)  # held back by the fault...
            a.rsend(np.ones(2), 1)   # ...travels first, flushes it
        np.testing.assert_array_equal(b.rrecv(0), np.zeros(2))
        np.testing.assert_array_equal(b.rrecv(0), np.ones(2))
        assert b.stats.reordered == 1

    def test_reorder_of_final_message_recovered_via_nack(self):
        # nothing travels after the held-back envelope; the receiver's
        # retransmit request must flush it
        a, b = ReliableComm.world(2)
        data = np.arange(4.0)
        with inject("comm.msg.reorder", times=1):
            a.rsend(data, 1)
        np.testing.assert_array_equal(b.rrecv(0), data)

    def test_loss_beyond_budget_raises_transport_error(self):
        a, b = ReliableComm.world(2, max_retries=3)
        with inject("comm.send.drop", times=None):  # every (re)send lost
            a.rsend(np.ones(4), 1)
            with pytest.raises(TransportError, match="gave up on seq 0"):
                b.rrecv(0)
        assert b.stats.retransmits >= 3

    def test_never_sent_raises_transport_error(self):
        _, b = ReliableComm.world(2, max_retries=2)
        with pytest.raises(TransportError, match="protocol bug"):
            b.rrecv(0)

    def test_dead_peer_raises_rank_failure(self):
        a, b = ReliableComm.world(2)
        a.raw.kill(0)
        with pytest.raises(RankFailure) as ei:
            b.rrecv(0)
        assert ei.value.rank == 0

    def test_in_flight_message_from_dead_peer_still_delivered(self):
        # liveness is checked only after draining the wire: a crash
        # after send must not lose the already-transmitted envelope
        a, b = ReliableComm.world(2)
        data = np.arange(5.0)
        a.rsend(data, 1)
        a.raw.kill(0)
        np.testing.assert_array_equal(b.rrecv(0), data)
        with pytest.raises(RankFailure):
            b.rrecv(0)

    def test_attach_layers_over_existing_world(self):
        sims = SimComm.world(3)
        world = ReliableComm.attach(sims, max_retries=2)
        assert [rc.rank for rc in world] == [0, 1, 2]
        assert world[1].raw is sims[1]
        world[0].rsend(np.ones(2), 2, tag=9)
        np.testing.assert_array_equal(
            world[2].rrecv(0, tag=9), np.ones(2)
        )

    def test_reset_forgets_channels_and_purges_wire(self):
        a, b = ReliableComm.world(2)
        a.rsend(np.ones(2), 1)
        a.rsend(np.ones(2), 1)
        assert a.reset() == 2  # both envelopes purged
        # sequence numbers restart from zero on both sides
        assert a.rsend(np.zeros(2), 1) == 0
        np.testing.assert_array_equal(b.rrecv(0), np.zeros(2))


FAULT_SITES = (
    "comm.send.drop",
    "comm.recv.drop",
    "comm.payload.corrupt",
    "comm.msg.duplicate",
    "comm.msg.reorder",
)


class TestExactlyOnceProperty:
    """The acceptance property: any bounded combination of wire faults,
    delivery stays exactly-once, in-order, bit-for-bit."""

    @settings(max_examples=60, deadline=None)
    @given(
        n=st.integers(min_value=1, max_value=6),
        schedule=st.dictionaries(
            st.sampled_from(FAULT_SITES),
            st.tuples(
                st.integers(min_value=1, max_value=2),  # times
                st.integers(min_value=0, max_value=4),  # after
            ),
            max_size=len(FAULT_SITES),
        ),
    )
    def test_exactly_once_under_random_fault_schedules(self, n, schedule):
        faults.reset()
        try:
            # total possible fault firings = 2 per site * 5 sites = 10;
            # every failed delivery attempt consumes at least one armed
            # firing, so a retry budget above 10 always converges.
            a, b = ReliableComm.world(2, max_retries=12)
            for site, (times, after) in schedule.items():
                faults.arm(site, times=times, after=after)
            sent = [
                np.full(3, float(i)) + np.arange(3) * 0.5
                for i in range(n)
            ]
            for msg in sent:
                a.rsend(msg, 1)
            got = [b.rrecv(0) for _ in range(n)]
            for want, have in zip(sent, got):
                np.testing.assert_array_equal(have, want)
            # nothing left over: no unacked envelope, no undelivered
            # stash entry, no parked reorder, and any residual
            # duplicates on the wire are discarded, not delivered
            ch = b._state.channel((0, 1, 0))
            b._drain(ch, 0, 0)
            assert not ch.stash
            assert not ch.log
            assert not ch.delayed
            assert ch.next_in == n
        finally:
            faults.reset()
