"""The ``python -m repro`` command-line interface."""

import subprocess
import sys

import pytest


def run_cli(*args, timeout=300):
    return subprocess.run(
        [sys.executable, "-m", "repro", *args],
        capture_output=True, text=True, timeout=timeout,
    )


def test_info():
    proc = run_cli("info")
    assert proc.returncode == 0
    assert "repro-snowflake" in proc.stdout
    assert "backends:" in proc.stdout
    assert "compiler:" in proc.stdout


def test_selftest_passes():
    proc = run_cli("selftest")
    assert proc.returncode == 0
    assert "PASS" in proc.stdout
    assert "MISMATCH" not in proc.stdout


def test_requires_a_command():
    proc = run_cli()
    assert proc.returncode != 0


def test_figures_passthrough():
    proc = run_cli("figures", "fig6", "--repeats", "1", timeout=600)
    assert proc.returncode == 0
    assert "STREAM" in proc.stdout


def test_in_process_main():
    from repro.__main__ import main

    assert main(["selftest"]) == 0
