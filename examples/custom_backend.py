"""Writing your own micro-compiler (the paper's Fig.5 'compiler expert').

The whole point of the micro-compiler architecture is that a new target
is a small, self-contained piece of code consuming the canonical flat
form — not a fork of the framework.  This example registers a complete
(if deliberately simple) backend in ~40 lines: a tracing interpreter
that counts every term evaluation, then uses it to audit how much work
a red-black smoother does.

Run:  python examples/custom_backend.py
"""

import numpy as np

from repro import Component, RectDomain, Stencil, WeightArray
from repro.backends import Backend, get_backend, register_backend
from repro.core.validate import iteration_shape


class CountingBackend(Backend):
    """Runs stencils point-by-point and tallies work — a profiler target.

    A real new target (CUDA, SIMD intrinsics, a cluster) implements the
    same single method: consume ``stencil.flat`` (sum of products of
    affine grid reads) + the resolved domain, produce a callable.
    """

    name = "counting"

    def __init__(self):
        self.points = 0
        self.terms = 0

    def specializer(self, group, **options):
        backend = self

        def specialize(shapes, dtype):
            def impl(arrays, params):
                for st in group:
                    out = arrays[st.output]
                    snap = out.copy() if st.is_inplace() else None
                    src = lambda g: snap if (snap is not None and g == st.output) else arrays[g]
                    for rect in st.domain.resolve(iteration_shape(st, shapes)):
                        for pt in rect.points():
                            val = 0.0
                            for term in st.flat.terms:
                                v = term.coeff
                                for p in term.params:
                                    v *= params[p]
                                for r in term.reads:
                                    idx = tuple(
                                        s * i + o for s, i, o in
                                        zip(r.scale, pt, r.offset)
                                    )
                                    v *= src(r.grid)[idx]
                                val += v
                                backend.terms += 1
                            out[st.output_map.apply(pt)] = val
                            backend.points += 1

            return impl

        return specialize


counter = CountingBackend()
register_backend(counter)
print("registered:", get_backend("counting").name)

# -- audit a red-black smoother with it ---------------------------------------
N = 34
red = RectDomain((1, 1), (-1, -1), (2, 2)) + RectDomain((2, 2), (-1, -1), (2, 2))
body = Component("u", WeightArray([[0, 0.25, 0], [0.25, 0, 0.25], [0, 0.25, 0]]))
st = Stencil(body, "u", red, name="red_sweep")

u = np.random.default_rng(1).random((N, N))
u_ref = u.copy()

st.compile(backend="counting")(u=u)
st.compile(backend="numpy")(u=u_ref)

assert np.allclose(u, u_ref), "custom backend must match the others"
print(f"red sweep over {N}x{N}: {counter.points} point updates, "
      f"{counter.terms} term evaluations "
      f"({counter.terms / counter.points:.0f} terms/point)")
expected = ((N - 2) ** 2 + 1) // 2
print(f"expected red points: {expected} -> "
      f"{'OK' if counter.points == expected else 'MISMATCH'}")
