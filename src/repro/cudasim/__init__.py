"""cudasim — a CPU simulator for the generated CUDA kernels.

The CUDA twin of :mod:`repro.clsim` (see DESIGN.md substitutions): the
verbatim ``__global__`` kernel text from
:mod:`repro.backends.cuda_backend` is compiled as C99 behind a shim
that supplies ``blockIdx``/``blockDim``/``threadIdx``/``gridDim`` as
sweep variables, and per-kernel drivers iterate the launch grid like an
in-order CUDA stream.
"""

from .driver import build_executor
from .translate import shim_header, translation_unit

__all__ = ["build_executor", "shim_header", "translation_unit"]
