"""docs/API.md stays in sync with the package's public surface."""

import importlib
import pathlib
import pkgutil

import pytest

import repro

API_MD = pathlib.Path(__file__).resolve().parents[2] / "docs" / "API.md"


def public_modules():
    for m in pkgutil.walk_packages(repro.__path__, "repro."):
        if not m.name.endswith("__main__"):
            yield m.name


def test_api_doc_exists():
    assert API_MD.exists(), "regenerate docs/API.md"


def test_every_module_documented():
    text = API_MD.read_text()
    missing = [m for m in public_modules() if f"## `{m}`" not in text]
    assert not missing, f"docs/API.md missing modules: {missing}"


def test_every_export_documented():
    text = API_MD.read_text()
    missing = []
    for mod in public_modules():
        m = importlib.import_module(mod)
        for name in getattr(m, "__all__", []):
            if f"`{name}`" not in text:
                missing.append(f"{mod}.{name}")
    assert not missing, f"docs/API.md missing exports: {missing}"


def test_no_stale_modules_listed():
    import re

    text = API_MD.read_text()
    listed = set(re.findall(r"^## `([\w.]+)`", text, re.M))
    actual = set(public_modules())
    stale = listed - actual
    assert not stale, f"docs/API.md lists removed modules: {stale}"
