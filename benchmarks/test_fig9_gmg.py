"""Fig.9 — full geometric multigrid solver throughput (DOF/s).

Benchmarks one V-cycle (the paper's protocol is 10 of them after an
untimed warmup) for the all-Snowflake solver on each compiled backend
and for the hand-written C driver.  ``extra_info`` carries MDOF/s =
fine-grid unknowns / cycle time.  Paper-platform projections:
``python -m repro.figures fig9``.
"""

import numpy as np
import pytest

from repro.baselines.mg_c import BaselineMultigrid3D
from repro.hpgmg.level import Level
from repro.hpgmg.solver import MultigridSolver


def _seed(level):
    rng = np.random.default_rng(99)
    level.zero("x", "res", "tmp")
    level.grids["rhs"][level.interior] = rng.random((level.n,) * level.ndim)


def _attach(benchmark, dof):
    benchmark.extra_info["MDOF_per_s"] = round(
        dof / benchmark.stats["min"] / 1e6, 3
    )


@pytest.mark.parametrize("backend", ["openmp", "c", "opencl-sim", "numpy"])
def test_gmg_vcycle_snowflake(benchmark, backend, gmg_size):
    level = Level(gmg_size, 3, coefficients="variable")
    _seed(level)
    solver = MultigridSolver(level, backend=backend, n_pre=1, n_post=1)
    solver.v_cycle(0)  # warmup (includes JIT)
    benchmark(solver.v_cycle, 0)
    _attach(benchmark, level.dof)


def test_gmg_vcycle_baseline(benchmark, gmg_size):
    level = Level(gmg_size, 3, coefficients="variable")
    _seed(level)
    solver = BaselineMultigrid3D(level, n_pre=1, n_post=1)
    solver.v_cycle(0)
    benchmark(solver.v_cycle, 0)
    _attach(benchmark, level.dof)


def test_gmg_full_solve_10_cycles_snowflake(benchmark, gmg_size):
    """The paper's exact protocol: warmup then 10 timed V-cycles."""
    level = Level(gmg_size, 3, coefficients="variable")
    _seed(level)
    solver = MultigridSolver(level, backend="openmp", n_pre=1, n_post=1)
    solver.solve(cycles=1)  # untimed warmup phase (SectionV-A)

    def ten_cycles():
        _seed(level)
        solver.solve(cycles=10)

    benchmark.pedantic(ten_cycles, rounds=1, iterations=1)
    _attach(benchmark, level.dof)
