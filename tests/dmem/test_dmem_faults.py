"""End-to-end dmem fault matrix: whole distributed runs stay exact
under every wire fault, and the 2-D executor has full guard parity.
"""

import warnings

import numpy as np
import pytest

from repro.core.components import Component
from repro.core.domains import RectDomain
from repro.core.stencil import Stencil, StencilGroup
from repro.core.weights import WeightArray
from repro.dmem import DistributedKernel, DistributedKernel2D
from repro.resilience.faults import arm, inject
from repro.resilience.guards import Guards, GuardViolation, GuardWarning

pytestmark = pytest.mark.faults

LAP = Component("u", WeightArray([[0, 1, 0], [1, -4, 1], [0, 1, 0]]))
INTERIOR = RectDomain((1, 1), (-1, -1))

#: every wire-level fault the reliable transport must heal end-to-end
WIRE_FAULTS = (
    "comm.send.drop",
    "comm.recv.drop",
    "comm.payload.corrupt",
    "comm.msg.duplicate",
    "comm.msg.reorder",
)


def _group():
    return StencilGroup([Stencil(LAP, "u", INTERIOR, name="smooth")])


def _dk(n=16, nranks=3, **kw):
    return DistributedKernel(
        _group(), (n, n), nranks, backend="numpy", **kw
    )


def _dk2(grid=(2, 2), n=12, **kw):
    return DistributedKernel2D(
        _group(), (n, n), grid, backend="numpy", **kw
    )


def _fault_free_1d(u0, times=1, **kw):
    ref = np.array(u0, copy=True)
    dk = _dk(n=u0.shape[0], **kw)
    dk.scatter(u=ref)
    dk.run(times)
    dk.gather(u=ref)
    return ref


class TestWireFaultMatrix:
    @pytest.mark.parametrize("site", WIRE_FAULTS)
    def test_single_fault_healed_end_to_end(self, site, rng):
        u0 = rng.random((16, 16))
        ref = _fault_free_1d(u0, times=2)
        u = np.array(u0, copy=True)
        dk = _dk()
        dk.scatter(u=u)
        with inject(site, times=2):
            dk.run(2)
        dk.gather(u=u)
        np.testing.assert_array_equal(u, ref)

    def test_combined_faults_healed_end_to_end(self, rng):
        u0 = rng.random((16, 16))
        ref = _fault_free_1d(u0, times=2)
        u = np.array(u0, copy=True)
        dk = _dk()
        dk.scatter(u=u)
        for site in WIRE_FAULTS:
            arm(site, times=2)
        dk.run(2)
        dk.gather(u=u)
        np.testing.assert_array_equal(u, ref)
        s = dk.comm_stats
        assert s.retransmits >= 1
        assert s.duplicates >= 1
        assert s.crc_failures >= 1

    def test_raw_transport_has_no_healing(self, rng):
        # control experiment: the legacy bare wire really is lossy —
        # a dropped halo message surfaces as a deadlock CommError
        from repro.dmem.comm import CommError

        dk = _dk(transport="raw")
        dk.scatter(u=rng.random((16, 16)))
        with inject("comm.send.drop", times=1):
            with pytest.raises(CommError):
                dk.run()

    def test_transport_mode_validated(self):
        with pytest.raises(ValueError, match="transport"):
            _dk(transport="carrier-pigeon")

    def test_describe_reports_resilience_state(self, rng):
        dk = _dk()
        dk.scatter(u=rng.random((16, 16)))
        with inject("comm.send.drop", times=1):
            dk.run()
        d = dk.describe_dict()
        assert d["transport"]["mode"] == "reliable"
        assert d["comm_stats"]["retransmits"] >= 1
        assert d["dead_ranks"] == []
        text = dk.describe()
        assert "exactly-once" in text
        assert "retransmits" in text


class TestExecutor2DGuardParity:
    """Satellite: the 2-D executor rides the same reliable transport,
    so halo-checksum guard semantics match the 1-D executor exactly."""

    def _reference(self, u0, grid=(2, 2)):
        ref = np.array(u0, copy=True)
        _dk2(grid=grid, n=u0.shape[0])(u=ref)
        return ref

    def test_corruption_raises_under_guard_raise(self, rng):
        dk = _dk2(guards=Guards(halo_checksum="raise"))
        with inject("comm.payload.corrupt", times=1):
            with pytest.raises(GuardViolation, match="corrupted in flight"):
                dk(u=rng.random((12, 12)))

    def test_corruption_warns_under_guard_warn(self, rng):
        u0 = rng.random((12, 12))
        ref = self._reference(u0)
        dk = _dk2(guards=Guards(halo_checksum="warn"))
        u = np.array(u0, copy=True)
        with inject("comm.payload.corrupt", times=1):
            with pytest.warns(GuardWarning, match="halo_checksum"):
                dk(u=u)
        np.testing.assert_array_equal(u, ref)  # warned AND healed

    def test_corruption_healed_silently_with_guards_off(self, rng):
        u0 = rng.random((12, 12))
        ref = self._reference(u0)
        dk = _dk2()  # guards default off
        u = np.array(u0, copy=True)
        with inject("comm.payload.corrupt", times=1):
            with warnings.catch_warnings():
                warnings.simplefilter("error", GuardWarning)
                dk(u=u)
        np.testing.assert_array_equal(u, ref)
        assert dk.comm_stats.crc_failures == 1

    @pytest.mark.parametrize("site", WIRE_FAULTS)
    def test_wire_faults_healed_on_the_rank_grid(self, site, rng):
        u0 = rng.random((12, 12))
        ref = self._reference(u0)
        u = np.array(u0, copy=True)
        dk = _dk2()
        with inject(site, times=2):
            dk(u=u)
        np.testing.assert_array_equal(u, ref)
