"""OpenCL micro-compiler: kernel source, host plan, simulator execution."""

import numpy as np
import pytest

from repro.backends.opencl_backend import (
    Barrier,
    CopyBuffer,
    KernelLaunch,
    generate_opencl_program,
)
from repro.core.components import Component
from repro.core.domains import RectDomain
from repro.core.stencil import Stencil, StencilGroup
from repro.core.weights import WeightArray
from repro.hpgmg.operators import cc_laplacian, red_black_domains, smooth_group

INTERIOR = RectDomain((1, 1), (-1, -1))
LAP = Component("u", WeightArray([[0, 1, 0], [1, -4, 1], [0, 1, 0]]))


def program_for(group, shapes, **kw):
    return generate_opencl_program(group, shapes, np.float64, **kw)


class TestKernelSource:
    def test_kernel_declared(self):
        g = StencilGroup([Stencil(LAP, "out", INTERIOR)])
        prog = program_for(g, {"u": (16, 16), "out": (16, 16)})
        assert "__kernel void sf_k0_0" in prog.source
        assert "__global double*" in prog.source
        assert "get_global_id(0)" in prog.source

    def test_fp64_pragma_present(self):
        g = StencilGroup([Stencil(LAP, "out", INTERIOR)])
        prog = program_for(g, {"u": (16, 16), "out": (16, 16)})
        assert "cl_khr_fp64" in prog.source

    def test_one_kernel_per_domain_box(self):
        red, _ = red_black_domains(2)
        g = StencilGroup([Stencil(LAP, "u", red)])
        prog = program_for(g, {"u": (16, 16)})
        assert "sf_k0_0" in prog.kernel_ranges
        assert "sf_k0_1" in prog.kernel_ranges

    def test_tall_skinny_ndrange_2d(self):
        g = StencilGroup([Stencil(LAP, "out", INTERIOR)])
        prog = program_for(g, {"u": (10, 18), "out": (10, 18)})
        # NDRange dim 0 = innermost array dim (16 pts), dim 1 = next (8)
        assert prog.kernel_ranges["sf_k0_0"] == (16, 8)

    def test_3d_rolls_leading_dim(self):
        s = Stencil(cc_laplacian(3, 0.2, grid="u"), "out",
                    RectDomain((1, 1, 1), (-1, -1, -1)))
        prog = program_for(StencilGroup([s]),
                           {"u": (8, 8, 8), "out": (8, 8, 8)})
        # 2-D NDRange + in-kernel loop over i0
        assert prog.kernel_ranges["sf_k0_0"] == (6, 6)
        assert "for (long i0" in prog.source

    def test_guard_against_overshoot(self):
        g = StencilGroup([Stencil(LAP, "out", INTERIOR)])
        prog = program_for(g, {"u": (10, 10), "out": (10, 10)})
        assert "return;" in prog.source

    def test_params_become_kernel_args(self):
        from repro.core.expr import Param

        s = Stencil(Param("w") * LAP, "out", INTERIOR)
        prog = program_for(StencilGroup([s]), {"u": (10, 10), "out": (10, 10)})
        assert "const double p_w" in prog.source


class TestHostPlan:
    def test_barriers_between_phases(self):
        s1 = Stencil(LAP, "a", INTERIOR, name="s1")
        s2 = Stencil(Component("a", WeightArray([[1]])), "b", INTERIOR, name="s2")
        g = StencilGroup([s1, s2])
        prog = program_for(g, {k: (12, 12) for k in g.grids()})
        kinds = [type(op).__name__ for op in prog.ops]
        assert kinds == ["KernelLaunch", "Barrier", "KernelLaunch", "Barrier"]

    def test_independent_share_phase(self):
        s1 = Stencil(LAP, "a", INTERIOR, name="s1")
        s2 = Stencil(Component("v", WeightArray([[1]])), "b", INTERIOR, name="s2")
        g = StencilGroup([s1, s2])
        prog = program_for(g, {k: (12, 12) for k in g.grids()})
        kinds = [type(op).__name__ for op in prog.ops]
        assert kinds == ["KernelLaunch", "KernelLaunch", "Barrier"]

    def test_hazardous_inplace_gets_copy_op(self):
        hazard = Stencil(
            Component("u", WeightArray([[0, 1, 0], [1, 0, 1], [0, 1, 0]])),
            "u", INTERIOR,
        )
        prog = program_for(StencilGroup([hazard]), {"u": (12, 12)})
        copies = [op for op in prog.ops if isinstance(op, CopyBuffer)]
        assert len(copies) == 1
        assert copies[0].grid == "u"
        assert prog.snap_of[copies[0].snap] == "u"
        # copy precedes the launch
        assert isinstance(prog.ops[0], CopyBuffer)

    def test_gsrb_needs_no_copies(self):
        group = smooth_group(2, cc_laplacian(2, 0.1), lam=0.1)
        prog = program_for(group, {g: (12, 12) for g in group.grids()})
        assert not any(isinstance(op, CopyBuffer) for op in prog.ops)

    def test_buffer_order_grids_then_snaps(self):
        hazard = Stencil(
            Component("u", WeightArray([[0, 1, 0], [1, 0, 1], [0, 1, 0]])),
            "u", INTERIOR,
        )
        prog = program_for(StencilGroup([hazard]), {"u": (12, 12)})
        assert prog.buffer_order == ["u", "snap_0"]


class TestSimulatorExecution:
    def test_verbatim_source_is_what_runs(self, rng):
        from repro.clsim.translate import translation_unit

        g = StencilGroup([Stencil(LAP, "out", INTERIOR)])
        prog = program_for(g, {"u": (10, 10), "out": (10, 10)})
        tu = translation_unit(prog, "double")
        assert prog.source in tu  # not a lookalike: literally included
        assert "drive_sf_k0_0" in tu

    def test_executes_correctly(self, rng):
        g = StencilGroup([Stencil(LAP, "out", INTERIOR)])
        k = g.compile(backend="opencl-sim")
        u = rng.random((10, 10))
        out = np.zeros((10, 10))
        k(u=u, out=out)
        manual = (
            u[:-2, 1:-1] + u[2:, 1:-1] + u[1:-1, :-2] + u[1:-1, 2:]
            - 4 * u[1:-1, 1:-1]
        )
        np.testing.assert_allclose(out[1:-1, 1:-1], manual)

    def test_shape_guard(self, rng):
        g = StencilGroup([Stencil(LAP, "out", INTERIOR)])
        k = g.compile(backend="opencl-sim", shapes={"u": (10, 10), "out": (10, 10)})
        ok_u, ok_out = rng.random((10, 10)), np.zeros((10, 10))
        k(u=ok_u, out=ok_out)

    def test_unknown_option(self):
        g = StencilGroup([Stencil(LAP, "out", INTERIOR)])
        with pytest.raises(TypeError):
            g.compile(backend="opencl-sim", warp=32)

    def test_1d_ndrange(self, rng):
        s = Stencil(Component("u", WeightArray([1.0, -2.0, 1.0])), "out",
                    RectDomain((1,), (-1,)))
        prog = program_for(StencilGroup([s]), {"u": (20,), "out": (20,)})
        assert prog.kernel_ranges["sf_k0_0"] == (18,)
        k = StencilGroup([s]).compile(backend="opencl-sim")
        u = rng.random(20)
        out = np.zeros(20)
        k(u=u, out=out)
        np.testing.assert_allclose(out[1:-1], u[:-2] - 2 * u[1:-1] + u[2:])
