"""Persistent tuning cache: round-trip, validation, transparent reload."""

import json

import numpy as np
import pytest

from repro.schedule import ScheduleOptions, schedule_for
from repro.tuning import cache
from repro.tuning.cache import (
    TUNE_SCHEMA,
    load_winner,
    machine_fingerprint,
    options_from_dict,
    save_winner,
    tune_tag,
    tuned_options,
    winner_path,
)
from tests.schedule._cases import fusable_pair_group, laplacian_pair


@pytest.fixture(autouse=True)
def isolated_cache(tmp_path, monkeypatch):
    monkeypatch.setenv("SNOWFLAKE_CACHE_DIR", str(tmp_path))
    cache._MEMO.clear()
    yield tmp_path
    cache._MEMO.clear()


class TestRoundTrip:
    def test_save_then_load(self):
        group, shapes = laplacian_pair()
        opts = ScheduleOptions(tile=8, fuse=False)
        path = save_winner(
            group, shapes, opts, backend="numpy",
            measured_s=1.5e-4, predicted_s=2.5e-6,
            strategy="beam", trials=3,
        )
        doc = load_winner(group, shapes)
        assert doc is not None
        assert doc["schema"] == TUNE_SCHEMA
        assert doc["options"] == opts.to_dict()
        assert doc["measured_s"] == 1.5e-4
        assert doc["tune_tag"] == tune_tag(group, shapes)
        assert doc["fingerprint"] == machine_fingerprint()
        assert str(winner_path(group, shapes)) == path

    def test_options_round_trip_every_field(self):
        opts = ScheduleOptions(
            policy="wavefront", fuse=True, multicolor=False,
            tile=16, block=(8, 4), time_tile=2, unroll=4,
        )
        assert options_from_dict(opts.to_dict()) == opts

    def test_tuned_options_strips_time_tile(self):
        group, shapes = laplacian_pair()
        save_winner(
            group, shapes, ScheduleOptions(tile=8, time_tile=4),
            backend="numpy", measured_s=1e-4,
        )
        opts = tuned_options(group, shapes)
        assert opts is not None
        assert opts.tile == 8
        assert opts.time_tile == 1  # call semantics must not change

    def test_different_shapes_do_not_collide(self):
        group, shapes = laplacian_pair(12)
        _, other = laplacian_pair(16)
        save_winner(
            group, shapes, ScheduleOptions(tile=8),
            backend="numpy", measured_s=1e-4,
        )
        assert tuned_options(group, shapes) is not None
        assert tuned_options(group, other) is None


class TestValidation:
    def test_missing_file_is_none(self):
        group, shapes = laplacian_pair()
        assert load_winner(group, shapes) is None
        assert tuned_options(group, shapes) is None

    def test_wrong_schema_rejected(self):
        group, shapes = laplacian_pair()
        save_winner(
            group, shapes, ScheduleOptions(tile=8),
            backend="numpy", measured_s=1e-4,
        )
        path = winner_path(group, shapes)
        doc = json.loads(path.read_text())
        doc["schema"] = "snowflake-tune/999"
        path.write_text(json.dumps(doc))
        cache._MEMO.clear()
        assert load_winner(group, shapes) is None

    def test_wrong_fingerprint_rejected(self):
        group, shapes = laplacian_pair()
        save_winner(
            group, shapes, ScheduleOptions(tile=8),
            backend="numpy", measured_s=1e-4,
        )
        path = winner_path(group, shapes)
        doc = json.loads(path.read_text())
        doc["fingerprint"] = "deadbeefdeadbeef"
        path.write_text(json.dumps(doc))
        cache._MEMO.clear()
        assert load_winner(group, shapes) is None

    def test_corrupt_json_degrades_to_none(self):
        group, shapes = laplacian_pair()
        save_winner(
            group, shapes, ScheduleOptions(tile=8),
            backend="numpy", measured_s=1e-4,
        )
        winner_path(group, shapes).write_text("{not json")
        cache._MEMO.clear()
        assert load_winner(group, shapes) is None
        assert tuned_options(group, shapes) is None


class TestTransparentReload:
    def test_schedule_for_picks_up_the_winner(self):
        group, shapes = laplacian_pair()
        save_winner(
            group, shapes, ScheduleOptions(tile=16),
            backend="numpy", measured_s=1e-4,
        )
        sched = schedule_for(group, shapes, None)
        assert sched.options.tile == 16

    def test_explicit_options_always_win(self):
        group, shapes = laplacian_pair()
        save_winner(
            group, shapes, ScheduleOptions(tile=16),
            backend="numpy", measured_s=1e-4,
        )
        sched = schedule_for(group, shapes, ScheduleOptions(tile=4))
        assert sched.options.tile == 4

    def test_env_gate_disables_reload(self, monkeypatch):
        group, shapes = laplacian_pair()
        save_winner(
            group, shapes, ScheduleOptions(tile=16),
            backend="numpy", measured_s=1e-4,
        )
        monkeypatch.setenv("SNOWFLAKE_TUNED", "0")
        sched = schedule_for(group, shapes, None)
        assert sched.options == ScheduleOptions()

    def test_unrelated_group_unaffected(self):
        group, shapes = laplacian_pair()
        other, other_shapes = fusable_pair_group()
        save_winner(
            group, shapes, ScheduleOptions(tile=16),
            backend="numpy", measured_s=1e-4,
        )
        sched = schedule_for(other, other_shapes, None)
        assert sched.options == ScheduleOptions()

    def test_winner_executes_correctly(self):
        group, shapes = laplacian_pair()
        save_winner(
            group, shapes, ScheduleOptions(tile=8, fuse=False),
            backend="numpy", measured_s=1e-4,
        )
        rng = np.random.default_rng(5)
        arrays = {g: rng.standard_normal(s) for g, s in shapes.items()}
        ref = {g: a.copy() for g, a in arrays.items()}
        group.compile(
            backend="numpy", shapes=shapes,
            schedule=schedule_for(group, shapes, ScheduleOptions()),
        )(**ref)
        got = {g: a.copy() for g, a in arrays.items()}
        group.compile(backend="numpy", shapes=shapes)(**got)
        for g in sorted(shapes):
            np.testing.assert_array_equal(got[g], ref[g])

    def test_save_clears_memo_in_process(self):
        group, shapes = laplacian_pair()
        assert tuned_options(group, shapes) is None  # memoizes the miss
        save_winner(
            group, shapes, ScheduleOptions(tile=8),
            backend="numpy", measured_s=1e-4,
        )
        opts = tuned_options(group, shapes)
        assert opts is not None and opts.tile == 8
