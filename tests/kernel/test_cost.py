"""Analytic cost model: the paper's 24/40/64 bytes/point, reproduced exactly."""

import pytest

from repro.bench import operator_cost, paper_operators
from repro.core.domains import RectDomain
from repro.core.expr import GridRead
from repro.core.stencil import Stencil
from repro.kernel import body_for, kernel_cost, swept_cost
from repro.kernel.cost import WORD_BYTES
from repro.machine.roofline import PAPER_BYTES_PER_STENCIL, bytes_per_point


@pytest.fixture(scope="module")
def operators():
    return paper_operators(8)


def test_paper_constants_reproduced_exactly(operators):
    """Acceptance: 24, 40, 64 — exact equality, not approx."""
    costs = {
        name: kernel_cost(st).bytes_per_point
        for name, st in operators.items()
    }
    assert costs == {"cc_7pt": 24.0, "cc_jacobi": 40.0, "vc_gsrb": 64.0}
    assert costs == PAPER_BYTES_PER_STENCIL


def test_operator_cost_asserts_against_drift(operators):
    for name, st in operators.items():
        cost = operator_cost(name, st)
        assert cost.bytes_per_point == PAPER_BYTES_PER_STENCIL[name]
    # a mismatched pairing must trip the drift assertion
    with pytest.raises(AssertionError, match="drifted"):
        operator_cost("cc_7pt", operators["vc_gsrb"])


def test_roofline_delegates_to_kernel_cost(operators):
    for st in operators.values():
        assert bytes_per_point(st) == kernel_cost(st).bytes_per_point


def test_flops_are_positive_and_fma_counts_two(operators):
    # cc_7pt: 7 loads combined with adds/muls — at least one op per load
    cost = kernel_cost(operators["cc_7pt"])
    assert cost.flops_per_point >= 7
    assert cost.arithmetic_intensity == pytest.approx(
        cost.flops_per_point / cost.bytes_per_point
    )


def test_write_allocate_convention():
    # out-of-place single-read stencil: read + write + write-allocate
    s = Stencil(GridRead("u", (0, 0)), "out", RectDomain((1, 1), (-1, -1)))
    wa = kernel_cost(s, write_allocate=True)
    nowa = kernel_cost(s, write_allocate=False)
    assert wa.bytes_per_point == 3 * WORD_BYTES
    assert nowa.bytes_per_point == 2 * WORD_BYTES
    assert wa.write_allocate and not nowa.write_allocate


def test_inplace_stencil_pays_no_write_allocate():
    # GSRB-style: the output grid is also read, so the written line is
    # already resident — write-allocate must not double-charge it
    s = Stencil(
        GridRead("x", (1, 0)) + GridRead("x", (-1, 0)),
        "x",
        RectDomain((1, 1), (-1, -1)),
    )
    cost = kernel_cost(s)
    assert cost.bytes_per_point == 2 * WORD_BYTES  # read x + write x


def test_swept_cost_divides_resident_traffic_by_k(operators):
    for name, st in operators.items():
        body, _ = body_for(st)
        sc = swept_cost(body, st.output, 4)
        base = PAPER_BYTES_PER_STENCIL[name]
        assert sc.base_bytes_per_point == base
        assert sc.swept_bytes_per_point == base / 4
        assert sc.traffic_reduction == pytest.approx(4.0)
        assert sc.cache_resident


def test_swept_cost_overflowing_tile_buys_nothing(operators):
    st = operators["cc_jacobi"]
    body, _ = body_for(st)
    sc = swept_cost(body, st.output, 4, tile_bytes=1e9, cache_bytes=8e6)
    assert not sc.cache_resident
    assert sc.swept_bytes_per_point == sc.base_bytes_per_point
    assert sc.traffic_reduction == 1.0


def test_swept_cost_k_one_is_the_base_model(operators):
    st = operators["cc_7pt"]
    body, _ = body_for(st)
    sc = swept_cost(body, st.output, 1)
    assert sc.swept_bytes_per_point == kernel_cost(st).bytes_per_point


def test_swept_cost_rejects_bad_k(operators):
    st = operators["cc_7pt"]
    body, _ = body_for(st)
    with pytest.raises(ValueError, match="k must be >= 1"):
        swept_cost(body, st.output, 0)


def test_swept_cost_to_dict(operators):
    st = operators["vc_gsrb"]
    body, _ = body_for(st)
    d = swept_cost(body, st.output, 2).to_dict()
    for key in (
        "k",
        "base_bytes_per_point",
        "swept_bytes_per_point",
        "cache_resident",
        "traffic_reduction",
    ):
        assert key in d


def test_cost_to_dict_round_trip(operators):
    d = kernel_cost(operators["cc_jacobi"]).to_dict()
    for key in (
        "flops_per_point",
        "read_grids",
        "loads_per_point",
        "bytes_per_point",
        "arithmetic_intensity",
        "write_allocate",
    ):
        assert key in d
