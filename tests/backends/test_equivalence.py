"""Cross-backend equivalence: every micro-compiler computes the same
function as the Python reference interpreter.

This is the suite that makes the OpenCL/clsim substitution trustworthy:
the same stencils run through python, numpy, C, OpenMP, and the
generated OpenCL kernels, and must agree.
"""

import numpy as np
import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from _helpers import ALL_BACKENDS, assert_backends_agree
from repro.core.components import Component
from repro.core.domains import RectDomain
from repro.core.expr import GridRead, Param
from repro.core.stencil import OutputMap, Stencil, StencilGroup
from repro.core.weights import SparseArray, WeightArray
from repro.hpgmg.operators import (
    boundary_stencils,
    cc_laplacian,
    interpolation_linear_group,
    interpolation_pc_group,
    restriction_stencil,
    smooth_group,
    vc_laplacian,
)

INTERIOR2 = RectDomain((1, 1), (-1, -1))


def arrays_for(group, shape, rng, extra=()):
    out = {}
    for g in group.grids() if hasattr(group, "grids") else group:
        out[g] = rng.random(shape)
    for g in extra:
        out[g] = rng.random(shape)
    return out


class TestSimpleStencils:
    def test_laplacian_2d(self, rng):
        s = Stencil(Component("u", WeightArray([[0, 1, 0], [1, -4, 1], [0, 1, 0]])),
                    "out", INTERIOR2)
        assert_backends_agree(s, arrays_for(s.grids(), (20, 20), rng))

    def test_asymmetric_stencil(self, rng):
        s = Stencil(Component("u", SparseArray({(0, 0): 1.0, (2, -1): -0.5})),
                    "out", RectDomain((1, 2), (-3, -1)))
        assert_backends_agree(s, arrays_for(s.grids(), (16, 16), rng))

    def test_high_order_radius_3(self, rng):
        w = {(d, 0): 1.0 / (abs(d) + 1) for d in range(-3, 4)}
        s = Stencil(Component("u", SparseArray(w)), "out",
                    RectDomain((3, 0), (-3, 1)))
        assert_backends_agree(s, arrays_for(s.grids(), (16, 16), rng))

    def test_1d(self, rng):
        s = Stencil(Component("u", WeightArray([1.0, -2.0, 1.0])), "out",
                    RectDomain((1,), (-1,)))
        assert_backends_agree(s, arrays_for(s.grids(), (33,), rng))

    def test_3d(self, rng):
        s = Stencil(cc_laplacian(3, 0.25), "out",
                    RectDomain((1, 1, 1), (-1, -1, -1)))
        assert_backends_agree(s, arrays_for(s.grids(), (10, 10, 10), rng))

    def test_params_and_division(self, rng):
        body = Param("w") * GridRead("u", (0, 0)) / Param("d") + 3.0
        s = Stencil(body, "out", INTERIOR2)
        assert_backends_agree(
            s, arrays_for(s.grids(), (12, 12), rng), params={"w": 1.7, "d": 4.0}
        )

    def test_nonlinear_product_of_grids(self, rng):
        body = GridRead("a", (0, 1)) * GridRead("b", (1, 0)) - GridRead("a", (0, 0))
        s = Stencil(body, "out", INTERIOR2)
        assert_backends_agree(s, arrays_for(s.grids(), (12, 12), rng))

    def test_constant_body(self, rng):
        s = Stencil(GridRead("u", (0, 0)) * 0.0 + 7.5, "out", INTERIOR2)
        got = assert_backends_agree(s, arrays_for(s.grids(), (8, 8), rng))
        assert np.all(got["out"][1:-1, 1:-1] == 7.5)


class TestStridedAndColored:
    def test_red_black_union(self, rng):
        red = RectDomain((1, 1), (-1, -1), (2, 2)) + RectDomain(
            (2, 2), (-1, -1), (2, 2)
        )
        s = Stencil(Component("u", WeightArray([[0, 1, 0], [1, 0, 1], [0, 1, 0]])),
                    "u", red)
        assert_backends_agree(s, arrays_for(s.grids(), (17, 17), rng))

    def test_stride_3(self, rng):
        s = Stencil(Component("u", WeightArray([[2.0]])), "out",
                    RectDomain((2, 1), (-1, -2), (3, 2)))
        assert_backends_agree(s, arrays_for(s.grids(), (14, 14), rng))

    def test_pinned_face(self, rng):
        s = Stencil(-1.0 * GridRead("u", (1, 0)), "u",
                    RectDomain((0, 1), (1, -1), (0, 1)))
        assert_backends_agree(s, arrays_for(s.grids(), (9, 9), rng))

    def test_hazardous_inplace_gets_gather_semantics_everywhere(self, rng):
        # full-interior in-place neighbour stencil: every backend must
        # snapshot, so all agree with the buffered reference.
        s = Stencil(Component("u", WeightArray([[0, 0.25, 0], [0.25, 0, 0.25],
                                                [0, 0.25, 0]])), "u", INTERIOR2)
        assert_backends_agree(s, arrays_for(s.grids(), (13, 13), rng))

    def test_inplace_shift_hazard(self, rng):
        # u[i] = u[i+1]: a classic loop-carried shift
        s = Stencil(GridRead("u", (0, 1)), "u", RectDomain((1, 1), (-1, -1)))
        assert_backends_agree(s, arrays_for(s.grids(), (11, 11), rng))


class TestMultiGrid:
    def test_restriction(self, rng):
        s = restriction_stencil(2)
        arrays = {"res": rng.random((18, 18)), "coarse_rhs": np.zeros((10, 10))}
        got = assert_backends_agree(s, arrays)
        manual = 0.25 * (
            arrays["res"][1:-1:2, 1:-1:2] + arrays["res"][2:-1:2, 1:-1:2]
            + arrays["res"][1:-1:2, 2:-1:2] + arrays["res"][2:-1:2, 2:-1:2]
        )
        np.testing.assert_allclose(got["coarse_rhs"][1:-1, 1:-1], manual)

    def test_interpolation_pc(self, rng):
        group = interpolation_pc_group(2)
        arrays = {"coarse_x": rng.random((8, 8)), "x": rng.random((14, 14))}
        got = assert_backends_agree(group, arrays)
        # every interior fine cell got its parent's correction added
        fine = got["x"][1:-1, 1:-1]
        orig = arrays["x"][1:-1, 1:-1]
        parent = np.repeat(np.repeat(arrays["coarse_x"][1:-1, 1:-1], 2, 0), 2, 1)
        np.testing.assert_allclose(fine, orig + parent)

    def test_interpolation_linear(self, rng):
        group = interpolation_linear_group(2)
        arrays = {"coarse_x": rng.random((8, 8)), "x": rng.random((14, 14))}
        assert_backends_agree(group, arrays)


class TestGroupsAndSmoothers:
    def test_full_gsrb_smoother_3d_vc(self, rng):
        group = smooth_group(3, vc_laplacian(3, 1.0 / 6), lam="lam")
        shape = (8, 8, 8)
        arrays = {g: rng.random(shape) for g in group.grids()}
        arrays["lam"] = 0.1 + 0.01 * rng.random(shape)
        assert_backends_agree(group, arrays)

    def test_boundary_group_2d(self, rng):
        group = StencilGroup(boundary_stencils(2, "u"))
        assert_backends_agree(group, {"u": rng.random((9, 9))})

    def test_sequential_chain(self, rng):
        s1 = Stencil(Component("a", WeightArray([[0, 1, 0], [1, -4, 1], [0, 1, 0]])),
                     "b", INTERIOR2, name="s1")
        s2 = Stencil(Component("b", WeightArray([[0, 1, 0], [1, 0, 1], [0, 1, 0]])),
                     "c", RectDomain((2, 2), (-2, -2)), name="s2")
        g = StencilGroup([s1, s2])
        arrays = {k: rng.random((12, 12)) for k in g.grids()}
        assert_backends_agree(g, arrays)


WEIGHT_VALUES = st.sampled_from([-1.0, -0.5, 0.0, 0.5, 1.0, 2.0])


@st.composite
def random_stencil_case(draw):
    """A random small 2-D stencil + domain, in-place or not."""
    offs = draw(
        st.lists(
            st.tuples(st.integers(-2, 2), st.integers(-2, 2)),
            min_size=1, max_size=4, unique=True,
        )
    )
    weights = {o: draw(WEIGHT_VALUES) for o in offs}
    if all(w == 0.0 for w in weights.values()):
        weights[offs[0]] = 1.0
    inplace = draw(st.booleans())
    sx = draw(st.integers(1, 3))
    sy = draw(st.integers(1, 3))
    dom = RectDomain((3, 3), (-3, -3), (sx, sy))
    body = Component("u", SparseArray(weights))
    return Stencil(body, "u" if inplace else "out", dom)


class TestPropertyEquivalence:
    @settings(max_examples=25, deadline=None)
    @given(case=random_stencil_case(), seed=st.integers(0, 2**16))
    def test_all_backends_agree_on_random_stencils(self, case, seed):
        rng = np.random.default_rng(seed)
        arrays = {g: rng.random((12, 12)) for g in case.grids()}
        assert_backends_agree(case, arrays)
