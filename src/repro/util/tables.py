"""Plain-text table rendering for benchmark reports.

The benchmark harness prints the same rows/series the paper's figures
plot; a small fixed-width formatter keeps the output diff-able.
"""

from __future__ import annotations

from typing import Sequence

__all__ = ["format_table"]


def _fmt(v: object) -> str:
    if isinstance(v, float):
        if v == 0:
            return "0"
        if abs(v) >= 1e5 or abs(v) < 1e-3:
            return f"{v:.3e}"
        return f"{v:.4g}"
    return str(v)


def format_table(
    headers: Sequence[str], rows: Sequence[Sequence[object]], title: str | None = None
) -> str:
    """Render a fixed-width table with a rule under the header."""
    cells = [[_fmt(v) for v in row] for row in rows]
    widths = [len(h) for h in headers]
    for row in cells:
        if len(row) != len(headers):
            raise ValueError("row width does not match headers")
        for i, c in enumerate(row):
            widths[i] = max(widths[i], len(c))
    lines = []
    if title:
        lines.append(title)
    lines.append("  ".join(h.ljust(w) for h, w in zip(headers, widths)))
    lines.append("  ".join("-" * w for w in widths))
    for row in cells:
        lines.append("  ".join(c.ljust(w) for c, w in zip(row, widths)))
    return "\n".join(lines)
