"""A pyopencl-shaped host API over the CPU device simulator.

The paper's OpenCL backend drives a real OpenCL 1.2 runtime; this
module completes the simulated substrate with the host-side object
model — platforms, devices, contexts, in-order command queues, buffers,
programs, kernels — so code written against the (subset of the)
pyopencl surface runs unchanged on the simulator:

    plats = get_platforms()
    ctx = Context(plats[0].get_devices())
    q = CommandQueue(ctx)
    prog = Program(ctx, kernel_source).build()
    buf = Buffer(ctx, size_bytes)
    enqueue_copy(q, buf, host_array)
    prog.my_kernel(q, global_size, None, buf, other_buf, np.float64(0.5))
    enqueue_copy(q, host_array, buf)

Only what the micro-compiler needs is implemented; everything else
raises loudly.  Kernels execute through the same gcc-compiled shim as
:mod:`repro.clsim.driver`, so the verbatim kernel text runs here too.
"""

from __future__ import annotations

import ctypes
import re
from dataclasses import dataclass, field

import numpy as np

from ..backends.jit import compile_and_load
from .translate import shim_header

__all__ = [
    "Platform",
    "Device",
    "Context",
    "CommandQueue",
    "Buffer",
    "Program",
    "Kernel",
    "RuntimeError_",
    "get_platforms",
    "enqueue_copy",
]


class RuntimeError_(RuntimeError):
    """CL_* style error from the simulated runtime."""


@dataclass(frozen=True)
class Device:
    name: str = "Snowflake CPU Simulator"
    type: str = "CPU"
    global_mem_size: int = 1 << 34
    max_work_group_size: int = 1 << 20

    def __repr__(self) -> str:  # pragma: no cover
        return f"<Device {self.name!r}>"


@dataclass(frozen=True)
class Platform:
    name: str = "Snowflake clsim"
    vendor: str = "repro"
    version: str = "OpenCL 1.2 (simulated)"

    def get_devices(self) -> list[Device]:
        return [Device()]


def get_platforms() -> list[Platform]:
    return [Platform()]


class Context:
    """Owns buffers and built programs."""

    def __init__(self, devices: list[Device] | None = None) -> None:
        self.devices = [Device()] if devices is None else list(devices)
        if not self.devices:
            raise RuntimeError_("CL_INVALID_DEVICE: empty device list")


class Buffer:
    """Device memory — host-allocated bytes the kernels address directly."""

    def __init__(self, context: Context, size: int, hostbuf: np.ndarray | None = None) -> None:
        if size <= 0 and hostbuf is None:
            raise RuntimeError_("CL_INVALID_BUFFER_SIZE")
        if hostbuf is not None:
            self._mem = np.array(hostbuf, copy=True).view(np.uint8).reshape(-1)
            size = self._mem.nbytes
        else:
            self._mem = np.zeros(size, dtype=np.uint8)
        self.size = size
        self.context = context

    @property
    def ptr(self) -> int:
        return self._mem.ctypes.data

    def read_as(self, dtype, shape) -> np.ndarray:
        return self._mem.view(np.dtype(dtype)).reshape(shape).copy()


class CommandQueue:
    """In-order queue: every operation completes before the next starts,
    so ``finish`` is trivially a no-op (kept for API parity)."""

    def __init__(self, context: Context) -> None:
        self.context = context

    def finish(self) -> None:
        return None


_KERNEL_RE = re.compile(r"__kernel\s+void\s+(\w+)\s*\(([^)]*)\)", re.S)


class Program:
    """Compile OpenCL-C source (via the C99 shim) and expose kernels."""

    def __init__(self, context: Context, source: str) -> None:
        self.context = context
        self.source = source
        self._lib = None
        self._kernels: dict[str, "Kernel"] = {}

    def build(self, options: str = "") -> "Program":
        decls = _KERNEL_RE.findall(self.source)
        if not decls:
            raise RuntimeError_("CL_BUILD_PROGRAM_FAILURE: no kernels found")
        unit = [shim_header(), self.source, ""]
        for name, args in decls:
            unit.append(_emit_dispatcher(name, args))
        self._lib = compile_and_load("\n".join(unit))
        for name, args in decls:
            self._kernels[name] = Kernel(self, name, _parse_args(args))
        return self

    def __getattr__(self, name: str) -> "Kernel":
        if self._lib is None:
            raise RuntimeError_("CL_INVALID_PROGRAM_EXECUTABLE: call build()")
        try:
            return self._kernels[name]
        except KeyError:
            raise AttributeError(name) from None

    @property
    def kernel_names(self) -> list[str]:
        return sorted(self._kernels)


@dataclass(frozen=True)
class _ArgSpec:
    is_buffer: bool
    ctype: str


def _parse_args(arglist: str) -> list[_ArgSpec]:
    specs = []
    for raw in arglist.split(","):
        raw = raw.strip()
        if not raw:
            continue
        is_buf = "*" in raw
        if "double" in raw:
            ct = "double"
        elif "float" in raw:
            ct = "float"
        elif "long" in raw or "int" in raw:
            ct = "long"
        else:
            raise RuntimeError_(f"unsupported kernel argument: {raw!r}")
        specs.append(_ArgSpec(is_buf, ct))
    return specs


def _emit_dispatcher(name: str, arglist: str) -> str:
    """A uniform-ABI driver: all buffers as void**, all scalars as
    doubles — the ctypes side marshals accordingly."""
    specs = _parse_args(arglist)
    call = []
    bi = si = 0
    for spec in specs:
        if spec.is_buffer:
            call.append(f"({spec.ctype}*)bufs[{bi}]")
            bi += 1
        else:
            call.append(f"({spec.ctype})scalars[{si}]")
            si += 1
    return "\n".join(
        [
            f"void clsim_dispatch_{name}(void** bufs, const double* scalars,",
            "                            const size_t* gsize, int work_dim)",
            "{",
            "  for (int d = 0; d < 3; ++d) { __sf_gsz[d] = 1; __sf_gid[d] = 0; }",
            "  for (int d = 0; d < work_dim; ++d) __sf_gsz[d] = gsize[d];",
            "  for (size_t g2 = 0; g2 < __sf_gsz[2]; ++g2)",
            "  for (size_t g1 = 0; g1 < __sf_gsz[1]; ++g1)",
            "  for (size_t g0 = 0; g0 < __sf_gsz[0]; ++g0) {",
            "    __sf_gid[0] = g0; __sf_gid[1] = g1; __sf_gid[2] = g2;",
            f"    {name}({', '.join(call)});",
            "  }",
            "}",
        ]
    )


class Kernel:
    """Callable kernel: ``kernel(queue, global_size, local_size, *args)``."""

    def __init__(self, program: Program, name: str, specs: list[_ArgSpec]) -> None:
        self.program = program
        self.name = name
        self._specs = specs
        fn = getattr(program._lib, f"clsim_dispatch_{name}")
        fn.argtypes = [
            ctypes.POINTER(ctypes.c_void_p),
            ctypes.POINTER(ctypes.c_double),
            ctypes.POINTER(ctypes.c_size_t),
            ctypes.c_int,
        ]
        fn.restype = None
        self._fn = fn

    @property
    def num_args(self) -> int:
        return len(self._specs)

    def __call__(self, queue: CommandQueue, global_size, local_size, *args):
        if len(args) != len(self._specs):
            raise RuntimeError_(
                f"CL_INVALID_KERNEL_ARGS: {self.name} takes "
                f"{len(self._specs)} args, got {len(args)}"
            )
        bufs, scalars = [], []
        for spec, a in zip(self._specs, args):
            if spec.is_buffer:
                if not isinstance(a, Buffer):
                    raise RuntimeError_(
                        f"CL_INVALID_ARG_VALUE: expected Buffer, got {type(a).__name__}"
                    )
                bufs.append(a.ptr)
            else:
                scalars.append(float(a))
        gsize = tuple(int(g) for g in global_size)
        if not (1 <= len(gsize) <= 3):
            raise RuntimeError_("CL_INVALID_WORK_DIMENSION")
        c_bufs = (ctypes.c_void_p * max(len(bufs), 1))(*bufs)
        c_scal = (ctypes.c_double * max(len(scalars), 1))(*scalars)
        c_gsz = (ctypes.c_size_t * 3)(*(list(gsize) + [1] * (3 - len(gsize))))
        self._fn(c_bufs, c_scal, c_gsz, len(gsize))


def enqueue_copy(queue: CommandQueue, dest, src) -> None:
    """Host<->device copies, pyopencl-style dispatch on argument types."""
    if isinstance(dest, Buffer) and isinstance(src, np.ndarray):
        raw = np.ascontiguousarray(src).view(np.uint8).reshape(-1)
        if raw.nbytes != dest.size:
            raise RuntimeError_("CL_INVALID_VALUE: size mismatch")
        dest._mem[:] = raw
    elif isinstance(dest, np.ndarray) and isinstance(src, Buffer):
        if dest.nbytes != src.size:
            raise RuntimeError_("CL_INVALID_VALUE: size mismatch")
        flat = dest.reshape(-1).view(np.uint8)
        flat[:] = src._mem
    else:
        raise RuntimeError_("CL_INVALID_VALUE: unsupported copy direction")
