"""Latency histograms and the OpenMetrics exporter.

Where the registry's timers answer "how long on average", this module
answers *what the distribution looks like*: every duration folded into
:func:`observe` lands in a fixed-bucket log-scale histogram, so p50/
p95/p99 are recoverable at any time without storing samples.  Fixed
bucket boundaries make histograms mergeable — across threads, across
scrapes, across processes.

Designed for the hot path:

* **lock-free per-thread shards** — each thread owns a private bucket
  array reached through a ``threading.local`` dict, so ``observe`` in
  steady state is a dict lookup, a bisect over ~30 boundaries, and
  three in-place adds; no lock is taken and no other thread's cache
  line is touched.  The registry lock is only held when a thread sees
  a (name, labels) series for the first time, to publish its shard for
  the merge;
* **merge on read** — :func:`snapshot_histograms` sums the shard
  arrays under the registry lock (shard *list* consistency), reading
  counts that other threads may still be bumping: a reader can be at
  most one in-flight observation stale, never torn (CPython list slots
  are whole-object stores).

The second half of the module is the **OpenMetrics text exporter**
(:func:`render_openmetrics`): every counter, timer, kernel stat,
histogram, structured-event count and profiler sample the process has
collected, rendered as well-typed ``snowflake_*`` metric families with
``backend``/``kernel`` labels, terminated by ``# EOF``.  Serve it from
a long-lived process with :func:`serve_metrics` (stdlib ``http.server``
only — ``python -m repro serve-metrics``) or dump it once with
``python -m repro stats --openmetrics``.

Metric-name stability: the families emitted here are a public contract
(dashboards reference them); see ``docs/OBSERVABILITY.md``.
"""

from __future__ import annotations

import re
import threading
from bisect import bisect_left

__all__ = [
    "BUCKETS",
    "observe",
    "percentile_from_buckets",
    "snapshot_histograms",
    "reset_histograms",
    "render_openmetrics",
    "validate_openmetrics",
    "serve_metrics",
    "MetricsServer",
    "OPENMETRICS_CONTENT_TYPE",
]

#: Fixed histogram bucket upper bounds, in seconds: a 1-2.5-5 ladder
#: from 1µs to 100s.  Fixed boundaries are the whole design — shards,
#: scrapes and processes merge by elementwise addition.  Changing them
#: is a metrics-schema break (see docs/OBSERVABILITY.md).
BUCKETS: tuple[float, ...] = tuple(
    float(f"{base * mult:.6g}")  # exact decimal bounds (2.5e-06, not 2.4999...)
    for base in (1e-6, 1e-5, 1e-4, 1e-3, 1e-2, 1e-1, 1.0, 10.0)
    for mult in (1.0, 2.5, 5.0)
) + (100.0,)

_NBUCKETS = len(BUCKETS) + 1  # + overflow (+Inf)

_lock = threading.Lock()
#: series key -> list of shard record dicts (one per observing thread)
_series: dict[tuple, list[dict]] = {}
_generation = 0  # bumped by reset so threads drop stale shards
_tls = threading.local()


def _key(name: str, labels: dict | None) -> tuple:
    if not labels:
        return (name, ())
    return (name, tuple(sorted(labels.items())))


def _shard_for(key: tuple) -> dict:
    """This thread's shard for ``key``, creating + publishing on miss."""
    gen = getattr(_tls, "gen", None)
    if gen != _generation:
        _tls.gen = _generation
        _tls.shards = {}
    shard = _tls.shards.get(key)
    if shard is None:
        shard = {
            "counts": [0] * _NBUCKETS,
            "sum": 0.0,
            "min": float("inf"),
            "max": float("-inf"),
        }
        with _lock:
            # publish for merge-on-read; re-sync generation under the
            # lock so a racing reset() can neither resurrect a pre-reset
            # shard nor orphan this one (cached thread-locally but never
            # published — every later observation would silently vanish)
            if _tls.gen != _generation:
                _tls.gen = _generation
                _tls.shards = {}
            _series.setdefault(key, []).append(shard)
        _tls.shards[key] = shard
    return shard


def observe(name: str, value: float, **labels) -> None:
    """Fold one duration (seconds) into histogram series ``name``.

    Labels become OpenMetrics labels (``observe("kernel.call", dt,
    backend="c")``).  No-op when telemetry is off.  Lock-free after the
    first observation of a series on a thread.
    """
    from .registry import enabled

    if not enabled():
        return
    _observe_raw(name, value, labels or None)


def _observe_raw(name: str, value: float, labels: dict | None = None) -> None:
    """The unconditional record path (callers already checked the mode)."""
    shard = _shard_for(_key(name, labels))
    v = float(value)
    shard["counts"][bisect_left(BUCKETS, v)] += 1
    shard["sum"] += v
    if v < shard["min"]:
        shard["min"] = v
    if v > shard["max"]:
        shard["max"] = v


def percentile_from_buckets(counts: list[int], q: float) -> float | None:
    """Estimate the ``q``-quantile (0..1) from merged bucket counts.

    Linear interpolation inside the landing bucket; the overflow bucket
    reports its lower bound (the last finite boundary).  ``None`` on an
    empty histogram.
    """
    total = sum(counts)
    if total == 0:
        return None
    rank = q * total
    seen = 0.0
    for i, c in enumerate(counts):
        if c == 0:
            continue
        if seen + c >= rank:
            lo = BUCKETS[i - 1] if i > 0 else 0.0
            hi = BUCKETS[i] if i < len(BUCKETS) else BUCKETS[-1]
            if hi <= lo:
                return hi
            frac = (rank - seen) / c
            return lo + (hi - lo) * min(max(frac, 0.0), 1.0)
        seen += c
    return BUCKETS[-1]  # pragma: no cover - rank <= total by construction


def snapshot_histograms() -> dict:
    """Merge every shard: series name -> list of per-labelset records.

    Each record: ``{"labels", "count", "sum", "min", "max", "p50",
    "p95", "p99", "buckets"}`` where ``buckets`` pairs each boundary
    (``+Inf`` last) with its *cumulative* count, OpenMetrics-style.
    """
    with _lock:
        items = [
            (key, list(shards)) for key, shards in _series.items()
        ]
    out: dict[str, list[dict]] = {}
    for (name, labels), shards in sorted(items, key=lambda kv: kv[0]):
        counts = [0] * _NBUCKETS
        total = 0.0
        lo, hi = float("inf"), float("-inf")
        for shard in shards:
            sc = shard["counts"]
            for i in range(_NBUCKETS):
                counts[i] += sc[i]
            total += shard["sum"]
            lo = min(lo, shard["min"])
            hi = max(hi, shard["max"])
        n = sum(counts)
        if n == 0:
            continue
        cum, acc = [], 0
        for i in range(_NBUCKETS):
            acc += counts[i]
            # the overflow bound is the *string* "+Inf" so snapshots
            # stay strict JSON (json.dumps would emit bare Infinity)
            bound = BUCKETS[i] if i < len(BUCKETS) else "+Inf"
            cum.append([bound, acc])
        out.setdefault(name, []).append(
            {
                "labels": dict(labels),
                "count": n,
                "sum": total,
                "min": lo,
                "max": hi,
                "p50": percentile_from_buckets(counts, 0.50),
                "p95": percentile_from_buckets(counts, 0.95),
                "p99": percentile_from_buckets(counts, 0.99),
                "buckets": cum,
            }
        )
    return out


def reset_histograms() -> None:
    """Drop every series and orphan all live shards (test isolation)."""
    global _generation
    with _lock:
        _generation += 1
        _series.clear()


# -- OpenMetrics rendering ----------------------------------------------------

OPENMETRICS_CONTENT_TYPE = (
    "application/openmetrics-text; version=1.0.0; charset=utf-8"
)

_NAME_OK = re.compile(r"[^a-zA-Z0-9_]")

#: dotted-name patterns whose middle component is really a label;
#: everything else sanitizes verbatim.  Order matters: first match wins.
_LABEL_RULES: tuple[tuple[re.Pattern, str, str], ...] = (
    (re.compile(r"^codegen\.([a-z0-9_-]+)\.(sources|bytes)$"),
     "codegen_\\2", "backend"),
    (re.compile(r"^backend\.([a-z0-9_-]+)\.(specialize)$"),
     "backend_\\2", "backend"),
)


def _sanitize(name: str) -> str:
    return _NAME_OK.sub("_", name.replace(".", "_").replace("-", "_"))


def _family(name: str) -> tuple[str, dict[str, str]]:
    """Map a dotted registry name to (family_suffix, extracted_labels)."""
    for pat, repl, label in _LABEL_RULES:
        m = pat.match(name)
        if m:
            return pat.sub(repl, name), {label: m.group(1)}
    return _sanitize(name), {}


def _labelstr(labels: dict) -> str:
    if not labels:
        return ""
    inner = ",".join(
        f'{_sanitize(str(k))}="{_escape(str(v))}"'
        for k, v in sorted(labels.items())
    )
    return "{" + inner + "}"


def _escape(v: str) -> str:
    return v.replace("\\", "\\\\").replace('"', '\\"').replace("\n", "\\n")


def _num(v: float) -> str:
    if v == float("inf"):
        return "+Inf"
    if v != v:  # NaN
        return "NaN"
    return repr(float(v))


class _Doc:
    """Accumulates families, enforcing one TYPE/HELP block per family."""

    def __init__(self) -> None:
        self.lines: list[str] = []
        self._seen: set[str] = set()

    def family(self, name: str, mtype: str, help_: str) -> None:
        if name in self._seen:
            return
        self._seen.add(name)
        self.lines.append(f"# TYPE {name} {mtype}")
        self.lines.append(f"# HELP {name} {help_}")

    def sample(self, name: str, labels: dict, value: float) -> None:
        self.lines.append(f"{name}{_labelstr(labels)} {_num(value)}")


def render_openmetrics(snap: dict | None = None) -> str:
    """Render the full process state as OpenMetrics text.

    ``snap`` defaults to a live :func:`~repro.telemetry.snapshot` (which
    embeds the merged histograms).  Every counter, timer, kernel stat,
    histogram series, structured-event total and profiler sample is
    emitted as a ``snowflake_*`` family; the document ends with
    ``# EOF`` per the OpenMetrics spec.
    """
    from .. import __version__
    from . import events as _events
    from . import profiler as _profiler
    from .registry import snapshot

    if snap is None:
        snap = snapshot()
    doc = _Doc()

    doc.family("snowflake_build", "info", "repro-snowflake build metadata")
    doc.sample(
        "snowflake_build_info",
        {"version": __version__, "stats_schema": snap.get("schema", "?")},
        1,
    )

    for name, n in sorted(snap.get("counters", {}).items()):
        fam, labels = _family(name)
        full = f"snowflake_{fam}"
        doc.family(full, "counter", f"registry counter {name}")
        doc.sample(full + "_total", labels, n)

    kernels = snap.get("kernels", {})
    if kernels:
        # one family block at a time: OpenMetrics requires a family's
        # samples contiguous under its metadata
        for field, help_ in (
            ("calls", "compiled-kernel invocations per backend"),
            ("seconds", "wall time inside compiled kernels per backend"),
            ("points", "stencil applications computed per backend"),
        ):
            fam = f"snowflake_kernel_{field}"
            doc.family(fam, "counter", help_)
            for backend, k in sorted(kernels.items()):
                doc.sample(fam + "_total", {"backend": backend}, k[field])

    # Timers without a histogram series (recorded before metrics landed
    # or via a direct record_time with histograms reset) still export
    # their exact count/sum as a counter pair.
    hists = snap.get("histograms") or snapshot_histograms()
    for name, t in sorted(snap.get("timers", {}).items()):
        if name in hists:
            continue
        fam, labels = _family(name)
        full = f"snowflake_{fam}_seconds"
        doc.family(full, "counter", f"registry timer {name} (no histogram)")
        doc.sample(full + "_total", labels, t["total_s"])

    for name, series in sorted(hists.items()):
        fam, base_labels = _family(name)
        full = f"snowflake_{fam}_seconds"
        doc.family(full, "histogram", f"latency histogram {name}")
        for rec in series:
            labels = {**base_labels, **rec["labels"]}
            for bound, cum in rec["buckets"]:
                le = bound if isinstance(bound, str) else _num(bound)
                doc.sample(full + "_bucket", {**labels, "le": le}, cum)
            doc.sample(full + "_count", labels, rec["count"])
            doc.sample(full + "_sum", labels, rec["sum"])

    ev_counts = _events.counts_by_name()
    if ev_counts:
        doc.family("snowflake_events", "counter",
                   "structured events emitted, by event name")
        for name, n in sorted(ev_counts.items()):
            doc.sample("snowflake_events_total", {"event": name}, n)

    prof = _profiler.snapshot()
    if prof["samples_total"]:
        doc.family("snowflake_profile_samples", "counter",
                   "self-profiler samples attributed to open spans")
        for span_name, rec in sorted(prof["spans"].items()):
            doc.sample(
                "snowflake_profile_samples_total",
                {"span": span_name, "cat": rec["cat"]},
                rec["samples"],
            )
        doc.family("snowflake_profile_overhead_ratio", "gauge",
                   "measured sampler duty cycle (work / wall)")
        doc.sample("snowflake_profile_overhead_ratio", {},
                   prof["duty_cycle"])

    return "\n".join(doc.lines) + "\n# EOF\n"


_SAMPLE_RE = re.compile(
    r"^[a-zA-Z_][a-zA-Z0-9_]*(\{[^}]*\})? [^ ]+( [0-9.e+-]+)?$"
)


def validate_openmetrics(text: str) -> list[str]:
    """Structural check of an OpenMetrics document; returns problems.

    Not a full spec parser — verifies what the CI scrape job needs:
    ``# EOF`` termination, well-formed sample/metadata lines, TYPE
    metadata preceding every family's samples, and histogram bucket
    monotonicity.
    """
    problems: list[str] = []
    lines = text.splitlines()
    if not lines or lines[-1] != "# EOF":
        problems.append("document does not end with # EOF")
    typed: set[str] = set()
    bucket_last: dict[str, float] = {}
    for i, line in enumerate(lines):
        if not line or line == "# EOF":
            continue
        if line.startswith("#"):
            parts = line.split(" ", 3)
            if len(parts) < 3 or parts[1] not in ("TYPE", "HELP", "UNIT"):
                problems.append(f"line {i}: bad metadata {line!r}")
            elif parts[1] == "TYPE":
                typed.add(parts[2])
            continue
        if not _SAMPLE_RE.match(line):
            problems.append(f"line {i}: bad sample line {line!r}")
            continue
        metric = line.split("{", 1)[0].split(" ", 1)[0]
        base = re.sub(
            r"_(total|count|sum|bucket|created|info)$", "", metric
        )
        if metric not in typed and base not in typed:
            problems.append(f"line {i}: sample {metric} has no TYPE")
        if metric.endswith("_bucket"):
            m = re.search(r'le="([^"]+)"', line)
            series = line.rsplit(" ", 1)[0].replace(
                f'le="{m.group(1)}"', "") if m else metric
            if m is None:
                problems.append(f"line {i}: bucket sample without le=")
            else:
                le = float("inf") if m.group(1) == "+Inf" else float(m.group(1))
                prev = bucket_last.get(series)
                if prev is not None and le <= prev:
                    problems.append(
                        f"line {i}: bucket le={m.group(1)} not increasing"
                    )
                bucket_last[series] = le
    return problems


# -- stdlib HTTP exporter -----------------------------------------------------


class MetricsServer:
    """A background ``/metrics`` endpoint (stdlib ``http.server`` only).

    Routes: ``/metrics`` (OpenMetrics text), ``/events`` (the structured
    event ring as JSON lines), ``/healthz``.  Start with
    :func:`serve_metrics`; ``port=0`` binds an ephemeral port, read the
    real one from ``.port``.
    """

    def __init__(self, host: str = "127.0.0.1", port: int = 9464) -> None:
        import json as _json
        from http.server import BaseHTTPRequestHandler, ThreadingHTTPServer

        from . import events as _events

        class Handler(BaseHTTPRequestHandler):
            def do_GET(self) -> None:  # noqa: N802 - http.server API
                path = self.path.split("?", 1)[0]
                if path in ("/metrics", "/"):
                    body = render_openmetrics().encode()
                    ctype = OPENMETRICS_CONTENT_TYPE
                elif path == "/events":
                    body = (
                        "\n".join(
                            _json.dumps(r, sort_keys=True)
                            for r in _events.records()
                        )
                        + "\n"
                    ).encode()
                    ctype = "application/x-ndjson"
                elif path == "/healthz":
                    body, ctype = b"ok\n", "text/plain"
                else:
                    self.send_error(404)
                    return
                self.send_response(200)
                self.send_header("Content-Type", ctype)
                self.send_header("Content-Length", str(len(body)))
                self.end_headers()
                self.wfile.write(body)

            def log_message(self, *args) -> None:  # silence per-request spam
                pass

        self._httpd = ThreadingHTTPServer((host, port), Handler)
        self._httpd.daemon_threads = True
        self.host = host
        self.port = self._httpd.server_address[1]
        self._thread: threading.Thread | None = None
        self._serving = False

    def start(self) -> "MetricsServer":
        self._serving = True
        self._thread = threading.Thread(
            target=self._httpd.serve_forever,
            name="snowflake-metrics",
            daemon=True,
        )
        self._thread.start()
        return self

    def serve_forever(self) -> None:
        """Block serving requests (the CLI foreground path)."""
        self._serving = True
        self._httpd.serve_forever()

    def close(self) -> None:
        if self._serving:
            # shutdown() waits on serve_forever's exit handshake and
            # would block forever on a server that never served
            self._httpd.shutdown()
            self._serving = False
        self._httpd.server_close()
        if self._thread is not None:
            self._thread.join(timeout=5)

    def __enter__(self) -> "MetricsServer":
        return self.start()

    def __exit__(self, *exc) -> None:
        self.close()


def serve_metrics(
    host: str = "127.0.0.1", port: int = 9464
) -> MetricsServer:
    """Start a background OpenMetrics endpoint; returns the server.

    The caller owns shutdown (``server.close()`` or use as a context
    manager).  ``python -m repro serve-metrics`` wraps this in a
    foreground loop.
    """
    return MetricsServer(host, port).start()
