"""``repro.transform``: composable, legality-checked IR rewrites.

The externalized scheduling surface (ROADMAP item 2, in the style of
Exo): :class:`Transform` objects rewrite a
:class:`~repro.schedule.ir.Schedule` or a
:class:`~repro.kernel.ir.KernelBody` into a new one, every schedule
rewrite re-validated against the Diophantine/dependence evidence; an
illegal composition raises :class:`TransformError` carrying the
refusing :class:`~repro.schedule.ir.Evidence`.

Compose with ``|`` and apply::

    from repro.schedule import base_schedule
    from repro.transform import fuse, color_sweep, tile

    sched = (fuse() | color_sweep() | tile(16))(
        base_schedule(group, shapes)
    )

``ScheduleOptions`` presets and ``kernel.optimize`` are thin veneers
over this API (:func:`preset_pipeline`, :func:`kernel_pipeline`); the
autotuner (:mod:`repro.tuning`) searches the same space.
"""

from .base import Pipeline, Transform, TransformError
from .kernel_tx import (
    Cse,
    FmaGroup,
    FoldConstants,
    Hoist,
    cse,
    fma_group,
    fold,
    hoist,
    kernel_pipeline,
)
from .preset import preset_pipeline
from .schedule_tx import (
    Block,
    ColorSweep,
    Distribute,
    Fuse,
    Reorder,
    Split,
    Tile,
    TimeTile,
    Unroll,
    block,
    color_sweep,
    distribute,
    fuse,
    reorder,
    split,
    tile,
    time_tile,
    unroll,
    verify_schedule,
)

__all__ = [
    "Transform",
    "Pipeline",
    "TransformError",
    "verify_schedule",
    "preset_pipeline",
    "kernel_pipeline",
    # schedule transforms
    "Fuse",
    "Distribute",
    "Split",
    "Reorder",
    "ColorSweep",
    "Tile",
    "Block",
    "Unroll",
    "TimeTile",
    "fuse",
    "distribute",
    "split",
    "reorder",
    "color_sweep",
    "tile",
    "block",
    "unroll",
    "time_tile",
    # kernel transforms
    "FoldConstants",
    "Cse",
    "Hoist",
    "FmaGroup",
    "fold",
    "cse",
    "hoist",
    "fma_group",
]
