"""Access footprints: which grid cells does a stencil touch?

The crucial closure property: applying an affine access map
``idx = scale * i + offset`` to a strided box of iteration points yields
*another* strided box of grid indices — so footprints of Snowflake
stencils are exactly representable as :class:`ResolvedRect` lattices, and
footprint-intersection questions stay in the linear Diophantine fragment
solved by :mod:`repro.analysis.diophantine`.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Mapping, Sequence

from ..core.domains import ResolvedRect
from ..core.stencil import Stencil
from ..core.validate import iteration_shape

__all__ = [
    "Access",
    "stencil_accesses",
    "StencilAccesses",
    "access_conflicts",
    "access_conflict_details",
]


@dataclass(frozen=True)
class Access:
    """One lattice of touched cells on one grid."""

    grid: str
    lattice: ResolvedRect
    is_write: bool

    def intersects(self, other: "Access") -> bool:
        if self.grid != other.grid:
            return False
        return self.lattice.intersects(other.lattice)


def map_lattice(
    rect: ResolvedRect, scale: Sequence[int], offset: Sequence[int]
) -> ResolvedRect:
    """Image of iteration lattice ``rect`` under ``scale*i + offset``.

    ``{s*(lo + st*k) + o} = {(s*lo + o) + (s*st)*k}`` — still a lattice.
    """
    lows = tuple(s * lo + o for s, lo, o in zip(scale, rect.lows, offset))
    strides = tuple(s * st for s, st in zip(scale, rect.strides))
    return ResolvedRect(lows, strides, rect.counts)


@dataclass(frozen=True)
class StencilAccesses:
    """All footprints of one stencil resolved against concrete shapes."""

    writes: tuple[Access, ...]
    reads: tuple[Access, ...]

    def all(self) -> tuple[Access, ...]:
        return self.writes + self.reads

    def grids_written(self) -> set[str]:
        return {a.grid for a in self.writes}

    def grids_read(self) -> set[str]:
        return {a.grid for a in self.reads}


def stencil_accesses(
    stencil: Stencil, shapes: Mapping[str, Sequence[int]]
) -> StencilAccesses:
    """Resolve every read/write of ``stencil`` into concrete lattices."""
    it_shape = iteration_shape(stencil, shapes)
    writes: list[Access] = []
    reads: list[Access] = []
    om = stencil.output_map
    distinct_reads = stencil.flat.reads()
    for rect in stencil.domain.resolve(it_shape):
        if rect.is_empty():
            continue
        writes.append(
            Access(stencil.output, map_lattice(rect, om.scale, om.offset), True)
        )
        for read in distinct_reads:
            reads.append(
                Access(read.grid, map_lattice(rect, read.scale, read.offset), False)
            )
    return StencilAccesses(tuple(writes), tuple(reads))


def access_conflict_details(
    a: StencilAccesses, b: StencilAccesses
) -> dict[str, frozenset[str]]:
    """Dependence kinds *and the grids carrying them* between two stencils.

    Returns ``{kind: grids}`` with kind in ``{"RAW", "WAR", "WAW"}``
    where *a* is the earlier stencil: RAW = b reads what a wrote, WAR =
    b overwrites what a read, WAW = both write the same cell.  Unlike
    :func:`access_conflicts` this scans every access pair — the grid
    sets are complete, which is what provenance reports
    (:mod:`repro.explain`, ``ExecutionPlan.describe``) need to name
    *every* grid that forced a barrier.
    """
    kinds: dict[str, set[str]] = {}
    for w in a.writes:
        for r in b.reads:
            if w.intersects(r):
                kinds.setdefault("RAW", set()).add(w.grid)
    for r in a.reads:
        for w in b.writes:
            if r.intersects(w):
                kinds.setdefault("WAR", set()).add(w.grid)
    for w1 in a.writes:
        for w2 in b.writes:
            if w1.intersects(w2):
                kinds.setdefault("WAW", set()).add(w1.grid)
    return {k: frozenset(v) for k, v in kinds.items()}


def access_conflicts(a: StencilAccesses, b: StencilAccesses) -> set[str]:
    """Dependence kinds forcing an ordering between two stencils.

    Returns a subset of ``{"RAW", "WAR", "WAW"}`` where *a* is the earlier
    stencil: RAW = b reads what a wrote, WAR = b overwrites what a read,
    WAW = both write the same cell.
    """
    kinds: set[str] = set()
    for w in a.writes:
        for r in b.reads:
            if w.intersects(r):
                kinds.add("RAW")
                break
        if "RAW" in kinds:
            break
    for r in a.reads:
        for w in b.writes:
            if r.intersects(w):
                kinds.add("WAR")
                break
        if "WAR" in kinds:
            break
    for w1 in a.writes:
        for w2 in b.writes:
            if w1.intersects(w2):
                kinds.add("WAW")
                break
        if "WAW" in kinds:
            break
    return kinds
