"""Figure6 — the modified STREAM (dot-product) bandwidth benchmark.

The paper uses this kernel to set the Roofline denominator for every
stencil bound.  We print the measured host bandwidth for the sequential
C, OpenMP, and numpy flavors across array sizes, alongside the paper's
platform figures (22.2GB/s CPU, 127GB/s GPU) for context.
"""

from __future__ import annotations

from ..machine.specs import I7_4765T, K20C
from ..machine.stream import stream_dot_bandwidth
from ..util.tables import format_table

__all__ = ["run", "main"]


def run(sizes=(2**20, 2**22, 2**24), repeats: int = 5):
    headers = ["N (doubles)", "flavor", "GB/s", "source"]
    rows = []
    for n in sizes:
        for flavor in ("c", "openmp", "numpy"):
            bw = stream_dot_bandwidth(n=n, repeats=repeats, flavor=flavor)
            rows.append([n, flavor, bw / 1e9, "measured (host)"])
    rows.append(["-", "paper CPU (i7-4765T STREAM)", I7_4765T.stream_bw / 1e9, "paper"])
    rows.append(["-", "paper GPU (K20c ERT)", K20C.stream_bw / 1e9, "paper"])
    return headers, rows


def main(sizes=(2**20, 2**22, 2**24), repeats: int = 5) -> str:
    headers, rows = run(sizes, repeats)
    out = format_table(headers, rows, title="Fig.6 — modified STREAM dot bandwidth")
    print(out)
    return out


if __name__ == "__main__":  # pragma: no cover
    main()
