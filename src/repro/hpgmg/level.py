"""Multigrid levels: grids with ghost zones, coefficients, diagonals.

A :class:`Level` owns the numpy storage for one grid spacing of the
hierarchy: the solution ``x``, right-hand side ``rhs``, residual
``res``, a ping-pong scratch ``tmp``, and — for variable-coefficient
problems — the face-centered ``beta_d`` arrays plus the precomputed
``lam = 1/diag(A)`` grid the smoothers read (the paper's ``lambda``
mesh, Fig.4 line9).
"""

from __future__ import annotations

from typing import Callable

import numpy as np

__all__ = ["Level", "default_beta"]


def default_beta(points: np.ndarray) -> np.ndarray:
    """Smooth, strictly positive heterogeneous coefficient field.

    ``points`` has shape (..., ndim) in physical coordinates [0, 1]^d.
    """
    acc = np.ones(points.shape[:-1])
    for d in range(points.shape[-1]):
        acc = acc + 0.25 * np.sin(2.0 * np.pi * points[..., d] + 0.5 * d)
    return acc


class Level:
    """One grid spacing of a cell-centered multigrid hierarchy.

    ``n`` interior cells per dimension, one ghost cell per side, so every
    array has shape ``(n+2,)*ndim``; mesh spacing ``h = 1/n``; the cell
    center of interior index ``i`` is ``(i - 0.5) * h``.
    """

    def __init__(
        self,
        n: int,
        ndim: int = 3,
        *,
        coefficients: str = "constant",
        beta_fn: Callable[[np.ndarray], np.ndarray] | None = None,
        dtype=np.float64,
    ) -> None:
        if n < 2:
            raise ValueError("level needs at least 2 interior cells")
        if coefficients not in ("constant", "variable"):
            raise ValueError("coefficients must be 'constant' or 'variable'")
        self.n = int(n)
        self.ndim = int(ndim)
        self.h = 1.0 / self.n
        self.coefficients = coefficients
        self.dtype = np.dtype(dtype)
        shape = (self.n + 2,) * self.ndim
        self.shape = shape
        self.grids: dict[str, np.ndarray] = {
            name: np.zeros(shape, dtype=self.dtype)
            for name in ("x", "rhs", "res", "tmp")
        }
        if coefficients == "variable":
            beta_fn = beta_fn or default_beta
            for d in range(self.ndim):
                self.grids[f"beta_{d}"] = self._face_field(d, beta_fn)
            self.grids["lam"] = self._inverse_diagonal()

    # -- coefficient setup ----------------------------------------------------

    def cell_centers(self) -> np.ndarray:
        """Physical coordinates of every array cell, shape (*shape, ndim).

        Ghost cells get the (out-of-domain) continuation of the formula.
        """
        axes = [
            (np.arange(self.n + 2) - 0.5) * self.h for _ in range(self.ndim)
        ]
        mesh = np.meshgrid(*axes, indexing="ij")
        return np.stack(mesh, axis=-1)

    def _face_field(self, d: int, beta_fn) -> np.ndarray:
        """Evaluate β on the *low faces* of dimension ``d``.

        ``beta_d[i]`` sits at the face between cells ``i-1`` and ``i``,
        i.e. at coordinate ``(i-1) * h`` in dimension ``d`` and cell
        centers elsewhere.
        """
        pts = self.cell_centers()
        pts = pts.copy()
        pts[..., d] -= 0.5 * self.h
        return np.ascontiguousarray(beta_fn(pts).astype(self.dtype))

    def _inverse_diagonal(self) -> np.ndarray:
        """``lam = 1 / diag(A)`` for the VC operator (interior cells).

        diag(A)_i = (1/h²) * sum_d (beta_d[i] + beta_d[i+e_d]).
        Ghost entries are left at 1.0; smoothers never read them.
        """
        diag = np.zeros(self.shape, dtype=self.dtype)
        inner = tuple(slice(1, -1) for _ in range(self.ndim))
        for d in range(self.ndim):
            beta = self.grids[f"beta_{d}"]
            lo = beta[inner]
            hi_idx = tuple(
                slice(2, None) if k == d else slice(1, -1)
                for k in range(self.ndim)
            )
            diag[inner] += lo + beta[hi_idx]
        diag[inner] /= self.h * self.h
        lam = np.ones(self.shape, dtype=self.dtype)
        lam[inner] = 1.0 / diag[inner]
        return np.ascontiguousarray(lam)

    # -- views and norms --------------------------------------------------------

    @property
    def interior(self) -> tuple[slice, ...]:
        return tuple(slice(1, -1) for _ in range(self.ndim))

    def interior_of(self, name: str) -> np.ndarray:
        return self.grids[name][self.interior]

    @property
    def dof(self) -> int:
        """Degrees of freedom (interior unknowns)."""
        return self.n**self.ndim

    def zero(self, *names: str) -> None:
        for name in names:
            self.grids[name].fill(0.0)

    def norm(self, name: str, kind: str = "l2") -> float:
        """Interior norm of a grid: discrete L2 (h-weighted) or max."""
        v = self.interior_of(name)
        if kind == "l2":
            return float(np.sqrt(np.sum(v * v) / v.size))
        if kind == "max":
            return float(np.max(np.abs(v)))
        raise ValueError(f"unknown norm kind {kind!r}")

    def coarsen_shape(self) -> int:
        if self.n % 2 != 0:
            raise ValueError(f"cannot coarsen odd level size {self.n}")
        return self.n // 2

    def __repr__(self) -> str:  # pragma: no cover
        return (
            f"Level(n={self.n}, ndim={self.ndim}, "
            f"coefficients={self.coefficients!r})"
        )
