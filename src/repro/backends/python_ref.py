"""Pure-Python reference interpreter — the correctness oracle.

Interprets each stencil's :class:`~repro.kernel.ir.KernelBody` — the
same optimized body every compiled backend emits — point by point with
*gather* semantics:
every read observes the grid state as it was when the stencil application
began (an in-place stencil reads its output grid through a snapshot).
All other backends must agree bit-for-bit with this interpreter on
hazard-free stencils and up to gather semantics on hazardous ones; the
equivalence suite in ``tests/backends`` enforces that.

Stencils execute in :class:`~repro.schedule.ir.Schedule` order (program
order under the default greedy policy); fusion and multicolor sweeps
are loop-structure decisions with no observable effect here, so the
interpreter simply honours the schedule's ordering.

Deliberately unoptimized — small grids only.
"""

from __future__ import annotations

from typing import Callable, Mapping

import numpy as np

from .. import telemetry
from ..core.flatten import term_scalar
from ..core.stencil import Stencil, StencilGroup
from ..core.validate import iteration_shape
from ..kernel import body_for, eval_point, eval_scalar_lets
from ..schedule import as_schedule, pop_schedule_spec
from .base import Backend, register_backend

__all__ = ["PythonBackend"]


def _apply_stencil(
    stencil: Stencil,
    arrays: Mapping[str, np.ndarray],
    params: Mapping[str, float],
    shapes: Mapping[str, tuple[int, ...]],
) -> None:
    """Interpret the stencil's (cached, optimized) kernel body."""
    out = arrays[stencil.output]
    snapshot = out.copy() if stencil.is_inplace() else None

    def source(grid: str) -> np.ndarray:
        if snapshot is not None and grid == stencil.output:
            return snapshot
        return arrays[grid]

    body, _ = body_for(stencil)
    scalar_env = eval_scalar_lets(body, params)
    om = stencil.output_map
    it_shape = iteration_shape(stencil, shapes)
    for rect in stencil.domain.resolve(it_shape):
        if rect.is_empty():
            continue
        for point in rect.points():

            def load(ld):
                idx = tuple(
                    s * i + o
                    for s, i, o in zip(ld.scale, point, ld.offset)
                )
                return source(ld.grid)[idx]

            out[om.apply(point)] = eval_point(
                body, load, params, scalar_env
            )


def _apply_stencil_terms(
    stencil: Stencil,
    arrays: Mapping[str, np.ndarray],
    params: Mapping[str, float],
    shapes: Mapping[str, tuple[int, ...]],
) -> None:
    """Legacy term-by-term interpretation (pre-kernel-IR path).

    Kept as the independent cross-check the kernel tests diff the IR
    interpreter against; shares :func:`~repro.core.flatten.term_scalar`
    with the legacy numpy path.
    """
    out = arrays[stencil.output]
    snapshot = out.copy() if stencil.is_inplace() else None

    def source(grid: str) -> np.ndarray:
        if snapshot is not None and grid == stencil.output:
            return snapshot
        return arrays[grid]

    om = stencil.output_map
    it_shape = iteration_shape(stencil, shapes)
    for rect in stencil.domain.resolve(it_shape):
        if rect.is_empty():
            continue
        for point in rect.points():
            val = 0.0
            for term in stencil.flat.terms:
                v = term_scalar(term, params)
                for read in term.reads:
                    idx = tuple(
                        s * i + o
                        for s, i, o in zip(read.scale, point, read.offset)
                    )
                    v *= source(read.grid)[idx]
                val += v
            out[om.apply(point)] = val


class PythonBackend(Backend):
    """The ``python`` micro-compiler: no codegen, direct interpretation."""

    name = "python"

    _KNOBS = {
        "schedule": "greedy", "fuse": False, "multicolor": False,
        "time_tile": 1,
    }

    def specializer(self, group: StencilGroup, **options):
        spec = pop_schedule_spec(options, backend=self.name, knobs=self._KNOBS)

        def specialize(shapes, dtype) -> Callable:
            sched = as_schedule(spec, group, shapes)
            order = [group[i] for i in sched.stencil_order()]
            # The oracle form of a time tile is its *definition*: k
            # sequential applications of the whole group per call.
            applications = 1 if sched.time_tile is None else sched.time_tile.k
            telemetry.count("codegen.python.interpreted_stencils", len(group))

            def impl(arrays, params):
                for _ in range(applications):
                    if telemetry.tracing.active():
                        for stencil in order:
                            with telemetry.tracing.span(
                                f"stencil:{stencil.name}", cat="kernel",
                                backend="python",
                            ):
                                _apply_stencil(stencil, arrays, params, shapes)
                    else:
                        for stencil in order:
                            _apply_stencil(stencil, arrays, params, shapes)

            return impl

        return specialize


register_backend(PythonBackend(), "ref")
