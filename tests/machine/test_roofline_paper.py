"""SectionV-B bytes-per-point constants, pinned against the model.

The paper reports 24 B/point for the constant-coefficient 7-point
Laplacian, 40 for the weighted-Jacobi smoother and 64 for the
variable-coefficient GSRB half-sweep.  The bench module's operator
constructions must reproduce these *exactly* from the analytic
:func:`bytes_per_point` model, or every roofline fraction it reports
is attributed against the wrong bound.
"""

import pytest

from repro.bench import paper_operators
from repro.machine.roofline import (
    PAPER_BYTES_PER_STENCIL,
    bytes_per_point,
    roofline_stencils_per_s,
)
from repro.machine.specs import PAPER_PLATFORMS


class TestPaperConstants:
    @pytest.mark.parametrize(
        "op,expected",
        [("cc_7pt", 24.0), ("cc_jacobi", 40.0), ("vc_gsrb", 64.0)],
    )
    def test_bytes_per_point_matches_paper(self, op, expected):
        stencil = paper_operators()[op]
        assert bytes_per_point(stencil) == expected
        assert PAPER_BYTES_PER_STENCIL[op] == expected

    def test_operator_names_match_constant_table(self):
        assert set(paper_operators()) == set(PAPER_BYTES_PER_STENCIL)

    def test_heavier_operator_lower_roofline(self):
        spec = PAPER_PLATFORMS["cpu"]
        ws = 64 * 1024 * 1024  # DRAM-resident
        rates = [
            roofline_stencils_per_s(spec, b, ws)
            for b in (24.0, 40.0, 64.0)
        ]
        assert rates == sorted(rates, reverse=True)
        # roofline = bw / bytes exactly, once out of cache
        assert rates[0] == pytest.approx(spec.stream_bw / 24.0)
